package shrimp_test

import (
	"bytes"
	"fmt"
	"testing"

	shrimp "repro"
)

// These tests exercise the public facade the way a downstream user
// would: only identifiers exported by package shrimp.

func TestPublicQuickstartFlow(t *testing.T) {
	m := shrimp.New(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype))
	snd := shrimp.NewEndpoint(m.Node(0))
	rcv := shrimp.NewEndpoint(m.Node(1))
	ch, err := shrimp.NewChannel(m, snd, rcv, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		want := []byte(fmt.Sprintf("public api message %d", i))
		if err := ch.Send(want); err != nil {
			t.Fatal(err)
		}
		got, err := ch.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d corrupted", i)
		}
	}
}

func TestPublicRawMappingFlow(t *testing.T) {
	// The paper's primitive interface: map() + raw stores.
	m := shrimp.New(shrimp.DefaultConfig()) // 4x4 EISA prototype
	src, dst := m.Node(0), m.Node(15)
	ps := src.K.CreateProcess()
	pd := dst.K.CreateProcess()
	sendVA, err := ps.AllocPages(2)
	if err != nil {
		t.Fatal(err)
	}
	recvVA, err := pd.AllocPages(2)
	if err != nil {
		t.Fatal(err)
	}
	_, fut := src.K.Map(ps, sendVA, 2*shrimp.PageSize, dst.ID, pd.PID, recvVA, shrimp.BlockedWriteAU)
	if err := m.Await(fut); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 6000)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	if err := src.UserWriteBytes(ps, sendVA, payload); err != nil {
		t.Fatal(err)
	}
	m.RunUntilIdle(50_000_000)
	got := make([]byte, len(payload))
	if err := dst.UserReadBytes(pd, recvVA, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("cross-machine copy corrupted")
	}
}

func TestPublicBlockSender(t *testing.T) {
	m := shrimp.New(shrimp.ConfigFor(2, 1, shrimp.GenXpress))
	bs, err := shrimp.NewBlockSender(m,
		shrimp.NewEndpoint(m.Node(0)), shrimp.NewEndpoint(m.Node(1)), 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(255 - i%256)
	}
	if err := bs.Write(0, data); err != nil {
		t.Fatal(err)
	}
	m.RunUntilIdle(50_000_000)
	if err := bs.Send(0, len(data)); err != nil {
		t.Fatal(err)
	}
	m.RunUntilIdle(50_000_000)
	if !bs.Done() {
		t.Fatal("DMA busy after drain")
	}
	got, err := bs.Read(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("block transfer corrupted")
	}
}

func TestPublicExperimentsAgreeWithPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	rows := shrimp.MeasureTable1(shrimp.GenEISAPrototype)
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Source != r.PaperSource || r.Dest != r.PaperDest {
			t.Errorf("%s: measured %d+%d, paper %d+%d",
				r.Name, r.Source, r.Dest, r.PaperSource, r.PaperDest)
		}
	}
	lat := shrimp.MaxLatency(shrimp.ConfigFor(4, 4, shrimp.GenEISAPrototype))
	if lat.Latency >= 2*shrimp.Microsecond {
		t.Errorf("EISA latency %v >= 2us", lat.Latency)
	}
	lat = shrimp.MaxLatency(shrimp.ConfigFor(4, 4, shrimp.GenXpress))
	if lat.Latency >= shrimp.Microsecond {
		t.Errorf("Xpress latency %v >= 1us", lat.Latency)
	}
	bw := shrimp.MeasureDeliberateBandwidth(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype), 0, 1, 4096, 128*1024)
	if bw.MBps > 33 {
		t.Errorf("EISA bandwidth %.1f exceeds the 33 MB/s bus rating", bw.MBps)
	}
	if bw.MBps < 25 {
		t.Errorf("EISA bandwidth %.1f too far below the 33 MB/s bottleneck", bw.MBps)
	}
}

func TestPublicAssembler(t *testing.T) {
	p, err := shrimp.Assemble("pub", `
main:
	mov	eax, X
	add	eax, 2
	hlt
`, map[string]int64{"X": 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 3 {
		t.Fatal("assembled length")
	}
}

func TestPublicCollectivesAndSharedRegion(t *testing.T) {
	m := shrimp.New(shrimp.ConfigFor(2, 2, shrimp.GenEISAPrototype))
	parts := []shrimp.Endpoint{
		shrimp.NewEndpoint(m.Node(0)), shrimp.NewEndpoint(m.Node(1)),
		shrimp.NewEndpoint(m.Node(2)), shrimp.NewEndpoint(m.Node(3)),
	}
	bar, err := shrimp.NewBarrier(m, parts)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := shrimp.NewBroadcast(m, parts, 1)
	if err != nil {
		t.Fatal(err)
	}
	region, err := shrimp.NewSharedRegion(m, parts, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One "iteration": everyone writes its slice, barrier, broadcast a
	// summary from the root.
	for i := range parts {
		if err := region.Write32(i, i*region.SliceBytes(), uint32(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	region.Settle()
	if err := bar.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := bc.Send([]byte("iteration 1 done"))
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if string(g) != "iteration 1 done" {
			t.Fatalf("endpoint %d: %q", i, g)
		}
	}
	if ok, off, _, who := region.Consistent(); !ok {
		t.Fatalf("region diverged at %d (%d)", off, who)
	}
}

func TestPublicNXPort(t *testing.T) {
	m := shrimp.New(shrimp.ConfigFor(2, 1, shrimp.GenXpress))
	pa, pb, err := shrimp.OpenNXPair(m,
		shrimp.NewEndpoint(m.Node(0)), shrimp.NewEndpoint(m.Node(1)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pa.Csend(4, []byte("over the public api")); err != nil {
		t.Fatal(err)
	}
	typ, got, err := pb.CrecvAny(128)
	if err != nil {
		t.Fatal(err)
	}
	if typ != 4 || string(got) != "over the public api" {
		t.Fatalf("%d %q", typ, got)
	}
}

func TestPublicGangScheduling(t *testing.T) {
	m := shrimp.New(shrimp.ConfigFor(1, 1, shrimp.GenXpress))
	k := m.Node(0).K
	p := k.CreateProcess()
	stack, _ := p.AllocPages(1)
	prog, err := shrimp.Assemble("spin", `
main:
	mov	ecx, 2000
l:	dec	ecx
	jnz	l
	hlt
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.SetupRun(prog, "main", stack+shrimp.PageSize)
	k.AddRunnable(p)
	g, err := m.StartGangScheduling(5 * shrimp.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	m.Eng.RunFor(200 * shrimp.Microsecond)
	g.Stop()
	m.RunUntilIdle(10_000_000)
	if g.Ticks() == 0 {
		t.Fatal("no gang rounds")
	}
}

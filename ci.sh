#!/bin/sh
# ci.sh — the repo's gate: static checks, full build, race-enabled tests,
# and a smoke run of the engine microbenchmark (which also enforces the
# zero-allocation scheduling path via its companion tests).
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -bench BenchmarkEngine -benchtime 100x ./internal/sim
# Parallel sweep smoke: drive the worker pool with more points than
# workers under the race detector (report discarded; the differential
# tests assert parallel == sequential output).
go run -race ./cmd/shrimp-bench -parallel 4 -iters 2 -only sweep -o /dev/null
# Observability guard: the metrics registry and causal spans must stay
# allocation-free on the hot path (counters, gauges, histograms, span
# lifecycle all land in preallocated arrays). Run without -race — the
# race runtime itself allocates and would mask a regression.
go test -run TestInstrumentationZeroAlloc -count 1 ./internal/obs
go test -run '^$' -bench BenchmarkEngineMetrics -benchtime 100x ./internal/obs
# Batched-interpretation guards: the differential tests (batched versus
# per-instruction stepping must be bit-identical) run under -race above;
# here the zero-alloc contract — the batched step path and the bus
# Write32/Read32/command-read paths must not touch the heap.
go test -run '^$' -bench 'BenchmarkStepBatched' -benchtime 1000x -benchmem ./internal/isa | grep 'BenchmarkStepBatched' | grep -q ' 0 allocs/op'
go test -run '^$' -bench 'BenchmarkBus' -benchtime 1000x -benchmem ./internal/bus | grep 'BenchmarkBus' | awk '!/ 0 allocs\/op/ {bad=1} END {exit bad}'
# Simulator-performance regression gate: rerun the benchmark suite and
# compare events/sec and allocs/op against the committed BENCH_3.json
# snapshot (>10% worse fails). Few iterations keep this a smoke test;
# BENCH_4.json is the full committed snapshot.
go run ./cmd/shrimp-bench -iters 3 -compare BENCH_3.json -o /dev/null
# Timeline smoke: a 16-node run must export valid Chrome trace JSON.
go run ./cmd/shrimp-trace -rounds 1 -o /dev/null

#!/bin/sh
# ci.sh — the repo's gate: static checks, full build, race-enabled tests,
# and a smoke run of the engine microbenchmark (which also enforces the
# zero-allocation scheduling path via its companion tests).
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -bench BenchmarkEngine -benchtime 100x ./internal/sim
# Parallel sweep smoke: drive the worker pool with more points than
# workers under the race detector (report discarded; the differential
# tests assert parallel == sequential output).
go run -race ./cmd/shrimp-bench -parallel 4 -iters 2 -only sweep -o /dev/null

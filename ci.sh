#!/bin/sh
# ci.sh — the repo's gate: static checks, full build, race-enabled tests,
# and a smoke run of the engine microbenchmark (which also enforces the
# zero-allocation scheduling path via its companion tests).
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -bench BenchmarkEngine -benchtime 100x ./internal/sim
# Parallel sweep smoke: drive the worker pool with more points than
# workers under the race detector (report discarded; the differential
# tests assert parallel == sequential output).
go run -race ./cmd/shrimp-bench -parallel 4 -iters 2 -only sweep -o /dev/null
# Observability guard: the metrics registry and causal spans must stay
# allocation-free on the hot path (counters, gauges, histograms, span
# lifecycle all land in preallocated arrays). Run without -race — the
# race runtime itself allocates and would mask a regression.
go test -run TestInstrumentationZeroAlloc -count 1 ./internal/obs
go test -run '^$' -bench BenchmarkEngineMetrics -benchtime 100x ./internal/obs
# Timeline smoke: a 16-node run must export valid Chrome trace JSON.
go run ./cmd/shrimp-trace -rounds 1 -o /dev/null

#!/bin/sh
# ci.sh — the repo's gate: static checks, full build, race-enabled tests,
# and a smoke run of the engine microbenchmark (which also enforces the
# zero-allocation scheduling path via its companion tests).
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -bench BenchmarkEngine -benchtime 100x ./internal/sim
# Parallel sweep smoke: drive the worker pool with more points than
# workers under the race detector (report discarded; the differential
# tests assert parallel == sequential output).
go run -race ./cmd/shrimp-bench -parallel 4 -iters 2 -only sweep -o /dev/null
# Partitioned-engine guards. The partition differential suites (any
# node→partition assignment must reproduce the sequential engine
# bit-for-bit: latencies, goodput, machine checks, metrics, Table 1)
# run under the race detector at both ends of the scheduler-parallelism
# range, and a race smoke drives the mesh/par allreduce pair on a small
# mesh so real cluster goroutines cross the rendezvous under -race.
GOMAXPROCS=1 go test -race -count 1 -run 'TestPartition|TestTable1Partition' ./internal/core ./internal/msg
GOMAXPROCS=8 go test -race -count 1 -run 'TestPartition|TestTable1Partition' ./internal/core ./internal/msg
go run -race ./cmd/shrimp-bench -iters 1 -only mesh/par -mesh 8x8 -partitions 1,4,8 -o /dev/null
# Rendezvous allocation guards, unconditional (they hold on any host,
# unlike the speedup gate below): the typed post/message path through
# the cluster must not touch the heap, and the partitioned allreduce
# must allocate within 2x of the sequential machine per op (BENCH_7's
# regression was a 29x blowup that only an >= 8-CPU host would have
# caught via the speedup gate).
go test -run '^$' -bench 'BenchmarkClusterPost' -benchtime 1000x -benchmem ./internal/sim | grep 'BenchmarkClusterPost' | grep -q ' 0 allocs/op'
go run ./cmd/shrimp-bench -iters 2 -only mesh/par -mesh 16x16 -partitions 1,8 -allocratio mesh/par/1,mesh/par/8,2.0 -o /dev/null
# Intra-machine speedup gate: the 32x32 allreduce with 8 partitions
# must run >= 4x faster than with 1 partition (BENCH_9.json is the
# committed snapshot of this pair). Meaningless without cores for the
# gang workers to land on, so skipped on hosts with < 8 CPUs.
if [ "$(getconf _NPROCESSORS_ONLN)" -ge 8 ]; then
	go run ./cmd/shrimp-bench -iters 3 -only mesh/par -partitions 1,8 -speedup mesh/par/1,mesh/par/8,4.0 -o /dev/null
fi
# Observability guard: the metrics registry and causal spans must stay
# allocation-free on the hot path (counters, gauges, histograms, span
# lifecycle all land in preallocated arrays). Run without -race — the
# race runtime itself allocates and would mask a regression.
go test -run TestInstrumentationZeroAlloc -count 1 ./internal/obs
go test -run '^$' -bench BenchmarkEngineMetrics -benchtime 100x ./internal/obs
# Batched-interpretation guards: the differential tests (batched versus
# per-instruction stepping must be bit-identical) run under -race above;
# here the zero-alloc contract — the batched step path and the bus
# Write32/Read32/command-read paths must not touch the heap.
go test -run '^$' -bench 'BenchmarkStepBatched' -benchtime 1000x -benchmem ./internal/isa | grep 'BenchmarkStepBatched' | grep -q ' 0 allocs/op'
# Trace-cache guards: superblock dispatch and the fused store path must
# stay allocation-free, and the trace cache must actually serve the §5
# loop workload (hit-rate floor asserted by the test). The differential
# suites (trace on == off, spin fast-forward == literal spinning) run
# under -race above.
go test -run '^$' -bench 'BenchmarkTraceDispatch' -benchtime 1000x -benchmem ./internal/isa | grep 'BenchmarkTraceDispatch' | grep -q ' 0 allocs/op'
go test -run '^$' -bench 'BenchmarkFusedStore' -benchtime 200x -benchmem ./internal/msg | grep 'BenchmarkFusedStore' | grep -q ' 0 allocs/op'
go test -run TestTraceCacheHitRateFloor -count 1 ./internal/msg
go test -run '^$' -bench 'BenchmarkBus' -benchtime 1000x -benchmem ./internal/bus | grep 'BenchmarkBus' | awk '!/ 0 allocs\/op/ {bad=1} END {exit bad}'
# Fault-injection guards. The deterministic fault sweep must be
# race-free with parallel workers and byte-stable run to run; the
# steady-state store datapath must stay allocation-free both without an
# injector and with one armed at zero rates; and the faults/off|on
# bench pair is gated against the committed BENCH_5.json snapshot
# (<10% overhead regression on the disabled path).
go run -race ./cmd/shrimp-faults -workers 4 -bytes 32768 > /tmp/shrimp-faults-a.txt
go run ./cmd/shrimp-faults -workers 1 -bytes 32768 > /tmp/shrimp-faults-b.txt
cmp /tmp/shrimp-faults-a.txt /tmp/shrimp-faults-b.txt
go test -run '^$' -bench 'BenchmarkStore' -benchtime 1000x -benchmem ./internal/nic | grep 'BenchmarkStore' | awk '!/ 0 allocs\/op/ {bad=1} END {exit bad}'
go run ./cmd/shrimp-bench -iters 3 -only faults -compare BENCH_5.json -tol 0.5 -o /dev/null
# Crash-survival guards. The chaos soak (16 nodes, two staggered
# mid-workload crashes, Survivable armed) and the rest of the
# degraded-mode suite run under the race detector at both ends of the
# scheduler-parallelism range; the availability sweep must print
# byte-identically run to run and across partition counts; and the
# peer-down emit suppression (the degraded-mode hot path) must stay
# allocation-free.
GOMAXPROCS=1 go test -race -count 1 -run 'TestCrashSurvival|TestSurvivable|TestHeartbeat|TestShootdownCrash|TestDestroyProcessSurvives|TestReestablishDegrades' ./internal/core
GOMAXPROCS=8 go test -race -count 1 -run 'TestCrashSurvival|TestSurvivable|TestHeartbeat|TestShootdownCrash|TestDestroyProcessSurvives|TestReestablishDegrades' ./internal/core
go run -race ./cmd/shrimp-faults -avail 0,1,2 -w 4 -h 4 > /tmp/shrimp-avail-a.txt
go run ./cmd/shrimp-faults -avail 0,1,2 -w 4 -h 4 > /tmp/shrimp-avail-b.txt
go run ./cmd/shrimp-faults -avail 0,1,2 -w 4 -h 4 -partitions 4 > /tmp/shrimp-avail-p.txt
cmp /tmp/shrimp-avail-a.txt /tmp/shrimp-avail-b.txt
cmp /tmp/shrimp-avail-a.txt /tmp/shrimp-avail-p.txt
go test -run '^$' -bench 'BenchmarkStorePeerDown' -benchtime 1000x -benchmem ./internal/nic | grep 'BenchmarkStorePeerDown' | grep -q ' 0 allocs/op'
# Simulator-performance regression gate: rerun the benchmark suite and
# compare events/sec and allocs/op against the committed BENCH_3.json
# snapshot. Few iterations keep this a smoke test; BENCH_4.json is the
# full committed snapshot. The tolerance is wide because wall-clock
# events/sec swings with shared-runner load — this gate is a tripwire
# for catastrophic regressions (half-speed, doubled allocations); the
# strict perf contracts are the deterministic guards above (0 allocs/op
# greps, bit-identity differential tests).
go run ./cmd/shrimp-bench -iters 3 -compare BENCH_3.json -tol 0.5 -o /dev/null
# Trace-cache regression gate: the cpu/batch and cpu/trace pairs against
# the committed BENCH_6.json snapshot (same wide tripwire tolerance).
go run ./cmd/shrimp-bench -iters 3 -only cpu/ -compare BENCH_6.json -tol 0.5 -o /dev/null
# Flight-recorder guards. Sampling must be allocation-free — each cut
# snapshots the registry into a preallocated delta ring (run without
# -race; the race runtime allocates and would mask a regression) — and
# the recorder/off|on bench pair is gated against the committed
# BENCH_8.json snapshot (same wide tripwire tolerance as BENCH_3).
go test -run TestRecorderZeroAlloc -count 1 ./internal/obs
go test -run '^$' -bench 'BenchmarkRecorderSample' -benchtime 1000x -benchmem ./internal/obs | grep 'BenchmarkRecorderSample' | grep -q ' 0 allocs/op'
go run ./cmd/shrimp-bench -iters 3 -only metrics/recorder -compare BENCH_8.json -tol 0.5 -o /dev/null
# Progress-watchdog smoke under the race detector: a crashed receiver
# with an unbounded retry budget must trip the retry-storm check (plus
# the deadline/FIFO-stall and differential watchdog suites).
go test -race -count 1 -run 'TestWatchdog' ./internal/core
# OpenMetrics determinism: two one-shot shrimp-top runs must compare
# byte-identical, and a partitioned run must reproduce the sequential
# exposition exactly (partition-aware aggregation: per-node scopes are
# summed in node order at quiescent pacing cuts, so the merged timeline
# is independent of the partition count).
go run ./cmd/shrimp-top -mesh 2x2 -rounds 2 > /tmp/shrimp-top-a.prom
go run ./cmd/shrimp-top -mesh 2x2 -rounds 2 > /tmp/shrimp-top-b.prom
cmp /tmp/shrimp-top-a.prom /tmp/shrimp-top-b.prom
go run -race ./cmd/shrimp-top -mesh 2x2 -rounds 2 -partitions 4 > /tmp/shrimp-top-p.prom
cmp /tmp/shrimp-top-a.prom /tmp/shrimp-top-p.prom
# Timeline smoke: a 16-node run must export valid Chrome trace JSON,
# with recorder counter tracks riding along.
go run ./cmd/shrimp-trace -rounds 1 -interval 10us -o /dev/null

// Stencil: the paper's motivating workload shape (Figure 1 / Figure 6) —
// an iterative nearest-neighbor computation. A 1-D Jacobi relaxation is
// partitioned across four nodes; every iteration the halo cells cross
// the machine through double-buffered mapped channels, and a barrier
// (itself built on mapped flag words) separates iterations. All the
// map() calls happen once, before the loop; the loop body is pure
// user-level stores.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	shrimp "repro"
)

const (
	nodes      = 4
	cellsEach  = 64
	iterations = 30
)

func main() {
	m := shrimp.New(shrimp.ConfigFor(4, 1, shrimp.GenEISAPrototype))
	parts := make([]shrimp.Endpoint, nodes)
	for i := range parts {
		parts[i] = shrimp.NewEndpoint(m.Node(i))
	}

	// Map phase (outside the loop, per Figure 1): halo channels in both
	// directions between neighbors, plus a machine-wide barrier.
	right := make([]*shrimp.DoubleChannel, nodes) // right[i]: i -> i+1
	left := make([]*shrimp.DoubleChannel, nodes)  // left[i]:  i -> i-1
	for i := 0; i < nodes-1; i++ {
		ch, err := shrimp.NewDoubleChannel(m, parts[i], parts[i+1], 1)
		if err != nil {
			log.Fatal(err)
		}
		right[i] = ch
		ch, err = shrimp.NewDoubleChannel(m, parts[i+1], parts[i], 1)
		if err != nil {
			log.Fatal(err)
		}
		left[i+1] = ch
	}
	barrier, err := shrimp.NewBarrier(m, parts)
	if err != nil {
		log.Fatal(err)
	}

	// The domain lives in ordinary Go memory per node; what crosses the
	// machine is the halo exchange. Boundary condition: 100.0 on the
	// left edge, 0.0 on the right.
	grid := make([][]float64, nodes)
	next := make([][]float64, nodes)
	for i := range grid {
		grid[i] = make([]float64, cellsEach+2) // plus two halo cells
		next[i] = make([]float64, cellsEach+2)
	}
	grid[0][0] = 100.0

	f2b := func(f float64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		return b[:]
	}
	b2f := func(b []byte) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(b))
	}

	start := m.Eng.Now()
	for iter := 0; iter < iterations; iter++ {
		// Exchange halos: each node sends its edge cells to neighbors.
		for i := 0; i < nodes-1; i++ {
			if err := right[i].Send(f2b(grid[i][cellsEach])); err != nil {
				log.Fatal(err)
			}
		}
		for i := 1; i < nodes; i++ {
			if err := left[i].Send(f2b(grid[i][1])); err != nil {
				log.Fatal(err)
			}
		}
		for i := 1; i < nodes; i++ {
			b, err := right[i-1].Recv()
			if err != nil {
				log.Fatal(err)
			}
			grid[i][0] = b2f(b)
		}
		for i := 0; i < nodes-1; i++ {
			b, err := left[i+1].Recv()
			if err != nil {
				log.Fatal(err)
			}
			grid[i][cellsEach+1] = b2f(b)
		}
		// Local relaxation.
		for i := 0; i < nodes; i++ {
			lo, hi := 1, cellsEach
			if i == 0 {
				lo = 2 // fixed boundary at global cell 1
				next[i][1] = grid[i][1]
			}
			if i == nodes-1 {
				hi = cellsEach - 1
				next[i][cellsEach] = grid[i][cellsEach]
			}
			for c := lo; c <= hi; c++ {
				next[i][c] = 0.5 * (grid[i][c-1] + grid[i][c+1])
			}
		}
		for i := range grid {
			copy(grid[i][1:cellsEach+1], next[i][1:cellsEach+1])
		}
		grid[0][1] = 100.0 // boundary
		if err := barrier.Sync(); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := m.Eng.Now() - start

	// Sample the temperature profile.
	fmt.Printf("1-D Jacobi on %d nodes x %d cells, %d iterations\n", nodes, cellsEach, iterations)
	fmt.Printf("simulated time: %v (%v per iteration, incl. halo exchange + barrier)\n",
		elapsed, elapsed/shrimp.Time(iterations))
	fmt.Println("\ntemperature near the hot boundary (diffusion front):")
	for g := 0; g < 24; g += 3 {
		node, cell := g/cellsEach, g%cellsEach+1
		fmt.Printf("  cell %3d: %6.2f\n", g, grid[node][cell])
	}
	var total float64
	for i := range grid {
		for c := 1; c <= cellsEach; c++ {
			total += grid[i][c]
		}
	}
	fmt.Printf("total heat in the domain: %.2f\n", total)
	fmt.Printf("\nbarrier rounds: %d; all mappings were established before the loop\n",
		barrier.Generation())
}

// NX/2-style ping-pong: two single-buffered channels, one in each
// direction, measure simulated round-trip time across message sizes and
// across the two network interface generations. The crossover between
// the EISA prototype and the next-generation Xpress deposit path shows
// up as message size grows.
package main

import (
	"fmt"
	"log"

	shrimp "repro"
)

func roundTrips(gen shrimp.Generation, size, rounds int) shrimp.Time {
	m := shrimp.New(shrimp.ConfigFor(2, 1, gen))
	a := shrimp.NewEndpoint(m.Node(0))
	b := shrimp.NewEndpoint(m.Node(1))
	// Buffers big enough for the largest message (2 pages).
	fwd, err := shrimp.NewChannel(m, a, b, 2)
	if err != nil {
		log.Fatal(err)
	}
	rev, err := shrimp.NewChannel(m, b, a, 2)
	if err != nil {
		log.Fatal(err)
	}

	ball := make([]byte, size)
	for i := range ball {
		ball[i] = byte(i)
	}
	start := m.Eng.Now()
	for r := 0; r < rounds; r++ {
		if err := fwd.Send(ball); err != nil {
			log.Fatal(err)
		}
		got, err := fwd.Recv()
		if err != nil {
			log.Fatal(err)
		}
		if err := rev.Send(got); err != nil {
			log.Fatal(err)
		}
		if _, err := rev.Recv(); err != nil {
			log.Fatal(err)
		}
	}
	return (m.Eng.Now() - start) / shrimp.Time(rounds)
}

func main() {
	const rounds = 4
	fmt.Printf("%8s  %14s  %14s\n", "bytes", "EISA RTT", "Xpress RTT")
	for _, size := range []int{16, 64, 256, 1024, 4096} {
		e := roundTrips(shrimp.GenEISAPrototype, size, rounds)
		x := roundTrips(shrimp.GenXpress, size, rounds)
		fmt.Printf("%8d  %14v  %14v\n", size, e, x)
	}
	fmt.Println("\n(blocked-write merging carries the payload; the flag word's")
	fmt.Println("single-write packet provides the low-latency arrival signal)")
}

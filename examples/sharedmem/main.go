// PRAM-style shared memory (paper §4.1): two processes on different
// nodes create complementary automatic-update mappings over a "shared"
// page. Each keeps a local copy; every local store is duplicated into
// the remote copy by the hardware. With a software convention — each
// writer owns a disjoint region — the copies stay consistent, which is
// exactly the PRAM-consistency programming model the paper describes.
package main

import (
	"fmt"
	"log"

	shrimp "repro"
)

func main() {
	m := shrimp.New(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype))
	nodeA, nodeB := m.Node(0), m.Node(1)
	procA := nodeA.K.CreateProcess()
	procB := nodeB.K.CreateProcess()

	pageA, err := procA.AllocPages(1)
	if err != nil {
		log.Fatal(err)
	}
	pageB, err := procB.AllocPages(1)
	if err != nil {
		log.Fatal(err)
	}

	// Complementary single-write automatic-update mappings: A's page
	// onto B's and B's onto A's. (Incoming deposits are not re-forwarded
	// by the NIC, so the cycle terminates.)
	_, fut := nodeA.K.Map(procA, pageA, shrimp.PageSize, nodeB.ID, procB.PID, pageB, shrimp.SingleWriteAU)
	if err := m.Await(fut); err != nil {
		log.Fatal(err)
	}
	_, fut = nodeB.K.Map(procB, pageB, shrimp.PageSize, nodeA.ID, procA.PID, pageA, shrimp.SingleWriteAU)
	if err := m.Await(fut); err != nil {
		log.Fatal(err)
	}

	// Ownership convention: A writes offsets [0,2048), B writes
	// [2048,4096). Simulate a few rounds of alternating updates.
	const rounds = 8
	for i := 0; i < rounds; i++ {
		if err := nodeA.UserWrite32(procA, pageA+shrimp.VAddr(4*i), uint32(100+i)); err != nil {
			log.Fatal(err)
		}
		if err := nodeB.UserWrite32(procB, pageB+shrimp.VAddr(2048+4*i), uint32(200+i)); err != nil {
			log.Fatal(err)
		}
	}
	m.RunUntilIdle(10_000_000)

	// Both processes now see both regions.
	fmt.Println("process A's view        process B's view")
	for i := 0; i < rounds; i++ {
		aLow, _ := nodeA.UserRead32(procA, pageA+shrimp.VAddr(4*i))
		aHigh, _ := nodeA.UserRead32(procA, pageA+shrimp.VAddr(2048+4*i))
		bLow, _ := nodeB.UserRead32(procB, pageB+shrimp.VAddr(4*i))
		bHigh, _ := nodeB.UserRead32(procB, pageB+shrimp.VAddr(2048+4*i))
		fmt.Printf("  [%d]=%3d  [2048+%d]=%3d    [%d]=%3d  [2048+%d]=%3d\n",
			4*i, aLow, 4*i, aHigh, 4*i, bLow, 4*i, bHigh)
		if aLow != bLow || aHigh != bHigh {
			log.Fatalf("copies diverged at round %d", i)
		}
	}
	fmt.Println("\nlocal copies are consistent: every store was duplicated to the")
	fmt.Println("remote copy by the snooping network interface, no kernel involved")
}

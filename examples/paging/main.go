// Mapping consistency under paging (paper §4.4): a receive buffer's
// physical page is replaced while a sender maps into it. Under the
// invalidation protocol the kernels shoot down the remote NIPT entry
// (marking the sender's page read-only), replace the page, and lazily
// re-establish the mapping when the sender next writes — via a page
// fault, exactly like TLB consistency in shared-memory multiprocessors.
package main

import (
	"fmt"
	"log"

	shrimp "repro"
)

func main() {
	cfg := shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype)
	cfg.Kernel.Policy = shrimp.InvalidateProtocol
	m := shrimp.New(cfg)
	nodeA, nodeB := m.Node(0), m.Node(1)
	sender := nodeA.K.CreateProcess()
	receiver := nodeB.K.CreateProcess()

	sendVA, err := sender.AllocPages(1)
	if err != nil {
		log.Fatal(err)
	}
	recvVA, err := receiver.AllocPages(1)
	if err != nil {
		log.Fatal(err)
	}
	_, fut := nodeA.K.Map(sender, sendVA, shrimp.PageSize,
		nodeB.ID, receiver.PID, recvVA, shrimp.SingleWriteAU)
	if err := m.Await(fut); err != nil {
		log.Fatal(err)
	}

	// Traffic flows.
	if err := nodeA.UserWrite32(sender, sendVA, 1); err != nil {
		log.Fatal(err)
	}
	m.RunUntilIdle(10_000_000)
	v, _ := nodeB.UserRead32(receiver, recvVA)
	oldFrame, _ := receiver.FrameOf(recvVA)
	fmt.Printf("before eviction: receiver sees %d in frame %d\n", v, oldFrame)

	// Replace the mapped-in page. The kernel must first invalidate the
	// sender's NIPT entry and collect the acknowledgement.
	if err := m.Await(nodeB.K.EvictPage(receiver, recvVA.Page())); err != nil {
		log.Fatalf("evict: %v", err)
	}
	// Take the freed frame for other use, as real memory pressure would.
	if _, err := receiver.AllocPages(1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evicted: sender served %d invalidation(s); its page is now read-only\n",
		nodeA.K.Stats().InvalidatesServed)

	// The sender writes again: page fault -> kernel re-establishes the
	// mapping against the page's new frame -> the store retries and
	// lands. (UserWrite32 surfaces the fault; the kernel repair path is
	// driven here the way the CPU's fault handler drives it.)
	stack, _ := sender.AllocPages(1)
	prog, err := shrimp.Assemble("poke", `
poke:
	mov	dword [SBUF], 42
	hlt
`, map[string]int64{"SBUF": int64(sendVA)})
	if err != nil {
		log.Fatal(err)
	}
	nodeA.K.BindProcess(sender)
	cpu := nodeA.CPU
	cpu.Load(prog)
	cpu.R[4] = uint32(stack) + shrimp.PageSize // ESP
	if err := cpu.Start("poke"); err != nil {
		log.Fatal(err)
	}
	m.RunUntilIdle(50_000_000)
	if err := cpu.Err(); err != nil {
		log.Fatalf("cpu aborted: %v", err)
	}

	newFrame, _ := receiver.FrameOf(recvVA)
	v, _ = nodeB.UserRead32(receiver, recvVA)
	fmt.Printf("after write fault: mapping re-established to frame %d, receiver sees %d\n",
		newFrame, v)
	fmt.Printf("kernel stats: sender re-establish faults=%d, receiver page-ins=%d, evictions=%d\n",
		nodeA.K.Stats().ReestablishFaults, nodeB.K.Stats().PageIns, nodeB.K.Stats().Evictions)
}

// NX/2 port: the full programming surface the paper's csend/crecv
// belong to — typed messages with FIFO dispatch, non-blocking probes,
// and asynchronous operations with completion handles — running
// entirely at user level on mapped memory.
package main

import (
	"fmt"
	"log"

	shrimp "repro"
)

func main() {
	m := shrimp.New(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype))
	a := shrimp.NewEndpoint(m.Node(0))
	b := shrimp.NewEndpoint(m.Node(1))

	// The one kernel-mediated step: six map() handshakes build the
	// bidirectional port. Everything after this is user-level stores.
	pa, pb, err := shrimp.OpenNXPair(m, a, b, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Typed traffic: control messages (type 1) and bulk results
	// (type 2) interleave on the wire; receives dispatch by type.
	for i := 0; i < 3; i++ {
		if err := pa.Csend(1, []byte(fmt.Sprintf("control %d", i))); err != nil {
			log.Fatal(err)
		}
		if err := pa.Csend(2, []byte(fmt.Sprintf("bulk result %d", i))); err != nil {
			log.Fatal(err)
		}
	}
	// Drain the bulk stream first even though control arrived first.
	for i := 0; i < 3; i++ {
		got, err := pb.Crecv(2, 256)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("type 2: %q\n", got)
	}
	// The control messages were buffered in arrival order.
	if n := pb.PendingCount(); n != 3 {
		log.Fatalf("pending %d", n)
	}
	for i := 0; i < 3; i++ {
		got, err := pb.Crecv(1, 256)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("type 1: %q\n", got)
	}

	// Probes are non-blocking.
	if ok, _ := pb.Cprobe(shrimp.NXAnyType); ok {
		log.Fatal("probe found a ghost message")
	}
	fmt.Println("probe: port empty, as expected")

	// Asynchronous operations: post the receive first, overlap with
	// "computation", complete later.
	rh, err := pb.Irecv(9)
	if err != nil {
		log.Fatal(err)
	}
	sh, err := pa.Isend(9, []byte("overlapped payload"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("async send+recv posted; computing while the data moves...")
	if _, err := pa.Msgwait(sh); err != nil {
		log.Fatal(err)
	}
	got, err := pb.Msgwait(rh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async receive completed: %q (simulated time %v)\n", got, m.Eng.Now())
}

// Double buffering (Figure 6): a producer/consumer pipeline where the
// consumption of message i overlaps the transmission of message i+1.
// The example runs the same workload single- and double-buffered and
// reports the simulated completion times, demonstrating the overlap the
// paper's loop transformation buys.
package main

import (
	"fmt"
	"log"

	shrimp "repro"
)

const (
	iterations = 24
	msgBytes   = 2048
)

func produce(i int) []byte {
	b := make([]byte, msgBytes)
	for j := range b {
		b[j] = byte(i*131 + j*7)
	}
	return b
}

type channel interface {
	Send([]byte) error
	Recv() ([]byte, error)
}

// run pushes the workload through ch, alternating sends and receives
// the way the unrolled Figure 6 loop does, and returns the simulated
// elapsed time.
func run(m *shrimp.Machine, ch channel, pipelined bool) shrimp.Time {
	start := m.Eng.Now()
	if pipelined {
		// Prime the pipe: one message in flight ahead of the consumer.
		if err := ch.Send(produce(0)); err != nil {
			log.Fatal(err)
		}
		for i := 1; i < iterations; i++ {
			if err := ch.Send(produce(i)); err != nil {
				log.Fatal(err)
			}
			if _, err := ch.Recv(); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := ch.Recv(); err != nil {
			log.Fatal(err)
		}
	} else {
		for i := 0; i < iterations; i++ {
			if err := ch.Send(produce(i)); err != nil {
				log.Fatal(err)
			}
			if _, err := ch.Recv(); err != nil {
				log.Fatal(err)
			}
		}
	}
	return m.Eng.Now() - start
}

func main() {
	// Single-buffered run.
	m1 := shrimp.New(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype))
	single, err := shrimp.NewChannel(m1,
		shrimp.NewEndpoint(m1.Node(0)), shrimp.NewEndpoint(m1.Node(1)), 1)
	if err != nil {
		log.Fatal(err)
	}
	tSingle := run(m1, single, false)

	// Double-buffered run of the identical workload.
	m2 := shrimp.New(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype))
	double, err := shrimp.NewDoubleChannel(m2,
		shrimp.NewEndpoint(m2.Node(0)), shrimp.NewEndpoint(m2.Node(1)), 1)
	if err != nil {
		log.Fatal(err)
	}
	tDouble := run(m2, double, true)

	fmt.Printf("workload: %d messages x %d bytes\n", iterations, msgBytes)
	fmt.Printf("single buffering:  %v\n", tSingle)
	fmt.Printf("double buffering:  %v\n", tDouble)
	fmt.Printf("speedup from overlapping: %.2fx\n",
		float64(tSingle)/float64(tDouble))
}

// Quickstart: boot a two-node SHRIMP machine, map a buffer between two
// processes, and pass messages with the Figure 1 structure — map once
// outside the loop, then communicate with pure user-level stores.
package main

import (
	"fmt"
	"log"

	shrimp "repro"
)

func main() {
	// A 2×1 mesh of EISA-prototype nodes.
	m := shrimp.New(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype))

	// One process on each node; a single-buffered channel between them.
	sender := shrimp.NewEndpoint(m.Node(0))
	receiver := shrimp.NewEndpoint(m.Node(1))
	ch, err := shrimp.NewChannel(m, sender, receiver, 1)
	if err != nil {
		log.Fatalf("map: %v", err)
	}

	// The typical multicomputer loop: the mapping above was the slow,
	// protection-checked part; everything below is user-level stores.
	for i := 0; i < 5; i++ {
		msg := fmt.Sprintf("message %d over the mapped buffer", i)
		if err := ch.Send([]byte(msg)); err != nil {
			log.Fatalf("send: %v", err)
		}
		got, err := ch.Recv()
		if err != nil {
			log.Fatalf("recv: %v", err)
		}
		fmt.Printf("node %d received: %q (simulated time %v)\n",
			m.Node(1).ID, got, m.Eng.Now())
	}

	s := m.Node(0).NIC.Stats()
	fmt.Printf("\nsender NIC: %d packets out (%d kernel), %d payload bytes\n",
		s.PacketsOut, s.KernelPacketsOut, s.BytesOut)
	r := m.Node(1).NIC.Stats()
	fmt.Printf("receiver NIC: %d packets in, %d payload bytes, 0 drops=%v\n",
		r.PacketsIn, r.BytesIn, r.DropNotMappedIn == 0 && r.DropWrongDest == 0)
}

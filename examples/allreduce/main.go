// Ring allreduce: the classic multicomputer collective, built on mapped
// channels. Each of N nodes holds a vector; after 2(N-1) ring steps
// every node holds the elementwise global sum. All the mappings are
// established once; the steps are pure user-level communication.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	shrimp "repro"
)

const (
	nodes    = 4
	elements = 256
)

func encode(v []uint32) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[4*i:], x)
	}
	return b
}

func decode(b []byte) []uint32 {
	v := make([]uint32, len(b)/4)
	for i := range v {
		v[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return v
}

func main() {
	m := shrimp.New(shrimp.ConfigFor(4, 1, shrimp.GenXpress))
	parts := make([]shrimp.Endpoint, nodes)
	for i := range parts {
		parts[i] = shrimp.NewEndpoint(m.Node(i))
	}
	// Ring links i -> (i+1)%N, mapped once.
	links := make([]*shrimp.Channel, nodes)
	for i := 0; i < nodes; i++ {
		ch, err := shrimp.NewChannel(m, parts[i], parts[(i+1)%nodes], 1)
		if err != nil {
			log.Fatal(err)
		}
		links[i] = ch
	}

	// Each node's local contribution.
	vecs := make([][]uint32, nodes)
	for n := range vecs {
		vecs[n] = make([]uint32, elements)
		for i := range vecs[n] {
			vecs[n][i] = uint32(n + 1) // node n contributes n+1 everywhere
		}
	}
	want := uint32(0)
	for n := 0; n < nodes; n++ {
		want += uint32(n + 1) // = 10 for 4 nodes
	}

	start := m.Eng.Now()
	// Reduce-scatter then allgather, chunk by chunk around the ring.
	chunk := elements / nodes
	slice := func(v []uint32, c int) []uint32 { return v[c*chunk : (c+1)*chunk] }
	for step := 0; step < nodes-1; step++ {
		for n := 0; n < nodes; n++ {
			c := (n - step + nodes) % nodes
			if err := links[n].Send(encode(slice(vecs[n], c))); err != nil {
				log.Fatal(err)
			}
		}
		for n := 0; n < nodes; n++ {
			from := (n - 1 + nodes) % nodes
			c := (from - step + nodes) % nodes
			in, err := links[from].Recv()
			if err != nil {
				log.Fatal(err)
			}
			for i, x := range decode(in) {
				slice(vecs[n], c)[i] += x
			}
		}
	}
	for step := 0; step < nodes-1; step++ {
		for n := 0; n < nodes; n++ {
			c := (n + 1 - step + nodes) % nodes
			if err := links[n].Send(encode(slice(vecs[n], c))); err != nil {
				log.Fatal(err)
			}
		}
		for n := 0; n < nodes; n++ {
			from := (n - 1 + nodes) % nodes
			c := (from + 1 - step + nodes) % nodes
			in, err := links[from].Recv()
			if err != nil {
				log.Fatal(err)
			}
			copy(slice(vecs[n], c), decode(in))
		}
	}
	elapsed := m.Eng.Now() - start

	for n := 0; n < nodes; n++ {
		for i, x := range vecs[n] {
			if x != want {
				log.Fatalf("node %d element %d = %d, want %d", n, i, x, want)
			}
		}
	}
	fmt.Printf("allreduce over %d nodes x %d elements: every element = %d on every node\n",
		nodes, elements, want)
	fmt.Printf("simulated time: %v (%d ring steps, %d bytes moved per node per step)\n",
		elapsed, 2*(nodes-1), chunk*4)
	s := m.Net.Stats()
	fmt.Printf("backplane: %d packets, %d wire bytes\n", s.Delivered, s.TotalWireByte)
}

package shrimp_test

// The benchmark harness regenerates every quantitative result in the
// paper's evaluation (§5) plus the ablations called out in DESIGN.md.
// The interesting outputs are the custom metrics (instructions,
// simulated microseconds, MB/s) — wall-clock ns/op only measures the
// simulator itself.
//
//	go test -bench=. -benchmem
//
// Experiment index:
//
//	BenchmarkTable1/*          E1  Table 1 instruction counts
//	BenchmarkLatency/*         E2  §5.1 latency (<2 us EISA, <1 us next-gen)
//	BenchmarkBandwidth/*       E3  §5.1 peak bandwidth (33 / ~70 MB/s)
//	BenchmarkNX2Baseline       E4  §5.2 kernel-mediated comparison (~3.2x)
//	BenchmarkAblationAU/*      A1  single-write vs blocked-write update
//	BenchmarkAblationFlowCtl   A2  FIFO thresholds under saturation
//	BenchmarkAblationPaging/*  A3  pin vs invalidate replacement cost
//	BenchmarkKernelRingRPC     kernel control-plane round trip

import (
	"fmt"
	"testing"

	shrimp "repro"
)

func BenchmarkTable1(b *testing.B) {
	cases := []struct {
		name string
		row  int
	}{
		{"SingleBuffering", 0},
		{"SingleBufferingCopy", 1},
		{"DoubleBufferingCase1", 2},
		{"DoubleBufferingCase2", 3},
		{"DoubleBufferingCase3", 4},
		{"DeliberateUpdate", 5},
		{"CsendCrecv", 6},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var row shrimp.Overhead
			for i := 0; i < b.N; i++ {
				row = shrimp.MeasureTable1(shrimp.GenEISAPrototype)[c.row]
			}
			b.ReportMetric(float64(row.Total()), "instrs")
			b.ReportMetric(float64(row.Source), "src-instrs")
			b.ReportMetric(float64(row.Dest), "dst-instrs")
			b.ReportMetric(float64(row.PaperTotal()), "paper-instrs")
		})
	}
}

func BenchmarkLatency(b *testing.B) {
	for _, g := range []struct {
		name string
		gen  shrimp.Generation
	}{{"EISA", shrimp.GenEISAPrototype}, {"Xpress", shrimp.GenXpress}} {
		b.Run(g.name, func(b *testing.B) {
			b.ReportAllocs()
			var r shrimp.LatencyResult
			for i := 0; i < b.N; i++ {
				r = shrimp.MaxLatency(shrimp.ConfigFor(4, 4, g.gen))
			}
			b.ReportMetric(r.Latency.Microseconds(), "sim-us")
			b.ReportMetric(float64(r.Hops), "hops")
		})
	}
}

func BenchmarkBandwidth(b *testing.B) {
	const total = 256 * 1024
	for _, g := range []struct {
		name string
		gen  shrimp.Generation
	}{{"EISA", shrimp.GenEISAPrototype}, {"Xpress", shrimp.GenXpress}} {
		for _, size := range []int{256, 1024, 4096} {
			b.Run(fmt.Sprintf("%s/%dB", g.name, size), func(b *testing.B) {
				b.ReportAllocs()
				var r shrimp.BandwidthResult
				for i := 0; i < b.N; i++ {
					r = shrimp.MeasureDeliberateBandwidth(
						shrimp.ConfigFor(2, 1, g.gen), 0, 1, size, total)
				}
				b.ReportMetric(r.MBps, "sim-MB/s")
			})
		}
	}
}

func BenchmarkNX2Baseline(b *testing.B) {
	b.ReportAllocs()
	var c shrimp.BaselineComparison
	for i := 0; i < b.N; i++ {
		c = shrimp.MeasureBaseline(shrimp.GenEISAPrototype)
	}
	b.ReportMetric(float64(c.Shrimp.Total()), "shrimp-instrs")
	b.ReportMetric(float64(c.BaseCsend.User+c.BaseCsend.Kernel), "base-csend-instrs")
	b.ReportMetric(float64(c.BaseCrecv.User+c.BaseCrecv.Kernel), "base-crecv-instrs")
	b.ReportMetric(c.Ratio(), "overhead-ratio")
}

func BenchmarkAblationAU(b *testing.B) {
	for _, m := range []struct {
		name string
		mode shrimp.Mode
	}{{"SingleWrite", shrimp.SingleWriteAU}, {"BlockedWrite", shrimp.BlockedWriteAU}} {
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			var r shrimp.AUBandwidthResult
			for i := 0; i < b.N; i++ {
				r = shrimp.MeasureAUBandwidth(
					shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype), m.mode, 2000)
			}
			b.ReportMetric(r.MBps, "sim-MB/s")
			b.ReportMetric(r.PktPerStore, "pkts/store")
			b.ReportMetric(float64(r.WireBytes)/float64(4*r.Stores), "wire-amplification")
		})
	}
}

// BenchmarkAblationFlowCtl saturates a receiver (slow EISA deposit) from
// a fast deliberate-update sender and reports how the §4 thresholds
// behave: outgoing-FIFO stall events and peak FIFO occupancies. The
// invariant — no FIFO ever overflows — is enforced by panics inside the
// model.
func BenchmarkAblationFlowCtl(b *testing.B) {
	b.ReportAllocs()
	var stalls, maxOut, maxIn float64
	for i := 0; i < b.N; i++ {
		stalls, maxOut, maxIn = flowStats()
	}
	b.ReportMetric(stalls, "out-stall-events")
	b.ReportMetric(maxOut, "max-outfifo-bytes")
	b.ReportMetric(maxIn, "max-infifo-bytes")
}

// flowStats drives a saturating stream on a machine we keep hold of, so
// the FIFO statistics are observable.
func flowStats() (stalls, maxOut, maxIn float64) {
	m := shrimp.New(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype))
	snd := shrimp.NewEndpoint(m.Node(0))
	rcv := shrimp.NewEndpoint(m.Node(1))
	bs, err := shrimp.NewBlockSender(m, snd, rcv, 4)
	if err != nil {
		panic(err)
	}
	payload := make([]byte, 4*shrimp.PageSize)
	if err := bs.Write(0, payload); err != nil {
		panic(err)
	}
	m.RunUntilIdle(50_000_000)
	for i := 0; i < 64; i++ {
		if err := bs.Send(0, 4*shrimp.PageSize); err != nil {
			panic(err)
		}
	}
	m.RunUntilIdle(500_000_000)
	s0 := m.Node(0).NIC.Stats()
	s1 := m.Node(1).NIC.Stats()
	return float64(s0.OutFullEvents), float64(s0.MaxOutFIFOBytes), float64(s1.MaxInFIFOBytes)
}

func BenchmarkAblationPaging(b *testing.B) {
	for _, p := range []struct {
		name   string
		policy shrimp.PagingPolicy
	}{{"Pin", shrimp.PinPages}, {"Invalidate", shrimp.InvalidateProtocol}} {
		b.Run(p.name, func(b *testing.B) {
			b.ReportAllocs()
			var evictUS float64
			var refused, served float64
			for i := 0; i < b.N; i++ {
				evictUS, refused, served = pagingCost(p.policy)
			}
			b.ReportMetric(evictUS, "evict-sim-us")
			b.ReportMetric(refused, "refused")
			b.ReportMetric(served, "invalidations")
		})
	}
}

// pagingCost maps three senders into one receive page and measures the
// simulated time to evict it (Pin refuses; Invalidate pays one
// shootdown round per importer).
func pagingCost(policy shrimp.PagingPolicy) (evictUS, refused, served float64) {
	cfg := shrimp.ConfigFor(2, 2, shrimp.GenEISAPrototype)
	cfg.Kernel.Policy = policy
	m := shrimp.New(cfg)
	rcv := m.Node(3)
	pr := rcv.K.CreateProcess()
	recvVA, err := pr.AllocPages(1)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		node := m.Node(i)
		ps := node.K.CreateProcess()
		sendVA, err := ps.AllocPages(1)
		if err != nil {
			panic(err)
		}
		m.MustMap(ps, sendVA, shrimp.PageSize, rcv.ID, pr.PID, recvVA, shrimp.SingleWriteAU)
	}
	m.RunUntilIdle(50_000_000)
	start := m.Eng.Now()
	fut := rcv.K.EvictPage(pr, recvVA.Page())
	err = m.Await(fut)
	elapsed := m.Eng.Now() - start
	if policy == shrimp.PinPages {
		if err == nil {
			panic("pin policy should refuse")
		}
		refused = 1
	} else if err != nil {
		panic(err)
	}
	var inv uint64
	for i := 0; i < 3; i++ {
		inv += m.Node(i).K.Stats().InvalidatesServed
	}
	return elapsed.Microseconds(), refused, float64(inv)
}

// BenchmarkAblationOverlap measures the §4.1 claim: CPU-visible
// overhead of streaming results through an AU mapping while computing.
func BenchmarkAblationOverlap(b *testing.B) {
	b.ReportAllocs()
	var r shrimp.OverlapResult
	for i := 0; i < b.N; i++ {
		r = shrimp.MeasureOverlap(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype),
			shrimp.BlockedWriteAU, 400)
	}
	b.ReportMetric(r.OverheadPct, "cpu-overhead-%")
	b.ReportMetric(float64(r.BytesMoved), "bytes-in-background")
}

// BenchmarkAblationMergeWindow sweeps the blocked-write time limit.
func BenchmarkAblationMergeWindow(b *testing.B) {
	for _, w := range []shrimp.Time{20 * shrimp.Nanosecond, 500 * shrimp.Nanosecond} {
		b.Run(w.String(), func(b *testing.B) {
			b.ReportAllocs()
			var r shrimp.MergeWindowResult
			for i := 0; i < b.N; i++ {
				r = shrimp.MeasureMergeWindow(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype),
					w, 100*shrimp.Nanosecond, 256)
			}
			b.ReportMetric(r.PktPerStore, "pkts/store")
		})
	}
}

// BenchmarkKernelRingRPC measures the map() control-plane round trip:
// the full kernel-to-kernel handshake over the boot rings.
func BenchmarkKernelRingRPC(b *testing.B) {
	b.ReportAllocs()
	var us float64
	for i := 0; i < b.N; i++ {
		m := shrimp.New(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype))
		ps := m.Node(0).K.CreateProcess()
		pd := m.Node(1).K.CreateProcess()
		sendVA, _ := ps.AllocPages(1)
		recvVA, _ := pd.AllocPages(1)
		start := m.Eng.Now()
		m.MustMap(ps, sendVA, shrimp.PageSize, m.Node(1).ID, pd.PID, recvVA, shrimp.SingleWriteAU)
		us = (m.Eng.Now() - start).Microseconds()
	}
	b.ReportMetric(us, "map-sim-us")
}

// BenchmarkMeshWorkload measures machine-wide delivered bandwidth for
// the shrimp-sim traffic patterns on the 16-node prototype.
func BenchmarkMeshWorkload(b *testing.B) {
	patterns := []struct {
		name  string
		links func(w, h int) [][2]int
	}{
		{"Neighbors", func(w, h int) [][2]int {
			var out [][2]int
			for i := 0; i < w*h; i++ {
				x, y := i%w, i/w
				j := y*w + (x+1)%w
				if j != i {
					out = append(out, [2]int{i, j})
				}
			}
			return out
		}},
		{"Hotspot", func(w, h int) [][2]int {
			var out [][2]int
			for i := 1; i < w*h; i++ {
				out = append(out, [2]int{i, 0})
			}
			return out
		}},
	}
	for _, p := range patterns {
		b.Run(p.name, func(b *testing.B) {
			b.ReportAllocs()
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = runWorkload(p.links(4, 4))
			}
			b.ReportMetric(mbps, "machine-MB/s")
		})
	}
}

func runWorkload(links [][2]int) float64 {
	m := shrimp.New(shrimp.ConfigFor(4, 4, shrimp.GenEISAPrototype))
	eps := make([]shrimp.Endpoint, 16)
	for i := range eps {
		eps[i] = shrimp.NewEndpoint(m.Node(i))
	}
	chans := make([]*shrimp.Channel, len(links))
	for i, l := range links {
		ch, err := shrimp.NewChannel(m, eps[l[0]], eps[l[1]], 2)
		if err != nil {
			panic(err)
		}
		chans[i] = ch
	}
	const rounds, size = 4, 2048
	payload := make([]byte, size)
	start := m.Eng.Now()
	for r := 0; r < rounds; r++ {
		for _, ch := range chans {
			if err := ch.Send(payload); err != nil {
				panic(err)
			}
		}
		for _, ch := range chans {
			if _, err := ch.Recv(); err != nil {
				panic(err)
			}
		}
	}
	m.RunUntilIdle(2_000_000_000)
	elapsed := m.Eng.Now() - start
	return float64(rounds*len(links)*size) / 1e6 / elapsed.Seconds()
}

// shrimp-sim runs configurable workloads on a simulated SHRIMP machine
// and reports machine-wide statistics: message patterns across the mesh,
// NIC and backplane counters, and flow-control behavior.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	shrimp "repro"
)

func main() {
	mesh := flag.String("mesh", "4x4", "mesh dimensions, e.g. 4x4")
	gen := flag.String("gen", "eisa", "generation: eisa or xpress")
	workload := flag.String("workload", "neighbors", "workload: neighbors, hotspot or ring")
	msgBytes := flag.Int("bytes", 1024, "message size")
	rounds := flag.Int("rounds", 8, "workload rounds")
	traceN := flag.Int("trace", 0, "retain and dump the last N datapath events")
	flag.Parse()

	var w, h int
	if _, err := fmt.Sscanf(strings.ToLower(*mesh), "%dx%d", &w, &h); err != nil || w < 1 || h < 1 {
		fmt.Println("bad -mesh; want e.g. 4x4")
		return
	}
	g := shrimp.GenEISAPrototype
	if *gen == "xpress" {
		g = shrimp.GenXpress
	}
	cfg := shrimp.ConfigFor(w, h, g)
	cfg.TraceCapacity = *traceN
	m := shrimp.New(cfg)
	n := w * h

	// One endpoint per node.
	eps := make([]shrimp.Endpoint, n)
	for i := range eps {
		eps[i] = shrimp.NewEndpoint(m.Node(i))
	}

	// Build the channel set for the chosen pattern.
	type link struct{ src, dst int }
	var links []link
	switch *workload {
	case "neighbors":
		// Every node sends to its east neighbor (wrapping by row).
		for i := 0; i < n; i++ {
			x, y := i%w, i/w
			j := y*w + (x+1)%w
			if j != i {
				links = append(links, link{i, j})
			}
		}
	case "hotspot":
		// Everyone sends to node 0.
		for i := 1; i < n; i++ {
			links = append(links, link{i, 0})
		}
	case "ring":
		for i := 0; i < n; i++ {
			links = append(links, link{i, (i + 1) % n})
		}
	default:
		fmt.Println("unknown workload; want neighbors, hotspot or ring")
		return
	}

	channels := make([]*shrimp.Channel, len(links))
	pages := (*msgBytes+shrimp.PageSize-1)/shrimp.PageSize + 1
	for i, l := range links {
		ch, err := shrimp.NewChannel(m, eps[l.src], eps[l.dst], pages)
		if err != nil {
			fmt.Printf("map %d->%d: %v\n", l.src, l.dst, err)
			return
		}
		channels[i] = ch
	}

	payload := make([]byte, *msgBytes)
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	start := m.Now()
	for r := 0; r < *rounds; r++ {
		for _, ch := range channels {
			if err := ch.Send(payload); err != nil {
				fmt.Println("send:", err)
				return
			}
		}
		for i, ch := range channels {
			got, err := ch.Recv()
			if err != nil {
				fmt.Println("recv:", err)
				return
			}
			if len(got) != *msgBytes {
				fmt.Printf("link %d: short message %d\n", i, len(got))
				return
			}
		}
	}
	m.RunUntilIdle(1_000_000_000)
	elapsed := m.Now() - start

	moved := *rounds * len(links) * *msgBytes
	fmt.Printf("workload %q on %dx%d %s mesh: %d links x %d rounds x %d B\n",
		*workload, w, h, g, len(links), *rounds, *msgBytes)
	fmt.Printf("simulated time: %v   aggregate payload: %.2f MB   %.2f MB/s machine-wide\n",
		elapsed, float64(moved)/1e6, float64(moved)/1e6/elapsed.Seconds())

	ns := m.Net.Stats()
	fmt.Printf("\nbackplane: %d packets delivered, %d wire bytes, avg latency %v, max %v, %d flow-control parks\n",
		ns.Delivered, ns.TotalWireByte, ns.TotalLatency/shrimp.Time(max(1, int(ns.Delivered))), ns.MaxLatency, ns.Parked)

	var out, in, drops uint64
	var stalls uint64
	for i := 0; i < n; i++ {
		s := m.Node(i).NIC.Stats()
		out += s.PacketsOut
		in += s.PacketsIn
		drops += s.DropNotMappedIn + s.DropWrongDest + s.DropCRC
		stalls += s.OutFullEvents
	}
	fmt.Printf("NICs: %d packets out, %d in, %d drops, %d outgoing-FIFO stall events\n",
		out, in, drops, stalls)

	if *traceN > 0 {
		fmt.Printf("\n--- last %d datapath events ---\n", *traceN)
		if err := m.Tracer.Dump(os.Stdout); err != nil {
			fmt.Println("trace dump:", err)
		}
	}
}

// shrimp-faults sweeps the deterministic fault injector: a fixed-seed
// deliberate-update stream is pushed through an increasingly lossy mesh
// with the reliable-delivery layer on, and each point reports the
// goodput that survived alongside what recovery cost (retransmits,
// ACKs, NACKs, duplicate drops). Two runs with the same flags print
// byte-identical output — faults are a pure function of (seed, rates,
// clock), never of wall time or host scheduling.
//
//	shrimp-faults                          # default ladder to 5% loss
//	shrimp-faults -drops 0,10000,100000    # custom ppm ladder
//	shrimp-faults -seed 7 -w 4 -h 4        # corner-to-corner on a 4x4 mesh
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	shrimp "repro"
)

func main() {
	w := flag.Int("w", 2, "mesh width")
	h := flag.Int("h", 1, "mesh height")
	gen := flag.String("gen", "xpress", "network interface generation: eisa or xpress")
	seed := flag.Uint64("seed", 1729, "fault injector seed")
	drops := flag.String("drops", "0,1000,2500,5000,10000,25000,50000",
		"comma-separated packet drop rates in parts per million")
	transfer := flag.Int("transfer", 1024, "bytes per deliberate-update transfer")
	total := flag.Int("bytes", 128*1024, "total payload bytes per point")
	workers := flag.Int("workers", 1, "sweep worker-pool size (0 = GOMAXPROCS)")
	flag.Parse()

	g := shrimp.GenXpress
	if *gen == "eisa" {
		g = shrimp.GenEISAPrototype
	}
	ladder, err := parsePPM(*drops)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := shrimp.ConfigFor(*w, *h, g)
	cfg.Metrics = true // tail-latency quantiles ride the stage-total histogram
	cfg.Faults = shrimp.FaultConfig{Seed: *seed, Reliable: true}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	src, dst := 0, cfg.NodeCount()-1
	fmt.Printf("fault sweep: %dx%d %s mesh, node %d -> %d, %d B transfers, %d B per point, seed %d\n",
		*w, *h, g, src, dst, *transfer, *total, *seed)
	fmt.Println()
	fmt.Printf("  %-10s %-12s %-10s %-24s %-44s %s\n",
		"drop", "goodput", "delivered", "injected", "recovery", "latency p50/p99/p999")
	fmt.Printf("  %-10s %-12s %-10s %-24s %-44s %s\n",
		"----", "-------", "---------", "--------", "--------", "--------------------")
	failed := false
	for _, p := range shrimp.FaultSweep(cfg, ladder, *transfer, *total, *workers) {
		if p.Err != "" {
			failed = true
			fmt.Printf("  %8.2f%%  FAILED: %s\n", float64(p.DropPPM)/1e4, p.Err)
			continue
		}
		fmt.Printf("  %8.2f%%  %7.2f MB/s %7d B  %5d drop %4d dup%s  %v / %v / %v\n",
			float64(p.DropPPM)/1e4, p.GoodputMBps, p.GoodBytes,
			p.FaultDrops, p.Dups,
			fmt.Sprintf("  %4d rexmit %4d ack %3d nack %3d dupdrop",
				p.Retransmits, p.AcksSent, p.NacksSent, p.DupDrops),
			p.LatP50, p.LatP99, p.LatP999)
	}
	if failed {
		os.Exit(1)
	}
}

func parsePPM(s string) ([]uint32, error) {
	var out []uint32
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil || v > 1_000_000 {
			return nil, fmt.Errorf("shrimp-faults: bad drop rate %q (want 0..1000000 ppm)", f)
		}
		out = append(out, uint32(v))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shrimp-faults: -drops is empty")
	}
	return out, nil
}

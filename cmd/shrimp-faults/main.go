// shrimp-faults sweeps the deterministic fault injector: a fixed-seed
// deliberate-update stream is pushed through an increasingly lossy mesh
// with the reliable-delivery layer on, and each point reports the
// goodput that survived alongside what recovery cost (retransmits,
// ACKs, NACKs, duplicate drops). Two runs with the same flags print
// byte-identical output — faults are a pure function of (seed, rates,
// clock), never of wall time or host scheduling.
//
//	shrimp-faults                          # default ladder to 5% loss
//	shrimp-faults -drops 0,10000,100000    # custom ppm ladder
//	shrimp-faults -seed 7 -w 4 -h 4        # corner-to-corner on a 4x4 mesh
//	shrimp-faults -avail 0,1,2 -w 4 -h 4   # availability vs crashed nodes
//
// The -avail mode swaps the loss ladder for a crash ladder: a ring
// workload runs with Survivable mode armed while the fault plan crashes
// 0, 1, 2... nodes mid-run, and each point reports the survivors'
// verified goodput, the failure-detector and teardown accounting, and a
// checksum of every surviving receive page (bit-identical across runs,
// partition counts, and resets).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	shrimp "repro"
)

func main() {
	w := flag.Int("w", 2, "mesh width")
	h := flag.Int("h", 1, "mesh height")
	gen := flag.String("gen", "xpress", "network interface generation: eisa or xpress")
	seed := flag.Uint64("seed", 1729, "fault injector seed")
	drops := flag.String("drops", "0,1000,2500,5000,10000,25000,50000",
		"comma-separated packet drop rates in parts per million")
	transfer := flag.Int("transfer", 1024, "bytes per deliberate-update transfer")
	total := flag.Int("bytes", 128*1024, "total payload bytes per point")
	workers := flag.Int("workers", 1, "sweep worker-pool size (0 = GOMAXPROCS)")
	avail := flag.String("avail", "", "availability mode: comma-separated crashed-node counts (e.g. 0,1,2)")
	rounds := flag.Int("rounds", 6, "availability mode: write rounds per flow")
	words := flag.Int("words", 64, "availability mode: words per round per flow")
	partitions := flag.Int("partitions", 0, "availability mode: simulation engine partitions (0/1 = sequential)")
	crashAt := flag.Int("crashat", 450, "availability mode: first crash time in microseconds")
	stagger := flag.Int("stagger", 120, "availability mode: gap between crashes in microseconds")
	flag.Parse()

	g := shrimp.GenXpress
	if *gen == "eisa" {
		g = shrimp.GenEISAPrototype
	}
	if *avail != "" {
		availMode(*w, *h, g, *seed, *avail, *rounds, *words, *partitions, *workers,
			shrimp.Time(*crashAt)*shrimp.Microsecond, shrimp.Time(*stagger)*shrimp.Microsecond)
		return
	}
	ladder, err := parsePPM(*drops)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := shrimp.ConfigFor(*w, *h, g)
	cfg.Metrics = true // tail-latency quantiles ride the stage-total histogram
	cfg.Faults = shrimp.FaultConfig{Seed: *seed, Reliable: true}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	src, dst := 0, cfg.NodeCount()-1
	fmt.Printf("fault sweep: %dx%d %s mesh, node %d -> %d, %d B transfers, %d B per point, seed %d\n",
		*w, *h, g, src, dst, *transfer, *total, *seed)
	fmt.Println()
	fmt.Printf("  %-10s %-12s %-10s %-24s %-44s %s\n",
		"drop", "goodput", "delivered", "injected", "recovery", "latency p50/p99/p999")
	fmt.Printf("  %-10s %-12s %-10s %-24s %-44s %s\n",
		"----", "-------", "---------", "--------", "--------", "--------------------")
	failed := false
	for _, p := range shrimp.FaultSweep(cfg, ladder, *transfer, *total, *workers) {
		if p.Err != "" {
			failed = true
			fmt.Printf("  %8.2f%%  FAILED: %s\n", float64(p.DropPPM)/1e4, p.Err)
			continue
		}
		fmt.Printf("  %8.2f%%  %7.2f MB/s %7d B  %5d drop %4d dup%s  %v / %v / %v\n",
			float64(p.DropPPM)/1e4, p.GoodputMBps, p.GoodBytes,
			p.FaultDrops, p.Dups,
			fmt.Sprintf("  %4d rexmit %4d ack %3d nack %3d dupdrop",
				p.Retransmits, p.AcksSent, p.NacksSent, p.DupDrops),
			p.LatP50, p.LatP99, p.LatP999)
	}
	if failed {
		os.Exit(1)
	}
}

// availMode runs the crash-survival availability sweep: same machine,
// same printing discipline (two runs with the same flags are
// byte-identical), but the ladder is crashed-node counts instead of
// loss rates.
func availMode(w, h int, g shrimp.Generation, seed uint64, counts string, rounds, words, partitions, workers int,
	crashBase, crashStagger shrimp.Time) {
	var crashes []int
	for _, f := range strings.Split(counts, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 0 || v > 2 {
			fmt.Fprintf(os.Stderr, "shrimp-faults: bad crash count %q (want 0..2)\n", f)
			os.Exit(1)
		}
		crashes = append(crashes, v)
	}
	if len(crashes) == 0 {
		fmt.Fprintln(os.Stderr, "shrimp-faults: -avail is empty")
		os.Exit(1)
	}

	cfg := shrimp.ConfigFor(w, h, g)
	cfg.Metrics = true
	cfg.Partitions = partitions
	cfg.Faults = shrimp.FaultConfig{
		Seed:       seed,
		Reliable:   true,
		Survivable: true,
		Heartbeat:  200 * shrimp.Microsecond,
		// A short budget and timeout keep detection latency small
		// relative to the workload without changing its semantics.
		RetryBudget: 6,
		AckTimeout:  10 * shrimp.Microsecond,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("availability sweep: %dx%d %s mesh, ring flows, %d rounds x %d words, crashes at %v +%v, seed %d\n",
		w, h, g, rounds, words, crashBase, crashStagger, seed)
	fmt.Println()
	fmt.Printf("  %-8s %-12s %-16s %-36s %-18s %s\n",
		"crashes", "flows", "verified", "failure detector", "memsum", "latency p50/p99/p999")
	fmt.Printf("  %-8s %-12s %-16s %-36s %-18s %s\n",
		"-------", "-----", "--------", "----------------", "------", "--------------------")
	failed := false
	for _, p := range shrimp.AvailabilitySweep(cfg, crashes, crashBase, crashStagger, rounds, words, workers) {
		if p.Err != "" {
			failed = true
			fmt.Printf("  %7d  FAILED: %s\n", p.Crashes, p.Err)
			continue
		}
		fmt.Printf("  %7d  %3d/%-3d good %8d words  %3d peer-downs %5d drops %4d torn  %016x  %v / %v / %v\n",
			p.Crashes, p.GoodFlows, p.Flows, p.GoodWords,
			p.PeerDowns, p.PeerDownDrops, p.MapsTorn, p.MemSum,
			p.LatP50, p.LatP99, p.LatP999)
	}
	if failed {
		os.Exit(1)
	}
}

func parsePPM(s string) ([]uint32, error) {
	var out []uint32
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil || v > 1_000_000 {
			return nil, fmt.Errorf("shrimp-faults: bad drop rate %q (want 0..1000000 ppm)", f)
		}
		out = append(out, uint32(v))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shrimp-faults: -drops is empty")
	}
	return out, nil
}

// shrimp-asm assembles a routine in the simulated i386-subset and runs
// it on a single-node machine, reporting registers, flags, instruction
// counts and simulated time — a workbench for writing message-passing
// primitives like those of Table 1.
//
// The program gets one private data page (symbol DATA) and a stack
// (symbol STKTOP preloaded into ESP). Example:
//
//	shrimp-asm -entry sum -src 'sum:
//	        mov ecx, 10
//	        xor eax, eax
//	loop:   add eax, ecx
//	        dec ecx
//	        jnz loop
//	        hlt'
package main

import (
	"flag"
	"fmt"
	"os"

	shrimp "repro"
	"repro/internal/isa"
)

func main() {
	src := flag.String("src", "", "assembly source text (or -file)")
	file := flag.String("file", "", "assembly source file")
	entry := flag.String("entry", "main", "entry label")
	list := flag.Bool("list", false, "print the assembled listing")
	maxInstr := flag.Uint64("max", 1_000_000, "instruction budget")
	flag.Parse()

	text := *src
	if *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		text = string(b)
	}
	if text == "" {
		fmt.Fprintln(os.Stderr, "need -src or -file")
		os.Exit(1)
	}

	m := shrimp.New(shrimp.ConfigFor(1, 1, shrimp.GenXpress))
	node := m.Node(0)
	proc := node.K.CreateProcess()
	data, err := proc.AllocPages(4)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stack, err := proc.AllocPages(1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	syms := map[string]int64{
		"DATA":   int64(data),
		"STKTOP": int64(stack) + shrimp.PageSize,
	}
	prog, err := shrimp.Assemble("cli", text, syms)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *list {
		fmt.Print(prog.Listing())
	}

	node.K.BindProcess(proc)
	cpu := node.CPU
	cpu.Load(prog)
	cpu.R[isa.ESP] = uint32(syms["STKTOP"])
	start := m.Now()
	if err := cpu.Start(*entry); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for !cpu.Halted() {
		if !m.Step() {
			fmt.Fprintln(os.Stderr, "deadlock: nothing left to simulate")
			os.Exit(1)
		}
		if cpu.Counters().Total() > *maxInstr {
			fmt.Fprintf(os.Stderr, "instruction budget (%d) exceeded at eip=%d\n", *maxInstr, cpu.EIP())
			os.Exit(1)
		}
	}
	if err := cpu.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "aborted:", err)
		os.Exit(1)
	}

	c := cpu.Counters()
	fmt.Printf("halted after %d instruction(s) (%d rep iterations), simulated time %v\n",
		c.Total(), c.RepIters, m.Now()-start)
	names := []string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}
	for i, n := range names {
		fmt.Printf("%s=%#-10x ", n, cpu.R[i])
		if i == 3 {
			fmt.Println()
		}
	}
	fmt.Printf("\nflags: ZF=%v SF=%v CF=%v OF=%v\n", cpu.ZF, cpu.SF, cpu.CF, cpu.OF)
}

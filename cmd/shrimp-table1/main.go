// shrimp-table1 regenerates Table 1 of the paper — the software
// overhead, in executed CPU instructions, of each message-passing
// primitive — plus the §5.2 comparison against a traditional
// kernel-mediated NX/2 implementation.
package main

import (
	"flag"
	"fmt"

	shrimp "repro"
)

func main() {
	gen := flag.String("gen", "eisa", "network interface generation: eisa or xpress")
	baseline := flag.Bool("baseline", true, "also run the kernel-mediated NX/2 baseline comparison")
	flag.Parse()

	g := shrimp.GenEISAPrototype
	if *gen == "xpress" {
		g = shrimp.GenXpress
	}

	fmt.Println("Table 1: software overhead of message passing primitives")
	fmt.Println("(instructions; measured on the simulated machine vs the paper)")
	fmt.Println()
	fmt.Printf("  %-28s %-12s %s\n", "primitive", "measured", "paper")
	fmt.Printf("  %-28s %-12s %s\n", "---------", "--------", "-----")
	for _, row := range shrimp.MeasureTable1(g) {
		fmt.Printf("  %-28s %3d (%d+%d)%*s %3d (%d+%d)\n",
			row.Name, row.Total(), row.Source, row.Dest,
			12-lenCounts(row.Total(), row.Source, row.Dest), "",
			row.PaperTotal(), row.PaperSource, row.PaperDest)
	}

	if !*baseline {
		return
	}
	fmt.Println()
	fmt.Println("NX/2 comparison (§5.2): SHRIMP user-level vs kernel-mediated baseline")
	c := shrimp.MeasureBaseline(g)
	fmt.Printf("  SHRIMP csend+crecv:    %d instructions (%d+%d)\n",
		c.Shrimp.Total(), c.Shrimp.Source, c.Shrimp.Dest)
	fmt.Printf("  baseline csend:        %d instructions (%d user + %d kernel), %d trap(s)\n",
		c.BaseCsend.User+c.BaseCsend.Kernel, c.BaseCsend.User, c.BaseCsend.Kernel, c.BaseCsend.Traps)
	fmt.Printf("  baseline crecv:        %d instructions (%d user + %d kernel), %d trap(s)\n",
		c.BaseCrecv.User+c.BaseCrecv.Kernel, c.BaseCrecv.User, c.BaseCrecv.Kernel, c.BaseCrecv.Traps)
	fmt.Printf("  overhead ratio:        %.2fx   (paper: NX/2 fast paths 222+261 vs 151, ~3.2x,\n", c.Ratio())
	fmt.Println("                                  plus system call and DMA interrupt costs)")
}

func lenCounts(t, s, d uint64) int {
	return len(fmt.Sprintf("%3d (%d+%d)", t, s, d))
}

// shrimp-bench measures the simulator itself rather than the simulated
// hardware: discrete events dispatched per wall-clock second, heap
// allocations per operation, and the ratio of simulated time to wall
// time, for the E2 latency and E3 bandwidth experiments and the 16-node
// mesh workloads. It emits a JSON report (BENCH_1.json in the repo root
// is a committed snapshot; see DESIGN.md "Performance" for how to
// regenerate it).
//
//	go run ./cmd/shrimp-bench -o BENCH_1.json
package main

import (
	"flag"
	"fmt"
	"os"

	shrimp "repro"
	"repro/internal/perf"
)

func main() {
	iters := flag.Int("iters", 20, "measured iterations per benchmark")
	out := flag.String("o", "", "write JSON report to this file (default stdout)")
	flag.Parse()

	rep := perf.NewReport("Virtual Memory Mapped Network Interface for the SHRIMP Multicomputer")
	run := func(name string, fn func() perf.Sample) {
		r := perf.Measure(name, *iters, fn)
		rep.Results = append(rep.Results, r)
		fmt.Fprintf(os.Stderr, "%-28s %12.0f events/s  %8.1f sim/wall  %10.0f allocs/op  %.3f ms/op\n",
			r.Name, r.EventsPerSec, r.SimWallRatio, r.AllocsPerOp, r.WallNSPerOp/1e6)
	}

	run("latency/eisa", func() perf.Sample { return latencySample(shrimp.GenEISAPrototype) })
	run("latency/xpress", func() perf.Sample { return latencySample(shrimp.GenXpress) })
	run("bandwidth/eisa/1024B", func() perf.Sample { return bandwidthSample(shrimp.GenEISAPrototype, 1024) })
	run("bandwidth/xpress/1024B", func() perf.Sample { return bandwidthSample(shrimp.GenXpress, 1024) })
	run("mesh/neighbors", func() perf.Sample { return meshSample(neighborLinks(4, 4)) })
	run("mesh/hotspot", func() perf.Sample { return meshSample(hotspotLinks(4, 4)) })

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// latencySample measures the E2 corner-to-corner automatic-update store
// latency on a fresh 16-node machine. Events/SimTime are the whole-run
// engine totals (boot handshake included).
func latencySample(gen shrimp.Generation) perf.Sample {
	r := shrimp.MaxLatency(shrimp.ConfigFor(4, 4, gen))
	return perf.Sample{
		Events:  r.Events,
		SimTime: r.SimEnd,
		Metrics: map[string]float64{
			"latency_sim_us": r.Latency.Microseconds(),
			"hops":           float64(r.Hops),
		},
	}
}

// bandwidthSample measures E3 deliberate-update bandwidth at the given
// transfer size, streaming 256 KB between two nodes.
func bandwidthSample(gen shrimp.Generation, size int) perf.Sample {
	r := shrimp.MeasureDeliberateBandwidth(shrimp.ConfigFor(2, 1, gen), 0, 1, size, 256*1024)
	return perf.Sample{
		Events:  r.Events,
		SimTime: r.SimEnd,
		Metrics: map[string]float64{"bandwidth_sim_mbps": r.MBps},
	}
}

func neighborLinks(w, h int) [][2]int {
	var out [][2]int
	for i := 0; i < w*h; i++ {
		x, y := i%w, i/w
		j := y*w + (x+1)%w
		if j != i {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

func hotspotLinks(w, h int) [][2]int {
	var out [][2]int
	for i := 1; i < w*h; i++ {
		out = append(out, [2]int{i, 0})
	}
	return out
}

// meshSample drives the 16-node channel workload (the same traffic as
// BenchmarkMeshWorkload) and reports whole-run engine totals.
func meshSample(links [][2]int) perf.Sample {
	m := shrimp.New(shrimp.ConfigFor(4, 4, shrimp.GenEISAPrototype))
	eps := make([]shrimp.Endpoint, 16)
	for i := range eps {
		eps[i] = shrimp.NewEndpoint(m.Node(i))
	}
	chans := make([]*shrimp.Channel, len(links))
	for i, l := range links {
		ch, err := shrimp.NewChannel(m, eps[l[0]], eps[l[1]], 2)
		if err != nil {
			panic(err)
		}
		chans[i] = ch
	}
	const rounds, size = 4, 2048
	payload := make([]byte, size)
	start := m.Eng.Now()
	for r := 0; r < rounds; r++ {
		for _, ch := range chans {
			if err := ch.Send(payload); err != nil {
				panic(err)
			}
		}
		for _, ch := range chans {
			if _, err := ch.Recv(); err != nil {
				panic(err)
			}
		}
	}
	m.RunUntilIdle(2_000_000_000)
	elapsed := m.Eng.Now() - start
	mbps := float64(rounds*len(links)*size) / 1e6 / elapsed.Seconds()
	return perf.Sample{
		Events:  m.Eng.Fired(),
		SimTime: m.Eng.Now(),
		Metrics: map[string]float64{"machine_mbps": mbps},
	}
}

// shrimp-bench measures the simulator itself rather than the simulated
// hardware: discrete events dispatched per wall-clock second, heap
// allocations per operation, and the ratio of simulated time to wall
// time, for the E2 latency and E3 bandwidth experiments, the 16-node
// mesh workloads, the parallel sweep harness (sequential versus
// -parallel N workers, fresh machines versus Reset reuse), and the
// partitioned engine (mesh/par/N: one large-mesh allreduce machine
// split across -partitions N engines). It emits a JSON report (the
// BENCH_*.json files in the repo root are committed snapshots; see
// DESIGN.md §6–§11 for how each pair is regenerated).
//
//	go run ./cmd/shrimp-bench -o BENCH_1.json
//	go run ./cmd/shrimp-bench -parallel 4 -o BENCH_2.json
//	go run ./cmd/shrimp-bench -only mesh/par -o BENCH_7.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	shrimp "repro"
	"repro/internal/perf"
)

func main() {
	iters := flag.Int("iters", 20, "measured iterations per benchmark")
	parallel := flag.Int("parallel", 1, "sweep worker-pool size for the sweep/*/par benchmarks (0 = GOMAXPROCS)")
	partitions := flag.String("partitions", "1,8", "comma-separated partition counts for the mesh/par/* benchmarks")
	meshDim := flag.String("mesh", "32x32", "mesh size WxH for the mesh/par/* benchmarks")
	only := flag.String("only", "", "run only benchmarks whose name contains this substring")
	out := flag.String("o", "", "write JSON report to this file (default stdout)")
	compare := flag.String("compare", "", "baseline report JSON; exit 1 on events/sec or allocs/op regressions beyond -tol")
	tol := flag.Float64("tol", 0.10, "fractional regression tolerance for -compare")
	speedup := flag.String("speedup", "", "A,B,minX: exit 1 unless benchmark B ran at least minX times faster (wall ns/op) than benchmark A")
	allocratio := flag.String("allocratio", "", "A,B,maxX: exit 1 if benchmark B allocated more than maxX times benchmark A's allocs/op")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the benchmark run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
	blockprofile := flag.String("blockprofile", "", "write a pprof blocking profile (channel/sync waits: rendezvous parks) to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a pprof mutex-contention profile to this file")
	flag.Parse()

	workers := *parallel
	if workers <= 0 {
		workers = shrimp.DefaultSweepWorkers()
	}
	partsList, err := parseInts(*partitions)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -partitions: %v\n", err)
		os.Exit(1)
	}
	meshW, meshH, err := parseMesh(*meshDim)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -mesh: %v\n", err)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	// Block and mutex profiling cover what the CPU profile cannot: time
	// partition workers and the coordinator spend parked on the gang
	// barrier (channel waits) and any lock contention. Rates are set
	// before any benchmark runs so the whole run is covered; the
	// profiles are written on the way out.
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockprofile)
	}
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexprofile)
	}

	rep := perf.NewReport("Virtual Memory Mapped Network Interface for the SHRIMP Multicomputer")
	rep.Workers = workers
	rep.Partitions = partsList
	run := func(name string, fn func() perf.Sample) {
		if *only != "" && !strings.Contains(name, *only) {
			return
		}
		r := perf.Measure(name, *iters, fn)
		rep.Results = append(rep.Results, r)
		fmt.Fprintf(os.Stderr, "%-28s %12.0f events/s  %8.1f sim/wall  %10.0f allocs/op  %.3f ms/op\n",
			r.Name, r.EventsPerSec, r.SimWallRatio, r.AllocsPerOp, r.WallNSPerOp/1e6)
	}

	run("latency/eisa", func() perf.Sample { return latencySample(shrimp.GenEISAPrototype) })
	run("latency/xpress", func() perf.Sample { return latencySample(shrimp.GenXpress) })
	run("bandwidth/eisa/1024B", func() perf.Sample { return bandwidthSample(shrimp.GenEISAPrototype, 1024) })
	run("bandwidth/xpress/1024B", func() perf.Sample { return bandwidthSample(shrimp.GenXpress, 1024) })
	run("mesh/neighbors", func() perf.Sample { return meshSample(neighborLinks(4, 4)) })
	run("mesh/hotspot", func() perf.Sample { return meshSample(hotspotLinks(4, 4)) })

	// Partitioned-engine pair: the same spanning-tree allreduce on one
	// -mesh machine, run with each -partitions count. The machine and
	// its channels are built lazily in Measure's untimed warm-up call
	// and released before the next partition count builds, so only the
	// allreduce rounds are timed. Simulated results are bit-identical
	// across counts (the partition differential suites); the wall-clock
	// ratio is the intra-machine parallel speedup. BENCH_7.json is the
	// committed snapshot of this pair.
	for _, p := range partsList {
		fn, done := allreduceSample(meshW, meshH, p)
		run(fmt.Sprintf("mesh/par/%d", p), fn)
		done() // stop the dropped machine's worker gang before the next count builds
		runtime.GC()
	}

	// Machine construction tax: the same latency point on a fresh machine
	// per op versus one machine Reset per op. The allocs/op gap is the
	// payoff of per-worker machine reuse in the sweeps.
	run("reuse/latency/fresh", func() perf.Sample {
		return latencyResultSample(shrimp.MaxLatency(shrimp.ConfigFor(4, 4, shrimp.GenEISAPrototype)))
	})
	reuseM := shrimp.New(shrimp.ConfigFor(4, 4, shrimp.GenEISAPrototype))
	run("reuse/latency/reset", func() perf.Sample {
		reuseM.Reset()
		return latencyResultSample(shrimp.MeasureStoreLatencyOn(reuseM, 0, 15))
	})

	// Sweep harness: the full 16-node latency sweep and the E3 bandwidth
	// size sweep — the pre-pool baseline (one fresh machine per point),
	// the sequential pool path, and the -parallel worker pool. Outputs
	// are bit-identical (internal/core differential tests); only wall
	// time and allocations differ.
	run("sweep/latency/fresh", latencySweepFreshSample)
	run("sweep/latency/seq", func() perf.Sample { return latencySweepSample(1) })
	run("sweep/latency/par", func() perf.Sample { return latencySweepSample(workers) })
	run("sweep/bandwidth/seq", func() perf.Sample { return bandwidthSweepSample(1) })
	run("sweep/bandwidth/par", func() perf.Sample { return bandwidthSweepSample(workers) })

	// Instrumentation tax: the same sequential latency sweep with the
	// metrics registry and causal spans off versus on. The registry's
	// contract is zero allocations on the hot path and under 10% wall
	// time; BENCH_3.json is the committed snapshot of this pair.
	run("metrics/sweep/off", func() perf.Sample { return metricsSweepSample(false) })
	run("metrics/sweep/on", func() perf.Sample { return metricsSweepSample(true) })

	// Flight-recorder tax: the same metrics-on sequential latency sweep
	// with the recorder disarmed versus sampling every 10 simulated µs.
	// Each sample is a registry snapshot into a preallocated ring, so the
	// contract is zero allocations per cut; BENCH_8.json is the committed
	// snapshot of this pair.
	run("metrics/recorder/off", func() perf.Sample { return recorderSweepSample(false) })
	run("metrics/recorder/on", func() perf.Sample { return recorderSweepSample(true) })

	// Batched CPU interpretation: the instruction-bound compute loop with
	// per-instruction stepping versus the default batch quantum. Events
	// here are retired instructions — the mode-independent unit of work —
	// so the off/on ratio is the interpreter speedup; engine events per
	// op (mode-dependent, the thing batching shrinks) ride along as a
	// metric. BENCH_4.json is the committed snapshot of this pair.
	run("cpu/batch/off", func() perf.Sample { return cpuBoundSample(1) })
	run("cpu/batch/on", func() perf.Sample { return cpuBoundSample(shrimp.DefaultConfig().CPU.MaxBatch) })

	// Superblock trace cache and spin fast-forward: the same compute loop
	// with batching on in both modes, so the off/on ratio isolates the
	// trace-dispatch speedup on top of BENCH_4's batching. BENCH_6.json is
	// the committed snapshot of this pair.
	run("cpu/trace/off", func() perf.Sample { return cpuTraceSample(false) })
	run("cpu/trace/on", func() perf.Sample { return cpuTraceSample(true) })

	// Fault-subsystem tax: the same deliberate-update stream with the
	// fault hooks absent versus armed at zero loss (seeded injector,
	// reliable delivery, ring CRC). The off path must stay within 10% of
	// the fault-free baseline and allocation-free (the ci.sh
	// BenchmarkStoreNoFaults guard); BENCH_5.json is the committed
	// snapshot of this pair.
	run("faults/off", func() perf.Sample { return faultsSample(false) })
	run("faults/on", func() perf.Sample { return faultsSample(true) })

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *compare != "" {
		f, err := os.Open(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		base, err := perf.ReadReport(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		regs := perf.Compare(base, rep, *tol)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "regressions vs %s (tolerance %.0f%%):\n", *compare, 100**tol)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "no regressions vs %s (tolerance %.0f%%)\n", *compare, 100**tol)
	}

	if *speedup != "" {
		parts := strings.Split(*speedup, ",")
		if len(parts) != 3 {
			fmt.Fprintln(os.Stderr, "bad -speedup: want A,B,minX")
			os.Exit(1)
		}
		minX, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -speedup factor: %v\n", err)
			os.Exit(1)
		}
		find := func(name string) perf.Result {
			for _, r := range rep.Results {
				if r.Name == name {
					return r
				}
			}
			fmt.Fprintf(os.Stderr, "-speedup: benchmark %q did not run\n", name)
			os.Exit(1)
			panic("unreachable")
		}
		a, b := find(parts[0]), find(parts[1])
		got := a.WallNSPerOp / b.WallNSPerOp
		if got < minX {
			fmt.Fprintf(os.Stderr, "speedup gate: %s is %.2fx faster than %s, want >= %.2fx\n",
				parts[1], got, parts[0], minX)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "speedup gate: %s is %.2fx faster than %s (>= %.2fx)\n",
			parts[1], got, parts[0], minX)
	}

	if *allocratio != "" {
		parts := strings.Split(*allocratio, ",")
		if len(parts) != 3 {
			fmt.Fprintln(os.Stderr, "bad -allocratio: want A,B,maxX")
			os.Exit(1)
		}
		maxX, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -allocratio factor: %v\n", err)
			os.Exit(1)
		}
		find := func(name string) perf.Result {
			for _, r := range rep.Results {
				if r.Name == name {
					return r
				}
			}
			fmt.Fprintf(os.Stderr, "-allocratio: benchmark %q did not run\n", name)
			os.Exit(1)
			panic("unreachable")
		}
		a, b := find(parts[0]), find(parts[1])
		got := b.AllocsPerOp / a.AllocsPerOp
		if got > maxX {
			fmt.Fprintf(os.Stderr, "alloc gate: %s allocates %.2fx %s (%.0f vs %.0f allocs/op), want <= %.2fx\n",
				parts[1], got, parts[0], b.AllocsPerOp, a.AllocsPerOp, maxX)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "alloc gate: %s allocates %.2fx %s (<= %.2fx)\n",
			parts[1], got, parts[0], maxX)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeProfile dumps a named runtime profile (block, mutex) to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// parseInts parses a comma-separated list of positive ints.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("count %d < 1", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseMesh parses "WxH".
func parseMesh(s string) (w, h int, err error) {
	a, b, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, fmt.Errorf("want WxH, got %q", s)
	}
	if w, err = strconv.Atoi(a); err != nil {
		return 0, 0, err
	}
	if h, err = strconv.Atoi(b); err != nil {
		return 0, 0, err
	}
	if w < 2 || h < 1 {
		return 0, 0, fmt.Errorf("mesh %dx%d too small", w, h)
	}
	return w, h, nil
}

// latencySample measures the E2 corner-to-corner automatic-update store
// latency on a fresh 16-node machine. Events/SimTime are the whole-run
// engine totals (boot handshake included).
func latencySample(gen shrimp.Generation) perf.Sample {
	return latencyResultSample(shrimp.MaxLatency(shrimp.ConfigFor(4, 4, gen)))
}

func latencyResultSample(r shrimp.LatencyResult) perf.Sample {
	return perf.Sample{
		Events:  r.Events,
		SimTime: r.SimEnd,
		Metrics: map[string]float64{
			"latency_sim_us": r.Latency.Microseconds(),
			"hops":           float64(r.Hops),
		},
	}
}

// bandwidthSample measures E3 deliberate-update bandwidth at the given
// transfer size, streaming 256 KB between two nodes.
func bandwidthSample(gen shrimp.Generation, size int) perf.Sample {
	r := shrimp.MeasureDeliberateBandwidth(shrimp.ConfigFor(2, 1, gen), 0, 1, size, 256*1024)
	return perf.Sample{
		Events:  r.Events,
		SimTime: r.SimEnd,
		Metrics: map[string]float64{"bandwidth_sim_mbps": r.MBps},
	}
}

// latencySweepFreshSample is the historical sweep shape: one freshly
// constructed machine per point, sequential — the baseline the pooled
// sweeps (seq = Reset reuse, par = reuse + workers) improve on.
func latencySweepFreshSample() perf.Sample {
	cfg := shrimp.ConfigFor(4, 4, shrimp.GenEISAPrototype)
	var s perf.Sample
	for dst := 1; dst < cfg.NodeCount(); dst++ {
		r := shrimp.MeasureStoreLatency(cfg, 0, dst)
		s.Events += r.Events
		s.SimTime += r.SimEnd
	}
	s.Metrics = map[string]float64{
		"points":  float64(cfg.NodeCount() - 1),
		"workers": 1,
	}
	return s
}

// latencySweepSample runs the whole 15-point E2 sweep on the given
// worker count; Events/SimTime sum the per-point engine totals.
func latencySweepSample(workers int) perf.Sample {
	results := shrimp.LatencySweepParallel(shrimp.ConfigFor(4, 4, shrimp.GenEISAPrototype), workers)
	var s perf.Sample
	for _, r := range results {
		s.Events += r.Events
		s.SimTime += r.SimEnd
	}
	s.Metrics = map[string]float64{
		"points":  float64(len(results)),
		"workers": float64(workers),
	}
	return s
}

// metricsSweepSample is latencySweepSample(1) with Config.Metrics
// toggled — the off/on pair measures the instrumentation overhead.
func metricsSweepSample(enabled bool) perf.Sample {
	cfg := shrimp.ConfigFor(4, 4, shrimp.GenEISAPrototype)
	cfg.Metrics = enabled
	results := shrimp.LatencySweep(cfg)
	var s perf.Sample
	for _, r := range results {
		s.Events += r.Events
		s.SimTime += r.SimEnd
	}
	on := 0.0
	if enabled {
		on = 1
	}
	s.Metrics = map[string]float64{
		"points":  float64(len(results)),
		"metrics": on,
	}
	return s
}

// recorderSweepSample is metricsSweepSample(true) with the flight
// recorder toggled — the off/on pair measures the sampling overhead on
// top of the registry itself (the metrics/sweep pair).
func recorderSweepSample(armed bool) perf.Sample {
	cfg := shrimp.ConfigFor(4, 4, shrimp.GenEISAPrototype)
	cfg.Metrics = true
	on := 0.0
	if armed {
		cfg.Recorder = shrimp.RecorderConfig{Interval: 10 * shrimp.Microsecond}
		on = 1
	}
	results := shrimp.LatencySweep(cfg)
	var s perf.Sample
	for _, r := range results {
		s.Events += r.Events
		s.SimTime += r.SimEnd
	}
	s.Metrics = map[string]float64{
		"points":   float64(len(results)),
		"recorder": on,
	}
	return s
}

// bandwidthSweepSample runs the E3 transfer-size sweep (64 B .. 4 KB,
// 128 KB each) on the given worker count.
func bandwidthSweepSample(workers int) perf.Sample {
	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096}
	results := shrimp.BandwidthSweepParallel(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype), sizes, 128*1024, workers)
	var s perf.Sample
	for _, r := range results {
		s.Events += r.Events
		s.SimTime += r.SimEnd
	}
	s.Metrics = map[string]float64{
		"points":  float64(len(results)),
		"workers": float64(workers),
	}
	return s
}

// faultsSample streams 256 KB of deliberate updates with the fault
// subsystem off or armed at zero rates with reliable delivery — the
// off/on gap is the price of sequence tagging, retained-payload
// bookkeeping, ACK traffic and the ring CRC on a loss-free fabric.
func faultsSample(armed bool) perf.Sample {
	cfg := shrimp.ConfigFor(2, 1, shrimp.GenXpress)
	on := 0.0
	if armed {
		cfg.Faults = shrimp.FaultConfig{Seed: 1729, Reliable: true}
		on = 1
	}
	r := shrimp.MeasureFaultyTransfer(cfg, 0, 1, 1024, 256*1024)
	return perf.Sample{
		Events:  r.Events,
		SimTime: r.Elapsed,
		Metrics: map[string]float64{
			"goodput_sim_mbps": r.GoodputMBps,
			"faults":           on,
			"acks":             float64(r.AcksSent),
		},
	}
}

// cpuBoundSample runs the instruction-bound compute loop at the given
// batch quantum. Sample.Events is instructions retired, identical in
// both modes; the engine event count is reported as a metric.
func cpuBoundSample(maxBatch int) perf.Sample {
	cfg := shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype)
	cfg.CPU.MaxBatch = maxBatch
	// Pin the trace cache off so this pair keeps measuring batching
	// alone; the cpu/trace pair layers superblock dispatch on top.
	cfg.CPU.TraceCache = false
	cfg.CPU.SpinFastForward = false
	r := shrimp.MeasureCPUBound(cfg, 20_000)
	return perf.Sample{
		Events:  r.Instructions,
		SimTime: r.SimEnd,
		Metrics: map[string]float64{
			"engine_events_per_op": float64(r.EngineEvents),
			"cpu_sim_us":           r.CPUTime.Microseconds(),
			"max_batch":            float64(maxBatch),
		},
	}
}

// cpuTraceSample runs the compute loop at the default batch quantum with
// the superblock trace cache (and spin fast-forward) off or on. Events
// are retired instructions in both modes, so events/s is instr/s.
func cpuTraceSample(trace bool) perf.Sample {
	cfg := shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype)
	cfg.CPU.TraceCache = trace
	cfg.CPU.SpinFastForward = trace
	r := shrimp.MeasureCPUBound(cfg, 20_000)
	on := 0.0
	if trace {
		on = 1
	}
	return perf.Sample{
		Events:  r.Instructions,
		SimTime: r.SimEnd,
		Metrics: map[string]float64{
			"engine_events_per_op": float64(r.EngineEvents),
			"cpu_sim_us":           r.CPUTime.Microseconds(),
			"trace":                on,
		},
	}
}

// allreducer is the mesh/par workload: a W×H machine with channels
// along a spanning tree (columns reduce into row 0, row 0 reduces into
// node 0, and the broadcast retraces the tree downward). One round is
// the up wave plus the down wave — every node both sends and receives,
// so with Partitions > 1 every partition engine has work in flight and
// the wall-clock ratio across partition counts is the parallel speedup.
type allreducer struct {
	m        *shrimp.Machine
	up, down []*shrimp.Channel
	payload  []byte
}

func newAllreducer(w, h, parts int) *allreducer {
	n := w * h
	cfg := shrimp.ConfigFor(w, h, shrimp.GenEISAPrototype)
	// Kernel rings are all-to-all (two pages per peer), so large meshes
	// outgrow the default per-node physical page budget.
	if need := 2*(n-1) + 1024; cfg.MemPagesPerNode < need {
		cfg.MemPagesPerNode = need
	}
	cfg.Partitions = parts
	m := shrimp.New(cfg)
	eps := make([]shrimp.Endpoint, n)
	for i := range eps {
		eps[i] = shrimp.NewEndpoint(m.Node(i))
	}
	a := &allreducer{m: m, payload: make([]byte, 1024)}
	addEdge := func(child, parent int) {
		up, err := shrimp.NewChannel(m, eps[child], eps[parent], 2)
		if err != nil {
			panic(err)
		}
		down, err := shrimp.NewChannel(m, eps[parent], eps[child], 2)
		if err != nil {
			panic(err)
		}
		a.up = append(a.up, up)
		a.down = append(a.down, down)
	}
	for i := 1; i < n; i++ {
		if x, y := i%w, i/w; y > 0 {
			addEdge(i, i-w) // column link toward row 0
		} else {
			addEdge(i, x-1) // row-0 link toward node 0
		}
	}
	return a
}

func (a *allreducer) round() perf.Sample {
	ev0, t0 := a.m.Fired(), a.m.Now()
	for _, ch := range a.up {
		if err := ch.Send(a.payload); err != nil {
			panic(err)
		}
	}
	for _, ch := range a.up {
		if _, err := ch.Recv(); err != nil {
			panic(err)
		}
	}
	for _, ch := range a.down {
		if err := ch.Send(a.payload); err != nil {
			panic(err)
		}
	}
	for _, ch := range a.down {
		if _, err := ch.Recv(); err != nil {
			panic(err)
		}
	}
	if err := a.m.RunUntilIdle(4_000_000_000); err != nil {
		panic(err)
	}
	elapsed := a.m.Now() - t0
	bytes := len(a.payload) * (len(a.up) + len(a.down))
	return perf.Sample{
		Events:  a.m.Fired() - ev0,
		SimTime: elapsed,
		Metrics: map[string]float64{"machine_mbps": float64(bytes) / 1e6 / elapsed.Seconds()},
	}
}

// allreduceSample defers machine construction to the first call —
// Measure's untimed warm-up — so the build cost of a big partitioned
// machine stays out of both the timing and the allocation counts. The
// returned done func stops the machine's worker gang once the pair of
// runs is over (idle workers would self-reap anyway; this just keeps
// goroutine accounting exact between partition counts).
func allreduceSample(w, h, parts int) (fn func() perf.Sample, done func()) {
	var a *allreducer
	fn = func() perf.Sample {
		if a == nil {
			a = newAllreducer(w, h, parts)
		}
		return a.round()
	}
	done = func() {
		if a != nil {
			a.m.Close()
		}
	}
	return fn, done
}

func neighborLinks(w, h int) [][2]int {
	var out [][2]int
	for i := 0; i < w*h; i++ {
		x, y := i%w, i/w
		j := y*w + (x+1)%w
		if j != i {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

func hotspotLinks(w, h int) [][2]int {
	var out [][2]int
	for i := 1; i < w*h; i++ {
		out = append(out, [2]int{i, 0})
	}
	return out
}

// meshSample drives the 16-node channel workload (the same traffic as
// BenchmarkMeshWorkload) and reports whole-run engine totals.
func meshSample(links [][2]int) perf.Sample {
	m := shrimp.New(shrimp.ConfigFor(4, 4, shrimp.GenEISAPrototype))
	eps := make([]shrimp.Endpoint, 16)
	for i := range eps {
		eps[i] = shrimp.NewEndpoint(m.Node(i))
	}
	chans := make([]*shrimp.Channel, len(links))
	for i, l := range links {
		ch, err := shrimp.NewChannel(m, eps[l[0]], eps[l[1]], 2)
		if err != nil {
			panic(err)
		}
		chans[i] = ch
	}
	const rounds, size = 4, 2048
	payload := make([]byte, size)
	start := m.Now()
	for r := 0; r < rounds; r++ {
		for _, ch := range chans {
			if err := ch.Send(payload); err != nil {
				panic(err)
			}
		}
		for _, ch := range chans {
			if _, err := ch.Recv(); err != nil {
				panic(err)
			}
		}
	}
	m.RunUntilIdle(2_000_000_000)
	elapsed := m.Now() - start
	mbps := float64(rounds*len(links)*size) / 1e6 / elapsed.Seconds()
	return perf.Sample{
		Events:  m.Fired(),
		SimTime: m.Now(),
		Metrics: map[string]float64{"machine_mbps": mbps},
	}
}

// shrimp-hwperf regenerates the §5.1 hardware performance results:
// automatic-update store latency (paper: < 2 µs on the 16-node EISA
// prototype, < 1 µs next generation) and deliberate-update peak
// bandwidth (paper: 33 MB/s EISA-limited, ~70 MB/s next generation),
// plus the single-write vs blocked-write automatic-update ablation.
// All sweeps run on the deterministic worker pool: -parallel N fans
// independent sweep points across N machines without changing a single
// reported number.
package main

import (
	"flag"
	"fmt"
	"strings"

	shrimp "repro"
)

func main() {
	exp := flag.String("exp", "all", "experiment: latency, bandwidth, au, overlap, mergewindow or all")
	mesh := flag.String("mesh", "4x4", "mesh dimensions, e.g. 4x4")
	total := flag.Int("total", 512*1024, "bytes to stream in bandwidth runs")
	parallel := flag.Int("parallel", 0, "sweep worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	var w, h int
	if _, err := fmt.Sscanf(strings.ToLower(*mesh), "%dx%d", &w, &h); err != nil || w < 1 || h < 1 {
		fmt.Println("bad -mesh; want e.g. 4x4")
		return
	}
	workers := *parallel

	gens := []struct {
		name string
		gen  shrimp.Generation
	}{
		{"EISA prototype", shrimp.GenEISAPrototype},
		{"next-gen Xpress", shrimp.GenXpress},
	}

	if *exp == "latency" || *exp == "all" {
		fmt.Printf("=== §5.1 latency: single-write automatic update, %dx%d mesh ===\n", w, h)
		for _, g := range gens {
			cfg := shrimp.ConfigFor(w, h, g.gen)
			fmt.Printf("\n%s (store on node 0 -> arrival in destination memory):\n", g.name)
			byHops := map[int][]shrimp.LatencyResult{}
			for _, r := range shrimp.LatencySweepParallel(cfg, workers) {
				byHops[r.Hops] = append(byHops[r.Hops], r)
			}
			for hops := 1; hops <= w+h-2; hops++ {
				rs := byHops[hops]
				if len(rs) == 0 {
					continue
				}
				var sum shrimp.Time
				for _, r := range rs {
					sum += r.Latency
				}
				fmt.Printf("  %2d hop(s): %v   (%d destinations)\n",
					hops, sum/shrimp.Time(len(rs)), len(rs))
			}
			worst := shrimp.MaxLatency(cfg)
			fmt.Printf("  worst case (corner to corner, %d hops): %v\n", worst.Hops, worst.Latency)
		}
		fmt.Println("\npaper: slightly less than 2 us on the 16-node EISA prototype;")
		fmt.Println("       less than 1 us for the next implementation")
	}

	if *exp == "bandwidth" || *exp == "all" {
		fmt.Println("\n=== §5.1 peak bandwidth: deliberate-update transfers ===")
		sizes := []int{64, 128, 256, 512, 1024, 2048, 4096}
		for _, g := range gens {
			cfg := shrimp.ConfigFor(2, 1, g.gen)
			fmt.Printf("\n%s:\n", g.name)
			for _, r := range shrimp.BandwidthSweepParallel(cfg, sizes, *total, workers) {
				fmt.Printf("  %s\n", r)
			}
		}
		fmt.Println("\npaper: 33 MB/s peak, limited by the EISA bus in burst mode;")
		fmt.Println("       about 70 MB/s for the next implementation")
	}

	if *exp == "overlap" || *exp == "all" {
		fmt.Println("\n=== §4.1 overlap: CPU-visible cost of communicating ===")
		r := shrimp.MeasureOverlap(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype), shrimp.BlockedWriteAU, 400)
		fmt.Printf("  %s\n", r)
		fmt.Println("  (the store loop costs the CPU the same time whether or not its")
		fmt.Println("   output page is mapped: propagation rides behind the write buffer)")
	}

	if *exp == "mergewindow" || *exp == "all" {
		fmt.Println("\n=== §4.1 blocked-write merge window sweep (100 ns store gap) ===")
		cfg := shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype)
		windows := []shrimp.Time{20 * shrimp.Nanosecond, 50 * shrimp.Nanosecond,
			150 * shrimp.Nanosecond, 500 * shrimp.Nanosecond, 2 * shrimp.Microsecond}
		for _, r := range shrimp.MergeWindowSweep(cfg, windows, 100*shrimp.Nanosecond, 256, workers) {
			fmt.Printf("  window %10v: %6.3f packets/store (%d packets)\n", r.Window, r.PktPerStore, r.Packets)
		}
	}

	if *exp == "au" || *exp == "all" {
		fmt.Println("\n=== §4.1 ablation: single-write vs blocked-write automatic update ===")
		cfg := shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype)
		modes := []shrimp.Mode{shrimp.SingleWriteAU, shrimp.BlockedWriteAU}
		for _, r := range shrimp.AUBandwidthSweep(cfg, modes, 4000, workers) {
			fmt.Printf("  %s\n", r)
		}
		fmt.Println("\n(single-write optimizes latency; blocked-write optimizes network")
		fmt.Println(" bandwidth usage — the two implementations of §4.1)")
	}
}

// shrimp-top runs a message-passing workload on a simulated SHRIMP
// machine with the flight recorder armed and exposes the telemetry as
// OpenMetrics/Prometheus text. Two modes:
//
// One-shot (default): run the workload to quiescence, then dump the
// final registry snapshot plus the recorder's retained timeline —
// deterministic, so two runs with the same flags diff byte-identical,
// at any -partitions setting:
//
//	shrimp-top -mesh 4x4 -workload neighbors -rounds 8
//	shrimp-top -partitions 4 -o metrics.prom
//
// Serve (-serve addr): publish the latest exposition over HTTP while
// the simulation runs, republishing on every recorder sample; after the
// workload quiesces the final scrape stays up until interrupted:
//
//	shrimp-top -serve :9100 &
//	curl localhost:9100/metrics
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	shrimp "repro"
)

func main() {
	mesh := flag.String("mesh", "4x4", "mesh dimensions, e.g. 4x4")
	gen := flag.String("gen", "eisa", "generation: eisa or xpress")
	workload := flag.String("workload", "neighbors", "workload: neighbors, hotspot or ring")
	msgBytes := flag.Int("bytes", 1024, "message size")
	rounds := flag.Int("rounds", 8, "workload rounds")
	partitions := flag.Int("partitions", 0, "partition the engine over N workers (0/1 = sequential)")
	interval := flag.Duration("interval", 10*time.Microsecond, "flight-recorder cadence in simulated time")
	capacity := flag.Int("cap", 0, "recorder ring capacity in samples (0 = default)")
	omit := flag.Bool("omit-artifacts", false, "omit simulator-bookkeeping series from the exposition")
	serve := flag.String("serve", "", "serve the exposition over HTTP at this address, e.g. :9100")
	out := flag.String("o", "", "write the one-shot exposition to this file (default stdout)")
	flag.Parse()

	var w, h int
	if _, err := fmt.Sscanf(strings.ToLower(*mesh), "%dx%d", &w, &h); err != nil || w < 1 || h < 1 {
		fatal("bad -mesh; want e.g. 4x4")
	}
	g := shrimp.GenEISAPrototype
	if *gen == "xpress" {
		g = shrimp.GenXpress
	}
	cfg := shrimp.ConfigFor(w, h, g)
	cfg.Metrics = true
	cfg.Partitions = *partitions
	cfg.Recorder = shrimp.RecorderConfig{
		Interval: shrimp.Time(interval.Nanoseconds()) * shrimp.Nanosecond,
		Capacity: *capacity,
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	m := shrimp.New(cfg)
	opt := shrimp.OpenMetricsOptions{OmitEngineArtifacts: *omit}

	// Serve mode: republish the exposition on every recorder sample; the
	// callback runs on the coordinator at a quiescent cut, so reading the
	// registry is safe. HTTP handlers only ever see the atomic pointer.
	var latest atomic.Pointer[[]byte]
	publish := func() {
		var b bytes.Buffer
		if err := m.WriteOpenMetrics(&b, opt); err != nil {
			fatal(err)
		}
		bs := b.Bytes()
		latest.Store(&bs)
	}
	if *serve != "" {
		publish()
		m.Rec.SetOnSample(func(shrimp.Time) { publish() })
		mux := http.NewServeMux()
		handler := func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			rw.Write(*latest.Load())
		}
		mux.HandleFunc("/metrics", handler)
		mux.HandleFunc("/", handler)
		go func() {
			if err := http.ListenAndServe(*serve, mux); err != nil {
				fatal(err)
			}
		}()
		fmt.Fprintf(os.Stderr, "serving OpenMetrics on %s/metrics\n", *serve)
	}

	runWorkload(m, w, h, *workload, *msgBytes, *rounds)

	if *serve != "" {
		publish()
		fmt.Fprintf(os.Stderr, "workload quiesced at %v after %d samples; final scrape stays up (Ctrl-C to exit)\n",
			m.Now(), m.Rec.Taken())
		select {}
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	if err := m.WriteOpenMetrics(dst, opt); err != nil {
		fatal(err)
	}
}

// runWorkload maps the channel topology and drives it to quiescence —
// the same Go-level workload shapes shrimp-trace uses.
func runWorkload(m *shrimp.Machine, w, h int, workload string, msgBytes, rounds int) {
	n := w * h
	eps := make([]shrimp.Endpoint, n)
	for i := range eps {
		eps[i] = shrimp.NewEndpoint(m.Node(i))
	}
	type link struct{ src, dst int }
	var links []link
	switch workload {
	case "neighbors":
		for i := 0; i < n; i++ {
			x, y := i%w, i/w
			j := y*w + (x+1)%w
			if j != i {
				links = append(links, link{i, j})
			}
		}
	case "hotspot":
		for i := 1; i < n; i++ {
			links = append(links, link{i, 0})
		}
	case "ring":
		for i := 0; i < n; i++ {
			links = append(links, link{i, (i + 1) % n})
		}
	default:
		fatal("unknown workload; want neighbors, hotspot or ring")
	}
	channels := make([]*shrimp.Channel, len(links))
	pages := (msgBytes+shrimp.PageSize-1)/shrimp.PageSize + 1
	for i, l := range links {
		ch, err := shrimp.NewChannel(m, eps[l.src], eps[l.dst], pages)
		if err != nil {
			fatal(fmt.Sprintf("map %d->%d: %v", l.src, l.dst, err))
		}
		channels[i] = ch
	}
	payload := make([]byte, msgBytes)
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	for r := 0; r < rounds; r++ {
		for _, ch := range channels {
			if err := ch.Send(payload); err != nil {
				fatal(fmt.Sprint("send: ", err))
			}
		}
		for _, ch := range channels {
			if _, err := ch.Recv(); err != nil {
				fatal(fmt.Sprint("recv: ", err))
			}
		}
	}
	m.RunUntilIdle(1_000_000_000)
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, v)
	os.Exit(1)
}

// shrimp-trace runs a workload on a simulated SHRIMP machine with the
// metrics registry enabled and exports the timeline as Chrome
// trace-event JSON: one process track per node, each completed causal
// span rendered as nested async slices (snoop, out-fifo, mesh, deposit)
// plus datapath tracer events as instants. Load the output in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
//	go run ./cmd/shrimp-trace -mesh 4x4 -workload neighbors -o trace.json
//
// A per-stage latency summary goes to stderr so stdout stays pipeable:
//
//	go run ./cmd/shrimp-trace | gzip > trace.json.gz
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	shrimp "repro"
)

func main() {
	mesh := flag.String("mesh", "4x4", "mesh dimensions, e.g. 4x4")
	gen := flag.String("gen", "eisa", "generation: eisa or xpress")
	workload := flag.String("workload", "neighbors", "workload: neighbors, hotspot or ring")
	msgBytes := flag.Int("bytes", 1024, "message size")
	rounds := flag.Int("rounds", 4, "workload rounds")
	spans := flag.Int("spans", 0, "retain up to N completed spans (0 = default)")
	traceN := flag.Int("trace", 4096, "retain the last N datapath events as instants")
	interval := flag.Duration("interval", 0, "arm the flight recorder at this simulated cadence, e.g. 10us (0 = off); samples render as counter tracks")
	out := flag.String("o", "", "write the timeline to this file (default stdout)")
	flag.Parse()

	var w, h int
	if _, err := fmt.Sscanf(strings.ToLower(*mesh), "%dx%d", &w, &h); err != nil || w < 1 || h < 1 {
		fmt.Fprintln(os.Stderr, "bad -mesh; want e.g. 4x4")
		os.Exit(1)
	}
	g := shrimp.GenEISAPrototype
	if *gen == "xpress" {
		g = shrimp.GenXpress
	}
	cfg := shrimp.ConfigFor(w, h, g)
	cfg.Metrics = true
	cfg.SpanCapacity = *spans
	cfg.TraceCapacity = *traceN
	if *interval > 0 {
		cfg.Recorder = shrimp.RecorderConfig{Interval: shrimp.Time(interval.Nanoseconds()) * shrimp.Nanosecond}
	}
	m := shrimp.New(cfg)
	n := w * h

	eps := make([]shrimp.Endpoint, n)
	for i := range eps {
		eps[i] = shrimp.NewEndpoint(m.Node(i))
	}

	type link struct{ src, dst int }
	var links []link
	switch *workload {
	case "neighbors":
		for i := 0; i < n; i++ {
			x, y := i%w, i/w
			j := y*w + (x+1)%w
			if j != i {
				links = append(links, link{i, j})
			}
		}
	case "hotspot":
		for i := 1; i < n; i++ {
			links = append(links, link{i, 0})
		}
	case "ring":
		for i := 0; i < n; i++ {
			links = append(links, link{i, (i + 1) % n})
		}
	default:
		fmt.Fprintln(os.Stderr, "unknown workload; want neighbors, hotspot or ring")
		os.Exit(1)
	}

	channels := make([]*shrimp.Channel, len(links))
	pages := (*msgBytes+shrimp.PageSize-1)/shrimp.PageSize + 1
	for i, l := range links {
		ch, err := shrimp.NewChannel(m, eps[l.src], eps[l.dst], pages)
		if err != nil {
			fmt.Fprintf(os.Stderr, "map %d->%d: %v\n", l.src, l.dst, err)
			os.Exit(1)
		}
		channels[i] = ch
	}

	payload := make([]byte, *msgBytes)
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	for r := 0; r < *rounds; r++ {
		for _, ch := range channels {
			if err := ch.Send(payload); err != nil {
				fmt.Fprintln(os.Stderr, "send:", err)
				os.Exit(1)
			}
		}
		for _, ch := range channels {
			if _, err := ch.Recv(); err != nil {
				fmt.Fprintln(os.Stderr, "recv:", err)
				os.Exit(1)
			}
		}
	}
	m.RunUntilIdle(1_000_000_000)

	w2 := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w2 = f
	}
	bw := bufio.NewWriter(w2)
	if err := m.TraceJSON(bw); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}

	spansDone := len(m.Obs.CompletedSpans())
	fmt.Fprintf(os.Stderr, "workload %q on %dx%d %s mesh: %d spans, %d tracer events\n",
		*workload, w, h, g, spansDone, len(m.Tracer.Events()))
	if m.Rec != nil {
		fmt.Fprintf(os.Stderr, "flight recorder: %d samples every %v (%d retained)\n",
			m.Rec.Taken(), m.Rec.Interval(), m.Rec.Len())
	}
	if err := m.Obs.WriteStageTable(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "stage table:", err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "timeline written to %s — open in ui.perfetto.dev\n", *out)
	}
}

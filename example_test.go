package shrimp_test

import (
	"fmt"

	shrimp "repro"
)

// ExampleNewChannel shows the basic map-once, communicate-forever flow.
func ExampleNewChannel() {
	m := shrimp.New(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype))
	ch, err := shrimp.NewChannel(m,
		shrimp.NewEndpoint(m.Node(0)), shrimp.NewEndpoint(m.Node(1)), 1)
	if err != nil {
		panic(err)
	}
	if err := ch.Send([]byte("hello, mesh")); err != nil {
		panic(err)
	}
	data, err := ch.Recv()
	if err != nil {
		panic(err)
	}
	fmt.Println(string(data))
	// Output: hello, mesh
}

// ExampleKernel_Map drives the paper's primitive interface directly:
// one protected map() call, then stores are messages.
func ExampleKernel_Map() {
	m := shrimp.New(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype))
	src, dst := m.Node(0), m.Node(1)
	ps := src.K.CreateProcess()
	pd := dst.K.CreateProcess()
	sendVA, _ := ps.AllocPages(1)
	recvVA, _ := pd.AllocPages(1)

	_, fut := src.K.Map(ps, sendVA, shrimp.PageSize,
		dst.ID, pd.PID, recvVA, shrimp.SingleWriteAU)
	if err := m.Await(fut); err != nil {
		panic(err)
	}
	if err := src.UserWrite32(ps, sendVA, 42); err != nil {
		panic(err)
	}
	m.RunUntilIdle(10_000_000)
	v, _ := dst.UserRead32(pd, recvVA)
	fmt.Println(v)
	// Output: 42
}

// ExampleMeasureTable1 regenerates the paper's headline result.
func ExampleMeasureTable1() {
	rows := shrimp.MeasureTable1(shrimp.GenEISAPrototype)
	first := rows[0]
	fmt.Printf("%s: %d instructions (%d+%d)\n",
		first.Name, first.Total(), first.Source, first.Dest)
	// Output: single buffering: 9 instructions (4+5)
}

// ExampleAssemble runs a routine on a simulated node.
func ExampleAssemble() {
	p, err := shrimp.Assemble("demo", `
main:
	mov	ecx, 5
	xor	eax, eax
sum:	add	eax, ecx
	loop	sum
	hlt
`, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(p.Instrs), "instructions")
	// Output: 5 instructions
}

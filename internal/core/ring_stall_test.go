package core

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/vm"
)

// TestRingWrapUnderStalledReceiver exercises the kernel ring's
// wraparound and credit-window machinery under a receiver that stops
// draining. The receiver's ring IRQs are held (recorded, not handled),
// so the sender's unacked window fills, later RPCs pile into the
// backlog, and the write cursor wraps the 4 KB ring page several times
// over. When the held interrupts are replayed the ring must drain in
// order, return credits, flush the backlog, and resolve every RPC.
func TestRingWrapUnderStalledReceiver(t *testing.T) {
	const rpcs = 200 // ~200 request records >> one 4 KB ring page

	m := New(ConfigFor(2, 1, nic.GenEISAPrototype))
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	sendVA, err := pa.AllocPages(rpcs)
	if err != nil {
		t.Fatal(err)
	}
	recvVA, err := pb.AllocPages(rpcs)
	if err != nil {
		t.Fatal(err)
	}

	// Stall the receiver: capture its NIC interrupts instead of letting
	// the kernel drain the inbox.
	type heldIRQ struct {
		cause nic.IRQCause
		page  phys.PageNum
	}
	orig := b.NIC.OnIRQ
	var held []heldIRQ
	seen := make(map[phys.PageNum]bool)
	b.NIC.OnIRQ = func(c nic.IRQCause, pg phys.PageNum) {
		if !seen[pg] { // drainRing empties the whole ring; one replay per page
			seen[pg] = true
			held = append(held, heldIRQ{c, pg})
		}
	}

	futs := make([]*kernel.Future, rpcs)
	for i := 0; i < rpcs; i++ {
		off := vm.VAddr(i * phys.PageSize)
		_, futs[i] = a.K.Map(pa, sendVA+off, phys.PageSize, b.ID, pb.PID,
			recvVA+off, nipt.SingleWriteAU)
	}
	if err := m.RunUntilIdle(ExperimentEventBudget); err != nil {
		t.Fatalf("stalled phase failed: %v", err)
	}

	// With no credits coming back the sender must have parked RPCs in
	// the backlog: the machine is idle, yet work remains unresolved.
	pending := 0
	for _, f := range futs {
		if !f.Done() {
			pending++
		}
	}
	if pending == 0 {
		t.Fatal("receiver stall did not throttle the sender: all RPCs resolved")
	}
	if len(held) == 0 {
		t.Fatal("no ring IRQs were held")
	}

	// Un-stall: restore the handler and replay the held interrupts.
	b.NIC.OnIRQ = orig
	for _, h := range held {
		orig(h.cause, h.page)
	}
	if err := m.RunUntilIdle(ExperimentEventBudget); err != nil {
		t.Fatalf("drain after stall failed: %v", err)
	}

	for i, f := range futs {
		if !f.Done() {
			t.Fatalf("RPC %d still pending after receiver resumed", i)
		}
		if f.Err() != nil {
			t.Fatalf("RPC %d failed: %v", i, f.Err())
		}
	}
	// Every record the sender emitted crossed the ring (the pair's only
	// traffic is with each other, so the aggregate counters must agree).
	sent := a.K.Stats().RingRecordsSent + b.K.Stats().RingRecordsSent
	rcvd := a.K.Stats().RingRecordsRcvd + b.K.Stats().RingRecordsRcvd
	if sent == 0 || sent != rcvd {
		t.Fatalf("ring records sent %d != received %d", sent, rcvd)
	}
	// The stream was long enough to wrap the 4 KB ring page.
	if got := a.K.Stats().RingRecordsSent; got < rpcs {
		t.Fatalf("sender emitted only %d records for %d RPCs", got, rpcs)
	}
}

package core

import (
	"fmt"

	"repro/internal/sim"
)

// Gang scheduling: machine-wide coordinated context switches, the
// policy the CM-5 *requires* for safe user-level communication (paper
// §1, §6). SHRIMP needs no such constraint — its protection is carried
// by physical page mappings — but providing the policy lets the same
// workload run under both regimes and demonstrates exactly that: under
// SHRIMP, gang scheduling is a performance choice, not a safety one.
type GangScheduler struct {
	m      *Machine
	slice  sim.Time
	active bool
	ticks  uint64
}

// StartGangScheduling begins coordinated round-robin across all nodes:
// at every slice boundary every node switches to its next runnable
// process at the same simulated instant. Each node must have had its
// processes queued with Kernel.AddRunnable.
func (m *Machine) StartGangScheduling(slice sim.Time) (*GangScheduler, error) {
	if slice <= 0 {
		return nil, fmt.Errorf("core: gang slice must be positive")
	}
	if m.Clu != nil {
		// A gang tick touches every node's kernel in one event; that event
		// would have to run on every partition engine at once.
		return nil, fmt.Errorf("core: gang scheduling requires a sequential machine; "+
			"set Partitions <= 1 (this machine runs %d partitions; DESIGN.md §11)", m.Cfg.Partitions)
	}
	for _, n := range m.Nodes {
		if n.K.RunnableCount() == 0 {
			return nil, fmt.Errorf("core: node %d has no runnable processes", n.ID)
		}
	}
	g := &GangScheduler{m: m, slice: slice, active: true}
	g.switchAll()
	m.Eng.After(slice, g.tick)
	return g, nil
}

func (g *GangScheduler) tick() {
	if !g.active {
		return
	}
	g.ticks++
	g.switchAll()
	g.m.Eng.After(g.slice, g.tick)
}

func (g *GangScheduler) switchAll() {
	for _, n := range g.m.Nodes {
		n.K.Preempt()
	}
}

// Stop halts coordinated switching; current processes keep running.
func (g *GangScheduler) Stop() { g.active = false }

// Ticks returns the number of machine-wide switch rounds performed.
func (g *GangScheduler) Ticks() uint64 { return g.ticks }

package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/vm"
)

// OverlapResult quantifies the paper's §4.1 claim that automatic update
// overlaps communication with computation: the CPU issuing stores to a
// mapped page "suffers only the local write-through cache latency" while
// the data propagates behind it.
type OverlapResult struct {
	BaselineTime sim.Time // compute + stores to an unmapped page
	MappedTime   sim.Time // identical program, page mapped out
	BytesMoved   uint64   // payload delivered remotely during the run
	OverheadPct  float64  // CPU-visible slowdown from communicating
}

func (r OverlapResult) String() string {
	return fmt.Sprintf("baseline %v, with communication %v (+%.2f%%), %d bytes delivered in the background",
		r.BaselineTime, r.MappedTime, r.OverheadPct, r.BytesMoved)
}

// overlapProgram interleaves stores to BUF with ALU work, the shape of
// a compute loop whose results stream out through a mapping.
const overlapProgram = `
work:
	mov	ecx, ITERS
	xor	ebx, ebx
	mov	esi, BUF
wloop:
	mov	eax, ebx	; "compute" a value
	add	eax, 12345
	xor	eax, 0x5a5a
	add	eax, ebx
	mov	[esi], eax	; store it (snooped if mapped)
	add	esi, 4
	and	esi, BUFMASK
	or	esi, BUF
	inc	ebx
	dec	ecx
	jnz	wloop
	hlt
`

// MeasureOverlap runs the identical ISA program twice — once storing to
// a private page, once to a page mapped out with the given AU mode — and
// compares CPU-visible completion times.
func MeasureOverlap(cfg Config, mode nipt.Mode, iters int) OverlapResult {
	return measureOverlapOn(New(cfg), mode, iters)
}

// measureOverlapOn is MeasureOverlap on a caller-provided post-boot
// machine; the unmapped baseline and the mapped run share the machine
// via Reset (the page allocator is deterministic, so both runs see the
// same addresses and the assembled program caches across them).
func measureOverlapOn(m *Machine, mode nipt.Mode, iters int) OverlapResult {
	base, _ := runOverlap(m, mode, iters, false)
	m.Reset()
	mappedTime, bytes := runOverlap(m, mode, iters, true)
	return OverlapResult{
		BaselineTime: base,
		MappedTime:   mappedTime,
		BytesMoved:   bytes,
		OverheadPct:  100 * (float64(mappedTime)/float64(base) - 1),
	}
}

func runOverlap(m *Machine, mode nipt.Mode, iters int, mapped bool) (sim.Time, uint64) {
	src, dst := m.Node(0), m.Node(1)
	ps := src.K.CreateProcess()
	buf, err := ps.AllocPages(1)
	if err != nil {
		panic(err)
	}
	stack, err := ps.AllocPages(1)
	if err != nil {
		panic(err)
	}
	if mapped {
		pd := dst.K.CreateProcess()
		recv, err := pd.AllocPages(1)
		if err != nil {
			panic(err)
		}
		m.MustMap(ps, buf, phys.PageSize, dst.ID, pd.PID, recv, mode)
	} else {
		// Match the cache policy so only the NIC path differs.
		if pte, ok := ps.AS.Lookup(buf.Page()); ok {
			pte.WriteThrough = true
			ps.AS.Map(buf.Page(), pte)
		}
	}
	mustSettle(m, "overlap setup")

	prog := isa.MustAssembleCached("overlap", overlapProgram, map[string]int64{
		"ITERS":   int64(iters),
		"BUF":     int64(buf),
		"BUFMASK": int64(buf) | (phys.PageSize - 1),
	})
	src.K.BindProcess(ps)
	cpu := src.CPU
	cpu.Load(prog)
	cpu.R = [8]uint32{}
	cpu.R[isa.ESP] = uint32(stack) + phys.PageSize
	start := m.Now()
	if err := cpu.Start("work"); err != nil {
		panic(err)
	}
	// Run until the CPU halts: that is the CPU-visible time. The
	// network may still be draining afterwards — that is the point.
	ok := m.RunWhile(func() bool { return !cpu.Halted() })
	if !ok && !cpu.Halted() {
		panic("core: overlap program starved")
	}
	cpuTime := m.Now() - start
	mustSettle(m, "overlap drain")
	if err := cpu.Err(); err != nil {
		panic(err)
	}
	return cpuTime, dst.NIC.Stats().BytesIn
}

// CPUBoundResult is one run of the pure instruction-interpretation
// benchmark: the overlap compute loop storing to a private page, so the
// simulator spends its time retiring instructions rather than moving
// packets. Instructions is the mode-independent work unit shrimp-bench
// reports throughput in; EngineEvents is the mode-dependent event count
// that CPU batching (Config.CPU.MaxBatch) exists to shrink.
type CPUBoundResult struct {
	Instructions uint64   // instructions retired (user + kernel)
	CPUTime      sim.Time // simulated start-to-halt time
	EngineEvents uint64   // engine events fired over the whole run
	SimEnd       sim.Time
}

// MeasureCPUBound runs the overlap compute loop against an unmapped
// page on a fresh machine of the given config and reports instruction
// and event accounting. Simulated results (Instructions, CPUTime) are
// batch-invariant; EngineEvents is not, by design.
func MeasureCPUBound(cfg Config, iters int) CPUBoundResult {
	m := New(cfg)
	src := m.Node(0)
	ps := src.K.CreateProcess()
	buf, err := ps.AllocPages(1)
	if err != nil {
		panic(err)
	}
	stack, err := ps.AllocPages(1)
	if err != nil {
		panic(err)
	}
	mustSettle(m, "cpu-bound setup")

	prog := isa.MustAssembleCached("overlap", overlapProgram, map[string]int64{
		"ITERS":   int64(iters),
		"BUF":     int64(buf),
		"BUFMASK": int64(buf) | (phys.PageSize - 1),
	})
	src.K.BindProcess(ps)
	cpu := src.CPU
	cpu.Load(prog)
	cpu.R = [8]uint32{}
	cpu.R[isa.ESP] = uint32(stack) + phys.PageSize
	cpu.ResetCounters()
	start := m.Now()
	if err := cpu.Start("work"); err != nil {
		panic(err)
	}
	ok := m.RunWhile(func() bool { return !cpu.Halted() })
	if !ok && !cpu.Halted() {
		panic("core: cpu-bound program starved")
	}
	if err := cpu.Err(); err != nil {
		panic(err)
	}
	return CPUBoundResult{
		Instructions: cpu.Counters().Total(),
		CPUTime:      m.Now() - start,
		EngineEvents: m.Fired(),
		SimEnd:       m.Now(),
	}
}

// MergeWindowResult is one point of the blocked-write window sweep.
type MergeWindowResult struct {
	Window      sim.Time
	StoreGap    sim.Time
	Packets     uint64
	PktPerStore float64
}

// MeasureMergeWindow streams stores with a fixed inter-store gap through
// a blocked-write mapping under a given merge window, reporting how many
// packets the NIC emitted. Windows shorter than the gap degrade to one
// packet per store; longer windows merge up to the payload bound.
func MeasureMergeWindow(cfg Config, window, storeGap sim.Time, stores int) MergeWindowResult {
	cfg.NIC.MergeWindow = window
	return measureMergeWindowOn(New(cfg), storeGap, stores)
}

// measureMergeWindowOn is MeasureMergeWindow on a caller-provided
// post-boot machine whose config already carries the merge window under
// test (the window is part of the NIC config, so sweeping it requires a
// machine per window, not just a Reset).
func measureMergeWindowOn(m *Machine, storeGap sim.Time, stores int) MergeWindowResult {
	window := m.Cfg.NIC.MergeWindow
	s := setupPair(m, 0, 1, nipt.BlockedWriteAU)
	before := s.dst.NIC.Stats().PacketsIn
	off := vm.VAddr(0)
	for i := 0; i < stores; i++ {
		if err := s.src.UserWrite32(s.ps, s.sendVA+off, uint32(i)); err != nil {
			panic(err)
		}
		off += 4
		if off >= phys.PageSize {
			off = 0
		}
		m.RunFor(storeGap)
	}
	mustSettle(m, "merge-window drain")
	pkts := s.dst.NIC.Stats().PacketsIn - before
	return MergeWindowResult{
		Window:      window,
		StoreGap:    storeGap,
		Packets:     pkts,
		PktPerStore: float64(pkts) / float64(stores),
	}
}

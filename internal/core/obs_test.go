package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/obs"
	"repro/internal/vm"
)

// metricsCfg is a small machine with metrics (and tracing) enabled.
func metricsCfg(w, h int) Config {
	cfg := ConfigFor(w, h, nic.GenEISAPrototype)
	cfg.Metrics = true
	cfg.TraceCapacity = 256
	return cfg
}

// driveTraffic sends a few single-write stores and one blocked-write
// burst from node 0 to node 1 and drains the machine.
func driveTraffic(t *testing.T, m *Machine) {
	t.Helper()
	s := setupPair(m, 0, 1, nipt.SingleWriteAU)
	for i := 0; i < 4; i++ {
		if err := s.src.UserWrite32(s.ps, s.sendVA+vm.VAddr(i*4), 0x1000+uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	m.RunUntilIdle(5_000_000)
}

func TestMetricsOffByDefault(t *testing.T) {
	m := New(ConfigFor(2, 1, nic.GenEISAPrototype))
	if m.Obs != nil {
		t.Fatal("registry attached without Config.Metrics")
	}
	driveTraffic(t, m)
	// The disabled surface stays usable: zero snapshot, empty timeline.
	if snap := m.Metrics(); len(snap.Nodes) != 0 || snap.SpansFinished != 0 {
		t.Fatalf("disabled snapshot: %+v", snap)
	}
	var b strings.Builder
	if err := m.TraceJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(b.String())) {
		t.Fatal("disabled TraceJSON invalid")
	}
}

func TestMetricsRecordTheDatapath(t *testing.T) {
	m := New(metricsCfg(2, 1))
	driveTraffic(t, m)

	snap := m.Metrics()
	src, dst := snap.Nodes[0], snap.Nodes[1]
	if src.Counters["packets-out"] == 0 || src.Counters["snooped-writes"] == 0 {
		t.Fatalf("source counters: %v", src.Counters)
	}
	if dst.Counters["packets-in"] != src.Counters["packets-out"] {
		t.Fatalf("in %d != out %d", dst.Counters["packets-in"], src.Counters["packets-out"])
	}
	if src.Counters["nipt-lookups"] == 0 || src.Counters["bus-txns"] == 0 {
		t.Fatalf("component counters: %v", src.Counters)
	}
	if src.Counters["kernel-maps"] == 0 {
		t.Fatalf("kernel counters: %v", src.Counters)
	}
	if snap.SpansFinished == 0 || snap.SpansFinished != src.Counters["packets-out"]+dst.Counters["packets-out"] {
		t.Fatalf("spans %d vs packets %d+%d", snap.SpansFinished,
			src.Counters["packets-out"], dst.Counters["packets-out"])
	}
	// Every completed span fed the source-side stage histograms.
	total := m.Obs.StageHist(obs.HistStageTotal)
	if total.Count != snap.SpansFinished || total.Mean() <= 0 {
		t.Fatalf("stage-total count=%d mean=%v", total.Count, total.Mean())
	}
	if len(snap.Links) == 0 {
		t.Fatal("no link traversals recorded")
	}
	// Spans carry consistent stage ordering.
	for _, s := range m.Obs.CompletedSpans() {
		if !(s.Start <= s.Enqueued && s.Enqueued <= s.Injected &&
			s.Injected <= s.Delivered && s.Delivered <= s.Deposited) {
			t.Fatalf("unordered span %+v", s)
		}
	}
}

// TestMetricsChangeNothing is the differential guarantee: enabling
// metrics must not change any simulated result — same latencies, same
// event counts, same final statistics.
func TestMetricsChangeNothing(t *testing.T) {
	plain := ConfigFor(4, 4, nic.GenEISAPrototype)
	instr := plain
	instr.Metrics = true

	a := MeasureStoreLatency(plain, 0, 15)
	b := MeasureStoreLatency(instr, 0, 15)
	if a != b {
		t.Fatalf("metrics changed the measurement:\n off %+v\n on  %+v", a, b)
	}

	ba := MeasureDeliberateBandwidth(plain, 0, 3, 4096, 64*1024)
	bb := MeasureDeliberateBandwidth(instr, 0, 3, 4096, 64*1024)
	if ba != bb {
		t.Fatalf("metrics changed bandwidth:\n off %+v\n on  %+v", ba, bb)
	}
}

// TestMetricsSweepParallelMatchesSequential exercises the machine-reuse
// pool with metrics enabled: parallel workers Reset and reuse machines,
// and results must stay bit-identical to the sequential path.
func TestMetricsSweepParallelMatchesSequential(t *testing.T) {
	cfg := metricsCfg(4, 4)
	seq := LatencySweep(cfg)
	par := LatencySweepParallel(cfg, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel sweep diverged with metrics on:\n seq %+v\n par %+v", seq, par)
	}
}

func TestMetricsResetMatchesFresh(t *testing.T) {
	cfg := metricsCfg(2, 2)
	m := New(cfg)
	fresh := m.Metrics()

	driveTraffic(t, m)
	if m.Metrics().SpansFinished == 0 {
		t.Fatal("no traffic recorded before reset")
	}
	m.Reset()
	if got := m.Metrics(); !reflect.DeepEqual(got, fresh) {
		t.Fatalf("reset metrics differ from fresh:\n got  %+v\n want %+v", got, fresh)
	}
	// A reset machine must then record identically to a fresh one.
	driveTraffic(t, m)
	m2 := New(cfg)
	driveTraffic(t, m2)
	if a, b := m.Metrics(), m2.Metrics(); !reflect.DeepEqual(a, b) {
		t.Fatalf("reused machine metrics diverge:\n reset %+v\n fresh %+v", a, b)
	}
}

func TestTraceJSONSixteenNodes(t *testing.T) {
	m := New(metricsCfg(4, 4))
	s := setupPair(m, 0, 15, nipt.SingleWriteAU)
	for i := 0; i < 8; i++ {
		if err := s.src.UserWrite32(s.ps, s.sendVA+vm.VAddr(i*4), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	m.RunUntilIdle(5_000_000)

	var b strings.Builder
	if err := m.TraceJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !json.Valid([]byte(out)) {
		t.Fatalf("TraceJSON invalid:\n%.400s", out)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	procs := map[int]bool{}
	var stages, instants int
	for _, ev := range doc.TraceEvents {
		procs[ev.Pid] = true
		switch ev.Ph {
		case "b":
			stages++
		case "i":
			instants++
		}
	}
	if len(procs) != 16 {
		t.Fatalf("process tracks %d, want 16", len(procs))
	}
	if stages == 0 || instants == 0 {
		t.Fatalf("stages=%d instants=%d", stages, instants)
	}
}

func TestMetricsReportTables(t *testing.T) {
	m := New(metricsCfg(2, 1))
	driveTraffic(t, m)
	var b strings.Builder
	if err := m.Obs.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"counters", "packets-out", "| stage |", "stage-mesh", "spans:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// Payload histogram saw the stores.
	if h := m.Obs.Node(1).Hist(obs.HistPayload); h.Count == 0 {
		t.Fatal("payload histogram empty")
	}
}

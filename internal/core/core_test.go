package core

import (
	"strings"
	"testing"

	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/trace"
	"repro/internal/vm"
)

// drain runs the machine dry with a generous livelock guard.
func drain(t *testing.T, m *Machine) {
	t.Helper()
	m.RunUntilIdle(5_000_000)
}

func TestBootAndMapSingleWrite(t *testing.T) {
	m := New(ConfigFor(2, 2, nic.GenEISAPrototype))
	sender := m.Node(0)
	receiver := m.Node(3)

	ps := sender.K.CreateProcess()
	pr := receiver.K.CreateProcess()
	sendVA, err := ps.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	recvVA, err := pr.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}

	m.MustMap(ps, sendVA, phys.PageSize, receiver.ID, pr.PID, recvVA, nipt.SingleWriteAU)

	if err := sender.UserWrite32(ps, sendVA+8, 0xdeadbeef); err != nil {
		t.Fatalf("store: %v", err)
	}
	drain(t, m)

	got, err := receiver.UserRead32(pr, recvVA+8)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got != 0xdeadbeef {
		t.Fatalf("remote memory = %#x, want 0xdeadbeef", got)
	}
	if s := sender.NIC.Stats(); s.PacketsOut == 0 {
		t.Fatalf("sender NIC emitted no packets: %+v", s)
	}
	if s := receiver.NIC.Stats(); s.DropNotMappedIn != 0 || s.DropWrongDest != 0 {
		t.Fatalf("receiver dropped packets: %+v", s)
	}
}

func TestMapValidation(t *testing.T) {
	m := New(ConfigFor(2, 1, nic.GenEISAPrototype))
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	sendVA, _ := pa.AllocPages(1)
	recvVA, _ := pb.AllocPages(1)

	// Unknown destination process.
	_, fut := a.K.Map(pa, sendVA, phys.PageSize, b.ID, 999, recvVA, nipt.SingleWriteAU)
	if err := m.Await(fut); err == nil {
		t.Fatal("map to unknown pid succeeded")
	}
	// Unmapped send buffer.
	_, fut = a.K.Map(pa, sendVA+0x100000, phys.PageSize, b.ID, pb.PID, recvVA, nipt.SingleWriteAU)
	if err := m.Await(fut); err == nil {
		t.Fatal("map of unmapped send buffer succeeded")
	}
	// Unmapped receive buffer.
	_, fut = a.K.Map(pa, sendVA, phys.PageSize, b.ID, pb.PID, recvVA+0x100000, nipt.SingleWriteAU)
	if err := m.Await(fut); err == nil {
		t.Fatal("map to unmapped receive buffer succeeded")
	}
	// Sub-page interior mapping (both ends of the page unmapped).
	_, fut = a.K.Map(pa, sendVA+8, 16, b.ID, pb.PID, recvVA+8, nipt.SingleWriteAU)
	if err := m.Await(fut); err == nil {
		t.Fatal("interior sub-page mapping succeeded; hardware cannot express it")
	}
	// A good map still works afterward.
	mp := m.MustMap(pa, sendVA, phys.PageSize, b.ID, pb.PID, recvVA, nipt.SingleWriteAU)
	if mp == nil {
		t.Fatal("mapping handle nil")
	}
}

func TestProtectionIsolation(t *testing.T) {
	// Two processes on the same pair of nodes, disjoint mappings
	// (Figure 3): traffic for one never lands in the other.
	m := New(ConfigFor(2, 1, nic.GenEISAPrototype))
	a, b := m.Node(0), m.Node(1)

	p1 := a.K.CreateProcess()
	q1 := b.K.CreateProcess()
	p2 := a.K.CreateProcess()
	q2 := b.K.CreateProcess()

	s1, _ := p1.AllocPages(1)
	r1, _ := q1.AllocPages(1)
	s2, _ := p2.AllocPages(1)
	r2, _ := q2.AllocPages(1)

	m.MustMap(p1, s1, phys.PageSize, b.ID, q1.PID, r1, nipt.SingleWriteAU)
	m.MustMap(p2, s2, phys.PageSize, b.ID, q2.PID, r2, nipt.SingleWriteAU)

	if err := a.UserWrite32(p1, s1, 111); err != nil {
		t.Fatal(err)
	}
	if err := a.UserWrite32(p2, s2, 222); err != nil {
		t.Fatal(err)
	}
	drain(t, m)

	v1, _ := b.UserRead32(q1, r1)
	v2, _ := b.UserRead32(q2, r2)
	if v1 != 111 || v2 != 222 {
		t.Fatalf("got %d/%d, want 111/222", v1, v2)
	}
	// q2's buffer must not contain q1's value anywhere and vice versa —
	// trivially true here since each buffer got exactly its own word,
	// but also check an unwritten offset stayed zero.
	if v, _ := b.UserRead32(q1, r1+4); v != 0 {
		t.Fatalf("cross-talk into q1: %#x", v)
	}
}

func TestUnmapStopsTraffic(t *testing.T) {
	m := New(ConfigFor(2, 1, nic.GenEISAPrototype))
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	sendVA, _ := pa.AllocPages(1)
	recvVA, _ := pb.AllocPages(1)

	mp := m.MustMap(pa, sendVA, phys.PageSize, b.ID, pb.PID, recvVA, nipt.SingleWriteAU)
	if err := a.UserWrite32(pa, sendVA, 1); err != nil {
		t.Fatal(err)
	}
	drain(t, m)
	if v, _ := b.UserRead32(pb, recvVA); v != 1 {
		t.Fatalf("pre-unmap transfer failed: %d", v)
	}

	if err := m.Await(a.K.Unmap(mp)); err != nil {
		t.Fatalf("unmap: %v", err)
	}
	sb := a.NIC.Stats()
	before := sb.PacketsOut - sb.KernelPacketsOut
	if err := a.UserWrite32(pa, sendVA, 2); err != nil {
		t.Fatal(err)
	}
	drain(t, m)
	if sa := a.NIC.Stats(); sa.PacketsOut-sa.KernelPacketsOut != before {
		t.Fatalf("store after unmap emitted %d user packet(s)",
			sa.PacketsOut-sa.KernelPacketsOut-before)
	}
	if v, _ := b.UserRead32(pb, recvVA); v != 1 {
		t.Fatalf("remote memory changed after unmap: %d", v)
	}
	// The receive frame is no longer mapped in.
	frame, _ := pb.FrameOf(recvVA)
	if b.NIC.Table().Entry(frame).MappedIn {
		t.Fatal("receive frame still marked mapped in after unmap")
	}
}

func TestContextSwitchNeedsNoNICAction(t *testing.T) {
	// A store lands correctly even if the receiver kernel context
	// switches between processes while the packet is in flight: the
	// mapping is physical-to-physical (Figure 3).
	m := New(ConfigFor(2, 1, nic.GenEISAPrototype))
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	other := b.K.CreateProcess()
	sendVA, _ := pa.AllocPages(1)
	recvVA, _ := pb.AllocPages(1)
	if _, err := other.AllocPages(1); err != nil {
		t.Fatal(err)
	}
	m.MustMap(pa, sendVA, phys.PageSize, b.ID, pb.PID, recvVA, nipt.SingleWriteAU)

	b.K.BindProcess(other) // receiver node is "running" a different process
	if err := a.UserWrite32(pa, sendVA+64, 42); err != nil {
		t.Fatal(err)
	}
	drain(t, m)
	if v, _ := b.UserRead32(pb, recvVA+64); v != 42 {
		t.Fatalf("delivery under context switch failed: %d", v)
	}
}

func TestDeliberateUpdateGoLevel(t *testing.T) {
	// Drive the §4.3 command protocol from Go: map a page deliberate,
	// write data (no packets), then issue the DMA command via a locked
	// CMPXCHG on the command page.
	m := New(ConfigFor(2, 1, nic.GenEISAPrototype))
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	sendVA, _ := pa.AllocPages(1)
	recvVA, _ := pb.AllocPages(1)
	m.MustMap(pa, sendVA, phys.PageSize, b.ID, pb.PID, recvVA, nipt.DeliberateUpdate)

	const cmdDelta = 0x4000_0000
	if err := a.K.GrantCommandPages(pa, sendVA, sendVA+cmdDelta, 1); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 64; i++ {
		if err := a.UserWrite32(pa, sendVA+vm.VAddr(4*i), uint32(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, m)
	if s := a.NIC.Stats(); s.PacketsOut != s.KernelPacketsOut {
		t.Fatalf("deliberate-update page emitted %d user packets before send",
			s.PacketsOut-s.KernelPacketsOut)
	}

	// LOCK CMPXCHG: expect 0 (engine free), write word count 64.
	tr, f := pa.AS.Translate(sendVA+cmdDelta, true)
	if f != nil {
		t.Fatal(f)
	}
	read, swapped, _ := a.Cache.LockedCmpxchg(tr.PA, 0, 64)
	if !swapped {
		t.Fatalf("DMA start rejected, engine returned %#x", read)
	}
	drain(t, m)

	for i := 0; i < 64; i++ {
		v, _ := b.UserRead32(pb, recvVA+vm.VAddr(4*i))
		if v != uint32(1000+i) {
			t.Fatalf("word %d = %d, want %d", i, v, 1000+i)
		}
	}
	if a.NIC.DMABusy() {
		t.Fatal("DMA engine still busy after drain")
	}
	// Status read returns 0 when complete.
	if v, _ := a.Cache.Load(tr.PA, 4); v != 0 {
		t.Fatalf("status read = %#x, want 0", v)
	}
}

func TestMachineTracing(t *testing.T) {
	cfg := ConfigFor(2, 1, nic.GenEISAPrototype)
	cfg.TraceCapacity = 4096
	m := New(cfg)
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	sendVA, _ := pa.AllocPages(1)
	recvVA, _ := pb.AllocPages(1)
	m.MustMap(pa, sendVA, phys.PageSize, b.ID, pb.PID, recvVA, nipt.SingleWriteAU)
	if err := a.UserWrite32(pa, sendVA, 1); err != nil {
		t.Fatal(err)
	}
	drain(t, m)

	tr := m.Tracer
	if tr == nil {
		t.Fatal("tracer not attached")
	}
	if tr.CountOf(trace.PacketOut) == 0 || tr.CountOf(trace.PacketIn) == 0 {
		t.Fatalf("packet events missing: out=%d in=%d",
			tr.CountOf(trace.PacketOut), tr.CountOf(trace.PacketIn))
	}
	if tr.CountOf(trace.MapEstablished) == 0 {
		t.Fatal("map event missing")
	}
	if tr.CountOf(trace.IRQ) == 0 {
		t.Fatal("kernel ring IRQ events missing")
	}
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "packet-out") {
		t.Fatal("dump content")
	}
}

func TestConfigValidation(t *testing.T) {
	good := ConfigFor(2, 2, nic.GenEISAPrototype)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero mesh", func(c *Config) { c.MeshWidth = 0 }},
		{"mesh disagreement", func(c *Config) { c.Mesh.Width = 7 }},
		{"too few pages", func(c *Config) { c.MemPagesPerNode = 4 }},
		{"payload over page", func(c *Config) { c.NIC.MaxPayload = phys.PageSize + 1 }},
		{"out threshold at capacity", func(c *Config) { c.NIC.OutThreshold = c.NIC.OutFIFOBytes }},
		{"no out headroom", func(c *Config) { c.NIC.OutThreshold = c.NIC.OutFIFOBytes - 1 }},
		{"no in headroom", func(c *Config) { c.NIC.InThreshold = c.NIC.InFIFOBytes - 1 }},
		{"cache sets not pow2", func(c *Config) { c.Cache.Sets = 3 }},
		{"zero cpu clock", func(c *Config) { c.CPU.CycleTime = 0 }},
		{"zero flit", func(c *Config) { c.Mesh.FlitBytes = 0 }},
	}
	for _, m := range mutations {
		cfg := ConfigFor(2, 2, nic.GenEISAPrototype)
		m.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
	// New panics on invalid configs.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New accepted an invalid config")
			}
		}()
		bad := ConfigFor(2, 2, nic.GenEISAPrototype)
		bad.MemPagesPerNode = 3
		New(bad)
	}()
}

func TestFaultInjectionCRCDrops(t *testing.T) {
	// Mark every 5th packet as damaged in flight: the receiving NIC's
	// verification drops them; clean packets still land; memory never
	// sees corrupt data.
	m := New(ConfigFor(2, 1, nic.GenEISAPrototype))
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	sendVA, _ := pa.AllocPages(1)
	recvVA, _ := pb.AllocPages(1)
	m.MustMap(pa, sendVA, phys.PageSize, b.ID, pb.PID, recvVA, nipt.SingleWriteAU)
	drain(t, m)
	// Damage only user traffic: the kernel control plane (like the real
	// backplane) assumes error-free delivery, and the map is done.
	m.Net.CorruptEvery(5)
	defer m.Net.CorruptEvery(0)

	delivered := 0
	for i := 1; i <= 40; i++ {
		if err := a.UserWrite32(pa, sendVA+vm.VAddr(4*(i-1)), uint32(i)); err != nil {
			t.Fatal(err)
		}
		drain(t, m)
		if v, _ := b.UserRead32(pb, recvVA+vm.VAddr(4*(i-1))); v == uint32(i) {
			delivered++
		} else if v != 0 {
			t.Fatalf("corrupt data deposited: word %d = %d", i, v)
		}
	}
	s := b.NIC.Stats()
	if s.DropCRC == 0 {
		t.Fatal("no CRC drops under fault injection")
	}
	if delivered == 0 || delivered == 40 {
		t.Fatalf("delivered %d/40; expected partial delivery", delivered)
	}
	if uint64(delivered)+s.DropCRC < 40 {
		t.Fatalf("conservation: %d delivered + %d dropped < 40", delivered, s.DropCRC)
	}
}

func TestMachineReport(t *testing.T) {
	m := New(ConfigFor(2, 1, nic.GenEISAPrototype))
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	sendVA, _ := pa.AllocPages(1)
	recvVA, _ := pb.AllocPages(1)
	m.MustMap(pa, sendVA, phys.PageSize, b.ID, pb.PID, recvVA, nipt.SingleWriteAU)
	if err := a.UserWrite32(pa, sendVA, 1); err != nil {
		t.Fatal(err)
	}
	drain(t, m)
	var sb strings.Builder
	if err := m.Report(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"backplane:", "node  0:", "node  1:", "totals:", "maps=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

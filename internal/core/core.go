// Package core assembles SHRIMP machines: N nodes — each a CPU, cache,
// Xpress memory bus, EISA expansion bus, DRAM, network interface and
// kernel — connected by a Paragon-style wormhole mesh (paper §3,
// Figure 2). It also wires up the boot-time kernel message rings that
// the map() system call and the §4.4 consistency protocol ride on.
package core

import (
	"errors"
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mesh"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Config describes a whole machine.
type Config struct {
	MeshWidth, MeshHeight int
	MemPagesPerNode       int
	Generation            nic.Generation
	// TraceCapacity, when positive, attaches an event tracer retaining
	// that many events across the whole machine.
	TraceCapacity int
	// Metrics attaches the machine-wide observability registry
	// (internal/obs): per-node counters and histograms, per-link mesh
	// stats, and causal packet spans. Off by default; enabling it never
	// changes simulated results, only records them.
	Metrics bool
	// SpanCapacity bounds concurrently-active and retained-completed
	// causal spans when Metrics is on (<= 0 selects
	// obs.DefaultSpanCapacity).
	SpanCapacity int
	// Recorder arms the flight recorder (obs.Recorder): the registry is
	// sampled into a preallocated ring every Recorder.Interval of
	// simulated time, giving counters and gauges a time series and
	// histograms windowed rates. Requires Metrics. The zero value
	// disables it; arming it changes no simulated result, and samples
	// are bit-identical across Partitions settings (see
	// internal/sim/pacer.go).
	Recorder obs.RecorderConfig
	// Watchdog arms the progress watchdog (watchdog.go): at every
	// Watchdog.Interval of simulated time it checks for reliable-
	// delivery retry storms, wedged Outgoing-FIFO drains, and a missed
	// quiescence deadline, raising a structured *fault.MachineCheck
	// instead of letting a fault-plan deadlock spin to the event budget.
	// Requires Metrics. The zero value disables it.
	Watchdog WatchdogConfig
	// Faults configures the deterministic fault-injection subsystem
	// (internal/fault). The zero value disables it entirely: no injector
	// is built and the machine is bit-identical to one without the
	// subsystem.
	Faults fault.Config
	// Partitions splits the node set across that many simulation engines
	// so one machine runs its node phases on multiple cores (the mesh
	// fabric gets its own hub engine). 0 or 1 selects the sequential
	// single-engine machine. Results are bit-identical across partition
	// counts by construction — see internal/sim's Cluster. Incompatible
	// with TraceCapacity (the tracer is a single serial log) and with
	// StartGangScheduling.
	Partitions int
	// PartitionSeed, when nonzero, shuffles the node→partition assignment
	// deterministically instead of using contiguous blocks. Exists to let
	// the differential tests prove assignment does not affect results.
	PartitionSeed uint64

	Mesh   mesh.Config
	Xpress bus.XpressConfig
	EISA   bus.EISAConfig
	Cache  cache.Config
	NIC    nic.Config
	CPU    isa.Config
	Kernel kernel.Config
}

// DefaultConfig returns the paper's prototype: a 4×4 mesh of EISA-based
// nodes with 4 MB of DRAM each.
func DefaultConfig() Config {
	return ConfigFor(4, 4, nic.GenEISAPrototype)
}

// ConfigFor builds a config for the given mesh size and NIC generation.
func ConfigFor(w, h int, gen nic.Generation) Config {
	cfg := Config{
		MeshWidth:       w,
		MeshHeight:      h,
		MemPagesPerNode: 1024, // 4 MB
		Generation:      gen,
		Mesh:            mesh.DefaultConfig(w, h),
		Xpress:          bus.DefaultXpressConfig(),
		EISA:            bus.DefaultEISAConfig(),
		Cache:           cache.DefaultConfig(),
		NIC:             nic.DefaultConfig(),
		CPU:             isa.DefaultConfig(),
		Kernel:          kernel.DefaultConfig(),
	}
	cfg.NIC.Generation = gen
	return cfg
}

// Node is one SHRIMP node (Figure 2). Eng is the engine the node's
// events run on: the machine's only engine sequentially, the owning
// partition's engine when the machine is partitioned.
type Node struct {
	Eng   *sim.Engine
	ID    packet.NodeID
	Coord packet.Coord
	Mem   *phys.Memory
	Xbus  *bus.Xpress
	EISA  *bus.EISA
	Cache *cache.Cache
	NIC   *nic.NIC
	CPU   *isa.CPU
	Box   *kernel.MemBox
	K     *kernel.Kernel

	m *Machine // for cluster-aware run loops in user accessors
}

// Machine is a booted SHRIMP multicomputer.
//
// Eng is the fabric engine: the single shared engine of a sequential
// machine, or the mesh hub of a partitioned one. Harness code that
// drives the simulation should use the Machine's own clock and run
// methods (Now, Step, RunWhile, RunFor, Fired, Failed) — they are the
// sequential engine's methods when Clu is nil and the cluster's
// canonical-order equivalents otherwise.
type Machine struct {
	Eng    *sim.Engine
	Clu    *sim.Cluster  // nil unless Cfg.Partitions > 1
	Parts  []*sim.Engine // partition engines; nil sequentially
	PartOf []int         // node id → partition index; nil sequentially

	partNodes [][]int  // partition index → node ids (probe scan order)
	glue      *cluGlue // typed post/message decoder; nil sequentially
	Cfg    Config
	Net    *mesh.Network
	Nodes  []*Node
	Tracer *trace.Tracer   // nil unless Config.TraceCapacity > 0
	Obs    *obs.Registry   // nil unless Config.Metrics
	Rec    *obs.Recorder   // nil unless Config.Recorder armed
	Faults *fault.Injector // nil unless Config.Faults.Enabled()

	wd *watchdog // nil unless Config.Watchdog armed
}

// CoordOf maps a node id to its mesh coordinates (row-major).
func (c Config) CoordOf(id packet.NodeID) packet.Coord {
	return packet.Coord{X: int(id) % c.MeshWidth, Y: int(id) / c.MeshWidth}
}

// NodeCount returns the number of nodes in the machine.
func (c Config) NodeCount() int { return c.MeshWidth * c.MeshHeight }

// New boots a machine: builds every node, attaches them to the mesh, and
// installs the kernel ring pages (the "firmware" step — the only
// mappings not established through map()).
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	// The fabric engine: the only engine sequentially, the hub of a
	// partitioned machine. The mesh always lives here.
	eng := sim.NewEngine()
	net := mesh.New(eng, cfg.Mesh)
	m := &Machine{Eng: eng, Cfg: cfg, Net: net}
	if cfg.Partitions > 1 {
		m.Parts = make([]*sim.Engine, cfg.Partitions)
		for i := range m.Parts {
			m.Parts[i] = sim.NewEngine()
		}
		m.PartOf = partitionNodes(cfg.NodeCount(), cfg.Partitions, cfg.PartitionSeed)
		m.partNodes = make([][]int, cfg.Partitions)
		for id, p := range m.PartOf {
			m.partNodes[p] = append(m.partNodes[p], id)
		}
		m.Clu = sim.NewCluster(m.Parts, eng, cfg.Mesh.Lookahead())
		m.glue = &cluGlue{
			m:       m,
			mesh:    net,
			eps:     make([]mesh.Endpoint, cfg.NodeCount()),
			injFree: make([]func(), cfg.NodeCount()),
		}
		m.Clu.SetDispatch(m.glue)
	}
	if cfg.TraceCapacity > 0 {
		m.Tracer = trace.New(eng, cfg.TraceCapacity)
		net.Tracer = m.Tracer
	}
	if cfg.Metrics {
		m.Obs = obs.New(cfg.NodeCount(), cfg.SpanCapacity)
		net.SetObs(m.Obs)
	}
	if cfg.Faults.Enabled() {
		m.Faults = fault.NewInjector(cfg.Faults, cfg.NodeCount())
		net.SetFaults(m.Faults)
	}

	for id := 0; id < cfg.NodeCount(); id++ {
		coord := cfg.CoordOf(packet.NodeID(id))
		nodeEng := eng
		var nodeNet nic.Network = net
		if m.Clu != nil {
			nodeEng = m.Parts[m.PartOf[id]]
			nodeNet = &partNet{
				clu: m.Clu, mesh: net, glue: m.glue, eng: nodeEng,
				node: id, part: m.PartOf[id], dom: sim.DomNode(id),
			}
		}
		mem := phys.NewMemory(cfg.MemPagesPerNode)
		xbus := bus.NewXpress(nodeEng, cfg.Xpress, mem)
		var eisaBus *bus.EISA
		if cfg.Generation == nic.GenEISAPrototype {
			eisaBus = bus.NewEISA(nodeEng, cfg.EISA, xbus)
		}
		ch := cache.New(nodeEng, cfg.Cache, xbus)
		table := nipt.New(cfg.MemPagesPerNode)
		nicDev := nic.New(nodeEng, cfg.NIC, packet.NodeID(id), coord, table, xbus, eisaBus, nodeNet)
		if m.Clu != nil {
			nicDev.SetFabricEngine(eng)
		}
		box := &kernel.MemBox{Cache: ch}
		cpu := isa.NewCPU(nodeEng, cfg.CPU, box)
		cpu.SetName(fmt.Sprintf("cpu%d", id))
		cpu.SetDom(sim.DomNode(id))
		k := kernel.New(nodeEng, cfg.Kernel, packet.NodeID(id), coord, mem, xbus, nicDev, cpu, box)
		nicDev.Tracer = m.Tracer
		k.Tracer = m.Tracer
		scope := m.Obs.Node(id) // nil when metrics are disabled
		nicDev.SetObs(m.Obs)
		xbus.SetObs(scope)
		table.SetObs(scope)
		cpu.SetObs(scope)
		k.Obs = scope
		if m.Faults != nil {
			nicDev.SetFaults(m.Faults)
			k.SetRingCRC(cfg.Faults.Reliable)
			if cfg.Faults.Survivable {
				// Crash survival: the NIC's failure detector feeds the
				// kernel's quarantine pass, and the kernel's completed
				// teardown pins a mark on the flight recorder timeline.
				k.SetSurvivable(true)
				nicDev.OnPeerDown = k.HandlePeerDown
				observer := id
				k.OnPeerDown = func(pd *fault.PeerDown) { m.notePeerDown(observer, pd) }
			}
		}
		if m.Clu != nil {
			// Harness syscalls must be timestamped at the cluster's
			// observable clock, exactly where the sequential machine's
			// single clock would sit (see Node.enter).
			eng := nodeEng
			k.SetClockSync(func() { eng.AdvanceTo(m.Clu.Now()) })
		}
		m.Nodes = append(m.Nodes, &Node{
			Eng: nodeEng, ID: packet.NodeID(id), Coord: coord, Mem: mem, Xbus: xbus,
			EISA: eisaBus, Cache: ch, NIC: nicDev, CPU: cpu, Box: box, K: k, m: m,
		})
	}
	if m.Clu != nil {
		m.Clu.SetPartProbes(m.partProbes)
		m.Clu.SetPairLookahead(m.pairLookahead())
	}
	if cfg.Recorder.Interval > 0 {
		m.Rec = obs.NewRecorder(m.Obs, cfg.Recorder)
	}
	if cfg.Watchdog.Interval > 0 {
		m.wd = newWatchdog(m, cfg.Watchdog)
	}
	if p := m.pacer(); p != nil {
		// The pacer observes the canonical event order without scheduling
		// anything; on a partitioned machine it must sit on the Cluster
		// coordinator (node phases run concurrently), never on a
		// partition engine.
		if m.Clu != nil {
			m.Clu.SetPacer(p)
		} else {
			m.Eng.SetPacer(p)
		}
	}
	m.installKernelRings()
	m.applyFaults()
	return m
}

// pacer folds the armed observers into the machine's single pacer slot.
func (m *Machine) pacer() sim.Pacer {
	switch {
	case m.Rec != nil && m.wd != nil:
		return &machinePacer{rec: m.Rec, wd: m.wd}
	case m.Rec != nil:
		return m.Rec
	case m.wd != nil:
		return m.wd
	}
	return nil
}

// machinePacer multiplexes the flight recorder and the watchdog (their
// cadences may differ) onto one sim.Pacer.
type machinePacer struct {
	rec *obs.Recorder
	wd  *watchdog
}

func (p *machinePacer) NextDeadline() sim.Time {
	d := p.rec.NextDeadline()
	if w := p.wd.NextDeadline(); w < d {
		d = w
	}
	return d
}

func (p *machinePacer) Pace(deadline, head sim.Time) {
	if p.rec.NextDeadline() <= deadline {
		p.rec.Pace(deadline, head)
	}
	if p.wd.NextDeadline() <= deadline {
		p.wd.Pace(deadline, head)
	}
}

// installKernelRings reserves the boot pages for kernel↔kernel rings,
// installs their NIPT mappings directly (the hardware-install substitute
// for firmware), and seeds each kernel's page allocator with the rest.
func (m *Machine) installKernelRings() {
	n := len(m.Nodes)
	// Page layout per node: outbox to each peer, then inbox from each
	// peer, then general allocation.
	ringPages := 2 * (n - 1)
	if ringPages >= m.Cfg.MemPagesPerNode {
		panic("core: not enough memory pages for kernel rings")
	}
	outFrame := func(a, b int) phys.PageNum { // outbox on a toward b
		return phys.PageNum(peerIndex(a, b))
	}
	inFrame := func(a, b int) phys.PageNum { // inbox on a from b
		return phys.PageNum(n - 1 + peerIndex(a, b))
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			na, nb := m.Nodes[a], m.Nodes[b]
			out, in := outFrame(a, b), inFrame(b, a)
			// Sender side: the outbox page maps to the peer's inbox
			// frame, blocked-write (ring records merge nicely), tagged
			// as a kernel ring so arrivals raise the kernel IRQ.
			na.NIC.Table().MapOut(out, nipt.OutMapping{
				Mode:    nipt.BlockedWriteAU,
				Dst:     nb.Coord,
				DstNode: nb.ID,
				DstPage: in,
			})
			na.NIC.Table().Entry(out).KernelRing = true
			// Receiver side.
			e := nb.NIC.Table().Entry(in)
			e.MappedIn = true
			e.KernelRing = true
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			m.Nodes[a].K.AddPeer(m.Nodes[b].ID, m.Nodes[b].Coord,
				outFrame(a, b), inFrame(a, b))
		}
	}
	for _, node := range m.Nodes {
		free := make([]phys.PageNum, 0, m.Cfg.MemPagesPerNode-ringPages)
		// Descending so that the allocator (which pops the tail) hands
		// out ascending frame numbers — friendlier diagnostics.
		for p := m.Cfg.MemPagesPerNode - 1; p >= ringPages; p-- {
			free = append(free, phys.PageNum(p))
		}
		node.K.SetFreePages(free)
	}
}

// peerIndex numbers a's peers 0..n-2 in node order, skipping a itself.
func peerIndex(a, b int) int {
	if b < a {
		return b
	}
	return b - 1
}

// Node returns node i.
func (m *Machine) Node(i int) *Node { return m.Nodes[i] }

// Now returns the machine's simulated clock (the furthest engine when
// partitioned).
func (m *Machine) Now() sim.Time {
	if m.Clu != nil {
		return m.Clu.Now()
	}
	return m.Eng.Now()
}

// Fired returns the total events executed across all engines.
func (m *Machine) Fired() uint64 {
	if m.Clu != nil {
		return m.Clu.Fired()
	}
	return m.Eng.Fired()
}

// Failed returns the machine's recorded failure (the canonically-first
// one across partitions), if any.
func (m *Machine) Failed() error {
	if m.Clu != nil {
		return m.Clu.Failed()
	}
	return m.Eng.Failed()
}

// Step fires the next event in canonical global order; false when no
// events remain.
func (m *Machine) Step() bool {
	if m.Clu != nil {
		return m.Clu.Step()
	}
	return m.Eng.Step()
}

// RunWhile fires events in canonical order while cond() holds; false if
// it stopped early (queues drained or a failure was recorded).
func (m *Machine) RunWhile(cond func() bool) bool {
	if m.Clu != nil {
		return m.Clu.RunWhile(cond)
	}
	return m.Eng.RunWhile(cond)
}

// RunFor advances the machine by d, firing everything in the window.
func (m *Machine) RunFor(d sim.Time) {
	if m.Clu != nil {
		m.Clu.RunFor(d)
		return
	}
	m.Eng.RunFor(d)
}

// Close stops the partitioned machine's persistent worker gang (a
// no-op sequentially). The machine remains usable — the next parallel
// round restarts the gang — and idle workers self-reap on their own, so
// Close is a courtesy for deterministic goroutine accounting (tests,
// benchmark harnesses cycling machines), not a requirement.
func (m *Machine) Close() {
	if m.Clu != nil {
		m.Clu.Close()
	}
}

// MaxPending returns the deepest any engine's queue has been.
func (m *Machine) MaxPending() int {
	if m.Clu != nil {
		return m.Clu.MaxPending()
	}
	return m.Eng.MaxPending()
}

// RunUntilIdle drains the event queue and returns the machine check a
// component raised through the engine's failure surface, if any. It
// still panics after limit events (livelock guard): a blown budget is a
// harness bug, not a simulated fault. On a partitioned machine this is
// the parallel path: events drain in lookahead-bounded rounds across
// all partition engines.
func (m *Machine) RunUntilIdle(limit uint64) error {
	var err error
	if m.Clu != nil {
		err = m.Clu.DrainBudget(limit)
	} else {
		err = m.Eng.DrainBudget(limit)
	}
	if errors.Is(err, sim.ErrBudget) {
		panic(fmt.Sprintf("core: RunUntilIdle exceeded %d events: %v", limit, err))
	}
	return err
}

// Await drives the simulation until the future resolves, then returns
// its error. A machine check raised while waiting is returned instead;
// it panics only if the event queue runs dry with no failure recorded.
func (m *Machine) Await(f *kernel.Future) error {
	ok := m.RunWhile(func() bool { return !f.Done() })
	if !ok && !f.Done() {
		if err := m.Failed(); err != nil {
			return err
		}
		panic("core: Await ran out of events before future resolved")
	}
	return f.Err()
}

// MustMap drives the Map syscall to completion and returns the mapping
// handle, panicking on any setup error. The map phase sits outside the
// measured loops, per Figure 1.
func (m *Machine) MustMap(p *kernel.Process, sendVA vm.VAddr, bytes int,
	dst packet.NodeID, dstPID int, recvVA vm.VAddr, mode nipt.Mode) *kernel.Mapping {
	mapping, fut := p.Kernel().Map(p, sendVA, bytes, dst, dstPID, recvVA, mode)
	if err := m.Await(fut); err != nil {
		panic(fmt.Sprintf("core: map failed: %v", err))
	}
	return mapping
}

// UserWrite32 performs a store to p's virtual memory exactly as the CPU
// would: translated through p's page table and issued through the node's
// cache and memory bus, where the NIC snoops it. Like the real CPU, the
// caller experiences the store latency (simulated time advances) and is
// held while the Outgoing FIFO is above its threshold — the §4 "the CPU
// is interrupted and waits until the FIFO drains". Go-level examples and
// tests use it in place of ISA store instructions.
func (n *Node) UserWrite32(p *kernel.Process, va vm.VAddr, v uint32) error {
	return n.userStore(p, va, v, 4)
}

// enter tags the engine with this node's event domain for the duration
// of a harness-initiated component call: anything the call schedules
// carries the node's domain, so the canonical (time, domain, seq) order
// — and with it a partitioned run — matches the sequential one
// regardless of which event happened to fire last. The caller must
// restore the returned previous domain.
//
// In a partitioned machine it also synchronizes the node's clock to the
// cluster's observable time first: a sequential machine has one clock,
// so a harness action always runs at the time of the last fired event,
// wherever it fired. A partition engine's clock only advances when its
// own events fire, so without the sync a harness action on a lagging
// node would issue bus cycles in the past relative to the sequential
// run.
func (n *Node) enter() sim.Domain {
	if n.m.Clu != nil {
		n.Eng.AdvanceTo(n.m.Clu.Now())
	}
	return n.Eng.EnterDomain(sim.DomNode(int(n.ID)))
}

func (n *Node) userStore(p *kernel.Process, va vm.VAddr, v uint32, size int) error {
	for n.NIC.OutStalled() {
		if !n.m.Step() {
			break
		}
	}
	tr, f := p.AS.Translate(va, true)
	if f != nil {
		return f
	}
	prev := n.enter()
	lat := n.Cache.Store(tr.PA, v, size, tr.WriteThrough)
	n.Eng.EnterDomain(prev)
	n.m.RunFor(lat)
	return nil
}

// UserRead32 is the load counterpart of UserWrite32.
func (n *Node) UserRead32(p *kernel.Process, va vm.VAddr) (uint32, error) {
	tr, f := p.AS.Translate(va, false)
	if f != nil {
		return 0, f
	}
	prev := n.enter()
	v, _ := n.Cache.Load(tr.PA, 4)
	n.Eng.EnterDomain(prev)
	return v, nil
}

// CacheRead32 loads four bytes at physical address pa through the
// node's cache — the harness form of a user-mode load that already
// holds a translation. Like LockedCmpxchg it keeps the node's event
// domain correct for anything the access schedules (miss fills, dirty
// evictions).
func (n *Node) CacheRead32(pa phys.PAddr) uint32 {
	prev := n.enter()
	v, _ := n.Cache.Load(pa, 4)
	n.Eng.EnterDomain(prev)
	return v
}

// LockedCmpxchg performs an atomic compare-exchange on p's virtual
// address space through the node's cache, as a LOCK CMPXCHG instruction
// would. Harness code uses it in place of issuing the instruction; it
// keeps the node's event domain correct, which direct Cache access from
// outside an event would not.
func (n *Node) LockedCmpxchg(pa phys.PAddr, expect, repl uint32) (uint32, bool, sim.Time) {
	prev := n.enter()
	read, swapped, lat := n.Cache.LockedCmpxchg(pa, expect, repl)
	n.Eng.EnterDomain(prev)
	return read, swapped, lat
}

// UserWriteBytes stores a byte slice word by word (tail bytes singly).
func (n *Node) UserWriteBytes(p *kernel.Process, va vm.VAddr, b []byte) error {
	i := 0
	for ; i+4 <= len(b); i += 4 {
		v := uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
		if err := n.UserWrite32(p, va+vm.VAddr(i), v); err != nil {
			return err
		}
	}
	for ; i < len(b); i++ {
		if err := n.userStore(p, va+vm.VAddr(i), uint32(b[i]), 1); err != nil {
			return err
		}
	}
	return nil
}

// UserReadBytes loads len(out) bytes from p's virtual memory.
func (n *Node) UserReadBytes(p *kernel.Process, va vm.VAddr, out []byte) error {
	prev := n.enter()
	defer n.Eng.EnterDomain(prev)
	for i := range out {
		tr, f := p.AS.Translate(va+vm.VAddr(i), false)
		if f != nil {
			return f
		}
		v, _ := n.Cache.Load(tr.PA, 1)
		out[i] = byte(v)
	}
	return nil
}

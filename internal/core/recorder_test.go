package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Differential tests for the flight recorder and the watchdog: both are
// pacers (passive observers of the canonical event order), so arming
// them must change no simulated result — and on a sequential machine not
// even the engine bookkeeping, since pacing adds no events.

// recCfg arms metrics plus a recorder on cfg.
func recCfg(cfg Config) Config {
	cfg.Metrics = true
	cfg.Recorder = obs.RecorderConfig{Interval: 10 * sim.Microsecond, Capacity: 256}
	return cfg
}

// TestRecorderDifferentialOff: the sequential machine with a recorder
// armed is strictly bit-identical to one without — result, full
// unscrubbed metrics snapshot, and the engine's fired-event count.
func TestRecorderDifferentialOff(t *testing.T) {
	run := func(rec bool) (AUBandwidthResult, obs.Snapshot, uint64) {
		cfg := ConfigFor(4, 4, nic.GenEISAPrototype)
		cfg.Metrics = true
		if rec {
			cfg = recCfg(cfg)
		}
		m := New(cfg)
		r := measureAUBandwidthOn(m, nipt.SingleWriteAU, 600)
		return r, m.Obs.Snapshot(), m.Fired()
	}
	plainR, plainS, plainF := run(false)
	recR, recS, recF := run(true)
	if recR != plainR {
		t.Fatalf("recorder changed the result:\n got  %+v\n want %+v", recR, plainR)
	}
	if recF != plainF {
		t.Fatalf("recorder changed fired events: %d vs %d", recF, plainF)
	}
	if !reflect.DeepEqual(recS, plainS) {
		t.Fatalf("recorder changed the metrics snapshot")
	}
}

// scrubSeries zeroes the engine-artifact series of a recorder timeline
// (same normalization as scrubSnapshot: CPU run-ahead batches break at
// different points under partition windowing, so their bookkeeping
// counters sampled mid-run legitimately differ).
func scrubSeries(s obs.Series) obs.Series {
	for i := range s.Counters {
		if obs.IsEngineArtifact(obs.Counter(i).String()) {
			s.Counters[i] = nil
		}
	}
	for i := range s.HistCounts {
		if obs.IsEngineArtifact(obs.Hist(i).String()) {
			s.HistCounts[i] = nil
			s.HistSums[i] = nil
		}
	}
	return s
}

// TestRecorderPartitionInvariance: recorder samples cut the canonical
// event order, so the sampled timeline is identical across partition
// counts — times, counters, gauges, histogram windows — up to the
// documented engine artifacts.
func TestRecorderPartitionInvariance(t *testing.T) {
	run := func(parts int, seed uint64) (obs.Series, AUBandwidthResult) {
		cfg := recCfg(partCfg(parts, seed))
		m := New(cfg)
		r := measureAUBandwidthOn(m, nipt.SingleWriteAU, 600)
		return m.Rec.Series(), r
	}
	wantS, wantR := run(1, 0)
	if len(wantS.Times) == 0 {
		t.Fatal("sequential run took no samples; workload too short for the cadence")
	}
	wantScrubbed := scrubSeries(wantS)
	for _, parts := range []int{2, 4} {
		s, r := run(parts, 42)
		if r != wantR {
			t.Fatalf("parts=%d: result diverged under recorder", parts)
		}
		if !reflect.DeepEqual(s.Times, wantScrubbed.Times) {
			t.Fatalf("parts=%d: sample times diverged:\n got  %v\n want %v", parts, s.Times, wantScrubbed.Times)
		}
		if got := scrubSeries(s); !reflect.DeepEqual(got, wantScrubbed) {
			for c := range got.Counters {
				if !reflect.DeepEqual(got.Counters[c], wantScrubbed.Counters[c]) {
					t.Fatalf("parts=%d: counter %s series diverged:\n got  %v\n want %v",
						parts, obs.Counter(c), got.Counters[c], wantScrubbed.Counters[c])
				}
			}
			t.Fatalf("parts=%d: recorder series diverged", parts)
		}
	}
}

// TestRecorderResetReuse: a Reset-reused machine's recorder replays the
// fresh machine's timeline exactly, including after ring wraparound.
func TestRecorderResetReuse(t *testing.T) {
	cfg := recCfg(ConfigFor(4, 4, nic.GenEISAPrototype))
	cfg.Recorder.Capacity = 8 // small ring: exercise wraparound + O(used) reset
	fresh := New(cfg)
	want := measureAUBandwidthOn(fresh, nipt.SingleWriteAU, 600)
	wantS := fresh.Rec.Series()

	m := New(cfg)
	for round := 0; round < 3; round++ {
		if round > 0 {
			m.Reset()
		}
		if got := measureAUBandwidthOn(m, nipt.SingleWriteAU, 600); got != want {
			t.Fatalf("round %d: result diverged: %+v vs %+v", round, got, want)
		}
		if got := m.Rec.Series(); !reflect.DeepEqual(got, wantS) {
			t.Fatalf("round %d: recorder series diverged after reset", round)
		}
	}
}

// TestRecorderParallelSweep: sweeps over Reset-reused pool machines with
// the recorder armed return exactly the recorder-off results.
func TestRecorderParallelSweep(t *testing.T) {
	want := LatencySweepParallel(ConfigFor(4, 4, nic.GenEISAPrototype), 4)
	got := LatencySweepParallel(recCfg(ConfigFor(4, 4, nic.GenEISAPrototype)), 4)
	if len(got) != len(want) {
		t.Fatalf("sweep sizes differ")
	}
	for i := range want {
		if normLatency(got[i]) != normLatency(want[i]) {
			t.Fatalf("point %d diverged with recorder armed:\n got  %+v\n want %+v",
				i, got[i], want[i])
		}
	}
}

// TestMachineOpenMetricsDeterministic: two identical runs expose
// byte-identical OpenMetrics, and partition counts 1 vs 2 agree once
// engine-artifact series are omitted.
func TestMachineOpenMetricsDeterministic(t *testing.T) {
	render := func(parts int, omit bool) string {
		cfg := recCfg(partCfg(parts, 0))
		m := New(cfg)
		measureAUBandwidthOn(m, nipt.SingleWriteAU, 600)
		var b strings.Builder
		if err := m.WriteOpenMetrics(&b, obs.OpenMetricsOptions{OmitEngineArtifacts: omit}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render(1, false) != render(1, false) {
		t.Fatal("two identical runs exposed different OpenMetrics")
	}
	seq, par := render(1, true), render(2, true)
	if seq != par {
		t.Fatalf("partitions 1 vs 2 OpenMetrics diverged (artifacts omitted):\nseq %d bytes, par %d bytes",
			len(seq), len(par))
	}
	if !strings.HasSuffix(seq, "# EOF\n") || !strings.Contains(seq, "shrimp_rec_samples_total") {
		t.Fatal("exposition malformed")
	}
}

// TestWatchdogRetryStorm: a crashed receiver with an effectively
// unbounded retry budget used to spin the run into its event budget; the
// watchdog converts it into a structured retry-storm machine check.
func TestWatchdogRetryStorm(t *testing.T) {
	cfg := ConfigFor(2, 1, nic.GenXpress)
	cfg.Metrics = true
	cfg.Faults = fault.Config{
		Seed: 1, Reliable: true, RetryBudget: 1 << 30,
		Nodes: [2]fault.NodeFault{{Node: 1, Kind: fault.NodeCrash, At: 200 * sim.Microsecond}},
	}
	cfg.Watchdog = WatchdogConfig{Interval: 50 * sim.Microsecond}
	cfg.Recorder = obs.RecorderConfig{Interval: 50 * sim.Microsecond}
	m := New(cfg)
	p := measureFaultyTransferOn(m, 0, 1, 1024, 64*1024)
	if p.Err == "" {
		t.Fatal("crashed receiver with huge retry budget did not fail")
	}
	if !strings.Contains(p.Err, "retry-storm") {
		t.Fatalf("expected a retry-storm machine check, got: %s", p.Err)
	}
	var mc *fault.MachineCheck
	if err := m.Failed(); !errors.As(err, &mc) || mc.Kind != fault.CheckRetryStorm || mc.Node != 0 {
		t.Fatalf("failure surface: %v", err)
	}
	// The trip pinned a mark on the recorder timeline.
	marks := m.Rec.Series().Marks
	if len(marks) != 1 || marks[0].Label != "watchdog: retry-storm" {
		t.Fatalf("recorder marks %+v", marks)
	}
}

// TestWatchdogDeadline: a workload still running past the configured
// deadline trips CheckDeadline at the first check at/after it.
func TestWatchdogDeadline(t *testing.T) {
	cfg := ConfigFor(2, 1, nic.GenEISAPrototype)
	cfg.Metrics = true
	cfg.Watchdog = WatchdogConfig{Interval: 10 * sim.Microsecond, Deadline: 50 * sim.Microsecond}
	m := New(cfg)
	// An event chain that outlives the deadline.
	var tick func()
	tick = func() {
		if m.Eng.Now() < 500*sim.Microsecond {
			m.Eng.After(5*sim.Microsecond, tick)
		}
	}
	m.Eng.After(5*sim.Microsecond, tick)
	err := m.Eng.DrainBudget(1 << 20)
	var mc *fault.MachineCheck
	if !errors.As(err, &mc) || mc.Kind != fault.CheckDeadline {
		t.Fatalf("expected deadline machine check, got %v", err)
	}
	if mc.At < 50*sim.Microsecond || mc.At >= 60*sim.Microsecond {
		t.Fatalf("deadline check at %v, want first check at/after 50us", mc.At)
	}
}

// TestWatchdogFIFOStall drives the stall detector directly: a node
// pinned at the threshold with no sends for `windows` checks trips.
func TestWatchdogFIFOStall(t *testing.T) {
	cfg := ConfigFor(2, 1, nic.GenEISAPrototype)
	cfg.Metrics = true
	cfg.Watchdog = WatchdogConfig{Interval: 10 * sim.Microsecond, Windows: 3, StallBytes: 512}
	m := New(cfg)
	m.Obs.Node(1).Set(obs.GaugeOutFIFOBytes, 600)
	for i := 1; i <= 2; i++ {
		m.wd.Pace(m.wd.NextDeadline(), m.wd.NextDeadline())
		if m.Failed() != nil {
			t.Fatalf("tripped after %d windows", i)
		}
	}
	m.wd.Pace(m.wd.NextDeadline(), m.wd.NextDeadline())
	var mc *fault.MachineCheck
	if err := m.Failed(); !errors.As(err, &mc) || mc.Kind != fault.CheckFIFOStall || mc.Node != 1 {
		t.Fatalf("expected node-1 fifo-stall, got %v", m.Failed())
	}
	// Tripped: no further deadlines.
	if m.wd.NextDeadline() != sim.Forever {
		t.Fatal("tripped watchdog still scheduling checks")
	}
	// Reset rearms it.
	m.Reset()
	if m.wd.NextDeadline() != 10*sim.Microsecond || m.Failed() != nil {
		t.Fatal("reset did not rearm the watchdog")
	}
}

// TestWatchdogDifferentialOff: a watchdog that never trips changes no
// simulated result.
func TestWatchdogDifferentialOff(t *testing.T) {
	run := func(wd bool) AUBandwidthResult {
		cfg := ConfigFor(4, 4, nic.GenEISAPrototype)
		cfg.Metrics = true
		if wd {
			cfg.Watchdog = WatchdogConfig{Interval: 20 * sim.Microsecond}
		}
		m := New(cfg)
		return measureAUBandwidthOn(m, nipt.SingleWriteAU, 600)
	}
	if got, want := run(true), run(false); got != want {
		t.Fatalf("watchdog changed the result:\n got  %+v\n want %+v", got, want)
	}
}

// TestFaultPointTailLatency: with metrics on, a fault point reports
// ordered, positive end-to-end latency quantiles, deterministically.
func TestFaultPointTailLatency(t *testing.T) {
	run := func() FaultPoint {
		cfg := ConfigFor(2, 1, nic.GenXpress)
		cfg.Metrics = true
		cfg.Faults = fault.Config{Seed: 7, DropPPM: 20_000, Reliable: true}
		return measureFaultyTransferOn(New(cfg), 0, 1, 1024, 32*1024)
	}
	p := run()
	if p.Err != "" {
		t.Fatalf("run failed: %s", p.Err)
	}
	if p.LatP50 <= 0 || p.LatP99 < p.LatP50 || p.LatP999 < p.LatP99 {
		t.Fatalf("latency quantiles out of order: p50=%v p99=%v p999=%v", p.LatP50, p.LatP99, p.LatP999)
	}
	if again := run(); again != p {
		t.Fatalf("fault point not deterministic:\n got  %+v\n want %+v", again, p)
	}
}

// TestWatchdogRearm: with Rearm set a pathology trip does not disarm
// the watchdog. It keeps checking, waits for the machine to show
// recovery (a delivery anywhere), re-arms with fresh baselines and a
// recorder mark, and can then trip again on a second pathology. The
// failure surface still keeps only the first machine check, and Rearm
// off keeps the one-shot semantics.
func TestWatchdogRearm(t *testing.T) {
	cfg := recCfg(ConfigFor(2, 1, nic.GenEISAPrototype))
	cfg.Watchdog = WatchdogConfig{
		Interval: 10 * sim.Microsecond, Windows: 3, StallBytes: 512, Rearm: true,
	}
	m := New(cfg)
	pace := func(n int) {
		for i := 0; i < n; i++ {
			m.wd.Pace(m.wd.NextDeadline(), m.wd.NextDeadline())
		}
	}

	// First pathology: a node pinned at the stall threshold trips after
	// `windows` checks — but the watchdog stays armed.
	m.Obs.Node(1).Set(obs.GaugeOutFIFOBytes, 600)
	pace(3)
	var mc *fault.MachineCheck
	if err := m.Failed(); !errors.As(err, &mc) || mc.Kind != fault.CheckFIFOStall {
		t.Fatalf("expected a fifo-stall machine check, got %v", m.Failed())
	}
	first := mc
	if m.wd.NextDeadline() == sim.Forever {
		t.Fatal("re-armable watchdog disarmed after the trip")
	}

	// No recovery yet: further checks neither re-trip nor re-arm.
	pace(2)
	if marks := m.Rec.Series().Marks; len(marks) != 1 {
		t.Fatalf("marks before recovery: %+v", marks)
	}

	// Recovery: the stall clears and a packet is delivered somewhere.
	m.Obs.Node(1).Set(obs.GaugeOutFIFOBytes, 0)
	m.Obs.Node(0).Inc(obs.CtrPacketsIn)
	pace(1)
	marks := m.Rec.Series().Marks
	if len(marks) != 2 || marks[1].Label != "watchdog: re-armed" {
		t.Fatalf("expected a re-arm mark, got %+v", marks)
	}

	// Second pathology after re-arm: trips again (fresh mark), while the
	// failure surface still reports the first machine check.
	m.Obs.Node(1).Set(obs.GaugeOutFIFOBytes, 700)
	pace(3)
	marks = m.Rec.Series().Marks
	if len(marks) != 3 || marks[2].Label != "watchdog: fifo-stall" {
		t.Fatalf("expected a second trip mark, got %+v", marks)
	}
	if err := m.Failed(); !errors.As(err, &mc) || mc != first {
		t.Fatalf("failure surface no longer holds the first check: %v", err)
	}

	// Rearm off: the same pathology disarms the watchdog at the trip.
	cfg.Watchdog.Rearm = false
	m2 := New(cfg)
	m2.Obs.Node(1).Set(obs.GaugeOutFIFOBytes, 600)
	for i := 0; i < 3; i++ {
		m2.wd.Pace(m2.wd.NextDeadline(), m2.wd.NextDeadline())
	}
	if m2.Failed() == nil || m2.wd.NextDeadline() != sim.Forever {
		t.Fatal("one-shot watchdog did not disarm at the trip")
	}
}

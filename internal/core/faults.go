package core

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/nipt"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/vm"
)

// applyFaults installs the deterministic fault plan on a post-boot
// machine: the link-outage window on the mesh and the scheduled node
// crash/freeze events on the engine. Reset calls it again after the
// engine reset discards the pending events, so a reset machine replays
// the identical plan. No-op without an injector.
func (m *Machine) applyFaults() {
	if m.Faults == nil {
		return
	}
	fc := m.Cfg.Faults
	if fc.LinkDownAt > 0 {
		from := m.Cfg.CoordOf(packet.NodeID(fc.LinkFrom))
		to := m.Cfg.CoordOf(packet.NodeID(fc.LinkTo))
		if err := m.Net.SetLinkFault(from, to, fc.LinkDownAt, fc.LinkRepairAt); err != nil {
			panic(err) // Validate already rejected non-adjacent pairs
		}
	}
	// Node fault events run on the faulted node's own engine under its
	// own domain: they mutate node-owned state (CPU, NIC dead flag — the
	// fabric learns of a crash through the NIC's SetDead post), and the
	// explicit domain keeps the canonical order identical whether or not
	// the machine is partitioned.
	for _, nf := range fc.Nodes {
		node := m.Nodes[nf.Node]
		dom := sim.DomNode(nf.Node)
		switch nf.Kind {
		case fault.NodeCrash:
			node.Eng.ScheduleDom(dom, nf.At, &nodeFaultEvent{node: node, crash: true})
		case fault.NodeFreeze:
			node.Eng.ScheduleDom(dom, nf.At, &nodeFaultEvent{node: node})
			if nf.Until > 0 {
				node.Eng.ScheduleDom(dom, nf.Until, &nodeFaultEvent{node: node, thaw: true})
			}
		}
	}
	// Survivable-mode heartbeat: per-node liveness sweeps, installed only
	// when the plan actually crashes someone. Each sweep stops once every
	// planned crash has been detected by its node (or the node itself is
	// dead), so an otherwise-idle machine still quiesces and a plan with
	// no crashes stays bit-identical to one without the heartbeat.
	if fc.Survivable && fc.Heartbeat > 0 {
		var targets []int
		for _, nf := range fc.Nodes {
			if nf.Kind == fault.NodeCrash {
				targets = append(targets, nf.Node)
			}
		}
		if len(targets) > 0 {
			for id, node := range m.Nodes {
				node.Eng.ScheduleDom(sim.DomNode(id), fc.Heartbeat,
					&heartbeatEvent{node: node, period: fc.Heartbeat, targets: targets})
			}
		}
	}
}

// nodeFaultEvent fires one scheduled node fault: crash (NIC dead + CPU
// frozen), freeze (CPU frozen), or thaw (freeze window end).
type nodeFaultEvent struct {
	node  *Node
	crash bool
	thaw  bool
}

func (ev *nodeFaultEvent) Fire() {
	switch {
	case ev.crash:
		ev.node.NIC.SetDead()
		ev.node.CPU.Freeze()
	case ev.thaw:
		ev.node.CPU.Thaw()
	default:
		ev.node.CPU.Freeze()
	}
}

// heartbeatEvent drives one node's periodic liveness sweep (Survivable
// mode). Each firing pings every peer not yet declared dead; a crashed
// receiver never acknowledges, so the reliable layer's retry budget
// exhausts and the failure detector fires with a bounded detection time
// even when no data traffic targets the dead node.
type heartbeatEvent struct {
	node    *Node
	period  sim.Time
	targets []int // node ids the fault plan crashes
}

func (ev *heartbeatEvent) Fire() {
	n := ev.node
	if n.NIC.Dead() {
		return
	}
	undetected := false
	for _, t := range ev.targets {
		if t != int(n.ID) && !n.K.PeerIsDown(packet.NodeID(t)) {
			undetected = true
			break
		}
	}
	if !undetected {
		return // every planned crash detected: the sweep's job is done
	}
	n.K.Heartbeat()
	n.Eng.ScheduleAfterDom(sim.DomNode(int(n.ID)), ev.period, ev)
}

// notePeerDown pins one failure-detector declaration to the flight
// recorder timeline. The teardown already ran node-locally; only the
// mark crosses to the recorder, and on a partitioned machine it rides a
// typed post so the hub applies it in canonical order (mark sequences
// stay bit-identical across partition counts).
func (m *Machine) notePeerDown(observer int, pd *fault.PeerDown) {
	if m.Rec == nil {
		return
	}
	if m.Clu != nil {
		node := m.Nodes[observer]
		m.Clu.PostTo(m.PartOf[observer], sim.Post{
			At: node.Eng.Now(), Dom: sim.DomNode(observer), Kind: pkPeerDown,
			A: int64(observer), Ptr: pd,
		})
		return
	}
	m.Rec.MarkAt(pd.At, fmt.Sprintf("node %d: peer down: node %d", observer, pd.Node))
}

// FaultPoint is one point of a fault sweep: a deliberate-update stream
// pushed through a lossy fabric with reliable delivery on, reporting
// the goodput that survived and what the recovery machinery spent.
type FaultPoint struct {
	DropPPM       uint32
	TransferBytes int
	GoodBytes     uint64 // payload bytes deposited at the receiver
	Elapsed       sim.Time
	GoodputMBps   float64
	FaultDrops    uint64 // worms the injector lost in flight
	Corrupts      uint64 // packets damaged (dropped by the receiver CRC)
	Dups          uint64 // worms delivered twice
	Retransmits   uint64 // sender retransmissions
	AcksSent      uint64 // receiver cumulative ACKs
	NacksSent     uint64 // receiver gap reports
	DupDrops      uint64 // duplicate data packets the receiver discarded
	// Tail latency of the end-to-end transfer pipeline (snoop through
	// deposit) over this point's spans, interpolated from the stage-total
	// histogram delta. Zero unless the config has Metrics on.
	LatP50  sim.Time
	LatP99  sim.Time
	LatP999 sim.Time
	Events  uint64
	Err     string // non-empty when the run ended in a machine check
}

func (p FaultPoint) String() string {
	if p.Err != "" {
		return fmt.Sprintf("drop %5.2f%%: FAILED: %s", float64(p.DropPPM)/1e4, p.Err)
	}
	s := fmt.Sprintf("drop %5.2f%%: %7.2f MB/s goodput, %d lost, %d corrupt, %d dup, %d rexmit, %d ack, %d nack",
		float64(p.DropPPM)/1e4, p.GoodputMBps, p.FaultDrops, p.Corrupts, p.Dups,
		p.Retransmits, p.AcksSent, p.NacksSent)
	if p.LatP999 > 0 {
		s += fmt.Sprintf(", lat p50/p99/p999 %v/%v/%v", p.LatP50, p.LatP99, p.LatP999)
	}
	return s
}

// MeasureFaultyTransfer streams totalBytes of deliberate-update
// transfers from node src to node dst under the config's fault plan and
// reports the surviving goodput. Unlike the clean-fabric harnesses it
// never panics on a machine check: a failed run comes back with Err set
// (graceful degradation is exactly what fault sweeps measure).
func MeasureFaultyTransfer(cfg Config, src, dst, transferBytes, totalBytes int) FaultPoint {
	return measureFaultyTransferOn(New(cfg), src, dst, transferBytes, totalBytes)
}

func measureFaultyTransferOn(m *Machine, src, dst, transferBytes, totalBytes int) FaultPoint {
	if transferBytes <= 0 || transferBytes > phys.PageSize {
		panic("core: transfer size must be within one page")
	}
	res := FaultPoint{DropPPM: m.Cfg.Faults.DropPPM, TransferBytes: transferBytes}
	s := setupPair(m, src, dst, nipt.DeliberateUpdate)
	if err := s.src.K.GrantCommandPages(s.ps, s.sendVA, s.sendVA+0x4000_0000, 1); err != nil {
		panic(err)
	}
	for off := 0; off < phys.PageSize; off += 4 {
		if err := s.src.UserWrite32(s.ps, s.sendVA+vm.VAddr(off), uint32(off)); err != nil {
			panic(err)
		}
	}
	mustSettle(m, "faulty transfer page fill")

	cmdVA := s.sendVA + 0x4000_0000
	tr, f := s.ps.AS.Translate(cmdVA, true)
	if f != nil {
		panic(f)
	}
	words := uint32(transferBytes / 4)
	transfers := totalBytes / transferBytes
	var latBefore obs.Histogram
	if m.Cfg.Metrics {
		latBefore = m.Obs.StageHist(obs.HistStageTotal)
	}
	before := s.dst.NIC.Stats()
	netBefore := m.Net.Stats()
	start := m.Now()
stream:
	for i := 0; i < transfers && res.Err == ""; i++ {
		for {
			if err := m.Failed(); err != nil {
				res.Err = err.Error()
				break
			}
			if s.src.K.PeerIsDown(s.dst.ID) {
				// Degraded mode (Survivable): the destination was declared
				// dead and the teardown revoked the mapping, so no further
				// command can be accepted. Stop streaming; the partial
				// goodput is the measurement.
				break stream
			}
			_, swapped, _ := s.src.LockedCmpxchg(tr.PA, 0, words)
			if swapped {
				break
			}
			if !m.Step() {
				res.Err = "core: DMA engine never freed"
				break
			}
		}
	}
	if res.Err == "" {
		if err := m.Settle("faulty stream drain"); err != nil {
			res.Err = err.Error()
		}
	}
	elapsed := m.Now() - start
	after := s.dst.NIC.Stats()
	net := m.Net.Stats()
	srcStats := s.src.NIC.Stats()
	res.GoodBytes = after.BytesIn - before.BytesIn
	res.Elapsed = elapsed
	if elapsed > 0 {
		res.GoodputMBps = float64(res.GoodBytes) / 1e6 / elapsed.Seconds()
	}
	res.FaultDrops = net.FaultDropped + net.FaultLinkDrops -
		netBefore.FaultDropped - netBefore.FaultLinkDrops
	res.Corrupts = net.FaultCorrupted - netBefore.FaultCorrupted
	res.Dups = net.FaultDuplicated - netBefore.FaultDuplicated
	res.Retransmits = srcStats.RelRetransmits
	res.AcksSent = after.RelAcksSent - before.RelAcksSent
	res.NacksSent = after.RelNacksSent - before.RelNacksSent
	res.DupDrops = after.RelDupDrops - before.RelDupDrops
	if m.Cfg.Metrics {
		// Window the end-to-end stage histogram to this point's spans: the
		// sweep pool reuses machines, so the registry may hold older runs.
		lat := m.Obs.StageHist(obs.HistStageTotal)
		d := lat.Delta(&latBefore)
		res.LatP50 = sim.Time(d.QuantileInterp(0.50))
		res.LatP99 = sim.Time(d.QuantileInterp(0.99))
		res.LatP999 = sim.Time(d.QuantileInterp(0.999))
	}
	res.Events = m.Fired()
	return res
}

// FaultSweep measures goodput across packet drop rates (parts per
// million) with reliable delivery enabled, fanned across workers
// goroutines (workers <= 0 selects exp.DefaultWorkers, workers == 1
// runs inline); results are ordered as dropsPPM. The base config's
// seed, rates and plan are kept; only DropPPM varies per point.
func FaultSweep(cfg Config, dropsPPM []uint32, transferBytes, totalBytes, workers int) []FaultPoint {
	workers = exp.CapWorkers(workers, cfg.Partitions)
	return exp.Map(workers, len(dropsPPM), newMachinePool,
		func(p *machinePool, i int) FaultPoint {
			c := cfg
			c.Faults.DropPPM = dropsPPM[i]
			c.Faults.Reliable = true
			return measureFaultyTransferOn(p.get(c), 0, c.NodeCount()-1, transferBytes, totalBytes)
		})
}

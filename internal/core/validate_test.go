package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// The partition-restriction errors are user-facing diagnostics: they must
// name the offending knob and point at the design doc, not just state the
// restriction. These tests pin the exact wording so a rephrase is a
// conscious decision.

func TestValidateTracingPartitionsError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Partitions = 4
	cfg.TraceCapacity = 256
	err := cfg.Validate()
	if err == nil {
		t.Fatal("tracing + partitions validated")
	}
	want := "core: instruction tracing (TraceCapacity=256) requires a sequential machine; " +
		"set Partitions <= 1 or drop TraceCapacity (DESIGN.md §11; metrics and the flight recorder " +
		"work under partitioning)"
	if err.Error() != want {
		t.Fatalf("error message drifted:\n got: %s\nwant: %s", err, want)
	}
}

func TestValidateGangPartitionsError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Partitions = 4
	m := New(cfg)
	_, err := m.StartGangScheduling(10 * sim.Microsecond)
	if err == nil {
		t.Fatal("gang scheduling started on a partitioned machine")
	}
	want := "core: gang scheduling requires a sequential machine; " +
		"set Partitions <= 1 (this machine runs 4 partitions; DESIGN.md §11)"
	if err.Error() != want {
		t.Fatalf("error message drifted:\n got: %s\nwant: %s", err, want)
	}
}

// Telemetry stays legal under partitioning — the restriction the tracing
// error documents must not leak onto the recorder or watchdog.
func TestValidateTelemetryUnderPartitions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Partitions = 4
	cfg.Metrics = true
	cfg.Recorder.Interval = 10 * sim.Microsecond
	cfg.Watchdog.Interval = 100 * sim.Microsecond
	if err := cfg.Validate(); err != nil {
		t.Fatalf("recorder+watchdog under partitions rejected: %v", err)
	}
}

func TestValidateTelemetryNeedsMetrics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Recorder.Interval = 10 * sim.Microsecond
	err := cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "Metrics: true") {
		t.Fatalf("recorder without metrics: %v", err)
	}
	cfg = DefaultConfig()
	cfg.Watchdog.Interval = 10 * sim.Microsecond
	err = cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "Metrics: true") {
		t.Fatalf("watchdog without metrics: %v", err)
	}
}

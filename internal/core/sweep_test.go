package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/sim"
)

// Machine.Reset must be observationally equivalent to New: every
// experiment harness must report bit-identical results on a freshly
// built machine and on a machine that already ran a (different)
// experiment and was Reset. This is the load-bearing invariant behind
// per-worker machine reuse.
func TestResetEquivalence(t *testing.T) {
	for _, gen := range []nic.Generation{nic.GenEISAPrototype, nic.GenXpress} {
		cfg := ConfigFor(2, 2, gen)
		t.Run(gen.String(), func(t *testing.T) {
			fresh := measureStoreLatencyOn(New(cfg), 0, 3)

			m := New(cfg)
			// Dirty the machine with unrelated experiments, including one
			// that stops mid-flight with events still queued.
			measureAUBandwidthOn(m, nipt.BlockedWriteAU, 64)
			m.Reset()
			measureStoreLatencyOn(m, 0, 1)
			m.Reset()
			reused := measureStoreLatencyOn(m, 0, 3)
			if fresh != reused {
				t.Fatalf("latency after Reset diverged:\nfresh:  %+v\nreused: %+v", fresh, reused)
			}

			m.Reset()
			bwFresh := measureDeliberateBandwidthOn(New(cfg), 0, 1, 1024, 64*1024)
			bwReused := measureDeliberateBandwidthOn(m, 0, 1, 1024, 64*1024)
			if bwFresh != bwReused {
				t.Fatalf("bandwidth after Reset diverged:\nfresh:  %+v\nreused: %+v", bwFresh, bwReused)
			}

			m.Reset()
			auFresh := measureAUBandwidthOn(New(cfg), nipt.SingleWriteAU, 256)
			auReused := measureAUBandwidthOn(m, nipt.SingleWriteAU, 256)
			if auFresh != auReused {
				t.Fatalf("AU bandwidth after Reset diverged:\nfresh:  %+v\nreused: %+v", auFresh, auReused)
			}
		})
	}
}

// Every parallel sweep must be byte-identical to its sequential path.
// Run with -race (ci.sh does) this doubles as the data-race proof for
// the worker pool under more points than workers.
func TestParallelSweepsMatchSequential(t *testing.T) {
	cfg := ConfigFor(4, 4, nic.GenEISAPrototype)

	t.Run("latency", func(t *testing.T) {
		seq := LatencySweepParallel(cfg, 1) // 15 points > 4 workers
		par := LatencySweepParallel(cfg, 4)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("latency sweep diverged:\nseq: %+v\npar: %+v", seq, par)
		}
	})

	small := ConfigFor(2, 1, nic.GenEISAPrototype)
	t.Run("bandwidth", func(t *testing.T) {
		sizes := []int{64, 128, 256, 512, 1024, 2048, 4096}
		seq := BandwidthSweepParallel(small, sizes, 32*1024, 1)
		par := BandwidthSweepParallel(small, sizes, 32*1024, 3)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("bandwidth sweep diverged:\nseq: %+v\npar: %+v", seq, par)
		}
	})

	t.Run("au-ablation", func(t *testing.T) {
		modes := []nipt.Mode{nipt.SingleWriteAU, nipt.BlockedWriteAU}
		seq := AUBandwidthSweep(small, modes, 512, 1)
		par := AUBandwidthSweep(small, modes, 512, 2)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("AU sweep diverged:\nseq: %+v\npar: %+v", seq, par)
		}
	})

	t.Run("merge-window", func(t *testing.T) {
		windows := []sim.Time{20 * sim.Nanosecond, 150 * sim.Nanosecond, 500 * sim.Nanosecond}
		seq := MergeWindowSweep(small, windows, 100*sim.Nanosecond, 64, 1)
		par := MergeWindowSweep(small, windows, 100*sim.Nanosecond, 64, 3)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("merge-window sweep diverged:\nseq: %+v\npar: %+v", seq, par)
		}
	})

	t.Run("overlap", func(t *testing.T) {
		modes := []nipt.Mode{nipt.SingleWriteAU, nipt.BlockedWriteAU}
		seq := OverlapSweep(small, modes, 128, 1)
		par := OverlapSweep(small, modes, 128, 2)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("overlap sweep diverged:\nseq: %+v\npar: %+v", seq, par)
		}
	})
}

// The sequential sweeps must also match the historical one-fresh-machine
// -per-point behavior (public Measure* wrappers), pinning down that
// pooling/Reset did not change reported numbers.
func TestSweepMatchesFreshMachines(t *testing.T) {
	cfg := ConfigFor(2, 2, nic.GenXpress)
	sweep := LatencySweep(cfg)
	for i, r := range sweep {
		fresh := MeasureStoreLatency(cfg, 0, i+1)
		if r != fresh {
			t.Fatalf("dst %d: sweep %+v != fresh %+v", i+1, r, fresh)
		}
	}
}

// Budget exhaustion must surface as an explicit error wrapping
// sim.ErrBudget and naming the phase, instead of silently truncating
// the run. (Tested through settleWithin with a small budget; Settle is
// the same path with ExperimentEventBudget, which a healthy run never
// reaches.)
func TestSettleBudgetError(t *testing.T) {
	m := New(ConfigFor(2, 1, nic.GenEISAPrototype))
	var tick func()
	tick = func() { m.Eng.After(sim.Nanosecond, tick) } // self-rearming: never quiesces
	m.Eng.After(0, tick)
	err := m.settleWithin("livelock probe", 1000)
	if err == nil {
		t.Fatal("settleWithin returned nil on a non-quiescing machine")
	}
	if !errors.Is(err, sim.ErrBudget) {
		t.Fatalf("error %v does not wrap sim.ErrBudget", err)
	}
	if !strings.Contains(err.Error(), "livelock probe") {
		t.Fatalf("error %v does not name the phase", err)
	}
	// A quiescent machine settles with no error.
	if err := New(ConfigFor(2, 1, nic.GenEISAPrototype)).Settle("idle"); err != nil {
		t.Fatalf("Settle on idle machine: %v", err)
	}
}

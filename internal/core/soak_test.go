package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/vm"
)

// TestSixteenNodeSoak runs mixed traffic — automatic-update streams,
// deliberate-update block transfers, and continuous map churn — across
// the full 16-node machine the paper describes, then audits every
// kernel's bookkeeping and the machine-wide packet accounting.
func TestSixteenNodeSoak(t *testing.T) {
	cfg := DefaultConfig() // 4x4 EISA prototype
	cfg.Kernel.Policy = kernel.InvalidateProtocol
	m := New(cfg)
	rng := rand.New(rand.NewSource(8))
	n := len(m.Nodes)

	type flow struct {
		src, dst *Node
		ps, pd   *kernel.Process
		sVA, dVA vm.VAddr
		mode     nipt.Mode
		cmdPA    phys.PAddr
		seq      uint32
	}
	var flows []*flow

	// One process per node; a mesh of mixed-mode flows.
	procs := make([]*kernel.Process, n)
	for i := range procs {
		procs[i] = m.Node(i).K.CreateProcess()
	}
	modes := []nipt.Mode{nipt.SingleWriteAU, nipt.BlockedWriteAU, nipt.DeliberateUpdate}
	for i := 0; i < n; i++ {
		for _, d := range []int{(i + 1) % n, (i + 5) % n} {
			if d == i {
				continue
			}
			f := &flow{src: m.Node(i), dst: m.Node(d), ps: procs[i], pd: procs[d],
				mode: modes[rng.Intn(len(modes))]}
			var err error
			if f.sVA, err = f.ps.AllocPages(1); err != nil {
				t.Fatal(err)
			}
			if f.dVA, err = f.pd.AllocPages(1); err != nil {
				t.Fatal(err)
			}
			m.MustMap(f.ps, f.sVA, phys.PageSize, f.dst.ID, f.pd.PID, f.dVA, f.mode)
			if f.mode == nipt.DeliberateUpdate {
				if err := f.src.K.GrantCommandPages(f.ps, f.sVA, f.sVA+0x4000_0000, 1); err != nil {
					t.Fatal(err)
				}
				tr, fault := f.ps.AS.Translate(f.sVA+0x4000_0000, true)
				if fault != nil {
					t.Fatal(fault)
				}
				f.cmdPA = tr.PA
			}
			flows = append(flows, f)
		}
	}
	m.RunUntilIdle(500_000_000)

	// Traffic rounds.
	for round := 0; round < 12; round++ {
		for _, f := range flows {
			f.seq++
			switch f.mode {
			case nipt.DeliberateUpdate:
				// Stage data then command a 64-word transfer.
				for w := 0; w < 64; w++ {
					if err := f.src.UserWrite32(f.ps, f.sVA+vm.VAddr(4*w), f.seq*1000+uint32(w)); err != nil {
						t.Fatal(err)
					}
				}
				for {
					_, swapped, _ := f.src.Cache.LockedCmpxchg(f.cmdPA, 0, 64)
					if swapped {
						break
					}
					if !m.Eng.Step() {
						t.Fatal("engine dry during DMA start")
					}
				}
			default:
				for w := 0; w < 16; w++ {
					if err := f.src.UserWrite32(f.ps, f.sVA+vm.VAddr(4*w), f.seq*1000+uint32(w)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		m.RunUntilIdle(2_000_000_000)
		// Spot-check a random flow's delivery this round.
		f := flows[rng.Intn(len(flows))]
		words := 16
		if f.mode == nipt.DeliberateUpdate {
			words = 64
		}
		for w := 0; w < words; w++ {
			v, err := f.dst.UserRead32(f.pd, f.dVA+vm.VAddr(4*w))
			if err != nil {
				t.Fatal(err)
			}
			if v != f.seq*1000+uint32(w) {
				t.Fatalf("round %d flow %d->%d word %d: %d want %d",
					round, f.src.ID, f.dst.ID, w, v, f.seq*1000+uint32(w))
			}
		}
	}

	// Accounting and invariants across the whole machine.
	var out, in, drops uint64
	for i := 0; i < n; i++ {
		s := m.Node(i).NIC.Stats()
		out += s.PacketsOut
		in += s.PacketsIn
		drops += s.DropNotMappedIn + s.DropWrongDest + s.DropCRC
		if err := m.Node(i).K.CheckInvariants(); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	if drops != 0 {
		t.Fatalf("%d drops during clean soak", drops)
	}
	if out != in {
		t.Fatalf("packet conservation: %d out, %d in", out, in)
	}
	ns := m.Net.Stats()
	if ns.Injected != ns.Delivered {
		t.Fatalf("mesh conservation: %d injected, %d delivered", ns.Injected, ns.Delivered)
	}
	var sb strings.Builder
	if err := m.Report(&sb); err != nil {
		t.Fatal(err)
	}
	t.Logf("soak complete at %v simulated:\n%s", m.Eng.Now(), sb.String())
}

package core

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/sim"
)

// This file is the core-side glue of the partitioned machine (paper
// reproduction infrastructure, not paper content): each node's NIC
// talks to the mesh through a partNet proxy that turns node→fabric
// calls into cluster posts and fabric→node calls into deferred
// messages, so the mesh (on the hub engine) and the nodes (on their
// partition engines) never touch each other's state mid-phase. Posts
// and messages are typed records — kind plus preextracted arguments,
// decoded by cluGlue — so the steady-state rendezvous path allocates
// nothing. See internal/sim's Cluster for the rendezvous protocol and
// the determinism argument, and DESIGN.md §11/§13 for the overview.

// Post kinds (node→fabric), decoded by cluGlue.ApplyPost.
const (
	pkInject   uint8 = iota + 1 // A=packed src coord, B=wire, Ptr=*packet.Packet
	pkRelease                   // A=packed coord, B=wire|droppedBit, U=span
	pkDropSpan                  // U=span
	pkSetDead                   // A=packed coord
	pkPeerDown                  // A=observer node, Ptr=*fault.PeerDown (recorder mark only)
)

// Message kinds (fabric→node), decoded by cluGlue.ApplyMsg.
const (
	mkDeliver uint8 = iota + 1 // A=node id, B=wire, Ptr=*packet.Packet
	mkInjFree                  // A=node id
)

const releaseDropped = int64(1) << 32 // dropped flag riding above the wire index

// packCoord/unpackCoord fold a mesh coordinate into one post argument.
func packCoord(c packet.Coord) int64   { return int64(c.X) | int64(c.Y)<<32 }
func unpackCoord(v int64) packet.Coord { return packet.Coord{X: int(int32(v)), Y: int(v >> 32)} }

// partitionNodes assigns nodes to parts partitions: contiguous blocks
// (near-equal, remainders to the low partitions) by default, or a
// deterministic seeded shuffle when seed is nonzero.
func partitionNodes(nodes, parts int, seed uint64) []int {
	order := make([]int, nodes)
	for i := range order {
		order[i] = i
	}
	if seed != 0 {
		rng := rand.New(rand.NewSource(int64(seed)))
		rng.Shuffle(nodes, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	assign := make([]int, nodes)
	base, rem := nodes/parts, nodes%parts
	i := 0
	for p := 0; p < parts; p++ {
		size := base
		if p < rem {
			size++
		}
		for k := 0; k < size; k++ {
			assign[order[i]] = p
			i++
		}
	}
	return assign
}

// partProbes is the cluster's per-partition lookahead probe: lower
// bounds on the earliest simulated time the partition's nodes could
// inject a packet or release FIFO space. Posts come only from NIC
// activity (crash notifications ride on already-bounded node events and
// have no timed node-visible consequence), so the NICs' pipeline floors
// bound them all. The cluster caches the result per partition and the
// worker that ran the partition's phase refreshes it, so the scan
// parallelizes instead of costing the coordinator O(nodes) per round.
func (m *Machine) partProbes(part int) (inj, rel sim.Time) {
	inj, rel = sim.Forever, sim.Forever
	for _, id := range m.partNodes[part] {
		n := m.Nodes[id].NIC
		if p := n.EarliestInject(); p < inj {
			inj = p
		}
		if r := n.EarliestRelease(); r < rel {
			rel = r
		}
	}
	return inj, rel
}

// pairLookahead builds the partition-pair lookahead table: entry [i][j]
// is the mesh's minimum inject→consequence latency from partition i to
// partition j, derived from the minimum hop distance between the two
// partitions' node sets (XY routing distance is Manhattan distance).
// The diagonal is the zero-hop floor — it must also cover a worm
// freeing its own injector, which lands on the source partition
// regardless of the destination's distance.
func (m *Machine) pairLookahead() [][]sim.Time {
	P := len(m.Parts)
	minH := make([][]int, P)
	for i := range minH {
		minH[i] = make([]int, P)
		for j := range minH[i] {
			minH[i][j] = -1
		}
	}
	n := m.Cfg.NodeCount()
	for a := 0; a < n; a++ {
		ca := m.Cfg.CoordOf(packet.NodeID(a))
		pa := m.PartOf[a]
		for b := 0; b < n; b++ {
			cb := m.Cfg.CoordOf(packet.NodeID(b))
			h := absInt(ca.X-cb.X) + absInt(ca.Y-cb.Y)
			if pb := m.PartOf[b]; minH[pa][pb] < 0 || h < minH[pa][pb] {
				minH[pa][pb] = h
			}
		}
	}
	table := make([][]sim.Time, P)
	for i := range table {
		table[i] = make([]sim.Time, P)
		for j := range table[i] {
			h := minH[i][j]
			if i == j {
				h = 0
			}
			if h < 0 {
				table[i][j] = sim.Forever // empty partition: it never posts
				continue
			}
			table[i][j] = m.Cfg.Mesh.InjectLookahead(h)
		}
	}
	return table
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// cluGlue decodes the typed post/message records back into mesh and
// endpoint calls. It is the machine's sim.Dispatcher.
type cluGlue struct {
	m       *Machine
	mesh    *mesh.Network
	eps     []mesh.Endpoint // raw NIC endpoints, by node id
	injFree []func()        // node-side injector-free callbacks, by node id
}

func (g *cluGlue) ApplyPost(p sim.Post) {
	switch p.Kind {
	case pkInject:
		g.mesh.Inject(unpackCoord(p.A), p.Ptr.(*packet.Packet), int(p.B))
	case pkRelease:
		g.mesh.Release(unpackCoord(p.A), int(int32(p.B)), p.U, p.B&releaseDropped != 0)
	case pkDropSpan:
		g.mesh.DropSpan(p.U)
	case pkSetDead:
		g.mesh.SetDead(unpackCoord(p.A))
	case pkPeerDown:
		// Recorder-only: the teardown itself already ran node-locally.
		// Applying the mark at the hub in canonical post order keeps the
		// mark sequence identical across partition counts.
		pd := p.Ptr.(*fault.PeerDown)
		g.m.Rec.MarkAt(pd.At, fmt.Sprintf("node %d: peer down: node %d", p.A, pd.Node))
	default:
		panic("core: unknown post kind")
	}
}

func (g *cluGlue) ApplyMsg(m sim.Msg) {
	switch m.Kind {
	case mkDeliver:
		g.eps[m.A].Deliver(m.Ptr.(*packet.Packet), int(m.B))
	case mkInjFree:
		g.injFree[m.A]()
	default:
		panic("core: unknown message kind")
	}
}

// partNet adapts one node's nic.Network calls to the cluster protocol.
// Node→fabric actions become typed posts stamped with the node's clock
// and domain; fabric→node actions (via partEndpoint) become typed
// deferred messages that replay the hub's current domain on the node
// engine, so every scheduled event carries the same (time, domain) key
// a sequential machine would have given it.
type partNet struct {
	clu  *sim.Cluster
	mesh *mesh.Network
	glue *cluGlue
	eng  *sim.Engine // owning partition's engine (node side)
	node int
	part int
	dom  sim.Domain
}

func (pn *partNet) Attach(c packet.Coord, ep mesh.Endpoint) {
	pn.glue.eps[pn.node] = ep
	pn.mesh.Attach(c, &partEndpoint{pn: pn, ep: ep})
}

func (pn *partNet) OnInjectorFree(c packet.Coord, fn func()) {
	pn.glue.injFree[pn.node] = fn
	node := int64(pn.node)
	pn.mesh.OnInjectorFree(c, func() {
		pn.clu.DeferMsg(pn.part, sim.Msg{Kind: mkInjFree, A: node})
	})
}

func (pn *partNet) Inject(src packet.Coord, p *packet.Packet, wire int) {
	pn.clu.PostTo(pn.part, sim.Post{
		At: pn.eng.Now(), Dom: pn.dom, Kind: pkInject,
		A: packCoord(src), B: int64(wire), Ptr: p,
	})
}

func (pn *partNet) Release(c packet.Coord, wire int, span uint64, dropped bool) {
	b := int64(wire)
	if dropped {
		b |= releaseDropped
	}
	pn.clu.PostTo(pn.part, sim.Post{
		At: pn.eng.Now(), Dom: pn.dom, Kind: pkRelease,
		A: packCoord(c), B: b, U: span,
	})
}

func (pn *partNet) DropSpan(span uint64) {
	pn.clu.PostTo(pn.part, sim.Post{
		At: pn.eng.Now(), Dom: pn.dom, Kind: pkDropSpan, U: span,
	})
}

func (pn *partNet) SetDead(c packet.Coord) {
	pn.clu.PostTo(pn.part, sim.Post{
		At: pn.eng.Now(), Dom: pn.dom, Kind: pkSetDead, A: packCoord(c),
	})
}

// partEndpoint wraps the NIC's mesh endpoint for a partitioned node.
// Accept and Credit run directly — they touch only fabric-owned state
// (Incoming-FIFO occupancy) and execute on the hub's event stream by
// design. Deliver hands the packet to the node side as a deferred
// message.
type partEndpoint struct {
	pn *partNet
	ep mesh.Endpoint
}

func (pe *partEndpoint) Accept(p *packet.Packet, wire int) bool { return pe.ep.Accept(p, wire) }
func (pe *partEndpoint) Credit(wire int)                        { pe.ep.Credit(wire) }

func (pe *partEndpoint) Deliver(p *packet.Packet, wire int) {
	pe.pn.clu.DeferMsg(pe.pn.part, sim.Msg{
		Kind: mkDeliver, A: int64(pe.pn.node), B: int64(wire), Ptr: p,
	})
}

package core

import (
	"math/rand"

	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/sim"
)

// This file is the core-side glue of the partitioned machine (paper
// reproduction infrastructure, not paper content): each node's NIC
// talks to the mesh through a partNet proxy that turns node→fabric
// calls into cluster posts and fabric→node calls into deferred
// messages, so the mesh (on the hub engine) and the nodes (on their
// partition engines) never touch each other's state mid-phase. See
// internal/sim's Cluster for the rendezvous protocol and the
// determinism argument, and DESIGN.md §11 for the overview.

// partitionNodes assigns nodes to parts partitions: contiguous blocks
// (near-equal, remainders to the low partitions) by default, or a
// deterministic seeded shuffle when seed is nonzero.
func partitionNodes(nodes, parts int, seed uint64) []int {
	order := make([]int, nodes)
	for i := range order {
		order[i] = i
	}
	if seed != 0 {
		rng := rand.New(rand.NewSource(int64(seed)))
		rng.Shuffle(nodes, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	assign := make([]int, nodes)
	base, rem := nodes/parts, nodes%parts
	i := 0
	for p := 0; p < parts; p++ {
		size := base
		if p < rem {
			size++
		}
		for k := 0; k < size; k++ {
			assign[order[i]] = p
			i++
		}
	}
	return assign
}

// earliestPost is the cluster's lookahead probe: a lower bound on the
// earliest simulated time any node could post to the fabric. Posts come
// only from NIC activity (injections and FIFO releases — crash
// notifications ride on already-bounded node events), so the minimum of
// the NICs' pipeline floors bounds them all.
func (m *Machine) earliestPost() sim.Time {
	t := sim.Forever
	for _, n := range m.Nodes {
		if p := n.NIC.EarliestPost(); p < t {
			t = p
		}
	}
	return t
}

// partNet adapts one node's nic.Network calls to the cluster protocol.
// Node→fabric actions become posts stamped with the node's clock and
// domain; fabric→node actions (via partEndpoint) become deferred
// messages that replay the hub's current domain on the node engine, so
// every scheduled event carries the same (time, domain) key a
// sequential machine would have given it.
type partNet struct {
	clu  *sim.Cluster
	mesh *mesh.Network
	hub  *sim.Engine // fabric engine (mesh side)
	eng  *sim.Engine // owning partition's engine (node side)
	part int
	dom  sim.Domain
}

// post buffers fn for replay on the hub at the node's current instant.
func (pn *partNet) post(fn func()) {
	pn.clu.PostTo(pn.part, sim.Post{At: pn.eng.Now(), Dom: pn.dom, Fn: fn})
}

// deferNode records fn to run on the node side after the hub phase,
// under the domain the hub event chain carried (which is what the
// scheduling would have inherited had everything shared one engine).
func (pn *partNet) deferNode(fn func()) {
	dom := pn.hub.Domain()
	pn.clu.Defer(pn.part, func() {
		prev := pn.eng.EnterDomain(dom)
		fn()
		pn.eng.EnterDomain(prev)
	})
}

func (pn *partNet) Attach(c packet.Coord, ep mesh.Endpoint) {
	pn.mesh.Attach(c, &partEndpoint{pn: pn, ep: ep})
}

func (pn *partNet) OnInjectorFree(c packet.Coord, fn func()) {
	pn.mesh.OnInjectorFree(c, func() { pn.deferNode(fn) })
}

func (pn *partNet) Inject(src packet.Coord, p *packet.Packet, wire int) {
	pn.post(func() { pn.mesh.Inject(src, p, wire) })
}

func (pn *partNet) Release(c packet.Coord, wire int, span uint64, dropped bool) {
	pn.post(func() { pn.mesh.Release(c, wire, span, dropped) })
}

func (pn *partNet) DropSpan(span uint64) {
	pn.post(func() { pn.mesh.DropSpan(span) })
}

func (pn *partNet) SetDead(c packet.Coord) {
	pn.post(func() { pn.mesh.SetDead(c) })
}

// partEndpoint wraps the NIC's mesh endpoint for a partitioned node.
// Accept and Credit run directly — they touch only fabric-owned state
// (Incoming-FIFO occupancy) and execute on the hub's event stream by
// design. Deliver hands the packet to the node side as a deferred
// message.
type partEndpoint struct {
	pn *partNet
	ep mesh.Endpoint
}

func (pe *partEndpoint) Accept(p *packet.Packet, wire int) bool { return pe.ep.Accept(p, wire) }
func (pe *partEndpoint) Credit(wire int)                        { pe.ep.Credit(wire) }

func (pe *partEndpoint) Deliver(p *packet.Packet, wire int) {
	pe.pn.deferNode(func() { pe.ep.Deliver(p, wire) })
}

package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/nic"
	"repro/internal/sim"
)

// A configured injector whose rates are all zero must not perturb the
// simulation at all: an injector-carrying machine and a fault-free one
// report bit-identical experiment results. This is the "zero-fault
// configs are bit-identical to the seed" guarantee — the fault hooks
// may exist on the hot paths, but they must be pure observers until a
// rate or plan is nonzero.
func TestZeroRateFaultsBitIdentical(t *testing.T) {
	for _, gen := range []nic.Generation{nic.GenEISAPrototype, nic.GenXpress} {
		t.Run(gen.String(), func(t *testing.T) {
			clean := ConfigFor(2, 2, gen)
			armed := clean
			armed.Faults = fault.Config{Seed: 42} // injector present, every rate zero

			if a, b := MeasureStoreLatency(clean, 0, 3), MeasureStoreLatency(armed, 0, 3); a != b {
				t.Fatalf("latency diverged:\nclean: %+v\narmed: %+v", a, b)
			}
			ba := MeasureDeliberateBandwidth(clean, 0, 1, 1024, 64*1024)
			bb := MeasureDeliberateBandwidth(armed, 0, 1, 1024, 64*1024)
			if ba != bb {
				t.Fatalf("bandwidth diverged:\nclean: %+v\narmed: %+v", ba, bb)
			}
		})
	}
}

func faultyCfg(dropPPM uint32) Config {
	cfg := ConfigFor(2, 1, nic.GenXpress)
	cfg.Faults = fault.Config{Seed: 1729, DropPPM: dropPPM, Reliable: true}
	return cfg
}

// A lossy run is a deterministic function of the config: same seed,
// same rates, same results — field for field, including every recovery
// counter.
func TestFaultyTransferDeterministic(t *testing.T) {
	a := MeasureFaultyTransfer(faultyCfg(25_000), 0, 1, 1024, 64*1024)
	b := MeasureFaultyTransfer(faultyCfg(25_000), 0, 1, 1024, 64*1024)
	if a != b {
		t.Fatalf("two identical faulty runs diverged:\na: %+v\nb: %+v", a, b)
	}
	if a.FaultDrops == 0 || a.Retransmits == 0 {
		t.Fatalf("2.5%% drop rate injected nothing: %+v", a)
	}
}

// Reset must replay the identical fault pattern: a reused machine
// reports the same FaultPoint as a fresh one, even though the injector,
// the retransmit queues and the per-flow sequence state were all dirty.
func TestFaultyResetMatchesFresh(t *testing.T) {
	cfg := faultyCfg(10_000)
	fresh := measureFaultyTransferOn(New(cfg), 0, 1, 1024, 32*1024)

	m := New(cfg)
	measureFaultyTransferOn(m, 0, 1, 512, 16*1024) // dirty the flows
	m.Reset()
	reused := measureFaultyTransferOn(m, 0, 1, 1024, 32*1024)
	if fresh != reused {
		t.Fatalf("faulty run after Reset diverged:\nfresh:  %+v\nreused: %+v", fresh, reused)
	}
}

// The fault sweep parallel path must match sequential byte for byte
// (run under -race in CI, this doubles as the data-race proof for the
// injector: decisions are stateless, so worker order cannot matter).
func TestFaultSweepParallelMatchesSequential(t *testing.T) {
	cfg := faultyCfg(0)
	drops := []uint32{0, 5_000, 10_000, 25_000, 50_000}
	seq := FaultSweep(cfg, drops, 1024, 32*1024, 1)
	par := FaultSweep(cfg, drops, 1024, 32*1024, 3)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("fault sweep diverged:\nseq: %+v\npar: %+v", seq, par)
	}
	for i, p := range seq {
		if p.Err != "" {
			t.Fatalf("sweep point %d failed: %s", i, p.Err)
		}
		if p.GoodBytes != 32*1024 {
			t.Fatalf("sweep point %d lost payload: %+v", i, p)
		}
	}
}

// Reliable delivery must degrade gracefully: at a 1% drop rate every
// payload byte still arrives exactly once (retransmits fill the gaps,
// the sequence discipline drops the duplicates) and the run terminates
// without a machine check.
func TestGracefulUnderLoss(t *testing.T) {
	res := MeasureFaultyTransfer(faultyCfg(10_000), 0, 1, 1024, 128*1024)
	if res.Err != "" {
		t.Fatalf("1%% loss escalated to failure: %s", res.Err)
	}
	if res.GoodBytes != 128*1024 {
		t.Fatalf("goodput lost payload: got %d of %d bytes (%+v)",
			res.GoodBytes, 128*1024, res)
	}
	if res.FaultDrops == 0 {
		t.Fatal("1% drop rate never fired")
	}
	if res.Retransmits < res.FaultDrops {
		t.Fatalf("%d drops but only %d retransmits", res.FaultDrops, res.Retransmits)
	}
}

// A transient link outage heals: packets lost while the link is down
// are retransmitted after the repair and the stream completes in full.
func TestLinkOutageHeals(t *testing.T) {
	cfg := faultyCfg(0)
	cfg.Faults.LinkFrom, cfg.Faults.LinkTo = 0, 1
	cfg.Faults.LinkDownAt = 50 * sim.Microsecond
	cfg.Faults.LinkRepairAt = 250 * sim.Microsecond
	res := MeasureFaultyTransfer(cfg, 0, 1, 1024, 64*1024)
	if res.Err != "" {
		t.Fatalf("transient outage escalated to failure: %s", res.Err)
	}
	if res.GoodBytes != 64*1024 {
		t.Fatalf("stream incomplete after repair: %+v", res)
	}
	if res.FaultDrops == 0 {
		t.Fatalf("outage window dropped nothing: %+v", res)
	}
}

// A node crash is not recoverable: the sender burns its retry budget
// against the dead NIC and the run ends in a structured machine check
// (surfaced through the engine, not a panic) naming the retry budget.
func TestNodeCrashEscalatesToMachineCheck(t *testing.T) {
	cfg := faultyCfg(0)
	cfg.Faults.RetryBudget = 4 // fail fast: 4 timeouts, not 16
	cfg.Faults.Nodes[0] = fault.NodeFault{Node: 1, Kind: fault.NodeCrash, At: 300 * sim.Microsecond}
	res := MeasureFaultyTransfer(cfg, 0, 1, 1024, 4*1024*1024)
	if res.Err == "" {
		t.Fatalf("crashed receiver did not fail the run: %+v", res)
	}
	if !strings.Contains(res.Err, fault.CheckRetryBudget.String()) {
		t.Fatalf("failure %q is not a retry-budget machine check", res.Err)
	}

	// The same plan through the raw machine surfaces as an error from
	// RunUntilIdle that errors.As recognizes.
	m := New(cfg)
	if err := m.RunUntilIdle(ExperimentEventBudget); err != nil {
		// The crash alone (no traffic) must not fail the machine.
		t.Fatalf("idle machine with crash plan failed: %v", err)
	}
}

// A frozen CPU pauses interpretation but thaws without damage: the
// machine still quiesces and a freeze window alone never raises a
// machine check.
func TestNodeFreezeThaws(t *testing.T) {
	cfg := faultyCfg(0)
	cfg.Faults.Nodes[0] = fault.NodeFault{
		Node: 1, Kind: fault.NodeFreeze,
		At: 20 * sim.Microsecond, Until: 80 * sim.Microsecond,
	}
	res := MeasureFaultyTransfer(cfg, 0, 1, 1024, 32*1024)
	if res.Err != "" {
		t.Fatalf("freeze window failed the run: %s", res.Err)
	}
	if res.GoodBytes != 32*1024 {
		t.Fatalf("freeze window lost payload: %+v", res)
	}
}

package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/phys"
)

// Validate checks a configuration for shapes the models cannot operate
// under. New panics on an invalid config; callers that assemble configs
// programmatically can call Validate first for a graceful error.
func (c Config) Validate() error {
	if c.MeshWidth < 1 || c.MeshHeight < 1 {
		return fmt.Errorf("core: mesh %dx%d invalid", c.MeshWidth, c.MeshHeight)
	}
	if c.Mesh.Width != c.MeshWidth || c.Mesh.Height != c.MeshHeight {
		return fmt.Errorf("core: mesh config %dx%d disagrees with machine %dx%d",
			c.Mesh.Width, c.Mesh.Height, c.MeshWidth, c.MeshHeight)
	}
	n := c.NodeCount()
	if c.Partitions < 0 {
		return fmt.Errorf("core: %d partitions invalid", c.Partitions)
	}
	if c.Partitions > n {
		return fmt.Errorf("core: %d partitions exceed %d nodes", c.Partitions, n)
	}
	if c.Partitions > 1 && c.TraceCapacity > 0 {
		// The tracer is one serial event log on one engine; a partitioned
		// machine has no single serial order to record mid-run. Metrics,
		// the flight recorder, and the watchdog all remain available under
		// partitioning (DESIGN.md §12 "Flight recorder & telemetry").
		return fmt.Errorf("core: instruction tracing (TraceCapacity=%d) requires a sequential machine; "+
			"set Partitions <= 1 or drop TraceCapacity (DESIGN.md §11; metrics and the flight recorder "+
			"work under partitioning)", c.TraceCapacity)
	}
	if c.Recorder.Interval < 0 {
		return fmt.Errorf("core: recorder interval %v negative", c.Recorder.Interval)
	}
	if c.Recorder.Capacity < 0 {
		return fmt.Errorf("core: recorder capacity %d negative", c.Recorder.Capacity)
	}
	if c.Recorder.Interval > 0 && !c.Metrics {
		return fmt.Errorf("core: the flight recorder samples the metrics registry; set Metrics: true")
	}
	if c.Watchdog.Interval < 0 {
		return fmt.Errorf("core: watchdog interval %v negative", c.Watchdog.Interval)
	}
	if c.Watchdog.Interval > 0 && !c.Metrics {
		return fmt.Errorf("core: the progress watchdog reads the metrics registry; set Metrics: true")
	}
	if c.Watchdog.Windows < 0 || c.Watchdog.StallBytes < 0 || c.Watchdog.Deadline < 0 {
		return fmt.Errorf("core: watchdog tunables must be non-negative")
	}
	if ring := 2 * (n - 1); ring+8 > c.MemPagesPerNode {
		return fmt.Errorf("core: %d pages/node cannot hold %d kernel ring pages plus working memory",
			c.MemPagesPerNode, ring)
	}
	if c.NIC.MaxPayload <= 0 || c.NIC.MaxPayload > phys.PageSize {
		return fmt.Errorf("core: NIC max payload %d outside (0,%d]", c.NIC.MaxPayload, phys.PageSize)
	}
	// The §4 thresholds need headroom: everything that can still arrive
	// after the threshold trips must fit. A full page plus header is the
	// largest single packet.
	maxWire := (&packet.Packet{Payload: make([]byte, c.NIC.MaxPayload)}).WireSize()
	if c.NIC.OutThreshold <= 0 || c.NIC.OutThreshold >= c.NIC.OutFIFOBytes {
		return fmt.Errorf("core: outgoing FIFO threshold %d outside (0,%d)",
			c.NIC.OutThreshold, c.NIC.OutFIFOBytes)
	}
	if c.NIC.OutFIFOBytes-c.NIC.OutThreshold < 8*maxWire {
		return fmt.Errorf("core: outgoing FIFO headroom %d cannot absorb in-flight packetization (need %d)",
			c.NIC.OutFIFOBytes-c.NIC.OutThreshold, 8*maxWire)
	}
	if c.NIC.InThreshold <= 0 || c.NIC.InThreshold >= c.NIC.InFIFOBytes {
		return fmt.Errorf("core: incoming FIFO threshold %d outside (0,%d)",
			c.NIC.InThreshold, c.NIC.InFIFOBytes)
	}
	if c.NIC.InFIFOBytes-c.NIC.InThreshold < maxWire {
		return fmt.Errorf("core: incoming FIFO headroom %d cannot absorb one max packet (%d)",
			c.NIC.InFIFOBytes-c.NIC.InThreshold, maxWire)
	}
	if c.Generation == 0 && c.EISA.BytesPerSecond <= 0 {
		return fmt.Errorf("core: EISA generation needs a positive deposit rate")
	}
	if c.Cache.Sets&(c.Cache.Sets-1) != 0 || c.Cache.LineBytes&(c.Cache.LineBytes-1) != 0 {
		return fmt.Errorf("core: cache sets (%d) and line size (%d) must be powers of two",
			c.Cache.Sets, c.Cache.LineBytes)
	}
	if c.CPU.CycleTime <= 0 {
		return fmt.Errorf("core: CPU cycle time must be positive")
	}
	if c.Mesh.FlitBytes <= 0 || c.Mesh.FlitCycle <= 0 {
		return fmt.Errorf("core: mesh flit parameters must be positive")
	}
	return c.validateFaults()
}

// validateFaults checks the fault plan against the machine shape.
func (c Config) validateFaults() error {
	f := c.Faults
	if !f.Enabled() {
		return nil
	}
	for _, ppm := range [...]uint32{f.DropPPM, f.CorruptPPM, f.DupPPM, f.StallPPM} {
		if ppm > 1_000_000 {
			return fmt.Errorf("core: fault rate %d ppm exceeds 1e6", ppm)
		}
	}
	if f.RetryBudget < 0 || f.AckTimeout < 0 || f.StallTime < 0 {
		return fmt.Errorf("core: fault tunables must be non-negative")
	}
	if f.Survivable && !f.Reliable {
		return fmt.Errorf("core: Faults.Survivable requires Reliable delivery; " +
			"the retry budget is the failure detector")
	}
	if f.Heartbeat < 0 {
		return fmt.Errorf("core: heartbeat period %v negative", f.Heartbeat)
	}
	if f.Heartbeat > 0 && !f.Survivable {
		return fmt.Errorf("core: Faults.Heartbeat is the Survivable-mode liveness sweep; " +
			"set Survivable (and Reliable) to use it")
	}
	n := c.NodeCount()
	if f.LinkDownAt > 0 {
		if f.LinkFrom < 0 || f.LinkFrom >= n || f.LinkTo < 0 || f.LinkTo >= n {
			return fmt.Errorf("core: link fault nodes %d->%d outside machine of %d nodes",
				f.LinkFrom, f.LinkTo, n)
		}
		from, to := c.CoordOf(packet.NodeID(f.LinkFrom)), c.CoordOf(packet.NodeID(f.LinkTo))
		if from.Hops(to) != 1 {
			return fmt.Errorf("core: link fault %v->%v is not a mesh link", from, to)
		}
		if f.LinkRepairAt != 0 && f.LinkRepairAt <= f.LinkDownAt {
			return fmt.Errorf("core: link repair at %v not after outage at %v",
				f.LinkRepairAt, f.LinkDownAt)
		}
	}
	for _, nf := range f.Nodes {
		if nf.Kind == fault.NodeOK {
			continue
		}
		if nf.Node < 0 || nf.Node >= n {
			return fmt.Errorf("core: node fault targets node %d of %d", nf.Node, n)
		}
		if nf.At <= 0 {
			return fmt.Errorf("core: node fault on node %d needs a positive schedule time", nf.Node)
		}
		if nf.Until != 0 && nf.Until <= nf.At {
			return fmt.Errorf("core: node fault thaw at %v not after freeze at %v", nf.Until, nf.At)
		}
	}
	return nil
}

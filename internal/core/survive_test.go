package core

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/vm"
)

// surviveCfg is the canonical Survivable fault plan used across the
// crash-survival tests: short retry budget and ack timeout so detection
// latency stays small relative to the workload, heartbeat armed so even
// idle nodes notice the dead peer.
func surviveCfg(w, h, crashes int) Config {
	cfg := ConfigFor(w, h, nic.GenXpress)
	cfg.Metrics = true
	cfg.Faults = fault.Config{
		Seed: 1729, Reliable: true, Survivable: true,
		Heartbeat:   200 * sim.Microsecond,
		RetryBudget: 6, AckTimeout: 10 * sim.Microsecond,
		Nodes: CrashPlan(w*h, crashes, 450*sim.Microsecond, 120*sim.Microsecond),
	}
	return cfg
}

// The headline claim: crash 2 of 16 nodes mid-workload with Survivable
// armed and the run completes with no machine check, every
// survivor→survivor flow delivers and verifies in full, and the dead
// peers' mappings are quarantined on the survivors.
func TestCrashSurvivalSoak(t *testing.T) {
	// 30 rounds keep the store phase running well past both crash
	// instants, so the workload itself (not just the heartbeat) trips
	// the failure detector and post-detection stores exercise the
	// emit-drop path.
	p := MeasureAvailability(surviveCfg(4, 4, 2), 30, 64)
	if p.Err != "" {
		t.Fatalf("survivable 2-crash run failed: %s", p.Err)
	}
	// Each victim kills exactly two ring flows (the one it sends, the
	// one it receives); everything else must be perfect.
	if want := p.Flows - 4; p.GoodFlows != want {
		t.Fatalf("good flows = %d, want %d of %d", p.GoodFlows, want, p.Flows)
	}
	if p.BadWords != 0 {
		t.Fatalf("survivor flows lost %d words", p.BadWords)
	}
	if want := uint64(p.GoodFlows * 64); p.GoodWords != want {
		t.Fatalf("verified %d words, want %d", p.GoodWords, want)
	}
	if p.PeerDowns == 0 || p.MapsTorn < 4 {
		t.Fatalf("teardown accounting: %d peer-downs, %d maps torn (want >0, >=4)", p.PeerDowns, p.MapsTorn)
	}
}

// Determinism under partitioning: the same crash plan reports a
// bit-identical AvailabilityPoint whether the engine runs sequentially
// or split 4 or 8 ways. Run under -race in CI this doubles as the
// data-race proof for the peer-down path.
func TestCrashSurvivalBitIdenticalAcrossPartitions(t *testing.T) {
	var pts []AvailabilityPoint
	for _, parts := range []int{1, 4, 8} {
		cfg := surviveCfg(4, 4, 2)
		cfg.Partitions = parts
		p := MeasureAvailability(cfg, 30, 64)
		p.Events = 0 // partition engines fire extra coordination events
		pts = append(pts, p)
	}
	if pts[0] != pts[1] || pts[1] != pts[2] {
		t.Fatalf("availability diverged across partitions:\n1: %#v\n4: %#v\n8: %#v", pts[0], pts[1], pts[2])
	}
	if pts[0].Err != "" {
		t.Fatalf("partitioned survivable run failed: %s", pts[0].Err)
	}
}

// Reset must replay the identical crash: peer-down membership, the
// quarantine teardown, and the heartbeat schedule all rewind.
func TestCrashSurvivalResetMatchesFresh(t *testing.T) {
	cfg := surviveCfg(2, 2, 1)
	fresh := MeasureAvailability(cfg, 6, 32)

	m := New(cfg)
	measureAvailabilityOn(m, 3, 16) // dirty the membership view and teardown state
	m.Reset()
	reused := measureAvailabilityOn(m, 6, 32)
	if fresh != reused {
		t.Fatalf("survivable run after Reset diverged:\nfresh:  %+v\nreused: %+v", fresh, reused)
	}
}

// The Survivable flag is the whole difference between a crashed run and
// a degraded one, pinned differentially on the identical crash plan:
// off, the deliberate-update stream into the dying node burns its retry
// budget and dies with a retry-budget machine check (the pre-existing
// semantics); on, the same exhaustion declares the peer dead instead,
// the retained payloads are released, further DMA output is suppressed
// at emit, and the run completes without a failure.
func TestSurvivableOffStillMachineChecks(t *testing.T) {
	plan := func(survivable bool) Config {
		cfg := ConfigFor(2, 1, nic.GenXpress)
		cfg.Faults = fault.Config{
			Seed: 1729, Reliable: true, Survivable: survivable,
			RetryBudget: 4, AckTimeout: 10 * sim.Microsecond,
			Nodes: [2]fault.NodeFault{{Node: 1, Kind: fault.NodeCrash, At: 200 * sim.Microsecond}},
		}
		return cfg
	}
	off := MeasureFaultyTransfer(plan(false), 0, 1, 1024, 512*1024)
	if off.Err == "" {
		t.Fatal("crash with Survivable off did not raise a machine check")
	}
	if !strings.Contains(off.Err, fault.CheckRetryBudget.String()) {
		t.Fatalf("failure %q is not a retry-budget machine check", off.Err)
	}

	onCfg := plan(true)
	m := New(onCfg)
	on := measureFaultyTransferOn(m, 0, 1, 1024, 512*1024)
	if on.Err != "" {
		t.Fatalf("the same crash with Survivable on still failed: %s", on.Err)
	}
	if !m.Node(0).K.PeerIsDown(1) {
		t.Fatal("survivable sender never declared the dead receiver")
	}
	if got := m.Node(0).NIC.Stats().PeerDowns; got != 1 {
		t.Fatalf("sender declared %d peers down, want 1", got)
	}
	if on.Retransmits == 0 {
		t.Fatal("the budget was never exercised before the declaration")
	}
	if on.GoodBytes >= 512*1024 {
		t.Fatal("stream into a mid-run crash cannot deliver in full")
	}
}

// Arming Survivable without any crash must change nothing: a lossy
// transfer reports a bit-identical FaultPoint with the flag on and off.
// (The flag only redirects the retry-budget-exhausted branch; until a
// peer actually dies the two modes run the same instruction stream.)
func TestSurvivableZeroCrashBitIdentical(t *testing.T) {
	off := faultyCfg(10_000)
	on := off
	on.Faults.Survivable = true
	a := MeasureFaultyTransfer(off, 0, 1, 1024, 64*1024)
	b := MeasureFaultyTransfer(on, 0, 1, 1024, 64*1024)
	if a != b {
		t.Fatalf("Survivable flag perturbed a crash-free run:\noff: %+v\non:  %+v", a, b)
	}
}

// Regression for the latent DestroyProcess hang: destroying a process
// whose pages are mapped out to a node that crashed exercises both
// teardown paths — the async one (the unmap-in request burns its retry
// budget, the failure detector fires, and the pending RPC resolves with
// ErrPeerDown mid-flight) and the sync one (a later destroy against the
// already-quarantined peer fast-fails before the request ever leaves).
// Both futures must resolve; before the outstanding-count seal the sync
// path reaped the process mid-loop and the async one hung forever.
func TestDestroyProcessSurvivesPeerCrash(t *testing.T) {
	cfg := ConfigFor(2, 1, nic.GenXpress)
	cfg.Faults = fault.Config{
		Seed: 1, Reliable: true, Survivable: true,
		RetryBudget: 4, AckTimeout: 10 * sim.Microsecond,
		Nodes: [2]fault.NodeFault{{Node: 1, Kind: fault.NodeCrash, At: 100 * sim.Microsecond}},
	}
	m := New(cfg)
	src, dst := m.Node(0), m.Node(1)
	pd := dst.K.CreateProcess()
	recvVA, err := pd.AllocPages(2)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*kernel.Process, 2)
	for i := range procs {
		procs[i] = src.K.CreateProcess()
		sendVA, err := procs[i].AllocPages(1)
		if err != nil {
			t.Fatal(err)
		}
		m.MustMap(procs[i], sendVA, phys.PageSize, dst.ID, pd.PID, recvVA+vm.VAddr(i*phys.PageSize), nipt.SingleWriteAU)
	}
	// Let the crash fire with nothing in flight: node 1 is dead but node
	// 0 has not detected it.
	if err := m.RunUntilIdle(ExperimentEventBudget); err != nil {
		t.Fatalf("idle run to the crash instant failed: %v", err)
	}
	if src.K.PeerIsDown(dst.ID) {
		t.Fatal("precondition: node 1 must not be detected yet")
	}

	// Async path: the unmap-in request to the dead node times out, the
	// detector fires, and the destroy future resolves cleanly.
	if err := m.Await(src.K.DestroyProcess(procs[0])); err != nil {
		t.Fatalf("destroy across a crashing peer: %v", err)
	}
	if !src.K.PeerIsDown(dst.ID) {
		t.Fatal("destroy's dead unmap-in did not trip the failure detector")
	}

	// Sync path: the peer is already quarantined, the request fast-fails
	// synchronously, and the seal keeps the reap off the fast path.
	if err := m.Await(src.K.DestroyProcess(procs[1])); err != nil {
		t.Fatalf("destroy against a quarantined peer: %v", err)
	}
	if err := m.Failed(); err != nil {
		t.Fatalf("survivable destroy raised a machine check: %v", err)
	}
}

// Mapping-consistency shootdowns interleaved with a crash: an
// invalidate round is in flight to an importer that dies before
// acknowledging. The eviction future must still resolve (the dead
// peer's ack is implicit — its NIPT died with it), the surviving
// importer must have served its shootdown, and the survivors' page
// tables must converge: a post-eviction store from the survivor
// re-establishes against the NEW frame and lands.
func TestShootdownCrashConvergence(t *testing.T) {
	cfg := ConfigFor(2, 2, nic.GenXpress)
	cfg.Kernel.Policy = kernel.InvalidateProtocol
	cfg.Faults = fault.Config{
		Seed: 1, Reliable: true, Survivable: true,
		RetryBudget: 4, AckTimeout: 10 * sim.Microsecond,
		Nodes: [2]fault.NodeFault{{Node: 1, Kind: fault.NodeCrash, At: 100 * sim.Microsecond}},
	}
	m := New(cfg)
	rcv, snd := m.Node(3), m.Node(0)
	pr := rcv.K.CreateProcess()
	recvVA, err := pr.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	// Two importers map into the same receive page; node 1 will crash.
	senders := make([]*kernel.Process, 2)
	sendVAs := make([]vm.VAddr, 2)
	for i := 0; i < 2; i++ {
		node := m.Node(i)
		senders[i] = node.K.CreateProcess()
		sendVA, err := senders[i].AllocPages(1)
		if err != nil {
			t.Fatal(err)
		}
		sendVAs[i] = sendVA
		m.MustMap(senders[i], sendVA, phys.PageSize, rcv.ID, pr.PID, recvVA, nipt.SingleWriteAU)
	}
	stack, err := senders[0].AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntilIdle(ExperimentEventBudget); err != nil {
		t.Fatalf("run to the crash instant: %v", err)
	}

	// Evict: the shootdown fans out to nodes 0 and 1; node 1 is dead and
	// never acks.
	if err := m.Await(rcv.K.EvictPage(pr, recvVA.Page())); err != nil {
		t.Fatalf("eviction across a crashed importer: %v", err)
	}
	if !rcv.K.PeerIsDown(1) {
		t.Fatal("unacknowledged shootdown did not trip the failure detector")
	}
	if got := snd.K.Stats().InvalidatesServed; got != 1 {
		t.Fatalf("surviving importer served %d invalidations, want 1", got)
	}
	if pte, ok := senders[0].AS.Lookup(sendVAs[0].Page()); !ok || pte.Writable {
		t.Fatal("survivor's page still writable after the shootdown")
	}

	// Convergence: the survivor stores through the ISA — the write
	// faults, the kernel re-establishes the mapping against the
	// replacement frame (the destination is alive), and the word lands.
	prog := isa.MustAssemble("poke", `
poke:
	mov	dword [SBUF], 0x7ee57a11
	hlt
`, map[string]int64{"SBUF": int64(sendVAs[0])})
	snd.K.BindProcess(senders[0])
	snd.CPU.Load(prog)
	snd.CPU.R = [8]uint32{}
	snd.CPU.R[isa.ESP] = uint32(stack) + phys.PageSize
	if err := snd.CPU.Start("poke"); err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntilIdle(ExperimentEventBudget); err != nil {
		t.Fatalf("re-establish run: %v", err)
	}
	if err := snd.CPU.Err(); err != nil {
		t.Fatalf("survivor cpu aborted: %v", err)
	}
	if got := snd.K.Stats().ReestablishFaults; got != 1 {
		t.Fatalf("expected 1 re-establish fault, got %d", got)
	}
	if v, _ := rcv.UserRead32(pr, recvVA); v != 0x7ee57a11 {
		t.Fatalf("survivor store did not land after convergence: got %08x", v)
	}
}

// The degraded half of re-establishment: when the write-protection
// fault's destination is itself the dead node, the kernel cannot bring
// the mapping back. It must drop the record and fall through to plain
// local writability — the store retries, lands in local memory, and
// propagates nowhere — instead of panicking or hanging the CPU.
func TestReestablishDegradesWhenPeerDead(t *testing.T) {
	cfg := ConfigFor(2, 1, nic.GenXpress)
	cfg.Faults = fault.Config{
		Seed: 1, Reliable: true, Survivable: true,
		RetryBudget: 4, AckTimeout: 10 * sim.Microsecond,
		Nodes: [2]fault.NodeFault{{Node: 1, Kind: fault.NodeCrash, At: 100 * sim.Microsecond}},
	}
	m := New(cfg)
	snd, dst := m.Node(0), m.Node(1)
	ps := snd.K.CreateProcess()
	pd := dst.K.CreateProcess()
	sendVA, err := ps.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	recvVA, err := pd.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := ps.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	m.MustMap(ps, sendVA, phys.PageSize, dst.ID, pd.PID, recvVA, nipt.SingleWriteAU)
	if err := m.RunUntilIdle(ExperimentEventBudget); err != nil {
		t.Fatal(err)
	}

	// One heartbeat probe after the crash: the ping rides the reliable
	// kernel ring, burns the retry budget, the detector declares node 1
	// dead, and the teardown write-protects the exported page. (A plain
	// AU store would not do it — automatic update is detection-tagged,
	// not retained.)
	snd.K.Heartbeat()
	if err := m.Settle("detection"); err != nil {
		t.Fatalf("settle through detection: %v", err)
	}
	if !snd.K.PeerIsDown(dst.ID) {
		t.Fatal("unacknowledged heartbeat never tripped the detector")
	}
	if pte, ok := ps.AS.Lookup(sendVA.Page()); !ok || pte.Writable {
		t.Fatal("teardown left the exported page writable")
	}

	// The next ISA store faults; re-establishment fast-fails against the
	// quarantined peer and the page degrades to local-only writability.
	prog := isa.MustAssemble("poke", `
poke:
	mov	dword [SBUF], 0xdead5afe
	hlt
`, map[string]int64{"SBUF": int64(sendVA)})
	snd.K.BindProcess(ps)
	snd.CPU.Load(prog)
	snd.CPU.R = [8]uint32{}
	snd.CPU.R[isa.ESP] = uint32(stack) + phys.PageSize
	if err := snd.CPU.Start("poke"); err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntilIdle(ExperimentEventBudget); err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if err := snd.CPU.Err(); err != nil {
		t.Fatalf("cpu aborted in degraded mode: %v", err)
	}
	if !snd.CPU.Halted() {
		t.Fatal("cpu never completed the degraded store")
	}
	if v, _ := snd.UserRead32(ps, sendVA); v != 0xdead5afe {
		t.Fatalf("degraded store lost locally: got %08x", v)
	}
	if pte, ok := ps.AS.Lookup(sendVA.Page()); !ok || !pte.Writable {
		t.Fatal("degraded page did not regain local writability")
	}
}

// The heartbeat closes the idle-node detection gap: with no data
// traffic at all, a crashed peer is still declared dead on every
// survivor within a bounded number of probe periods, and the machine
// then quiesces (the heartbeat stops rescheduling once every planned
// victim is detected).
func TestHeartbeatDetectsIdleCrash(t *testing.T) {
	cfg := ConfigFor(2, 2, nic.GenXpress)
	cfg.Faults = fault.Config{
		Seed: 1, Reliable: true, Survivable: true,
		Heartbeat:   100 * sim.Microsecond,
		RetryBudget: 4, AckTimeout: 10 * sim.Microsecond,
		Nodes: [2]fault.NodeFault{{Node: 2, Kind: fault.NodeCrash, At: 50 * sim.Microsecond}},
	}
	m := New(cfg)
	if err := m.RunUntilIdle(ExperimentEventBudget); err != nil {
		t.Fatalf("idle heartbeat run failed: %v", err)
	}
	for _, id := range []int{0, 1, 3} {
		if !m.Node(id).K.PeerIsDown(2) {
			t.Fatalf("survivor %d never detected the idle crash", id)
		}
		if m.Node(id).K.Stats().PingsSent == 0 {
			t.Fatalf("survivor %d sent no heartbeat probes", id)
		}
	}
	if m.Node(2).K.Stats().PeerDowns != 0 {
		t.Fatal("the dead node declared peers down")
	}
}

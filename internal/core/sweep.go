package core

import (
	"repro/internal/exp"
	"repro/internal/nipt"
	"repro/internal/sim"
)

// Parallel sweep harnesses. Every sweep point is an independent
// experiment on its own Machine, so points fan out across exp.Map
// workers; each worker keeps one machine in a machinePool and reuses it
// via Machine.Reset whenever consecutive points share a config, paying
// the construction cost (~1,500 allocations / 2.8 MB for a 16-node
// machine) once per worker instead of once per point. Results come back
// in input order, bit-identical to the workers == 1 sequential path —
// the differential tests in sweep_test.go enforce this.

// machinePool is the worker-private state of a parallel sweep: the last
// machine built and the config it was built from. Config is a plain
// comparable struct, so "same config" is an == test.
type machinePool struct {
	cfg Config
	m   *Machine
}

func newMachinePool() *machinePool { return new(machinePool) }

// get returns a post-boot machine for cfg: the cached one, Reset in
// place, when the config matches; a fresh build otherwise.
func (p *machinePool) get(cfg Config) *Machine {
	if p.m != nil && p.cfg == cfg {
		p.m.Reset()
		return p.m
	}
	p.m = New(cfg)
	p.cfg = cfg
	return p.m
}

// LatencySweepParallel is LatencySweep fanned across workers goroutines
// (workers <= 0 selects exp.DefaultWorkers, workers == 1 runs inline).
// Results are ordered by destination node, exactly as LatencySweep.
// Sweeps of partitioned machines compose the two parallelism levels:
// the outer worker count is capped so workers × cfg.Partitions stays
// within the host CPU count (exp.CapWorkers); results are unaffected,
// both levels being bit-identical to their sequential forms.
func LatencySweepParallel(cfg Config, workers int) []LatencyResult {
	workers = exp.CapWorkers(workers, cfg.Partitions)
	return exp.Map(workers, cfg.NodeCount()-1, newMachinePool,
		func(p *machinePool, i int) LatencyResult {
			return measureStoreLatencyOn(p.get(cfg), 0, i+1)
		})
}

// BandwidthSweepParallel is BandwidthSweep fanned across workers
// goroutines; results are ordered as sizes.
func BandwidthSweepParallel(cfg Config, sizes []int, totalBytes, workers int) []BandwidthResult {
	workers = exp.CapWorkers(workers, cfg.Partitions)
	return exp.Map(workers, len(sizes), newMachinePool,
		func(p *machinePool, i int) BandwidthResult {
			return measureDeliberateBandwidthOn(p.get(cfg), 0, 1, sizes[i], totalBytes)
		})
}

// AUBandwidthSweep runs the A1 automatic-update ablation
// (MeasureAUBandwidth) for each mode, fanned across workers goroutines;
// results are ordered as modes.
func AUBandwidthSweep(cfg Config, modes []nipt.Mode, stores, workers int) []AUBandwidthResult {
	workers = exp.CapWorkers(workers, cfg.Partitions)
	return exp.Map(workers, len(modes), newMachinePool,
		func(p *machinePool, i int) AUBandwidthResult {
			return measureAUBandwidthOn(p.get(cfg), modes[i], stores)
		})
}

// MergeWindowSweep runs MeasureMergeWindow for each window, fanned
// across workers goroutines; results are ordered as windows. The window
// is NIC configuration, so every point builds its own machine — the
// sweep parallelizes but cannot Reset-reuse across distinct windows.
func MergeWindowSweep(cfg Config, windows []sim.Time, storeGap sim.Time, stores, workers int) []MergeWindowResult {
	workers = exp.CapWorkers(workers, cfg.Partitions)
	return exp.Map(workers, len(windows), newMachinePool,
		func(p *machinePool, i int) MergeWindowResult {
			c := cfg
			c.NIC.MergeWindow = windows[i]
			return measureMergeWindowOn(p.get(c), storeGap, stores)
		})
}

// OverlapSweep runs the A4 overlap ablation (MeasureOverlap) for each
// mode, fanned across workers goroutines; results are ordered as modes.
func OverlapSweep(cfg Config, modes []nipt.Mode, iters, workers int) []OverlapResult {
	return exp.Map(workers, len(modes), newMachinePool,
		func(p *machinePool, i int) OverlapResult {
			return measureOverlapOn(p.get(cfg), modes[i], iters)
		})
}

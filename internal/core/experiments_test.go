package core

import (
	"testing"

	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/sim"
)

func TestLatencyUnder2usEISA(t *testing.T) {
	r := MaxLatency(ConfigFor(4, 4, nic.GenEISAPrototype))
	t.Logf("EISA prototype corner-to-corner (%d hops): %v", r.Hops, r.Latency)
	if r.Latency >= 2*sim.Microsecond {
		t.Errorf("latency %v, paper says slightly less than 2us", r.Latency)
	}
	if r.Latency < sim.Microsecond {
		t.Errorf("latency %v suspiciously low for the EISA prototype", r.Latency)
	}
}

func TestLatencyUnder1usXpress(t *testing.T) {
	r := MaxLatency(ConfigFor(4, 4, nic.GenXpress))
	t.Logf("next-gen corner-to-corner (%d hops): %v", r.Hops, r.Latency)
	if r.Latency >= sim.Microsecond {
		t.Errorf("latency %v, paper says less than 1us for the next generation", r.Latency)
	}
}

func TestBandwidthPlateaus(t *testing.T) {
	e := MeasureDeliberateBandwidth(ConfigFor(2, 1, nic.GenEISAPrototype), 0, 1, 4096, 512*1024)
	t.Logf("EISA page transfers: %s", e)
	if e.MBps < 28 || e.MBps > 33 {
		t.Errorf("EISA peak %v MB/s, paper bottleneck is 33 MB/s", e.MBps)
	}
	x := MeasureDeliberateBandwidth(ConfigFor(2, 1, nic.GenXpress), 0, 1, 4096, 512*1024)
	t.Logf("Xpress page transfers: %s", x)
	if x.MBps < 60 || x.MBps > 70 {
		t.Errorf("next-gen peak %v MB/s, paper predicts about 70 MB/s", x.MBps)
	}
}

func TestAUAblation(t *testing.T) {
	single := MeasureAUBandwidth(ConfigFor(2, 1, nic.GenEISAPrototype), nipt.SingleWriteAU, 2000)
	blocked := MeasureAUBandwidth(ConfigFor(2, 1, nic.GenEISAPrototype), nipt.BlockedWriteAU, 2000)
	t.Logf("%s", single)
	t.Logf("%s", blocked)
	if blocked.MBps <= single.MBps {
		t.Error("blocked-write should beat single-write for bulk stores")
	}
	if blocked.PktPerStore >= single.PktPerStore {
		t.Error("blocked-write should emit fewer packets per store")
	}
}

func TestOverlapClaim(t *testing.T) {
	// §4.1: automatic update overlaps communication with computation —
	// the CPU sees (nearly) only the write-through latency.
	r := MeasureOverlap(ConfigFor(2, 1, nic.GenEISAPrototype), nipt.BlockedWriteAU, 400)
	t.Logf("overlap: %s", r)
	// 1600 payload bytes plus a little kernel-ring traffic (the map
	// handshake) also lands on the destination NIC.
	if r.BytesMoved < 1600 || r.BytesMoved > 1800 {
		t.Fatalf("delivered %d bytes, want ~1600", r.BytesMoved)
	}
	if r.OverheadPct > 25 {
		t.Fatalf("CPU-visible overhead %.1f%% — communication is not overlapped", r.OverheadPct)
	}
}

func TestMergeWindowSweep(t *testing.T) {
	cfg := ConfigFor(2, 1, nic.GenEISAPrototype)
	gap := 100 * sim.Nanosecond
	narrow := MeasureMergeWindow(cfg, 20*sim.Nanosecond, gap, 256)
	wide := MeasureMergeWindow(cfg, 2*sim.Microsecond, gap, 256)
	t.Logf("window 20ns: %.3f pkts/store; window 2us: %.3f pkts/store",
		narrow.PktPerStore, wide.PktPerStore)
	if narrow.PktPerStore < 0.9 {
		t.Fatal("a window shorter than the store gap should not merge")
	}
	if wide.PktPerStore > 0.2 {
		t.Fatal("a wide window should merge most stores")
	}
}

func TestLatencyLinearInHops(t *testing.T) {
	// §5.1: propagation latency grows by a constant per hop (router +
	// link); the deposit leg is hop-independent.
	cfg := ConfigFor(4, 1, nic.GenEISAPrototype)
	l1 := MeasureStoreLatency(cfg, 0, 1).Latency
	l2 := MeasureStoreLatency(cfg, 0, 2).Latency
	l3 := MeasureStoreLatency(cfg, 0, 3).Latency
	d1, d2 := l2-l1, l3-l2
	if d1 != d2 {
		t.Fatalf("per-hop deltas differ: %v vs %v", d1, d2)
	}
	if d1 <= 0 {
		t.Fatal("latency not increasing with distance")
	}
}

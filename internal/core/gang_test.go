package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/sim"
)

// gangWorker: each process streams values through its own mapping and
// then spins on the echo, so progress requires its peer to be scheduled
// too — the workload gang scheduling is designed for.
const gangPing = `
main:
	mov	ecx, ROUNDS
	mov	ebx, 1
loop:	mov	[OUT], ebx
wait:	mov	eax, [ECHO]
	cmp	eax, ebx
	jne	wait
	inc	ebx
	dec	ecx
	jnz	loop
	hlt
`

const gangPong = `
main:
	mov	ecx, ROUNDS
	mov	ebx, 1
loop:	mov	eax, [IN]
	cmp	eax, ebx
	jne	loop
	mov	[OUT], eax
	inc	ebx
	dec	ecx
	jnz	loop
	hlt
`

// stageGang builds one communicating job: a pinger on node a and a
// ponger on node b, with forward and echo mappings.
func stageGang(t *testing.T, m *Machine, a, b *Node, rounds int) (*kernel.Process, *kernel.Process) {
	t.Helper()
	pp := a.K.CreateProcess()
	qq := b.K.CreateProcess()
	out, err := pp.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := qq.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	back, err := qq.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	echo, err := pp.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	m.MustMap(pp, out, phys.PageSize, b.ID, qq.PID, in, nipt.SingleWriteAU)
	m.MustMap(qq, back, phys.PageSize, a.ID, pp.PID, echo, nipt.SingleWriteAU)

	pstack, _ := pp.AllocPages(1)
	qstack, _ := qq.AllocPages(1)
	pp.SetupRun(isa.MustAssemble("ping", gangPing, map[string]int64{
		"OUT": int64(out), "ECHO": int64(echo), "ROUNDS": int64(rounds),
	}), "main", pstack+phys.PageSize)
	qq.SetupRun(isa.MustAssemble("pong", gangPong, map[string]int64{
		"IN": int64(in), "OUT": int64(back), "ROUNDS": int64(rounds),
	}), "main", qstack+phys.PageSize)
	return pp, qq
}

func TestGangSchedulingRunsCommunicatingJobs(t *testing.T) {
	const rounds = 40
	m := New(ConfigFor(2, 1, nic.GenEISAPrototype))
	a, b := m.Node(0), m.Node(1)
	// Two jobs share the machine; each needs both of its halves
	// scheduled to make progress.
	p1, q1 := stageGang(t, m, a, b, rounds)
	p2, q2 := stageGang(t, m, a, b, rounds)
	a.K.AddRunnable(p1)
	a.K.AddRunnable(p2)
	b.K.AddRunnable(q1)
	b.K.AddRunnable(q2)

	g, err := m.StartGangScheduling(10 * sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	// Run until all four processes have halted (each job finishes its
	// rounds) or the budget expires.
	deadline := m.Eng.Now() + 50*sim.Millisecond
	done := func() bool {
		for _, p := range []*kernel.Process{p1, q1, p2, q2} {
			v, err := finalEBX(m, p)
			if err != nil || v != rounds+1 {
				return false
			}
		}
		return true
	}
	for !done() && m.Eng.Now() < deadline {
		if !m.Eng.Step() {
			break
		}
	}
	g.Stop()
	if !done() {
		t.Fatalf("jobs incomplete after %v (gang ticks %d)", m.Eng.Now(), g.Ticks())
	}
	if g.Ticks() < 2 {
		t.Fatalf("only %d gang rounds; test vacuous", g.Ticks())
	}
	if a.K.Stats().ContextSwitches < 3 || b.K.Stats().ContextSwitches < 3 {
		t.Fatal("no real multiprogramming happened")
	}
}

// finalEBX reads the EBX a process last saw: live from the CPU if the
// process is current, otherwise from its saved context.
func finalEBX(m *Machine, p *kernel.Process) (uint32, error) {
	k := p.Kernel()
	if k.Current() == p {
		return k.CPU().R[isa.EBX], nil
	}
	return p.SavedReg(isa.EBX), nil
}

package core

import (
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Differential tests for the partitioned machine (Config.Partitions):
// partitioning is a pure simulator optimization, so every simulated
// result — latencies, bandwidths, goodput, machine checks, metrics —
// must be bit-identical to the sequential machine at any partition
// count and any node→partition assignment. Engine bookkeeping
// legitimately differs (the rendezvous replays posts as extra hub
// events, and RunBound windows break CPU batches at different points),
// so Events counts, batch-break/trace/spin counters and the completed-
// span ring order are normalized out; everything else compares exactly.

// partitionVariants covers the even split, two uneven splits (16 nodes
// over 3 and 5 partitions), and the one-node-per-worker-ish extreme.
var partitionVariants = []int{2, 3, 5, 8}

// partitionSeeds: 0 is the contiguous-block assignment; nonzero values
// select deterministic shuffled assignments.
var partitionSeeds = []uint64{0, 42, 1729}

func TestPartitionNodes(t *testing.T) {
	for _, nodes := range []int{1, 2, 7, 16} {
		for parts := 1; parts <= nodes; parts++ {
			for _, seed := range partitionSeeds {
				assign := partitionNodes(nodes, parts, seed)
				if len(assign) != nodes {
					t.Fatalf("nodes=%d parts=%d: len %d", nodes, parts, len(assign))
				}
				sizes := make([]int, parts)
				for n, p := range assign {
					if p < 0 || p >= parts {
						t.Fatalf("nodes=%d parts=%d seed=%d: node %d → partition %d", nodes, parts, seed, n, p)
					}
					sizes[p]++
				}
				for p, s := range sizes {
					if lo, hi := nodes/parts, (nodes+parts-1)/parts; s < lo || s > hi {
						t.Errorf("nodes=%d parts=%d seed=%d: partition %d has %d nodes (want %d..%d)",
							nodes, parts, seed, p, s, lo, hi)
					}
				}
				// Deterministic: the same inputs give the same assignment.
				if again := partitionNodes(nodes, parts, seed); !reflect.DeepEqual(assign, again) {
					t.Errorf("nodes=%d parts=%d seed=%d: assignment not deterministic", nodes, parts, seed)
				}
			}
		}
	}
	// A nonzero seed actually shuffles (16 nodes, 4 partitions: the odds
	// of the identity permutation are astronomically small).
	if reflect.DeepEqual(partitionNodes(16, 4, 0), partitionNodes(16, 4, 42)) {
		t.Error("seed 42 produced the contiguous assignment")
	}
}

// partCfg returns the 16-node machine config with the given partition
// count and assignment seed.
func partCfg(parts int, seed uint64) Config {
	cfg := ConfigFor(4, 4, nic.GenEISAPrototype)
	cfg.Partitions = parts
	cfg.PartitionSeed = seed
	return cfg
}

// normLatency clears the engine-artifact field of a latency result.
func normLatency(r LatencyResult) LatencyResult {
	r.Events = 0
	return r
}

// TestPartitionDifferentialLatencySweep pins the full E2 corner sweep:
// every (partition count, assignment seed) pair reproduces the
// sequential sweep bit-for-bit.
func TestPartitionDifferentialLatencySweep(t *testing.T) {
	cfg := partCfg(1, 0)
	seq := New(cfg)
	want := make([]LatencyResult, 0, cfg.NodeCount()-1)
	for dst := 1; dst < cfg.NodeCount(); dst++ {
		seq.Reset()
		want = append(want, normLatency(measureStoreLatencyOn(seq, 0, dst)))
	}
	for _, parts := range partitionVariants {
		for _, seed := range partitionSeeds {
			m := New(partCfg(parts, seed))
			for dst := 1; dst < cfg.NodeCount(); dst++ {
				m.Reset()
				if got := normLatency(measureStoreLatencyOn(m, 0, dst)); got != want[dst-1] {
					t.Fatalf("parts=%d seed=%d dst=%d:\n got  %+v\n want %+v", parts, seed, dst, got, want[dst-1])
				}
			}
		}
	}
}

// TestPartitionDifferentialBandwidth pins the E3 deliberate-update
// path (DMA engine, LOCK CMPXCHG command protocol) under partitioning.
func TestPartitionDifferentialBandwidth(t *testing.T) {
	run := func(parts int) BandwidthResult {
		cfg := ConfigFor(2, 1, nic.GenEISAPrototype)
		cfg.Partitions = parts
		r := measureDeliberateBandwidthOn(New(cfg), 0, 1, 1024, 64*1024)
		r.Events = 0
		return r
	}
	want := run(1)
	if got := run(2); got != want {
		t.Fatalf("partitioned bandwidth diverged:\n got  %+v\n want %+v", got, want)
	}
}

// scrubSnapshot removes the engine-artifact metrics (CPU batching and
// trace-cache behavior depends on event-queue pressure, which RunBound
// windows legitimately change) so the rest compares exactly.
func scrubSnapshot(s obs.Snapshot) obs.Snapshot {
	artifacts := []string{
		"batch-break-event", "batch-break-quantum", "batch-break-fault",
		"batch-break-halt", "batch-break-freeze",
		"trace-hits", "trace-misses", "trace-flushes",
		"spin-fast-forwards", "spin-skipped-ps",
	}
	for i := range s.Nodes {
		for _, a := range artifacts {
			delete(s.Nodes[i].Counters, a)
		}
		delete(s.Nodes[i].Hists, "batch-len")
		delete(s.Nodes[i].Hists, "spin-skipped")
	}
	return s
}

// sortedSpans returns the registry's completed spans ordered by ID:
// completion order through the fabric can micro-diverge between
// partition layouts, but the set of spans and every stage timestamp
// must not.
func sortedSpans(r *obs.Registry) []obs.Span {
	spans := append([]obs.Span(nil), r.CompletedSpans()...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].ID < spans[j].ID })
	return spans
}

// TestPartitionDifferentialMetrics runs the AU bandwidth workload with
// the metrics registry on and compares the full snapshot (counters,
// gauges, histograms, span totals) and the completed span set.
func TestPartitionDifferentialMetrics(t *testing.T) {
	run := func(parts int, seed uint64) (obs.Snapshot, []obs.Span, AUBandwidthResult) {
		cfg := partCfg(parts, seed)
		cfg.Metrics = true
		m := New(cfg)
		r := measureAUBandwidthOn(m, nipt.SingleWriteAU, 600)
		return scrubSnapshot(m.Obs.Snapshot()), sortedSpans(m.Obs), r
	}
	wantSnap, wantSpans, wantR := run(1, 0)
	if wantSnap.SpansFinished == 0 || len(wantSpans) == 0 {
		t.Fatal("sequential run produced no spans; workload too small")
	}
	for _, parts := range []int{2, 3} {
		snap, spans, r := run(parts, 42)
		if r != wantR {
			t.Fatalf("parts=%d: result diverged:\n got  %+v\n want %+v", parts, r, wantR)
		}
		if !reflect.DeepEqual(snap, wantSnap) {
			t.Fatalf("parts=%d: metrics snapshot diverged:\n got  %+v\n want %+v", parts, snap, wantSnap)
		}
		if !reflect.DeepEqual(spans, wantSpans) {
			t.Fatalf("parts=%d: span set diverged (%d vs %d spans)", parts, len(spans), len(wantSpans))
		}
	}
}

// TestPartitionDifferentialFaults arms the fault injector (drops,
// corruption, duplication, stalls, reliable delivery) and pins the
// goodput, retransmit accounting and — at a hopeless drop rate — the
// machine check against the sequential machine.
func TestPartitionDifferentialFaults(t *testing.T) {
	run := func(parts int, crash bool) FaultPoint {
		cfg := ConfigFor(2, 1, nic.GenXpress)
		cfg.Partitions = parts
		cfg.Faults = fault.Config{
			Seed: 1729, DropPPM: 60_000, CorruptPPM: 40_000, DupPPM: 20_000,
			StallPPM: 30_000, Reliable: true,
		}
		if crash {
			cfg.Faults.RetryBudget = 4
			cfg.Faults.Nodes[0] = fault.NodeFault{Node: 1, Kind: fault.NodeCrash, At: 300 * sim.Microsecond}
		}
		p := measureFaultyTransferOn(New(cfg), 0, 1, 1024, 32*1024)
		p.Events = 0
		return p
	}
	for _, crash := range []bool{false, true} {
		want := run(1, crash)
		if crash && want.Err == "" {
			t.Fatal("crashed receiver did not fail the sequential run")
		}
		if got := run(2, crash); got != want {
			t.Fatalf("crash=%v partitioned run diverged:\n got  %+v\n want %+v", crash, got, want)
		}
	}
}

// TestPartitionResetReuse pins Reset-reused partitioned machines: every
// round on a reused machine must equal the fresh sequential result.
func TestPartitionResetReuse(t *testing.T) {
	want := normLatency(measureStoreLatencyOn(New(partCfg(1, 0)), 0, 15))
	m := New(partCfg(3, 42))
	for round := 0; round < 3; round++ {
		if round > 0 {
			m.Reset()
		}
		if got := normLatency(measureStoreLatencyOn(m, 0, 15)); got != want {
			t.Fatalf("round %d: got %+v want %+v", round, got, want)
		}
	}
}

// TestPartitionMachineClose pins the worker-gang lifecycle at the
// machine level: Close returns the process to its goroutine baseline
// (no leak), and a closed machine keeps producing the sequential
// reference result — the next parallel drain restarts the gang.
func TestPartitionMachineClose(t *testing.T) {
	want := normLatency(measureStoreLatencyOn(New(partCfg(1, 0)), 0, 15))
	base := runtime.NumGoroutine()
	m := New(partCfg(4, 42))
	for round := 0; round < 2; round++ {
		if round > 0 {
			m.Reset()
		}
		if got := normLatency(measureStoreLatencyOn(m, 0, 15)); got != want {
			t.Fatalf("round %d: got %+v want %+v", round, got, want)
		}
		m.Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base {
		time.Sleep(2 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("goroutine count %d never returned to baseline %d after Close", n, base)
	}
}

// TestPartitionSweepCompose pins the two parallelism levels composed:
// an exp.Map sweep (outer workers) of partitioned machines (inner
// engines) returns exactly what the all-sequential path returns. The
// worker cap (exp.CapWorkers inside the sweep) must be invisible in the
// results.
func TestPartitionSweepCompose(t *testing.T) {
	want := LatencySweepParallel(partCfg(1, 0), 1)
	for i := range want {
		want[i] = normLatency(want[i])
	}
	got := LatencySweepParallel(partCfg(3, 42), 4)
	for i := range got {
		got[i] = normLatency(got[i])
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("composed sweep diverged:\n got  %+v\n want %+v", got, want)
	}
}

// TestPartitionDifferentialFaultSweep pins the multi-point fault sweep
// (Reset-reused worker machines, varying drop rates) under partitioning.
func TestPartitionDifferentialFaultSweep(t *testing.T) {
	drops := []uint32{0, 40_000, 120_000}
	run := func(parts int) []FaultPoint {
		cfg := ConfigFor(2, 1, nic.GenXpress)
		cfg.Partitions = parts
		cfg.Faults = fault.Config{Seed: 7}
		pts := FaultSweep(cfg, drops, 1024, 16*1024, 1)
		for i := range pts {
			pts[i].Events = 0
		}
		return pts
	}
	want := run(1)
	if got := run(2); !reflect.DeepEqual(got, want) {
		t.Fatalf("partitioned fault sweep diverged:\n got  %+v\n want %+v", got, want)
	}
}

// TestPartitionValidate covers the partition-specific config errors.
func TestPartitionValidate(t *testing.T) {
	bad := func(mut func(*Config)) error {
		cfg := ConfigFor(2, 1, nic.GenEISAPrototype)
		mut(&cfg)
		return cfg.Validate()
	}
	if err := bad(func(c *Config) { c.Partitions = -1 }); err == nil {
		t.Error("negative Partitions accepted")
	}
	if err := bad(func(c *Config) { c.Partitions = 3 }); err == nil {
		t.Error("Partitions > NodeCount accepted")
	}
	if err := bad(func(c *Config) { c.Partitions = 2; c.TraceCapacity = 64 }); err == nil {
		t.Error("tracing + partitions accepted")
	}
	m := New(partCfg(2, 0))
	if _, err := m.StartGangScheduling(sim.Microsecond); err == nil {
		t.Error("gang scheduling on a partitioned machine accepted")
	}
}

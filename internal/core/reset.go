package core

// Reset tears the machine back down to its post-boot state in place —
// observationally equivalent to New(m.Cfg) — while reusing every large
// allocation: DRAM frames, cache arrays, the NIPT, the mesh and its worm
// pool, the engine's event queue, and the kernels' map buckets. Sweep
// harnesses that measure many points on the same configuration reuse one
// machine per worker instead of paying the full construction cost per
// point (~1,500 allocations / 2.8 MB for a 16-node machine).
//
// The engine is reset first, discarding any pending events, so Reset is
// safe even when the previous measurement stopped mid-flight (e.g. a
// latency probe that returns the instant the data lands, with deposit
// pipeline events still queued). Component resets then clear all state
// those events referenced, and the boot "firmware" step re-installs the
// kernel ring mappings exactly as New does.
func (m *Machine) Reset() {
	if m.Clu != nil {
		m.Clu.Reset() // hub plus every partition engine, and buffered traffic
	} else {
		m.Eng.Reset()
	}
	m.Net.Reset()
	for _, n := range m.Nodes {
		n.Mem.Reset()
		n.Xbus.Reset()
		if n.EISA != nil {
			n.EISA.Reset()
		}
		n.Cache.Reset()
		n.NIC.Table().Reset()
		n.NIC.Reset()
		n.CPU.Reset()
		n.K.Reset()
	}
	m.Tracer.Reset()
	m.Obs.Reset()
	m.Rec.Reset()
	m.wd.reset()
	m.Faults.Reset()
	m.installKernelRings()
	// Re-schedule fault-plan events (node crashes, link outages): the
	// engine reset discarded them along with everything else pending, and
	// the injector's decision counters just restarted, so the reset
	// machine replays the identical fault pattern a fresh one would.
	m.applyFaults()
}

package core

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/nipt"
	"repro/internal/packet"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Experiment harnesses for §5.1 of the paper: communication latency
// ("the time between a write operation by the sending CPU and the
// arrival of the written data in the destination memory") and peak
// bandwidth of deliberate-update transfers. Both cmd/shrimp-hwperf and
// the benchmark suite drive these.
//
// Every Measure* function has a machine-reusing measure*On twin that
// runs on a caller-provided post-boot machine; the sweep harnesses in
// sweep.go feed those twins reset machines from a per-worker pool.

// ExperimentEventBudget bounds every drain-until-idle phase of the
// experiment harnesses. It is a livelock guard, not a tuning knob: the
// largest legitimate experiment (streaming half a megabyte through the
// deliberate-update engine) fires well under 10^8 events, so a healthy
// run never comes near the budget. When the budget is hit the drain
// stops with an explicit error naming the phase — the simulation was
// truncated by a stuck component, and silently reporting its partial
// timings would corrupt the sweep.
const ExperimentEventBudget uint64 = 500_000_000

// Settle drains the machine until quiescent, returning an explicit
// error (wrapping sim.ErrBudget) if ExperimentEventBudget is exhausted
// first. phase names the experiment phase for the error message.
func (m *Machine) Settle(phase string) error {
	return m.settleWithin(phase, ExperimentEventBudget)
}

func (m *Machine) settleWithin(phase string, budget uint64) error {
	var err error
	if m.Clu != nil {
		err = m.Clu.DrainBudget(budget)
	} else {
		err = m.Eng.DrainBudget(budget)
	}
	if err != nil {
		return fmt.Errorf("core: %s: %w", phase, err)
	}
	return nil
}

// mustSettle is Settle for harnesses whose signatures predate error
// returns; the error still carries the phase and budget.
func mustSettle(m *Machine, phase string) {
	if err := m.Settle(phase); err != nil {
		panic(err)
	}
}

// LatencyResult is one measured automatic-update store latency. Events
// and SimEnd carry whole-run engine accounting (boot included) so
// harnesses like cmd/shrimp-bench can report simulator throughput.
type LatencyResult struct {
	Src, Dst packet.NodeID
	Hops     int
	Latency  sim.Time
	Events   uint64
	SimEnd   sim.Time
}

// pairSetup maps one page from a process on src to a process on dst and
// returns everything needed to drive stores across it.
type pairSetup struct {
	m        *Machine
	src, dst *Node
	ps, pd   *kernel.Process
	sendVA   vm.VAddr
	recvVA   vm.VAddr
}

func setupPair(m *Machine, src, dst int, mode nipt.Mode) *pairSetup {
	s := &pairSetup{m: m, src: m.Node(src), dst: m.Node(dst)}
	s.ps = s.src.K.CreateProcess()
	s.pd = s.dst.K.CreateProcess()
	var err error
	s.sendVA, err = s.ps.AllocPages(1)
	if err != nil {
		panic(err)
	}
	s.recvVA, err = s.pd.AllocPages(1)
	if err != nil {
		panic(err)
	}
	m.MustMap(s.ps, s.sendVA, phys.PageSize, s.dst.ID, s.pd.PID, s.recvVA, mode)
	mustSettle(m, "pair setup")
	return s
}

// MeasureStoreLatency measures one single-write automatic-update store
// from node src to node dst on a fresh machine of the given config.
func MeasureStoreLatency(cfg Config, src, dst int) LatencyResult {
	return measureStoreLatencyOn(New(cfg), src, dst)
}

// MeasureStoreLatencyOn is MeasureStoreLatency on a caller-provided
// post-boot machine (fresh or freshly Reset) — the machine-reuse entry
// point for harnesses that amortize construction across measurements.
func MeasureStoreLatencyOn(m *Machine, src, dst int) LatencyResult {
	return measureStoreLatencyOn(m, src, dst)
}

// measureStoreLatencyOn is MeasureStoreLatency on a caller-provided
// post-boot machine (fresh or freshly Reset).
func measureStoreLatencyOn(m *Machine, src, dst int) LatencyResult {
	s := setupPair(m, src, dst, nipt.SingleWriteAU)

	const probe = 0x5a5a_5a5a
	start := m.Now()
	if err := s.src.UserWrite32(s.ps, s.sendVA+128, probe); err != nil {
		panic(err)
	}
	// Poll physical memory directly: cache reads would perturb timing.
	frame, _ := s.pd.FrameOf(s.recvVA)
	arrived := func() bool { return s.dst.Mem.Read32(frame.Addr(128)) == probe }
	for !arrived() {
		if !m.Step() {
			panic("core: latency probe never arrived")
		}
	}
	return LatencyResult{
		Src: s.src.ID, Dst: s.dst.ID,
		Hops:    s.src.Coord.Hops(s.dst.Coord),
		Latency: m.Now() - start,
		Events:  m.Fired(),
		SimEnd:  m.Now(),
	}
}

// LatencySweep measures store latency from node 0 to every other node
// of the configured mesh (the paper quotes the 16-node figure). It is
// the sequential (workers == 1) path of LatencySweepParallel.
func LatencySweep(cfg Config) []LatencyResult {
	return LatencySweepParallel(cfg, 1)
}

// MaxLatency returns the worst-case (corner-to-corner) store latency.
func MaxLatency(cfg Config) LatencyResult {
	return MeasureStoreLatency(cfg, 0, cfg.NodeCount()-1)
}

// BandwidthResult is one point of the deliberate-update bandwidth sweep.
// Events and SimEnd carry whole-run engine accounting, as in
// LatencyResult.
type BandwidthResult struct {
	TransferBytes int
	TotalBytes    int
	Elapsed       sim.Time
	Packets       uint64
	MBps          float64
	Events        uint64
	SimEnd        sim.Time
}

func (r BandwidthResult) String() string {
	return fmt.Sprintf("%6d B transfers: %7.2f MB/s (%d bytes in %v, %d packets)",
		r.TransferBytes, r.MBps, r.TotalBytes, r.Elapsed, r.Packets)
}

// MeasureDeliberateBandwidth streams totalBytes from node src to node
// dst using back-to-back deliberate-update transfers of transferBytes
// each (≤ one page), and reports the sustained bandwidth.
func MeasureDeliberateBandwidth(cfg Config, src, dst, transferBytes, totalBytes int) BandwidthResult {
	return measureDeliberateBandwidthOn(New(cfg), src, dst, transferBytes, totalBytes)
}

// measureDeliberateBandwidthOn is MeasureDeliberateBandwidth on a
// caller-provided post-boot machine.
func measureDeliberateBandwidthOn(m *Machine, src, dst, transferBytes, totalBytes int) BandwidthResult {
	if transferBytes <= 0 || transferBytes > phys.PageSize {
		panic("core: transfer size must be within one page")
	}
	s := setupPair(m, src, dst, nipt.DeliberateUpdate)
	if err := s.src.K.GrantCommandPages(s.ps, s.sendVA, s.sendVA+0x4000_0000, 1); err != nil {
		panic(err)
	}
	// Fill the page once (content is irrelevant to timing).
	for off := 0; off < phys.PageSize; off += 4 {
		if err := s.src.UserWrite32(s.ps, s.sendVA+vm.VAddr(off), uint32(off)); err != nil {
			panic(err)
		}
	}
	mustSettle(m, "bandwidth page fill")

	cmdVA := s.sendVA + 0x4000_0000
	tr, f := s.ps.AS.Translate(cmdVA, true)
	if f != nil {
		panic(f)
	}
	words := uint32(transferBytes / 4)
	transfers := totalBytes / transferBytes
	startPkts := s.dst.NIC.Stats().PacketsIn
	start := m.Now()
	for i := 0; i < transfers; i++ {
		// The §4.3 protocol: locked CMPXCHG until the engine accepts.
		for {
			_, swapped, _ := s.src.LockedCmpxchg(tr.PA, 0, words)
			if swapped {
				break
			}
			// Engine busy: let simulated time advance (user-level
			// backoff would spin; stepping the engine models the time
			// passing between retries).
			if !m.Step() {
				panic("core: DMA engine never freed")
			}
		}
	}
	mustSettle(m, "bandwidth stream drain")
	elapsed := m.Now() - start
	delivered := transfers * transferBytes
	return BandwidthResult{
		TransferBytes: transferBytes,
		TotalBytes:    delivered,
		Elapsed:       elapsed,
		Packets:       s.dst.NIC.Stats().PacketsIn - startPkts,
		MBps:          float64(delivered) / 1e6 / elapsed.Seconds(),
		Events:        m.Fired(),
		SimEnd:        m.Now(),
	}
}

// BandwidthSweep measures sustained deliberate-update bandwidth across
// transfer sizes. It is the sequential (workers == 1) path of
// BandwidthSweepParallel.
func BandwidthSweep(cfg Config, sizes []int, totalBytes int) []BandwidthResult {
	return BandwidthSweepParallel(cfg, sizes, totalBytes, 1)
}

// AUBandwidthResult is one point of the automatic-update ablation
// (single-write vs blocked-write, §4.1).
type AUBandwidthResult struct {
	Mode        nipt.Mode
	Stores      int
	Elapsed     sim.Time
	Packets     uint64
	WireBytes   uint64
	MBps        float64 // payload bandwidth
	PktPerStore float64
}

func (r AUBandwidthResult) String() string {
	return fmt.Sprintf("%-13s: %7.2f MB/s, %.3f packets/store, %d wire bytes for %d stores",
		r.Mode, r.MBps, r.PktPerStore, r.WireBytes, r.Stores)
}

// MeasureAUBandwidth streams sequential 4-byte stores through an
// automatic-update mapping and reports delivered bandwidth and packet
// efficiency. This is the A1 ablation: blocked-write merging exists
// precisely because single-write packetization is wildly inefficient
// for bulk data.
func MeasureAUBandwidth(cfg Config, mode nipt.Mode, stores int) AUBandwidthResult {
	return measureAUBandwidthOn(New(cfg), mode, stores)
}

// measureAUBandwidthOn is MeasureAUBandwidth on a caller-provided
// post-boot machine.
func measureAUBandwidthOn(m *Machine, mode nipt.Mode, stores int) AUBandwidthResult {
	s := setupPair(m, 0, 1, mode)
	before := s.dst.NIC.Stats()
	beforeWire := m.Net.Stats().TotalWireByte
	start := m.Now()
	off := vm.VAddr(0)
	for i := 0; i < stores; i++ {
		if err := s.src.UserWrite32(s.ps, s.sendVA+off, uint32(i)); err != nil {
			panic(err)
		}
		off += 4
		if off >= phys.PageSize {
			off = 0
		}
	}
	mustSettle(m, "AU stream drain")
	elapsed := m.Now() - start
	after := s.dst.NIC.Stats()
	payload := 4 * stores
	return AUBandwidthResult{
		Mode:        mode,
		Stores:      stores,
		Elapsed:     elapsed,
		Packets:     after.PacketsIn - before.PacketsIn,
		WireBytes:   m.Net.Stats().TotalWireByte - beforeWire,
		MBps:        float64(payload) / 1e6 / elapsed.Seconds(),
		PktPerStore: float64(after.PacketsIn-before.PacketsIn) / float64(stores),
	}
}

package core

import (
	"io"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Metrics returns a point-in-time snapshot of the machine's metrics
// registry. With Config.Metrics off it returns a zero-value snapshot.
func (m *Machine) Metrics() obs.Snapshot { return m.Obs.Snapshot() }

// TraceJSON renders the machine's observability state — completed
// causal spans as per-node async tracks, any trace.Tracer events as
// instants, and per-node counter totals (batching, trace cache, spin
// fast-forward, NIC) as counter tracks — in Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Spans and
// counters require Config.Metrics; instants require
// Config.TraceCapacity; with neither, the output is a valid but empty
// timeline.
func (m *Machine) TraceJSON(w io.Writer) error {
	var events []trace.Event
	if m.Tracer != nil {
		events = m.Tracer.Events()
	}
	return obs.WriteChromeTrace(w, m.Cfg.NodeCount(), m.Obs.CompletedSpans(), events,
		m.Obs.Snapshot().Nodes, m.Rec)
}

// WriteOpenMetrics writes the machine's registry snapshot in OpenMetrics
// text exposition format, followed by the flight recorder's timeline
// when one is armed (Config.Recorder.Interval > 0).
func (m *Machine) WriteOpenMetrics(w io.Writer, opt obs.OpenMetricsOptions) error {
	if err := obs.WriteOpenMetricsOpts(w, m.Obs.Snapshot(), m.Now(), opt); err != nil {
		return err
	}
	if m.Rec == nil {
		return nil
	}
	return m.Rec.WriteOpenMetrics(w, opt)
}

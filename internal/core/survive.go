package core

import (
	"errors"
	"fmt"

	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/nipt"
	"repro/internal/obs"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Degraded-mode availability harness: the experiment behind the crash
// survival claim. A ring workload keeps every node both sending and
// receiving; the fault plan crashes nodes mid-run; with Survivable
// armed the run must complete with no machine check, the survivors'
// flows must deliver every word, and the crashed peers' mappings must
// be torn down. Everything reported is deterministic: the same config
// produces bit-identical AvailabilityPoints across Partitions settings
// and Reset replays.

// AvailabilityPoint is one measured crash-survival run. Comparable, so
// differential tests can assert bit-identity with ==.
type AvailabilityPoint struct {
	Crashes       int    // nodes the fault plan crashed
	Flows         int    // ring flows driven (one per node)
	GoodFlows     int    // survivor→survivor flows that verified fully
	GoodWords     uint64 // words verified across those flows
	BadWords      uint64 // words a survivor flow lost or corrupted (must be 0)
	PeerDowns     uint64 // failure-detector declarations, machine-wide
	PeerDownDrops uint64 // sends suppressed against declared-dead peers
	MapsTorn      uint64 // mapping records quarantined by peer-down teardown
	PingsSent     uint64 // heartbeat probes issued
	MemSum        uint64 // FNV-1a over every surviving receive page
	Elapsed       sim.Time
	// Tail latency of the end-to-end pipeline over the run's spans
	// (zero unless Metrics is on).
	LatP50  sim.Time
	LatP99  sim.Time
	LatP999 sim.Time
	Events  uint64
	Err     string // non-empty when the run ended in a machine check
}

func (p AvailabilityPoint) String() string {
	if p.Err != "" {
		return fmt.Sprintf("crashes %d: FAILED: %s", p.Crashes, p.Err)
	}
	s := fmt.Sprintf("crashes %d: %d/%d flows good, %d words verified, %d peer-downs, %d drops, %d maps torn, sum %016x",
		p.Crashes, p.GoodFlows, p.Flows, p.GoodWords, p.PeerDowns, p.PeerDownDrops, p.MapsTorn, p.MemSum)
	if p.LatP999 > 0 {
		s += fmt.Sprintf(", lat p50/p99/p999 %v/%v/%v", p.LatP50, p.LatP99, p.LatP999)
	}
	return s
}

// CrashPlan builds a deterministic staggered crash plan: k distinct
// victims spread across an n-node machine, crashing at base,
// base+stagger, ... (k is capped by the fault config's two-fault
// schedule).
func CrashPlan(n, k int, base, stagger sim.Time) [2]fault.NodeFault {
	var plan [2]fault.NodeFault
	if k > len(plan) {
		panic(fmt.Sprintf("core: crash plan holds at most %d faults, got %d", len(plan), k))
	}
	used := make(map[int]bool)
	v := 5 % n
	for i := 0; i < k; i++ {
		for used[v] {
			v = (v + 1) % n
		}
		used[v] = true
		plan[i] = fault.NodeFault{Node: v, Kind: fault.NodeCrash, At: base + sim.Time(i)*stagger}
		v = (v + 7) % n
	}
	return plan
}

// MeasureAvailability boots a machine for cfg and runs the ring
// workload: every node i maps one page onto node (i+1) mod N with
// single-write automatic update, then drives `rounds` rounds of
// `wordsPerRound` stores each, skipping flows whose endpoint has
// crashed (a frozen CPU stores nothing) or been declared dead (the
// quarantined mapping would fault). Crashes come from cfg.Faults.Nodes.
func MeasureAvailability(cfg Config, rounds, wordsPerRound int) AvailabilityPoint {
	return measureAvailabilityOn(New(cfg), rounds, wordsPerRound)
}

// MeasureAvailabilityOn is MeasureAvailability on a caller-provided
// post-boot machine (fresh or freshly Reset).
func MeasureAvailabilityOn(m *Machine, rounds, wordsPerRound int) AvailabilityPoint {
	return measureAvailabilityOn(m, rounds, wordsPerRound)
}

// availPattern is the value written to word j of flow i in round r; the
// receive page of a fully-delivered flow ends holding round rounds-1.
func availPattern(i, r, j int) uint32 {
	return uint32(i)<<24 | uint32(r)<<12 | uint32(j)&0xfff | 0x8000_0000
}

func measureAvailabilityOn(m *Machine, rounds, wordsPerRound int) AvailabilityPoint {
	n := m.Cfg.NodeCount()
	if wordsPerRound <= 0 || wordsPerRound > phys.PageSize/4 {
		panic("core: availability words per round must fit one page")
	}
	crashed := make([]bool, n)
	res := AvailabilityPoint{Flows: n}
	for _, nf := range m.Cfg.Faults.Nodes {
		if nf.Kind == fault.NodeCrash {
			crashed[nf.Node] = true
			res.Crashes++
		}
	}

	// Ring flow setup, tolerant of crashes that land mid-setup: a flow
	// whose destination is already declared dead (or whose source
	// already crashed) is dead at birth and skipped throughout — the
	// interesting crashes land later, during the write rounds, but an
	// aggressive plan must degrade rather than wedge the harness.
	type flow struct {
		src, dst *Node
		ps, pd   *kernel.Process
		sendVA   vm.VAddr
		recvVA   vm.VAddr
		dead     bool
	}
	flows := make([]*flow, n)
	for i := 0; i < n; i++ {
		src, dst := m.Node(i), m.Node((i+1)%n)
		f := &flow{src: src, dst: dst, ps: src.K.CreateProcess(), pd: dst.K.CreateProcess()}
		var err error
		if f.sendVA, err = f.ps.AllocPages(1); err != nil {
			panic(err)
		}
		if f.recvVA, err = f.pd.AllocPages(1); err != nil {
			panic(err)
		}
		if src.NIC.Dead() || src.K.PeerIsDown(dst.ID) {
			f.dead = true
		} else {
			_, fut := src.K.Map(f.ps, f.sendVA, phys.PageSize, dst.ID, f.pd.PID, f.recvVA, nipt.SingleWriteAU)
			switch err := m.Await(fut); {
			case err == nil:
			case errors.Is(err, fault.ErrPeerDown):
				f.dead = true
			default:
				panic(fmt.Sprintf("core: availability flow %d map: %v", i, err))
			}
		}
		flows[i] = f
	}
	mustSettle(m, "availability setup")
	var latBefore obs.Histogram
	if m.Cfg.Metrics {
		latBefore = m.Obs.StageHist(obs.HistStageTotal)
	}
	start := m.Now()

	// The write rounds. Crash events fire on the simulated timeline as
	// stores advance it; a flow is skipped the moment its source is dead
	// (frozen CPUs store nothing) or its source kernel has quarantined
	// the destination. Stores into a crashed-but-undetected destination
	// proceed — they are exactly the traffic that trips the failure
	// detector — and a translate fault racing the quarantine is skipped
	// like the quarantine itself.
rounds:
	for r := 0; r < rounds; r++ {
		for i, f := range flows {
			if err := m.Failed(); err != nil {
				res.Err = err.Error()
				break rounds
			}
			if f.dead || f.src.NIC.Dead() || f.src.K.PeerIsDown(f.dst.ID) {
				continue
			}
			for j := 0; j < wordsPerRound; j++ {
				if err := f.src.UserWrite32(f.ps, f.sendVA+vm.VAddr(4*j), availPattern(i, r, j)); err != nil {
					if crashed[int(f.dst.ID)] {
						break // quarantine landed mid-round
					}
					res.Err = fmt.Sprintf("flow %d round %d: %v", i, r, err)
					break rounds
				}
			}
		}
	}
	if res.Err == "" {
		if err := m.Settle("availability drain"); err != nil {
			res.Err = err.Error()
		}
	}
	res.Elapsed = m.Now() - start

	// Verification and the memory checksum. Survivor→survivor flows
	// must hold the final round's pattern in full; receive pages on
	// surviving nodes are folded into the checksum regardless of the
	// sender's fate (their content is deterministic — the crash instant
	// is part of the plan).
	const fnvOffset, fnvPrime = uint64(14695981039346656037), uint64(1099511628211)
	sum := fnvOffset
	for i, f := range flows {
		if crashed[int(f.dst.ID)] {
			continue
		}
		goodFlow := !crashed[i] && !f.dead && res.Err == ""
		for j := 0; j < wordsPerRound; j++ {
			v, err := f.dst.UserRead32(f.pd, f.recvVA+vm.VAddr(4*j))
			if err != nil {
				panic(err) // survivor receive pages never unmap
			}
			for s := 0; s < 32; s += 8 {
				sum ^= uint64(v>>s) & 0xff
				sum *= fnvPrime
			}
			if !crashed[i] && !f.dead && res.Err == "" {
				if v == availPattern(i, rounds-1, j) {
					res.GoodWords++
				} else {
					res.BadWords++
					goodFlow = false
				}
			}
		}
		if goodFlow {
			res.GoodFlows++
		}
	}
	res.MemSum = sum

	for _, node := range m.Nodes {
		ns := node.NIC.Stats()
		res.PeerDowns += ns.PeerDowns
		res.PeerDownDrops += ns.PeerDownDrops
		ks := node.K.Stats()
		res.MapsTorn += ks.PeerMapsTorn
		res.PingsSent += ks.PingsSent
	}
	if m.Cfg.Metrics {
		lat := m.Obs.StageHist(obs.HistStageTotal)
		d := lat.Delta(&latBefore)
		res.LatP50 = sim.Time(d.QuantileInterp(0.50))
		res.LatP99 = sim.Time(d.QuantileInterp(0.99))
		res.LatP999 = sim.Time(d.QuantileInterp(0.999))
	}
	res.Events = m.Fired()
	return res
}

// AvailabilitySweep measures availability across crash counts, fanned
// across workers goroutines (workers <= 0 selects exp.DefaultWorkers,
// 1 runs inline); results are ordered as crashes. Each point runs the
// base config with Reliable+Survivable forced on and a CrashPlan of
// crashes[i] victims staggered from crashBase by crashStagger.
func AvailabilitySweep(cfg Config, crashes []int, crashBase, crashStagger sim.Time,
	rounds, wordsPerRound, workers int) []AvailabilityPoint {
	workers = exp.CapWorkers(workers, cfg.Partitions)
	return exp.Map(workers, len(crashes), newMachinePool,
		func(p *machinePool, i int) AvailabilityPoint {
			c := cfg
			c.Faults.Reliable = true
			c.Faults.Survivable = true
			c.Faults.Nodes = CrashPlan(c.NodeCount(), crashes[i], crashBase, crashStagger)
			return measureAvailabilityOn(p.get(c), rounds, wordsPerRound)
		})
}

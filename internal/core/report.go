package core

import (
	"fmt"
	"io"
)

// Report writes a machine-wide statistics summary: backplane counters,
// per-node NIC and kernel activity, and aggregate totals. shrimp-sim
// uses it; tests use it as a smoke check that accounting is coherent.
func (m *Machine) Report(w io.Writer) error {
	ns := m.Net.Stats()
	if _, err := fmt.Fprintf(w,
		"backplane: injected=%d delivered=%d parked=%d wire-bytes=%d flit-hops=%d max-latency=%v\n",
		ns.Injected, ns.Delivered, ns.Parked, ns.TotalWireByte, ns.FlitHops, ns.MaxLatency); err != nil {
		return err
	}
	var out, in, drops, stalls, merged uint64
	for _, n := range m.Nodes {
		s := n.NIC.Stats()
		k := n.K.Stats()
		out += s.PacketsOut
		in += s.PacketsIn
		drops += s.DropNotMappedIn + s.DropWrongDest + s.DropCRC
		stalls += s.OutFullEvents
		merged += s.MergedWrites
		if _, err := fmt.Fprintf(w,
			"node %2d: out=%d (kernel %d) in=%d bytes-in=%d drops=%d/%d/%d dma=%d stalls=%d | maps=%d unmaps=%d evictions=%d ring-sent=%d\n",
			n.ID, s.PacketsOut, s.KernelPacketsOut, s.PacketsIn, s.BytesIn,
			s.DropNotMappedIn, s.DropWrongDest, s.DropCRC, s.DMATransfers,
			s.OutFullEvents, k.Maps, k.Unmaps, k.Evictions, k.RingRecordsSent); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"totals: packets out=%d in=%d drops=%d merged-writes=%d out-stall-events=%d (delivered+dropped=%d)\n",
		out, in, drops, merged, stalls, in+drops)
	return err
}

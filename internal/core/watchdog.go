package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// The progress watchdog: a sim.Pacer that inspects the metrics registry
// at a fixed simulated cadence and converts the ways a fault plan can
// wedge the machine — reliable-delivery retry storms against a dead
// peer, Outgoing-FIFO drains that stopped draining, a workload that
// blew through its quiescence deadline — into a structured
// *fault.MachineCheck raised through the engine's failure surface,
// instead of letting the run spin to the event budget (or, for harness
// polling loops, hang outright). Like the flight recorder it observes
// but never perturbs: a watchdog that does not trip changes no
// simulated result.

// DefaultWatchdogWindows is how many consecutive check intervals a
// pathology must persist before the watchdog trips.
const DefaultWatchdogWindows = 3

// WatchdogConfig arms the progress watchdog. The zero value disables
// it. Comparable, so it can ride Config.
type WatchdogConfig struct {
	// Interval is the check cadence in simulated time; <= 0 disables
	// the watchdog.
	Interval sim.Time
	// Windows is the number of consecutive intervals a pathology must
	// persist before tripping (<= 0 selects DefaultWatchdogWindows).
	Windows int
	// StallBytes is the Outgoing-FIFO occupancy at or above which a
	// node that sent nothing for a full window counts as stalled
	// (<= 0 selects the NIC's OutThreshold).
	StallBytes int
	// Deadline, when positive, is the simulated instant by which the
	// workload must have quiesced; the first check at or after it trips
	// CheckDeadline.
	Deadline sim.Time
	// Rearm, when set, lets the watchdog fire more than once per run:
	// after a trip it keeps checking, waits for recovery (a packet
	// delivery anywhere), then re-arms with fresh baselines and a
	// recorder mark instead of disarming until Reset. Useful in
	// Survivable fault plans, where a retry storm against a crashing
	// peer resolves itself once the failure detector declares the peer
	// dead and the run continues. The deadline check never re-arms, and
	// the failure surface still keeps only the first machine check.
	Rearm bool
}

// watchdog holds the per-window progress baselines. All state lives in
// preallocated slices; checks run on the coordinator at pacing cuts.
type watchdog struct {
	m        *Machine
	interval sim.Time
	windows  int
	stall    int64
	deadline sim.Time

	next    sim.Time
	tripped bool
	rearm   bool // WatchdogConfig.Rearm
	await   bool // tripped re-armably; waiting for a delivery to re-arm

	prevIn    uint64   // machine-total packets delivered
	prevRetr  []uint64 // per-node rel-retransmits
	prevOut   []uint64 // per-node packets-out
	stallRuns []int    // consecutive stalled windows per node
	stormRuns int      // consecutive windows without a delivery
	stormNode int      // first node that retransmitted since the last delivery (-1: none)
}

func newWatchdog(m *Machine, cfg WatchdogConfig) *watchdog {
	n := m.Cfg.NodeCount()
	win := cfg.Windows
	if win <= 0 {
		win = DefaultWatchdogWindows
	}
	stall := int64(cfg.StallBytes)
	if stall <= 0 {
		stall = int64(m.Cfg.NIC.OutThreshold)
	}
	return &watchdog{
		m:         m,
		interval:  cfg.Interval,
		windows:   win,
		stall:     stall,
		deadline:  cfg.Deadline,
		rearm:     cfg.Rearm,
		next:      cfg.Interval,
		prevRetr:  make([]uint64, n),
		prevOut:   make([]uint64, n),
		stallRuns: make([]int, n),
		stormNode: -1,
	}
}

// NextDeadline implements sim.Pacer. A tripped watchdog stops checking:
// the machine check is already on the failure surface.
func (w *watchdog) NextDeadline() sim.Time {
	if w.tripped {
		return sim.Forever
	}
	return w.next
}

// Pace implements sim.Pacer.
func (w *watchdog) Pace(deadline, head sim.Time) {
	w.next = deadline + w.interval
	w.check(deadline)
}

// trip records the machine check on the machine's failure surface and
// pins a mark to the flight recorder timeline (if one is armed).
func (w *watchdog) trip(mc *fault.MachineCheck) {
	if w.rearm && mc.Kind != fault.CheckDeadline {
		// Re-armable trip: keep checking, but hold further pathology
		// detection until the machine shows recovery, so one wedge
		// trips once rather than once per window.
		w.await = true
		w.stormRuns = 0
		w.stormNode = -1
		clear(w.stallRuns)
	} else {
		w.tripped = true
	}
	w.m.Rec.MarkAt(mc.At, "watchdog: "+mc.Kind.String())
	if w.m.Clu != nil {
		w.m.Clu.Fail(mc)
	} else {
		w.m.Eng.Fail(mc)
	}
}

// check inspects one window. Ordering matters for determinism only in
// that at most one check trips (the first in the fixed sequence below);
// everything read is the registry at the cut, which is partition-
// invariant.
func (w *watchdog) check(at sim.Time) {
	if w.deadline > 0 && at >= w.deadline {
		w.trip(&fault.MachineCheck{Node: -1, Kind: fault.CheckDeadline, At: at,
			Detail: fmt.Sprintf("simulation still running past watchdog deadline %v", w.deadline)})
		return
	}
	reg := w.m.Obs
	in := reg.Total(obs.CtrPacketsIn)
	if w.await {
		// Tripped re-armably: watch only for recovery. On the first
		// delivery, refresh every baseline so the pathology counters
		// restart from the recovered state.
		if in != w.prevIn {
			w.await = false
			w.m.Rec.MarkAt(at, "watchdog: re-armed")
			for id := range w.prevRetr {
				w.prevRetr[id] = reg.Node(id).Counter(obs.CtrRelRetransmits)
			}
			for id := range w.prevOut {
				w.prevOut[id] = reg.Node(id).Counter(obs.CtrPacketsOut)
			}
		}
		w.prevIn = in
		return
	}
	delivered := in != w.prevIn
	w.prevIn = in

	// Retry storm: `windows` consecutive intervals in which not one
	// packet was delivered anywhere, while some sender retransmitted
	// since the last delivery. (Per-window retransmit checks would miss
	// storms once exponential backoff stretches the retry gap past the
	// check interval.)
	for id := range w.prevRetr {
		r := reg.Node(id).Counter(obs.CtrRelRetransmits)
		if r != w.prevRetr[id] && w.stormNode < 0 {
			w.stormNode = id
		}
		w.prevRetr[id] = r
	}
	if delivered {
		w.stormRuns = 0
		w.stormNode = -1
	} else if w.stormNode >= 0 {
		w.stormRuns++
		if w.stormRuns >= w.windows {
			w.trip(&fault.MachineCheck{Node: w.stormNode, Kind: fault.CheckRetryStorm, At: at,
				Detail: fmt.Sprintf("retransmissions but not a single delivery across %d consecutive %v checks",
					w.windows, w.interval)})
			return
		}
	}

	// FIFO stall: a node holding at/above the stall threshold that sent
	// nothing for `windows` consecutive intervals.
	for id := range w.stallRuns {
		s := reg.Node(id)
		out := s.Counter(obs.CtrPacketsOut)
		stalled := s.Gauge(obs.GaugeOutFIFOBytes) >= w.stall && out == w.prevOut[id]
		w.prevOut[id] = out
		if !stalled {
			w.stallRuns[id] = 0
			continue
		}
		w.stallRuns[id]++
		if w.stallRuns[id] >= w.windows {
			w.trip(&fault.MachineCheck{Node: id, Kind: fault.CheckFIFOStall, At: at,
				Detail: fmt.Sprintf("outgoing FIFO held >= %d bytes with no packet sent for %d consecutive %v checks",
					w.stall, w.windows, w.interval)})
			return
		}
	}
}

// reset returns the watchdog to its just-built state in place.
func (w *watchdog) reset() {
	if w == nil {
		return
	}
	w.next = w.interval
	w.tripped = false
	w.await = false
	w.prevIn = 0
	clear(w.prevRetr)
	clear(w.prevOut)
	clear(w.stallRuns)
	w.stormRuns = 0
	w.stormNode = -1
}

package core

import (
	"reflect"
	"testing"

	"repro/internal/nic"
	"repro/internal/nipt"
)

// Differential tests for batched CPU interpretation at the machine
// level: Config.CPU.MaxBatch must never change a simulated result, only
// how many engine events it takes to compute it. OverlapResult carries
// no engine accounting (unlike LatencyResult.Events), so whole-struct
// equality is exactly the bit-identity claim.

// batchedCfg is the 2-node overlap config with the given batch quantum.
func batchedCfg(maxBatch int) Config {
	cfg := ConfigFor(2, 1, nic.GenEISAPrototype)
	cfg.CPU.MaxBatch = maxBatch
	return cfg
}

// TestBatchDifferentialOverlap pins the instruction-bound overlap
// experiment across batch quanta. measureOverlapOn runs baseline and
// mapped pass on one machine via Reset, so this also covers batching
// across Machine.Reset reuse.
func TestBatchDifferentialOverlap(t *testing.T) {
	const iters = 400
	want := MeasureOverlap(batchedCfg(1), nipt.BlockedWriteAU, iters)
	for _, mb := range []int{0, 3, 64} {
		got := MeasureOverlap(batchedCfg(mb), nipt.BlockedWriteAU, iters)
		if got != want {
			t.Fatalf("MaxBatch=%d changed overlap:\n got  %+v\n want %+v", mb, got, want)
		}
	}
	instr := batchedCfg(64)
	instr.Metrics = true
	if got := MeasureOverlap(instr, nipt.BlockedWriteAU, iters); got != want {
		t.Fatalf("batching with metrics on changed overlap:\n got  %+v\n want %+v", got, want)
	}
}

// TestBatchDifferentialOverlapSweep crosses batching with the parallel
// machine-reuse pool: a batched parallel sweep must reproduce the
// per-instruction sequential sweep bit for bit. Run under -race (ci.sh
// does) this is also the data-race proof for batched CPUs in the pool.
func TestBatchDifferentialOverlapSweep(t *testing.T) {
	modes := []nipt.Mode{nipt.SingleWriteAU, nipt.BlockedWriteAU}
	want := OverlapSweep(batchedCfg(1), modes, 128, 1)
	for _, mb := range []int{0, 3, 64} {
		got := OverlapSweep(batchedCfg(mb), modes, 128, 2)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("MaxBatch=%d parallel sweep diverged:\n got  %+v\n want %+v", mb, got, want)
		}
	}
}

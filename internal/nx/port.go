package nx

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/msg"
)

// AnyType matches any message type in Crecv/CrecvAny/Cprobe.
const AnyType = 0xffff

// MaxMessage bounds one message's payload.
const MaxMessage = 16 * 1024

// Port is one side of a point-to-point NX/2 connection. Messages carry
// a 16-bit type; receives dispatch in FIFO order per type, buffering
// non-matching arrivals the way NX/2's system buffers did — except the
// buffering is user-level memory.
type Port struct {
	m    *core.Machine
	self msg.Endpoint
	out  *ring // this side -> peer
	in   *ring // peer -> this side

	peer *Port // the other side (progress is co-pumped: both
	// simulated processes advance while one blocks)
	seqOut  uint16
	pending []message // arrived but not yet matched
	sendq   []message // Isend backlog awaiting ring space
	wants   []want    // posted Irecvs awaiting a matching arrival
	next    int       // async handle ids
	done    map[int]*message
	closed  bool
}

type message struct {
	typ    uint16
	seq    uint16
	data   []byte
	handle int
}

// OpenPair connects two endpoints and returns the port for each side.
// This is the slow, kernel-mediated step — six map() handshakes — after
// which every operation is user-level.
func OpenPair(m *core.Machine, a, b msg.Endpoint, pages int) (*Port, *Port, error) {
	if pages < 1 {
		return nil, nil, fmt.Errorf("nx: port needs at least one ring page")
	}
	ab, err := newRing(m, a, b, pages)
	if err != nil {
		return nil, nil, err
	}
	ba, err := newRing(m, b, a, pages)
	if err != nil {
		return nil, nil, err
	}
	pa := &Port{m: m, self: a, out: ab, in: ba, done: make(map[int]*message)}
	pb := &Port{m: m, self: b, out: ba, in: ab, done: make(map[int]*message)}
	pa.peer, pb.peer = pb, pa
	return pa, pb, nil
}

// progress pumps arrivals into the pending queue and drains the Isend
// backlog. Blocking operations interleave progress with engine steps.
func (p *Port) progress() error {
	for {
		typ, seq, data, ok, err := p.in.pop()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		p.pending = append(p.pending, message{typ: typ, seq: seq, data: data})
	}
	for len(p.sendq) > 0 {
		msg0 := p.sendq[0]
		ok, err := p.out.space(len(msg0.data))
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := p.out.push(msg0.typ, msg0.seq, msg0.data); err != nil {
			return err
		}
		if msg0.handle != 0 {
			m := msg0
			p.done[msg0.handle] = &m
		}
		p.sendq = p.sendq[1:]
	}
	// Satisfy posted Irecvs in posting order.
	remaining := p.wants[:0]
	for _, w := range p.wants {
		if m, ok := p.takePending(w.typ); ok {
			m.handle = w.h
			mm := m
			p.done[w.h] = &mm
			continue
		}
		remaining = append(remaining, w)
	}
	p.wants = remaining
	return nil
}

// block steps the simulation until cond holds, pumping progress on
// both sides (each simulated process keeps running while one blocks).
func (p *Port) block(cond func() (bool, error)) error {
	for {
		if err := p.progress(); err != nil {
			return err
		}
		if p.peer != nil {
			if err := p.peer.progress(); err != nil {
				return err
			}
		}
		ok, err := cond()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		if !p.m.Step() {
			return fmt.Errorf("nx: deadlock: nothing left to simulate")
		}
	}
}

// Close drains the port's outstanding sends and rejects further
// operations on this side. The peer can still receive what was sent.
func (p *Port) Close() error {
	if p.closed {
		return nil
	}
	if err := p.block(func() (bool, error) { return len(p.sendq) == 0, nil }); err != nil {
		return err
	}
	p.closed = true
	return nil
}

func (p *Port) validate(typ uint16, n int) error {
	if p.closed {
		return fmt.Errorf("nx: port closed")
	}
	if typ == AnyType {
		return fmt.Errorf("nx: %#x is reserved for receives", AnyType)
	}
	if n <= 0 || n > MaxMessage {
		return fmt.Errorf("nx: message size %d outside (0,%d]", n, MaxMessage)
	}
	return nil
}

// Csend sends a typed message, blocking (in simulated time) for ring
// space. Data is copied; the caller may reuse the buffer immediately.
func (p *Port) Csend(typ uint16, data []byte) error {
	if err := p.validate(typ, len(data)); err != nil {
		return err
	}
	// Queue behind any pending Isends to preserve send order.
	if len(p.sendq) == 0 {
		if err := p.block(func() (bool, error) { return p.out.space(len(data)) }); err != nil {
			return err
		}
		p.seqOut++
		return p.out.push(typ, p.seqOut, data)
	}
	p.seqOut++
	p.sendq = append(p.sendq, message{typ: typ, seq: p.seqOut, data: append([]byte(nil), data...)})
	return p.block(func() (bool, error) { return len(p.sendq) == 0, nil })
}

// Isend is the asynchronous send: it returns a handle immediately,
// queueing the message if the ring is full. Msgdone/Msgwait complete it.
func (p *Port) Isend(typ uint16, data []byte) (int, error) {
	if err := p.validate(typ, len(data)); err != nil {
		return 0, err
	}
	p.next++
	h := p.next
	p.seqOut++
	msg0 := message{typ: typ, seq: p.seqOut, data: append([]byte(nil), data...), handle: h}
	p.sendq = append(p.sendq, msg0)
	if err := p.progress(); err != nil {
		return 0, err
	}
	return h, nil
}

// Msgdone reports whether the async operation has completed (for sends:
// the message is in the ring; for receives: the message has arrived).
func (p *Port) Msgdone(h int) (bool, error) {
	if err := p.progress(); err != nil {
		return false, err
	}
	_, ok := p.done[h]
	return ok, nil
}

// Msgwait blocks until the async operation completes and, for receives,
// returns the message.
func (p *Port) Msgwait(h int) ([]byte, error) {
	err := p.block(func() (bool, error) {
		_, ok := p.done[h]
		return ok, nil
	})
	if err != nil {
		return nil, err
	}
	m := p.done[h]
	delete(p.done, h)
	return m.data, nil
}

// takePending dequeues the oldest pending message matching typ.
func (p *Port) takePending(typ uint16) (message, bool) {
	for i, m := range p.pending {
		if typ == AnyType || m.typ == typ {
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			return m, true
		}
	}
	return message{}, false
}

// Crecv blocks for the next message of the given type (FIFO within the
// type; AnyType matches the oldest arrival of any type) and returns its
// payload.
func (p *Port) Crecv(typ uint16, maxBytes int) ([]byte, error) {
	if p.closed {
		return nil, fmt.Errorf("nx: port closed")
	}
	var got message
	err := p.block(func() (bool, error) {
		m, ok := p.takePending(typ)
		if ok {
			got = m
		}
		return ok, nil
	})
	if err != nil {
		return nil, err
	}
	if len(got.data) > maxBytes {
		return nil, fmt.Errorf("nx: message of %d bytes exceeds buffer %d", len(got.data), maxBytes)
	}
	return got.data, nil
}

// CrecvAny is Crecv(AnyType) returning the type as well.
func (p *Port) CrecvAny(maxBytes int) (uint16, []byte, error) {
	var got message
	err := p.block(func() (bool, error) {
		m, ok := p.takePending(AnyType)
		if ok {
			got = m
		}
		return ok, nil
	})
	if err != nil {
		return 0, nil, err
	}
	if len(got.data) > maxBytes {
		return 0, nil, fmt.Errorf("nx: message of %d bytes exceeds buffer %d", len(got.data), maxBytes)
	}
	return got.typ, got.data, nil
}

// Irecv posts an asynchronous receive for typ; Msgwait returns the data.
func (p *Port) Irecv(typ uint16) (int, error) {
	p.next++
	h := p.next
	// Complete immediately if already pending; otherwise a deferred
	// matcher runs inside Msgdone/Msgwait's progress loop.
	if m, ok := p.takePending(typ); ok {
		m.handle = h
		p.done[h] = &m
		return h, nil
	}
	// Register a lazy matcher by storing the wanted type under the
	// handle with nil data; Msgdone resolves it.
	p.wants = append(p.wants, want{h: h, typ: typ})
	return h, nil
}

type want struct {
	h   int
	typ uint16
}

// Cprobe reports whether a message of the given type has arrived
// (non-blocking; the NX/2 cprobe).
func (p *Port) Cprobe(typ uint16) (bool, error) {
	if err := p.progress(); err != nil {
		return false, err
	}
	for _, m := range p.pending {
		if typ == AnyType || m.typ == typ {
			return true, nil
		}
	}
	return false, nil
}

// PendingCount returns how many arrived messages await a receive (the
// NX/2 "infocount" flavor of introspection).
func (p *Port) PendingCount() int { return len(p.pending) }

// Package nx is an NX/2-compatible message-passing interface built
// entirely at user level on SHRIMP mapped memory — the programming
// surface the paper's §5.2 measures (csend/crecv) plus the rest of the
// family NX/2 programs used: typed FIFO dispatch, non-blocking probes,
// and asynchronous send/receive with completion handles.
//
// A Port is a point-to-point, bidirectional connection between two
// processes. Each direction is a ring: a sender-side page block mapped
// onto a receiver-side block with blocked-write automatic update, a
// produced-bytes counter mapped forward (its arrival is the doorbell)
// and a consumed-bytes counter mapped backward (flow control). All of
// it is ordinary mapped memory — after the Open handshake, no kernel is
// involved in any operation.
package nx

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/vm"
)

// ring is one direction of a port: writer side and reader side state
// over the mapped pages.
type ring struct {
	m     *core.Machine
	src   msg.Endpoint
	dst   msg.Endpoint
	size  int
	sBase vm.VAddr // writer's ring pages
	rBase vm.VAddr // reader's ring pages (mapped in)
	sCtl  vm.VAddr // writer's produced counter page (mapped out)
	rCtl  vm.VAddr // reader's mirror of produced
	rCon  vm.VAddr // reader's consumed counter page (mapped out)
	sCon  vm.VAddr // writer's mirror of consumed

	// Writer-side cursors.
	wr       int
	produced uint32
	// Reader-side cursors.
	rd       int
	consumed uint32
}

const (
	recHeader = 12         // nbytes, type<<16|seq, checksum
	wrapMark  = 0x7fffffff // nbytes value marking a wrap record
)

func recBytes(n int) int { return recHeader + (n+7)&^7 }

// newRing wires one direction with `pages` ring pages.
func newRing(m *core.Machine, src, dst msg.Endpoint, pages int) (*ring, error) {
	r := &ring{m: m, src: src, dst: dst, size: pages * phys.PageSize}
	var err error
	if r.sBase, err = src.Proc.AllocPages(pages); err != nil {
		return nil, err
	}
	if r.rBase, err = dst.Proc.AllocPages(pages); err != nil {
		return nil, err
	}
	if r.sCtl, err = src.Proc.AllocPages(1); err != nil {
		return nil, err
	}
	if r.rCtl, err = dst.Proc.AllocPages(1); err != nil {
		return nil, err
	}
	if r.rCon, err = dst.Proc.AllocPages(1); err != nil {
		return nil, err
	}
	if r.sCon, err = src.Proc.AllocPages(1); err != nil {
		return nil, err
	}
	_, fut := src.Node.K.Map(src.Proc, r.sBase, pages*phys.PageSize,
		dst.Node.ID, dst.Proc.PID, r.rBase, nipt.BlockedWriteAU)
	if err := m.Await(fut); err != nil {
		return nil, err
	}
	_, fut = src.Node.K.Map(src.Proc, r.sCtl, phys.PageSize,
		dst.Node.ID, dst.Proc.PID, r.rCtl, nipt.SingleWriteAU)
	if err := m.Await(fut); err != nil {
		return nil, err
	}
	_, fut = dst.Node.K.Map(dst.Proc, r.rCon, phys.PageSize,
		src.Node.ID, src.Proc.PID, r.sCon, nipt.SingleWriteAU)
	if err := m.Await(fut); err != nil {
		return nil, err
	}
	return r, nil
}

// space reports whether a record of n payload bytes fits right now.
func (r *ring) space(n int) (bool, error) {
	need := uint32(recBytes(n))
	if r.wr+recBytes(n) > r.size {
		need += uint32(r.size - r.wr) // wrap waste
	}
	consumed, err := r.src.Node.UserRead32(r.src.Proc, r.sCon)
	if err != nil {
		return false, err
	}
	return r.produced-consumed+need <= uint32(r.size), nil
}

// push writes one record; the caller must have checked space.
func (r *ring) push(typ uint16, seq uint16, data []byte) error {
	w := r.src.Node
	rec := recBytes(len(data))
	if r.wr+rec > r.size {
		// Wrap record: nbytes=wrapMark. Counted symmetrically by the
		// reader.
		if err := w.UserWrite32(r.src.Proc, r.sBase+vm.VAddr(r.wr), wrapMark); err != nil {
			return err
		}
		r.produced += uint32(r.size - r.wr)
		r.wr = 0
	}
	base := r.sBase + vm.VAddr(r.wr)
	if err := w.UserWriteBytes(r.src.Proc, base+recHeader, data); err != nil {
		return err
	}
	hdr2 := uint32(typ)<<16 | uint32(seq)
	if err := w.UserWrite32(r.src.Proc, base+4, hdr2); err != nil {
		return err
	}
	if err := w.UserWrite32(r.src.Proc, base+8, hdr2^uint32(len(data))); err != nil {
		return err
	}
	// Length word last within the record, then the produced counter:
	// in-order delivery makes the counter a completeness watermark.
	if err := w.UserWrite32(r.src.Proc, base, uint32(len(data))); err != nil {
		return err
	}
	r.wr += rec
	r.produced += uint32(rec)
	return w.UserWrite32(r.src.Proc, r.sCtl, r.produced)
}

// pop reads the next complete record, if any.
func (r *ring) pop() (typ uint16, seq uint16, data []byte, ok bool, err error) {
	rd := r.dst.Node
	producedMirror, err := rd.UserRead32(r.dst.Proc, r.rCtl)
	if err != nil {
		return 0, 0, nil, false, err
	}
	if producedMirror == r.consumed {
		return 0, 0, nil, false, nil
	}
	base := r.rBase + vm.VAddr(r.rd)
	n, err := rd.UserRead32(r.dst.Proc, base)
	if err != nil {
		return 0, 0, nil, false, err
	}
	if n == wrapMark {
		r.consumed += uint32(r.size - r.rd)
		r.rd = 0
		if err := rd.UserWrite32(r.dst.Proc, r.rCon, r.consumed); err != nil {
			return 0, 0, nil, false, err
		}
		return r.pop()
	}
	if producedMirror-r.consumed < uint32(recBytes(int(n))) {
		// Header word arrived but the record tail has not (counter is
		// the watermark). Treat as not-ready.
		return 0, 0, nil, false, nil
	}
	hdr2, err := rd.UserRead32(r.dst.Proc, base+4)
	if err != nil {
		return 0, 0, nil, false, err
	}
	ck, err := rd.UserRead32(r.dst.Proc, base+8)
	if err != nil {
		return 0, 0, nil, false, err
	}
	if ck != hdr2^n {
		return 0, 0, nil, false, fmt.Errorf("nx: ring record checksum mismatch at %d", r.rd)
	}
	data = make([]byte, n)
	if err := rd.UserReadBytes(r.dst.Proc, base+recHeader, data); err != nil {
		return 0, 0, nil, false, err
	}
	rec := recBytes(int(n))
	r.rd += rec
	r.consumed += uint32(rec)
	if err := rd.UserWrite32(r.dst.Proc, r.rCon, r.consumed); err != nil {
		return 0, 0, nil, false, err
	}
	return uint16(hdr2 >> 16), uint16(hdr2), data, true, nil
}

package nx

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/nic"
)

func pair(t *testing.T, pages int) (*core.Machine, *Port, *Port) {
	t.Helper()
	m := core.New(core.ConfigFor(2, 1, nic.GenEISAPrototype))
	a := msg.NewEndpoint(m.Node(0))
	b := msg.NewEndpoint(m.Node(1))
	pa, pb, err := OpenPair(m, a, b, pages)
	if err != nil {
		t.Fatal(err)
	}
	return m, pa, pb
}

func TestCsendCrecvRoundTrip(t *testing.T) {
	_, pa, pb := pair(t, 1)
	want := []byte("typed message over the port")
	if err := pa.Csend(7, want); err != nil {
		t.Fatal(err)
	}
	got, err := pb.Crecv(7, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%q", got)
	}
	// And the reverse direction.
	if err := pb.Csend(9, []byte("reply")); err != nil {
		t.Fatal(err)
	}
	got, err = pa.Crecv(9, 64)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "reply" {
		t.Fatal("reverse direction")
	}
}

func TestTypedFIFODispatch(t *testing.T) {
	// Messages of different types interleave; receives by type see FIFO
	// order within the type regardless of arrival interleaving.
	_, pa, pb := pair(t, 1)
	for i := 0; i < 4; i++ {
		if err := pa.Csend(1, []byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := pa.Csend(2, []byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Drain type 2 first.
	for i := 0; i < 4; i++ {
		got, err := pb.Crecv(2, 64)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("b%d", i) {
			t.Fatalf("type 2 order: %q at %d", got, i)
		}
	}
	// Type 1 messages were buffered and stay ordered.
	for i := 0; i < 4; i++ {
		got, err := pb.Crecv(1, 64)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("a%d", i) {
			t.Fatalf("type 1 order: %q at %d", got, i)
		}
	}
}

func TestCrecvAnyAndProbe(t *testing.T) {
	m, pa, pb := pair(t, 1)
	if ok, _ := pb.Cprobe(AnyType); ok {
		t.Fatal("probe on empty port")
	}
	if err := pa.Csend(5, []byte("x")); err != nil {
		t.Fatal(err)
	}
	m.RunUntilIdle(20_000_000)
	if ok, _ := pb.Cprobe(5); !ok {
		t.Fatal("probe missed an arrival")
	}
	if ok, _ := pb.Cprobe(6); ok {
		t.Fatal("probe matched the wrong type")
	}
	typ, got, err := pb.CrecvAny(64)
	if err != nil {
		t.Fatal(err)
	}
	if typ != 5 || string(got) != "x" {
		t.Fatalf("any: %d %q", typ, got)
	}
	if pb.PendingCount() != 0 {
		t.Fatal("pending count")
	}
}

func TestAsyncSendReceive(t *testing.T) {
	m, pa, pb := pair(t, 1)
	// Post the receive before the send arrives.
	rh, err := pb.Irecv(3)
	if err != nil {
		t.Fatal(err)
	}
	if done, _ := pb.Msgdone(rh); done {
		t.Fatal("receive completed before any send")
	}
	sh, err := pa.Isend(3, []byte("async payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pa.Msgwait(sh); err != nil {
		t.Fatal(err)
	}
	m.RunUntilIdle(20_000_000)
	if done, _ := pb.Msgdone(rh); !done {
		t.Fatal("receive not completed after delivery")
	}
	got, err := pb.Msgwait(rh)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "async payload" {
		t.Fatalf("%q", got)
	}
}

func TestManyIsendsDrainInOrder(t *testing.T) {
	// More Isends than the ring holds: the backlog drains as the
	// receiver consumes, preserving order.
	_, pa, pb := pair(t, 1)
	const count = 24
	payload := make([]byte, 300)
	var handles []int
	for i := 0; i < count; i++ {
		payload[0] = byte(i)
		h, err := pa.Isend(4, payload)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i := 0; i < count; i++ {
		got, err := pb.Crecv(4, 512)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("order: %d at %d", got[0], i)
		}
	}
	for _, h := range handles {
		if _, err := pa.Msgwait(h); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRingWrapsUnderLongStream(t *testing.T) {
	_, pa, pb := pair(t, 1)
	payload := make([]byte, 900)
	for round := 0; round < 30; round++ {
		for i := range payload {
			payload[i] = byte(round*31 + i)
		}
		if err := pa.Csend(8, payload); err != nil {
			t.Fatal(err)
		}
		got, err := pb.Crecv(8, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round %d corrupted", round)
		}
	}
}

func TestValidation(t *testing.T) {
	_, pa, _ := pair(t, 1)
	if err := pa.Csend(AnyType, []byte("x")); err == nil {
		t.Fatal("reserved type accepted")
	}
	if err := pa.Csend(1, nil); err == nil {
		t.Fatal("empty message accepted")
	}
	if err := pa.Csend(1, make([]byte, MaxMessage+1)); err == nil {
		t.Fatal("oversized message accepted")
	}
	if _, _, err := OpenPair(nil, msg.Endpoint{}, msg.Endpoint{}, 0); err == nil {
		t.Fatal("zero-page port accepted")
	}
}

func TestBigMessageSmallBuffer(t *testing.T) {
	_, pa, pb := pair(t, 2)
	if err := pa.Csend(2, make([]byte, 2000)); err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Crecv(2, 100); err == nil {
		t.Fatal("oversized delivery into a small buffer accepted")
	}
}

func TestRandomTypedTrafficAgainstModel(t *testing.T) {
	// Differential stress: random interleaving of typed sends and
	// receives on both sides, checked against per-type FIFO model
	// queues.
	_, pa, pb := pair(t, 2)
	rng := rand.New(rand.NewSource(99))
	type side struct {
		port *Port
		// what the OTHER side has sent to us, per type
		model map[uint16][][]byte
	}
	A := &side{port: pa, model: map[uint16][][]byte{}}
	B := &side{port: pb, model: map[uint16][][]byte{}}
	peerOf := map[*side]*side{A: B, B: A}

	for step := 0; step < 300; step++ {
		s := A
		if rng.Intn(2) == 0 {
			s = B
		}
		typ := uint16(1 + rng.Intn(3))
		if rng.Intn(2) == 0 {
			// Send a random message to the peer.
			data := make([]byte, 1+rng.Intn(120))
			rng.Read(data)
			if err := s.port.Csend(typ, data); err != nil {
				t.Fatal(err)
			}
			peer := peerOf[s]
			peer.model[typ] = append(peer.model[typ], append([]byte(nil), data...))
		} else {
			// Receive if the model says something is (or will be) there.
			if len(s.model[typ]) == 0 {
				ok, err := s.port.Cprobe(typ)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					t.Fatalf("step %d: probe found a message the model does not know", step)
				}
				continue
			}
			got, err := s.port.Crecv(typ, 256)
			if err != nil {
				t.Fatal(err)
			}
			want := s.model[typ][0]
			s.model[typ] = s.model[typ][1:]
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d type %d: %q != %q", step, typ, got, want)
			}
		}
	}
	// Drain everything left.
	for _, s := range []*side{A, B} {
		for typ, q := range s.model {
			for _, want := range q {
				got, err := s.port.Crecv(typ, 256)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("drain type %d: %q != %q", typ, got, want)
				}
			}
		}
	}
	if pa.PendingCount() != 0 || pb.PendingCount() != 0 {
		t.Fatal("stray pending messages after drain")
	}
}

func TestClose(t *testing.T) {
	_, pa, pb := pair(t, 1)
	// Queue an async send, then close: Close drains it first.
	if _, err := pa.Isend(2, []byte("last words")); err != nil {
		t.Fatal(err)
	}
	if err := pa.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pa.Csend(2, []byte("x")); err == nil {
		t.Fatal("send on closed port accepted")
	}
	if _, err := pa.Crecv(2, 64); err == nil {
		t.Fatal("recv on closed port accepted")
	}
	// The peer still gets the drained message.
	got, err := pb.Crecv(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "last words" {
		t.Fatalf("%q", got)
	}
	// Double close is fine.
	if err := pa.Close(); err != nil {
		t.Fatal(err)
	}
}

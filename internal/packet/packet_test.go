package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/phys"
)

func TestCoordHops(t *testing.T) {
	if (Coord{0, 0}).Hops(Coord{3, 2}) != 5 {
		t.Fatal("hops")
	}
	if (Coord{3, 2}).Hops(Coord{0, 0}) != 5 {
		t.Fatal("hops symmetric")
	}
	if (Coord{1, 1}).Hops(Coord{1, 1}) != 0 {
		t.Fatal("self hops")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &Packet{
		Src:       Coord{1, 2},
		Dst:       Coord{3, 0},
		DstAddr:   phys.PAddr(0x123456),
		Kind:      KernelRing,
		Interrupt: true,
		Payload:   []byte("some payload bytes"),
	}
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != p.WireSize() {
		t.Fatalf("wire size %d != %d", len(wire), p.WireSize())
	}
	q, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if q.Src != p.Src || q.Dst != p.Dst || q.DstAddr != p.DstAddr ||
		q.Kind != p.Kind || q.Interrupt != p.Interrupt || !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", q, p)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p := &Packet{Dst: Coord{1, 1}, DstAddr: 4096, Payload: []byte{9, 8, 7, 6}}
	wire, _ := p.Encode()
	for bit := 0; bit < len(wire)*8; bit += 7 {
		mangled := append([]byte(nil), wire...)
		mangled[bit/8] ^= 1 << (bit % 8)
		if _, err := Decode(mangled); err == nil {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	p := &Packet{Dst: Coord{1, 0}, Payload: []byte{1, 2, 3, 4, 5}}
	wire, _ := p.Encode()
	for n := 0; n < len(wire); n++ {
		if _, err := Decode(wire[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestEncodeRejectsOversize(t *testing.T) {
	p := &Packet{Payload: make([]byte, phys.PageSize+1)}
	if _, err := p.Encode(); err != ErrTooLong {
		t.Fatalf("err = %v", err)
	}
	p.Payload = make([]byte, phys.PageSize)
	if _, err := p.Encode(); err != nil {
		t.Fatalf("page-size payload rejected: %v", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(sx, sy, dx, dy int8, addr uint32, kind bool, irq bool, n uint16) bool {
		payload := make([]byte, int(n)%phys.PageSize)
		rng.Read(payload)
		p := &Packet{
			Src:       Coord{int(sx), int(sy)},
			Dst:       Coord{int(dx), int(dy)},
			DstAddr:   phys.PAddr(addr),
			Interrupt: irq,
			Payload:   payload,
		}
		if kind {
			p.Kind = KernelRing
		}
		wire, err := p.Encode()
		if err != nil {
			return false
		}
		q, err := Decode(wire)
		if err != nil {
			return false
		}
		return q.Src == p.Src && q.Dst == p.Dst && q.DstAddr == p.DstAddr &&
			q.Kind == p.Kind && q.Interrupt == p.Interrupt && bytes.Equal(q.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodedPayloadDoesNotAliasWire(t *testing.T) {
	p := &Packet{Dst: Coord{0, 1}, Payload: []byte{10, 20, 30, 40}}
	wire, _ := p.Encode()
	q, _ := Decode(wire)
	wire[HeaderBytes] = 99
	if q.Payload[0] != 10 {
		t.Fatal("decoded payload aliases the wire buffer")
	}
}

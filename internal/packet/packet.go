// Package packet defines the network packet format of the SHRIMP network
// interface and the node coordinate scheme of the routing backplane.
//
// Per §3.1 of the paper, a packet consists of routing information, the
// absolute mesh coordinates of the intended receiver, a destination
// memory address, the data, and a CRC checksum to detect network errors.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/phys"
)

// NodeID identifies a node by its linear index in the machine.
type NodeID int

// Coord is an absolute position in the 2-D routing backplane mesh.
type Coord struct {
	X, Y int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Hops returns the XY-routing hop count between two coordinates.
func (c Coord) Hops(d Coord) int {
	return abs(c.X-d.X) + abs(c.Y-d.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Kind distinguishes the two consumers of arriving data. Ordinary traffic
// is DataWrite; KernelRing marks writes into the boot-time kernel↔kernel
// ring pages so the receiving NIC raises an interrupt on arrival (the
// interrupt-on-arrival command bit of §4.2, pre-set for ring pages).
type Kind uint8

const (
	// DataWrite is an update destined for mapped-in user memory.
	DataWrite Kind = iota
	// KernelRing is an update destined for a kernel message ring page.
	KernelRing
)

// Rel classifies a packet within the reliable-delivery layer that
// fault mode adds on top of the base protocol (internal/fault). The
// zero value RelNone is the seed wire format: no reliability header.
type Rel uint8

const (
	// RelNone: plain fire-and-forget packet (the no-fault format).
	RelNone Rel = iota
	// RelData: reliable data; Seq orders it within its (src,dst) flow,
	// the receiver ACKs cumulatively and the sender retains a copy for
	// retransmit. Deliberate-update and kernel-ring traffic use it.
	RelData
	// RelAck: cumulative acknowledgement; Seq is the receiver's next
	// expected sequence number (everything below it has arrived).
	RelAck
	// RelNack: gap report; Seq is the next expected sequence number and
	// the sender should retransmit from it.
	RelNack
	// RelTagged: detection-only tag for automatic-update traffic; Seq
	// counts packets per (flow, destination page) so the receiver can
	// report drops as sequence gaps without retransmission.
	RelTagged
)

// Packet is one network packet. Payload length is bounded by the page
// size: mappings are per page, so no transfer crosses a page boundary.
type Packet struct {
	Src       Coord      // absolute coordinates of the sender
	Dst       Coord      // absolute coordinates of the intended receiver
	DstAddr   phys.PAddr // destination physical memory address
	Kind      Kind
	Interrupt bool // receiver should interrupt the CPU after depositing
	Payload   []byte

	// Rel and Seq are the reliable-delivery header, present on the wire
	// only in fault mode (Rel != RelNone adds RelHeaderBytes to
	// WireSize). Zero-fault runs never set them, keeping the wire
	// format bit-identical to the base protocol.
	Rel Rel
	Seq uint32

	// Corrupt marks the packet as having suffered a transmission error;
	// fault-injection tests set it, and the receiving NIC treats it as
	// a CRC verification failure (a real packet's trailing CRC would
	// mismatch). It is not part of the wire format.
	Corrupt bool

	// Span is the causal-span reference minted by the sending NIC when
	// metrics are enabled (0 = untracked). It rides the packet so the
	// receiving NIC can complete the span at deposit time. Not part of
	// the wire format.
	Span uint64
}

// pool recycles packets (and, critically, their payload buffers) through
// the nic→mesh→nic lifecycle: the sending NIC takes a packet with Get
// when it packetizes a snooped store, and the receiving NIC returns it
// with Put once the payload has been deposited into its memory. Packets
// built by hand (tests, Decode) simply never enter the pool.
var pool = sync.Pool{New: func() any { return new(Packet) }}

// Get returns a zeroed packet from the pool. Its Payload is empty but may
// have capacity left over from an earlier life; append into it.
func Get() *Packet {
	return pool.Get().(*Packet)
}

// Put recycles p. The caller must hold the only remaining reference; the
// payload's backing array is retained for the packet's next life.
func Put(p *Packet) {
	*p = Packet{Payload: p.Payload[:0]}
	pool.Put(p)
}

// HeaderBytes is the wire size of the packet header: route/coords (4),
// destination address (4), kind+flags (1), length (2).
const HeaderBytes = 11

// CRCBytes is the wire size of the trailing checksum.
const CRCBytes = 4

// RelHeaderBytes is the wire overhead of the reliable-delivery header
// (kind byte + 32-bit sequence number), paid only when Rel != RelNone.
const RelHeaderBytes = 5

// WireSize returns the total wire size of the packet in bytes.
func (p *Packet) WireSize() int {
	n := HeaderBytes + len(p.Payload) + CRCBytes
	if p.Rel != RelNone {
		n += RelHeaderBytes
	}
	return n
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by Decode and by the receiving NIC's checks.
var (
	ErrBadCRC    = errors.New("packet: CRC mismatch")
	ErrTruncated = errors.New("packet: truncated")
	ErrTooLong   = errors.New("packet: payload exceeds page size")
)

// Encode serializes the packet to its wire format, appending the CRC.
func (p *Packet) Encode() ([]byte, error) {
	if len(p.Payload) > phys.PageSize {
		return nil, ErrTooLong
	}
	buf := make([]byte, 0, p.WireSize())
	buf = append(buf,
		byte(int8(p.Dst.X)), byte(int8(p.Dst.Y)),
		byte(int8(p.Src.X)), byte(int8(p.Src.Y)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.DstAddr))
	flags := byte(p.Kind) & 0x7f
	if p.Interrupt {
		flags |= 0x80
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Payload)))
	buf = append(buf, p.Payload...)
	crc := crc32.Checksum(buf, castagnoli)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf, nil
}

// Decode parses a wire-format packet, verifying length and CRC.
func Decode(b []byte) (*Packet, error) {
	if len(b) < HeaderBytes+CRCBytes {
		return nil, ErrTruncated
	}
	body, tail := b[:len(b)-CRCBytes], b[len(b)-CRCBytes:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, ErrBadCRC
	}
	p := &Packet{
		Dst: Coord{int(int8(b[0])), int(int8(b[1]))},
		Src: Coord{int(int8(b[2])), int(int8(b[3]))},
	}
	p.DstAddr = phys.PAddr(binary.LittleEndian.Uint32(b[4:]))
	flags := b[8]
	p.Kind = Kind(flags & 0x7f)
	p.Interrupt = flags&0x80 != 0
	n := int(binary.LittleEndian.Uint16(b[9:]))
	if len(body) != HeaderBytes+n {
		return nil, ErrTruncated
	}
	p.Payload = append([]byte(nil), body[HeaderBytes:]...)
	return p, nil
}

package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses assembly text into a Program. The syntax is a small
// Intel-style dialect:
//
//	; line comment
//	label:
//	        mov     eax, [esi+4]
//	        mov     dword [edi], 16
//	        movzx   eax, word [esi+ecx*2]
//	        lock cmpxchg [edi], ecx
//	        rep movsd
//	        jne     label
//
// syms supplies named constants (buffer addresses, sizes) usable
// anywhere an immediate or displacement may appear.
func Assemble(name, src string, syms map[string]int64) (*Program, error) {
	a := &assembler{
		prog: &Program{Labels: make(map[string]int), Name: name},
		syms: syms,
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		if err := a.line(lineNo+1, raw); err != nil {
			return nil, fmt.Errorf("%s:%d: %w (in %q)", name, lineNo+1, err, strings.TrimSpace(raw))
		}
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	return a.prog, nil
}

// MustAssemble is Assemble that panics on error; the routine library uses
// it for its fixed, test-covered sources.
func MustAssemble(name, src string, syms map[string]int64) *Program {
	p, err := Assemble(name, src, syms)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	prog *Program
	syms map[string]int64
}

func (a *assembler) line(no int, raw string) error {
	s := raw
	if i := strings.IndexByte(s, ';'); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	// Labels: may share a line with an instruction ("loop: dec ecx").
	for {
		i := strings.IndexByte(s, ':')
		if i < 0 || strings.ContainsAny(s[:i], " \t[,") {
			break
		}
		label := s[:i]
		if !validIdent(label) {
			return fmt.Errorf("invalid label %q", label)
		}
		if _, dup := a.prog.Labels[label]; dup {
			return fmt.Errorf("duplicate label %q", label)
		}
		a.prog.Labels[label] = len(a.prog.Instrs)
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	return a.instr(no, s)
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

var mnemonics = func() map[string]Op {
	m := make(map[string]Op, int(numOps))
	for o := Op(0); o < numOps; o++ {
		m[o.String()] = o
	}
	// Aliases.
	m["jz"] = JE
	m["jnz"] = JNE
	m["jnae"] = JB
	m["jnb"] = JAE
	m["jng"] = JLE
	m["jnle"] = JG
	return m
}()

func (a *assembler) instr(no int, s string) error {
	in := Instr{Size: 4, Line: no}
	fields := strings.Fields(s)
	for len(fields) > 0 {
		switch fields[0] {
		case "lock":
			in.Lock = true
			fields = fields[1:]
			continue
		case "rep":
			in.Rep = true
			fields = fields[1:]
			continue
		}
		break
	}
	if len(fields) == 0 {
		return fmt.Errorf("prefix with no instruction")
	}
	mnem := fields[0]
	rest := strings.TrimSpace(strings.TrimPrefix(s[strings.Index(s, mnem):], mnem))

	// String-op width suffixes.
	switch mnem {
	case "movsb", "stosb":
		mnem, in.Size = mnem[:4], 1
	case "movsw", "stosw":
		mnem, in.Size = mnem[:4], 2
	case "movsd", "stosd":
		mnem, in.Size = mnem[:4], 4
	}
	op, ok := mnemonics[mnem]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	in.Op = op

	ops, err := splitOperands(rest)
	if err != nil {
		return err
	}
	if op.IsJump() {
		if len(ops) != 1 || !validIdent(ops[0]) {
			return fmt.Errorf("%s needs one label operand", op)
		}
		in.Label = ops[0]
		a.prog.Instrs = append(a.prog.Instrs, in)
		return nil
	}
	want := operandCount(op)
	if len(ops) != want {
		return fmt.Errorf("%s takes %d operand(s), got %d", op, want, len(ops))
	}
	if want >= 1 {
		in.Dst, err = a.operand(ops[0], &in)
		if err != nil {
			return err
		}
	}
	if want >= 2 {
		in.Src, err = a.operand(ops[1], &in)
		if err != nil {
			return err
		}
	}
	return a.validate(&in)
}

func operandCount(op Op) int {
	switch op {
	case NOP, CLD, STD, IRET, HLT, MOVS, STOS, RET:
		return 0
	case INC, DEC, NEG, NOT, PUSH, POP, INT:
		return 1
	default:
		return 2
	}
}

func splitOperands(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced ']'")
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced '['")
	}
	out = append(out, strings.TrimSpace(s[start:]))
	for _, o := range out {
		if o == "" {
			return nil, fmt.Errorf("empty operand")
		}
	}
	return out, nil
}

var regByName = func() map[string]Reg {
	m := make(map[string]Reg, int(numRegs))
	for r := Reg(0); r < numRegs; r++ {
		m[r.String()] = r
	}
	return m
}()

func (a *assembler) operand(s string, in *Instr) (Operand, error) {
	// Width override prefixes.
	for prefix, size := range map[string]int{"byte": 1, "word": 2, "dword": 4} {
		if strings.HasPrefix(s, prefix+" ") || strings.HasPrefix(s, prefix+"[") {
			in.Size = size
			s = strings.TrimSpace(strings.TrimPrefix(s, prefix))
			break
		}
	}
	if r, ok := regByName[s]; ok {
		return R(r), nil
	}
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return Operand{}, fmt.Errorf("bad memory operand %q", s)
		}
		return a.memOperand(s[1 : len(s)-1])
	}
	v, err := a.value(s)
	if err != nil {
		return Operand{}, err
	}
	return I(v), nil
}

func (a *assembler) memOperand(s string) (Operand, error) {
	op := Operand{Kind: KindMem, Base: NoReg, Index: NoReg, Scale: 1}
	terms, err := splitTerms(s)
	if err != nil {
		return Operand{}, err
	}
	for _, t := range terms {
		body, neg := t.body, t.neg
		if r, ok := regByName[body]; ok && !neg {
			if op.Base == NoReg {
				op.Base = r
			} else if op.Index == NoReg {
				op.Index = r
			} else {
				return Operand{}, fmt.Errorf("too many registers in %q", s)
			}
			continue
		}
		if i := strings.IndexByte(body, '*'); i >= 0 && !neg {
			r, rok := regByName[strings.TrimSpace(body[:i])]
			sc, serr := strconv.Atoi(strings.TrimSpace(body[i+1:]))
			if !rok || serr != nil || (sc != 1 && sc != 2 && sc != 4 && sc != 8) {
				return Operand{}, fmt.Errorf("bad scaled index %q", body)
			}
			if op.Index != NoReg {
				return Operand{}, fmt.Errorf("two index registers in %q", s)
			}
			op.Index, op.Scale = r, uint8(sc)
			continue
		}
		v, err := a.value(body)
		if err != nil {
			return Operand{}, err
		}
		if neg {
			v = -v
		}
		op.Disp += v
	}
	return op, nil
}

type term struct {
	body string
	neg  bool
}

func splitTerms(s string) ([]term, error) {
	var out []term
	neg := false
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '+' || s[i] == '-' {
			body := strings.TrimSpace(s[start:i])
			if body != "" {
				out = append(out, term{body, neg})
			} else if i > 0 && i < len(s) {
				return nil, fmt.Errorf("empty term in %q", s)
			}
			if i < len(s) {
				neg = s[i] == '-'
			}
			start = i + 1
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty memory operand")
	}
	return out, nil
}

func (a *assembler) value(s string) (int32, error) {
	s = strings.TrimSpace(s)
	if v, ok := a.syms[s]; ok {
		return int32(v), nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate or unknown symbol %q", s)
	}
	if neg {
		return int32(-int64(v)), nil
	}
	return int32(v), nil
}

func (a *assembler) validate(in *Instr) error {
	bothMem := in.Dst.Kind == KindMem && in.Src.Kind == KindMem
	if bothMem {
		return fmt.Errorf("%s: memory-to-memory operands not encodable", in.Op)
	}
	switch in.Op {
	case LEA, MOVZX:
		if in.Dst.Kind != KindReg || in.Src.Kind != KindMem {
			return fmt.Errorf("%s needs reg, mem operands", in.Op)
		}
	case CMPXCHG:
		if in.Dst.Kind != KindMem || in.Src.Kind != KindReg {
			return fmt.Errorf("cmpxchg needs mem, reg operands")
		}
	case XCHG:
		if in.Dst.Kind == KindImm || in.Src.Kind == KindImm {
			return fmt.Errorf("xchg operands must be reg or mem")
		}
	case INT:
		if in.Dst.Kind != KindImm {
			return fmt.Errorf("int needs an immediate vector")
		}
	case PUSH:
		// reg, imm or mem all fine.
	case POP, INC, DEC, NEG, NOT:
		if in.Dst.Kind == KindImm {
			return fmt.Errorf("%s operand must be writable", in.Op)
		}
	case MOV, ADD, ADC, SUB, SBB, AND, OR, XOR, SHL, SHR, SAR:
		if in.Dst.Kind == KindImm {
			return fmt.Errorf("%s destination must be writable", in.Op)
		}
	case CMP, TEST:
		// Any combination except mem,mem (checked above).
	}
	a.prog.Instrs = append(a.prog.Instrs, *in)
	return nil
}

func (a *assembler) resolve() error {
	for i := range a.prog.Instrs {
		in := &a.prog.Instrs[i]
		if !in.Op.IsJump() {
			continue
		}
		t, ok := a.prog.Labels[in.Label]
		if !ok {
			return fmt.Errorf("%s:%d: undefined label %q", a.prog.Name, in.Line, in.Label)
		}
		in.Target = t
	}
	return nil
}

package isa

// State is a CPU context snapshot, the unit a kernel saves and restores
// across a context switch. Nothing network-related appears here — the
// SHRIMP design needs no NIC state per process.
type State struct {
	R                  [8]uint32
	ZF, SF, CF, OF, DF bool
	EIP                int
	Prog               *Program
	KernelMode         bool
	RepActive          bool
	Halted             bool
	Started            bool
}

// Save snapshots the CPU context.
func (c *CPU) Save() State {
	return State{
		R:  c.R,
		ZF: c.ZF, SF: c.SF, CF: c.CF, OF: c.OF, DF: c.DF,
		EIP:        c.eip,
		Prog:       c.prog,
		KernelMode: c.kernelMode,
		RepActive:  c.repActive,
		Halted:     c.halted,
		Started:    c.started,
	}
}

// Restore loads a snapshot without scheduling execution; call Resume to
// continue running.
func (c *CPU) Restore(s State) {
	c.R = s.R
	c.ZF, c.SF, c.CF, c.OF, c.DF = s.ZF, s.SF, s.CF, s.OF, s.DF
	c.eip = s.EIP
	c.prog = s.Prog
	c.kernelMode = s.KernelMode
	c.repActive = s.RepActive
	c.halted = s.Halted
	c.started = s.Started
}

// Resume schedules the next step of a restored, runnable context.
func (c *CPU) Resume() {
	if c.started && !c.halted && !c.frozen {
		c.Eng.ScheduleAfterDom(c.dom, 0, c)
	}
}

package isa

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vm"
)

// MemPort is the CPU's window onto the node: virtual-address loads and
// stores that go through translation, the cache, and the memory bus
// (where the network interface snoops them). The node glue in
// internal/core implements it.
type MemPort interface {
	Load(a vm.VAddr, size int) (uint32, sim.Time, *vm.Fault)
	Store(a vm.VAddr, v uint32, size int) (sim.Time, *vm.Fault)
	// CmpxchgLocked performs the LOCK CMPXCHG bus protocol of §4.3:
	// a locked read cycle followed by a write cycle iff the read value
	// equals expect.
	CmpxchgLocked(a vm.VAddr, expect, repl uint32) (read uint32, swapped bool, lat sim.Time, fault *vm.Fault)
}

// SpinMemPort is an optional MemPort capability: ports that can report
// access purity let the CPU fast-forward verified spin loops
// (tracecache.go). kernel.MemBox implements it over the cache.
type SpinMemPort interface {
	// SpinProbe returns two monotonic access counters: pure counts only
	// accesses with a fixed latency and no effect outside the port
	// (cache load hits); all counts every access. An interval over
	// which both advanced equally (and nonzero) touched memory in a
	// repeatable, side-effect-free way.
	SpinProbe() (pure, all uint64)
	// SpinAccount charges iters skipped loop iterations, of loads pure
	// loads each, to the port's statistics, keeping them bit-identical
	// with having retired the iterations literally.
	SpinAccount(iters, loads uint64)
}

// ReturnSentinel is the return address the harness pushes before starting
// a routine; RET to it halts the CPU cleanly.
const ReturnSentinel uint32 = 0xffff_fff0

// FaultAction tells the CPU what to do after a translation fault.
type FaultAction uint8

const (
	// FaultAbort halts the CPU and records the fault as its error.
	FaultAbort FaultAction = iota
	// FaultRetry re-executes the faulting instruction (possibly after
	// the handler froze the CPU while it repaired the mapping).
	FaultRetry
)

// Config holds CPU timing parameters.
type Config struct {
	CycleTime sim.Time // base cost per instruction
	TrapCost  sim.Time // extra cost of INT, IRET and IRQ entry
	// TakenBranchCycles is the extra cycles a taken jump/loop pays
	// (pipeline refill); not-taken branches cost the base cycle only.
	TakenBranchCycles int
	// CallRetCycles is the extra cycles of CALL and RET beyond their
	// stack memory traffic.
	CallRetCycles int
	// StringIterCycles is the extra cycles per string-op iteration
	// beyond its memory traffic.
	StringIterCycles int
	// MaxBatch bounds how many instructions the interpreter retires
	// inside a single engine event (the batching quantum). Values <= 1
	// select per-instruction stepping: one event per instruction, the
	// pre-batching behavior. Batching is a pure simulator optimization:
	// the CPU runs ahead on the engine clock between hazard boundaries
	// (pending event, fault, halt, freeze, quantum), so all simulated
	// results are bit-identical at any setting — the differential tests
	// in internal/core and internal/msg pin this.
	MaxBatch int
	// TraceCache enables the superblock trace cache (tracecache.go):
	// straight-line pure instruction runs are pre-decoded once and
	// dispatched as a unit, and MOV-to-memory terminators dispatch
	// through a specialized store path. Like MaxBatch this is a pure
	// simulator optimization with bit-identical results; it is inert
	// when MaxBatch <= 1 so per-instruction stepping stays the pristine
	// reference implementation.
	TraceCache bool
	// SpinFastForward models verified poll/backoff spin loops as
	// computed wait-states: instead of literally retiring iterations
	// that cannot exit until the next engine event, the CPU advances its
	// clock toward the event horizon in one step and charges the skipped
	// iterations to its counters (see tracecache.go for the proof
	// protocol). Requires TraceCache and a memory port implementing
	// SpinMemPort; with either missing it is inert. Off = the
	// differential mode that steps spins literally.
	SpinFastForward bool
}

// DefaultConfig models a 66 MHz i486-class CPU: one cycle per simple
// instruction, two extra on taken branches, two extra on call/ret, one
// extra per string iteration.
func DefaultConfig() Config {
	return Config{
		CycleTime:         15 * sim.Nanosecond,
		TrapCost:          300 * sim.Nanosecond,
		TakenBranchCycles: 2,
		CallRetCycles:     2,
		StringIterCycles:  1,
		MaxBatch:          64,
		TraceCache:        true,
		SpinFastForward:   true,
	}
}

// Counters are the measurement outputs of a run. Instructions executed in
// kernel mode (between INT/IRQ entry and IRET) count separately, and REP
// string iterations after the first are excluded from both — the paper
// excludes "per-byte copying costs" from its overhead figures.
type Counters struct {
	User     uint64
	Kernel   uint64
	RepIters uint64
	Traps    uint64
	IRQs     uint64
	Faults   uint64
}

// Total returns user + kernel instruction counts.
func (c Counters) Total() uint64 { return c.User + c.Kernel }

// CPU is one node's processor: an interpreter for assembled Programs
// that advances the shared simulation clock as it executes.
type CPU struct {
	Eng *sim.Engine
	Mem MemPort
	// dom tags root events (see SetDom); DomHost for a bare CPU.
	dom sim.Domain

	// R holds the eight general-purpose registers.
	R [8]uint32
	// Flags.
	ZF, SF, CF, OF, DF bool

	// Syscall handles INT vectors with no ISA handler installed.
	Syscall func(c *CPU, vector int)
	// FaultHandler decides what happens on a translation fault. Nil
	// means every fault aborts.
	FaultHandler func(c *CPU, f *vm.Fault) FaultAction
	// OnHalt fires when the CPU halts (HLT, sentinel RET, or abort).
	OnHalt func(c *CPU)

	cfg        Config
	prog       *Program
	eip        int
	kernelMode bool
	halted     bool
	frozen     bool
	started    bool
	repActive  bool // inside a REP sequence (iterations beyond the first)
	err        error
	isrs       map[int]int // vector -> instruction index
	goIRQ      map[int]func(c *CPU)
	pendingIRQ []int
	counters   Counters
	name       string
	scope      *obs.NodeScope // nil when metrics are disabled

	// Superblock trace cache (tracecache.go).
	traces  map[*Program]*progTrace
	cur     *progTrace  // trace for the loaded program, resolved lazily
	spinMem SpinMemPort // Mem's spin capability, nil if absent
	spin    spinState
}

// NewCPU builds a CPU over the given memory port.
func NewCPU(eng *sim.Engine, cfg Config, mem MemPort) *CPU {
	c := &CPU{Eng: eng, Mem: mem, cfg: cfg, isrs: make(map[int]int), goIRQ: make(map[int]func(*CPU))}
	c.spinMem, _ = mem.(SpinMemPort)
	return c
}

// SetName labels the CPU in diagnostics.
func (c *CPU) SetName(n string) { c.name = n }

// SetObs attaches the node's metrics scope (nil detaches). The CPU
// records batch lengths and hazard-break reasons; recording never
// changes simulated results.
func (c *CPU) SetObs(s *obs.NodeScope) { c.scope = s }

// InstallISR routes an interrupt/trap vector to an ISA handler label in
// the currently loaded program.
func (c *CPU) InstallISR(vector int, label string) {
	c.isrs[vector] = c.prog.MustEntry(label)
}

// InstallGoIRQ routes a hardware interrupt vector to a Go handler (used
// for kernel services that are not part of any measured fast path).
func (c *CPU) InstallGoIRQ(vector int, fn func(c *CPU)) { c.goIRQ[vector] = fn }

// Counters returns the current measurement counters.
func (c *CPU) Counters() Counters { return c.counters }

// ResetCounters zeroes the measurement counters.
func (c *CPU) ResetCounters() { c.counters = Counters{} }

// Halted reports whether the CPU has stopped.
func (c *CPU) Halted() bool { return c.halted }

// Err returns the error that aborted the CPU, if any.
func (c *CPU) Err() error { return c.err }

// Program returns the loaded program.
func (c *CPU) Program() *Program { return c.prog }

// EIP returns the current instruction index (diagnostics).
func (c *CPU) EIP() int { return c.eip }

// KernelMode reports whether the CPU is inside a trap/IRQ handler.
func (c *CPU) KernelMode() bool { return c.kernelMode }

// Reset returns the CPU to its just-built state: zeroed registers and
// flags, no program, no pending interrupts, zeroed counters. The memory
// port and the FaultHandler wired up at machine construction persist;
// harness-installed Syscall and OnHalt hooks are cleared. The caller is
// responsible for the engine: a started CPU has a step event pending.
func (c *CPU) Reset() {
	c.R = [8]uint32{}
	c.ZF, c.SF, c.CF, c.OF, c.DF = false, false, false, false, false
	c.Syscall = nil
	c.OnHalt = nil
	c.prog = nil
	c.eip = 0
	c.kernelMode = false
	c.halted = false
	c.frozen = false
	c.started = false
	c.repActive = false
	c.err = nil
	clear(c.isrs)
	clear(c.goIRQ)
	c.pendingIRQ = c.pendingIRQ[:0]
	c.counters = Counters{}
	c.FlushTraces()
}

// SetDom sets the event domain the CPU's root events (Start, Thaw,
// Resume, interrupt wakes) are tagged with — its node's domain in an
// assembled machine. Events scheduled mid-execution inherit it. The
// explicit tag keeps the canonical (time, domain, seq) event order
// independent of which event happened to fire before a harness call,
// which is what lets a partitioned machine replay the sequential order.
func (c *CPU) SetDom(d sim.Domain) { c.dom = d }

// Load installs a program without starting execution. Built
// superblocks for previously loaded programs are retained (keyed by
// *Program identity), so reloading a cached program reuses its trace.
func (c *CPU) Load(p *Program) {
	c.prog = p
	if c.isrs == nil {
		c.isrs = make(map[int]int)
	} else {
		clear(c.isrs)
	}
	c.cur = nil
}

// Start begins executing the loaded program at the given label. The
// caller should have set up ESP; Start pushes ReturnSentinel so the
// routine may finish with RET.
func (c *CPU) Start(entry string) error {
	if c.prog == nil {
		return fmt.Errorf("isa: no program loaded")
	}
	e, err := c.prog.Entry(entry)
	if err != nil {
		return err
	}
	c.eip = e
	c.halted, c.frozen, c.started, c.err = false, false, true, nil
	c.kernelMode = false
	c.repActive = false
	if _, f := c.push(ReturnSentinel); f != nil {
		return fmt.Errorf("isa: cannot push return sentinel: %w", f)
	}
	c.Eng.ScheduleAfterDom(c.dom, 0, c)
	return nil
}

// Freeze pauses execution after the current instruction; the kernel uses
// it while a fault repair or FIFO drain is outstanding.
func (c *CPU) Freeze() { c.frozen = true }

// Thaw resumes a frozen CPU.
func (c *CPU) Thaw() {
	if !c.frozen {
		return
	}
	c.frozen = false
	if c.started && !c.halted {
		c.Eng.ScheduleAfterDom(c.dom, 0, c)
	}
}

// Frozen reports whether the CPU is paused.
func (c *CPU) Frozen() bool { return c.frozen }

// RaiseIRQ queues a hardware interrupt; it dispatches before the next
// user-mode instruction.
func (c *CPU) RaiseIRQ(vector int) {
	c.pendingIRQ = append(c.pendingIRQ, vector)
	if c.started && !c.halted && !c.frozen {
		// Ensure a step is pending even if the CPU idles at a HLT-less
		// boundary (it always is while started, so this is belt and
		// braces for Go-handler reentry).
		c.Eng.ScheduleAfterDom(c.dom, 0, nopWake)
	}
}

// nopEvent is the shared do-nothing wake event RaiseIRQ schedules; a
// zero-size value converts to sim.Handler without allocating.
type nopEvent struct{}

func (nopEvent) Fire() {}

var nopWake sim.Handler = nopEvent{}

func (c *CPU) halt() {
	c.halted = true
	if c.OnHalt != nil {
		c.OnHalt(c)
	}
}

func (c *CPU) abort(err error) {
	c.err = err
	c.halt()
}

// Fire implements sim.Handler: the CPU itself is the schedulable step
// event, so advancing execution never allocates a closure.
func (c *CPU) Fire() { c.step() }

// step executes up to Config.MaxBatch instructions inside one engine
// event. The "local clock" the CPU runs ahead on IS the engine clock,
// advanced inline (Engine.AdvanceTo) between instructions: every memory,
// bus and NIC interaction reads Engine.Now synchronously, so arbitration,
// snoop timing and latencies are bit-identical to per-instruction
// stepping by construction. The batch yields back to the event loop at
// hazard boundaries:
//
//   - a pending engine event (or the edge of a RunUntil window) inside
//     the next instruction's time slot — the event may change anything
//     the CPU observes, so it must fire first;
//   - a translation fault (the retry reschedules, as before);
//   - HLT, sentinel RET, or abort;
//   - a freeze (Thaw reschedules);
//   - the MaxBatch quantum.
//
// Yielding schedules the CPU at the exact timestamp the next instruction
// would have started, before any intervening event fires, so the (at,
// seq) event order matches per-instruction stepping event for event.
func (c *CPU) step() {
	if c.halted || c.frozen || !c.started {
		return
	}
	quantum := c.cfg.MaxBatch
	if quantum < 1 {
		quantum = 1
	}
	// Resolve the loaded program's trace once per event; the batch loop
	// then dispatches over superblocks. Trace dispatch needs run-ahead
	// (quantum > 1): per-instruction stepping stays the untouched
	// reference path.
	var tr *progTrace
	if c.cfg.TraceCache && quantum > 1 {
		tr = c.cur
		if tr == nil || tr.prog != c.prog {
			tr = c.traceFor(c.prog)
			c.cur = tr
		}
	}
	spinFF := c.cfg.SpinFastForward && c.spinMem != nil
	batched := 0
	for {
		// Hardware interrupts dispatch at instruction boundaries, outside
		// handlers.
		if len(c.pendingIRQ) > 0 && !c.kernelMode {
			v := c.pendingIRQ[0]
			c.pendingIRQ = c.pendingIRQ[1:]
			c.dispatchIRQ(v)
			if c.halted {
				c.endBatch(batched, obs.CtrBatchBreakHalt)
				return
			}
			if c.frozen {
				c.endBatch(batched, obs.CtrBatchBreakFreeze)
				return
			}
		}
		if c.eip < 0 || c.eip >= len(c.prog.Instrs) {
			c.abort(fmt.Errorf("isa: %s: eip %d outside program %q", c.name, c.eip, c.prog.Name))
			c.endBatch(batched, obs.CtrBatchBreakHalt)
			return
		}
		var blk *sblock
		if tr != nil {
			blk = c.block(tr, c.eip)
			if blk.spin && spinFF {
				c.spinTick(blk)
			}
			// Pure-run dispatch: the whole run fits inside the quantum
			// and completes strictly before the next event and the run
			// bound — the same hazard conditions the literal loop tests
			// per instruction, evaluated once (every intermediate
			// completion time is below end, so one comparison subsumes
			// them all). Pure micro-ops touch nothing but registers and
			// flags, so no event, IRQ, fault, halt or freeze can appear
			// mid-run.
			if n := len(blk.pure); n > 0 && batched+n < quantum {
				end := c.Eng.Now() + blk.pureCost
				if end < c.Eng.NextEventAt() && end <= c.Eng.RunBound() {
					c.runPure(blk.pure)
					if c.kernelMode {
						c.counters.Kernel += uint64(n)
					} else {
						c.counters.User += uint64(n)
					}
					batched += n
					c.Eng.AdvanceTo(end)
					c.eip = blk.end
					if c.eip >= len(c.prog.Instrs) {
						continue // bounds abort at the loop top
					}
				}
			}
		}
		// Terminator dispatch: blk's fs/jcc describe the instruction at
		// blk.end, which is the current eip both when the pure run just
		// retired and when the block has no pure prefix.
		in := &c.prog.Instrs[c.eip]
		var cost sim.Time
		var fault *vm.Fault
		switch {
		case blk != nil && blk.end == c.eip && blk.fs.ok:
			cost, fault = c.execFastStore(&blk.fs)
		case blk != nil && blk.end == c.eip && blk.jcc.ok:
			cost = c.execFastJcc(&blk.jcc)
		default:
			cost, fault = c.execute(in)
		}
		if fault != nil {
			c.counters.Faults++
			action := FaultAbort
			if c.FaultHandler != nil {
				action = c.FaultHandler(c, fault)
			}
			if action == FaultAbort {
				c.abort(fmt.Errorf("isa: %s at %q#%d (%s): %w", c.name, c.prog.Name, c.eip, in, fault))
				c.endBatch(batched, obs.CtrBatchBreakHalt)
				return
			}
			// Retry: eip unchanged; the handler may have frozen us.
			if !c.halted && !c.frozen {
				c.Eng.ScheduleAfter(c.cfg.CycleTime, c)
			}
			c.endBatch(batched, obs.CtrBatchBreakFault)
			return
		}
		batched++
		if c.halted {
			c.endBatch(batched, obs.CtrBatchBreakHalt)
			return
		}
		if c.frozen {
			c.endBatch(batched, obs.CtrBatchBreakFreeze)
			return
		}
		if batched >= quantum {
			c.Eng.ScheduleAfter(cost, c)
			c.endBatch(batched, obs.CtrBatchBreakQuantum)
			return
		}
		next := c.Eng.Now() + cost
		if c.Eng.NextEventAt() <= next || next > c.Eng.RunBound() {
			c.Eng.ScheduleAfter(cost, c)
			c.endBatch(batched, obs.CtrBatchBreakEvent)
			return
		}
		c.Eng.AdvanceTo(next)
	}
}

// endBatch records one batch's telemetry at its yield point; nil-scope
// safe and allocation-free. Every yield also breaks the spin watcher's
// arm→verify window: events only fire while the CPU is yielded, so an
// unbroken window proves memory was untouched (tracecache.go).
func (c *CPU) endBatch(n int, why obs.Counter) {
	c.spin.broke = true
	c.scope.Observe(obs.HistBatchLen, uint64(n))
	c.scope.Inc(why)
}

func (c *CPU) dispatchIRQ(vector int) {
	c.counters.IRQs++
	if fn, ok := c.goIRQ[vector]; ok {
		fn(c)
		return
	}
	target, ok := c.isrs[vector]
	if !ok {
		c.abort(fmt.Errorf("isa: %s: unhandled IRQ %d", c.name, vector))
		return
	}
	if _, f := c.push(uint32(c.eip)); f != nil {
		c.abort(fmt.Errorf("isa: %s: IRQ stack push: %w", c.name, f))
		return
	}
	c.kernelMode = true
	c.eip = target
}

// count records one successfully executed instruction.
func (c *CPU) count(rep bool) {
	if rep && c.repActive {
		c.counters.RepIters++
		return
	}
	if c.kernelMode {
		c.counters.Kernel++
	} else {
		c.counters.User++
	}
}

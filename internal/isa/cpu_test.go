package isa

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/vm"
)

// flatMem is a fault-free MemPort over a flat buffer, with an optional
// fault window and a cmpxchg script.
type flatMem struct {
	buf      []byte
	badLo    vm.VAddr
	badHi    vm.VAddr
	badWrite bool // fault window applies to writes only
	readOnly map[vm.VPN]bool

	cmpxRead   uint32
	cmpxAccept bool
	cmpxAddr   vm.VAddr
	cmpxWrites []uint32
	loads      int
	stores     int
	cmpxOps    int
}

func newFlatMem() *flatMem {
	return &flatMem{buf: make([]byte, 1<<16), cmpxAccept: true, readOnly: map[vm.VPN]bool{}}
}

func (m *flatMem) fault(a vm.VAddr, write bool) *vm.Fault {
	if a >= m.badLo && a < m.badHi && (!m.badWrite || write) {
		return &vm.Fault{VA: a, Write: write, Reason: vm.NotPresent}
	}
	if write && m.readOnly[a.Page()] {
		return &vm.Fault{VA: a, Write: true, Reason: vm.Protection}
	}
	return nil
}

func (m *flatMem) Load(a vm.VAddr, size int) (uint32, sim.Time, *vm.Fault) {
	if f := m.fault(a, false); f != nil {
		return 0, 0, f
	}
	m.loads++
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(m.buf[int(a)+i]) << (8 * i)
	}
	return v, sim.Nanosecond, nil
}

func (m *flatMem) Store(a vm.VAddr, v uint32, size int) (sim.Time, *vm.Fault) {
	if f := m.fault(a, true); f != nil {
		return 0, f
	}
	m.stores++
	for i := 0; i < size; i++ {
		m.buf[int(a)+i] = byte(v >> (8 * i))
	}
	return sim.Nanosecond, nil
}

func (m *flatMem) CmpxchgLocked(a vm.VAddr, expect, repl uint32) (uint32, bool, sim.Time, *vm.Fault) {
	if f := m.fault(a, true); f != nil {
		return 0, false, 0, f
	}
	m.cmpxOps++
	m.cmpxAddr = a
	if m.cmpxRead == expect && m.cmpxAccept {
		m.cmpxWrites = append(m.cmpxWrites, repl)
		return m.cmpxRead, true, sim.Nanosecond, nil
	}
	return m.cmpxRead, false, sim.Nanosecond, nil
}

// SpinProbe/SpinAccount implement SpinMemPort: flatMem loads have a
// fixed latency and no side effects, so they all count as pure; stores
// and locked ops do not.
func (m *flatMem) SpinProbe() (pure, all uint64) {
	return uint64(m.loads), uint64(m.loads + m.stores + m.cmpxOps)
}

func (m *flatMem) SpinAccount(iters, loads uint64) {
	m.loads += int(iters * loads)
}

func (m *flatMem) w32(a vm.VAddr, v uint32) {
	for i := 0; i < 4; i++ {
		m.buf[int(a)+i] = byte(v >> (8 * i))
	}
}

func (m *flatMem) r32(a vm.VAddr) uint32 {
	var v uint32
	for i := 0; i < 4; i++ {
		v |= uint32(m.buf[int(a)+i]) << (8 * i)
	}
	return v
}

// run assembles and executes src to completion, returning the CPU.
func run(t *testing.T, src string, mem *flatMem, setup func(*CPU)) *CPU {
	t.Helper()
	eng := sim.NewEngine()
	c := NewCPU(eng, DefaultConfig(), mem)
	c.SetName("test")
	p, err := Assemble("test", src, map[string]int64{"STK": 0x8000})
	if err != nil {
		t.Fatal(err)
	}
	c.Load(p)
	c.R[ESP] = 0x8000
	if setup != nil {
		setup(c)
	}
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	eng.Drain(1_000_000)
	if !c.Halted() {
		t.Fatalf("did not halt (eip=%d)", c.EIP())
	}
	return c
}

func TestALUAndFlags(t *testing.T) {
	mem := newFlatMem()
	c := run(t, `
main:
	mov	eax, 10
	sub	eax, 10		; ZF
	hlt
`, mem, nil)
	if !c.ZF || c.SF || c.CF {
		t.Fatalf("flags after 10-10: ZF=%v SF=%v CF=%v", c.ZF, c.SF, c.CF)
	}

	c = run(t, `
main:
	mov	eax, 3
	sub	eax, 5		; borrow: CF, SF
	hlt
`, mem, nil)
	if c.R[EAX] != 0xfffffffe || !c.CF || !c.SF || c.ZF {
		t.Fatalf("3-5: eax=%#x CF=%v SF=%v", c.R[EAX], c.CF, c.SF)
	}

	c = run(t, `
main:
	mov	eax, 0x7fffffff
	add	eax, 1		; signed overflow
	hlt
`, mem, nil)
	if !c.OF || !c.SF || c.CF {
		t.Fatalf("overflow: OF=%v SF=%v CF=%v", c.OF, c.SF, c.CF)
	}

	c = run(t, `
main:
	mov	eax, -1
	add	eax, 1		; carry out, zero
	hlt
`, mem, nil)
	if !c.CF || !c.ZF || c.OF {
		t.Fatalf("carry: CF=%v ZF=%v OF=%v", c.CF, c.ZF, c.OF)
	}
}

func TestIncDecPreserveCF(t *testing.T) {
	c := run(t, `
main:
	mov	eax, -1
	add	eax, 1		; sets CF
	mov	ebx, 5
	inc	ebx		; must not clear CF
	hlt
`, newFlatMem(), nil)
	if !c.CF || c.R[EBX] != 6 {
		t.Fatal("inc clobbered CF")
	}
}

func TestShifts(t *testing.T) {
	c := run(t, `
main:
	mov	eax, 1
	shl	eax, 31
	mov	ebx, 0x80000000
	shr	ebx, 31
	mov	ecx, 0x80000000
	sar	ecx, 31
	hlt
`, newFlatMem(), nil)
	if c.R[EAX] != 0x80000000 || c.R[EBX] != 1 || c.R[ECX] != 0xffffffff {
		t.Fatalf("shifts: %#x %#x %#x", c.R[EAX], c.R[EBX], c.R[ECX])
	}
}

func TestConditionalJumps(t *testing.T) {
	// Signed vs unsigned comparisons.
	c := run(t, `
main:
	mov	eax, -1
	cmp	eax, 1
	jl	signed_less	; -1 < 1 signed
	hlt
signed_less:
	mov	ebx, 1
	cmp	eax, 1
	ja	unsigned_above	; 0xffffffff > 1 unsigned
	hlt
unsigned_above:
	mov	ecx, 1
	hlt
`, newFlatMem(), nil)
	if c.R[EBX] != 1 || c.R[ECX] != 1 {
		t.Fatalf("branches: ebx=%d ecx=%d", c.R[EBX], c.R[ECX])
	}
}

func TestLoopInstruction(t *testing.T) {
	c := run(t, `
main:
	mov	ecx, 5
	xor	eax, eax
body:	add	eax, 2
	loop	body
	hlt
`, newFlatMem(), nil)
	if c.R[EAX] != 10 || c.R[ECX] != 0 {
		t.Fatalf("loop: eax=%d ecx=%d", c.R[EAX], c.R[ECX])
	}
}

func TestMemoryOperands(t *testing.T) {
	mem := newFlatMem()
	mem.w32(0x100, 0x11223344)
	c := run(t, `
main:
	mov	esi, 0x100
	mov	eax, [esi]
	mov	[esi+4], eax
	mov	dword [esi+8], 99
	movzx	ebx, byte [esi]
	movzx	ecx, word [esi+2]
	lea	edx, [esi+ecx*2+6]
	hlt
`, mem, nil)
	if c.R[EAX] != 0x11223344 || mem.r32(0x104) != 0x11223344 || mem.r32(0x108) != 99 {
		t.Fatal("mem moves")
	}
	if c.R[EBX] != 0x44 || c.R[ECX] != 0x1122 {
		t.Fatalf("movzx: %#x %#x", c.R[EBX], c.R[ECX])
	}
	if c.R[EDX] != 0x100+0x1122*2+6 {
		t.Fatalf("lea: %#x", c.R[EDX])
	}
}

func TestCallRetAndStack(t *testing.T) {
	c := run(t, `
main:
	mov	eax, 1
	call	sub1
	add	eax, 100
	hlt
sub1:
	push	ebx
	mov	ebx, 10
	add	eax, ebx
	pop	ebx
	ret
`, newFlatMem(), nil)
	if c.R[EAX] != 111 {
		t.Fatalf("eax=%d", c.R[EAX])
	}
	if c.R[ESP] != 0x8000-4 {
		// The sentinel frame stays (HLT, not RET, ended the run).
		t.Fatalf("esp=%#x", c.R[ESP])
	}
}

func TestSentinelReturnHalts(t *testing.T) {
	c := run(t, `
main:
	mov	eax, 7
	ret
`, newFlatMem(), nil)
	if !c.Halted() || c.Err() != nil || c.R[EAX] != 7 {
		t.Fatal("sentinel return")
	}
	// Neither the RET nor a HLT is counted.
	if c.Counters().User != 1 {
		t.Fatalf("counted %d, want 1 (just the mov)", c.Counters().User)
	}
}

func TestXchg(t *testing.T) {
	mem := newFlatMem()
	mem.w32(0x200, 55)
	c := run(t, `
main:
	mov	eax, 1
	mov	ebx, 2
	xchg	eax, ebx
	mov	esi, 0x200
	xchg	ecx, [esi]
	hlt
`, mem, nil)
	if c.R[EAX] != 2 || c.R[EBX] != 1 {
		t.Fatal("reg xchg")
	}
	if c.R[ECX] != 55 || mem.r32(0x200) != 0 {
		t.Fatal("mem xchg")
	}
}

func TestRepMovsCountingRule(t *testing.T) {
	mem := newFlatMem()
	for i := 0; i < 40; i++ {
		mem.buf[0x300+i] = byte(i + 1)
	}
	c := run(t, `
main:
	mov	esi, 0x300
	mov	edi, 0x400
	mov	ecx, 10
	cld
	rep movsd
	hlt
`, mem, nil)
	for i := 0; i < 40; i++ {
		if mem.buf[0x400+i] != byte(i+1) {
			t.Fatalf("copy byte %d", i)
		}
	}
	// 4 setup + 1 for the rep instruction itself; 9 iterations excluded.
	cnt := c.Counters()
	if cnt.User != 5 {
		t.Fatalf("user count %d, want 5", cnt.User)
	}
	if cnt.RepIters != 9 {
		t.Fatalf("rep iters %d, want 9", cnt.RepIters)
	}
	if c.R[ECX] != 0 || c.R[ESI] != 0x328 || c.R[EDI] != 0x428 {
		t.Fatal("string registers")
	}
}

func TestRepWithZeroCount(t *testing.T) {
	c := run(t, `
main:
	mov	esi, 0x300
	mov	edi, 0x400
	xor	ecx, ecx
	rep movsd
	hlt
`, newFlatMem(), nil)
	if c.R[EDI] != 0x400 {
		t.Fatal("rep with ecx=0 moved data")
	}
	if c.Counters().User != 4 {
		t.Fatalf("count %d", c.Counters().User)
	}
}

func TestStosAndDirectionFlag(t *testing.T) {
	mem := newFlatMem()
	c := run(t, `
main:
	mov	eax, 0xabcd1234
	mov	edi, 0x500
	mov	ecx, 3
	cld
	rep stosd
	std
	mov	edi, 0x520
	stosd
	hlt
`, mem, nil)
	for i := 0; i < 3; i++ {
		if mem.r32(vm.VAddr(0x500+4*i)) != 0xabcd1234 {
			t.Fatal("stos")
		}
	}
	if c.R[EDI] != 0x520-4 {
		t.Fatalf("std direction: edi=%#x", c.R[EDI])
	}
}

func TestCmpxchgSemantics(t *testing.T) {
	mem := newFlatMem()
	mem.cmpxRead = 0
	c := run(t, `
main:
	xor	eax, eax
	mov	ecx, 64
	lock cmpxchg [0x600], ecx
	hlt
`, mem, nil)
	if !c.ZF || len(mem.cmpxWrites) != 1 || mem.cmpxWrites[0] != 64 {
		t.Fatal("successful cmpxchg")
	}
	// Busy engine: read value lands in EAX, ZF clear.
	mem = newFlatMem()
	mem.cmpxRead = 0x99
	c = run(t, `
main:
	xor	eax, eax
	mov	ecx, 64
	lock cmpxchg [0x600], ecx
	hlt
`, mem, nil)
	if c.ZF || c.R[EAX] != 0x99 || len(mem.cmpxWrites) != 0 {
		t.Fatal("failed cmpxchg")
	}
}

func TestFaultAbortsWithoutHandler(t *testing.T) {
	mem := newFlatMem()
	mem.badLo, mem.badHi = 0x7000, 0x7100
	c := run(t, `
main:
	mov	eax, [0x7004]
	hlt
`, mem, nil)
	if c.Err() == nil {
		t.Fatal("fault did not abort")
	}
}

func TestFaultRetrySemantics(t *testing.T) {
	mem := newFlatMem()
	mem.badLo, mem.badHi, mem.badWrite = 0x7000, 0x7100, true
	eng := sim.NewEngine()
	c := NewCPU(eng, DefaultConfig(), mem)
	p := MustAssemble("t", `
main:
	mov	ebx, 5
	mov	dword [0x7004], 42
	hlt
`, nil)
	c.Load(p)
	c.R[ESP] = 0x8000
	retries := 0
	c.FaultHandler = func(cpu *CPU, f *vm.Fault) FaultAction {
		retries++
		if f.VA != 0x7004 || !f.Write {
			t.Fatalf("fault %+v", f)
		}
		// Repair the mapping after two retries.
		if retries == 2 {
			mem.badHi = 0
		}
		return FaultRetry
	}
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	eng.Drain(100000)
	if c.Err() != nil || !c.Halted() {
		t.Fatalf("err=%v", c.Err())
	}
	if mem.r32(0x7004) != 42 {
		t.Fatal("store did not retry")
	}
	if retries != 2 {
		t.Fatalf("retries=%d", retries)
	}
	// Faulting attempts are not counted as executed instructions.
	if c.Counters().User != 2 {
		t.Fatalf("count=%d want 2", c.Counters().User)
	}
	if c.Counters().Faults != 2 {
		t.Fatalf("faults=%d", c.Counters().Faults)
	}
}

func TestFreezeDuringFault(t *testing.T) {
	mem := newFlatMem()
	mem.readOnly[5] = true // page 5 read-only (stack lives in page 7)
	eng := sim.NewEngine()
	c := NewCPU(eng, DefaultConfig(), mem)
	p := MustAssemble("t", `
main:
	mov	dword [0x5004], 1
	mov	eax, 9
	hlt
`, nil)
	c.Load(p)
	c.R[ESP] = 0x8000
	c.FaultHandler = func(cpu *CPU, f *vm.Fault) FaultAction {
		cpu.Freeze()
		eng.After(100*sim.Microsecond, func() {
			delete(mem.readOnly, 5)
			cpu.Thaw()
		})
		return FaultRetry
	}
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	eng.Drain(100000)
	if c.Err() != nil || c.R[EAX] != 9 || mem.r32(0x5004) != 1 {
		t.Fatalf("freeze/thaw repair failed: err=%v eax=%d", c.Err(), c.R[EAX])
	}
	if eng.Now() < 100*sim.Microsecond {
		t.Fatal("repair delay not observed")
	}
}

func TestINTWithISAHandler(t *testing.T) {
	eng := sim.NewEngine()
	mem := newFlatMem()
	c := NewCPU(eng, DefaultConfig(), mem)
	p := MustAssemble("t", `
main:
	mov	eax, 5
	int	64
	add	eax, 1
	hlt
handler:
	add	eax, 100	; kernel-mode work
	iret
`, nil)
	c.Load(p)
	c.InstallISR(64, "handler")
	c.R[ESP] = 0x8000
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	eng.Drain(100000)
	if c.R[EAX] != 106 {
		t.Fatalf("eax=%d", c.R[EAX])
	}
	cnt := c.Counters()
	// User: mov, int, add = 3. Kernel: add, iret = 2.
	if cnt.User != 3 || cnt.Kernel != 2 || cnt.Traps != 1 {
		t.Fatalf("counters %+v", cnt)
	}
}

func TestINTWithGoSyscall(t *testing.T) {
	eng := sim.NewEngine()
	mem := newFlatMem()
	c := NewCPU(eng, DefaultConfig(), mem)
	p := MustAssemble("t", `
main:
	mov	eax, 3
	int	0x40
	hlt
`, nil)
	c.Load(p)
	c.R[ESP] = 0x8000
	var gotVector int
	c.Syscall = func(cpu *CPU, vector int) {
		gotVector = vector
		cpu.R[EBX] = cpu.R[EAX] * 2
	}
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	eng.Drain(100000)
	if gotVector != 0x40 || c.R[EBX] != 6 {
		t.Fatalf("syscall: vector=%d ebx=%d", gotVector, c.R[EBX])
	}
}

func TestIRQDispatchAndOrdering(t *testing.T) {
	eng := sim.NewEngine()
	mem := newFlatMem()
	c := NewCPU(eng, DefaultConfig(), mem)
	p := MustAssemble("t", `
main:
	mov	ecx, 100
spin:	dec	ecx
	jnz	spin
	hlt
isr:
	inc	ebx
	iret
`, nil)
	c.Load(p)
	c.InstallISR(0x21, "isr")
	c.R[ESP] = 0x8000
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	// Raise two IRQs mid-run.
	eng.After(200*sim.Nanosecond, func() { c.RaiseIRQ(0x21) })
	eng.After(400*sim.Nanosecond, func() { c.RaiseIRQ(0x21) })
	eng.Drain(100000)
	if c.R[EBX] != 2 {
		t.Fatalf("isr ran %d times", c.R[EBX])
	}
	if c.R[ECX] != 0 {
		t.Fatal("main loop did not complete")
	}
	if c.Counters().IRQs != 2 {
		t.Fatalf("irq count %d", c.Counters().IRQs)
	}
}

func TestGoIRQHandler(t *testing.T) {
	eng := sim.NewEngine()
	mem := newFlatMem()
	c := NewCPU(eng, DefaultConfig(), mem)
	p := MustAssemble("t", `
main:
	mov	ecx, 50
spin:	dec	ecx
	jnz	spin
	hlt
`, nil)
	c.Load(p)
	c.R[ESP] = 0x8000
	fired := 0
	c.InstallGoIRQ(7, func(cpu *CPU) { fired++ })
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	eng.After(100*sim.Nanosecond, func() { c.RaiseIRQ(7) })
	eng.Drain(100000)
	if fired != 1 {
		t.Fatalf("go irq fired %d", fired)
	}
}

func TestSaveRestoreContextSwitch(t *testing.T) {
	eng := sim.NewEngine()
	mem := newFlatMem()
	c := NewCPU(eng, DefaultConfig(), mem)
	p1 := MustAssemble("p1", `
main:
	mov	eax, 1
a:	add	eax, 1
	cmp	eax, 1000
	jne	a
	hlt
`, nil)
	c.Load(p1)
	c.R[ESP] = 0x8000
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	// Let it run a little, then switch out, run another program, switch
	// back.
	eng.RunFor(2 * sim.Microsecond)
	saved := c.Save()
	if saved.Halted {
		t.Fatal("p1 finished too fast for the test")
	}
	midway := c.R[EAX]

	p2 := MustAssemble("p2", `
main:
	mov	ebx, 7
	hlt
`, nil)
	c.Load(p2)
	c.R = [8]uint32{}
	c.R[ESP] = 0x8000
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	eng.Drain(100000)
	if c.R[EBX] != 7 {
		t.Fatal("p2 failed")
	}

	c.Restore(saved)
	c.Resume()
	eng.Drain(1000000)
	if !c.Halted() || c.R[EAX] != 1000 {
		t.Fatalf("p1 after restore: eax=%d", c.R[EAX])
	}
	if midway >= 1000 {
		t.Fatal("test vacuous")
	}
}

func TestTimeAdvancesWithExecution(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCPU(eng, DefaultConfig(), newFlatMem())
	p := MustAssemble("t", `
main:
	mov	ecx, 100
l:	dec	ecx
	jnz	l
	hlt
`, nil)
	c.Load(p)
	c.R[ESP] = 0x8000
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	eng.Drain(100000)
	// ~201 instructions at 15ns each.
	if eng.Now() < 200*15*sim.Nanosecond {
		t.Fatalf("simulated time %v too small", eng.Now())
	}
}

func TestRunawayEIPAborts(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCPU(eng, DefaultConfig(), newFlatMem())
	p := MustAssemble("t", "main:\n nop\n nop", nil) // no HLT: falls off the end
	c.Load(p)
	c.R[ESP] = 0x8000
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	eng.Drain(100000)
	if c.Err() == nil {
		t.Fatal("running off the program end should abort")
	}
}

func TestCarryChainArithmetic(t *testing.T) {
	// 64-bit add via ADD/ADC.
	c := run(t, `
main:
	mov	eax, 0xffffffff	; low word
	mov	ebx, 1		; high word
	add	eax, 1		; -> 0, CF
	adc	ebx, 0		; -> 2
	hlt
`, newFlatMem(), nil)
	if c.R[EAX] != 0 || c.R[EBX] != 2 {
		t.Fatalf("adc: %#x %#x", c.R[EAX], c.R[EBX])
	}
	// 64-bit subtract via SUB/SBB.
	c = run(t, `
main:
	mov	eax, 0		; low
	mov	ebx, 5		; high
	sub	eax, 1		; borrow
	sbb	ebx, 0		; -> 4
	hlt
`, newFlatMem(), nil)
	if c.R[EAX] != 0xffffffff || c.R[EBX] != 4 {
		t.Fatalf("sbb: %#x %#x", c.R[EAX], c.R[EBX])
	}
}

func TestNegNot(t *testing.T) {
	c := run(t, `
main:
	mov	eax, 5
	neg	eax
	mov	ebx, 0
	neg	ebx		; CF clear for zero
	mov	ecx, 0xf0f0f0f0
	not	ecx
	hlt
`, newFlatMem(), nil)
	if c.R[EAX] != 0xfffffffb || c.R[ECX] != 0x0f0f0f0f {
		t.Fatalf("neg/not: %#x %#x", c.R[EAX], c.R[ECX])
	}
	if c.CF {
		t.Fatal("neg 0 must clear CF")
	}
}

func TestPushVariants(t *testing.T) {
	mem := newFlatMem()
	mem.w32(0x100, 777)
	c := run(t, `
main:
	push	42		; immediate
	push	dword [0x100]	; memory
	pop	eax
	pop	ebx
	hlt
`, mem, nil)
	if c.R[EAX] != 777 || c.R[EBX] != 42 {
		t.Fatalf("push variants: %d %d", c.R[EAX], c.R[EBX])
	}
}

func TestWordStores(t *testing.T) {
	mem := newFlatMem()
	c := run(t, `
main:
	mov	eax, 0x1234abcd
	mov	word [0x200], eax
	mov	byte [0x204], eax
	movzx	ebx, word [0x200]
	movzx	ecx, byte [0x204]
	hlt
`, mem, nil)
	if c.R[EBX] != 0xabcd || c.R[ECX] != 0xcd {
		t.Fatalf("word/byte stores: %#x %#x", c.R[EBX], c.R[ECX])
	}
	if mem.r32(0x200)&0xffff0000 != 0 {
		t.Fatal("word store spilled beyond 16 bits")
	}
}

func TestShiftByRegister(t *testing.T) {
	c := run(t, `
main:
	mov	eax, 1
	mov	ecx, 4
	shl	eax, ecx
	hlt
`, newFlatMem(), nil)
	if c.R[EAX] != 16 {
		t.Fatalf("shl by reg: %d", c.R[EAX])
	}
}

func TestJSAndJNS(t *testing.T) {
	c := run(t, `
main:
	mov	eax, 1
	sub	eax, 2		; negative
	js	neg_taken
	hlt
neg_taken:
	mov	ebx, 1
	add	eax, 10		; positive
	jns	pos_taken
	hlt
pos_taken:
	mov	ecx, 1
	hlt
`, newFlatMem(), nil)
	if c.R[EBX] != 1 || c.R[ECX] != 1 {
		t.Fatal("sign jumps")
	}
}

func TestTakenBranchCostsMore(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCPU(eng, DefaultConfig(), newFlatMem())
	p := MustAssemble("t", `
main:
	cmp	eax, 0
	jne	skip	; not taken (eax==0)
	nop
skip:	hlt
`, nil)
	c.Load(p)
	c.R[ESP] = 0x8000
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	eng.Drain(1000)
	notTaken := eng.Now()

	eng2 := sim.NewEngine()
	c2 := NewCPU(eng2, DefaultConfig(), newFlatMem())
	p2 := MustAssemble("t", `
main:
	cmp	eax, 0
	je	skip	; taken
	nop
skip:	hlt
`, nil)
	c2.Load(p2)
	c2.R[ESP] = 0x8000
	if err := c2.Start("main"); err != nil {
		t.Fatal(err)
	}
	eng2.Drain(1000)
	// The taken path skips the NOP (one instr fewer) yet pays the
	// branch penalty (+2 cycles), netting +1 cycle.
	if eng2.Now() <= notTaken-DefaultConfig().CycleTime {
		t.Fatalf("taken %v vs not-taken %v: branch penalty missing", eng2.Now(), notTaken)
	}
}

// Package isa implements a small x86-subset instruction set — an
// assembler and a cycle-counting interpreter.
//
// The paper measures message-passing software overhead in CPU
// instructions on i386-family processors (Table 1). To reproduce that
// metric directly rather than by analogy, every measured primitive in
// this repository is written in this ISA and executed on the simulated
// machine; the interpreter counts executed instructions exactly as the
// paper does (spin loops measured with their condition already
// satisfied, REP string iterations excluded as "per-byte copying
// costs").
//
// The subset covers what the primitives need: the eight 386 GPRs, MOV
// in all width/direction combinations, the common ALU group, Jcc,
// CALL/RET/PUSH/POP, string moves with REP, INT/IRET, and the locked
// CMPXCHG that the deliberate-update command protocol of §4.3 is built
// on.
package isa

import (
	"fmt"
	"strings"
)

// Reg names a 32-bit general-purpose register, in x86 encoding order.
type Reg uint8

// The eight i386 general-purpose registers.
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
	numRegs
	// NoReg marks an absent base or index register in a memory operand.
	NoReg Reg = 0xff
)

var regNames = [...]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

func (r Reg) String() string {
	if r < numRegs {
		return regNames[r]
	}
	if r == NoReg {
		return "<noreg>"
	}
	return fmt.Sprintf("Reg(%d)", uint8(r))
}

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	NOP Op = iota
	MOV
	MOVZX // zero-extending load of a sub-word memory operand
	LEA
	ADD
	ADC
	SUB
	SBB
	INC
	DEC
	NEG
	NOT
	AND
	OR
	XOR
	SHL
	SHR
	SAR
	CMP
	TEST
	JMP
	JE
	JNE
	JL
	JLE
	JG
	JGE
	JB
	JBE
	JA
	JAE
	JS
	JNS
	LOOP
	CALL
	RET
	PUSH
	POP
	XCHG
	CMPXCHG
	MOVS // string move, width from Instr.Size
	STOS // string store, width from Instr.Size
	CLD
	STD
	INT
	IRET
	HLT
	numOps
)

var opNames = [...]string{
	"nop", "mov", "movzx", "lea", "add", "adc", "sub", "sbb", "inc", "dec",
	"neg", "not", "and", "or", "xor", "shl", "shr", "sar", "cmp", "test",
	"jmp", "je", "jne", "jl", "jle", "jg", "jge", "jb", "jbe", "ja", "jae",
	"js", "jns", "loop", "call", "ret", "push", "pop", "xchg", "cmpxchg",
	"movs", "stos", "cld", "std", "int", "iret", "hlt",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsJump reports whether the opcode transfers control to a label.
func (o Op) IsJump() bool { return (o >= JMP && o <= LOOP) || o == CALL }

// OpKind classifies an operand.
type OpKind uint8

// Operand kinds.
const (
	KindNone OpKind = iota
	KindReg
	KindImm
	KindMem
)

// Operand is one instruction operand. Memory operands follow the x86
// addressing form [Base + Index*Scale + Disp].
type Operand struct {
	Kind  OpKind
	Reg   Reg
	Imm   int32
	Base  Reg
	Index Reg
	Scale uint8
	Disp  int32
}

// R returns a register operand.
func R(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// I returns an immediate operand.
func I(v int32) Operand { return Operand{Kind: KindImm, Imm: v} }

// M returns a [base+disp] memory operand.
func M(base Reg, disp int32) Operand {
	return Operand{Kind: KindMem, Base: base, Index: NoReg, Scale: 1, Disp: disp}
}

// MAbs returns an absolute-address memory operand.
func MAbs(addr int32) Operand {
	return Operand{Kind: KindMem, Base: NoReg, Index: NoReg, Scale: 1, Disp: addr}
}

// MIdx returns a [base+index*scale+disp] memory operand.
func MIdx(base, index Reg, scale uint8, disp int32) Operand {
	return Operand{Kind: KindMem, Base: base, Index: index, Scale: scale, Disp: disp}
}

func (o Operand) String() string {
	switch o.Kind {
	case KindNone:
		return ""
	case KindReg:
		return o.Reg.String()
	case KindImm:
		return fmt.Sprintf("%d", o.Imm)
	case KindMem:
		var b strings.Builder
		b.WriteByte('[')
		first := true
		if o.Base != NoReg {
			b.WriteString(o.Base.String())
			first = false
		}
		if o.Index != NoReg {
			if !first {
				b.WriteByte('+')
			}
			fmt.Fprintf(&b, "%s*%d", o.Index, o.Scale)
			first = false
		}
		if o.Disp != 0 || first {
			if !first && o.Disp >= 0 {
				b.WriteByte('+')
			}
			fmt.Fprintf(&b, "%d", o.Disp)
		}
		b.WriteByte(']')
		return b.String()
	}
	return "<bad operand>"
}

// Instr is one decoded instruction.
type Instr struct {
	Op     Op
	Size   int  // operand width in bytes for memory accesses: 1, 2 or 4
	Lock   bool // LOCK prefix (atomic bus tenure)
	Rep    bool // REP prefix on string ops
	Dst    Operand
	Src    Operand
	Target int    // resolved instruction index for jump/call targets
	Label  string // original label text of the target (diagnostics)
	Line   int    // 1-based source line (diagnostics)
}

func (in Instr) String() string {
	var b strings.Builder
	if in.Lock {
		b.WriteString("lock ")
	}
	if in.Rep {
		b.WriteString("rep ")
	}
	b.WriteString(in.Op.String())
	if in.Op == MOVS || in.Op == STOS {
		switch in.Size {
		case 1:
			b.WriteByte('b')
		case 2:
			b.WriteByte('w')
		default:
			b.WriteByte('d')
		}
		return b.String()
	}
	if in.Op.IsJump() {
		fmt.Fprintf(&b, " %s", in.Label)
		return b.String()
	}
	if in.Dst.Kind != KindNone {
		b.WriteByte(' ')
		writeOperand(&b, in.Dst, in.Size)
	}
	if in.Src.Kind != KindNone {
		b.WriteString(", ")
		writeOperand(&b, in.Src, in.Size)
	}
	return b.String()
}

func writeOperand(b *strings.Builder, o Operand, size int) {
	if o.Kind == KindMem && size != 4 && size != 0 {
		if size == 1 {
			b.WriteString("byte ")
		} else {
			b.WriteString("word ")
		}
	}
	b.WriteString(o.String())
}

// Program is an assembled routine: instructions plus its label table.
type Program struct {
	Instrs []Instr
	Labels map[string]int
	Name   string
}

// Entry returns the instruction index of a label.
func (p *Program) Entry(label string) (int, error) {
	i, ok := p.Labels[label]
	if !ok {
		return 0, fmt.Errorf("isa: program %q has no label %q", p.Name, label)
	}
	return i, nil
}

// MustEntry is Entry that panics on unknown labels.
func (p *Program) MustEntry(label string) int {
	i, err := p.Entry(label)
	if err != nil {
		panic(err)
	}
	return i
}

// Listing renders the program as assembly text with instruction indices,
// for debugging and golden tests.
func (p *Program) Listing() string {
	byIndex := make(map[int][]string)
	for l, i := range p.Labels {
		byIndex[i] = append(byIndex[i], l)
	}
	var b strings.Builder
	for i, in := range p.Instrs {
		for _, l := range byIndex[i] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "%4d    %s\n", i, in.String())
	}
	for _, l := range byIndex[len(p.Instrs)] {
		fmt.Fprintf(&b, "%s:\n", l)
	}
	return b.String()
}

package isa

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// Superblock trace cache.
//
// The batched interpreter (cpu.go) still pays a full decode-dispatch
// per instruction: operand kind switches, effective-address composition
// and size defaulting on every retirement. This file caches that work.
// Each program position gets a lazily built superblock: the longest
// run of "pure" instructions starting there (register/immediate-only
// operations that touch no memory, raise no fault, and cannot halt,
// trap or branch), pre-lowered to a flat micro-op array, plus metadata
// about the terminator that follows the run — in particular the
// dominant MOV-to-memory store (the §5 automatic-update fast path) is
// pre-resolved into a fastStore so its dispatch is one specialized
// call: store → translate (micro-TLB) → cache → bus write → NIC snoop.
//
// Keying. Programs come from AssembleCached, which returns one shared
// immutable *Program per source text, so *Program identity is the
// "program version" and a per-CPU map[*Program]*progTrace is a sound
// cache. CPU.Reset flushes the map (Machine.Reset reaches it through
// that); remapped data pages are invisible here because superblocks
// cache decode only — data access still goes through translation every
// time (see kernel.MemBox and its generation-tagged micro-TLB).
//
// Correctness. A pure run executes only when it fits inside the batch
// quantum and strictly before the engine's next event and run bound —
// exactly the per-instruction hazard conditions the literal loop would
// have tested, evaluated once for the whole run (the run's intermediate
// completion times are all below the run's end, so one comparison
// subsumes them). Pure instructions cannot observe or perturb anything
// outside the register file, so retiring them back-to-back with a
// single clock advance is bit-identical to stepping them. Anything not
// provably pure falls through to the literal interpreter.
//
// Spin fast-forward (computed wait-states) also lives here; see the
// spinState section below.

// maxRun bounds how many instructions a superblock scan considers.
const maxRun = 48

// regNone mirrors NoReg for the uint8-packed uop operand fields.
const regNone = uint8(NoReg)

// uopKind enumerates the specialized pure micro-ops. Operand forms are
// fused into the kind so dispatch is a single flat switch.
type uopKind uint8

const (
	uNop uopKind = iota
	uCld
	uStd
	uMovRR
	uMovRI
	uLea
	uAddRR
	uAddRI
	uAdcRR
	uAdcRI
	uSubRR
	uSubRI
	uSbbRR
	uSbbRI
	uAndRR
	uAndRI
	uOrRR
	uOrRI
	uXorRR
	uXorRI
	uCmpRR
	uCmpRI
	uTestRR
	uTestRI
	uIncR
	uDecR
	uNegR
	uNotR
	uShlR
	uShlI
	uShrR
	uShrI
	uSarR
	uSarI
	uXchgRR
)

// uop is one pre-decoded pure micro-op. d and s are register numbers;
// for uLea, s/x/sc/imm hold base, index, scale and displacement.
type uop struct {
	k   uopKind
	d   uint8
	s   uint8
	x   uint8
	sc  uint8
	imm uint32
}

// fastStore is a pre-decoded MOV-to-memory terminator: [base+disp] ←
// reg or immediate, with no index register. src is regNone for the
// immediate form.
type fastStore struct {
	ok   bool
	base uint8
	src  uint8
	size uint8
	disp uint32
	imm  uint32
}

// fastJcc is a pre-decoded direct jump terminator (JMP or a condition
// code; LOOP and CALL keep the generic path).
type fastJcc struct {
	ok     bool
	op     Op
	target int
}

// sblock is the superblock anchored at one program position.
type sblock struct {
	built    bool
	spin     bool   // position heads a recognized spin idiom
	spinLen  uint16 // instructions per spin iteration (incl. branch)
	end      int    // position of the terminator: start + len(pure)
	pure     []uop
	pureCost sim.Time
	fs       fastStore // terminator store, when it is one
	jcc      fastJcc   // terminator jump, when it is one
}

// progTrace is the per-program block array; blocks build on demand.
type progTrace struct {
	prog   *Program
	blocks []sblock
}

// traceFor returns (building if needed) the trace for p.
func (c *CPU) traceFor(p *Program) *progTrace {
	if t, ok := c.traces[p]; ok {
		return t
	}
	if c.traces == nil {
		c.traces = make(map[*Program]*progTrace)
	}
	t := &progTrace{prog: p, blocks: make([]sblock, len(p.Instrs))}
	c.traces[p] = t
	return t
}

// block returns the superblock at pc, building it on first touch.
func (c *CPU) block(t *progTrace, pc int) *sblock {
	b := &t.blocks[pc]
	if !b.built {
		t.build(c, pc)
		c.scope.Inc(obs.CtrTraceMisses)
	} else {
		c.scope.Inc(obs.CtrTraceHits)
	}
	return b
}

// FlushTraces drops every built superblock and disarms the spin
// watcher. Reset calls it; programs are immutable (AssembleCached), so
// nothing else needs to.
func (c *CPU) FlushTraces() {
	if len(c.traces) > 0 {
		clear(c.traces)
		c.scope.Inc(obs.CtrTraceFlushes)
	}
	c.cur = nil
	c.spin = spinState{}
}

// build populates the superblock at pc: the pure prefix, the terminator
// store if the next instruction is one, and the spin shape.
func (t *progTrace) build(c *CPU, pc int) {
	b := &t.blocks[pc]
	b.built = true
	instrs := t.prog.Instrs
	i := pc
	for i < len(instrs) && i-pc < maxRun {
		u, ok := pureUop(&instrs[i])
		if !ok {
			break
		}
		b.pure = append(b.pure, u)
		i++
	}
	b.end = i
	b.pureCost = sim.Time(len(b.pure)) * c.cfg.CycleTime
	if i < len(instrs) {
		b.fs = fastStoreOf(&instrs[i])
		if in := &instrs[i]; !b.fs.ok && in.Op >= JMP && in.Op <= JNS {
			b.jcc = fastJcc{ok: true, op: in.Op, target: in.Target}
		}
	}
	b.spin, b.spinLen = spinShape(instrs, pc)
}

// pureUop lowers in to a micro-op if it is pure: registers and
// immediates only, no memory, no fault, no flow control, no halt. Size
// suffixes are irrelevant for register operands (readOp/writeOp ignore
// them), so they do not block lowering.
func pureUop(in *Instr) (uop, bool) {
	if in.Rep || in.Lock {
		return uop{}, false
	}
	rr := in.Dst.Kind == KindReg && in.Src.Kind == KindReg
	ri := in.Dst.Kind == KindReg && in.Src.Kind == KindImm
	d, s, imm := uint8(in.Dst.Reg), uint8(in.Src.Reg), uint32(in.Src.Imm)
	two := func(krr, kri uopKind) (uop, bool) {
		if rr {
			return uop{k: krr, d: d, s: s}, true
		}
		if ri {
			return uop{k: kri, d: d, imm: imm}, true
		}
		return uop{}, false
	}
	switch in.Op {
	case NOP:
		return uop{k: uNop}, true
	case CLD:
		return uop{k: uCld}, true
	case STD:
		return uop{k: uStd}, true
	case MOV, MOVZX:
		// MOVZX on a register source reads the full register, exactly
		// like MOV (sub-word semantics apply to memory only).
		return two(uMovRR, uMovRI)
	case LEA:
		if in.Dst.Kind == KindReg && in.Src.Kind == KindMem {
			return uop{k: uLea, d: d, s: uint8(in.Src.Base), x: uint8(in.Src.Index),
				sc: in.Src.Scale, imm: uint32(in.Src.Disp)}, true
		}
	case ADD:
		return two(uAddRR, uAddRI)
	case ADC:
		return two(uAdcRR, uAdcRI)
	case SUB:
		return two(uSubRR, uSubRI)
	case SBB:
		return two(uSbbRR, uSbbRI)
	case AND:
		return two(uAndRR, uAndRI)
	case OR:
		return two(uOrRR, uOrRI)
	case XOR:
		return two(uXorRR, uXorRI)
	case CMP:
		return two(uCmpRR, uCmpRI)
	case TEST:
		return two(uTestRR, uTestRI)
	case SHL:
		return two(uShlR, uShlI)
	case SHR:
		return two(uShrR, uShrI)
	case SAR:
		return two(uSarR, uSarI)
	case INC, DEC, NEG, NOT:
		if in.Dst.Kind == KindReg {
			switch in.Op {
			case INC:
				return uop{k: uIncR, d: d}, true
			case DEC:
				return uop{k: uDecR, d: d}, true
			case NEG:
				return uop{k: uNegR, d: d}, true
			case NOT:
				return uop{k: uNotR, d: d}, true
			}
		}
	case XCHG:
		if rr {
			return uop{k: uXchgRR, d: d, s: s}, true
		}
	}
	return uop{}, false
}

// fastStoreOf pre-decodes a MOV-to-memory instruction with no index
// register into a fastStore; anything else yields ok=false.
func fastStoreOf(in *Instr) fastStore {
	if in.Op != MOV || in.Rep || in.Lock ||
		in.Dst.Kind != KindMem || in.Dst.Index != NoReg {
		return fastStore{}
	}
	fs := fastStore{ok: true, base: uint8(in.Dst.Base), disp: uint32(in.Dst.Disp), size: 4}
	if in.Size != 0 {
		fs.size = uint8(in.Size)
	}
	switch in.Src.Kind {
	case KindReg:
		fs.src = uint8(in.Src.Reg)
	case KindImm:
		fs.src = regNone
		fs.imm = uint32(in.Src.Imm)
	default:
		return fastStore{}
	}
	return fs
}

// spinShape recognizes the canonical poll idiom at pc: a body of pure
// micro-ops and side-effect-free memory reads (MOV/MOVZX into a
// register, CMP/TEST against memory), closed by a jump back to pc. At
// least one memory read is required — a loop that consults only
// registers is a counting loop, not a wait, and arming the watcher on
// it would be pure overhead.
func spinShape(instrs []Instr, pc int) (bool, uint16) {
	j := pc
	loads := false
	for j < len(instrs) && j-pc < maxRun {
		in := &instrs[j]
		if _, ok := pureUop(in); ok {
			j++
			continue
		}
		if spinSafeLoad(in) {
			loads = true
			j++
			continue
		}
		break
	}
	if !loads || j == pc || j >= len(instrs) {
		return false, 0
	}
	if in := &instrs[j]; in.Op >= JMP && in.Op <= JNS && in.Target == pc {
		return true, uint16(j - pc + 1)
	}
	return false, 0
}

// spinSafeLoad reports whether in only reads memory: no store, no
// flag-independent side effect, no flow control.
func spinSafeLoad(in *Instr) bool {
	if in.Rep || in.Lock {
		return false
	}
	switch in.Op {
	case MOV, MOVZX:
		return in.Dst.Kind == KindReg && in.Src.Kind == KindMem
	case CMP, TEST:
		return in.Dst.Kind == KindMem || in.Src.Kind == KindMem
	}
	return false
}

// runPure retires a pure micro-op run. No memory, no faults, no
// branches: only the register file and arithmetic flags change, through
// the same helpers the literal interpreter uses.
func (c *CPU) runPure(uops []uop) {
	for i := range uops {
		u := &uops[i]
		switch u.k {
		case uNop:
		case uCld:
			c.DF = false
		case uStd:
			c.DF = true
		case uMovRR:
			c.R[u.d] = c.R[u.s]
		case uMovRI:
			c.R[u.d] = u.imm
		case uLea:
			a := u.imm
			if u.s != regNone {
				a += c.R[u.s]
			}
			if u.x != regNone {
				a += c.R[u.x] * uint32(u.sc)
			}
			c.R[u.d] = a
		case uAddRR:
			c.R[u.d] = c.add(c.R[u.d], c.R[u.s], false)
		case uAddRI:
			c.R[u.d] = c.add(c.R[u.d], u.imm, false)
		case uAdcRR:
			c.R[u.d] = c.add(c.R[u.d], c.R[u.s], c.CF)
		case uAdcRI:
			c.R[u.d] = c.add(c.R[u.d], u.imm, c.CF)
		case uSubRR:
			c.R[u.d] = c.sub(c.R[u.d], c.R[u.s], false)
		case uSubRI:
			c.R[u.d] = c.sub(c.R[u.d], u.imm, false)
		case uSbbRR:
			c.R[u.d] = c.sub(c.R[u.d], c.R[u.s], c.CF)
		case uSbbRI:
			c.R[u.d] = c.sub(c.R[u.d], u.imm, c.CF)
		case uAndRR:
			c.R[u.d] = c.logic(c.R[u.d] & c.R[u.s])
		case uAndRI:
			c.R[u.d] = c.logic(c.R[u.d] & u.imm)
		case uOrRR:
			c.R[u.d] = c.logic(c.R[u.d] | c.R[u.s])
		case uOrRI:
			c.R[u.d] = c.logic(c.R[u.d] | u.imm)
		case uXorRR:
			c.R[u.d] = c.logic(c.R[u.d] ^ c.R[u.s])
		case uXorRI:
			c.R[u.d] = c.logic(c.R[u.d] ^ u.imm)
		case uCmpRR:
			c.sub(c.R[u.d], c.R[u.s], false)
		case uCmpRI:
			c.sub(c.R[u.d], u.imm, false)
		case uTestRR:
			c.logic(c.R[u.d] & c.R[u.s])
		case uTestRI:
			c.logic(c.R[u.d] & u.imm)
		case uIncR:
			cf := c.CF // INC/DEC preserve CF
			c.R[u.d] = c.add(c.R[u.d], 1, false)
			c.CF = cf
		case uDecR:
			cf := c.CF
			c.R[u.d] = c.sub(c.R[u.d], 1, false)
			c.CF = cf
		case uNegR:
			a := c.R[u.d]
			c.R[u.d] = c.sub(0, a, false)
			c.CF = a != 0
		case uNotR:
			c.R[u.d] = ^c.R[u.d] // NOT sets no flags
		case uShlR:
			c.R[u.d] = c.shift(SHL, c.R[u.d], c.R[u.s])
		case uShlI:
			c.R[u.d] = c.shift(SHL, c.R[u.d], u.imm)
		case uShrR:
			c.R[u.d] = c.shift(SHR, c.R[u.d], c.R[u.s])
		case uShrI:
			c.R[u.d] = c.shift(SHR, c.R[u.d], u.imm)
		case uSarR:
			c.R[u.d] = c.shift(SAR, c.R[u.d], c.R[u.s])
		case uSarI:
			c.R[u.d] = c.shift(SAR, c.R[u.d], u.imm)
		case uXchgRR:
			c.R[u.d], c.R[u.s] = c.R[u.s], c.R[u.d]
		}
	}
}

// ---------------------------------------------------------------------
// Spin fast-forward: computed wait-states.
//
// The §5 primitives end in poll loops — kcrecv_spin in msg/baseline.go,
// the double-buffer flag polls, the NX/2 ring-space check — that burn
// host time retiring iterations whose only exit is a memory change made
// by some future engine event. The watcher below proves, at runtime,
// that a loop iteration is a fixed point, then advances the clock to
// just short of the next event horizon in one step, charging the
// iterations it skipped to the instruction and cache counters as if
// they had retired.
//
// The proof is a snapshot-verify protocol, not static analysis:
//
//  1. Arm: at a spin head, snapshot registers, flags, the memory port's
//     purity counters (SpinProbe) and the clock.
//  2. Verify: at the NEXT arrival at the same head, require that (a) no
//     batch yield happened in between (endBatch sets spin.broke; events
//     can only fire when the CPU yields, so an unbroken window means
//     memory was untouched by anyone); (b) every access the iteration
//     made was a pure cache load hit (pureΔ == allΔ > 0): fixed
//     latency, no bus, no visible effect; (c) registers and flags are
//     back to the snapshot — the iteration is a fixed point.
//  3. Skip: with memory frozen until the next event and the iteration a
//     deterministic fixed point of cost iterCost, the literal machine
//     would replay it exactly every iterCost until the horizon. Advance
//     k = floor(avail/iterCost)-1 iterations at once — always landing
//     at a head-arrival instant strictly before the horizon, with at
//     least one literal iteration left, so the resumed literal
//     execution (yield points, event interleaving, final timestamps) is
//     instruction-for-instruction identical to never having skipped.
//
// A loop that fails verification spinFailLimit times in a row (a
// counting loop over memory, a command-space poll whose status read is
// a bus transaction, a line bouncing between hit and snoop-invalidate)
// has its spin flag cleared so the watcher stops paying for it.
// ---------------------------------------------------------------------

// spinFailLimit is how many consecutive failed verifications demote a
// candidate loop to plain literal execution.
const spinFailLimit = 4

// spinState is the per-CPU spin watcher.
type spinState struct {
	prog     *Program
	head     int
	armed    bool
	broke    bool // a batch yield happened since arming
	fails    uint8
	snapF    uint8 // packed flags
	snapR    [8]uint32
	snapPure uint64
	snapAll  uint64
	snapAt   sim.Time
}

// packFlags packs the five flags for snapshot comparison.
func (c *CPU) packFlags() uint8 {
	var f uint8
	if c.ZF {
		f |= 1
	}
	if c.SF {
		f |= 2
	}
	if c.CF {
		f |= 4
	}
	if c.OF {
		f |= 8
	}
	if c.DF {
		f |= 16
	}
	return f
}

// spinArm snapshots the fixed-point candidate state at a loop head.
func (c *CPU) spinArm() {
	s := &c.spin
	s.prog, s.head = c.prog, c.eip
	s.armed, s.broke = true, false
	s.snapR = c.R
	s.snapF = c.packFlags()
	s.snapPure, s.snapAll = c.spinMem.SpinProbe()
	s.snapAt = c.Eng.Now()
}

// spinTick runs at every arrival at a spin head: verify the previous
// arm and skip ahead if the loop proved to be a pure wait, then re-arm.
func (c *CPU) spinTick(blk *sblock) {
	s := &c.spin
	if !s.armed || s.broke || s.prog != c.prog || s.head != c.eip {
		c.spinArm()
		return
	}
	pure, all := c.spinMem.SpinProbe()
	loads := all - s.snapAll
	iterCost := c.Eng.Now() - s.snapAt
	if loads == 0 || pure-s.snapPure != loads || iterCost <= 0 ||
		c.R != s.snapR || c.packFlags() != s.snapF {
		s.fails++
		if s.fails >= spinFailLimit {
			blk.spin = false
			s.armed = false
			s.fails = 0
			return
		}
		c.spinArm()
		return
	}
	s.fails = 0
	if horizon := c.Eng.Horizon(); horizon < sim.Forever {
		if k := int64((horizon-c.Eng.Now())/iterCost) - 1; k > 0 {
			skipped := sim.Time(k) * iterCost
			c.Eng.AdvanceTo(c.Eng.Now() + skipped)
			n := uint64(k) * uint64(blk.spinLen)
			if c.kernelMode {
				c.counters.Kernel += n
			} else {
				c.counters.User += n
			}
			c.spinMem.SpinAccount(uint64(k), loads)
			c.scope.Inc(obs.CtrSpinFastForwards)
			c.scope.Add(obs.CtrSpinSkippedPs, uint64(skipped))
			c.scope.Observe(obs.HistSpinSkipped, n)
		}
	}
	c.spinArm()
}

package isa

import (
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Predecode cache. Assembling a routine is pure — the resulting Program
// depends only on (name, source, symbol bindings) — and Programs are
// immutable once assembled (the interpreter never writes instruction
// fields; CPUs keep per-run state like eip outside the Program). So
// repeated runs of the same routine, as in the Table-1 harnesses that
// re-assemble send/receive routines every iteration, can share one
// decoded Program: AssembleCached decodes on first use and returns the
// cached object — safe across CPUs and across goroutines — thereafter.

var asmCache sync.Map // cache key (string) -> *Program

// asmCacheKey identifies a program: name, source text, and every symbol
// binding (sorted, so map iteration order cannot split the cache).
func asmCacheKey(name, src string, syms map[string]int64) string {
	var b strings.Builder
	b.Grow(len(name) + len(src) + 32*len(syms))
	b.WriteString(name)
	b.WriteByte(0)
	b.WriteString(src)
	names := make([]string, 0, len(syms))
	for s := range syms {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		b.WriteByte(0)
		b.WriteString(s)
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(syms[s], 10))
	}
	return b.String()
}

// AssembleCached is Assemble behind a process-wide cache keyed by
// program identity (name, source, symbol bindings). The returned
// Program is shared: callers must treat it as read-only, which every
// in-tree caller already does. Assembly errors are not cached — they
// are cheap and rare.
func AssembleCached(name, src string, syms map[string]int64) (*Program, error) {
	key := asmCacheKey(name, src, syms)
	if p, ok := asmCache.Load(key); ok {
		return p.(*Program), nil
	}
	p, err := Assemble(name, src, syms)
	if err != nil {
		return nil, err
	}
	// Two goroutines may race to assemble the same program; both results
	// are equivalent, and LoadOrStore makes every caller see one winner.
	actual, _ := asmCache.LoadOrStore(key, p)
	return actual.(*Program), nil
}

// MustAssembleCached is AssembleCached that panics on error.
func MustAssembleCached(name, src string, syms map[string]int64) *Program {
	p, err := AssembleCached(name, src, syms)
	if err != nil {
		panic(err)
	}
	return p
}

package isa

import (
	"math/rand"
	"strings"
	"testing"
)

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble("t", `
; a comment
start:
	mov	eax, 5
	add	eax, ebx
	mov	[esi+8], eax
	mov	eax, [edi+ecx*4+12]
	cmp	eax, 0
	jne	start
	hlt
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 7 {
		t.Fatalf("%d instrs", len(p.Instrs))
	}
	if p.MustEntry("start") != 0 {
		t.Fatal("label index")
	}
	in := p.Instrs[3]
	if in.Op != MOV || in.Src.Kind != KindMem || in.Src.Base != EDI ||
		in.Src.Index != ECX || in.Src.Scale != 4 || in.Src.Disp != 12 {
		t.Fatalf("sib operand %+v", in.Src)
	}
	if p.Instrs[5].Target != 0 {
		t.Fatal("jump target")
	}
}

func TestAssembleSymbols(t *testing.T) {
	p, err := Assemble("t", `
	mov	esi, BUF
	mov	eax, [BUF+4]
	mov	ebx, [esi+OFF]
	hlt
`, map[string]int64{"BUF": 0x1000, "OFF": 64})
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Src.Imm != 0x1000 {
		t.Fatal("symbol immediate")
	}
	if p.Instrs[1].Src.Disp != 0x1004 || p.Instrs[1].Src.Base != NoReg {
		t.Fatalf("absolute mem %+v", p.Instrs[1].Src)
	}
	if p.Instrs[2].Src.Base != ESI || p.Instrs[2].Src.Disp != 64 {
		t.Fatal("symbol displacement")
	}
}

func TestAssembleSizesAndPrefixes(t *testing.T) {
	p, err := Assemble("t", `
	mov	byte [esi], 7
	mov	word [esi], 7
	mov	dword [esi], 7
	movzx	eax, word [esi]
	lock cmpxchg [edi], ecx
	rep movsd
	rep movsb
	movsw
	stosd
	hlt
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{1, 2, 4}
	for i, want := range sizes {
		if p.Instrs[i].Size != want {
			t.Fatalf("instr %d size %d want %d", i, p.Instrs[i].Size, want)
		}
	}
	if p.Instrs[3].Op != MOVZX || p.Instrs[3].Size != 2 {
		t.Fatal("movzx")
	}
	if !p.Instrs[4].Lock || p.Instrs[4].Op != CMPXCHG {
		t.Fatal("lock cmpxchg")
	}
	if !p.Instrs[5].Rep || p.Instrs[5].Op != MOVS || p.Instrs[5].Size != 4 {
		t.Fatal("rep movsd")
	}
	if p.Instrs[6].Size != 1 || p.Instrs[7].Size != 2 {
		t.Fatal("string widths")
	}
	if p.Instrs[8].Op != STOS {
		t.Fatal("stosd")
	}
}

func TestAssembleNegativeAndHex(t *testing.T) {
	p, err := Assemble("t", `
	mov	eax, -1
	mov	ebx, 0xff
	mov	ecx, [esi-8]
	and	edx, -4
	hlt
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Src.Imm != -1 || p.Instrs[1].Src.Imm != 255 {
		t.Fatal("immediates")
	}
	if p.Instrs[2].Src.Disp != -8 {
		t.Fatal("negative displacement")
	}
	if p.Instrs[3].Src.Imm != -4 {
		t.Fatal("negative mask")
	}
}

func TestLabelOnSameLine(t *testing.T) {
	p, err := Assemble("t", "loop: dec ecx\n jnz loop\n hlt", nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.MustEntry("loop") != 0 || p.Instrs[1].Target != 0 {
		t.Fatal("inline label")
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []string{
		"bogus eax, 1",           // unknown mnemonic
		"mov eax",                // missing operand
		"mov 5, eax",             // immediate destination
		"mov [esi], [edi]",       // mem-to-mem
		"jmp",                    // jump without label
		"jne nowhere\nhlt",       // undefined label
		"mov eax, [esi",          // unbalanced bracket
		"dup: nop\ndup: nop",     // duplicate label
		"mov eax, nosuchsym",     // unknown symbol
		"lea eax, ebx",           // lea needs mem
		"cmpxchg eax, ecx",       // cmpxchg needs mem dst
		"mov eax, [esi+edi+ebp]", // three registers
		"int eax",                // int needs immediate
	}
	for _, src := range cases {
		if _, err := Assemble("t", src, nil); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestListingRoundTrip(t *testing.T) {
	src := `
entry:
	mov	eax, 1
	jne	entry
	rep movsd
	hlt
`
	p, err := Assemble("t", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := p.Listing()
	for _, want := range []string{"entry:", "mov eax, 1", "jne entry", "rep movsd", "hlt"} {
		if !strings.Contains(l, want) {
			t.Fatalf("listing missing %q:\n%s", want, l)
		}
	}
}

func TestJccAliases(t *testing.T) {
	p, err := Assemble("t", "x: jz x\n jnz x\n jnae x\n jnb x\n hlt", nil)
	if err != nil {
		t.Fatal(err)
	}
	wants := []Op{JE, JNE, JB, JAE}
	for i, w := range wants {
		if p.Instrs[i].Op != w {
			t.Fatalf("alias %d: %v want %v", i, p.Instrs[i].Op, w)
		}
	}
}

func TestAssemblerNeverPanicsOnGarbage(t *testing.T) {
	// Robustness: arbitrary input must produce a program or an error,
	// never a panic.
	rng := rand.New(rand.NewSource(5))
	tokens := []string{
		"mov", "add", "jmp", "lock", "rep", "eax", "ecx", "[esi", "esi]",
		"[eax+ebx*4]", ",", ":", "label", "0x", "-", "12", "dword", "byte",
		"cmpxchg", "hlt", ";comment", "\n", "\t", "movsd", "int", "*8",
	}
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			b.WriteString(tokens[rng.Intn(len(tokens))])
			if rng.Intn(3) == 0 {
				b.WriteByte(' ')
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", b.String(), r)
				}
			}()
			_, _ = Assemble("fuzz", b.String(), nil)
		}()
	}
}

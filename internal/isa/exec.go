package isa

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vm"
)

// effAddr computes the effective virtual address of a memory operand.
func (c *CPU) effAddr(o Operand) vm.VAddr {
	a := uint32(o.Disp)
	if o.Base != NoReg {
		a += c.R[o.Base]
	}
	if o.Index != NoReg {
		a += c.R[o.Index] * uint32(o.Scale)
	}
	return vm.VAddr(a)
}

// readOp evaluates an operand for reading.
func (c *CPU) readOp(o Operand, size int) (uint32, sim.Time, *vm.Fault) {
	switch o.Kind {
	case KindReg:
		return c.R[o.Reg], 0, nil
	case KindImm:
		return uint32(o.Imm), 0, nil
	case KindMem:
		return c.Mem.Load(c.effAddr(o), size)
	}
	panic("isa: read of empty operand")
}

// writeOp stores a result into an operand.
func (c *CPU) writeOp(o Operand, v uint32, size int) (sim.Time, *vm.Fault) {
	switch o.Kind {
	case KindReg:
		c.R[o.Reg] = v
		return 0, nil
	case KindMem:
		return c.Mem.Store(c.effAddr(o), v, size)
	}
	panic("isa: write of non-writable operand")
}

func (c *CPU) push(v uint32) (sim.Time, *vm.Fault) {
	sp := c.R[ESP] - 4
	t, f := c.Mem.Store(vm.VAddr(sp), v, 4)
	if f != nil {
		return t, f
	}
	c.R[ESP] = sp
	return t, nil
}

func (c *CPU) pop() (uint32, sim.Time, *vm.Fault) {
	v, t, f := c.Mem.Load(vm.VAddr(c.R[ESP]), 4)
	if f != nil {
		return 0, t, f
	}
	c.R[ESP] += 4
	return v, t, nil
}

func (c *CPU) setZS(v uint32) {
	c.ZF = v == 0
	c.SF = int32(v) < 0
}

func (c *CPU) add(a, b uint32, carryIn bool) uint32 {
	ci := uint32(0)
	if carryIn {
		ci = 1
	}
	r := a + b + ci
	c.CF = uint64(a)+uint64(b)+uint64(ci) > 0xffffffff
	c.OF = (a^r)&(b^r)&0x80000000 != 0
	c.setZS(r)
	return r
}

func (c *CPU) sub(a, b uint32, borrowIn bool) uint32 {
	bi := uint32(0)
	if borrowIn {
		bi = 1
	}
	r := a - b - bi
	c.CF = uint64(a) < uint64(b)+uint64(bi)
	c.OF = (a^b)&(a^r)&0x80000000 != 0
	c.setZS(r)
	return r
}

func (c *CPU) logic(r uint32) uint32 {
	c.CF, c.OF = false, false
	c.setZS(r)
	return r
}

// shift applies SHL/SHR/SAR result-and-flag semantics; the flags change
// only for nonzero shift counts. Shared by the interpreter and the
// superblock dispatcher (tracecache.go) so the semantics live once.
func (c *CPU) shift(op Op, a, b uint32) uint32 {
	n := b & 31
	if n == 0 {
		return a
	}
	var r uint32
	switch op {
	case SHL:
		c.CF = a&(1<<(32-n)) != 0
		r = a << n
	case SHR:
		c.CF = a&(1<<(n-1)) != 0
		r = a >> n
	case SAR:
		c.CF = a&(1<<(n-1)) != 0
		r = uint32(int32(a) >> n)
	}
	c.OF = false
	c.setZS(r)
	return r
}

// execFastStore retires a pre-decoded MOV-to-memory terminator — the
// dominant store→bus-snoop dispatch of §5 workloads — with operand
// decode, effective-address shape and size resolution done once at
// superblock build (tracecache.go). Cost model, counter update, eip
// advance and the fault-retry contract (architectural state unchanged
// on fault) are identical to execute() on the same instruction.
func (c *CPU) execFastStore(fs *fastStore) (sim.Time, *vm.Fault) {
	cost := c.cfg.CycleTime
	a := fs.disp
	if fs.base != regNone {
		a += c.R[fs.base]
	}
	v := fs.imm
	if fs.src != regNone {
		v = c.R[fs.src]
	}
	t, f := c.Mem.Store(vm.VAddr(a), v, int(fs.size))
	if f != nil {
		return cost + t, f
	}
	cost += t
	c.count(false)
	c.eip++
	return cost, nil
}

// execFastJcc retires a pre-decoded direct jump terminator: same
// condition evaluation, costs, counting and eip update as execute(),
// minus the operand plumbing. Jumps cannot fault.
func (c *CPU) execFastJcc(fj *fastJcc) sim.Time {
	cost := c.cfg.CycleTime
	next := c.eip + 1
	if c.condition(fj.op) {
		next = fj.target
		cost += sim.Time(c.cfg.TakenBranchCycles) * c.cfg.CycleTime
	}
	c.count(false)
	c.eip = next
	return cost
}

func (c *CPU) condition(op Op) bool {
	switch op {
	case JMP:
		return true
	case JE:
		return c.ZF
	case JNE:
		return !c.ZF
	case JL:
		return c.SF != c.OF
	case JGE:
		return c.SF == c.OF
	case JLE:
		return c.ZF || c.SF != c.OF
	case JG:
		return !c.ZF && c.SF == c.OF
	case JB:
		return c.CF
	case JAE:
		return !c.CF
	case JBE:
		return c.CF || c.ZF
	case JA:
		return !c.CF && !c.ZF
	case JS:
		return c.SF
	case JNS:
		return !c.SF
	}
	panic(fmt.Sprintf("isa: not a condition: %s", op))
}

// execute runs one instruction, returning its time cost. On a fault,
// architectural state is unchanged (register updates are ordered after
// all memory accesses succeed) so the instruction can be retried.
func (c *CPU) execute(in *Instr) (sim.Time, *vm.Fault) {
	cost := c.cfg.CycleTime
	next := c.eip + 1
	size := in.Size
	if size == 0 {
		size = 4
	}

	switch in.Op {
	case NOP:
	case CLD:
		c.DF = false
	case STD:
		c.DF = true
	case HLT:
		// The harness terminator: not counted, it is not part of any
		// measured primitive.
		c.halt()
		return cost, nil

	case MOV:
		v, t, f := c.readOp(in.Src, size)
		if f != nil {
			return cost + t, f
		}
		cost += t
		// Sub-word loads into registers zero-extend: this dialect has no
		// partial registers (use "movzx" in source text for clarity).
		t, f = c.writeOp(in.Dst, v, size)
		if f != nil {
			return cost + t, f
		}
		cost += t

	case MOVZX:
		v, t, f := c.readOp(in.Src, size)
		if f != nil {
			return cost + t, f
		}
		cost += t
		c.R[in.Dst.Reg] = v

	case LEA:
		c.R[in.Dst.Reg] = uint32(c.effAddr(in.Src))

	case ADD, ADC, SUB, SBB, AND, OR, XOR, CMP, TEST:
		a, t, f := c.readOp(in.Dst, size)
		if f != nil {
			return cost + t, f
		}
		cost += t
		b, t, f := c.readOp(in.Src, size)
		if f != nil {
			return cost + t, f
		}
		cost += t
		var r uint32
		write := true
		switch in.Op {
		case ADD:
			r = c.add(a, b, false)
		case ADC:
			r = c.add(a, b, c.CF)
		case SUB:
			r = c.sub(a, b, false)
		case SBB:
			r = c.sub(a, b, c.CF)
		case AND:
			r = c.logic(a & b)
		case OR:
			r = c.logic(a | b)
		case XOR:
			r = c.logic(a ^ b)
		case CMP:
			c.sub(a, b, false)
			write = false
		case TEST:
			c.logic(a & b)
			write = false
		}
		if write {
			t, f = c.writeOp(in.Dst, r, size)
			if f != nil {
				return cost + t, f
			}
			cost += t
		}

	case INC, DEC, NEG, NOT:
		a, t, f := c.readOp(in.Dst, size)
		if f != nil {
			return cost + t, f
		}
		cost += t
		var r uint32
		switch in.Op {
		case INC:
			cf := c.CF // INC/DEC preserve CF
			r = c.add(a, 1, false)
			c.CF = cf
		case DEC:
			cf := c.CF
			r = c.sub(a, 1, false)
			c.CF = cf
		case NEG:
			r = c.sub(0, a, false)
			c.CF = a != 0
		case NOT:
			r = ^a // NOT sets no flags
		}
		t, f = c.writeOp(in.Dst, r, size)
		if f != nil {
			return cost + t, f
		}
		cost += t

	case SHL, SHR, SAR:
		a, t, f := c.readOp(in.Dst, size)
		if f != nil {
			return cost + t, f
		}
		cost += t
		b, t, f := c.readOp(in.Src, size)
		if f != nil {
			return cost + t, f
		}
		cost += t
		r := c.shift(in.Op, a, b)
		t, f = c.writeOp(in.Dst, r, size)
		if f != nil {
			return cost + t, f
		}
		cost += t

	case JMP, JE, JNE, JL, JLE, JG, JGE, JB, JBE, JA, JAE, JS, JNS:
		if c.condition(in.Op) {
			next = in.Target
			cost += sim.Time(c.cfg.TakenBranchCycles) * c.cfg.CycleTime
		}

	case LOOP:
		c.R[ECX]-- // LOOP does not affect flags
		if c.R[ECX] != 0 {
			next = in.Target
			cost += sim.Time(c.cfg.TakenBranchCycles) * c.cfg.CycleTime
		}

	case CALL:
		cost += sim.Time(c.cfg.CallRetCycles) * c.cfg.CycleTime
		t, f := c.push(uint32(next))
		if f != nil {
			return cost + t, f
		}
		cost += t
		next = in.Target

	case RET:
		cost += sim.Time(c.cfg.CallRetCycles) * c.cfg.CycleTime
		v, t, f := c.pop()
		if f != nil {
			return cost + t, f
		}
		cost += t
		if v == ReturnSentinel {
			// Returning to the harness: like HLT, not counted.
			c.halt()
			return cost, nil
		}
		next = int(v)

	case PUSH:
		v, t, f := c.readOp(in.Dst, size)
		if f != nil {
			return cost + t, f
		}
		cost += t
		t, f = c.push(v)
		if f != nil {
			return cost + t, f
		}
		cost += t

	case POP:
		v, t, f := c.pop()
		if f != nil {
			return cost + t, f
		}
		cost += t
		t, f = c.writeOp(in.Dst, v, size)
		if f != nil {
			return cost + t, f
		}
		cost += t

	case XCHG:
		a, t, f := c.readOp(in.Dst, size)
		if f != nil {
			return cost + t, f
		}
		cost += t
		b, t, f := c.readOp(in.Src, size)
		if f != nil {
			return cost + t, f
		}
		cost += t
		t, f = c.writeOp(in.Dst, b, size)
		if f != nil {
			return cost + t, f
		}
		cost += t
		t, f = c.writeOp(in.Src, a, size)
		if f != nil {
			return cost + t, f
		}
		cost += t

	case CMPXCHG:
		// The §4.3 primitive: one locked bus tenure containing a read
		// cycle and, iff the read matches EAX, a write cycle. ZF reports
		// success; on failure EAX receives the read value.
		read, swapped, t, f := c.Mem.CmpxchgLocked(c.effAddr(in.Dst), c.R[EAX], c.R[in.Src.Reg])
		if f != nil {
			return cost + t, f
		}
		cost += t
		c.ZF = swapped
		if !swapped {
			c.R[EAX] = read
		}

	case MOVS, STOS:
		iterCost, done, f := c.stringOp(in, size)
		if f != nil {
			return cost + iterCost, f
		}
		cost += iterCost + sim.Time(c.cfg.StringIterCycles)*c.cfg.CycleTime
		c.count(in.Rep) // first iteration is the instruction; later ones are RepIters
		if in.Rep && !done {
			// Stay on this instruction; further iterations are separate
			// micro-steps so bus/NIC events interleave realistically.
			c.repActive = true
			return cost, nil
		}
		c.repActive = false
		c.eip = next
		return cost, nil

	case INT:
		cost += c.cfg.TrapCost
		c.counters.Traps++
		vector := int(in.Dst.Imm)
		c.count(false) // the INT itself executes in the outgoing mode
		if target, ok := c.isrs[vector]; ok {
			t, f := c.push(uint32(next))
			if f != nil {
				return cost + t, f
			}
			cost += t
			c.kernelMode = true
			c.eip = target
			return cost, nil
		}
		if c.Syscall != nil {
			c.eip = next
			c.Syscall(c, vector)
			return cost, nil
		}
		return cost, &vm.Fault{VA: 0, Write: false, Reason: vm.NotPresent}

	case IRET:
		cost += c.cfg.TrapCost
		v, t, f := c.pop()
		if f != nil {
			return cost + t, f
		}
		cost += t
		if v == ReturnSentinel {
			c.kernelMode = false
			c.halt()
			return cost, nil
		}
		c.count(false) // counted in kernel mode
		c.kernelMode = false
		c.eip = int(v)
		return cost, nil

	default:
		panic(fmt.Sprintf("isa: unimplemented op %s", in.Op))
	}

	c.count(in.Rep && (in.Op == MOVS || in.Op == STOS))
	c.eip = next
	return cost, nil
}

// stringOp performs one MOVS/STOS iteration. done reports whether a REP
// sequence has finished (ECX reached zero).
func (c *CPU) stringOp(in *Instr, size int) (sim.Time, bool, *vm.Fault) {
	if in.Rep && c.R[ECX] == 0 {
		return 0, true, nil
	}
	var cost sim.Time
	var v uint32
	if in.Op == MOVS {
		var t sim.Time
		var f *vm.Fault
		v, t, f = c.Mem.Load(vm.VAddr(c.R[ESI]), size)
		if f != nil {
			return cost + t, false, f
		}
		cost += t
	} else {
		v = c.R[EAX]
	}
	t, f := c.Mem.Store(vm.VAddr(c.R[EDI]), v, size)
	if f != nil {
		return cost + t, false, f
	}
	cost += t
	delta := uint32(size)
	if c.DF {
		delta = -delta
	}
	if in.Op == MOVS {
		c.R[ESI] += delta
	}
	c.R[EDI] += delta
	if !in.Rep {
		return cost, true, nil
	}
	c.R[ECX]--
	return cost, c.R[ECX] == 0, nil
}

package isa

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/vm"
)

// TestRandomALUProgramsAgainstModel generates random straight-line
// register-only programs, executes them on the CPU, and compares every
// register against a direct Go evaluation of the same sequence — a
// differential test of the ALU, flags-free subset.
func TestRandomALUProgramsAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	regs := []string{"eax", "ecx", "edx", "ebx", "ebp", "esi", "edi"} // not esp
	regIdx := map[string]int{"eax": 0, "ecx": 1, "edx": 2, "ebx": 3, "ebp": 5, "esi": 6, "edi": 7}

	for trial := 0; trial < 60; trial++ {
		var src strings.Builder
		src.WriteString("main:\n")
		model := [8]uint32{}
		n := 10 + rng.Intn(40)
		for i := 0; i < n; i++ {
			d := regs[rng.Intn(len(regs))]
			di := regIdx[d]
			switch rng.Intn(7) {
			case 0: // mov reg, imm
				v := rng.Uint32() % 100000
				fmt.Fprintf(&src, "\tmov %s, %d\n", d, v)
				model[di] = v
			case 1: // mov reg, reg
				s := regs[rng.Intn(len(regs))]
				fmt.Fprintf(&src, "\tmov %s, %s\n", d, s)
				model[di] = model[regIdx[s]]
			case 2: // add
				s := regs[rng.Intn(len(regs))]
				fmt.Fprintf(&src, "\tadd %s, %s\n", d, s)
				model[di] += model[regIdx[s]]
			case 3: // sub
				s := regs[rng.Intn(len(regs))]
				fmt.Fprintf(&src, "\tsub %s, %s\n", d, s)
				model[di] -= model[regIdx[s]]
			case 4: // xor
				s := regs[rng.Intn(len(regs))]
				fmt.Fprintf(&src, "\txor %s, %s\n", d, s)
				model[di] ^= model[regIdx[s]]
			case 5: // and with immediate
				v := rng.Uint32()
				fmt.Fprintf(&src, "\tand %s, %d\n", d, int32(v))
				model[di] &= v
			case 6: // shl by small immediate
				k := uint32(rng.Intn(8))
				fmt.Fprintf(&src, "\tshl %s, %d\n", d, k)
				model[di] <<= k
			}
		}
		src.WriteString("\thlt\n")

		eng := sim.NewEngine()
		c := NewCPU(eng, DefaultConfig(), newFlatMem())
		p, err := Assemble("rnd", src.String(), nil)
		if err != nil {
			t.Fatalf("trial %d assemble: %v\n%s", trial, err, src.String())
		}
		c.Load(p)
		c.R[ESP] = 0x8000
		if err := c.Start("main"); err != nil {
			t.Fatal(err)
		}
		eng.Drain(1_000_000)
		if c.Err() != nil {
			t.Fatalf("trial %d: %v", trial, c.Err())
		}
		for _, r := range regs {
			if c.R[regIdx[r]] != model[regIdx[r]] {
				t.Fatalf("trial %d: %s = %#x, model %#x\n%s",
					trial, r, c.R[regIdx[r]], model[regIdx[r]], src.String())
			}
		}
		if got := c.Counters().User; got != uint64(n) {
			t.Fatalf("trial %d: counted %d instructions, want %d", trial, got, n)
		}
	}
}

// TestRandomMemoryProgramsAgainstModel extends the differential test to
// loads and stores through a shadowed flat memory.
func TestRandomMemoryProgramsAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 40; trial++ {
		var src strings.Builder
		src.WriteString("main:\n\tmov esi, 0x1000\n")
		shadow := map[uint32]uint32{}
		var acc uint32 // models eax
		// esi fixed at 0x1000; eax is the accumulator.
		src.WriteString("\txor eax, eax\n")
		n := 10 + rng.Intn(30)
		for i := 0; i < n; i++ {
			off := uint32(rng.Intn(64)) * 4
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&src, "\tmov [esi+%d], eax\n", off)
				shadow[0x1000+off] = acc
			} else {
				fmt.Fprintf(&src, "\tadd eax, [esi+%d]\n", off)
				acc += shadow[0x1000+off]
			}
			if rng.Intn(3) == 0 {
				v := rng.Uint32() % 1000
				fmt.Fprintf(&src, "\tadd eax, %d\n", v)
				acc += v
			}
		}
		src.WriteString("\thlt\n")

		eng := sim.NewEngine()
		mem := newFlatMem()
		c := NewCPU(eng, DefaultConfig(), mem)
		p, err := Assemble("rndmem", src.String(), nil)
		if err != nil {
			t.Fatal(err)
		}
		c.Load(p)
		c.R[ESP] = 0x8000
		if err := c.Start("main"); err != nil {
			t.Fatal(err)
		}
		eng.Drain(1_000_000)
		if c.Err() != nil {
			t.Fatalf("trial %d: %v", trial, c.Err())
		}
		if c.R[EAX] != acc {
			t.Fatalf("trial %d: eax=%#x model=%#x\n%s", trial, c.R[EAX], acc, src.String())
		}
		for a, v := range shadow {
			if got := mem.r32(vm.VAddr(a)); got != v {
				t.Fatalf("trial %d: mem[%#x]=%#x model=%#x", trial, a, got, v)
			}
		}
	}
}

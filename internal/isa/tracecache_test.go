package isa

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// traceModes are the execution modes every differential test compares:
// per-instruction stepping (the reference), batched without the trace
// cache, batched with superblock dispatch, and superblock dispatch with
// spin fast-forward.
var traceModes = []struct {
	name    string
	batch   int
	trace   bool
	spin    bool
}{
	{"per-instr", 1, false, false},
	{"batched", 64, false, false},
	{"trace", 64, true, false},
	{"trace+spin", 64, true, true},
}

// traceRun captures everything a mode must reproduce bit-identically.
type traceRun struct {
	R        [8]uint32
	Flags    uint8
	Counters Counters
	End      sim.Time
	Mem      []byte
	Loads    int
	Stores   int
}

// runTraceMode executes src to halt under one mode. events schedules
// external memory writes (the only way a spin loop can exit).
func runTraceMode(t *testing.T, src string, batch int, trace, spin bool,
	setup func(*CPU, *flatMem), events func(*sim.Engine, *flatMem)) traceRun {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.MaxBatch = batch
	cfg.TraceCache = trace
	cfg.SpinFastForward = spin
	mem := newFlatMem()
	c := NewCPU(eng, cfg, mem)
	c.SetName("trace-test")
	c.Load(MustAssemble("trace-test", src, map[string]int64{"STK": 0x8000}))
	c.R[ESP] = 0x8000
	if setup != nil {
		setup(c, mem)
	}
	if events != nil {
		events(eng, mem)
	}
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	eng.Drain(10_000_000)
	if !c.Halted() {
		t.Fatalf("mode batch=%d trace=%v spin=%v: did not halt (eip=%d)", batch, trace, spin, c.EIP())
	}
	if c.Err() != nil {
		t.Fatalf("mode batch=%d trace=%v spin=%v: %v", batch, trace, spin, c.Err())
	}
	return traceRun{
		R: c.R, Flags: c.packFlags(), Counters: c.Counters(), End: eng.Now(),
		Mem: mem.buf, Loads: mem.loads, Stores: mem.stores,
	}
}

// diffTraceModes runs src under every mode and requires bit-identical
// results against the per-instruction reference.
func diffTraceModes(t *testing.T, src string,
	setup func(*CPU, *flatMem), events func(*sim.Engine, *flatMem)) {
	t.Helper()
	ref := runTraceMode(t, src, traceModes[0].batch, traceModes[0].trace, traceModes[0].spin, setup, events)
	for _, m := range traceModes[1:] {
		got := runTraceMode(t, src, m.batch, m.trace, m.spin, setup, events)
		if got.R != ref.R || got.Flags != ref.Flags {
			t.Errorf("%s: registers/flags diverge: got %v/%#x want %v/%#x", m.name, got.R, got.Flags, ref.R, ref.Flags)
		}
		if got.Counters != ref.Counters {
			t.Errorf("%s: counters diverge: got %+v want %+v", m.name, got.Counters, ref.Counters)
		}
		if got.End != ref.End {
			t.Errorf("%s: final time diverges: got %v want %v", m.name, got.End, ref.End)
		}
		if !bytes.Equal(got.Mem, ref.Mem) {
			t.Errorf("%s: memory diverges", m.name)
		}
		if got.Loads != ref.Loads || got.Stores != ref.Stores {
			t.Errorf("%s: access counts diverge: got %d/%d want %d/%d",
				m.name, got.Loads, got.Stores, ref.Loads, ref.Stores)
		}
	}
}

// TestTraceDifferentialALUMix covers every pure micro-op kind plus
// memory terminators, in a loop long enough to exercise quantum breaks.
func TestTraceDifferentialALUMix(t *testing.T) {
	diffTraceModes(t, `
main:
	mov	ecx, 500
	mov	esi, 0x1000
	xor	ebx, ebx
	cld
lp:
	mov	eax, ebx
	mov	edx, eax
	lea	edi, [esi + eax*2 + 8]
	add	eax, 12345
	adc	edx, 1
	sub	eax, 17
	sbb	edx, 0
	and	eax, 0x7fffffff
	or	eax, 3
	xor	eax, 0x5a5a
	not	edx
	neg	edx
	shl	eax, 3
	shr	eax, 1
	sar	edx, 2
	xchg	eax, edx
	cmp	eax, edx
	test	ebx, 1
	inc	ebx
	dec	ecx
	mov	[esi], eax
	mov	dword [esi + 4], 0xdeadbeef
	mov	byte [esi + 8], 0x7f
	jnz	lp
	std
	hlt
`, nil, nil)
}

// TestTraceDifferentialCallStack exercises impure terminators (CALL,
// RET, PUSH/POP, LOOP) between pure runs.
func TestTraceDifferentialCallStack(t *testing.T) {
	diffTraceModes(t, `
main:
	mov	ecx, 50
outer:
	push	ecx
	call	work
	pop	ecx
	loop	outer
	hlt
work:
	mov	eax, 7
	add	eax, 5
	shl	eax, 2
	mov	[0x2000], eax
	ret
`, nil, nil)
}

// spinSrc polls a flag another agent sets: the canonical §5 receive
// wait. The body is one load plus pure ops, closed by a backward jump.
const spinSrc = `
main:
	xor	ebx, ebx
pwait:
	mov	eax, [0x3000]
	test	eax, eax
	jz	pwait
	mov	ebx, eax
	hlt
`

// TestSpinFastForwardDifferential pins spin fast-forward == literal
// spinning: an external event releases the poll loop after a long wait,
// and every mode must agree on registers, instruction counts, load
// counts and the final timestamp.
func TestSpinFastForwardDifferential(t *testing.T) {
	events := func(eng *sim.Engine, mem *flatMem) {
		eng.At(2*sim.Millisecond, func() { mem.w32(0x3000, 42) })
		// A mid-wait event that does NOT release the loop: the watcher
		// must re-verify against it, not skip past it.
		eng.At(1*sim.Millisecond, func() { mem.w32(0x3800, 9) })
	}
	diffTraceModes(t, spinSrc, nil, events)

	// The fast-forward mode must actually skip (not just agree): the
	// run covers ~2 ms of simulated spinning, which literally retired
	// would be ~100k+ events.
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	mem := newFlatMem()
	c := NewCPU(eng, cfg, mem)
	c.Load(MustAssemble("spin-ff", spinSrc, nil))
	c.R[ESP] = 0x8000
	events(eng, mem)
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	eng.Drain(10_000_000)
	if !c.Halted() || c.R[EBX] != 42 {
		t.Fatalf("halted=%v ebx=%d", c.Halted(), c.R[EBX])
	}
	if fired := eng.Fired(); fired > 1000 {
		t.Fatalf("spin fast-forward did not engage: %d events fired", fired)
	}
}

// TestSpinCountingLoopDemoted: a loop whose registers change every
// iteration is not a fixed point; the watcher must fail verification,
// demote the block, and results must still match exactly.
func TestSpinCountingLoopDemoted(t *testing.T) {
	diffTraceModes(t, `
main:
	xor	ebx, ebx
lp:
	mov	eax, [0x3000]
	add	ebx, 1
	cmp	ebx, 2000
	jne	lp
	hlt
`, nil, nil)
}

// TestSpinStoreInBodyNotCandidate: a body with a store can never
// fast-forward (stores are impure); results must match across modes.
func TestSpinStoreInBodyNotCandidate(t *testing.T) {
	diffTraceModes(t, `
main:
	mov	ecx, 300
lp:
	mov	eax, [0x3000]
	mov	[0x3100], eax
	dec	ecx
	jnz	lp
	hlt
`, nil, nil)
}

// TestSpinShapeRecognition pins the classifier on the §5 idioms.
func TestSpinShapeRecognition(t *testing.T) {
	p := MustAssemble("shapes", `
kcrecv_spin:
	mov	esi, [edx]
	test	esi, esi
	jz	kcrecv_spin
cwait:
	mov	eax, [esi + 4]
	cmp	eax, ebx
	jne	cwait
count_only:
	dec	ecx
	jnz	count_only
	hlt
`, nil)
	head := p.MustEntry("kcrecv_spin")
	if ok, n := spinShape(p.Instrs, head); !ok || n != 3 {
		t.Errorf("kcrecv_spin: got ok=%v len=%d, want spin of 3", ok, n)
	}
	head = p.MustEntry("cwait")
	if ok, n := spinShape(p.Instrs, head); !ok || n != 3 {
		t.Errorf("cwait: got ok=%v len=%d, want spin of 3", ok, n)
	}
	// No memory read in the body: a counting loop, not a wait.
	head = p.MustEntry("count_only")
	if ok, _ := spinShape(p.Instrs, head); ok {
		t.Errorf("count_only: recognized as spin; want rejected (no loads)")
	}
}

// TestTraceFlushOnReset: Reset must drop all built superblocks and the
// spin watcher.
func TestTraceFlushOnReset(t *testing.T) {
	mem := newFlatMem()
	eng := sim.NewEngine()
	c := NewCPU(eng, DefaultConfig(), mem)
	c.Load(MustAssemble("flush", "main:\n\tmov eax, 1\n\tadd eax, 2\n\thlt\n", nil))
	c.R[ESP] = 0x8000
	if err := c.Start("main"); err != nil {
		t.Fatal(err)
	}
	eng.Drain(1000)
	if len(c.traces) == 0 {
		t.Fatal("no trace built")
	}
	c.Reset()
	if len(c.traces) != 0 || c.cur != nil || c.spin.armed {
		t.Fatalf("Reset left trace state: %d traces, cur=%v, armed=%v", len(c.traces), c.cur, c.spin.armed)
	}
}

// TestTraceKeyedByProgramIdentity: two programs with a shared entry
// label but different bodies must never see each other's superblocks.
func TestTraceKeyedByProgramIdentity(t *testing.T) {
	mem := newFlatMem()
	eng := sim.NewEngine()
	c := NewCPU(eng, DefaultConfig(), mem)
	runProg := func(src string) uint32 {
		c.Load(MustAssemble("prog-ident", src, nil))
		c.R = [8]uint32{}
		c.R[ESP] = 0x8000
		if err := c.Start("main"); err != nil {
			t.Fatal(err)
		}
		eng.Drain(1000)
		if !c.Halted() || c.Err() != nil {
			t.Fatalf("halted=%v err=%v", c.Halted(), c.Err())
		}
		return c.R[EAX]
	}
	// Same shape, different constants, assembled as distinct Programs.
	if got := runProg("main:\n\tmov eax, 10\n\tadd eax, 1\n\thlt\n"); got != 11 {
		t.Fatalf("first program: eax=%d want 11", got)
	}
	if got := runProg("main:\n\tmov eax, 20\n\tadd eax, 2\n\thlt\n"); got != 22 {
		t.Fatalf("second program executed a stale superblock: eax=%d want 22", got)
	}
	if len(c.traces) != 2 {
		t.Fatalf("expected 2 program traces, got %d", len(c.traces))
	}
}

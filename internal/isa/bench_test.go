package isa

import (
	"testing"

	"repro/internal/sim"
)

// Instruction-bound ALU loop: the workload batching exists for. One run
// retires ~6*benchIters+3 instructions with no bus traffic, so events
// fired per run ≈ instructions in per-instruction mode and collapses to
// ~runs/quantum in batched mode.
const benchIters = 1000

const benchLoop = `
main:
	mov	ecx, ITERS
	xor	ebx, ebx
bloop:
	mov	eax, ebx
	add	eax, 12345
	xor	eax, 0x5a5a
	add	ebx, 1
	dec	ecx
	jnz	bloop
	hlt
`

// benchStep measures whole runs of the loop at the given batch quantum.
// ci.sh greps the batched and trace variants for "0 allocs/op": the
// entire step path — dispatch, superblock lookup, execute, batch
// bookkeeping — must stay off the heap.
func benchStep(b *testing.B, maxBatch int, trace bool) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.MaxBatch = maxBatch
	cfg.TraceCache = trace
	cfg.SpinFastForward = trace
	c := NewCPU(eng, cfg, newFlatMem())
	c.Load(MustAssemble("bench", benchLoop, map[string]int64{"ITERS": benchIters}))
	run := func() {
		c.R = [8]uint32{}
		c.R[ESP] = 0x8000
		if err := c.Start("main"); err != nil {
			b.Fatal(err)
		}
		eng.Drain(100_000_000)
		if !c.Halted() || c.Err() != nil {
			b.Fatalf("halted=%v err=%v", c.Halted(), c.Err())
		}
	}
	run() // warm the event heap, assembler cache and trace cache
	perRun := c.Counters().Total()
	c.ResetCounters()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	b.ReportMetric(float64(perRun)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

func BenchmarkStepPerInstruction(b *testing.B) { benchStep(b, 1, false) }
func BenchmarkStepBatched(b *testing.B)       { benchStep(b, 64, false) }

// BenchmarkTraceDispatch is the headline superblock number: same
// workload, same quantum as BenchmarkStepBatched, dispatching through
// the trace cache.
func BenchmarkTraceDispatch(b *testing.B) { benchStep(b, 64, true) }

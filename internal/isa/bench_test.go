package isa

import (
	"testing"

	"repro/internal/sim"
)

// Instruction-bound ALU loop: the workload batching exists for. One run
// retires ~6*benchIters+3 instructions with no bus traffic, so events
// fired per run ≈ instructions in per-instruction mode and collapses to
// ~runs/quantum in batched mode.
const benchIters = 1000

const benchLoop = `
main:
	mov	ecx, ITERS
	xor	ebx, ebx
bloop:
	mov	eax, ebx
	add	eax, 12345
	xor	eax, 0x5a5a
	add	ebx, 1
	dec	ecx
	jnz	bloop
	hlt
`

// benchStep measures whole runs of the loop at the given batch quantum.
// ci.sh greps the batched variant for "0 allocs/op": the entire batched
// step path — dispatch, execute, batch bookkeeping — must stay off the
// heap.
func benchStep(b *testing.B, maxBatch int) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.MaxBatch = maxBatch
	c := NewCPU(eng, cfg, newFlatMem())
	c.Load(MustAssemble("bench", benchLoop, map[string]int64{"ITERS": benchIters}))
	run := func() {
		c.R = [8]uint32{}
		c.R[ESP] = 0x8000
		if err := c.Start("main"); err != nil {
			b.Fatal(err)
		}
		eng.Drain(100_000_000)
		if !c.Halted() || c.Err() != nil {
			b.Fatalf("halted=%v err=%v", c.Halted(), c.Err())
		}
	}
	run() // warm the event heap and the assembler cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkStepPerInstruction(b *testing.B) { benchStep(b, 1) }
func BenchmarkStepBatched(b *testing.B)       { benchStep(b, 64) }

// Package mesh models the Intel Paragon routing backplane: a 2-D mesh of
// iMRC-style routers with deadlock-free, oblivious wormhole routing that
// preserves the order of packets from each sender to each receiver
// (paper §3).
//
// The model is worm-granular rather than flit-granular: a packet's worm
// acquires the channels along its XY path one hop at a time (paying a
// per-hop router latency), then streams its flits at the link rate once
// the head has been accepted by the destination endpoint. A worm holds
// every channel on its path until its tail drains, so a blocked receiver
// backpressures the network exactly as wormhole routing does — which is
// what the SHRIMP flow-control design relies on. XY routing plus FIFO
// channel arbitration gives deadlock freedom and per-pair in-order
// delivery.
package mesh

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config holds the backplane's physical parameters.
type Config struct {
	Width, Height int      // mesh dimensions
	FlitBytes     int      // bytes carried per flit
	FlitCycle     sim.Time // time for one flit to cross one link
	RouterLatency sim.Time // per-hop header routing/arbitration latency
}

// DefaultConfig returns parameters loosely calibrated to the Paragon
// backplane: ~400 MB/s links (8 bytes / 20 ns) and ~15 ns per-hop
// routing latency.
func DefaultConfig(w, h int) Config {
	return Config{
		Width:         w,
		Height:        h,
		FlitBytes:     8,
		FlitCycle:     20 * sim.Nanosecond,
		RouterLatency: 15 * sim.Nanosecond,
	}
}

// Endpoint is the node-side consumer attached to a router's processor
// port (the SHRIMP network interface).
type Endpoint interface {
	// Accept is called when a worm's head reaches the processor port.
	// Returning false parks the worm — it keeps holding its channels,
	// backpressuring the mesh — until the endpoint calls Network.Unpark.
	Accept(p *packet.Packet, wire int) bool
	// Deliver is called when the worm's tail has fully drained into the
	// endpoint (Accept returned true WireTime earlier).
	Deliver(p *packet.Packet, wire int)
}

// channel is one unidirectional link (or an injection/ejection port).
// Worms own channels exclusively; waiters are granted in FIFO order.
type channel struct {
	name    string
	owner   *worm
	waiters []*worm
	// injNode is the node index whose injection port this is, or -1.
	injNode int
}

type worm struct {
	pkt      *packet.Packet
	wire     int
	path     []*channel
	acquired int  // number of channels currently owned (head is at path[acquired-1])
	parked   bool // head at ejection, endpoint refused
	injected sim.Time
}

// Stats aggregates backplane activity.
type Stats struct {
	Injected      uint64
	Delivered     uint64
	Parked        uint64 // Accept refusals (flow-control events)
	FlitHops      uint64 // total flit·hop traffic
	TotalLatency  sim.Time
	MaxLatency    sim.Time
	TotalWireByte uint64
}

// Network is the routing backplane.
type Network struct {
	eng  *sim.Engine
	cfg  Config
	eps  []Endpoint // indexed y*Width+x
	link map[linkKey]*channel
	inj  []*channel
	ej   []*channel
	park []*worm // parked worm per node index (at most one: it owns the ejection channel)
	// injFree is called when a node's injection port frees up with no
	// waiters; the NIC uses it to pace its outgoing FIFO drain.
	injFree []func()
	// Tracer, when set, records flow-control events (nil-safe).
	Tracer *trace.Tracer

	// corruptEvery, when positive, marks every Nth injected packet as
	// having suffered a transmission error (fault injection: the
	// receiving NIC's CRC check must catch and drop it).
	corruptEvery int
	injectCount  int

	stats Stats
}

type linkKey struct {
	from, to packet.Coord
}

// New builds the backplane. Endpoints are attached later with Attach.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic("mesh: dimensions must be positive")
	}
	if cfg.FlitBytes <= 0 {
		panic("mesh: FlitBytes must be positive")
	}
	n := &Network{
		eng:     eng,
		cfg:     cfg,
		eps:     make([]Endpoint, cfg.Width*cfg.Height),
		link:    make(map[linkKey]*channel),
		inj:     make([]*channel, cfg.Width*cfg.Height),
		ej:      make([]*channel, cfg.Width*cfg.Height),
		park:    make([]*worm, cfg.Width*cfg.Height),
		injFree: make([]func(), cfg.Width*cfg.Height),
	}
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			c := packet.Coord{X: x, Y: y}
			i := n.index(c)
			n.inj[i] = &channel{name: fmt.Sprintf("inj%v", c), injNode: i}
			n.ej[i] = &channel{name: fmt.Sprintf("ej%v", c), injNode: -1}
			for _, d := range n.neighbors(c) {
				n.link[linkKey{c, d}] = &channel{name: fmt.Sprintf("%v->%v", c, d), injNode: -1}
			}
		}
	}
	return n
}

// OnInjectorFree registers a callback fired whenever c's injection port
// becomes free with no waiters (the previous worm's tail has left the
// node).
func (n *Network) OnInjectorFree(c packet.Coord, fn func()) {
	n.injFree[n.index(c)] = fn
}

func (n *Network) index(c packet.Coord) int { return c.Y*n.cfg.Width + c.X }

// Contains reports whether c is a valid coordinate on this backplane.
func (n *Network) Contains(c packet.Coord) bool {
	return c.X >= 0 && c.X < n.cfg.Width && c.Y >= 0 && c.Y < n.cfg.Height
}

func (n *Network) neighbors(c packet.Coord) []packet.Coord {
	var out []packet.Coord
	candidates := []packet.Coord{
		{X: c.X + 1, Y: c.Y}, {X: c.X - 1, Y: c.Y},
		{X: c.X, Y: c.Y + 1}, {X: c.X, Y: c.Y - 1},
	}
	for _, d := range candidates {
		if n.Contains(d) {
			out = append(out, d)
		}
	}
	return out
}

// Attach connects an endpoint at coordinate c.
func (n *Network) Attach(c packet.Coord, ep Endpoint) {
	if !n.Contains(c) {
		panic(fmt.Sprintf("mesh: attach outside mesh: %v", c))
	}
	n.eps[n.index(c)] = ep
}

// Stats returns a snapshot of backplane statistics.
func (n *Network) Stats() Stats { return n.stats }

// Config returns the backplane configuration.
func (n *Network) Config() Config { return n.cfg }

// flits returns the flit count of a wire-size packet.
func (n *Network) flits(wire int) int {
	return (wire + n.cfg.FlitBytes - 1) / n.cfg.FlitBytes
}

// WireTime returns the time for a packet of the given wire size to
// stream across one link.
func (n *Network) WireTime(wire int) sim.Time {
	return sim.Time(n.flits(wire)) * n.cfg.FlitCycle
}

// route computes the XY path of channels from src to dst: the injection
// port, X-dimension links, Y-dimension links, and the ejection port.
// Oblivious single-path routing is what gives per-pair ordering.
func (n *Network) route(src, dst packet.Coord) []*channel {
	path := []*channel{n.inj[n.index(src)]}
	cur := src
	for cur.X != dst.X {
		next := packet.Coord{X: cur.X + sign(dst.X-cur.X), Y: cur.Y}
		path = append(path, n.link[linkKey{cur, next}])
		cur = next
	}
	for cur.Y != dst.Y {
		next := packet.Coord{X: cur.X, Y: cur.Y + sign(dst.Y-cur.Y)}
		path = append(path, n.link[linkKey{cur, next}])
		cur = next
	}
	return append(path, n.ej[n.index(cur)])
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	return 1
}

// InjectorBusy reports whether the injection port at c is still held by
// an earlier worm. The NIC drains its outgoing FIFO one packet at a time
// and uses this to pace injection.
func (n *Network) InjectorBusy(c packet.Coord) bool {
	return n.inj[n.index(c)].owner != nil || len(n.inj[n.index(c)].waiters) > 0
}

// CorruptEvery enables fault injection: every nth injected packet is
// marked as damaged in flight (n <= 0 disables).
func (n *Network) CorruptEvery(every int) { n.corruptEvery = every }

// Inject launches a packet from src toward p.Dst. The caller must have
// checked InjectorBusy; injecting into a busy port queues behind the
// current owner (permitted, but it defeats FIFO pacing).
func (n *Network) Inject(src packet.Coord, p *packet.Packet, wire int) {
	if !n.Contains(src) || !n.Contains(p.Dst) {
		panic(fmt.Sprintf("mesh: inject %v->%v outside mesh", src, p.Dst))
	}
	n.injectCount++
	if n.corruptEvery > 0 && n.injectCount%n.corruptEvery == 0 {
		p.Corrupt = true
	}
	w := &worm{pkt: p, wire: wire, path: n.route(src, p.Dst), injected: n.eng.Now()}
	n.stats.Injected++
	n.stats.TotalWireByte += uint64(wire)
	n.request(w)
}

// request asks for the next channel on w's path.
func (n *Network) request(w *worm) {
	ch := w.path[w.acquired]
	if ch.owner == nil && len(ch.waiters) == 0 {
		n.grant(ch, w)
		return
	}
	ch.waiters = append(ch.waiters, w)
}

// grant gives ch to w and advances the worm's head.
func (n *Network) grant(ch *channel, w *worm) {
	ch.owner = w
	w.acquired++
	n.stats.FlitHops += uint64(n.flits(w.wire))
	if w.acquired < len(w.path) {
		// Head crosses this channel and arbitrates at the next router.
		n.eng.After(n.cfg.RouterLatency+n.cfg.FlitCycle, func() { n.request(w) })
		return
	}
	// Head is at the destination processor port.
	n.eng.After(n.cfg.RouterLatency, func() { n.arrive(w) })
}

// arrive offers the worm's head to the destination endpoint.
func (n *Network) arrive(w *worm) {
	i := n.index(w.pkt.Dst)
	ep := n.eps[i]
	if ep == nil {
		panic(fmt.Sprintf("mesh: no endpoint at %v", w.pkt.Dst))
	}
	if !ep.Accept(w.pkt, w.wire) {
		w.parked = true
		n.park[i] = w
		n.stats.Parked++
		n.Tracer.Record(i, trace.Park, 0, uint64(i))
		return
	}
	n.stream(w)
}

// Unpark retries delivery of the worm parked at c, if any. Endpoints call
// this when receive space frees up.
func (n *Network) Unpark(c packet.Coord) {
	i := n.index(c)
	w := n.park[i]
	if w == nil {
		return
	}
	n.park[i] = nil
	w.parked = false
	n.arrive(w)
}

// stream drains the accepted worm into the endpoint and releases its
// channels once the tail has passed.
func (n *Network) stream(w *worm) {
	t := n.WireTime(w.wire)
	n.eng.After(t, func() {
		for _, ch := range w.path {
			n.release(ch, w)
		}
		n.stats.Delivered++
		lat := n.eng.Now() - w.injected
		n.stats.TotalLatency += lat
		if lat > n.stats.MaxLatency {
			n.stats.MaxLatency = lat
		}
		n.eps[n.index(w.pkt.Dst)].Deliver(w.pkt, w.wire)
	})
}

// release frees ch from w and grants the next FIFO waiter.
func (n *Network) release(ch *channel, w *worm) {
	if ch.owner != w {
		panic(fmt.Sprintf("mesh: %s released by non-owner", ch.name))
	}
	ch.owner = nil
	if len(ch.waiters) > 0 {
		next := ch.waiters[0]
		ch.waiters = ch.waiters[1:]
		n.grant(ch, next)
		return
	}
	if ch.injNode >= 0 && n.injFree[ch.injNode] != nil {
		n.injFree[ch.injNode]()
	}
}

// HeadLatency estimates the no-contention head latency between two
// coordinates for a packet of the given wire size: per-channel routing
// plus one final stream. Used by calibration tests.
func (n *Network) HeadLatency(src, dst packet.Coord) sim.Time {
	channels := sim.Time(src.Hops(dst) + 2)
	return channels*(n.cfg.RouterLatency+n.cfg.FlitCycle) - n.cfg.FlitCycle
}

// Package mesh models the Intel Paragon routing backplane: a 2-D mesh of
// iMRC-style routers with deadlock-free, oblivious wormhole routing that
// preserves the order of packets from each sender to each receiver
// (paper §3).
//
// The model is worm-granular rather than flit-granular: a packet's worm
// acquires the channels along its XY path one hop at a time (paying a
// per-hop router latency), then streams its flits at the link rate once
// the head has been accepted by the destination endpoint. A worm holds
// every channel on its path until its tail drains, so a blocked receiver
// backpressures the network exactly as wormhole routing does — which is
// what the SHRIMP flow-control design relies on. XY routing plus FIFO
// channel arbitration gives deadlock freedom and per-pair in-order
// delivery.
//
// Event economy: the head's advance over a run of free channels is
// batched into a single queue operation — channel k+i's grant instant is
// grant(k) + i*(RouterLatency+FlitCycle), computed arithmetically — and
// the body-flit train behind the head is likewise one event (WireTime),
// never one per flit. A worm therefore costs two engine events end to end
// in the uncontended case (arrival offer, tail drain) regardless of hop
// count or packet length. When the head meets a busy channel the worm
// parks in that channel's FIFO and continues, with its virtual timing
// intact, from the release. Worms are pooled and all mesh events are
// sim.Handler firings, so the steady-state data path allocates nothing.
package mesh

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config holds the backplane's physical parameters.
type Config struct {
	Width, Height int      // mesh dimensions
	FlitBytes     int      // bytes carried per flit
	FlitCycle     sim.Time // time for one flit to cross one link
	RouterLatency sim.Time // per-hop header routing/arbitration latency
}

// DefaultConfig returns parameters loosely calibrated to the Paragon
// backplane: ~400 MB/s links (8 bytes / 20 ns) and ~15 ns per-hop
// routing latency.
func DefaultConfig(w, h int) Config {
	return Config{
		Width:         w,
		Height:        h,
		FlitBytes:     8,
		FlitCycle:     20 * sim.Nanosecond,
		RouterLatency: 15 * sim.Nanosecond,
	}
}

// Lookahead returns the minimum simulated delay between any fabric entry
// (Inject, Release, SetDead) and the earliest node-visible consequence
// (a Deliver or injector-free callback). Every delivery path streams at
// least one flit after the entry — an unparked worm drains no earlier
// than one WireTime (>= one FlitCycle) later, and a fresh injection also
// pays per-hop routing first — so one flit time is a safe conservative
// lookahead for a partitioned simulation.
func (c Config) Lookahead() sim.Time { return c.FlitCycle }

// InjectLookahead returns the minimum simulated delay between a packet
// injection and any node-visible consequence at a destination hops links
// away: the head crosses the injection channel plus hops link channels
// (RouterLatency+FlitCycle each), pays the final router's arrival
// latency, and the earliest consequence — the worm draining into the
// ejection port, or freeing its injector — streams at least one more
// flit (WireTime >= FlitCycle). Contention and parking only delay a
// worm beyond this unimpeded floor, and a consequence at a node nearer
// than the worm's own destination does not exist (XY wormholes release
// channels only when the tail drains), so the bound is safe per
// partition pair when hops is the minimum distance between the two
// partitions' node sets.
func (c Config) InjectLookahead(hops int) sim.Time {
	return sim.Time(hops+1)*(c.RouterLatency+c.FlitCycle) + c.RouterLatency + c.FlitCycle
}

// Endpoint is the node-side consumer attached to a router's processor
// port (the SHRIMP network interface).
//
// Accept and Credit run in the mesh's (hub) domain and may touch only
// the endpoint's fabric-facing occupancy state; Deliver runs in the
// node's domain (a partitioned machine defers it through the cluster's
// message channel). This split is what lets the mesh run on a different
// engine than its endpoints.
type Endpoint interface {
	// Accept is called when a worm's head reaches the processor port.
	// Returning false parks the worm — it keeps holding its channels,
	// backpressuring the mesh — until the endpoint calls Network.Unpark
	// (normally via Release).
	Accept(p *packet.Packet, wire int) bool
	// Credit returns wire bytes of Incoming-FIFO occupancy previously
	// claimed by Accept; Network.Release invokes it when the endpoint
	// has finished depositing a packet.
	Credit(wire int)
	// Deliver is called when the worm's tail has fully drained into the
	// endpoint (Accept returned true WireTime earlier).
	Deliver(p *packet.Packet, wire int)
}

// channel is one unidirectional link (or an injection/ejection port).
// Worms own channels exclusively; waiters are granted in FIFO order.
type channel struct {
	name    string
	owner   *worm
	waiters []*worm
	// injNode is the node index whose injection port this is, or -1.
	injNode int
	// stat is this channel's metrics block; nil when metrics are off.
	stat *obs.LinkStat
	// downFrom/downUntil is the link-outage window (fault injection):
	// worms routed across the channel while it is down are lost in
	// flight. downFrom == 0 means never down; downUntil == 0 with a
	// nonzero downFrom means down forever.
	downFrom, downUntil sim.Time
}

// down reports whether the channel is in its outage window at t.
func (ch *channel) down(t sim.Time) bool {
	return ch.downFrom > 0 && t >= ch.downFrom && (ch.downUntil == 0 || t < ch.downUntil)
}

// Worm lifecycle phases, dispatched by Fire.
const (
	phaseArrive  uint8 = iota // head at the ejection port: offer to endpoint
	phaseDrained              // tail has streamed out: release and deliver
)

type worm struct {
	net      *Network
	pkt      *packet.Packet
	wire     int
	path     []*channel
	acquired int // number of channels currently owned (head is at path[acquired-1])
	// grantTime is the virtual instant the next channel grant takes
	// effect: the head reaches channel path[acquired]'s arbiter at
	// grant(path[acquired-1]) + RouterLatency + FlitCycle, whether or not
	// an engine event fires then.
	grantTime sim.Time
	phase     uint8
	parked    bool // head at ejection, endpoint refused
	// lost marks a worm the fault injector killed in flight (drop roll
	// or a downed link on its path): it still occupies its channels end
	// to end but is discarded at drain instead of delivered. dup marks
	// a worm the injector delivers twice.
	lost     bool
	dup      bool
	injected sim.Time
	free     *worm // pool link
}

// Fire implements sim.Handler: the worm is its own pooled event.
func (w *worm) Fire() {
	switch w.phase {
	case phaseArrive:
		w.net.arrive(w)
	case phaseDrained:
		w.net.drained(w)
	}
}

// Stats aggregates backplane activity.
type Stats struct {
	Injected      uint64
	Delivered     uint64
	Parked        uint64 // Accept refusals (flow-control events)
	FlitHops      uint64 // total flit·hop traffic
	TotalLatency  sim.Time
	MaxLatency    sim.Time
	TotalWireByte uint64
	// Fault-injection outcomes (zero outside fault mode).
	FaultDropped    uint64 // worms lost to a drop roll
	FaultCorrupted  uint64 // packets damaged in flight
	FaultDuplicated uint64 // worms delivered twice
	FaultLinkDrops  uint64 // worms lost to a downed link
}

// Directions for the per-node link table.
const (
	dirEast = iota
	dirWest
	dirSouth
	dirNorth
	dirCount
)

// Network is the routing backplane.
type Network struct {
	eng *sim.Engine
	cfg Config
	eps []Endpoint // indexed y*Width+x
	// links[i][dir] is the outgoing link from node i toward dir, nil at
	// a mesh edge. An array lookup, not a map: route runs per packet.
	links [][dirCount]*channel
	inj   []*channel
	ej    []*channel
	park  []*worm // parked worm per node index (at most one: it owns the ejection channel)
	// dead marks crashed nodes on the fabric side: the ejection port
	// bit-buckets worms for them without consulting the endpoint. It is
	// set through SetDead — a fabric entry — so a partitioned run learns
	// of the crash in (time, domain) order, never early from a
	// partition's run-ahead.
	dead []bool
	// injFree is called when a node's injection port frees up with no
	// waiters; the NIC uses it to pace its outgoing FIFO drain.
	injFree []func()
	// Tracer, when set, records flow-control events (nil-safe).
	Tracer *trace.Tracer

	// corruptEvery, when positive, marks every Nth injected packet as
	// having suffered a transmission error (fault injection: the
	// receiving NIC's CRC check must catch and drop it).
	corruptEvery int
	injectCount  int

	// faults is the machine-wide fault injector; nil outside fault mode
	// (the zero-fault data path pays one nil check per injection). reg
	// mirrors SetObs's registry so fault events can complete spans and
	// charge per-node counters. linkFault gates the per-path outage
	// scan so it costs nothing until SetLinkFault is called.
	faults    *fault.Injector
	reg       *obs.Registry
	linkFault bool

	freeWorms *worm // pool of retired worms

	stats Stats
}

// New builds the backplane. Endpoints are attached later with Attach.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic("mesh: dimensions must be positive")
	}
	if cfg.FlitBytes <= 0 {
		panic("mesh: FlitBytes must be positive")
	}
	nodes := cfg.Width * cfg.Height
	n := &Network{
		eng:     eng,
		cfg:     cfg,
		eps:     make([]Endpoint, nodes),
		links:   make([][dirCount]*channel, nodes),
		inj:     make([]*channel, nodes),
		ej:      make([]*channel, nodes),
		park:    make([]*worm, nodes),
		dead:    make([]bool, nodes),
		injFree: make([]func(), nodes),
	}
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			c := packet.Coord{X: x, Y: y}
			i := n.index(c)
			n.inj[i] = &channel{name: fmt.Sprintf("inj%v", c), injNode: i}
			n.ej[i] = &channel{name: fmt.Sprintf("ej%v", c), injNode: -1}
			for dir, d := range [dirCount]packet.Coord{
				dirEast:  {X: x + 1, Y: y},
				dirWest:  {X: x - 1, Y: y},
				dirSouth: {X: x, Y: y + 1},
				dirNorth: {X: x, Y: y - 1},
			} {
				if n.Contains(d) {
					n.links[i][dir] = &channel{name: fmt.Sprintf("%v->%v", c, d), injNode: -1}
				}
			}
		}
	}
	return n
}

// SetObs registers every channel (links, injection and ejection ports)
// with the metrics registry. A nil registry (metrics disabled) leaves
// the channels uninstrumented.
func (n *Network) SetObs(reg *obs.Registry) {
	n.reg = reg
	register := func(ch *channel) {
		if ch != nil {
			ch.stat = reg.Link(ch.name)
		}
	}
	for i := range n.links {
		register(n.inj[i])
		register(n.ej[i])
		for dir := range n.links[i] {
			register(n.links[i][dir])
		}
	}
}

// OnInjectorFree registers a callback fired whenever c's injection port
// becomes free with no waiters (the previous worm's tail has left the
// node).
func (n *Network) OnInjectorFree(c packet.Coord, fn func()) {
	n.injFree[n.index(c)] = fn
}

func (n *Network) index(c packet.Coord) int { return c.Y*n.cfg.Width + c.X }

// Contains reports whether c is a valid coordinate on this backplane.
func (n *Network) Contains(c packet.Coord) bool {
	return c.X >= 0 && c.X < n.cfg.Width && c.Y >= 0 && c.Y < n.cfg.Height
}

// Attach connects an endpoint at coordinate c.
func (n *Network) Attach(c packet.Coord, ep Endpoint) {
	if !n.Contains(c) {
		panic(fmt.Sprintf("mesh: attach outside mesh: %v", c))
	}
	n.eps[n.index(c)] = ep
}

// Stats returns a snapshot of backplane statistics.
func (n *Network) Stats() Stats { return n.stats }

// Reset abandons all in-flight worms and returns the backplane to its
// just-built state: free channels, empty park slots, zeroed statistics,
// fault injection off. Attached endpoints and injector-free callbacks
// persist (wiring, not state). Worms still holding channels are dropped
// rather than pooled — their packets are garbage-collected — so Reset is
// safe even mid-flight; the worm pool itself is retained.
func (n *Network) Reset() {
	resetChannel := func(ch *channel) {
		if ch == nil {
			return
		}
		ch.owner = nil
		ch.waiters = ch.waiters[:0]
		ch.downFrom, ch.downUntil = 0, 0
	}
	for i := range n.links {
		for dir := range n.links[i] {
			resetChannel(n.links[i][dir])
		}
		resetChannel(n.inj[i])
		resetChannel(n.ej[i])
		n.park[i] = nil
		n.dead[i] = false
	}
	n.corruptEvery = 0
	n.injectCount = 0
	n.linkFault = false
	n.stats = Stats{}
}

// Config returns the backplane configuration.
func (n *Network) Config() Config { return n.cfg }

// flits returns the flit count of a wire-size packet.
func (n *Network) flits(wire int) int {
	return (wire + n.cfg.FlitBytes - 1) / n.cfg.FlitBytes
}

// WireTime returns the time for a packet of the given wire size to
// stream across one link.
func (n *Network) WireTime(wire int) sim.Time {
	return sim.Time(n.flits(wire)) * n.cfg.FlitCycle
}

// routeInto appends the XY path of channels from src to dst onto path:
// the injection port, X-dimension links, Y-dimension links, and the
// ejection port. Oblivious single-path routing is what gives per-pair
// ordering. The caller owns (and recycles) the backing array.
func (n *Network) routeInto(path []*channel, src, dst packet.Coord) []*channel {
	path = append(path, n.inj[n.index(src)])
	cur := src
	for cur.X != dst.X {
		dir := dirEast
		if dst.X < cur.X {
			dir = dirWest
		}
		path = append(path, n.links[n.index(cur)][dir])
		cur.X += sign(dst.X - cur.X)
	}
	for cur.Y != dst.Y {
		dir := dirSouth
		if dst.Y < cur.Y {
			dir = dirNorth
		}
		path = append(path, n.links[n.index(cur)][dir])
		cur.Y += sign(dst.Y - cur.Y)
	}
	return append(path, n.ej[n.index(cur)])
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	return 1
}

// InjectorBusy reports whether the injection port at c is still held by
// an earlier worm. The NIC drains its outgoing FIFO one packet at a time
// and uses this to pace injection.
func (n *Network) InjectorBusy(c packet.Coord) bool {
	return n.inj[n.index(c)].owner != nil || len(n.inj[n.index(c)].waiters) > 0
}

// CorruptEvery enables fault injection: every nth injected packet is
// marked as damaged in flight (n <= 0 disables).
func (n *Network) CorruptEvery(every int) { n.corruptEvery = every }

// SetFaults attaches the machine-wide fault injector (nil detaches).
// With an injector attached, every injection rolls the drop, corrupt
// and duplicate streams for the source node.
func (n *Network) SetFaults(inj *fault.Injector) { n.faults = inj }

// SetLinkFault schedules an outage on the directed link from the node
// at coordinate from toward the XY-adjacent node at to: the channel is
// down in [at, until) (until == 0 means forever), and worms routed
// across it during the window are lost in flight. It returns an error
// if the coordinates are not mesh neighbors.
func (n *Network) SetLinkFault(from, to packet.Coord, at, until sim.Time) error {
	if !n.Contains(from) || !n.Contains(to) {
		return fmt.Errorf("mesh: link fault %v->%v outside mesh", from, to)
	}
	var dir int
	switch {
	case to.X == from.X+1 && to.Y == from.Y:
		dir = dirEast
	case to.X == from.X-1 && to.Y == from.Y:
		dir = dirWest
	case to.Y == from.Y+1 && to.X == from.X:
		dir = dirSouth
	case to.Y == from.Y-1 && to.X == from.X:
		dir = dirNorth
	default:
		return fmt.Errorf("mesh: link fault %v->%v not adjacent", from, to)
	}
	ch := n.links[n.index(from)][dir]
	ch.downFrom, ch.downUntil = at, until
	n.linkFault = true
	return nil
}

// getWorm takes a worm from the pool (or allocates the pool's first).
func (n *Network) getWorm() *worm {
	w := n.freeWorms
	if w == nil {
		return &worm{net: n}
	}
	n.freeWorms = w.free
	w.free = nil
	return w
}

// putWorm retires a delivered worm to the pool.
func (n *Network) putWorm(w *worm) {
	w.pkt = nil
	w.path = w.path[:0]
	w.acquired = 0
	w.parked = false
	w.lost = false
	w.dup = false
	w.free = n.freeWorms
	n.freeWorms = w
}

// Inject launches a packet from src toward p.Dst. The caller must have
// checked InjectorBusy; injecting into a busy port queues behind the
// current owner (permitted, but it defeats FIFO pacing). Like every
// fabric entry it runs in the hub domain, so everything it schedules
// carries the fabric's event-ordering rank.
func (n *Network) Inject(src packet.Coord, p *packet.Packet, wire int) {
	prev := n.eng.EnterDomain(sim.DomHub)
	defer n.eng.EnterDomain(prev)
	if !n.Contains(src) || !n.Contains(p.Dst) {
		panic(fmt.Sprintf("mesh: inject %v->%v outside mesh", src, p.Dst))
	}
	n.injectCount++
	if n.corruptEvery > 0 && n.injectCount%n.corruptEvery == 0 {
		p.Corrupt = true
	}
	w := n.getWorm()
	w.pkt = p
	w.wire = wire
	w.path = n.routeInto(w.path, src, p.Dst)
	w.injected = n.eng.Now()
	w.grantTime = n.eng.Now()
	if n.faults != nil {
		n.rollFaults(w, src)
	}
	n.stats.Injected++
	n.stats.TotalWireByte += uint64(wire)
	n.advance(w)
}

// rollFaults draws the injector's per-packet decisions for a worm being
// injected by src: drop, corrupt, duplicate, and the link-outage scan.
// A lost worm still pays its full wire journey (the channels it holds
// and the flit·hops it burns model the wasted traffic); only delivery
// is withheld.
func (n *Network) rollFaults(w *worm, src packet.Coord) {
	node := n.index(src)
	now := n.eng.Now()
	scope := n.reg.Node(node)
	if n.faults.DropPacket(node, now) {
		w.lost = true
		n.stats.FaultDropped++
		scope.Inc(obs.CtrFaultDrops)
		n.Tracer.Record(node, trace.Drop, trace.DropFault, 0)
	}
	if n.faults.CorruptPacket(node, now) {
		w.pkt.Corrupt = true
		n.stats.FaultCorrupted++
		scope.Inc(obs.CtrFaultCorrupts)
	}
	if n.faults.DupPacket(node, now) {
		w.dup = true
		n.stats.FaultDuplicated++
		scope.Inc(obs.CtrFaultDups)
	}
	if n.linkFault && !w.lost {
		for _, ch := range w.path {
			if ch.down(now) {
				w.lost = true
				n.stats.FaultLinkDrops++
				scope.Inc(obs.CtrFaultLinkDrops)
				break
			}
		}
	}
}

// advance claims channels for w's head starting at path[acquired], with
// w.grantTime the instant the next grant takes effect. The whole run of
// free channels is claimed in one pass — each successive grant instant
// computed arithmetically — ending in either a parked head (FIFO waiter
// on a busy channel; the release continues the worm) or a scheduled
// arrival at the ejection port.
func (n *Network) advance(w *worm) {
	for {
		ch := w.path[w.acquired]
		if ch.owner != nil || len(ch.waiters) > 0 {
			ch.waiters = append(ch.waiters, w)
			ch.stat.Wait(len(ch.waiters))
			return
		}
		n.take(ch, w)
		if w.acquired == len(w.path) {
			// Head is at the destination processor port.
			w.phase = phaseArrive
			n.eng.Schedule(w.grantTime+n.cfg.RouterLatency, w)
			return
		}
		// Head crosses this channel and arbitrates at the next router.
		w.grantTime += n.cfg.RouterLatency + n.cfg.FlitCycle
	}
}

// take records w's exclusive ownership of ch and advances the head.
func (n *Network) take(ch *channel, w *worm) {
	ch.owner = w
	w.acquired++
	n.stats.FlitHops += uint64(n.flits(w.wire))
	ch.stat.Take(n.flits(w.wire))
}

// arrive offers the worm's head to the destination endpoint. Lost
// worms (fault injection) skip the offer: the endpoint never sees them,
// but their tails still drain so the channels they hold release at the
// same instants a delivered worm's would.
func (n *Network) arrive(w *worm) {
	i := n.index(w.pkt.Dst)
	ep := n.eps[i]
	if ep == nil {
		n.eng.Fail(&fault.MachineCheck{
			Node: i, Kind: fault.CheckNoEndpoint, At: n.eng.Now(),
			Detail: fmt.Sprintf("worm from %v arrived at %v with no attached endpoint",
				w.pkt.Src, w.pkt.Dst),
		})
		w.lost = true
	}
	if w.lost {
		w.phase = phaseDrained
		n.eng.ScheduleAfter(n.WireTime(w.wire), w)
		return
	}
	if n.dead[i] {
		// Crashed node: the fabric bit-buckets the worm — it streams in
		// and drains normally (so the mesh cannot deadlock through the
		// corpse) and the endpoint's Deliver discards it.
		w.phase = phaseDrained
		n.eng.ScheduleAfter(n.WireTime(w.wire), w)
		return
	}
	if !ep.Accept(w.pkt, w.wire) {
		w.parked = true
		n.park[i] = w
		n.stats.Parked++
		n.Tracer.Record(i, trace.Park, 0, uint64(i))
		return
	}
	// Accepted: the body-flit train streams into the endpoint as one
	// batched event — WireTime covers the whole train arithmetically.
	w.phase = phaseDrained
	n.eng.ScheduleAfter(n.WireTime(w.wire), w)
}

// Unpark retries delivery of the worm parked at c, if any. Endpoints call
// this when receive space frees up (normally through Release).
func (n *Network) Unpark(c packet.Coord) {
	prev := n.eng.EnterDomain(sim.DomHub)
	defer n.eng.EnterDomain(prev)
	i := n.index(c)
	w := n.park[i]
	if w == nil {
		return
	}
	n.park[i] = nil
	w.parked = false
	n.arrive(w)
}

// Release is the endpoint's end-of-deposit fabric entry: it returns wire
// bytes of Incoming-FIFO occupancy (Endpoint.Credit), completes the
// packet's causal span (as a drop when the deposit discarded it), and
// retries the worm parked at c now that space freed up. Bundling the
// three keeps them a single atomic fabric action, so a partitioned run
// replays them at exactly the sequential point.
func (n *Network) Release(c packet.Coord, wire int, span uint64, dropped bool) {
	prev := n.eng.EnterDomain(sim.DomHub)
	defer n.eng.EnterDomain(prev)
	i := n.index(c)
	if ep := n.eps[i]; ep != nil {
		ep.Credit(wire)
	}
	if dropped {
		n.reg.SpanDropped(span, n.eng.Now())
	} else {
		n.reg.SpanDeposited(span, n.eng.Now())
	}
	w := n.park[i]
	if w == nil {
		return
	}
	n.park[i] = nil
	w.parked = false
	n.arrive(w)
}

// DropSpan completes a causal span as a drop at the fabric's clock. Node
// components use it for packets discarded before they ever reached the
// fabric (Outgoing-FIFO overflow), keeping span completion — shared
// machine-wide state — a fabric action in partitioned runs.
func (n *Network) DropSpan(span uint64) {
	prev := n.eng.EnterDomain(sim.DomHub)
	defer n.eng.EnterDomain(prev)
	n.reg.SpanDropped(span, n.eng.Now())
}

// SetDead marks the node at c crashed on the fabric side: worms arriving
// for it bit-bucket (drain without an endpoint offer) so the mesh cannot
// deadlock through a dead node. One-way until Reset.
func (n *Network) SetDead(c packet.Coord) {
	prev := n.eng.EnterDomain(sim.DomHub)
	defer n.eng.EnterDomain(prev)
	n.dead[n.index(c)] = true
}

// drained fires when the accepted worm's tail has passed: release its
// channels, account the delivery, and hand the packet to the endpoint.
// Lost worms are discarded here instead (their span completes as a
// drop); duplicated worms deliver a second, independently accounted
// copy back to back, which per-pair ordering places immediately after
// the original.
func (n *Network) drained(w *worm) {
	for _, ch := range w.path {
		n.release(ch, w)
	}
	pkt, wire := w.pkt, w.wire
	if w.lost {
		n.putWorm(w)
		n.reg.SpanDropped(pkt.Span, n.eng.Now())
		packet.Put(pkt)
		return
	}
	n.stats.Delivered++
	lat := n.eng.Now() - w.injected
	n.stats.TotalLatency += lat
	if lat > n.stats.MaxLatency {
		n.stats.MaxLatency = lat
	}
	var clone *packet.Packet
	if w.dup {
		clone = packet.Get()
		clone.Src, clone.Dst, clone.DstAddr = pkt.Src, pkt.Dst, pkt.DstAddr
		clone.Kind, clone.Interrupt = pkt.Kind, pkt.Interrupt
		clone.Rel, clone.Seq = pkt.Rel, pkt.Seq
		clone.Corrupt = pkt.Corrupt
		clone.Payload = append(clone.Payload, pkt.Payload...)
	}
	i := n.index(pkt.Dst)
	ep := n.eps[i]
	n.putWorm(w)
	ep.Deliver(pkt, wire)
	if clone != nil {
		// The duplicate pays its own Incoming-FIFO accounting; if the
		// FIFO refuses it, the copy dies to backpressure. A dead node
		// bit-buckets the copy like the original (no occupancy claimed).
		if n.dead[i] || ep.Accept(clone, wire) {
			ep.Deliver(clone, wire)
		} else {
			packet.Put(clone)
		}
	}
}

// release frees ch from w and grants the next FIFO waiter, continuing
// that waiter's head from wherever its virtual timing places it.
func (n *Network) release(ch *channel, w *worm) {
	if ch.owner != w {
		panic(fmt.Sprintf("mesh: %s released by non-owner", ch.name))
	}
	ch.owner = nil
	if len(ch.waiters) > 0 {
		next := ch.waiters[0]
		copy(ch.waiters, ch.waiters[1:])
		ch.waiters = ch.waiters[:len(ch.waiters)-1]
		// The channel may have freed before the waiter's head physically
		// arrives at its arbiter; occupancy starts no earlier than that.
		if now := n.eng.Now(); next.grantTime < now {
			next.grantTime = now
		}
		n.take(ch, next)
		if next.acquired == len(next.path) {
			next.phase = phaseArrive
			n.eng.Schedule(next.grantTime+n.cfg.RouterLatency, next)
			return
		}
		next.grantTime += n.cfg.RouterLatency + n.cfg.FlitCycle
		n.advance(next)
		return
	}
	if ch.injNode >= 0 && n.injFree[ch.injNode] != nil {
		n.injFree[ch.injNode]()
	}
}

// HeadLatency estimates the no-contention head latency between two
// coordinates for a packet of the given wire size: per-channel routing
// plus one final stream. Used by calibration tests.
func (n *Network) HeadLatency(src, dst packet.Coord) sim.Time {
	channels := sim.Time(src.Hops(dst) + 2)
	return channels*(n.cfg.RouterLatency+n.cfg.FlitCycle) - n.cfg.FlitCycle
}

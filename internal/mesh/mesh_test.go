package mesh

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// collector is a test endpoint with controllable acceptance.
type collector struct {
	net      *Network
	coord    packet.Coord
	accept   bool
	got      []*packet.Packet
	accepted int
	refused  int
}

func (c *collector) Accept(p *packet.Packet, wire int) bool {
	if !c.accept {
		c.refused++
		return false
	}
	c.accepted++
	return true
}

func (c *collector) Credit(wire int) {}

func (c *collector) Deliver(p *packet.Packet, wire int) { c.got = append(c.got, p) }

func build(t *testing.T, w, h int) (*sim.Engine, *Network, [][]*collector) {
	t.Helper()
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig(w, h))
	cols := make([][]*collector, h)
	for y := 0; y < h; y++ {
		cols[y] = make([]*collector, w)
		for x := 0; x < w; x++ {
			c := &collector{net: n, coord: packet.Coord{X: x, Y: y}, accept: true}
			cols[y][x] = c
			n.Attach(c.coord, c)
		}
	}
	return eng, n, cols
}

func pkt(src, dst packet.Coord, seq uint32) *packet.Packet {
	return &packet.Packet{Src: src, Dst: dst, DstAddr: 0, Payload: []byte{byte(seq), byte(seq >> 8), byte(seq >> 16), byte(seq >> 24)}}
}

func TestSingleDelivery(t *testing.T) {
	eng, n, cols := build(t, 3, 3)
	src, dst := packet.Coord{X: 0, Y: 0}, packet.Coord{X: 2, Y: 2}
	p := pkt(src, dst, 1)
	n.Inject(src, p, p.WireSize())
	eng.Run()
	c := cols[2][2]
	if len(c.got) != 1 || c.got[0] != p {
		t.Fatalf("delivered %d packets", len(c.got))
	}
	s := n.Stats()
	if s.Injected != 1 || s.Delivered != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.MaxLatency == 0 {
		t.Fatal("latency not recorded")
	}
}

func TestSelfDelivery(t *testing.T) {
	// A node can send to itself through its injection/ejection ports.
	eng, n, cols := build(t, 2, 2)
	c := packet.Coord{X: 1, Y: 1}
	p := pkt(c, c, 9)
	n.Inject(c, p, p.WireSize())
	eng.Run()
	if len(cols[1][1].got) != 1 {
		t.Fatal("self delivery failed")
	}
}

func TestHeadLatencyScalesWithHops(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	eng := sim.NewEngine()
	n := New(eng, cfg)
	near := n.HeadLatency(packet.Coord{X: 0, Y: 0}, packet.Coord{X: 1, Y: 0})
	far := n.HeadLatency(packet.Coord{X: 0, Y: 0}, packet.Coord{X: 3, Y: 3})
	if far <= near {
		t.Fatalf("head latency near=%v far=%v", near, far)
	}
	// 6 hops vs 1 hop: 5 extra channels.
	if far-near != 5*(cfg.RouterLatency+cfg.FlitCycle) {
		t.Fatalf("delta %v", far-near)
	}
}

func TestInOrderPerPair(t *testing.T) {
	eng, n, cols := build(t, 4, 1)
	src, dst := packet.Coord{X: 0, Y: 0}, packet.Coord{X: 3, Y: 0}
	const count = 50
	sent := 0
	// Pace injection off the injector-free callback, as the NIC does.
	var next func()
	next = func() {
		if sent >= count {
			return
		}
		p := pkt(src, dst, uint32(sent))
		sent++
		n.Inject(src, p, p.WireSize())
	}
	n.OnInjectorFree(src, next)
	next()
	eng.Run()
	c := cols[0][3]
	if len(c.got) != count {
		t.Fatalf("delivered %d/%d", len(c.got), count)
	}
	for i, p := range c.got {
		if p.Payload[0] != byte(i) {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestBackpressureParksAndResumes(t *testing.T) {
	eng, n, cols := build(t, 2, 1)
	src, dst := packet.Coord{X: 0, Y: 0}, packet.Coord{X: 1, Y: 0}
	rcv := cols[0][1]
	rcv.accept = false

	p1 := pkt(src, dst, 1)
	n.Inject(src, p1, p1.WireSize())
	eng.Run()
	if len(rcv.got) != 0 || rcv.refused == 0 {
		t.Fatal("packet should be parked")
	}
	if n.Stats().Parked == 0 {
		t.Fatal("park not counted")
	}
	// The injector is still held by the parked worm: backpressure.
	if !n.InjectorBusy(src) {
		t.Fatal("parked worm released its channels")
	}
	rcv.accept = true
	n.Unpark(dst)
	eng.Run()
	if len(rcv.got) != 1 {
		t.Fatal("unpark did not deliver")
	}
	if n.InjectorBusy(src) {
		t.Fatal("channels not released after delivery")
	}
}

func TestBlockedReceiverStallsUnrelatedTrafficThroughSharedChannels(t *testing.T) {
	// Wormhole semantics: a worm blocked at (2,0) holds the (0,0)->(1,0)
	// link, so a second worm needing that link waits, while traffic on
	// disjoint paths flows.
	eng, n, cols := build(t, 3, 2)
	blocked := cols[0][2]
	blocked.accept = false

	a := pkt(packet.Coord{X: 0, Y: 0}, packet.Coord{X: 2, Y: 0}, 1)
	n.Inject(packet.Coord{X: 0, Y: 0}, a, a.WireSize())
	eng.Run()

	// Same-path packet from (1,0): needs the (1,0)->(2,0) link held by a.
	b := pkt(packet.Coord{X: 1, Y: 0}, packet.Coord{X: 2, Y: 0}, 2)
	n.Inject(packet.Coord{X: 1, Y: 0}, b, b.WireSize())
	// Disjoint packet on the other row.
	c := pkt(packet.Coord{X: 0, Y: 1}, packet.Coord{X: 2, Y: 1}, 3)
	n.Inject(packet.Coord{X: 0, Y: 1}, c, c.WireSize())
	eng.Run()

	if len(cols[1][2].got) != 1 {
		t.Fatal("disjoint traffic was blocked")
	}
	if len(blocked.got) != 0 {
		t.Fatal("blocked receiver got data")
	}
	blocked.accept = true
	n.Unpark(packet.Coord{X: 2, Y: 0})
	eng.Run()
	if len(blocked.got) != 2 {
		t.Fatalf("after unblock: %d", len(blocked.got))
	}
	if blocked.got[0].Payload[0] != 1 || blocked.got[1].Payload[0] != 2 {
		t.Fatal("FIFO order violated across blocked worms")
	}
}

func TestConservationUnderRandomTraffic(t *testing.T) {
	// Property: every injected packet is delivered exactly once, with
	// per-pair order preserved, under random all-to-all traffic.
	eng, n, cols := build(t, 4, 4)
	rng := rand.New(rand.NewSource(99))
	type key struct{ s, d packet.Coord }
	sent := map[key][]uint32{}
	injected := 0

	// Pace per-source injection with the injector-free callback.
	var pump func(src packet.Coord)
	queue := map[packet.Coord][]*packet.Packet{}
	for i := 0; i < 400; i++ {
		src := packet.Coord{X: rng.Intn(4), Y: rng.Intn(4)}
		dst := packet.Coord{X: rng.Intn(4), Y: rng.Intn(4)}
		p := pkt(src, dst, uint32(i))
		p.Payload = append(p.Payload, make([]byte, rng.Intn(200))...)
		queue[src] = append(queue[src], p)
		sent[key{src, dst}] = append(sent[key{src, dst}], uint32(i))
	}
	pump = func(src packet.Coord) {
		q := queue[src]
		if len(q) == 0 {
			return
		}
		queue[src] = q[1:]
		injected++
		n.Inject(src, q[0], q[0].WireSize())
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			src := packet.Coord{X: x, Y: y}
			n.OnInjectorFree(src, func() { pump(src) })
			pump(src)
		}
	}
	eng.Run()

	got := map[key][]uint32{}
	total := 0
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			for _, p := range cols[y][x].got {
				k := key{p.Src, p.Dst}
				seq := uint32(p.Payload[0]) | uint32(p.Payload[1])<<8 | uint32(p.Payload[2])<<16 | uint32(p.Payload[3])<<24
				got[k] = append(got[k], seq)
				total++
			}
		}
	}
	if total != 400 || injected != 400 {
		t.Fatalf("conservation: injected %d delivered %d", injected, total)
	}
	for k, seqs := range sent {
		g := got[k]
		if len(g) != len(seqs) {
			t.Fatalf("pair %v: %d vs %d", k, len(g), len(seqs))
		}
		for i := range seqs {
			if g[i] != seqs[i] {
				t.Fatalf("pair %v out of order at %d", k, i)
			}
		}
	}
	if n.Stats().FlitHops == 0 {
		t.Fatal("flit-hop accounting missing")
	}
}

func TestWireTime(t *testing.T) {
	cfg := DefaultConfig(2, 2)
	eng := sim.NewEngine()
	n := New(eng, cfg)
	// 19 wire bytes at 8 B/flit = 3 flits.
	if n.WireTime(19) != 3*cfg.FlitCycle {
		t.Fatalf("WireTime(19) = %v", n.WireTime(19))
	}
	if n.WireTime(16) != 2*cfg.FlitCycle {
		t.Fatalf("WireTime(16) = %v", n.WireTime(16))
	}
}

func TestInjectOutsideMeshPanics(t *testing.T) {
	eng, n, _ := build(t, 2, 2)
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p := pkt(packet.Coord{X: 0, Y: 0}, packet.Coord{X: 5, Y: 5}, 0)
	n.Inject(packet.Coord{X: 0, Y: 0}, p, p.WireSize())
}

func TestEventualDeliveryUnderFlakyReceivers(t *testing.T) {
	// Endpoints refuse a random number of times before accepting (the
	// receiving NIC's FIFO repeatedly full); the deadlock-free routing
	// plus unparking must still deliver every packet exactly once.
	eng, n, cols := build(t, 3, 3)
	rng := rand.New(rand.NewSource(1234))

	refusals := map[packet.Coord]int{}
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			c := packet.Coord{X: x, Y: y}
			cols[y][x].accept = false
			refusals[c] = 1 + rng.Intn(4)
		}
	}
	// A background "drain" process unparks flaky endpoints over time.
	var pump func()
	pump = func() {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				c := packet.Coord{X: x, Y: y}
				col := cols[y][x]
				if !col.accept && col.refused >= refusals[c] {
					col.accept = true
				}
				// Retry regardless: a parked worm's Accept is re-asked,
				// counting another refusal until the endpoint relents.
				n.Unpark(c)
			}
		}
		eng.After(200*sim.Nanosecond, pump)
	}
	eng.After(200*sim.Nanosecond, pump)

	const total = 120
	sentCount := 0
	queues := map[packet.Coord][]*packet.Packet{}
	for i := 0; i < total; i++ {
		src := packet.Coord{X: rng.Intn(3), Y: rng.Intn(3)}
		dst := packet.Coord{X: rng.Intn(3), Y: rng.Intn(3)}
		queues[src] = append(queues[src], pkt(src, dst, uint32(i)))
	}
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			src := packet.Coord{X: x, Y: y}
			push := func() {
				q := queues[src]
				if len(q) == 0 {
					return
				}
				queues[src] = q[1:]
				sentCount++
				n.Inject(src, q[0], q[0].WireSize())
			}
			n.OnInjectorFree(src, push)
			push()
		}
	}
	// Run with a hard ceiling; the pump reschedules forever, so step a
	// bounded number of times and then verify.
	for i := 0; i < 2_000_000; i++ {
		if !eng.Step() {
			break
		}
		if n.Stats().Delivered == total {
			break
		}
	}
	if got := n.Stats().Delivered; got != total {
		t.Fatalf("delivered %d/%d under flaky receivers", got, total)
	}
	received := 0
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			received += len(cols[y][x].got)
		}
	}
	if received != total {
		t.Fatalf("endpoints saw %d packets", received)
	}
	if n.Stats().Parked == 0 {
		t.Fatal("no parks: flakiness never engaged, test vacuous")
	}
}

package msg

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/nic"
)

func TestSharedRegionBasics(t *testing.T) {
	m := core.New(core.ConfigFor(2, 2, nic.GenEISAPrototype))
	parts := endpointsOn(m, 0, 1, 2, 3)
	r, err := NewSharedRegion(m, parts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.SliceBytes() != 1024 {
		t.Fatalf("slice %d", r.SliceBytes())
	}
	// Each participant writes into its own slice.
	for i := 0; i < 4; i++ {
		if err := r.Write32(i, i*1024+4, uint32(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	r.Settle()
	// Everyone sees everything, locally.
	for reader := 0; reader < 4; reader++ {
		for owner := 0; owner < 4; owner++ {
			v, err := r.Read32(reader, owner*1024+4)
			if err != nil {
				t.Fatal(err)
			}
			if v != uint32(100+owner) {
				t.Fatalf("reader %d sees %d at slice %d", reader, v, owner)
			}
		}
	}
	if ok, off, _, who := r.Consistent(); !ok {
		t.Fatalf("replicas diverge at offset %d (participant %d)", off, who)
	}
}

func TestSharedRegionEnforcesOwnership(t *testing.T) {
	m := core.New(core.ConfigFor(2, 1, nic.GenEISAPrototype))
	r, err := NewSharedRegion(m, endpointsOn(m, 0, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write32(0, 3000, 1); err == nil {
		t.Fatal("write into a foreign slice accepted")
	}
	if err := r.Write32(1, 100, 1); err == nil {
		t.Fatal("write into a foreign slice accepted")
	}
	if err := r.Write32(0, -4, 1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := r.Read32(0, 4096); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestSharedRegionRandomTraffic(t *testing.T) {
	// Property: after any interleaving of owner-slice writes and a
	// settle, all replicas agree and every written word holds its last
	// value.
	m := core.New(core.ConfigFor(3, 1, nic.GenEISAPrototype))
	parts := endpointsOn(m, 0, 1, 2)
	r, err := NewSharedRegion(m, parts, 3) // one page per owner slice
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	shadow := map[int]uint32{}
	for step := 0; step < 600; step++ {
		who := rng.Intn(3)
		off := who*r.SliceBytes() + 4*rng.Intn(r.SliceBytes()/4)
		v := rng.Uint32()
		if err := r.Write32(who, off, v); err != nil {
			t.Fatal(err)
		}
		shadow[off] = v
		if step%97 == 0 {
			r.Settle()
		}
	}
	r.Settle()
	if ok, off, _, who := r.Consistent(); !ok {
		t.Fatalf("divergence at %d (participant %d)", off, who)
	}
	for off, want := range shadow {
		for reader := 0; reader < 3; reader++ {
			v, _ := r.Read32(reader, off)
			if v != want {
				t.Fatalf("reader %d: offset %d = %#x want %#x", reader, off, v, want)
			}
		}
	}
}

package msg

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/vm"
)

// Table 1 reproduction: each primitive is hand-written in the ISA with
// exactly the algorithm the paper describes, and the harness arranges
// the run the way the paper's measurements assume — spin loops find
// their condition already satisfied, per-byte copy costs are excluded,
// and data generation/consumption is application work.

// Overhead is one Table 1 row: measured instruction counts and the
// paper's reported values.
type Overhead struct {
	Name        string
	Source      uint64
	Dest        uint64
	PaperSource uint64
	PaperDest   uint64
}

// Total returns source+destination instructions.
func (o Overhead) Total() uint64 { return o.Source + o.Dest }

// PaperTotal returns the paper's total.
func (o Overhead) PaperTotal() uint64 { return o.PaperSource + o.PaperDest }

func (o Overhead) String() string {
	return fmt.Sprintf("%-28s %3d (%d+%d)   paper: %3d (%d+%d)",
		o.Name, o.Total(), o.Source, o.Dest, o.PaperTotal(), o.PaperSource, o.PaperDest)
}

// --- single buffering (Figure 5) ---

// singleBufSender: wait for the buffer to be free (nbytes==0), then
// publish the message size. The data itself was produced in place by the
// application.
const singleBufSender = `
send:
	mov	eax, [FLAG]	; spin until buffer free
	test	eax, eax
	jnz	send
	mov	eax, [PRIV]	; application's nbytes
	mov	[FLAG], eax	; publish: propagates to receiver
	hlt
`

// Wait: that is 5 instructions (3 spin + load size + store). The paper
// counts 4 for the sender; its sender has nbytes at hand (an immediate
// or register). We pass nbytes in EDX from the caller, matching that.
const singleBufSender4 = `
send:
	mov	eax, [FLAG]	; spin until buffer free
	test	eax, eax
	jnz	send
	mov	[FLAG], edx	; publish nbytes: propagates to receiver
	hlt
`

// singleBufReceiver: wait for nbytes!=0, hand the size to the
// application, consume in place, release the buffer.
const singleBufReceiver = `
recv:
	mov	eax, [FLAG]	; spin until message present
	test	eax, eax
	jz	recv
	mov	[PRIV], eax	; deliver nbytes to the application
	mov	dword [FLAG], 0	; release: propagates back to sender
	hlt
`

// singleBufReceiverCopy additionally copies the message out of the
// receive buffer (12 added instructions; REP iterations are the per-byte
// cost the paper excludes).
const singleBufReceiverCopy = `
recv:
	mov	eax, [FLAG]	; spin until message present
	test	eax, eax
	jz	recv
	mov	[PRIV], eax	; deliver nbytes to the application
	push	esi		; -- copy out: 12 instructions --
	push	edi
	push	ecx
	mov	esi, RBUF
	mov	edi, PRIVCOPY	; private copy area
	mov	ecx, eax
	add	ecx, 3
	shr	ecx, 2
	rep movsd
	pop	ecx
	pop	edi
	pop	esi		; -- end copy --
	mov	dword [FLAG], 0	; release the buffer
	hlt
`

// MeasureSingleBuffering runs the single-buffering primitive end to end
// and returns its Table 1 row. withCopy selects the copying receiver.
func MeasureSingleBuffering(gen nic.Generation, withCopy bool) Overhead {
	return MeasureSingleBufferingCfg(core.ConfigFor(2, 1, gen), withCopy)
}

// MeasureSingleBufferingCfg is MeasureSingleBuffering on a pair built
// from the given config — the config-injection twin that lets the batch
// differential tests (and ablations) vary simulator knobs like
// Config.CPU.MaxBatch without touching the measured workload.
func MeasureSingleBufferingCfg(cfg core.Config, withCopy bool) Overhead {
	p := NewPairOn(cfg, 0, 1)
	_, rbuf := p.MapBuf("RBUF", 1, 1, nipt.SingleWriteAU)
	sflag, rflag := p.MapBuf("FLAG", 1, 1, nipt.SingleWriteAU)
	p.MapBack(sflag, rflag, 1, nipt.SingleWriteAU)
	p.RSyms["PRIVCOPY"] = p.RSyms["PRIV"] + 64
	p.Drain()

	// Application work: produce the message into the mapped send buffer
	// (propagates as it is written).
	payload := []byte("virtual memory mapped network interface!")
	sbuf := vm.VAddr(p.SSyms["RBUF"]) // sender-side address of the buffer
	p.WriteSender(sbuf, payload)

	sc := p.RunSender("singlebuf-send", singleBufSender4, "send",
		map[isa.Reg]uint32{isa.EDX: uint32(len(payload))})
	p.Drain()

	rsrc, name := singleBufReceiver, "single buffering"
	if withCopy {
		rsrc, name = singleBufReceiverCopy, "single buffering + copy"
	}
	rc := p.RunReceiver("singlebuf-recv", rsrc, "recv", nil)
	p.Drain()

	// Verify the message arrived and the flag round-tripped.
	if got := p.ReadReceiver(rbuf, len(payload)); !bytes.Equal(got, payload) {
		panic(fmt.Sprintf("msg: single buffering corrupted message: %q", got))
	}
	if nb := p.ReadReceiver(vm.VAddr(p.RSyms["PRIV"]), 4); int(nb[0]) != len(payload) {
		panic("msg: receiver did not see nbytes")
	}
	if fl := p.ReadSender(sflag, 4); !allZero(fl) {
		panic("msg: buffer-free flag did not propagate back to sender")
	}
	if withCopy {
		got := p.ReadReceiver(vm.VAddr(p.RSyms["PRIV"])+64, len(payload))
		if !bytes.Equal(got, payload) {
			panic(fmt.Sprintf("msg: copy-out corrupted message: %q", got))
		}
	}
	row := Overhead{Name: name, Source: sc.User, Dest: rc.User, PaperSource: 4, PaperDest: 5}
	if withCopy {
		row.PaperDest = 17
	}
	return row
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// --- double buffering (Figure 6) ---
//
// Two buffers per communication channel; the code toggles between them
// by flipping one address bit (the buffers are allocated 2-page
// aligned). The arrival flag is the last word of each buffer, written
// after the data so in-order delivery makes it a completion signal.

// flagOff is the in-buffer offset of the flag word.
const flagOff = phys.PageSize - 4

// Case 1: barrier synchronization between iterations guarantees both
// buffer states; the only per-message overhead is the pointer swap.
const doubleBufCase1Sender = `
send:
	xor	esi, TOGGLE	; swap send-buffer pointer
	hlt
`

const doubleBufCase1Receiver = `
recv:
	xor	edi, TOGGLE	; swap receive-buffer pointer
	hlt
`

// Case 2: the receiver uses this iteration's data, so it spins on the
// arrival flag; the sender's buffer is free by barrier.
const doubleBufCase2Sender = `
send:
	mov	eax, [PRIV]	; application's nbytes
	mov	[esi+FLAGOFF], eax
	xor	esi, TOGGLE
	hlt
`

const doubleBufCase2Receiver = `
recv:
	mov	eax, [edi+FLAGOFF]
	test	eax, eax
	jz	recv
	mov	dword [edi+FLAGOFF], 0	; local clear for the next lap
	xor	edi, TOGGLE
	hlt
`

// Case 3: no barrier at all — messages carry all synchronization. The
// sender also waits for its previous contents to be consumed (the
// receiver's flag clear propagates back on the complementary mapping).
const doubleBufCase3Sender = `
send:
	mov	eax, [esi+FLAGOFF]
	test	eax, eax
	jnz	send		; wait until previous contents consumed
	mov	[esi+FLAGOFF], edx
	xor	esi, TOGGLE
	hlt
`

const doubleBufCase3Receiver = `
recv:
	mov	eax, [edi+FLAGOFF]
	test	eax, eax
	jz	recv
	mov	dword [edi+FLAGOFF], 0	; consume: propagates back to sender
	xor	edi, TOGGLE
	hlt
`

// MeasureDoubleBuffering measures loop case 1, 2 or 3.
func MeasureDoubleBuffering(gen nic.Generation, loopCase int) Overhead {
	return MeasureDoubleBufferingCfg(core.ConfigFor(2, 1, gen), loopCase)
}

// MeasureDoubleBufferingCfg is MeasureDoubleBuffering on a pair built
// from the given config.
func MeasureDoubleBufferingCfg(cfg core.Config, loopCase int) Overhead {
	p := NewPairOn(cfg, 0, 1)
	sbuf, rbuf := p.MapBuf("BUF", 2, 2, nipt.SingleWriteAU)
	if loopCase == 3 {
		// Complementary mapping so the consumed signal propagates back.
		p.MapBack(sbuf, rbuf, 2, nipt.SingleWriteAU)
	}
	p.SSyms["TOGGLE"] = phys.PageSize
	p.RSyms["TOGGLE"] = phys.PageSize
	p.SSyms["FLAGOFF"] = flagOff
	p.RSyms["FLAGOFF"] = flagOff
	p.Drain()

	payload := []byte("double-buffered payload")
	p.WriteSender(sbuf, payload)

	var ssrc, rsrc string
	var paperS, paperD uint64
	switch loopCase {
	case 1:
		ssrc, rsrc, paperS, paperD = doubleBufCase1Sender, doubleBufCase1Receiver, 1, 1
	case 2:
		ssrc, rsrc, paperS, paperD = doubleBufCase2Sender, doubleBufCase2Receiver, 3, 5
	case 3:
		ssrc, rsrc, paperS, paperD = doubleBufCase3Sender, doubleBufCase3Receiver, 5, 5
	default:
		panic("msg: double buffering has loop cases 1..3")
	}
	if loopCase == 2 {
		// nbytes comes from application memory in this variant.
		p.WriteSender(vm.VAddr(p.SSyms["PRIV"]), []byte{byte(len(payload)), 0, 0, 0})
	}

	sc := p.RunSender("doublebuf-send", ssrc, "send", map[isa.Reg]uint32{
		isa.ESI: uint32(sbuf),
		isa.EDX: uint32(len(payload)),
	})
	p.Drain()
	rc := p.RunReceiver("doublebuf-recv", rsrc, "recv", map[isa.Reg]uint32{
		isa.EDI: uint32(rbuf),
	})
	p.Drain()

	if loopCase != 1 {
		if got := p.ReadReceiver(rbuf, len(payload)); !bytes.Equal(got, payload) {
			panic(fmt.Sprintf("msg: double buffering corrupted message: %q", got))
		}
		if fl := p.ReadReceiver(rbuf+flagOff, 4); !allZero(fl) {
			panic("msg: receiver flag not cleared")
		}
	}
	if loopCase == 3 {
		if fl := p.ReadSender(sbuf+flagOff, 4); !allZero(fl) {
			panic("msg: consumed signal did not propagate back")
		}
	}
	return Overhead{
		Name:        fmt.Sprintf("double buffering (case %d)", loopCase),
		Source:      sc.User,
		Dest:        rc.User,
		PaperSource: paperS,
		PaperDest:   paperD,
	}
}

// --- deliberate-update transfer (§4.3) ---

// deliberateSend is the send macro: compute the command address and word
// count, check for the page-crossing case, and initiate with a locked
// CMPXCHG until accepted. 13 instructions on the simplest (single-page)
// path.
const deliberateSend = `
dsend:
	mov	edi, esi	; command address = data address + delta
	add	edi, CMDDELTA
	mov	ecx, ebx	; word count = ceil(nbytes/4)
	add	ecx, 3
	shr	ecx, 2
	mov	edx, esi	; does the transfer cross a page boundary?
	and	edx, 4095
	add	edx, ebx
	cmp	edx, 4096
	ja	dsend_multi
retry:
	xor	eax, eax
	lock cmpxchg [edi], ecx	; read status; if engine free, start
	jnz	retry
	hlt

dsend_multi:
	; Page-crossing transfers issue a series of single-page commands;
	; preparing the next command overlaps the running DMA (§5.2).
	mov	edx, 4096	; bytes that fit in the current page
	mov	eax, esi
	and	eax, 4095
	sub	edx, eax
	mov	ecx, edx
	shr	ecx, 2		; words this round
multi_retry:
	xor	eax, eax
	lock cmpxchg [edi], ecx
	jnz	multi_retry
	add	esi, edx	; advance to the next page while DMA runs
	add	edi, edx
	sub	ebx, edx
	jz	multi_done	; transfer ended exactly on a page boundary
	mov	edx, esi
	and	edx, 4095
	add	edx, ebx
	cmp	edx, 4096
	ja	dsend_multi
	mov	ecx, ebx	; final partial page
	add	ecx, 3
	shr	ecx, 2
final_retry:
	xor	eax, eax
	lock cmpxchg [edi], ecx
	jnz	final_retry
multi_done:
	hlt
`

// deliberateCheck is the 2-instruction completion test: a command-page
// read returns 0 iff the DMA engine is idle.
const deliberateCheck = `
dcheck:
	mov	eax, [edi]
	test	eax, eax
	hlt
`

// MeasureDeliberateUpdate measures the single-page deliberate-update
// send (13 instructions) plus the completion check (2).
func MeasureDeliberateUpdate(gen nic.Generation) Overhead {
	return MeasureDeliberateUpdateCfg(core.ConfigFor(2, 1, gen))
}

// MeasureDeliberateUpdateCfg is MeasureDeliberateUpdate on a pair built
// from the given config.
func MeasureDeliberateUpdateCfg(cfg core.Config) Overhead {
	p := NewPairOn(cfg, 0, 1)
	sbuf, rbuf := p.MapBuf("DBUF", 1, 1, nipt.DeliberateUpdate)
	p.GrantCmd(sbuf, 1)
	p.Drain()

	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	p.WriteSender(sbuf, payload)
	p.Drain()

	sc := p.RunSender("deliberate-send", deliberateSend, "dsend", map[isa.Reg]uint32{
		isa.ESI: uint32(sbuf),
		isa.EBX: uint32(len(payload)),
	})
	p.Drain() // DMA completes

	cc := p.RunSender("deliberate-check", deliberateCheck, "dcheck", map[isa.Reg]uint32{
		isa.EDI: uint32(sbuf) + CmdDelta,
	})
	p.Drain()
	if !p.S.CPU.ZF {
		panic("msg: deliberate-update completion check found engine busy after drain")
	}
	if got := p.ReadReceiver(rbuf, len(payload)); !bytes.Equal(got, payload) {
		panic("msg: deliberate update corrupted message")
	}
	return Overhead{
		Name:        "deliberate-update transfer",
		Source:      sc.User + cc.User,
		Dest:        0,
		PaperSource: 15,
		PaperDest:   0,
	}
}

// MeasureMultiPageDeliberate exercises the page-crossing path of the
// send macro (not a Table 1 row; used by tests and the ablation bench).
// It returns the sender instruction count.
func MeasureMultiPageDeliberate(gen nic.Generation, bytes int) (Counts, bool) {
	return MeasureMultiPageDeliberateCfg(core.ConfigFor(2, 1, gen), bytes)
}

// MeasureMultiPageDeliberateCfg is MeasureMultiPageDeliberate on a pair
// built from the given config.
func MeasureMultiPageDeliberateCfg(cfg core.Config, bytes int) (Counts, bool) {
	p := NewPairOn(cfg, 0, 1)
	pages := (bytes + phys.PageSize - 1) / phys.PageSize
	sbuf, rbuf := p.MapBuf("DBUF", pages, 1, nipt.DeliberateUpdate)
	p.GrantCmd(sbuf, pages)
	p.Drain()

	payload := make([]byte, bytes)
	for i := range payload {
		payload[i] = byte(i*13 + 5)
	}
	p.WriteSender(sbuf, payload)
	p.Drain()

	// Start mid-page to force crossing when bytes > one page remainder.
	sc := p.RunSender("deliberate-send", deliberateSend, "dsend", map[isa.Reg]uint32{
		isa.ESI: uint32(sbuf),
		isa.EBX: uint32(bytes),
	})
	p.Drain()
	ok := true
	got := p.ReadReceiver(rbuf, bytes)
	for i := range got {
		if got[i] != payload[i] {
			ok = false
			break
		}
	}
	return sc, ok
}

// MeasureTable1 produces every row of Table 1 (csend/crecv rows come
// from the nx2 files).
func MeasureTable1(gen nic.Generation) []Overhead {
	return MeasureTable1Cfg(core.ConfigFor(2, 1, gen))
}

// MeasureTable1Cfg is MeasureTable1 with every harness built from the
// given config.
func MeasureTable1Cfg(cfg core.Config) []Overhead {
	rows := []Overhead{
		MeasureSingleBufferingCfg(cfg, false),
		MeasureSingleBufferingCfg(cfg, true),
		MeasureDoubleBufferingCfg(cfg, 1),
		MeasureDoubleBufferingCfg(cfg, 2),
		MeasureDoubleBufferingCfg(cfg, 3),
		MeasureDeliberateUpdateCfg(cfg),
	}
	rows = append(rows, MeasureNX2Cfg(cfg))
	return rows
}

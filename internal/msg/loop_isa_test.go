package msg

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/vm"
)

// The full Figure 6 pipeline, in assembly, both CPUs running
// concurrently: a producer fills alternating buffers and publishes a
// size flag; a consumer validates each message, clears the flag (which
// propagates back as the consumed signal), and toggles. This is loop
// case 3 — all synchronization carried by messages — executed for many
// iterations rather than the single measured iteration of Table 1.

const producerLoop = `
prod:
	mov	ecx, ITERS
	mov	ebx, 1		; message value seed
ploop:
pwait:	mov	eax, [esi+FLAGOFF]	; wait: previous contents consumed
	test	eax, eax
	jnz	pwait
	mov	[esi], ebx	; produce a 16-byte message
	mov	eax, ebx
	add	eax, 100
	mov	[esi+4], eax
	add	eax, 100
	mov	[esi+8], eax
	add	eax, 100
	mov	[esi+12], eax
	mov	dword [esi+FLAGOFF], 16	; publish nbytes
	xor	esi, TOGGLE
	inc	ebx
	loop	ploop
	hlt
`

const consumerLoop = `
cons:
	mov	ecx, ITERS
	mov	ebx, 1
cloop:
cwait:	mov	eax, [edi+FLAGOFF]
	test	eax, eax
	jz	cwait
	cmp	eax, 16		; nbytes as published
	jne	fail
	mov	eax, [edi]	; validate the message body
	cmp	eax, ebx
	jne	fail
	mov	eax, [edi+12]
	mov	edx, ebx
	add	edx, 300
	cmp	eax, edx
	jne	fail
	mov	dword [edi+FLAGOFF], 0	; consume: propagates back
	xor	edi, TOGGLE
	inc	ebx
	loop	cloop
	hlt
fail:
	mov	dword [PRIV], 0xdead
	hlt
`

func TestISADoubleBufferLoopConcurrent(t *testing.T) {
	const iters = 40
	p := NewPair(nic.GenEISAPrototype)
	sbuf, rbuf := p.MapBuf("BUF", 2, 2, nipt.SingleWriteAU)
	p.MapBack(sbuf, rbuf, 2, nipt.SingleWriteAU)
	for _, syms := range []map[string]int64{p.SSyms, p.RSyms} {
		syms["TOGGLE"] = 4096
		syms["FLAGOFF"] = flagOff
		syms["ITERS"] = iters
	}
	p.Drain()

	prod := isa.MustAssemble("producer", producerLoop, p.SSyms)
	cons := isa.MustAssemble("consumer", consumerLoop, p.RSyms)

	p.S.K.BindProcess(p.PS)
	p.S.CPU.Load(prod)
	p.S.CPU.R = [8]uint32{}
	p.S.CPU.R[isa.ESP] = uint32(p.SSyms["STKTOP"])
	p.S.CPU.R[isa.ESI] = uint32(sbuf)
	if err := p.S.CPU.Start("prod"); err != nil {
		t.Fatal(err)
	}
	p.R.K.BindProcess(p.PR)
	p.R.CPU.Load(cons)
	p.R.CPU.R = [8]uint32{}
	p.R.CPU.R[isa.ESP] = uint32(p.RSyms["STKTOP"])
	p.R.CPU.R[isa.EDI] = uint32(rbuf)
	if err := p.R.CPU.Start("cons"); err != nil {
		t.Fatal(err)
	}

	p.M.RunUntilIdle(100_000_000)
	for _, cpu := range []*isa.CPU{p.S.CPU, p.R.CPU} {
		if !cpu.Halted() || cpu.Err() != nil {
			t.Fatalf("cpu did not finish cleanly: halted=%v err=%v eip=%d",
				cpu.Halted(), cpu.Err(), cpu.EIP())
		}
	}
	if mark := p.ReadReceiver(vm.VAddr(p.RSyms["PRIV"]), 4); mark[0] == 0xad {
		t.Fatal("consumer hit the fail path: message corrupted")
	}
	if p.S.CPU.R[isa.EBX] != iters+1 || p.R.CPU.R[isa.EBX] != iters+1 {
		t.Fatalf("iterations: producer ebx=%d consumer ebx=%d",
			p.S.CPU.R[isa.EBX], p.R.CPU.R[isa.EBX])
	}
}

// TestISADMABackoffPolling drives the §4.3 status-read protocol from
// assembly while a large transfer runs: the command-page read returns
// remaining<<1|match, so user code can watch the count fall and the
// address-match bit distinguish its own transfer.
func TestISADMABackoffPolling(t *testing.T) {
	p := NewPair(nic.GenEISAPrototype)
	sbuf, _ := p.MapBuf("DBUF", 1, 1, nipt.DeliberateUpdate)
	p.GrantCmd(sbuf, 1)
	p.Drain()
	payload := make([]byte, 4096)
	p.WriteSender(sbuf, payload)
	p.Drain()

	// Start a full-page transfer, then poll: record the first status
	// value (remaining<<1|1) and spin until complete.
	src := `
poll:
	mov	edi, DBUF
	add	edi, CMDDELTA
	mov	ecx, 1024	; words: whole page
	xor	eax, eax
	lock cmpxchg [edi], ecx
	jnz	poll		; (engine free at start: not taken)
	mov	ebx, [edi]	; first status read while busy
spin:
	mov	eax, [edi]
	test	eax, eax
	jnz	spin		; backoff loop until complete
	hlt
`
	c := p.RunSender("dma-poll", src, "poll", nil)
	if c.User == 0 {
		t.Fatal("no instructions counted")
	}
	status := p.S.CPU.R[isa.EBX]
	if status&1 != 1 {
		t.Fatalf("address-match bit clear in first status %#x", status)
	}
	if remaining := status >> 1; remaining == 0 || remaining > 1024 {
		t.Fatalf("remaining %d out of range", remaining)
	}
	p.Drain()
	// Engine idle at the end.
	if p.S.NIC.DMABusy() {
		t.Fatal("engine busy after drain")
	}
}

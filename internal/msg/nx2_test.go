package msg

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/nic"
)

func TestNX2MultipleMessages(t *testing.T) {
	// Several messages back to back: ring cursors, sequence numbers and
	// flow-control counters all advance; FIFO order holds.
	n := NewNX2Pair(nic.GenEISAPrototype, 3)
	var sent [][]byte
	for i := 0; i < 6; i++ {
		payload := []byte(fmt.Sprintf("message number %d with body length variation %s",
			i, bytes.Repeat([]byte("x"), i*7)))
		sent = append(sent, payload)
		n.Csend(payload)
		n.Drain()
	}
	for i, want := range sent {
		_, got := n.Crecv(2048)
		n.Drain()
		if !bytes.Equal(got, want) {
			t.Fatalf("message %d: %q != %q", i, got, want)
		}
	}
}

func TestNX2InterleavedSendRecv(t *testing.T) {
	n := NewNX2Pair(nic.GenEISAPrototype, 5)
	for i := 0; i < 12; i++ {
		want := []byte(fmt.Sprintf("interleaved %02d", i))
		n.Csend(want)
		n.Drain()
		_, got := n.Crecv(2048)
		n.Drain()
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d", i)
		}
	}
}

func TestNX2RingWrap(t *testing.T) {
	// Push enough bytes through the one-page ring that both sides take
	// the wrap path (each record is 12+payload, ring is 4096).
	n := NewNX2Pair(nic.GenEISAPrototype, 7)
	payload := make([]byte, 700)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	for round := 0; round < 20; round++ {
		payload[0] = byte(round)
		n.Csend(payload)
		n.Drain()
		_, got := n.Crecv(2048)
		n.Drain()
		if !bytes.Equal(got, payload) {
			t.Fatalf("round %d corrupted after wrap", round)
		}
	}
}

func TestNX2CountsStableAcrossMessages(t *testing.T) {
	// The fast path costs the same for every message (73+78), message
	// after message — no hidden state growth.
	n := NewNX2Pair(nic.GenEISAPrototype, 9)
	payload := []byte("steady state cost probe")
	for i := 0; i < 5; i++ {
		sc := n.Csend(payload)
		n.Drain()
		rc, _ := n.Crecv(2048)
		n.Drain()
		if sc.User != 73 || rc.User != 78 {
			t.Fatalf("message %d: %d+%d, want 73+78", i, sc.User, rc.User)
		}
	}
}

func TestBaselineSecondMessage(t *testing.T) {
	// The kernel-mediated baseline's buffer pool, queues and ring
	// cursors survive reuse.
	b := NewBaselinePair(nic.GenEISAPrototype)
	for i := 0; i < 4; i++ {
		want := []byte(fmt.Sprintf("baseline message %d", i))
		b.Csend(9, want)
		b.Drain()
		_, got := b.Crecv(9, 256)
		b.Drain()
		if !bytes.Equal(got, want) {
			t.Fatalf("message %d: %q", i, got)
		}
	}
}

func TestDeliberateMultiPageMacro(t *testing.T) {
	// The page-crossing branch of the §4.3 send macro.
	for _, size := range []int{4096, 5000, 8192, 12288} {
		counts, ok := MeasureMultiPageDeliberate(nic.GenEISAPrototype, size)
		if !ok {
			t.Fatalf("size %d: data corrupted", size)
		}
		if counts.User < 13 {
			t.Fatalf("size %d: suspicious count %d", size, counts.User)
		}
	}
}

package msg

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Differential tests for the superblock trace cache and spin fast-forward
// (Config.CPU.TraceCache / SpinFastForward): like batching, both are pure
// simulator optimizations, so every simulated result must be bit-identical
// to per-instruction stepping. The reference for each suite is
// batchCfg(1) — MaxBatch=1 disables batching, trace dispatch, and
// fast-forward all at once, leaving the pristine interpreter.

type traceMode struct {
	name        string
	trace, spin bool
}

var traceVariants = []traceMode{
	{"trace-off", false, false},
	{"trace-on", true, false},
	{"trace+spin", true, true},
}

// traceCfg returns the 2-node batched config with the given trace/spin
// settings.
func traceCfg(tm traceMode) core.Config {
	cfg := batchCfg(64)
	cfg.CPU.TraceCache = tm.trace
	cfg.CPU.SpinFastForward = tm.spin
	return cfg
}

// TestTraceDifferentialTable1 pins every Table 1 row across trace modes,
// with metrics layered on top of the fastest mode.
func TestTraceDifferentialTable1(t *testing.T) {
	want := MeasureTable1Cfg(batchCfg(1))
	for _, tm := range traceVariants {
		if got := MeasureTable1Cfg(traceCfg(tm)); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s changed Table 1:\n got  %+v\n want %+v", tm.name, got, want)
		}
	}
	instr := traceCfg(traceVariants[2])
	instr.Metrics = true
	if got := MeasureTable1Cfg(instr); !reflect.DeepEqual(got, want) {
		t.Fatalf("trace+spin with metrics on changed Table 1:\n got  %+v\n want %+v", got, want)
	}
}

// TestTraceDifferentialBaseline pins the kernel-mediated NX/2 baseline:
// traps, IRQs, kernel/user mode switches, and the kcrecv_spin receive
// wait — the §5 idiom spin fast-forward targets.
func TestTraceDifferentialBaseline(t *testing.T) {
	want := MeasureBaselineCfg(batchCfg(1))
	for _, tm := range traceVariants {
		if got := MeasureBaselineCfg(traceCfg(tm)); got != want {
			t.Fatalf("%s changed baseline:\n got  %+v\n want %+v", tm.name, got, want)
		}
	}
}

// TestTraceDifferentialConcurrentLoop compares the complete observable
// machine state of the two-CPU Figure 6 pipeline across trace modes, as
// parallel subtests so -race observes concurrent machines.
func TestTraceDifferentialConcurrentLoop(t *testing.T) {
	want := runConcurrentLoop(t, batchCfg(1))
	for _, tm := range traceVariants {
		t.Run(tm.name, func(t *testing.T) {
			t.Parallel()
			if got := runConcurrentLoop(t, traceCfg(tm)); got != want {
				t.Fatalf("%s diverged:\n got  %+v\n want %+v", tm.name, got, want)
			}
		})
	}
}

// runPingPongPair drives the concurrent ping-pong (both CPUs spinning on
// AU-mapped flags) on a prepared pair and snapshots the machine state.
func runPingPongPair(t *testing.T, p *Pair) pairRun {
	t.Helper()
	const rounds = 25
	pout, _ := p.MapBuf("FWD", 1, 1, nipt.SingleWriteAU)
	qout, err := p.PR.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	pecho, err := p.PS.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, fut := p.R.K.Map(p.PR, qout, 4096, p.S.ID, p.PS.PID, pecho, nipt.SingleWriteAU); true {
		if err := p.M.Await(fut); err != nil {
			t.Fatal(err)
		}
	}
	p.SSyms["POUT"] = int64(pout)
	p.SSyms["PECHO"] = int64(pecho)
	p.SSyms["ROUNDS"] = rounds
	p.RSyms["QIN"] = p.RSyms["FWD"]
	p.RSyms["QOUT"] = int64(qout)
	p.RSyms["ROUNDS"] = rounds
	p.Drain()

	pingProg := isa.MustAssemble("ping", pingSrc, p.SSyms)
	pongProg := isa.MustAssemble("pong", pongSrc, p.RSyms)

	p.S.K.BindProcess(p.PS)
	p.S.CPU.Load(pingProg)
	p.S.CPU.R = [8]uint32{}
	p.S.CPU.R[isa.ESP] = uint32(p.SSyms["STKTOP"])
	p.S.CPU.ResetCounters()
	if err := p.S.CPU.Start("ping"); err != nil {
		t.Fatal(err)
	}
	p.R.K.BindProcess(p.PR)
	p.R.CPU.Load(pongProg)
	p.R.CPU.R = [8]uint32{}
	p.R.CPU.R[isa.ESP] = uint32(p.RSyms["STKTOP"])
	p.R.CPU.ResetCounters()
	if err := p.R.CPU.Start("pong"); err != nil {
		t.Fatal(err)
	}
	p.M.RunUntilIdle(50_000_000)
	for _, cpu := range []*isa.CPU{p.S.CPU, p.R.CPU} {
		if !cpu.Halted() || cpu.Err() != nil {
			t.Fatalf("cpu did not finish cleanly: halted=%v err=%v eip=%d",
				cpu.Halted(), cpu.Err(), cpu.EIP())
		}
	}
	return pairRun{
		End:  p.M.Eng.Now(),
		SCPU: p.S.CPU.Counters(), RCPU: p.R.CPU.Counters(),
		SRegs: p.S.CPU.R, RRegs: p.R.CPU.R,
		SNIC: p.S.NIC.Stats(), RNIC: p.R.NIC.Stats(),
		SXbus: p.S.Xbus.Stats(), RXbus: p.R.Xbus.Stats(),
		SCache: p.S.Cache.Stats(), RCache: p.R.Cache.Stats(),
	}
}

func runPingPong(t *testing.T, cfg core.Config) pairRun {
	t.Helper()
	return runPingPongPair(t, NewPairOn(cfg, 0, 1))
}

// TestTraceDifferentialPingPong pins spin fast-forward == literal
// spinning on the workload that is almost entirely spin: both CPUs wait
// on AU-propagated flags for 25 round trips.
func TestTraceDifferentialPingPong(t *testing.T) {
	want := runPingPong(t, batchCfg(1))
	for _, tm := range traceVariants {
		t.Run(tm.name, func(t *testing.T) {
			t.Parallel()
			if got := runPingPong(t, traceCfg(tm)); got != want {
				t.Fatalf("%s diverged:\n got  %+v\n want %+v", tm.name, got, want)
			}
		})
	}
}

// TestTraceMetricsOnChangesNothing is the explicit observability
// contract: attaching the metrics registry to the fastest configuration
// (trace + spin fast-forward) changes no simulated result.
func TestTraceMetricsOnChangesNothing(t *testing.T) {
	plain := traceCfg(traceVariants[2])
	want := runPingPong(t, plain)
	metered := plain
	metered.Metrics = true
	if got := runPingPong(t, metered); got != want {
		t.Fatalf("metrics on diverged:\n got  %+v\n want %+v", got, want)
	}
}

// TestTraceRecorderOnChangesNothing extends the observability contract
// to the flight recorder and the watchdog: sampling the registry at a
// fixed cadence — and running progress checks that never trip — over the
// ISA-level ping-pong changes no simulated result.
func TestTraceRecorderOnChangesNothing(t *testing.T) {
	plain := traceCfg(traceVariants[2])
	plain.Metrics = true
	want := runPingPong(t, plain)
	armed := plain
	armed.Recorder = obs.RecorderConfig{Interval: 5 * sim.Microsecond, Capacity: 128}
	armed.Watchdog = core.WatchdogConfig{Interval: 20 * sim.Microsecond}
	if got := runPingPong(t, armed); got != want {
		t.Fatalf("recorder+watchdog armed diverged:\n got  %+v\n want %+v", got, want)
	}
}

// dmaPollRun snapshots the §4.3 status-poll workload: a command-page
// spin is uncacheable, so fast-forward must decline it and step
// literally — and still agree exactly.
type dmaPollRun struct {
	End    sim.Time
	Counts Counts
	Status uint32
	NIC    nic.Stats
}

func runDMAPoll(t *testing.T, cfg core.Config) dmaPollRun {
	t.Helper()
	p := NewPairOn(cfg, 0, 1)
	sbuf, _ := p.MapBuf("DBUF", 1, 1, nipt.DeliberateUpdate)
	p.GrantCmd(sbuf, 1)
	p.Drain()
	p.WriteSender(sbuf, make([]byte, 4096))
	p.Drain()
	src := `
poll:
	mov	edi, DBUF
	add	edi, CMDDELTA
	mov	ecx, 1024
	xor	eax, eax
	lock cmpxchg [edi], ecx
	jnz	poll
	mov	ebx, [edi]
spin:
	mov	eax, [edi]
	test	eax, eax
	jnz	spin
	hlt
`
	c := p.RunSender("dma-poll", src, "poll", nil)
	p.Drain()
	return dmaPollRun{
		End: p.M.Eng.Now(), Counts: c,
		Status: p.S.CPU.R[isa.EBX], NIC: p.S.NIC.Stats(),
	}
}

// TestTraceDifferentialDMAPoll: the command-space spin loop reads
// uncacheable DMA status, so every mode must retire the same literal
// poll sequence.
func TestTraceDifferentialDMAPoll(t *testing.T) {
	want := runDMAPoll(t, batchCfg(1))
	for _, tm := range traceVariants {
		if got := runDMAPoll(t, traceCfg(tm)); got != want {
			t.Fatalf("%s diverged:\n got  %+v\n want %+v", tm.name, got, want)
		}
	}
}

// TestTraceDifferentialFaultsArmed runs trace modes under the fault
// injector: NIC stalls perturb event timing around the ping-pong spins,
// and drop/corrupt with the reliable layer exercises retransmission in
// the kernel-ring baseline. Both must stay bit-identical per config.
func TestTraceDifferentialFaultsArmed(t *testing.T) {
	t.Run("stalls-pingpong", func(t *testing.T) {
		stall := func(tm traceMode, batch int) core.Config {
			cfg := traceCfg(tm)
			cfg.CPU.MaxBatch = batch
			cfg.Faults = fault.Config{Seed: 7, StallPPM: 100_000}
			return cfg
		}
		want := runPingPong(t, stall(traceVariants[0], 1))
		for _, tm := range traceVariants {
			if got := runPingPong(t, stall(tm, 64)); got != want {
				t.Fatalf("%s diverged under stalls:\n got  %+v\n want %+v", tm.name, got, want)
			}
		}
	})
	t.Run("drops-baseline", func(t *testing.T) {
		lossy := func(tm traceMode, batch int) core.Config {
			cfg := traceCfg(tm)
			cfg.CPU.MaxBatch = batch
			cfg.Faults = fault.Config{Seed: 11, DropPPM: 50_000, CorruptPPM: 20_000, Reliable: true}
			return cfg
		}
		want := MeasureBaselineCfg(lossy(traceVariants[0], 1))
		for _, tm := range traceVariants {
			if got := MeasureBaselineCfg(lossy(tm, 64)); got != want {
				t.Fatalf("%s diverged under drops:\n got  %+v\n want %+v", tm.name, got, want)
			}
		}
	})
}

// TestTraceDifferentialResetReuse: a machine reused via Reset must
// replay the trace+spin run bit-identically — superblocks and the spin
// watcher must not leak across Reset.
func TestTraceDifferentialResetReuse(t *testing.T) {
	cfg := traceCfg(traceVariants[2])
	fresh := runPingPong(t, cfg)
	m := core.New(cfg)
	first := runPingPongPair(t, PairOn(m, 0, 1))
	if first != fresh {
		t.Fatalf("first run on reused machine diverged:\n got  %+v\n want %+v", first, fresh)
	}
	m.Reset()
	again := runPingPongPair(t, PairOn(m, 0, 1))
	// The engine clock restarts at zero after Reset, so the runs must
	// match in full — including End.
	if again != fresh {
		t.Fatalf("run after Reset diverged:\n got  %+v\n want %+v", again, fresh)
	}
}

// TestTraceCacheHitRateFloor asserts the trace cache actually earns its
// keep on the Table 1 §5 loop workload: after the warm-up pass of the
// concurrent producer/consumer pipeline, nearly every dispatch must hit
// a built superblock.
func TestTraceCacheHitRateFloor(t *testing.T) {
	cfg := traceCfg(traceVariants[2])
	cfg.Metrics = true
	const iters = 40
	p := NewPairOn(cfg, 0, 1)
	sbuf, rbuf := p.MapBuf("BUF", 2, 2, nipt.SingleWriteAU)
	p.MapBack(sbuf, rbuf, 2, nipt.SingleWriteAU)
	for _, syms := range []map[string]int64{p.SSyms, p.RSyms} {
		syms["TOGGLE"] = 4096
		syms["FLAGOFF"] = flagOff
		syms["ITERS"] = iters
	}
	p.Drain()
	prod := isa.MustAssemble("producer", producerLoop, p.SSyms)
	cons := isa.MustAssemble("consumer", consumerLoop, p.RSyms)
	p.S.K.BindProcess(p.PS)
	p.S.CPU.Load(prod)
	p.S.CPU.R = [8]uint32{}
	p.S.CPU.R[isa.ESP] = uint32(p.SSyms["STKTOP"])
	p.S.CPU.R[isa.ESI] = uint32(sbuf)
	if err := p.S.CPU.Start("prod"); err != nil {
		t.Fatal(err)
	}
	p.R.K.BindProcess(p.PR)
	p.R.CPU.Load(cons)
	p.R.CPU.R = [8]uint32{}
	p.R.CPU.R[isa.ESP] = uint32(p.RSyms["STKTOP"])
	p.R.CPU.R[isa.EDI] = uint32(rbuf)
	if err := p.R.CPU.Start("cons"); err != nil {
		t.Fatal(err)
	}
	p.M.RunUntilIdle(100_000_000)

	snap := p.M.Obs.Snapshot()
	var hits, misses uint64
	for _, n := range snap.Nodes {
		hits += n.Counters[obs.CtrTraceHits.String()]
		misses += n.Counters[obs.CtrTraceMisses.String()]
	}
	if hits+misses == 0 {
		t.Fatal("trace cache recorded no dispatches")
	}
	rate := float64(hits) / float64(hits+misses)
	if rate < 0.9 {
		t.Fatalf("trace-cache hit rate %.3f below 0.9 floor (hits=%d misses=%d)", rate, hits, misses)
	}
	t.Logf("trace-cache hit rate %.4f (hits=%d misses=%d)", rate, hits, misses)
}

// TestRemapInvalidatesStaleTranslation is the regression test for
// cached-translation invalidation: a store warms the micro-TLB for a
// page, the page is then remapped to a different frame, and the next
// store must land in the new frame — never through the stale cached
// translation into the old one.
func TestRemapInvalidatesStaleTranslation(t *testing.T) {
	p := NewPair(nic.GenEISAPrototype)
	va, err := p.PS.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	spare, err := p.PS.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	p.Drain()
	oldPTE, ok := p.PS.AS.Lookup(va.Page())
	if !ok {
		t.Fatal("no PTE for target page")
	}
	newPTE, ok := p.PS.AS.Lookup(spare.Page())
	if !ok {
		t.Fatal("no PTE for spare page")
	}
	p.SSyms["TGT"] = int64(va)

	// Warm the cached translation with a store through the old frame.
	p.RunSender("warm", "warm:\n\tmov dword [TGT], 0x11111111\n\thlt\n", "warm", nil)
	if v, _ := p.S.Cache.Load(oldPTE.Frame.Addr(0), 4); v != 0x11111111 {
		t.Fatalf("warm store missed old frame: %#x", v)
	}

	// Remap the virtual page onto the spare page's frame. The page-table
	// generation bump must invalidate the warm TLB entry.
	p.PS.AS.Map(va.Page(), vm.PTE{Frame: newPTE.Frame, Present: true, Writable: true})
	p.RunSender("poke", "poke:\n\tmov dword [TGT], 0x22222222\n\thlt\n", "poke", nil)

	if v, _ := p.S.Cache.Load(newPTE.Frame.Addr(0), 4); v != 0x22222222 {
		t.Fatalf("store after remap missed the new frame: got %#x", v)
	}
	if v, _ := p.S.Cache.Load(oldPTE.Frame.Addr(0), 4); v != 0x11111111 {
		t.Fatalf("store after remap hit the stale frame: old frame now %#x", v)
	}
}

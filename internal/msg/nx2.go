package msg

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/vm"
)

// NX/2 csend/crecv on SHRIMP (§5.2): the standard Intel send/receive
// semantics — typed messages, FIFO dispatch per type, system-style
// buffering — implemented entirely at user level on mapped memory.
// Buffer management moves out of the kernel: the "system buffer" is a
// receiver-side ring that the sender's ring page maps onto, and the two
// flow-control counters (produced, consumed) travel on complementary
// single-word mappings. The paper restricts message types to 16-bit
// integers with a single sender per type; so does this implementation.
//
// Ring record: three header words (nbytes; type<<16|seq; header
// checksum) followed by the payload padded to a word. A produced-bytes
// counter published through the mapping tells the receiver when records
// are complete (in-order delivery makes the counter a watermark); a
// consumed-bytes counter mapped the other way gives the sender flow
// control.

// Channel struct offsets (private memory, one struct per channel).
const (
	chType  = 0  // message type
	chState = 4  // 1 = open
	chRing  = 8  // VA of the local ring page
	chCtl   = 12 // VA of the counter word we publish (mapped out)
	chMir   = 16 // VA of the counter word we watch (mapped in)
	chCount = 20 // local cumulative byte count (produced / consumed)
	chOff   = 24 // ring cursor
	chSeq   = 28 // next sequence number
	chStat  = 32 // messages sent/received
	chSize  = 64
)

// nx2Consts are the assembler symbols shared by both routines.
func nx2Consts(syms map[string]int64) {
	for k, v := range map[string]int64{
		"CH_TYPE": chType, "CH_STATE": chState, "CH_RING": chRing,
		"CH_CTL": chCtl, "CH_MIR": chMir, "CH_COUNT": chCount,
		"CH_OFF": chOff, "CH_SEQ": chSeq, "CH_STAT": chStat,
		"RINGSZ": phys.PageSize, "MAXMSG": 2048, "WRAPMARK": 0x7fffffff,
	} {
		syms[k] = v
	}
}

// nx2Csend: EAX = message type, ESI = user buffer, EBX = nbytes.
// Returns EAX = 0 on success. The fast path (open channel, space
// available, no ring wrap) is the measured Table 1 row.
const nx2Csend = `
csend:
	push	ebp			; 1  callee-saved state
	push	edi			; 2
	push	ecx			; 3
	push	edx			; 4
	cmp	ebx, MAXMSG		; 5  validate length
	ja	csend_err
	test	ebx, ebx		; 7  zero-length messages disallowed
	jz	csend_err
	test	esi, 3			; 9  buffer must be word aligned
	jnz	csend_err
	mov	edx, eax		; 11 channel lookup: hash type
	and	edx, 15			; 12
	shl	edx, 3			; 13
	add	edx, CHTAB		; 14
	cmp	eax, [edx]		; 15 verify type (hash hit)
	jne	csend_err
	mov	ebp, [edx+4]		; 17 channel struct
	mov	edx, [ebp+CH_STATE]	; 18 channel must be open
	cmp	edx, 1			; 19
	jne	csend_err
	mov	ecx, ebx		; 21 record size = 12 + round4(nbytes)
	add	ecx, 15			; 22
	and	ecx, -4			; 23
	mov	edi, [ebp+CH_MIR]	; 24 flow control: spin for ring space
csend_space:
	mov	edx, [edi]		; 25 consumed (arrives via mapping)
	mov	eax, [ebp+CH_COUNT]	; 26 produced
	sub	eax, edx		; 27 bytes in flight
	add	eax, ecx		; 28
	cmp	eax, RINGSZ		; 29
	ja	csend_space
	mov	edx, [ebp+CH_OFF]	; 31 ring wrap check
	mov	eax, edx		; 32
	add	eax, ecx		; 33
	cmp	eax, RINGSZ		; 34
	ja	csend_wrap
	mov	edi, [ebp+CH_RING]	; 36 record address
	add	edi, edx		; 37
	mov	[edi], ebx		; 38 header: nbytes
	mov	eax, [ebp+CH_SEQ]	; 39 header: type<<16 | seq
	and	eax, 65535		; 40
	mov	edx, [ebp+CH_TYPE]	; 41
	shl	edx, 16			; 42
	or	edx, eax		; 43
	mov	[edi+4], edx		; 44
	xor	edx, ebx		; 45 header checksum
	mov	[edi+8], edx		; 46
	mov	eax, [ebp+CH_SEQ]	; 47 bump sequence
	inc	eax			; 48
	mov	[ebp+CH_SEQ], eax	; 49
	add	edi, 12			; 50 copy payload into the ring
	mov	eax, ecx		; 51 (save record size)
	mov	ecx, ebx		; 52
	add	ecx, 3			; 53
	shr	ecx, 2			; 54
	cld				; 55 string direction discipline
	rep movsd			; 56 per-byte cost excluded
	mov	ecx, eax		; 56
	mov	edx, [ebp+CH_OFF]	; 57 advance cursor
	add	edx, ecx		; 58
	mov	[ebp+CH_OFF], edx	; 59
	mov	eax, [ebp+CH_COUNT]	; 60 advance produced count
	add	eax, ecx		; 61
	mov	[ebp+CH_COUNT], eax	; 62
	mov	edi, [ebp+CH_CTL]	; 63 publish: propagates to receiver
	mov	[edi], eax		; 64
	mov	eax, [ebp+CH_STAT]	; 65 statistics
	inc	eax			; 66
	mov	[ebp+CH_STAT], eax	; 67
	xor	eax, eax		; 68 success
	pop	edx			; 69
	pop	ecx			; 70
	pop	edi			; 71
	pop	ebp			; 72
	ret				; 73 (sentinel return: uncounted)
	hlt

csend_wrap:
	; Not enough room before the end of the ring: publish a wrap record
	; and restart at offset zero. (Slow path, unmeasured.)
	mov	edi, [ebp+CH_RING]
	add	edi, edx
	mov	dword [edi], WRAPMARK
	mov	eax, [ebp+CH_COUNT]
	mov	edx, RINGSZ
	sub	edx, [ebp+CH_OFF]
	add	eax, edx
	mov	[ebp+CH_COUNT], eax
	mov	edi, [ebp+CH_CTL]
	mov	[edi], eax
	mov	dword [ebp+CH_OFF], 0
	mov	edx, 0
	mov	eax, edx
	add	eax, ecx
	cmp	eax, RINGSZ
	ja	csend_err		; message larger than the ring
	mov	eax, [ebp+CH_TYPE]
	jmp	csend_resume

csend_resume:
	; Re-enter the fast path after the wrap (space was already checked
	; against total in-flight bytes, which includes the wrap filler).
	mov	edx, [ebp+CH_OFF]
	mov	edi, [ebp+CH_RING]
	add	edi, edx
	mov	[edi], ebx
	mov	eax, [ebp+CH_SEQ]
	and	eax, 65535
	mov	edx, [ebp+CH_TYPE]
	shl	edx, 16
	or	edx, eax
	mov	[edi+4], edx
	xor	edx, ebx
	mov	[edi+8], edx
	mov	eax, [ebp+CH_SEQ]
	inc	eax
	mov	[ebp+CH_SEQ], eax
	add	edi, 12
	mov	eax, ecx
	mov	ecx, ebx
	add	ecx, 3
	shr	ecx, 2
	rep movsd
	mov	ecx, eax
	mov	edx, [ebp+CH_OFF]
	add	edx, ecx
	mov	[ebp+CH_OFF], edx
	mov	eax, [ebp+CH_COUNT]
	add	eax, ecx
	mov	[ebp+CH_COUNT], eax
	mov	edi, [ebp+CH_CTL]
	mov	[edi], eax
	xor	eax, eax
	pop	edx
	pop	ecx
	pop	edi
	pop	ebp
	ret
	hlt

csend_err:
	mov	eax, -1
	pop	edx
	pop	ecx
	pop	edi
	pop	ebp
	ret
	hlt
`

// nx2Crecv: EAX = message type, EDI = user buffer, EBX = max bytes.
// Returns EAX = received byte count (or -1). Fast path: the message has
// arrived, matches the requested type, no wrap.
const nx2Crecv = `
crecv:
	push	ebp			; 1
	push	esi			; 2
	push	ecx			; 3
	push	edx			; 4
	cmp	ebx, MAXMSG		; 5  validate limit
	ja	crecv_err
	test	edi, 3			; 7  buffer alignment
	jnz	crecv_err
	mov	edx, eax		; 9  channel lookup
	and	edx, 15			; 10
	shl	edx, 3			; 11
	add	edx, CHTAB		; 12
	cmp	eax, [edx]		; 13
	jne	crecv_err
	mov	ebp, [edx+4]		; 15
	mov	edx, [ebp+CH_STATE]	; 16 channel open?
	cmp	edx, 1			; 17
	jne	crecv_err
	mov	esi, [ebp+CH_MIR]	; 19 wait for data: produced mirror
crecv_wait:
	mov	edx, [esi]		; 20 produced (arrives via mapping)
	mov	ecx, [ebp+CH_COUNT]	; 21 consumed
	cmp	edx, ecx		; 22
	je	crecv_wait		; 23 (at least a header present when !=)
	mov	edx, [ebp+CH_OFF]	; 24 record address
	mov	esi, [ebp+CH_RING]	; 25
	add	esi, edx		; 26
	mov	edx, [esi]		; 27 header: nbytes
	cmp	edx, WRAPMARK		; 28 wrap record?
	je	crecv_wrap
	test	edx, edx		; 30 sanity: length nonzero
	jz	crecv_err
	cmp	edx, ebx		; 32 fits the user buffer?
	ja	crecv_err
	mov	ecx, [esi+4]		; 32 header: type<<16|seq
	mov	eax, ecx		; 33
	shr	eax, 16			; 34 carried type
	cmp	eax, [ebp+CH_TYPE]	; 35 FIFO dispatch: type must match
	jne	crecv_err
	mov	eax, ecx		; 37 verify header checksum
	xor	eax, edx		; 38
	cmp	eax, [esi+8]		; 39
	jne	crecv_err
	mov	eax, ecx		; 41 verify sequence
	and	eax, 65535		; 42
	mov	ecx, [ebp+CH_SEQ]	; 43
	and	ecx, 65535		; 44
	cmp	eax, ecx		; 45
	jne	crecv_err
	mov	eax, [ebp+CH_SEQ]	; 47 bump expected sequence
	inc	eax			; 48
	mov	[ebp+CH_SEQ], eax	; 49
	push	edx			; 52 save nbytes across the copy
	mov	ecx, edx		; 53 copy out of the ring
	add	ecx, 3			; 54
	shr	ecx, 2			; 55
	add	esi, 12			; 56
	cld				; 57 string direction discipline
	rep movsd			; 58 per-byte cost excluded
	pop	edx			; 56
	mov	ecx, edx		; 57 record size = 12 + round4
	add	ecx, 15			; 58
	and	ecx, -4			; 59
	mov	eax, [ebp+CH_OFF]	; 60 advance cursor
	add	eax, ecx		; 61
	mov	[ebp+CH_OFF], eax	; 62
	mov	eax, [ebp+CH_COUNT]	; 63 advance consumed count
	add	eax, ecx		; 64
	mov	[ebp+CH_COUNT], eax	; 65
	mov	esi, [ebp+CH_CTL]	; 66 publish: flow control back
	mov	[esi], eax		; 67
	mov	eax, [ebp+CH_STAT]	; 68 statistics
	inc	eax			; 69
	mov	[ebp+CH_STAT], eax	; 70
	mov	eax, edx		; 71 return nbytes
	pop	edx			; 72
	pop	ecx			; 73
	pop	esi			; 74
	pop	ebp			; 75
	ret				; (sentinel: uncounted)
	hlt

crecv_wrap:
	; Consume the wrap filler and retry from offset zero.
	mov	eax, [ebp+CH_COUNT]
	mov	ecx, RINGSZ
	sub	ecx, [ebp+CH_OFF]
	add	eax, ecx
	mov	[ebp+CH_COUNT], eax
	mov	esi, [ebp+CH_CTL]
	mov	[esi], eax
	mov	dword [ebp+CH_OFF], 0
	mov	eax, [ebp+CH_TYPE]
	mov	esi, [ebp+CH_MIR]
	jmp	crecv_wait

crecv_err:
	mov	eax, -1
	pop	edx
	pop	ecx
	pop	esi
	pop	ebp
	ret
	hlt
`

// NX2Pair is a Pair with one NX/2 channel set up between the processes.
type NX2Pair struct {
	*Pair
	Type      uint32
	SendRing  vm.VAddr // sender-side ring page
	RecvRing  vm.VAddr // receiver-side ring page
	sChan     vm.VAddr // channel struct VAs
	rChan     vm.VAddr
	sPriv     vm.VAddr // user data staging areas
	rPriv     vm.VAddr
	csendProg *isa.Program
	crecvProg *isa.Program
}

// NewNX2Pair builds the channel: ring page sender→receiver, produced
// counter sender→receiver, consumed counter receiver→sender, channel
// structs and hash tables in private memory on both sides.
func NewNX2Pair(gen nic.Generation, msgType uint32) *NX2Pair {
	return NewNX2PairCfg(core.ConfigFor(2, 1, gen), msgType)
}

// NewNX2PairCfg is NewNX2Pair on a pair built from the given config.
func NewNX2PairCfg(cfg core.Config, msgType uint32) *NX2Pair {
	p := NewPairOn(cfg, 0, 1)
	nx2Consts(p.SSyms)
	nx2Consts(p.RSyms)
	n := &NX2Pair{Pair: p, Type: msgType}

	n.SendRing, n.RecvRing = p.MapBuf("RING", 1, 1, nipt.BlockedWriteAU)
	sctl, rctl := p.MapBuf("CTLPROD", 1, 1, nipt.SingleWriteAU) // produced →
	rcon, scon := func() (vm.VAddr, vm.VAddr) {                 // consumed ←
		rVA, err := p.PR.AllocPages(1)
		if err != nil {
			panic(err)
		}
		sVA, err := p.PS.AllocPages(1)
		if err != nil {
			panic(err)
		}
		p.M.MustMap(p.PR, rVA, phys.PageSize, p.S.ID, p.PS.PID, sVA, nipt.SingleWriteAU)
		return rVA, sVA
	}()
	p.Drain()

	// Per-side channel structs + hash tables + user staging, all in a
	// fresh private page each.
	var err error
	n.sChan, err = p.PS.AllocPages(1)
	if err != nil {
		panic(err)
	}
	n.rChan, err = p.PR.AllocPages(1)
	if err != nil {
		panic(err)
	}
	n.sPriv, err = p.PS.AllocPages(1)
	if err != nil {
		panic(err)
	}
	n.rPriv, err = p.PR.AllocPages(1)
	if err != nil {
		panic(err)
	}
	// Hash tables live in the same page as the struct, at +2048.
	sTab, rTab := n.sChan+2048, n.rChan+2048
	p.SSyms["CHTAB"] = int64(sTab)
	p.RSyms["CHTAB"] = int64(rTab)

	// Sender channel struct.
	sw := func(off uint32, v uint32) {
		if err := p.S.UserWrite32(p.PS, n.sChan+vm.VAddr(off), v); err != nil {
			panic(err)
		}
	}
	sw(chType, msgType)
	sw(chState, 1)
	sw(chRing, uint32(n.SendRing))
	sw(chCtl, uint32(sctl))
	sw(chMir, uint32(scon))
	// Hash table entry.
	slot := (msgType & 15) * 8
	if err := p.S.UserWrite32(p.PS, sTab+vm.VAddr(slot), msgType); err != nil {
		panic(err)
	}
	if err := p.S.UserWrite32(p.PS, sTab+vm.VAddr(slot)+4, uint32(n.sChan)); err != nil {
		panic(err)
	}

	// Receiver channel struct.
	rw := func(off uint32, v uint32) {
		if err := p.R.UserWrite32(p.PR, n.rChan+vm.VAddr(off), v); err != nil {
			panic(err)
		}
	}
	rw(chType, msgType)
	rw(chState, 1)
	rw(chRing, uint32(n.RecvRing))
	rw(chCtl, uint32(rcon))
	rw(chMir, uint32(rctl))
	if err := p.R.UserWrite32(p.PR, rTab+vm.VAddr(slot), msgType); err != nil {
		panic(err)
	}
	if err := p.R.UserWrite32(p.PR, rTab+vm.VAddr(slot)+4, uint32(n.rChan)); err != nil {
		panic(err)
	}
	p.Drain()

	n.csendProg = isa.MustAssembleCached("nx2-csend", nx2Csend, p.SSyms)
	n.crecvProg = isa.MustAssembleCached("nx2-crecv", nx2Crecv, p.RSyms)
	return n
}

// Csend runs csend for the given payload staged in sender private
// memory, returning the instruction counts.
func (n *NX2Pair) Csend(payload []byte) Counts {
	n.WriteSender(n.sPriv, payload)
	c := n.run(n.S, n.PS, n.SSyms, n.csendProg, "csend", map[isa.Reg]uint32{
		isa.EAX: n.Type,
		isa.ESI: uint32(n.sPriv),
		isa.EBX: uint32(len(payload)),
	})
	if n.S.CPU.R[isa.EAX] != 0 {
		panic("msg: csend returned failure")
	}
	return c
}

// Crecv runs crecv into receiver private memory and returns the counts
// plus the received bytes.
func (n *NX2Pair) Crecv(maxBytes int) (Counts, []byte) {
	c := n.run(n.R, n.PR, n.RSyms, n.crecvProg, "crecv", map[isa.Reg]uint32{
		isa.EAX: n.Type,
		isa.EDI: uint32(n.rPriv),
		isa.EBX: uint32(maxBytes),
	})
	got := int32(n.R.CPU.R[isa.EAX])
	if got < 0 {
		panic("msg: crecv returned failure")
	}
	return c, n.ReadReceiver(n.rPriv, int(got))
}

// MeasureNX2 produces the csend/crecv Table 1 row, verifying the
// message round trip.
func MeasureNX2(gen nic.Generation) Overhead {
	return MeasureNX2Cfg(core.ConfigFor(2, 1, gen))
}

// MeasureNX2Cfg is MeasureNX2 on a pair built from the given config.
func MeasureNX2Cfg(cfg core.Config) Overhead {
	n := NewNX2PairCfg(cfg, 7)
	payload := []byte("an NX/2 message with FIFO type dispatch")
	sc := n.Csend(payload)
	n.Drain()
	rc, got := n.Crecv(2048)
	n.Drain()
	if !bytes.Equal(got, payload) {
		panic(fmt.Sprintf("msg: csend/crecv corrupted message: %q", got))
	}
	return Overhead{
		Name:        "csend and crecv",
		Source:      sc.User,
		Dest:        rc.User,
		PaperSource: 73,
		PaperDest:   78,
	}
}

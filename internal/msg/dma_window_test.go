package msg

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/nic"
	"repro/internal/nipt"
)

// dmaSendSrc starts a whole-page deliberate transfer with the §4.3 LOCK
// CMPXCHG protocol and polls the command page until the engine is free.
const dmaSendSrc = `
send:
	mov	edi, DBUF
	add	edi, CMDDELTA
	mov	ecx, 1024
	xor	eax, eax
	lock cmpxchg [edi], ecx
	jnz	send
wspin:
	mov	eax, [edi]
	test	eax, eax
	jnz	wspin
	hlt
`

// TestDMAWindowDataIdentity pins the batched DMA read path
// (nic.Config.DMAWindow > 1): fewer, larger bus reads may change
// arbitration timing, but the received bytes — content, order,
// completeness — must be identical to the per-chunk default.
func TestDMAWindowDataIdentity(t *testing.T) {
	run := func(window int) []byte {
		cfg := core.ConfigFor(2, 1, nic.GenEISAPrototype)
		cfg.NIC.DMAWindow = window
		p := NewPairOn(cfg, 0, 1)
		sbuf, rbuf := p.MapBuf("DBUF", 1, 1, nipt.DeliberateUpdate)
		p.GrantCmd(sbuf, 1)
		p.Drain()
		payload := make([]byte, 4096)
		for i := range payload {
			payload[i] = byte(i*7 + i>>8)
		}
		p.WriteSender(sbuf, payload)
		p.Drain()
		p.RunSender("dma-send", dmaSendSrc, "send", nil)
		p.Drain()
		got := p.ReadReceiver(rbuf, 4096)
		if !bytes.Equal(got, payload) {
			t.Fatalf("window=%d: received page differs from payload", window)
		}
		if p.S.NIC.Stats().DMATransfers != 1 {
			t.Fatalf("window=%d: expected exactly one transfer, got %d",
				window, p.S.NIC.Stats().DMATransfers)
		}
		return got
	}
	w1 := run(1)
	for _, w := range []int{2, 4, 16} {
		if got := run(w); !bytes.Equal(got, w1) {
			t.Fatalf("DMAWindow=%d delivered different bytes than window 1", w)
		}
	}
}

package msg

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/vm"
)

// Go-level message-passing API over mapped memory. These mirror the ISA
// routines of the evaluation (Figure 5 single buffering, Figure 6 double
// buffering, the §4.3 block sender) but are driven from Go so examples
// and integration tests can compose them without writing assembly. The
// protocols are identical: the same flags, the same mappings, the same
// hardware path.

// Endpoint names one side of a channel: a process on a node.
type Endpoint struct {
	Node *core.Node
	Proc *kernel.Process
}

// NewEndpoint creates a fresh process on the given node.
func NewEndpoint(n *core.Node) Endpoint {
	return Endpoint{Node: n, Proc: n.K.CreateProcess()}
}

// Channel is a single-buffered, one-way message channel (Figure 5): a
// send buffer mapped onto a receive buffer with automatic update, and a
// bidirectional nbytes flag that carries both "message present" and
// "buffer free".
type Channel struct {
	m          *core.Machine
	snd, rcv   Endpoint
	sBuf, rBuf vm.VAddr
	sFlag      vm.VAddr
	rFlag      vm.VAddr
	capacity   int
}

// NewChannel builds the channel with a buffer of the given page count.
func NewChannel(m *core.Machine, snd, rcv Endpoint, pages int) (*Channel, error) {
	c := &Channel{m: m, snd: snd, rcv: rcv, capacity: pages*phys.PageSize - 4}
	var err error
	if c.sBuf, err = snd.Proc.AllocPages(pages); err != nil {
		return nil, err
	}
	if c.rBuf, err = rcv.Proc.AllocPages(pages); err != nil {
		return nil, err
	}
	if c.sFlag, err = snd.Proc.AllocPages(1); err != nil {
		return nil, err
	}
	if c.rFlag, err = rcv.Proc.AllocPages(1); err != nil {
		return nil, err
	}
	_, fut := snd.Node.K.Map(snd.Proc, c.sBuf, pages*phys.PageSize,
		rcv.Node.ID, rcv.Proc.PID, c.rBuf, nipt.BlockedWriteAU)
	if err := m.Await(fut); err != nil {
		return nil, err
	}
	_, fut = snd.Node.K.Map(snd.Proc, c.sFlag, phys.PageSize,
		rcv.Node.ID, rcv.Proc.PID, c.rFlag, nipt.SingleWriteAU)
	if err := m.Await(fut); err != nil {
		return nil, err
	}
	_, fut = rcv.Node.K.Map(rcv.Proc, c.rFlag, phys.PageSize,
		snd.Node.ID, snd.Proc.PID, c.sFlag, nipt.SingleWriteAU)
	if err := m.Await(fut); err != nil {
		return nil, err
	}
	return c, nil
}

// await steps the simulation until cond holds. In Survivable fault
// plans it also watches both kernels' membership views: a channel
// endpoint declared dead can never set the flag being waited on, so the
// wait surfaces fault.ErrPeerDown promptly instead of spinning until
// the queues drain.
func (c *Channel) await(cond func() bool) error {
	down := func() error {
		if c.snd.Node.K.PeerIsDown(c.rcv.Node.ID) {
			return fmt.Errorf("msg: channel to node %d: %w", c.rcv.Node.ID, fault.ErrPeerDown)
		}
		if c.rcv.Node.K.PeerIsDown(c.snd.Node.ID) {
			return fmt.Errorf("msg: channel from node %d: %w", c.snd.Node.ID, fault.ErrPeerDown)
		}
		return nil
	}
	ok := c.m.RunWhile(func() bool { return !cond() && down() == nil })
	if cond() {
		return nil
	}
	if err := down(); err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("msg: channel deadlock: nothing left to simulate")
	}
	return nil
}

// Send blocks (in simulated time) until the buffer is free, writes the
// message, and publishes its size.
func (c *Channel) Send(b []byte) error {
	if len(b) == 0 || len(b) > c.capacity {
		return fmt.Errorf("msg: message size %d outside (0,%d]", len(b), c.capacity)
	}
	flagClear := func() bool {
		v, err := c.snd.Node.UserRead32(c.snd.Proc, c.sFlag)
		return err == nil && v == 0
	}
	if err := c.await(flagClear); err != nil {
		return err
	}
	if err := c.snd.Node.UserWriteBytes(c.snd.Proc, c.sBuf, b); err != nil {
		return err
	}
	return c.snd.Node.UserWrite32(c.snd.Proc, c.sFlag, uint32(len(b)))
}

// Recv blocks (in simulated time) for the next message, copies it out,
// and releases the buffer.
func (c *Channel) Recv() ([]byte, error) {
	var n uint32
	arrived := func() bool {
		v, err := c.rcv.Node.UserRead32(c.rcv.Proc, c.rFlag)
		if err != nil {
			return false
		}
		n = v
		return v != 0
	}
	if err := c.await(arrived); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	if err := c.rcv.Node.UserReadBytes(c.rcv.Proc, c.rBuf, out); err != nil {
		return nil, err
	}
	if err := c.rcv.Node.UserWrite32(c.rcv.Proc, c.rFlag, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// DoubleChannel is the Figure 6 double-buffered channel: two buffers
// toggled per message so the consumer of message i overlaps the
// transmission of message i+1 (loop case 3: all synchronization carried
// by messages).
type DoubleChannel struct {
	m        *core.Machine
	snd, rcv Endpoint
	sBuf     [2]vm.VAddr
	rBuf     [2]vm.VAddr
	sIdx     int
	rIdx     int
	capacity int
	pages    int
}

const dblFlagOff = phys.PageSize - 4 // flag is the last word of each buffer's final page

// NewDoubleChannel builds the two buffers (pages each) with
// complementary mappings so the consumed signal propagates back.
func NewDoubleChannel(m *core.Machine, snd, rcv Endpoint, pages int) (*DoubleChannel, error) {
	c := &DoubleChannel{m: m, snd: snd, rcv: rcv, pages: pages,
		capacity: pages*phys.PageSize - 4}
	for i := 0; i < 2; i++ {
		var err error
		if c.sBuf[i], err = snd.Proc.AllocPages(pages); err != nil {
			return nil, err
		}
		if c.rBuf[i], err = rcv.Proc.AllocPages(pages); err != nil {
			return nil, err
		}
		_, fut := snd.Node.K.Map(snd.Proc, c.sBuf[i], pages*phys.PageSize,
			rcv.Node.ID, rcv.Proc.PID, c.rBuf[i], nipt.BlockedWriteAU)
		if err := m.Await(fut); err != nil {
			return nil, err
		}
		_, fut = rcv.Node.K.Map(rcv.Proc, c.rBuf[i], pages*phys.PageSize,
			snd.Node.ID, snd.Proc.PID, c.sBuf[i], nipt.SingleWriteAU)
		if err := m.Await(fut); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *DoubleChannel) flagVA(buf vm.VAddr) vm.VAddr {
	return buf + vm.VAddr((c.pages-1)*phys.PageSize+dblFlagOff)
}

// Send writes into the current send buffer once its previous contents
// have been consumed, publishes the size flag, and toggles buffers.
func (c *DoubleChannel) Send(b []byte) error {
	if len(b) == 0 || len(b) > c.capacity {
		return fmt.Errorf("msg: message size %d outside (0,%d]", len(b), c.capacity)
	}
	buf := c.sBuf[c.sIdx]
	flag := c.flagVA(buf)
	free := func() bool {
		v, err := c.snd.Node.UserRead32(c.snd.Proc, flag)
		return err == nil && v == 0
	}
	if ok := c.m.RunWhile(func() bool { return !free() }); !ok && !free() {
		return fmt.Errorf("msg: double channel deadlock on send")
	}
	if err := c.snd.Node.UserWriteBytes(c.snd.Proc, buf, b); err != nil {
		return err
	}
	if err := c.snd.Node.UserWrite32(c.snd.Proc, flag, uint32(len(b))); err != nil {
		return err
	}
	c.sIdx ^= 1
	return nil
}

// Recv waits for the current receive buffer, copies the message out,
// clears the flag (which propagates back as the consumed signal), and
// toggles buffers.
func (c *DoubleChannel) Recv() ([]byte, error) {
	buf := c.rBuf[c.rIdx]
	flag := c.flagVA(buf)
	var n uint32
	arrived := func() bool {
		v, err := c.rcv.Node.UserRead32(c.rcv.Proc, flag)
		if err != nil {
			return false
		}
		n = v
		return v != 0
	}
	if ok := c.m.RunWhile(func() bool { return !arrived() }); !ok && !arrived() {
		return nil, fmt.Errorf("msg: double channel deadlock on recv")
	}
	out := make([]byte, n)
	if err := c.rcv.Node.UserReadBytes(c.rcv.Proc, buf, out); err != nil {
		return nil, err
	}
	if err := c.rcv.Node.UserWrite32(c.rcv.Proc, flag, 0); err != nil {
		return nil, err
	}
	c.rIdx ^= 1
	return out, nil
}

// BlockSender drives §4.3 deliberate-update block transfers from Go: a
// region mapped deliberate-update plus its command pages.
type BlockSender struct {
	m        *core.Machine
	snd, rcv Endpoint
	sendVA   vm.VAddr
	recvVA   vm.VAddr
	pages    int
}

// NewBlockSender maps pages pages deliberate-update and grants the
// sender its command pages.
func NewBlockSender(m *core.Machine, snd, rcv Endpoint, pages int) (*BlockSender, error) {
	b := &BlockSender{m: m, snd: snd, rcv: rcv, pages: pages}
	var err error
	if b.sendVA, err = snd.Proc.AllocPages(pages); err != nil {
		return nil, err
	}
	if b.recvVA, err = rcv.Proc.AllocPages(pages); err != nil {
		return nil, err
	}
	_, fut := snd.Node.K.Map(snd.Proc, b.sendVA, pages*phys.PageSize,
		rcv.Node.ID, rcv.Proc.PID, b.recvVA, nipt.DeliberateUpdate)
	if err := m.Await(fut); err != nil {
		return nil, err
	}
	if err := snd.Node.K.GrantCommandPages(snd.Proc, b.sendVA, b.sendVA+CmdDelta, pages); err != nil {
		return nil, err
	}
	return b, nil
}

// Buffer returns the sender-side virtual address of the mapped region.
func (b *BlockSender) Buffer() vm.VAddr { return b.sendVA }

// RemoteBuffer returns the receiver-side virtual address.
func (b *BlockSender) RemoteBuffer() vm.VAddr { return b.recvVA }

// Write stages data into the mapped region (local memory only; nothing
// is transmitted until Send).
func (b *BlockSender) Write(off int, data []byte) error {
	return b.snd.Node.UserWriteBytes(b.snd.Proc, b.sendVA+vm.VAddr(off), data)
}

// Send issues deliberate-update transfer commands covering [off,
// off+nbytes), splitting at page boundaries as §4.3 requires, spinning
// (in simulated time) whenever the single DMA engine is busy.
func (b *BlockSender) Send(off, nbytes int) error {
	if off < 0 || nbytes <= 0 || off+nbytes > b.pages*phys.PageSize {
		return fmt.Errorf("msg: block send [%d,%d) outside region", off, off+nbytes)
	}
	for nbytes > 0 {
		chunk := phys.PageSize - off%phys.PageSize
		if chunk > nbytes {
			chunk = nbytes
		}
		cmdVA := b.sendVA + CmdDelta + vm.VAddr(off)
		tr, f := b.snd.Proc.AS.Translate(cmdVA, true)
		if f != nil {
			return f
		}
		words := uint32((chunk + 3) / 4)
		for {
			_, swapped, _ := b.snd.Node.LockedCmpxchg(tr.PA, 0, words)
			if swapped {
				break
			}
			if !b.m.Step() {
				return fmt.Errorf("msg: DMA engine wedged")
			}
		}
		off += chunk
		nbytes -= chunk
	}
	return nil
}

// Done reports whether the DMA engine has finished (the 2-instruction
// §4.3 status check).
func (b *BlockSender) Done() bool {
	tr, f := b.snd.Proc.AS.Translate(b.sendVA+CmdDelta, false)
	if f != nil {
		return false
	}
	return b.snd.Node.CacheRead32(tr.PA) == 0
}

// Read copies data out of the receiver-side region.
func (b *BlockSender) Read(off, n int) ([]byte, error) {
	out := make([]byte, n)
	err := b.rcv.Node.UserReadBytes(b.rcv.Proc, b.recvVA+vm.VAddr(off), out)
	return out, err
}

// Package msg implements the message-passing primitives of the paper's
// evaluation (§5.2) on top of the virtual memory-mapped network
// interface — each one twice:
//
//   - as hand-written routines in the simulated i386-subset ISA, so
//     that software overhead is measured in executed CPU instructions
//     exactly as Table 1 reports it: single buffering (± copy), the
//     three double-buffering loop cases, the deliberate-update send
//     macro, and NX/2-style csend/crecv — plus the traditional
//     kernel-mediated NX/2 baseline it is compared against;
//   - as a Go-level API (Channel, DoubleChannel, NX2) that examples and
//     integration tests drive end to end.
package msg

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/vm"
)

// CmdDelta is the fixed virtual-address distance between a data page and
// its command page in every process of this library (§4.2 leaves the
// placement to the kernel; a constant delta lets user code compute the
// command address with one ADD).
const CmdDelta = 0x4000_0000

// Pair is a two-node harness: one user process on each of two nodes,
// each with a private scratch page and a stack, ready to have buffers
// mapped between them and ISA routines run on them.
type Pair struct {
	M      *core.Machine
	S, R   *core.Node
	PS, PR *kernel.Process

	// SSyms/RSyms accumulate assembler symbols (buffer addresses etc.)
	// for the sender- and receiver-side programs.
	SSyms, RSyms map[string]int64
}

// NewPair boots a 2-node machine of the given generation and prepares
// one process per node.
func NewPair(gen nic.Generation) *Pair {
	return NewPairOn(core.ConfigFor(2, 1, gen), 0, 1)
}

// NewPairOn prepares a pair on two chosen nodes of an existing-config
// machine (used by experiments that care about hop distance).
func NewPairOn(cfg core.Config, snode, rnode int) *Pair {
	return PairOn(core.New(cfg), snode, rnode)
}

// PairOn prepares a pair on a caller-provided machine — typically one
// being reused across measurements via Machine.Reset (the page allocator
// is deterministic, so a pair rebuilt after Reset sees the same
// addresses a fresh machine would).
func PairOn(m *core.Machine, snode, rnode int) *Pair {
	p := &Pair{
		M: m, S: m.Node(snode), R: m.Node(rnode),
		SSyms: map[string]int64{"CMDDELTA": CmdDelta},
		RSyms: map[string]int64{"CMDDELTA": CmdDelta},
	}
	p.PS = p.S.K.CreateProcess()
	p.PR = p.R.K.CreateProcess()
	for _, side := range []struct {
		proc *kernel.Process
		syms map[string]int64
	}{{p.PS, p.SSyms}, {p.PR, p.RSyms}} {
		priv, err := side.proc.AllocPages(1)
		if err != nil {
			panic(err)
		}
		stack, err := side.proc.AllocPages(1)
		if err != nil {
			panic(err)
		}
		side.syms["PRIV"] = int64(priv)
		side.syms["STKTOP"] = int64(stack) + phys.PageSize
	}
	return p
}

// Drain runs the machine until quiescent.
func (p *Pair) Drain() { p.M.RunUntilIdle(20_000_000) }

// MapBuf allocates pages pages on both sides and maps sender→receiver
// with the given mode, registering the virtual addresses under the given
// symbol on each side. It returns (senderVA, receiverVA).
func (p *Pair) MapBuf(sym string, pages, alignPages int, mode nipt.Mode) (vm.VAddr, vm.VAddr) {
	sVA, err := p.PS.AllocPagesAligned(pages, alignPages)
	if err != nil {
		panic(err)
	}
	rVA, err := p.PR.AllocPagesAligned(pages, alignPages)
	if err != nil {
		panic(err)
	}
	p.M.MustMap(p.PS, sVA, pages*phys.PageSize, p.R.ID, p.PR.PID, rVA, mode)
	p.SSyms[sym] = int64(sVA)
	p.RSyms[sym] = int64(rVA)
	return sVA, rVA
}

// MapBack adds the complementary receiver→sender mapping over buffers
// already created by MapBuf, making them bidirectional (Figure 5's
// flag).
func (p *Pair) MapBack(sVA, rVA vm.VAddr, pages int, mode nipt.Mode) {
	p.M.MustMap(p.PR, rVA, pages*phys.PageSize, p.S.ID, p.PS.PID, sVA, mode)
}

// GrantCmd grants the sender process its command pages for the data
// pages at sVA, mapped at sVA+CmdDelta.
func (p *Pair) GrantCmd(sVA vm.VAddr, pages int) {
	if err := p.S.K.GrantCommandPages(p.PS, sVA, sVA+CmdDelta, pages); err != nil {
		panic(err)
	}
}

// Counts is the per-side instruction count of one measured run.
type Counts struct {
	User     uint64
	Kernel   uint64
	RepIters uint64
	Traps    uint64
}

// run executes prog from entry on the given node/process with the given
// initial registers (ESP defaults to the side's STKTOP), drains the
// machine, and returns the instruction counters.
func (p *Pair) run(node *core.Node, proc *kernel.Process, syms map[string]int64,
	prog *isa.Program, entry string, regs map[isa.Reg]uint32) Counts {
	node.K.BindProcess(proc)
	cpu := node.CPU
	cpu.Load(prog)
	cpu.R = [8]uint32{}
	cpu.R[isa.ESP] = uint32(syms["STKTOP"])
	for r, v := range regs {
		cpu.R[r] = v
	}
	cpu.ResetCounters()
	if err := cpu.Start(entry); err != nil {
		panic(err)
	}
	p.Drain()
	if !cpu.Halted() {
		panic(fmt.Sprintf("msg: %s did not halt (eip=%d)", prog.Name, cpu.EIP()))
	}
	if err := cpu.Err(); err != nil {
		panic(fmt.Sprintf("msg: %s aborted: %v", prog.Name, err))
	}
	c := cpu.Counters()
	return Counts{User: c.User, Kernel: c.Kernel, RepIters: c.RepIters, Traps: c.Traps}
}

// RunSender assembles and runs a sender-side routine.
func (p *Pair) RunSender(name, src, entry string, regs map[isa.Reg]uint32) Counts {
	prog := isa.MustAssembleCached(name, src, p.SSyms)
	return p.run(p.S, p.PS, p.SSyms, prog, entry, regs)
}

// RunReceiver assembles and runs a receiver-side routine.
func (p *Pair) RunReceiver(name, src, entry string, regs map[isa.Reg]uint32) Counts {
	prog := isa.MustAssembleCached(name, src, p.RSyms)
	return p.run(p.R, p.PR, p.RSyms, prog, entry, regs)
}

// WriteSender/ReadReceiver move application data in and out of process
// memory the way the application itself would (not counted as overhead,
// exactly as the paper excludes data generation and consumption).

// WriteSender stores bytes into the sender process's memory.
func (p *Pair) WriteSender(va vm.VAddr, b []byte) {
	if err := p.S.UserWriteBytes(p.PS, va, b); err != nil {
		panic(err)
	}
}

// ReadReceiver loads bytes from the receiver process's memory.
func (p *Pair) ReadReceiver(va vm.VAddr, n int) []byte {
	out := make([]byte, n)
	if err := p.R.UserReadBytes(p.PR, va, out); err != nil {
		panic(err)
	}
	return out
}

// ReadSender loads bytes from the sender process's memory.
func (p *Pair) ReadSender(va vm.VAddr, n int) []byte {
	out := make([]byte, n)
	if err := p.S.UserReadBytes(p.PS, va, out); err != nil {
		panic(err)
	}
	return out
}

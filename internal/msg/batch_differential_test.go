package msg

import (
	"reflect"
	"testing"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/sim"
)

// Differential tests for batched CPU interpretation (Config.CPU.MaxBatch):
// batching is a pure simulator optimization, so every simulated result —
// instruction counters, NIC/bus/cache statistics, register files, final
// simulated time — must be bit-identical to per-instruction stepping at
// any batch quantum. Engine event counts (Fired, MaxPending) legitimately
// differ between modes — fewer, longer events is the whole point — and are
// deliberately not compared.

// batchCfg returns the 2-node pair config with the given batch quantum.
func batchCfg(maxBatch int) core.Config {
	cfg := core.ConfigFor(2, 1, nic.GenEISAPrototype)
	cfg.CPU.MaxBatch = maxBatch
	return cfg
}

// batchVariants: 0 and 1 both select per-instruction stepping, 3 forces
// frequent quantum breaks mid-run, 64 is the default shipping quantum.
var batchVariants = []int{0, 1, 3, 64}

// TestBatchDifferentialTable1 pins every Table 1 row (including the NX/2
// csend/crecv pair) across batch quanta, and with metrics on top.
func TestBatchDifferentialTable1(t *testing.T) {
	want := MeasureTable1Cfg(batchCfg(1))
	for _, mb := range batchVariants {
		if got := MeasureTable1Cfg(batchCfg(mb)); !reflect.DeepEqual(got, want) {
			t.Fatalf("MaxBatch=%d changed Table 1:\n got  %+v\n want %+v", mb, got, want)
		}
	}
	instr := batchCfg(64)
	instr.Metrics = true
	if got := MeasureTable1Cfg(instr); !reflect.DeepEqual(got, want) {
		t.Fatalf("batching with metrics on changed Table 1:\n got  %+v\n want %+v", got, want)
	}
}

// TestBatchDifferentialBaseline pins the kernel-mediated NX/2 baseline,
// the heaviest ISA workload in the package: traps, IRQs, context between
// user and kernel mode, and the transport ring all in one run.
func TestBatchDifferentialBaseline(t *testing.T) {
	want := MeasureBaselineCfg(batchCfg(1))
	for _, mb := range []int{3, 64} {
		if got := MeasureBaselineCfg(batchCfg(mb)); got != want {
			t.Fatalf("MaxBatch=%d changed baseline:\n got  %+v\n want %+v", mb, got, want)
		}
	}
}

// pairRun snapshots every observable statistic of one concurrent-loop
// run. The struct is comparable, so equality is one ==.
type pairRun struct {
	End            sim.Time
	SCPU, RCPU     isa.Counters
	SRegs, RRegs   [8]uint32
	SNIC, RNIC     nic.Stats
	SXbus, RXbus   bus.XpressStats
	SCache, RCache cache.Stats
}

// runConcurrentLoop drives the Figure 6 case-3 pipeline with both CPUs
// live — the workload where batching on two processors must interleave
// exactly as per-instruction stepping does.
func runConcurrentLoop(t *testing.T, cfg core.Config) pairRun {
	t.Helper()
	const iters = 40
	p := NewPairOn(cfg, 0, 1)
	sbuf, rbuf := p.MapBuf("BUF", 2, 2, nipt.SingleWriteAU)
	p.MapBack(sbuf, rbuf, 2, nipt.SingleWriteAU)
	for _, syms := range []map[string]int64{p.SSyms, p.RSyms} {
		syms["TOGGLE"] = 4096
		syms["FLAGOFF"] = flagOff
		syms["ITERS"] = iters
	}
	p.Drain()

	prod := isa.MustAssemble("producer", producerLoop, p.SSyms)
	cons := isa.MustAssemble("consumer", consumerLoop, p.RSyms)

	p.S.K.BindProcess(p.PS)
	p.S.CPU.Load(prod)
	p.S.CPU.R = [8]uint32{}
	p.S.CPU.R[isa.ESP] = uint32(p.SSyms["STKTOP"])
	p.S.CPU.R[isa.ESI] = uint32(sbuf)
	if err := p.S.CPU.Start("prod"); err != nil {
		t.Fatal(err)
	}
	p.R.K.BindProcess(p.PR)
	p.R.CPU.Load(cons)
	p.R.CPU.R = [8]uint32{}
	p.R.CPU.R[isa.ESP] = uint32(p.RSyms["STKTOP"])
	p.R.CPU.R[isa.EDI] = uint32(rbuf)
	if err := p.R.CPU.Start("cons"); err != nil {
		t.Fatal(err)
	}
	p.M.RunUntilIdle(100_000_000)
	for _, cpu := range []*isa.CPU{p.S.CPU, p.R.CPU} {
		if !cpu.Halted() || cpu.Err() != nil {
			t.Fatalf("cpu did not finish cleanly: halted=%v err=%v", cpu.Halted(), cpu.Err())
		}
	}
	return pairRun{
		End:  p.M.Eng.Now(),
		SCPU: p.S.CPU.Counters(), RCPU: p.R.CPU.Counters(),
		SRegs: p.S.CPU.R, RRegs: p.R.CPU.R,
		SNIC: p.S.NIC.Stats(), RNIC: p.R.NIC.Stats(),
		SXbus: p.S.Xbus.Stats(), RXbus: p.R.Xbus.Stats(),
		SCache: p.S.Cache.Stats(), RCache: p.R.Cache.Stats(),
	}
}

// TestBatchDifferentialConcurrentLoop compares the complete observable
// machine state of the two-CPU pipeline across batch quanta.
func TestBatchDifferentialConcurrentLoop(t *testing.T) {
	want := runConcurrentLoop(t, batchCfg(1))
	for _, mb := range batchVariants {
		if got := runConcurrentLoop(t, batchCfg(mb)); got != want {
			t.Fatalf("MaxBatch=%d diverged:\n got  %+v\n want %+v", mb, got, want)
		}
	}
	instr := batchCfg(64)
	instr.Metrics = true
	if got := runConcurrentLoop(t, instr); got != want {
		t.Fatalf("batching with metrics on diverged:\n got  %+v\n want %+v", got, want)
	}
}

package msg

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/nic"
	"repro/internal/nipt"
)

// The dominant outbound datapath of the whole simulator: a user store to
// an AU-mapped page, snooped off the Xpress bus, merged and packetized
// by the NIC, wormhole-routed, and deposited into the receiver's memory.
// Every word of every message crosses it, so it gets its own superblock
// terminator (fastStore) and a ci.sh zero-allocation guard.
const fusedStoreSrc = `
fill:
	mov	ecx, WORDS
	mov	eax, 0x01020304
floop:
	mov	[esi], eax
	add	esi, 4
	add	eax, 1
	dec	ecx
	jnz	floop
	hlt
`

// BenchmarkFusedStore drives 512 snooped word stores per op through the
// fused store dispatch: each loop iteration is one fastStore terminator
// plus a pure-uop run, end to end through NIC, mesh and remote deposit.
func BenchmarkFusedStore(b *testing.B) {
	p := NewPair(nic.GenEISAPrototype)
	sbuf, _ := p.MapBuf("OUT", 1, 1, nipt.SingleWriteAU)
	p.SSyms["WORDS"] = 512
	p.Drain()
	prog := isa.MustAssembleCached("fused-store", fusedStoreSrc, p.SSyms)
	cpu := p.S.CPU
	p.S.K.BindProcess(p.PS)
	run := func() {
		cpu.Load(prog)
		cpu.R = [8]uint32{}
		cpu.R[isa.ESP] = uint32(p.SSyms["STKTOP"])
		cpu.R[isa.ESI] = uint32(sbuf)
		if err := cpu.Start("fill"); err != nil {
			b.Fatal(err)
		}
		p.Drain()
		if !cpu.Halted() || cpu.Err() != nil {
			b.Fatalf("halted=%v err=%v", cpu.Halted(), cpu.Err())
		}
	}
	run() // warm caches, packet pool, trace cache
	perRun := cpu.Counters().Total()
	cpu.ResetCounters()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	b.ReportMetric(float64(perRun)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

package msg

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/isa"
)

// TestListingsReassemble round-trips every embedded routine through the
// disassembler: assemble → Listing() → strip indices → reassemble, and
// require an identical instruction stream. This pins the measured
// Table 1 programs against accidental drift and exercises the
// assembler/disassembler pair on real code.
func TestListingsReassemble(t *testing.T) {
	syms := map[string]int64{
		"PRIV": 0x1000_0000, "PRIVCOPY": 0x1000_0040, "STKTOP": 0x1000_2000,
		"RBUF": 0x1000_3000, "FLAG": 0x1000_4000, "BUF": 0x1000_5000,
		"TOGGLE": 4096, "FLAGOFF": flagOff, "CMDDELTA": CmdDelta,
		"CHTAB": 0x1000_6800, "KDATA": 0x1000_7000, "KRING": 0x1000_8000,
		"ITERS": 40, "ROUNDS": 25, "POUT": 0x1000_9000, "PECHO": 0x1000_a000,
		"QIN": 0x1000_b000, "QOUT": 0x1000_c000, "DBUF": 0x1000_d000,
	}
	nx2Consts(syms)
	baseConsts(syms)
	syms["K_CTLOUT"] = 96
	syms["K_CONSMIR"] = 100
	syms["K_PRODMIR"] = 104

	sources := map[string]string{
		"singleBufSender4":      singleBufSender4,
		"singleBufReceiver":     singleBufReceiver,
		"singleBufReceiverCopy": singleBufReceiverCopy,
		"doubleBufCase1Sender":  doubleBufCase1Sender,
		"doubleBufCase2Sender":  doubleBufCase2Sender,
		"doubleBufCase3Sender":  doubleBufCase3Sender,
		"doubleBufCase1Recv":    doubleBufCase1Receiver,
		"doubleBufCase2Recv":    doubleBufCase2Receiver,
		"doubleBufCase3Recv":    doubleBufCase3Receiver,
		"deliberateSend":        deliberateSend,
		"deliberateCheck":       deliberateCheck,
		"nx2Csend":              nx2Csend,
		"nx2Crecv":              nx2Crecv,
		"baseCsend":             baseCsend,
		"baseCrecv":             baseCrecv,
		"producerLoop":          producerLoop,
		"consumerLoop":          consumerLoop,
		"pingSrc":               pingSrc,
		"pongSrc":               pongSrc,
	}
	for name, src := range sources {
		orig, err := isa.Assemble(name, src, syms)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		stripped := stripListing(orig.Listing())
		again, err := isa.Assemble(name+"-relisted", stripped, nil)
		if err != nil {
			t.Fatalf("%s relisted: %v\n%s", name, err, stripped)
		}
		if len(again.Instrs) != len(orig.Instrs) {
			t.Fatalf("%s: %d instrs became %d", name, len(orig.Instrs), len(again.Instrs))
		}
		for i := range orig.Instrs {
			a, b := orig.Instrs[i], again.Instrs[i]
			if a.Op != b.Op || a.Size != b.Size || a.Lock != b.Lock || a.Rep != b.Rep ||
				a.Dst != b.Dst || a.Src != b.Src || a.Target != b.Target {
				t.Fatalf("%s instr %d: %s != %s", name, i, a.String(), b.String())
			}
		}
	}
}

// stripListing removes the instruction-index column Listing adds.
func stripListing(l string) string {
	var out strings.Builder
	for _, line := range strings.Split(l, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasSuffix(trimmed, ":") {
			out.WriteString(trimmed + "\n")
			continue
		}
		fields := strings.SplitN(trimmed, " ", 2)
		if _, err := strconv.Atoi(fields[0]); err == nil && len(fields) == 2 {
			out.WriteString("\t" + strings.TrimSpace(fields[1]) + "\n")
			continue
		}
		out.WriteString(line + "\n")
	}
	return out.String()
}

package msg

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/nic"
)

func endpointsOn(m *core.Machine, nodes ...int) []Endpoint {
	out := make([]Endpoint, len(nodes))
	for i, n := range nodes {
		out[i] = NewEndpoint(m.Node(n))
	}
	return out
}

func TestBarrierRounds(t *testing.T) {
	m := core.New(core.ConfigFor(2, 2, nic.GenEISAPrototype))
	b, err := NewBarrier(m, endpointsOn(m, 0, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 10; round++ {
		if err := b.Sync(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if b.Generation() != uint32(round) {
			t.Fatalf("generation %d", b.Generation())
		}
	}
}

func TestBarrierOrdersWork(t *testing.T) {
	// A value written before the barrier on one node is visible after
	// the barrier on another, when sent through a mapping: the barrier
	// provides the synchronization double-buffering case 1 assumes.
	m := core.New(core.ConfigFor(2, 1, nic.GenEISAPrototype))
	parts := endpointsOn(m, 0, 1)
	b, err := NewBarrier(m, parts)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(m, parts[0], parts[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Send([]byte("pre-barrier payload")); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := ch.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "pre-barrier payload" {
		t.Fatal("payload lost across barrier")
	}
}

func TestBarrierNeedsTwo(t *testing.T) {
	m := core.New(core.ConfigFor(1, 1, nic.GenXpress))
	if _, err := NewBarrier(m, endpointsOn(m, 0)); err == nil {
		t.Fatal("single-participant barrier accepted")
	}
}

func TestBroadcastTree(t *testing.T) {
	m := core.New(core.ConfigFor(4, 2, nic.GenEISAPrototype))
	parts := endpointsOn(m, 0, 1, 2, 3, 4, 5, 6, 7)
	bc, err := NewBroadcast(m, parts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Depth() != 3 { // 8 nodes -> log2 = 3 hops
		t.Fatalf("depth %d", bc.Depth())
	}
	payload := []byte("broadcast through the binomial tree")
	got, err := bc.Send(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if !bytes.Equal(g, payload) {
			t.Fatalf("endpoint %d got %q", i, g)
		}
	}
	// Reusable.
	payload2 := []byte("second wave")
	got, err = bc.Send(payload2)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if !bytes.Equal(g, payload2) {
			t.Fatalf("round 2 endpoint %d got %q", i, g)
		}
	}
}

func TestBroadcastVariousSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		m := core.New(core.ConfigFor(3, 2, nic.GenXpress))
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
		bc, err := NewBroadcast(m, endpointsOn(m, nodes...), 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		payload := []byte(fmt.Sprintf("fanout %d", n))
		got, err := bc.Send(payload)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(got[i], payload) {
				t.Fatalf("n=%d endpoint %d", n, i)
			}
		}
	}
}

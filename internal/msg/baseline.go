package msg

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/vm"
)

// The traditional kernel-mediated NX/2 baseline (§5.2, §6): the
// structure of the iPSC/2 path, reproduced on the simulated machine so
// the two implementations can be compared in the same instruction
// currency. csend traps into the kernel, which validates the request,
// allocates a system buffer, copies the user data into it, runs the
// flow-control and routing bookkeeping, and "programs the DMA" (here:
// transmits through a kernel transport ring); message arrival raises a
// receive interrupt whose handler moves the message into a system
// buffer queue; crecv traps into the kernel, which searches the queue
// by type, copies the message out to user space, and frees the buffer.
//
// The paper cites 222 instructions for the NX/2 csend fast path and 261
// for crecv, "plus the cost of a system call and a DMA interrupt"; the
// point of the comparison is the ~4× overhead of kernel mediation and
// double buffering over SHRIMP's user-level mapped-memory path.

// Kernel data page layout (symbol KDATA). All single-node state.
const (
	kLock     = 0   // kernel send/receive lock
	kFreeHead = 4   // system buffer freelist head (VA)
	kFreeCnt  = 8   // free buffer count
	kSeq      = 12  // send sequence counter
	kTick     = 16  // fake timestamp counter
	kStatSnd  = 20  // messages sent
	kStatRcv  = 24  // messages received
	kStatByte = 28  // bytes moved
	kQuota    = 32  // per-process message quota
	kEvIdx    = 36  // event log cursor
	kProduced = 40  // ring bytes produced (sender side)
	kConsumed = 44  // ring bytes consumed (receiver side)
	kRingOff  = 48  // ring cursor
	kSendQH   = 52  // send descriptor queue head
	kSendQT   = 56  // send descriptor queue tail
	kCredits  = 60  // destination credits
	kEvLog    = 64  // 16-word event log
	kDstTab   = 128 // destination table: 8 nodes x 16 bytes
	kRcvQ     = 256 // receive queues: 16 types x 8 (head, tail)
	kProbeTab = 384 // pending-probe table: 16 types x 4
	kPool     = 512 // system buffers: 4 slots x 896 bytes
)

// System buffer (descriptor + payload) layout.
const (
	dNext  = 0  // freelist / queue link
	dType  = 4  // message type
	dLen   = 8  // payload bytes
	dSeq   = 12 // sequence number
	dSrc   = 16 // source node
	dDst   = 20 // destination node
	dFlags = 24
	dTick  = 28 // timestamp
	dCksum = 32 // header checksum
	dState = 36 // READY / QUEUED / DONE
	dData  = 64 // payload
	dSlot  = 896
)

func baseConsts(syms map[string]int64) {
	for k, v := range map[string]int64{
		"K_LOCK": kLock, "K_FREEHEAD": kFreeHead, "K_FREECNT": kFreeCnt,
		"K_SEQ": kSeq, "K_TICK": kTick, "K_STATSND": kStatSnd,
		"K_STATRCV": kStatRcv, "K_STATBYTE": kStatByte, "K_QUOTA": kQuota,
		"K_EVIDX": kEvIdx, "K_PRODUCED": kProduced, "K_CONSUMED": kConsumed,
		"K_RINGOFF": kRingOff, "K_SENDQH": kSendQH, "K_SENDQT": kSendQT,
		"K_CREDITS": kCredits, "K_EVLOG": kEvLog, "K_DSTTAB": kDstTab,
		"K_RCVQ": kRcvQ, "K_PROBETAB": kProbeTab, "K_POOL": kPool,
		"D_NEXT": dNext, "D_TYPE": dType, "D_LEN": dLen, "D_SEQ": dSeq,
		"D_SRC": dSrc, "D_DST": dDst, "D_FLAGS": dFlags, "D_TICK": dTick,
		"D_CKSUM": dCksum, "D_STATE": dState, "D_DATA": dData, "D_SLOT": dSlot,
		"RINGSZ": phys.PageSize, "MAXMSG": 512, "SYS_CSEND": 3, "SYS_CRECV": 4,
		"K_INTMASK": 108, "K_INTSAVE": 112,
	} {
		syms[k] = v
	}
}

// baseCsend: user stub plus the kernel send handler.
const baseCsend = `
; ---- user stub: marshal arguments and trap ----
csend:
	push	ebx			; u1 syscall frame: nbytes
	push	esi			; u2 user buffer
	push	eax			; u3 message type
	mov	eax, SYS_CSEND		; u4
	int	64			; u5 (trap cost modeled separately)
	add	esp, 12			; u6
	hlt

; ---- kernel send handler ----
ksend:
	push	ebp			; 1 save context
	push	esi			; 2
	push	edi			; 3
	push	ebx			; 4
	push	ecx			; 5
	push	edx			; 6
	mov	ebp, KDATA		; 7
	; fetch arguments from the trap frame
	mov	eax, [esp+28]		; 8  type
	mov	esi, [esp+32]		; 9  user buffer
	mov	ebx, [esp+36]		; 10 nbytes
	; event log: syscall entry
	mov	ecx, [ebp+K_EVIDX]	; 11
	and	ecx, 15			; 12
	mov	edx, ecx		; 13
	shl	edx, 2			; 14
	mov	[ebp+K_EVLOG+edx], eax	; 15... wait, indexed by computed reg
	inc	ecx			; 16
	mov	[ebp+K_EVIDX], ecx	; 17
	; validate request
	test	eax, eax		; 18 type nonzero
	jz	ksend_err
	cmp	eax, 65535		; 20 type is 16 bits
	ja	ksend_err
	test	ebx, ebx		; 22 length nonzero
	jz	ksend_err
	cmp	ebx, MAXMSG		; 24 length bounded
	ja	ksend_err
	test	esi, 3			; 26 user buffer aligned
	jnz	ksend_err
	mov	ecx, [ebp+K_QUOTA]	; 28 process quota
	test	ecx, ecx		; 29
	jz	ksend_err
	dec	ecx			; 31
	mov	[ebp+K_QUOTA], ecx	; 32
	; channel ownership: one sender per message type
	mov	ecx, eax
	and	ecx, 15
	shl	ecx, 2
	add	ecx, K_PROBETAB
	add	ecx, KDATA
	mov	ecx, [ecx]
	test	ecx, ecx
	jnz	ksend_err		; type claimed by another sender
	; acquire the send lock (uniprocessor node: test and set)
	mov	ecx, [ebp+K_LOCK]	; 33
	test	ecx, ecx		; 34
	jnz	ksend_err		; (contended path untaken)
	mov	dword [ebp+K_LOCK], 1	; 36
	; destination table: state, route and credits
	mov	edx, 1			; 37 destination node id
	shl	edx, 4			; 38
	add	edx, KDATA		; 39
	mov	ecx, [edx+K_DSTTAB]	; 40 state word
	cmp	ecx, 1			; 41 must be "up"
	jne	ksend_unlock_err
	mov	ecx, [edx+K_DSTTAB+8]	; per-destination statistics
	inc	ecx
	mov	[edx+K_DSTTAB+8], ecx
	; route computation: mesh coordinates from node ids (dx, dy with
	; sign folding, as the iPSC routing setup did for its hypercube)
	mov	ecx, [edx+K_DSTTAB+4]	; 43 destination coordinate word
	mov	edi, ecx		; 44
	and	edi, 255		; 45 dst x
	mov	eax, ecx		; 46
	shr	eax, 8			; 47 dst y
	and	eax, 255		; 48
	sub	edi, 0			; 49 dx = dstx - srcx (src node 0)
	jns	ksend_dxpos		; 50
	neg	edi			;    (untaken: positive dx)
	or	edi, 256		;    west bit
ksend_dxpos:
	sub	eax, 0			; 52 dy = dsty - srcy
	jns	ksend_dypos		; 53
	neg	eax
	or	eax, 512
ksend_dypos:
	shl	eax, 16			; 55
	or	edi, eax		; 56 packed route word for the header
	; fragmentation decision: message fits one transport packet?
	mov	eax, ebx		; 57
	add	eax, 511		; 58
	shr	eax, 9			; 59 fragment count
	cmp	eax, 1			; 60
	ja	ksend_unlock_err	; 61 (multi-fragment path elided)
	; interrupt mask save (spl emulation around the queue/DMA section)
	mov	eax, [ebp+K_INTMASK]	; 62
	mov	[ebp+K_INTSAVE], eax	; 63
	mov	dword [ebp+K_INTMASK], 1 ; 64 splhigh
	mov	ecx, [ebp+K_CREDITS]	; 65 flow-control credits
	test	ecx, ecx		; 46
	jz	ksend_unlock_err
	dec	ecx			; 48
	mov	[ebp+K_CREDITS], ecx	; 49
	; allocate a system buffer from the freelist
	mov	edx, [ebp+K_FREEHEAD]	; 50
	test	edx, edx		; 51
	jz	ksend_unlock_err
	mov	ecx, [edx+D_NEXT]	; 53
	mov	[ebp+K_FREEHEAD], ecx	; 54
	mov	ecx, [ebp+K_FREECNT]	; 55
	dec	ecx			; 56
	mov	[ebp+K_FREECNT], ecx	; 57
	; fill the message descriptor
	mov	eax, [esp+28]		; reload the type from the trap frame
	mov	[edx+D_TYPE], eax	; 58
	mov	[edx+D_LEN], ebx	; 59
	mov	ecx, [ebp+K_SEQ]	; 60
	mov	[edx+D_SEQ], ecx	; 61
	inc	ecx			; 62
	mov	[ebp+K_SEQ], ecx	; 63
	mov	dword [edx+D_SRC], 0	; 64
	mov	dword [edx+D_DST], 1	; 65
	mov	[edx+D_FLAGS], edi	; 66 route/flags
	mov	ecx, [ebp+K_TICK]	; 67 timestamp
	mov	[edx+D_TICK], ecx	; 68
	inc	ecx			; 69
	mov	[ebp+K_TICK], ecx	; 70
	mov	dword [edx+D_STATE], 1	; 71 READY
	; payload guard words recorded beside the descriptor
	mov	ecx, [esi]		; first payload word
	mov	[edx+40], ecx
	mov	ecx, ebx
	and	ecx, -4
	mov	[edx+44], ecx
	; header checksum over the descriptor words
	mov	ecx, [edx+D_TYPE]	; 72
	xor	ecx, [edx+D_LEN]	; 73
	xor	ecx, [edx+D_SEQ]	; 74
	xor	ecx, [edx+D_SRC]	; 75
	xor	ecx, [edx+D_DST]	; 76
	xor	ecx, [edx+D_FLAGS]	; 77
	xor	ecx, [edx+D_TICK]	; 78
	mov	[edx+D_CKSUM], ecx	; 79
	; copy user data into the system buffer (the first copy of the
	; traditional double-copy path)
	push	edx			; 80
	mov	edi, edx		; 81
	add	edi, D_DATA		; 82
	mov	ecx, ebx		; 83
	add	ecx, 3			; 84
	shr	ecx, 2			; 85
	cld				; 86
	rep movsd			; 87 (per-byte cost excluded)
	pop	edx			; 88
	; enqueue on the send descriptor queue
	mov	dword [edx+D_NEXT], 0	; 89
	mov	ecx, [ebp+K_SENDQT]	; 90
	test	ecx, ecx		; 91
	jz	ksend_qempty
	mov	[ecx+D_NEXT], edx	; 93
	jmp	ksend_qdone
ksend_qempty:
	mov	[ebp+K_SENDQH], edx	; (alt path, same length)
ksend_qdone:
	mov	[ebp+K_SENDQT], edx	; 95
	; "program the DMA": transmit the descriptor + payload through the
	; kernel transport ring (flow control, wrap check, burst copy)
	mov	ecx, ebx		; 96 record size = 64 + round4(len)
	add	ecx, 67			; 97
	and	ecx, -4			; 98
ksend_space:
	mov	edi, [ebp+K_CONSMIR]	; 99 consumed mirror VA
	mov	edi, [edi]		; 100
	mov	eax, [ebp+K_PRODUCED]	; 101
	sub	eax, edi		; 102
	add	eax, ecx		; 103
	cmp	eax, RINGSZ		; 104
	ja	ksend_space
	mov	eax, [ebp+K_RINGOFF]	; 106 wrap check
	mov	edi, eax		; 107
	add	edi, ecx		; 108
	cmp	edi, RINGSZ		; 109
	ja	ksend_err		; (wrap path elided in fast-path run)
	mov	edi, KRING		; 111
	add	edi, eax		; 112
	; burst out descriptor head (8 words) then payload
	push	edx			; 113
	mov	esi, edx		; 114
	add	esi, D_TYPE		; 115
	mov	ecx, 9			; 116
	cld				; 117
	rep movsd			; 118 descriptor words
	pop	edx			; 119
	push	edx			; 120
	mov	esi, edx		; 121
	add	esi, D_DATA		; 122
	mov	ecx, ebx		; 123
	add	ecx, 3			; 124
	shr	ecx, 2			; 125
	rep movsd			; 126 payload words
	pop	edx			; 127
	; cursors and the arrival doorbell (produced counter, mapped)
	mov	ecx, ebx		; 128
	add	ecx, 67			; 129
	and	ecx, -4			; 130
	mov	eax, [ebp+K_RINGOFF]	; 131
	add	eax, ecx		; 132
	mov	[ebp+K_RINGOFF], eax	; 133
	mov	eax, [ebp+K_PRODUCED]	; 134
	add	eax, ecx		; 135
	mov	[ebp+K_PRODUCED], eax	; 136
	mov	edi, [ebp+K_CTLOUT]	; 137 doorbell VA (mapped out)
	mov	[edi], eax		; 138 arrival interrupt fires remotely
	; send completion: dequeue and free the system buffer
	mov	ecx, [edx+D_NEXT]	; 139
	mov	[ebp+K_SENDQH], ecx	; 140
	test	ecx, ecx		; 141
	jnz	ksend_notlast
	mov	dword [ebp+K_SENDQT], 0	; 143
ksend_notlast:
	mov	dword [edx+D_STATE], 3	; 144 DONE
	mov	ecx, [ebp+K_FREEHEAD]	; 145
	mov	[edx+D_NEXT], ecx	; 146
	mov	[ebp+K_FREEHEAD], edx	; 147
	mov	ecx, [ebp+K_FREECNT]	; 148
	inc	ecx			; 149
	mov	[ebp+K_FREECNT], ecx	; 150
	; statistics, quota and credit bookkeeping
	mov	ecx, [ebp+K_STATSND]	; 151
	inc	ecx			; 152
	mov	[ebp+K_STATSND], ecx	; 153
	mov	ecx, [ebp+K_STATBYTE]	; 154
	add	ecx, ebx		; 155
	mov	[ebp+K_STATBYTE], ecx	; 156
	mov	ecx, [ebp+K_CREDITS]	; 157 credit returned on completion
	inc	ecx			; 158
	mov	[ebp+K_CREDITS], ecx	; 159
	mov	ecx, [ebp+K_QUOTA]	; 160
	inc	ecx			; 161
	mov	[ebp+K_QUOTA], ecx	; 162
	; event log: completion
	mov	ecx, [ebp+K_EVIDX]	; 163
	and	ecx, 15			; 164
	shl	ecx, 2			; 165
	mov	[ebp+K_EVLOG+ecx], ebx	; 166
	mov	ecx, [ebp+K_EVIDX]	; 167
	inc	ecx			; 168
	mov	[ebp+K_EVIDX], ecx	; 169
	; interrupt mask restore (splx)
	mov	eax, [ebp+K_INTSAVE]	; restore spl
	mov	[ebp+K_INTMASK], eax
	; release the lock and return success
	mov	dword [ebp+K_LOCK], 0
	xor	eax, eax
	pop	edx			; 172
	pop	ecx			; 173
	pop	ebx			; 174
	pop	edi			; 175
	pop	esi			; 176
	pop	ebp			; 177
	iret				; 178

ksend_unlock_err:
	mov	dword [ebp+K_LOCK], 0
ksend_err:
	mov	eax, -1
	pop	edx
	pop	ecx
	pop	ebx
	pop	edi
	pop	esi
	pop	ebp
	iret
`

// baseCrecv: user stub, the receive-interrupt handler, and the kernel
// receive handler.
const baseCrecv = `
; ---- user stub ----
crecv:
	push	ebx			; u1 max bytes
	push	edi			; u2 user buffer
	push	eax			; u3 requested type
	mov	eax, SYS_CRECV		; u4
	int	64			; u5
	add	esp, 12			; u6
	hlt

; ---- receive interrupt handler: drain the transport ring into system
; ---- buffers and queue them by type (the "DMA receive interrupt") ----
kirq:
	push	eax			; 1 save the full interrupted context
	push	ebp			; 2
	push	esi			; 3
	push	edi			; 4
	push	ecx			; 5
	push	edx			; 6
	push	ebx			; 7
	mov	ebp, KDATA		; 8
kirq_scan:
	mov	esi, [ebp+K_PRODMIR]	; 8 produced mirror VA
	mov	esi, [esi]		; 9
	mov	ecx, [ebp+K_CONSUMED]	; 10
	cmp	esi, ecx		; 11 anything new?
	je	kirq_out
	mov	esi, KRING		; 13 record address
	mov	edx, [ebp+K_RINGOFF]	; 14
	add	esi, edx		; 15
	; read and verify the descriptor head
	mov	eax, [esi]		; 16 type
	mov	ebx, [esi+4]		; 17 len
	test	ebx, ebx		; 18
	jz	kirq_out
	cmp	ebx, MAXMSG		; 20
	ja	kirq_out
	mov	ecx, [esi]		; 22 checksum over header words
	xor	ecx, [esi+4]		; 23
	xor	ecx, [esi+8]		; 24
	xor	ecx, [esi+12]		; 25
	xor	ecx, [esi+16]		; 26
	xor	ecx, [esi+20]		; 27
	xor	ecx, [esi+24]		; 28
	cmp	ecx, [esi+28]		; 29
	jne	kirq_out
	; allocate a system buffer
	mov	edx, [ebp+K_FREEHEAD]	; 31
	test	edx, edx		; 32
	jz	kirq_out
	mov	ecx, [edx+D_NEXT]	; 34
	mov	[ebp+K_FREEHEAD], ecx	; 35
	mov	ecx, [ebp+K_FREECNT]	; 36
	dec	ecx			; 37
	mov	[ebp+K_FREECNT], ecx	; 38
	; copy descriptor then payload out of the ring (second copy of the
	; traditional path: network buffer -> system buffer)
	push	edx			; 39
	mov	edi, edx		; 40
	add	edi, D_TYPE		; 41
	mov	ecx, 9			; 42 descriptor words
	cld				; 43
	rep movsd			; 44
	pop	edx			; 45
	push	edx			; 46
	mov	edi, edx		; 47
	add	edi, D_DATA		; 48
	mov	ecx, ebx		; 49
	add	ecx, 3			; 50
	shr	ecx, 2			; 51
	rep movsd			; 52 payload (per-byte cost excluded)
	pop	edx			; 53
	; fix up the buffer-local fields
	mov	dword [edx+D_NEXT], 0	; 48
	mov	dword [edx+D_STATE], 2	; 49 QUEUED
	; enqueue on the per-type receive queue
	mov	eax, [edx+D_TYPE]	; 50
	and	eax, 15			; 51
	shl	eax, 3			; 52
	add	eax, K_RCVQ		; 53
	add	eax, KDATA		; 54
	mov	ecx, [eax+4]		; 55 tail
	test	ecx, ecx		; 56
	jz	kirq_qempty
	mov	[ecx+D_NEXT], edx	; (untaken with empty queue)
	jmp	kirq_qdone
kirq_qempty:
	mov	[eax], edx		; 58 head
kirq_qdone:
	mov	[eax+4], edx		; 59 tail
	; wake a blocked receiver if the probe table says one is waiting
	mov	eax, [edx+D_TYPE]	; 60
	and	eax, 15			; 61
	shl	eax, 2			; 62
	add	eax, K_PROBETAB		; 63
	add	eax, KDATA		; 64
	mov	dword [eax], 0		; 65 clear pending probe
	; advance the consumed cursor and return credit to the sender
	mov	ecx, [edx+D_LEN]	; 66
	add	ecx, 67			; 67
	and	ecx, -4			; 68
	mov	eax, [ebp+K_RINGOFF]	; 69
	add	eax, ecx		; 70
	mov	[ebp+K_RINGOFF], eax	; 71
	mov	eax, [ebp+K_CONSUMED]	; 72
	add	eax, ecx		; 73
	mov	[ebp+K_CONSUMED], eax	; 74
	mov	edi, [ebp+K_CTLOUT]	; 75 consumed counter (mapped back)
	mov	[edi], eax		; 76
	; statistics
	mov	ecx, [ebp+K_STATRCV]	; 77
	inc	ecx			; 78
	mov	[ebp+K_STATRCV], ecx	; 79
	jmp	kirq_scan		; 80 more records?
kirq_out:
	pop	ebx			; 82
	pop	edx			; 83
	pop	ecx			; 84
	pop	edi			; 85
	pop	esi			; 86
	pop	ebp			; 87
	pop	eax			; 88
	iret				; 89

; ---- kernel receive handler ----
kcrecv:
	push	ebp			; 1
	push	esi			; 2
	push	edi			; 3
	push	ebx			; 4
	push	ecx			; 5
	push	edx			; 6
	mov	ebp, KDATA		; 7
	mov	eax, [esp+28]		; 8  requested type
	mov	edi, [esp+32]		; 9  user buffer
	mov	ebx, [esp+36]		; 10 max bytes
	; event log: syscall entry
	mov	ecx, [ebp+K_EVIDX]	; 11
	and	ecx, 15			; 12
	shl	ecx, 2			; 13
	mov	[ebp+K_EVLOG+ecx], eax	; 14
	mov	ecx, [ebp+K_EVIDX]	; 15
	inc	ecx			; 16
	mov	[ebp+K_EVIDX], ecx	; 17
	; validate
	test	eax, eax		; 18
	jz	kcrecv_err
	cmp	eax, 65535		; 20
	ja	kcrecv_err
	test	ebx, ebx		; 22
	jz	kcrecv_err
	test	edi, 3			; 24
	jnz	kcrecv_err
	mov	ecx, [ebp+K_QUOTA]	; 26
	test	ecx, ecx		; 27
	jz	kcrecv_err
	; lock
	mov	ecx, [ebp+K_LOCK]	; 29
	test	ecx, ecx		; 30
	jnz	kcrecv_err
	mov	dword [ebp+K_LOCK], 1	; 32
	; interrupt mask save (spl around the queue manipulation)
	mov	ecx, [ebp+K_INTMASK]
	mov	[ebp+K_INTSAVE], ecx
	mov	dword [ebp+K_INTMASK], 1
	; pending-probe table: at most one outstanding receive per type
	mov	ecx, eax
	and	ecx, 15
	shl	ecx, 2
	add	ecx, K_PROBETAB
	add	ecx, KDATA
	mov	edx, [ecx]
	test	edx, edx
	jnz	kcrecv_unlock_err
	mov	dword [ecx], 1
	; per-process quota charge
	mov	ecx, [ebp+K_QUOTA]
	dec	ecx
	mov	[ebp+K_QUOTA], ecx
	; per-type receive queue lookup
	mov	edx, eax		; 33
	and	edx, 15			; 34
	shl	edx, 3			; 35
	add	edx, K_RCVQ		; 36
	add	edx, KDATA		; 37
	mov	esi, [edx]		; 38 queue head
	test	esi, esi		; 39 fast path: message waiting
	jz	kcrecv_block
	; verify the descriptor matches the request
	mov	ecx, [esi+D_TYPE]	; 41
	cmp	ecx, eax		; 42
	jne	kcrecv_unlock_err
	mov	ecx, [esi+D_STATE]	; 44
	cmp	ecx, 2			; 45 QUEUED
	jne	kcrecv_unlock_err
	mov	ecx, [esi+D_SRC]	; source node bounds
	cmp	ecx, 7
	ja	kcrecv_unlock_err
	mov	ecx, [esi+D_SEQ]	; sequence window check
	cmp	ecx, [ebp+K_SEQ]
	jne	kcrecv_unlock_err
	mov	ecx, [ebp+K_SEQ]
	inc	ecx
	mov	[ebp+K_SEQ], ecx
	mov	ecx, [esi+D_LEN]	; 47
	cmp	ecx, ebx		; 48 fits user buffer
	ja	kcrecv_unlock_err
	; checksum verification before handing data to the user
	mov	ecx, [esi+D_TYPE]	; 50
	xor	ecx, [esi+D_LEN]	; 51
	xor	ecx, [esi+D_SEQ]	; 52
	xor	ecx, [esi+D_SRC]	; 53
	xor	ecx, [esi+D_DST]	; 54
	xor	ecx, [esi+D_FLAGS]	; 55
	xor	ecx, [esi+D_TICK]	; 56
	cmp	ecx, [esi+D_CKSUM]	; 57
	jne	kcrecv_unlock_err
	; dequeue
	mov	ecx, [esi+D_NEXT]	; 59
	mov	[edx], ecx		; 60 new head
	test	ecx, ecx		; 61
	jnz	kcrecv_notlast
	mov	dword [edx+4], 0	; 63 clear tail
kcrecv_notlast:
	; record the completion in the probe table (satisfied request)
	mov	ecx, eax		; 64
	and	ecx, 15			; 65
	shl	ecx, 2			; 66
	add	ecx, K_PROBETAB		; 67
	add	ecx, KDATA		; 68
	mov	edx, [esi+D_SEQ]	; 69
	mov	[ecx], edx		; 70
	; copy system buffer -> user buffer
	push	esi			; 71
	mov	ebx, [esi+D_LEN]	; 72 actual length
	mov	ecx, ebx		; 73
	add	ecx, 3			; 74
	shr	ecx, 2			; 75
	add	esi, D_DATA		; 76
	cld				; 77
	rep movsd			; 78 (per-byte cost excluded)
	pop	esi			; 79
	; write the user status block (type, len, src) after the data
	mov	ecx, [esi+D_TYPE]	; 80
	mov	[edi], ecx		; 81
	mov	ecx, [esi+D_LEN]	; 82
	mov	[edi+4], ecx		; 83
	mov	ecx, [esi+D_SRC]	; 84
	mov	[edi+8], ecx		; 85
	; free the system buffer
	mov	dword [esi+D_STATE], 3	; 86 DONE
	mov	ecx, [ebp+K_FREEHEAD]	; 87
	mov	[esi+D_NEXT], ecx	; 88
	mov	[ebp+K_FREEHEAD], esi	; 89
	mov	ecx, [ebp+K_FREECNT]	; 90
	inc	ecx			; 91
	mov	[ebp+K_FREECNT], ecx	; 92
	; statistics and timestamps
	mov	ecx, [ebp+K_STATBYTE]	; 93
	add	ecx, ebx		; 94
	mov	[ebp+K_STATBYTE], ecx	; 95
	mov	ecx, [ebp+K_TICK]	; 96
	inc	ecx			; 97
	mov	[ebp+K_TICK], ecx	; 98
	; event log: completion
	mov	ecx, [ebp+K_EVIDX]	; 99
	and	ecx, 15			; 100
	shl	ecx, 2			; 101
	mov	[ebp+K_EVLOG+ecx], ebx	; 102
	mov	ecx, [ebp+K_EVIDX]	; 103
	inc	ecx			; 104
	mov	[ebp+K_EVIDX], ecx	; 105
	; request satisfied: clear the probe, restore quota and spl
	mov	ecx, [esp+28]		; requested type
	and	ecx, 15
	shl	ecx, 2
	add	ecx, K_PROBETAB
	add	ecx, KDATA
	mov	dword [ecx], 0
	mov	ecx, [ebp+K_QUOTA]
	inc	ecx
	mov	[ebp+K_QUOTA], ecx
	mov	ecx, [ebp+K_INTSAVE]
	mov	[ebp+K_INTMASK], ecx
	; unlock, return received length
	mov	dword [ebp+K_LOCK], 0	; 106
	mov	eax, ebx		; 107
	pop	edx			; 108
	pop	ecx			; 109
	pop	ebx			; 110
	pop	edi			; 111
	pop	esi			; 112
	pop	ebp			; 113
	iret				; 114

kcrecv_block:
	; No message queued: post a probe and spin-wait for the interrupt
	; handler to satisfy it (a real kernel would sleep the process).
	mov	ecx, eax
	and	ecx, 15
	shl	ecx, 2
	add	ecx, K_PROBETAB
	add	ecx, KDATA
	mov	dword [ecx], 1
	mov	dword [ebp+K_LOCK], 0
kcrecv_spin:
	mov	esi, [edx]
	test	esi, esi
	jz	kcrecv_spin
	mov	dword [ebp+K_LOCK], 1
	jmp	kcrecv_requeue
kcrecv_requeue:
	mov	esi, [edx]
	jmp	kcrecv_have
kcrecv_have:
	; (re-join the fast path via the verification block)
	mov	ecx, [esi+D_TYPE]
	cmp	ecx, eax
	jne	kcrecv_unlock_err
	jmp	kcrecv_err

kcrecv_unlock_err:
	mov	dword [ebp+K_LOCK], 0
kcrecv_err:
	mov	eax, -1
	pop	edx
	pop	ecx
	pop	ebx
	pop	edi
	pop	esi
	pop	ebp
	iret
`

// BaselinePair is the kernel-mediated NX/2 setup between two nodes.
type BaselinePair struct {
	*Pair
	csendProg *isa.Program
	crecvProg *isa.Program
	sUser     vm.VAddr
	rUser     vm.VAddr
}

// NewBaselinePair builds the baseline: kernel data pages, the kernel
// transport ring (blocked-write mapping), arrival and credit doorbells,
// and the interrupt plumbing.
func NewBaselinePair(gen nic.Generation) *BaselinePair {
	return NewBaselinePairCfg(core.ConfigFor(2, 1, gen))
}

// NewBaselinePairCfg is NewBaselinePair on a pair built from the given
// config.
func NewBaselinePairCfg(cfg core.Config) *BaselinePair {
	p := NewPairOn(cfg, 0, 1)
	baseConsts(p.SSyms)
	baseConsts(p.RSyms)
	b := &BaselinePair{Pair: p}

	// Kernel data page on each side.
	sk, err := p.PS.AllocPages(1)
	if err != nil {
		panic(err)
	}
	rk, err := p.PR.AllocPages(1)
	if err != nil {
		panic(err)
	}
	p.SSyms["KDATA"] = int64(sk)
	p.RSyms["KDATA"] = int64(rk)

	// Transport ring sender→receiver, and the two doorbell words.
	p.MapBuf("KRING", 1, 1, nipt.BlockedWriteAU)
	sctl, rctl := p.MapBuf("KCTL", 1, 1, nipt.SingleWriteAU) // produced doorbell →
	rcon, scon := func() (vm.VAddr, vm.VAddr) {              // consumed credit ←
		rVA, err := p.PR.AllocPages(1)
		if err != nil {
			panic(err)
		}
		sVA, err := p.PS.AllocPages(1)
		if err != nil {
			panic(err)
		}
		p.M.MustMap(p.PR, rVA, phys.PageSize, p.S.ID, p.PS.PID, sVA, nipt.SingleWriteAU)
		return rVA, sVA
	}()
	p.Drain()

	// Arrival interrupt: the produced doorbell page interrupts the
	// receiving CPU on arrival (the traditional NIC's receive IRQ).
	frame, _ := p.PR.FrameOf(rctl)
	p.R.NIC.Table().Entry(frame).RecvInterrupt = true
	p.R.K.OnUserRecvIRQ = func(phys.PageNum) { p.R.CPU.RaiseIRQ(0x21) }

	// Doorbell/mirror VAs, stored in the kernel page so the handlers
	// find them (simulating kernel globals set at boot).
	kw := func(sender bool, off uint32, v uint32) {
		if sender {
			if err := p.S.UserWrite32(p.PS, sk+vm.VAddr(off), v); err != nil {
				panic(err)
			}
		} else {
			if err := p.R.UserWrite32(p.PR, rk+vm.VAddr(off), v); err != nil {
				panic(err)
			}
		}
	}

	// Sender kernel globals: doorbell out = sctl, consumed mirror = scon.
	const kCtlOut = 96
	const kConsMir = 100
	const kProdMir = 104
	p.SSyms["K_CTLOUT"] = kCtlOut
	p.SSyms["K_CONSMIR"] = kConsMir
	p.RSyms["K_CTLOUT"] = kCtlOut
	p.RSyms["K_PRODMIR"] = kProdMir
	kw(true, kCtlOut, uint32(sctl))
	kw(true, kConsMir, uint32(scon))
	kw(false, kCtlOut, uint32(rcon))
	kw(false, kProdMir, uint32(rctl))

	// Freelists: 4 system buffer slots per side.
	initPool := func(sender bool, base vm.VAddr) {
		var prev uint32
		for i := 3; i >= 0; i-- {
			slot := uint32(base) + kPool + uint32(i*dSlot)
			kwAbs := func(off, v uint32) {
				va := vm.VAddr(slot + off)
				if sender {
					if err := p.S.UserWrite32(p.PS, va, v); err != nil {
						panic(err)
					}
				} else {
					if err := p.R.UserWrite32(p.PR, va, v); err != nil {
						panic(err)
					}
				}
			}
			kwAbs(dNext, prev)
			prev = slot
		}
		kw(sender, kFreeHead, prev)
		kw(sender, kFreeCnt, 4)
	}
	initPool(true, sk)
	initPool(false, rk)
	// Quotas, credits, destination table.
	kw(true, kQuota, 16)
	kw(false, kQuota, 16)
	kw(true, kCredits, 4)
	kw(true, kDstTab+16, 1)   // node 1 state = up
	kw(true, kDstTab+16+4, 5) // node 1 route word
	p.Drain()

	// User staging buffers.
	b.sUser, err = p.PS.AllocPages(1)
	if err != nil {
		panic(err)
	}
	b.rUser, err = p.PR.AllocPages(1)
	if err != nil {
		panic(err)
	}

	b.csendProg = isa.MustAssembleCached("nx2base-csend", baseCsend, p.SSyms)
	b.crecvProg = isa.MustAssembleCached("nx2base-crecv", baseCrecv, p.RSyms)
	return b
}

// Csend runs the baseline csend; the returned counts separate user and
// kernel instructions, and Traps reports the system call.
func (b *BaselinePair) Csend(msgType uint32, payload []byte) Counts {
	b.WriteSender(b.sUser, payload)
	b.S.K.BindProcess(b.PS)
	cpu := b.S.CPU
	cpu.Load(b.csendProg)
	cpu.InstallISR(64, "ksend")
	cpu.R = [8]uint32{}
	cpu.R[isa.ESP] = uint32(b.SSyms["STKTOP"])
	cpu.R[isa.EAX] = msgType
	cpu.R[isa.ESI] = uint32(b.sUser)
	cpu.R[isa.EBX] = uint32(len(payload))
	cpu.ResetCounters()
	if err := cpu.Start("csend"); err != nil {
		panic(err)
	}
	b.Drain()
	if err := cpu.Err(); err != nil {
		panic(err)
	}
	if cpu.R[isa.EAX] != 0 {
		panic("msg: baseline csend returned failure")
	}
	c := cpu.Counters()
	return Counts{User: c.User, Kernel: c.Kernel, RepIters: c.RepIters, Traps: c.Traps}
}

// Crecv runs the baseline crecv (the pending receive interrupt is
// dispatched first, so its handler cost is included, as the paper's
// "cost of a DMA receive interrupt").
func (b *BaselinePair) Crecv(msgType uint32, maxBytes int) (Counts, []byte) {
	b.R.K.BindProcess(b.PR)
	cpu := b.R.CPU
	cpu.Load(b.crecvProg)
	cpu.InstallISR(64, "kcrecv")
	cpu.InstallISR(0x21, "kirq")
	cpu.R = [8]uint32{}
	cpu.R[isa.ESP] = uint32(b.RSyms["STKTOP"])
	cpu.R[isa.EAX] = msgType
	cpu.R[isa.EDI] = uint32(b.rUser)
	cpu.R[isa.EBX] = uint32(maxBytes)
	cpu.ResetCounters()
	if err := cpu.Start("crecv"); err != nil {
		panic(err)
	}
	b.Drain()
	if err := cpu.Err(); err != nil {
		panic(err)
	}
	n := int32(cpu.R[isa.EAX])
	if n < 0 {
		panic("msg: baseline crecv returned failure")
	}
	c := cpu.Counters()
	return Counts{User: c.User, Kernel: c.Kernel, RepIters: c.RepIters, Traps: c.Traps},
		b.ReadReceiver(b.rUser, int(n))
}

// BaselineComparison is the §5.2 comparison: SHRIMP user-level NX/2
// versus the kernel-mediated baseline.
type BaselineComparison struct {
	Shrimp        Overhead
	BaseCsend     Counts
	BaseCrecv     Counts
	PaperBaseSend uint64 // 222 (NX/2 on iPSC/2, fast path)
	PaperBaseRecv uint64 // 261
}

// Ratio returns baseline total instructions over SHRIMP total.
func (c BaselineComparison) Ratio() float64 {
	base := float64(c.BaseCsend.User + c.BaseCsend.Kernel + c.BaseCrecv.User + c.BaseCrecv.Kernel)
	return base / float64(c.Shrimp.Total())
}

// MeasureBaseline runs both implementations and verifies the baseline
// actually delivers the message.
func MeasureBaseline(gen nic.Generation) BaselineComparison {
	return MeasureBaselineCfg(core.ConfigFor(2, 1, gen))
}

// MeasureBaselineCfg is MeasureBaseline on a pair built from the given
// config.
func MeasureBaselineCfg(cfg core.Config) BaselineComparison {
	b := NewBaselinePairCfg(cfg)
	payload := []byte("baseline NX/2 message through the kernel")
	sc := b.Csend(9, payload)
	b.Drain()
	rc, got := b.Crecv(9, 256)
	b.Drain()
	if !bytes.Equal(got, payload) {
		panic(fmt.Sprintf("msg: baseline corrupted message: %q", got))
	}
	return BaselineComparison{
		Shrimp:        MeasureNX2Cfg(cfg),
		BaseCsend:     sc,
		BaseCrecv:     rc,
		PaperBaseSend: 222,
		PaperBaseRecv: 261,
	}
}

package msg

import (
	"testing"

	"repro/internal/nic"
)

func TestTable1Counts(t *testing.T) {
	rows := MeasureTable1(nic.GenEISAPrototype)
	for _, r := range rows {
		t.Logf("%s", r)
	}
	want := map[string][2]uint64{
		"single buffering":           {4, 5},
		"single buffering + copy":    {4, 17},
		"double buffering (case 1)":  {1, 1},
		"double buffering (case 2)":  {3, 5},
		"double buffering (case 3)":  {5, 5},
		"deliberate-update transfer": {15, 0},
		"csend and crecv":            {73, 78},
	}
	for _, r := range rows {
		w, ok := want[r.Name]
		if !ok {
			t.Errorf("unexpected row %q", r.Name)
			continue
		}
		if r.Source != w[0] || r.Dest != w[1] {
			t.Errorf("%s: measured %d+%d, paper %d+%d", r.Name, r.Source, r.Dest, w[0], w[1])
		}
	}
}

func TestBaselineComparison(t *testing.T) {
	c := MeasureBaseline(nic.GenEISAPrototype)
	t.Logf("SHRIMP csend+crecv: %d (%d+%d)", c.Shrimp.Total(), c.Shrimp.Source, c.Shrimp.Dest)
	t.Logf("baseline csend: user=%d kernel=%d traps=%d", c.BaseCsend.User, c.BaseCsend.Kernel, c.BaseCsend.Traps)
	t.Logf("baseline crecv: user=%d kernel=%d traps=%d", c.BaseCrecv.User, c.BaseCrecv.Kernel, c.BaseCrecv.Traps)
	t.Logf("overhead ratio: %.2fx (paper: ~(222+261)/151 = 3.2x)", c.Ratio())
	if c.Ratio() < 2.0 {
		t.Errorf("baseline should cost well over 2x SHRIMP, got %.2fx", c.Ratio())
	}
}

func TestTable1CountsGenerationInvariant(t *testing.T) {
	// Instruction counts are a property of the software, not of the
	// NIC's deposit path: the next-generation machine measures the same
	// Table 1.
	for _, r := range MeasureTable1(nic.GenXpress) {
		if r.Source != r.PaperSource || r.Dest != r.PaperDest {
			t.Errorf("%s on xpress: %d+%d, want %d+%d",
				r.Name, r.Source, r.Dest, r.PaperSource, r.PaperDest)
		}
	}
}

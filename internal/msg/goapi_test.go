package msg

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/nic"
)

func newMachine(t *testing.T) *core.Machine {
	t.Helper()
	return core.New(core.ConfigFor(2, 2, nic.GenEISAPrototype))
}

func TestChannelRoundTrips(t *testing.T) {
	m := newMachine(t)
	snd := NewEndpoint(m.Node(0))
	rcv := NewEndpoint(m.Node(3))
	ch, err := NewChannel(m, snd, rcv, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		want := []byte(fmt.Sprintf("message %d with some body", i))
		if err := ch.Send(want); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		got, err := ch.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("message %d corrupted: %q != %q", i, got, want)
		}
	}
}

func TestChannelRejectsOversize(t *testing.T) {
	m := newMachine(t)
	ch, err := NewChannel(m, NewEndpoint(m.Node(0)), NewEndpoint(m.Node(1)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Send(make([]byte, 5000)); err == nil {
		t.Fatal("oversize send succeeded")
	}
	if err := ch.Send(nil); err == nil {
		t.Fatal("empty send succeeded")
	}
}

func TestDoubleChannelOrderAndContent(t *testing.T) {
	m := newMachine(t)
	ch, err := NewDoubleChannel(m, NewEndpoint(m.Node(0)), NewEndpoint(m.Node(2)), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline two sends before the first receive: double buffering
	// permits exactly one message in flight per buffer.
	a := []byte("first message in buffer zero")
	b := []byte("second message in buffer one")
	if err := ch.Send(a); err != nil {
		t.Fatal(err)
	}
	if err := ch.Send(b); err != nil {
		t.Fatal(err)
	}
	g1, err := ch.Recv()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ch.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g1, a) || !bytes.Equal(g2, b) {
		t.Fatalf("order/content violated: %q, %q", g1, g2)
	}
	// Many iterations to exercise the toggling.
	for i := 0; i < 20; i++ {
		want := []byte(fmt.Sprintf("iteration %02d", i))
		if err := ch.Send(want); err != nil {
			t.Fatal(err)
		}
		got, err := ch.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("iteration %d corrupted", i)
		}
	}
}

func TestBlockSenderMultiPage(t *testing.T) {
	m := newMachine(t)
	bs, err := NewBlockSender(m, NewEndpoint(m.Node(0)), NewEndpoint(m.Node(1)), 3)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 3*4096)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := bs.Write(0, payload); err != nil {
		t.Fatal(err)
	}
	m.RunUntilIdle(50_000_000)
	// Send a region that starts mid-page and crosses two boundaries.
	if err := bs.Send(100, 8000); err != nil {
		t.Fatal(err)
	}
	m.RunUntilIdle(50_000_000)
	if !bs.Done() {
		t.Fatal("DMA still busy after drain")
	}
	got, err := bs.Read(100, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[100:8100]) {
		t.Fatal("block transfer corrupted data")
	}
	// Bytes outside the sent region must be untouched.
	outside, _ := bs.Read(0, 100)
	for _, v := range outside {
		if v != 0 {
			t.Fatal("bytes outside the sent region were written")
		}
	}
}

func TestChannelBothGenerations(t *testing.T) {
	for _, gen := range []nic.Generation{nic.GenEISAPrototype, nic.GenXpress} {
		m := core.New(core.ConfigFor(2, 1, gen))
		ch, err := NewChannel(m, NewEndpoint(m.Node(0)), NewEndpoint(m.Node(1)), 1)
		if err != nil {
			t.Fatalf("%v: %v", gen, err)
		}
		want := []byte("generation-independent payload")
		if err := ch.Send(want); err != nil {
			t.Fatalf("%v: %v", gen, err)
		}
		got, err := ch.Recv()
		if err != nil {
			t.Fatalf("%v: %v", gen, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%v corrupted", gen)
		}
	}
}

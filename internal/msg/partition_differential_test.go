package msg

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/nic"
)

// TestTable1PartitionDifferential pins the full Table 1 reproduction —
// hand-written ISA programs, spin loops, kernel ring traffic — on a
// partitioned machine against the sequential one, with the superblock
// trace cache both on and off: instruction counts are pure simulated
// results, so they must be bit-identical at any partition count.
func TestTable1PartitionDifferential(t *testing.T) {
	run := func(parts int, traceCache bool) []Overhead {
		cfg := core.ConfigFor(2, 1, nic.GenEISAPrototype)
		cfg.Partitions = parts
		cfg.CPU.TraceCache = traceCache
		return MeasureTable1Cfg(cfg)
	}
	for _, traceCache := range []bool{true, false} {
		want := run(1, traceCache)
		if got := run(2, traceCache); !reflect.DeepEqual(got, want) {
			t.Fatalf("traceCache=%v: partitioned Table 1 diverged:\n got  %+v\n want %+v",
				traceCache, got, want)
		}
	}
}

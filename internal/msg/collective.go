package msg

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/vm"
)

// Collective operations over mapped memory. The paper's §7 notes the
// memory-mapped model is connection-oriented: a page maps to exactly one
// destination, so one-to-many patterns need either multiple buffers or
// forwarding. Both shapes appear here — the barrier uses per-participant
// mappings through a root, and the broadcast forwards along a binomial
// tree of ordinary channels.

// Barrier synchronizes N participants with automatic-update flag words:
// arrival slots mapped participant→root and a release word mapped
// root→participant, generation-numbered so the barrier is reusable.
type Barrier struct {
	m       *core.Machine
	parts   []Endpoint
	root    Endpoint
	gen     uint32
	arrive  vm.VAddr   // root page: one word per participant
	notify  []vm.VAddr // root pages mapped out to each participant
	release []vm.VAddr // participant-side release words
	local   []vm.VAddr // participant-side arrival source words
}

// NewBarrier builds a barrier across the given endpoints; the first is
// the root. Every endpoint must be on a distinct node (mappings are
// cross-node).
func NewBarrier(m *core.Machine, parts []Endpoint) (*Barrier, error) {
	if len(parts) < 2 {
		return nil, fmt.Errorf("msg: barrier needs at least 2 participants")
	}
	b := &Barrier{m: m, parts: parts, root: parts[0]}
	var err error
	if b.arrive, err = b.root.Proc.AllocPages(1); err != nil {
		return nil, err
	}
	for i, p := range parts {
		if i == 0 {
			// The root participates locally: its arrival slot and
			// release word are plain local memory.
			b.local = append(b.local, b.arrive+vm.VAddr(4*i))
			rel, err := p.Proc.AllocPages(1)
			if err != nil {
				return nil, err
			}
			b.notify = append(b.notify, 0)
			b.release = append(b.release, rel)
			continue
		}
		// Arrival: one word of a participant page maps onto the root's
		// arrive page at this participant's slot. Whole-page mappings
		// with a shift place slot i at the participant's word 0... the
		// hardware maps page→page, so each participant maps its page
		// onto the root's arrive page and writes to offset 4*i.
		src, err := p.Proc.AllocPages(1)
		if err != nil {
			return nil, err
		}
		_, fut := p.Node.K.Map(p.Proc, src, phys.PageSize,
			b.root.Node.ID, b.root.Proc.PID, b.arrive, nipt.SingleWriteAU)
		if err := m.Await(fut); err != nil {
			return nil, err
		}
		b.local = append(b.local, src+vm.VAddr(4*i))

		// Release: a root page per participant maps onto the
		// participant's release page (one destination per page — the
		// connection-oriented constraint).
		note, err := b.root.Proc.AllocPages(1)
		if err != nil {
			return nil, err
		}
		rel, err := p.Proc.AllocPages(1)
		if err != nil {
			return nil, err
		}
		_, fut = b.root.Node.K.Map(b.root.Proc, note, phys.PageSize,
			p.Node.ID, p.Proc.PID, rel, nipt.SingleWriteAU)
		if err := m.Await(fut); err != nil {
			return nil, err
		}
		b.notify = append(b.notify, note)
		b.release = append(b.release, rel)
	}
	return b, nil
}

// Sync runs one barrier round for all participants and returns when
// every participant has been released. (The caller drives all simulated
// processes; their per-participant work happens between Syncs.)
func (b *Barrier) Sync() error {
	b.gen++
	gen := b.gen
	// Every participant announces arrival through its mapping (the root
	// writes its own slot locally).
	for i, p := range b.parts {
		if err := p.Node.UserWrite32(p.Proc, b.local[i], gen); err != nil {
			return err
		}
	}
	// Root waits for all slots.
	allArrived := func() bool {
		for i := range b.parts {
			v, err := b.root.Node.UserRead32(b.root.Proc, b.arrive+vm.VAddr(4*i))
			if err != nil || v != gen {
				return false
			}
		}
		return true
	}
	if ok := b.m.RunWhile(func() bool { return !allArrived() }); !ok && !allArrived() {
		return fmt.Errorf("msg: barrier deadlock waiting for arrivals")
	}
	// Root releases everyone.
	for i, p := range b.parts {
		if i == 0 {
			if err := p.Node.UserWrite32(p.Proc, b.release[0], gen); err != nil {
				return err
			}
			continue
		}
		if err := b.root.Node.UserWrite32(b.root.Proc, b.notify[i], gen); err != nil {
			return err
		}
	}
	released := func() bool {
		for i, p := range b.parts {
			v, err := p.Node.UserRead32(p.Proc, b.release[i])
			if err != nil || v != gen {
				return false
			}
		}
		return true
	}
	if ok := b.m.RunWhile(func() bool { return !released() }); !ok && !released() {
		return fmt.Errorf("msg: barrier deadlock waiting for release")
	}
	return nil
}

// Generation returns the completed barrier round count.
func (b *Barrier) Generation() uint32 { return b.gen }

// Broadcast distributes buffers from a root to all endpoints along a
// binomial tree of single-buffered channels: log2(N) store-and-forward
// hops rather than N root-side buffer copies.
type Broadcast struct {
	m     *core.Machine
	parts []Endpoint
	// links[i] is the channel from parent(i) to i (nil for the root).
	links []*Channel
	// children[i] lists the endpoints i forwards to.
	children [][]int
}

// NewBroadcast builds the tree; parts[0] is the root.
func NewBroadcast(m *core.Machine, parts []Endpoint, pages int) (*Broadcast, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("msg: broadcast needs participants")
	}
	bc := &Broadcast{
		m:        m,
		parts:    parts,
		links:    make([]*Channel, len(parts)),
		children: make([][]int, len(parts)),
	}
	// Binomial tree: node i's children are i+2^k for each 2^k > i's own
	// set bit span — the standard construction: child = i | (1<<k) for
	// 1<<k > i, while in range.
	for i := 1; i < len(parts); i++ {
		parent := i &^ (1 << hsb(uint(i)))
		bc.children[parent] = append(bc.children[parent], i)
		ch, err := NewChannel(m, parts[parent], parts[i], pages)
		if err != nil {
			return nil, err
		}
		bc.links[i] = ch
	}
	return bc, nil
}

// hsb returns the index of the highest set bit of v (v > 0).
func hsb(v uint) uint {
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Send pushes data from the root to every endpoint, forwarding level by
// level, and returns each endpoint's received copy (index-aligned with
// the endpoints; the root's entry is the original).
func (bc *Broadcast) Send(data []byte) ([][]byte, error) {
	out := make([][]byte, len(bc.parts))
	out[0] = data
	// BFS order guarantees a parent has its copy before forwarding.
	queue := []int{0}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range bc.children[n] {
			if err := bc.links[c].Send(out[n]); err != nil {
				return nil, err
			}
			got, err := bc.links[c].Recv()
			if err != nil {
				return nil, err
			}
			out[c] = got
			queue = append(queue, c)
		}
	}
	return out, nil
}

// Depth returns the tree depth (forwarding hops for the farthest node).
func (bc *Broadcast) Depth() int {
	d := 0
	for i := 1; i < len(bc.parts); i++ {
		depth := 0
		for n := i; n != 0; n &^= 1 << hsb(uint(n)) {
			depth++
		}
		if depth > d {
			d = depth
		}
	}
	return d
}

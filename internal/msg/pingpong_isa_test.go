package msg

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/sim"
)

// Both CPUs execute ISA programs *concurrently* on the discrete-event
// clock: the pinger stores a value through its mapping and spins on the
// echo; the ponger spins on arrival and echoes back through the reverse
// mapping. This exercises real spinning (unlike the Table 1 runs, which
// arrange first-try success), interleaved execution, and bidirectional
// AU mappings, with no kernel involvement inside the loop.

const pingSrc = `
ping:
	mov	ecx, ROUNDS
	mov	ebx, 1
ploop:
	mov	[POUT], ebx	; propagate the ping value
pwait:
	mov	eax, [PECHO]	; wait for the echo
	cmp	eax, ebx
	jne	pwait
	inc	ebx
	loop	ploop
	hlt
`

const pongSrc = `
pong:
	mov	ecx, ROUNDS
	mov	ebx, 1
qwait:
	mov	eax, [QIN]	; wait for the ping
	cmp	eax, ebx
	jne	qwait
	mov	[QOUT], eax	; echo it back
	inc	ebx
	loop	qwait
	hlt
`

func TestConcurrentISAPingPong(t *testing.T) {
	const rounds = 25
	p := NewPair(nic.GenEISAPrototype)
	// Forward: sender's POUT page -> receiver's QIN page.
	pout, _ := p.MapBuf("IGNORED1", 1, 1, nipt.SingleWriteAU)
	// Reverse: receiver's QOUT page -> sender's PECHO page.
	qout, err := p.PR.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	pecho, err := p.PS.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, fut := p.R.K.Map(p.PR, qout, 4096, p.S.ID, p.PS.PID, pecho, nipt.SingleWriteAU); true {
		if err := p.M.Await(fut); err != nil {
			t.Fatal(err)
		}
	}
	p.SSyms["POUT"] = int64(pout)
	p.SSyms["PECHO"] = int64(pecho)
	p.SSyms["ROUNDS"] = rounds
	p.RSyms["QIN"] = p.RSyms["IGNORED1"] // receiver-side address of the forward buffer
	p.RSyms["QOUT"] = int64(qout)
	p.RSyms["ROUNDS"] = rounds
	p.Drain()

	pingProg := isa.MustAssemble("ping", pingSrc, p.SSyms)
	pongProg := isa.MustAssemble("pong", pongSrc, p.RSyms)

	// Start BOTH CPUs before running the clock.
	p.S.K.BindProcess(p.PS)
	p.S.CPU.Load(pingProg)
	p.S.CPU.R = [8]uint32{}
	p.S.CPU.R[isa.ESP] = uint32(p.SSyms["STKTOP"])
	p.S.CPU.ResetCounters()
	if err := p.S.CPU.Start("ping"); err != nil {
		t.Fatal(err)
	}
	p.R.K.BindProcess(p.PR)
	p.R.CPU.Load(pongProg)
	p.R.CPU.R = [8]uint32{}
	p.R.CPU.R[isa.ESP] = uint32(p.RSyms["STKTOP"])
	p.R.CPU.ResetCounters()
	if err := p.R.CPU.Start("pong"); err != nil {
		t.Fatal(err)
	}

	start := p.M.Eng.Now()
	p.M.RunUntilIdle(50_000_000)
	elapsed := p.M.Eng.Now() - start

	for _, cpu := range []*isa.CPU{p.S.CPU, p.R.CPU} {
		if !cpu.Halted() {
			t.Fatalf("cpu did not halt (eip=%d)", cpu.EIP())
		}
		if err := cpu.Err(); err != nil {
			t.Fatal(err)
		}
	}
	// Both counters ended at rounds+1.
	if p.S.CPU.R[isa.EBX] != rounds+1 || p.R.CPU.R[isa.EBX] != rounds+1 {
		t.Fatalf("ebx: ping=%d pong=%d", p.S.CPU.R[isa.EBX], p.R.CPU.R[isa.EBX])
	}
	// The final values are in both memories.
	if v := p.ReadSender(pecho, 4); v[0] != rounds {
		t.Fatalf("final echo %d", v[0])
	}
	// Spinning really happened: far more instructions than the fast path.
	sc, rc := p.S.CPU.Counters(), p.R.CPU.Counters()
	if sc.User < 4*rounds || rc.User < 4*rounds {
		t.Fatalf("suspiciously few instructions: %d/%d", sc.User, rc.User)
	}
	rtt := elapsed / sim.Time(rounds)
	// Each round is two one-way AU latencies (~1.8 us each on EISA) plus
	// spin granularity; sanity-band it.
	if rtt < 2*sim.Microsecond || rtt > 20*sim.Microsecond {
		t.Fatalf("per-round RTT %v outside sanity band", rtt)
	}
	t.Logf("concurrent ISA ping-pong: %d rounds, RTT %v, instructions %d+%d",
		rounds, rtt, sc.User, rc.User)
}

package msg

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/vm"
)

// SharedRegion generalizes §4.1's PRAM-style shared memory to N nodes.
//
// Each participant holds a full local replica of the region. The region
// is partitioned into N owner slices; a participant writes only its own
// slice (the software convention that makes PRAM consistency usable),
// and the library duplicates each local store to every other replica.
//
// The connection-oriented cost the paper's §7 discusses shows up
// directly: a page maps to exactly one destination, so an N-way region
// needs N-1 outgoing source pages per owner page — each write is issued
// once per peer. In exchange, reads are always local and there is no
// coherence traffic at all.
type SharedRegion struct {
	m     *core.Machine
	parts []Endpoint
	pages int
	// replica[i] is participant i's local copy.
	replica []vm.VAddr
	// fan[i][j] is participant i's source page set mapped onto
	// participant j's replica (nil for j == i).
	fan [][]vm.VAddr
}

// NewSharedRegion builds a region of the given page count across the
// endpoints (each on a distinct node). The owner slice of participant i
// is bytes [i*SliceBytes, (i+1)*SliceBytes).
func NewSharedRegion(m *core.Machine, parts []Endpoint, pages int) (*SharedRegion, error) {
	if len(parts) < 2 {
		return nil, fmt.Errorf("msg: shared region needs at least 2 participants")
	}
	if pages < 1 {
		return nil, fmt.Errorf("msg: shared region needs at least one page")
	}
	r := &SharedRegion{
		m: m, parts: parts, pages: pages,
		replica: make([]vm.VAddr, len(parts)),
		fan:     make([][]vm.VAddr, len(parts)),
	}
	var err error
	for i, p := range parts {
		if r.replica[i], err = p.Proc.AllocPages(pages); err != nil {
			return nil, err
		}
	}
	for i, p := range parts {
		r.fan[i] = make([]vm.VAddr, len(parts))
		for j, q := range parts {
			if i == j {
				continue
			}
			src, err := p.Proc.AllocPages(pages)
			if err != nil {
				return nil, err
			}
			_, fut := p.Node.K.Map(p.Proc, src, pages*phys.PageSize,
				q.Node.ID, q.Proc.PID, r.replica[j], nipt.BlockedWriteAU)
			if err := m.Await(fut); err != nil {
				return nil, err
			}
			r.fan[i][j] = src
		}
	}
	return r, nil
}

// SliceBytes returns the size of each owner slice.
func (r *SharedRegion) SliceBytes() int {
	return r.pages * phys.PageSize / len(r.parts)
}

// ownerOf returns which participant owns byte offset off.
func (r *SharedRegion) ownerOf(off int) int {
	return off / r.SliceBytes()
}

// Write32 stores v at region offset off on behalf of participant who.
// The store lands in the local replica and is duplicated to every other
// replica through the mappings. Writing outside one's owner slice is
// rejected — that is the consistency convention.
func (r *SharedRegion) Write32(who int, off int, v uint32) error {
	if off < 0 || off+4 > r.pages*phys.PageSize {
		return fmt.Errorf("msg: offset %d outside region", off)
	}
	if r.ownerOf(off) != who {
		return fmt.Errorf("msg: participant %d writing into slice owned by %d", who, r.ownerOf(off))
	}
	p := r.parts[who]
	// Local replica first (reads are local).
	if err := p.Node.UserWrite32(p.Proc, r.replica[who]+vm.VAddr(off), v); err != nil {
		return err
	}
	// Duplicate to every peer replica.
	for j := range r.parts {
		if j == who {
			continue
		}
		if err := p.Node.UserWrite32(p.Proc, r.fan[who][j]+vm.VAddr(off), v); err != nil {
			return err
		}
	}
	return nil
}

// Read32 loads region offset off from who's local replica — no network
// traffic, ever.
func (r *SharedRegion) Read32(who int, off int) (uint32, error) {
	if off < 0 || off+4 > r.pages*phys.PageSize {
		return 0, fmt.Errorf("msg: offset %d outside region", off)
	}
	p := r.parts[who]
	return p.Node.UserRead32(p.Proc, r.replica[who]+vm.VAddr(off))
}

// Settle runs the machine until all duplicated stores have deposited.
func (r *SharedRegion) Settle() { r.m.RunUntilIdle(100_000_000) }

// Consistent verifies every replica agrees on every word (testing aid);
// it returns the first disagreeing (offset, participants) if any.
func (r *SharedRegion) Consistent() (bool, int, int, int) {
	words := r.pages * phys.PageSize / 4
	for w := 0; w < words; w++ {
		ref, err := r.Read32(0, 4*w)
		if err != nil {
			return false, 4 * w, 0, 0
		}
		for i := 1; i < len(r.parts); i++ {
			v, err := r.Read32(i, 4*w)
			if err != nil || v != ref {
				return false, 4 * w, 0, i
			}
		}
	}
	return true, 0, 0, 0
}

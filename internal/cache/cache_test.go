package cache

import (
	"math/rand"
	"testing"

	"repro/internal/bus"
	"repro/internal/phys"
	"repro/internal/sim"
)

func newCache() (*sim.Engine, *bus.Xpress, *Cache) {
	eng := sim.NewEngine()
	mem := phys.NewMemory(16)
	x := bus.NewXpress(eng, bus.DefaultXpressConfig(), mem)
	c := New(eng, DefaultConfig(), x)
	return eng, x, c
}

func TestLoadMissThenHit(t *testing.T) {
	_, x, c := newCache()
	x.Memory().Write32(256, 0x12345678)
	v, missLat := c.Load(256, 4)
	if v != 0x12345678 {
		t.Fatalf("miss value %#x", v)
	}
	v, hitLat := c.Load(256, 4)
	if v != 0x12345678 {
		t.Fatalf("hit value %#x", v)
	}
	if hitLat >= missLat {
		t.Fatalf("hit %v not faster than miss %v", hitLat, missLat)
	}
	st := c.Stats()
	if st.LoadMisses != 1 || st.LoadHits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSubWordAccess(t *testing.T) {
	_, x, c := newCache()
	x.Memory().Write32(64, 0xddccbbaa)
	if v, _ := c.Load(64, 1); v != 0xaa {
		t.Fatalf("byte load %#x", v)
	}
	if v, _ := c.Load(65, 1); v != 0xbb {
		t.Fatalf("byte load +1 %#x", v)
	}
	if v, _ := c.Load(64, 2); v != 0xbbaa {
		t.Fatalf("half load %#x", v)
	}
	c.Store(65, 0x7e, 1, true)
	if v, _ := c.Load(64, 4); v != 0xddcc7eaa {
		t.Fatalf("after byte store %#x", v)
	}
	if x.Memory().Read32(64) != 0xddcc7eaa {
		t.Fatal("write-through byte store missed memory")
	}
}

func TestWriteThroughGoesToBus(t *testing.T) {
	_, x, c := newCache()
	before := x.Stats().Writes
	c.Store(512, 77, 4, true)
	if x.Stats().Writes != before+1 {
		t.Fatal("write-through store did not reach the bus")
	}
	if x.Memory().Read32(512) != 77 {
		t.Fatal("memory not updated")
	}
}

func TestWriteBackDefersBusWrite(t *testing.T) {
	_, x, c := newCache()
	before := x.Stats().Writes
	c.Store(512, 77, 4, false)
	if x.Stats().Writes != before {
		t.Fatal("write-back store went to the bus immediately")
	}
	if v, _ := c.Load(512, 4); v != 77 {
		t.Fatal("write-back store lost")
	}
	// Memory is stale until eviction or flush.
	if x.Memory().Read32(512) == 77 {
		t.Fatal("memory updated before write-back")
	}
	c.Flush()
	if x.Memory().Read32(512) != 77 {
		t.Fatal("flush did not write back")
	}
	if c.Stats().WriteBacks == 0 {
		t.Fatal("write-back not counted")
	}
}

func TestEvictionWritesBackDirtyVictim(t *testing.T) {
	eng := sim.NewEngine()
	mem := phys.NewMemory(64)
	x := bus.NewXpress(eng, bus.DefaultXpressConfig(), mem)
	cfg := DefaultConfig()
	cfg.Sets = 2 // tiny cache to force conflicts
	cfg.Ways = 1
	c := New(eng, cfg, x)

	c.Store(0, 11, 4, false) // dirty line in set 0
	// Same set, different tag: line size 32, sets 2 -> stride 64.
	c.Store(64, 22, 4, false) // evicts the first line
	if mem.Read32(0) != 11 {
		t.Fatal("dirty victim not written back")
	}
	if v, _ := c.Load(64, 4); v != 22 {
		t.Fatal("new line lost")
	}
}

func TestDMASnoopInvalidates(t *testing.T) {
	_, x, c := newCache()
	x.Memory().Write32(128, 1)
	c.Load(128, 4) // line cached
	// DMA deposit (bridge-initiated) to the same line.
	x.Write32(bus.InitBridge, 128, 99)
	if c.Stats().SnoopInvalidations == 0 {
		t.Fatal("no invalidation on DMA write")
	}
	if v, _ := c.Load(128, 4); v != 99 {
		t.Fatalf("stale value %d after DMA", v)
	}
}

func TestCPUWritesDoNotSelfInvalidate(t *testing.T) {
	_, x, c := newCache()
	c.Store(128, 5, 4, true)
	c.Load(128, 4)
	x.Write32(bus.InitCPU, 132, 6) // some other CPU-side bus write
	if c.Stats().SnoopInvalidations != 0 {
		t.Fatal("CPU write invalidated own cache")
	}
}

func TestFlushPage(t *testing.T) {
	_, x, c := newCache()
	c.Store(phys.PageNum(2).Addr(0), 1, 4, false)
	c.Store(phys.PageNum(2).Addr(64), 2, 4, false)
	c.Store(phys.PageNum(3).Addr(0), 3, 4, false)
	c.FlushPage(2)
	if x.Memory().Read32(phys.PageNum(2).Addr(0)) != 1 ||
		x.Memory().Read32(phys.PageNum(2).Addr(64)) != 2 {
		t.Fatal("page 2 not written back")
	}
	if x.Memory().Read32(phys.PageNum(3).Addr(0)) == 3 {
		t.Fatal("FlushPage touched another page")
	}
	// Page 2 lines are invalid now: a DMA write then load sees new data.
	x.Write32(bus.InitBridge, phys.PageNum(2).Addr(0), 42)
	if v, _ := c.Load(phys.PageNum(2).Addr(0), 4); v != 42 {
		t.Fatal("stale line survived FlushPage")
	}
}

func TestCommandSpaceUncacheable(t *testing.T) {
	_, x, c := newCache()
	cmd := &countingCmd{}
	x.SetCommandTarget(cmd)
	base := x.Memory().CmdBase()
	c.Load(base+4, 4)
	c.Load(base+4, 4)
	if cmd.reads != 2 {
		t.Fatalf("command reads cached: %d bus reads", cmd.reads)
	}
	c.Store(base+4, 1, 4, true)
	if cmd.writes != 1 {
		t.Fatal("command store not a bus write")
	}
}

type countingCmd struct{ reads, writes int }

func (c *countingCmd) CmdRead(a phys.PAddr) uint32          { c.reads++; return 0 }
func (c *countingCmd) CmdWrite(a phys.PAddr, v uint32) bool { c.writes++; return true }

func TestWriteBufferStallsWhenBusSaturated(t *testing.T) {
	_, _, c := newCache()
	var sawStall bool
	for i := 0; i < 100; i++ {
		lat := c.Store(phys.PAddr(i*4), uint32(i), 4, true)
		if lat > DefaultConfig().HitTime {
			sawStall = true
		}
	}
	if !sawStall {
		t.Fatal("no write-buffer stall under back-to-back stores")
	}
	if c.Stats().WriteBufferStall == 0 {
		t.Fatal("stall time not accounted")
	}
}

func TestCoherenceUnderRandomInterleaving(t *testing.T) {
	// Property: a load through the cache always returns the most recent
	// write, regardless of CPU store policy and interleaved DMA writes.
	eng := sim.NewEngine()
	mem := phys.NewMemory(8)
	x := bus.NewXpress(eng, bus.DefaultXpressConfig(), mem)
	c := New(eng, DefaultConfig(), x)
	rng := rand.New(rand.NewSource(3))
	shadow := make(map[phys.PAddr]uint32)

	for i := 0; i < 5000; i++ {
		a := phys.PAddr(rng.Intn(8*phys.PageSize/4)) * 4
		switch rng.Intn(4) {
		case 0: // write-through store
			v := rng.Uint32()
			c.Store(a, v, 4, true)
			shadow[a] = v
		case 1: // write-back store
			v := rng.Uint32()
			c.Store(a, v, 4, false)
			shadow[a] = v
		case 2: // DMA write (must invalidate)
			v := rng.Uint32()
			x.Write32(bus.InitBridge, a, v)
			shadow[a] = v
		case 3: // load and check
			want, ok := shadow[a]
			if !ok {
				continue
			}
			if got, _ := c.Load(a, 4); got != want {
				t.Fatalf("step %d: load %#x = %#x, want %#x", i, uint32(a), got, want)
			}
		}
	}
	// Final sweep: every address readable and correct.
	for a, want := range shadow {
		if got, _ := c.Load(a, 4); got != want {
			t.Fatalf("final: %#x = %#x, want %#x", uint32(a), got, want)
		}
	}
}

// Package cache models a node CPU's cache in the way the SHRIMP design
// depends on it (paper §3):
//
//   - memory can be cached write-through or write-back on a per-page
//     basis, as specified in process page tables — the kernel configures
//     mapped-out automatic-update pages as write-through so that every
//     store appears on the Xpress bus where the NIC snoops it;
//   - the cache snoops DMA transactions and invalidates the corresponding
//     lines, so incoming network data deposited by DMA stays coherent
//     with what the CPU reads;
//   - write-through stores complete into a write buffer, so the CPU
//     "suffers only the local write-through cache latency" while the bus
//     transaction drains behind it.
package cache

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bus"
	"repro/internal/phys"
	"repro/internal/sim"
)

// Config holds the cache geometry and timing.
type Config struct {
	Sets      int      // number of sets (power of two)
	Ways      int      // associativity
	LineBytes int      // line size (power of two)
	HitTime   sim.Time // CPU-visible latency of a hit / buffered store
	// WriteBufferWindow bounds how far the posted-write stream may run
	// ahead of the bus; beyond it the CPU stalls until the bus drains.
	WriteBufferWindow sim.Time
}

// DefaultConfig returns a 16 KB 2-way cache with 32-byte lines, a 15 ns
// hit time (one 66 MHz CPU cycle) and an 8-write-deep buffer window.
func DefaultConfig() Config {
	return Config{
		Sets:              256,
		Ways:              2,
		LineBytes:         32,
		HitTime:           15 * sim.Nanosecond,
		WriteBufferWindow: 8 * 90 * sim.Nanosecond,
	}
}

// Stats aggregates cache activity.
type Stats struct {
	LoadHits, LoadMisses   uint64
	StoreHits, StoreMisses uint64
	SnoopInvalidations     uint64
	WriteBacks             uint64
	WriteBufferStall       sim.Time
}

type line struct {
	valid bool
	dirty bool
	tag   uint32
	data  []byte
	lru   uint64
}

// Cache is one CPU's cache attached to an Xpress bus. It registers
// itself as a bus snooper for DMA invalidations.
type Cache struct {
	eng   *sim.Engine
	cfg   Config
	xbus  *bus.Xpress
	sets  [][]line
	clock uint64
	stats Stats

	lineMask uint32
	setMask  uint32
	setShift uint32
	scratch  [4]byte

	// Spin-probe access counters (see SpinProbe). pureAcc counts only
	// load hits — accesses with a fixed, state-independent latency that
	// touch nothing outside this cache. allAcc counts every access.
	pureAcc uint64
	allAcc  uint64
}

// New builds a cache over the given bus and registers its snoop port.
func New(eng *sim.Engine, cfg Config, xbus *bus.Xpress) *Cache {
	if cfg.Sets&(cfg.Sets-1) != 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: sets and line size must be powers of two")
	}
	c := &Cache{eng: eng, cfg: cfg, xbus: xbus}
	// One backing array for all lines and one for all line data: three
	// allocations per cache instead of Sets*(Ways+1).
	c.sets = make([][]line, cfg.Sets)
	lines := make([]line, cfg.Sets*cfg.Ways)
	data := make([]byte, cfg.Sets*cfg.Ways*cfg.LineBytes)
	for i := range c.sets {
		ways := lines[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
		for w := range ways {
			base := (i*cfg.Ways + w) * cfg.LineBytes
			ways[w].data = data[base : base+cfg.LineBytes : base+cfg.LineBytes]
		}
		c.sets[i] = ways
	}
	c.lineMask = uint32(cfg.LineBytes - 1)
	c.setShift = uint32(trailingZeros(uint32(cfg.LineBytes)))
	c.setMask = uint32(cfg.Sets - 1)
	xbus.AddSnooper(snoopPort{c})
	return c
}

func trailingZeros(v uint32) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// Stats returns a snapshot of cache statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Reset invalidates every line and zeroes the LRU clock and statistics,
// returning the cache to its just-built state. Line data arrays are
// retained (an invalid line's contents are unobservable), so a reset
// cache allocates nothing.
func (c *Cache) Reset() {
	for _, ways := range c.sets {
		for w := range ways {
			ways[w].valid = false
			ways[w].dirty = false
			ways[w].tag = 0
			ways[w].lru = 0
		}
	}
	c.clock = 0
	c.stats = Stats{}
	c.pureAcc = 0
	c.allAcc = 0
}

// SpinProbe returns the pure-access and total-access counters the CPU's
// spin fast-forward uses to verify that a candidate wait loop touched
// nothing but cache load hits: a loop iteration is memory-pure iff the
// two counters advanced by the same (nonzero) amount across it. Load
// hits have a fixed HitTime latency and perturb no state outside the
// cache, so a pure iteration is exactly repeatable until some engine
// event intervenes.
func (c *Cache) SpinProbe() (pure, all uint64) { return c.pureAcc, c.allAcc }

// SpinAccount charges iters skipped spin iterations, each performing
// loads pure load hits, to the statistics — keeping cache.Stats
// bit-identical with literally retiring the same iterations. (The LRU
// clock is deliberately not advanced: only the relative order of clock
// values matters, and repeated hits to the same lines preserve it.)
func (c *Cache) SpinAccount(iters, loads uint64) {
	c.stats.LoadHits += iters * loads
	c.pureAcc += iters * loads
	c.allAcc += iters * loads
}

func (c *Cache) decompose(a phys.PAddr) (set, tag, off uint32) {
	u := uint32(a)
	return (u >> c.setShift) & c.setMask, u >> c.setShift >> log2u(uint32(c.cfg.Sets)), u & c.lineMask
}

func log2u(v uint32) uint32 {
	var n uint32
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func (c *Cache) lookup(a phys.PAddr) *line {
	set, tag, _ := c.decompose(a)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			c.clock++
			l.lru = c.clock
			return l
		}
	}
	return nil
}

// victim picks the LRU way of a's set, writing it back if dirty.
func (c *Cache) victim(a phys.PAddr) *line {
	set, _, _ := c.decompose(a)
	v := &c.sets[set][0]
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if !l.valid {
			v = l
			break
		}
		if l.lru < v.lru {
			v = l
		}
	}
	if v.valid && v.dirty {
		c.stats.WriteBacks++
		c.xbus.Write(bus.InitCPU, c.lineBase(set, v.tag), v.data)
		v.dirty = false
	}
	return v
}

func (c *Cache) lineBase(set, tag uint32) phys.PAddr {
	return phys.PAddr((tag<<log2u(uint32(c.cfg.Sets)) | set) << c.setShift)
}

// Load reads size (1, 2 or 4) bytes at a, returning the value and the
// CPU-visible latency. Accesses that straddle a cache line split into
// two line accesses.
func (c *Cache) Load(a phys.PAddr, size int) (uint32, sim.Time) {
	if first := c.cfg.LineBytes - int(uint32(a)&c.lineMask); size > first && !c.xbus.Memory().IsCmd(a) {
		lo, t1 := c.load(a, first)
		hi, t2 := c.load(a+phys.PAddr(first), size-first)
		return lo | hi<<(8*uint(first)), t1 + t2
	}
	return c.load(a, size)
}

func (c *Cache) load(a phys.PAddr, size int) (uint32, sim.Time) {
	if c.xbus.Memory().IsCmd(a) {
		c.allAcc++ // command reads hit the bus: never pure
		v, done := c.xbus.Read32(bus.InitCPU, a)
		return truncate(v, size), done - c.eng.Now()
	}
	if l := c.lookup(a); l != nil {
		c.stats.LoadHits++
		c.pureAcc++
		c.allAcc++
		_, _, off := c.decompose(a)
		return truncate(read32(l.data, off), size), c.cfg.HitTime
	}
	c.stats.LoadMisses++
	c.allAcc++
	l := c.victim(a)
	set, tag, off := c.decompose(a)
	base := c.lineBase(set, tag)
	done := c.xbus.ReadInto(bus.InitCPU, base, l.data)
	l.valid, l.dirty, l.tag = true, false, tag
	c.clock++
	l.lru = c.clock
	return truncate(read32(l.data, off), size), done - c.eng.Now()
}

// Store writes size (1, 2 or 4) bytes at a. writeThrough selects the
// policy for this access, which the caller derives from the page table
// entry. The returned latency is what the CPU observes.
func (c *Cache) Store(a phys.PAddr, v uint32, size int, writeThrough bool) sim.Time {
	c.allAcc++ // stores are never pure
	if c.xbus.Memory().IsCmd(a) {
		// Command space writes are uncacheable bus transactions.
		done := c.xbus.Write(bus.InitCPU, a, c.leBytes(v, size))
		return done - c.eng.Now()
	}
	if first := c.cfg.LineBytes - int(uint32(a)&c.lineMask); size > first {
		t1 := c.Store(a, truncate(v, first), first, writeThrough)
		t2 := c.Store(a+phys.PAddr(first), v>>(8*uint(first)), size-first, writeThrough)
		return t1 + t2
	}
	_, _, off := c.decompose(a)
	if l := c.lookup(a); l != nil {
		c.stats.StoreHits++
		write32(l.data, off, v, size)
		if !writeThrough {
			l.dirty = true
			return c.cfg.HitTime
		}
	} else if !writeThrough {
		// Write-back pages write-allocate.
		c.stats.StoreMisses++
		l = c.victim(a)
		set, tag, _ := c.decompose(a)
		base := c.lineBase(set, tag)
		c.xbus.ReadInto(bus.InitCPU, base, l.data)
		l.valid, l.tag = true, tag
		write32(l.data, off, v, size)
		l.dirty = true
		return c.cfg.HitTime
	} else {
		// Write-through without allocate: the store just goes to the bus.
		c.stats.StoreMisses++
	}
	// Write-through: post the bus write; stall only if the write buffer
	// has run too far ahead of the bus.
	var stall sim.Time
	if ahead := c.xbus.BusyUntil() - c.eng.Now(); ahead > c.cfg.WriteBufferWindow {
		stall = ahead - c.cfg.WriteBufferWindow
		c.stats.WriteBufferStall += stall
	}
	c.xbus.Write(bus.InitCPU, a, c.leBytes(v, size))
	return c.cfg.HitTime + stall
}

// LockedCmpxchg forwards the §4.3 locked read-modify-write to the bus,
// bypassing the cache (LOCK-prefixed operations and command space are
// uncacheable).
func (c *Cache) LockedCmpxchg(a phys.PAddr, expect, repl uint32) (read uint32, swapped bool, lat sim.Time) {
	c.allAcc++ // locked RMWs go to the bus: never pure
	if !c.xbus.Memory().IsCmd(a) {
		// Keep the cache coherent with a locked RMW on DRAM.
		if l := c.lookup(a); l != nil {
			cur := read32(l.data, uint32(a)&c.lineMask)
			if cur == expect {
				write32(l.data, uint32(a)&c.lineMask, repl, 4)
			}
		}
	}
	read, swapped, done := c.xbus.LockedCmpxchg(bus.InitCPU, a, expect, repl)
	return read, swapped, done - c.eng.Now()
}

// FlushPage writes back and invalidates every line belonging to the
// given physical page. The kernel uses it when a page's caching policy
// changes (map to write-through) and around page replacement.
func (c *Cache) FlushPage(page phys.PageNum) {
	lo, hi := uint32(page.Addr(0)), uint32(page.Addr(0))+phys.PageSize
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if !l.valid {
				continue
			}
			base := uint32(c.lineBase(uint32(s), l.tag))
			if base < lo || base >= hi {
				continue
			}
			if l.dirty {
				c.stats.WriteBacks++
				c.xbus.Write(bus.InitCPU, phys.PAddr(base), l.data)
			}
			l.valid, l.dirty = false, false
		}
	}
}

// Flush writes back all dirty lines and invalidates the cache.
func (c *Cache) Flush() {
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.valid && l.dirty {
				c.stats.WriteBacks++
				c.xbus.Write(bus.InitCPU, c.lineBase(uint32(s), l.tag), l.data)
			}
			l.valid, l.dirty = false, false
		}
	}
}

// snoopPort adapts the cache to the bus.Snooper interface: DMA writes
// invalidate matching lines (paper §3: "the caches snoop DMA transactions
// and automatically invalidate corresponding cache lines"). A dirty line
// hit by a partial-line DMA write is merged the way snooping hardware
// does: the cache supplies its dirty line during the snoop phase, the
// DMA bytes win for the range they cover, and the line is invalidated.
type snoopPort struct{ c *Cache }

func (p snoopPort) SnoopWrite(init bus.Initiator, a phys.PAddr, data []byte) {
	if init == bus.InitCPU {
		return
	}
	c := p.c
	first := uint32(a) &^ c.lineMask
	last := (uint32(a) + uint32(len(data)) - 1) &^ c.lineMask
	for base := first; base <= last; base += uint32(c.cfg.LineBytes) {
		l := c.lookup(phys.PAddr(base))
		if l == nil {
			continue
		}
		if l.dirty {
			// Merge: dirty line data underneath, DMA bytes on top.
			c.xbus.Memory().Write(phys.PAddr(base), l.data)
			lo, hi := uint32(a), uint32(a)+uint32(len(data))
			if lo < base {
				lo = base
			}
			if end := base + uint32(c.cfg.LineBytes); hi > end {
				hi = end
			}
			c.xbus.Memory().Write(phys.PAddr(lo), data[lo-uint32(a):hi-uint32(a)])
		}
		l.valid = false
		l.dirty = false
		c.stats.SnoopInvalidations++
	}
}

func read32(b []byte, off uint32) uint32 {
	if int(off)+4 <= len(b) {
		return binary.LittleEndian.Uint32(b[off:])
	}
	var v uint32
	for i := uint32(0); int(off+i) < len(b); i++ {
		v |= uint32(b[off+i]) << (8 * i)
	}
	return v
}

func write32(b []byte, off uint32, v uint32, size int) {
	for i := 0; i < size; i++ {
		if int(off)+i < len(b) {
			b[off+uint32(i)] = byte(v >> (8 * i))
		}
	}
}

func truncate(v uint32, size int) uint32 {
	if size <= 0 || size > 4 {
		panic(fmt.Sprintf("cache: bad access size %d", size))
	}
	if size == 4 {
		return v
	}
	return v & (1<<(8*uint(size)) - 1)
}

// leBytes encodes v into the cache's scratch buffer. Bus consumers copy
// write data synchronously and never retain the slice, so reusing one
// buffer per cache is safe.
func (c *Cache) leBytes(v uint32, size int) []byte {
	b := c.scratch[:size]
	for i := 0; i < size; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

package kernel

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/phys"
)

// Crash survival. SHRIMP's §4.4 machinery tears mappings down one page
// at a time with an acknowledged handshake; a crashed node can never
// acknowledge, so survival needs a second teardown path keyed off the
// failure detector instead of the wire. The NIC's reliable layer is the
// detector: when a flow's retry budget exhausts in Survivable mode it
// declares the peer dead (nic.declarePeerDown) and the machine routes
// the event here. HandlePeerDown then quarantines every mapping to or
// from the dead node in one node-local pass — no messages, nothing to
// wait for — after which the kernel runs degraded: RPCs to the dead
// node fast-fail with fault.ErrPeerDown, stores through invalidated
// mappings repair to local-only pages, and surviving traffic proceeds
// untouched.

// SetSurvivable arms crash-survival mode (mirrors
// fault.Config.Survivable; the machine constructor sets it at boot).
func (k *Kernel) SetSurvivable(on bool) { k.survivable = on }

// Survivable reports whether crash-survival mode is armed.
func (k *Kernel) Survivable() bool { return k.survivable }

// PeerIsDown reports whether this kernel's failure detector has
// declared the node dead.
func (k *Kernel) PeerIsDown(node packet.NodeID) bool { return k.down[node] != nil }

// PeerDownCause returns the failure-detector record for a dead peer,
// or nil if the peer has not been declared dead.
func (k *Kernel) PeerDownCause(node packet.NodeID) *fault.PeerDown { return k.down[node] }

// peerDownErr wraps the membership record so callers can test
// errors.Is(err, fault.ErrPeerDown).
func (k *Kernel) peerDownErr(dst packet.NodeID) error {
	if pd := k.down[dst]; pd != nil {
		return fmt.Errorf("kernel%d: rpc to node %d: %w", k.id, dst, pd)
	}
	return fmt.Errorf("kernel%d: rpc to node %d: %w", k.id, dst, fault.ErrPeerDown)
}

// HandlePeerDown quarantines a dead peer: every pending RPC addressed
// to it resolves with fault.ErrPeerDown, every outgoing mapping
// targeting it is invalidated (the §4.4 teardown, minus the handshake
// the dead node can no longer complete), its mapped-in claims on local
// frames are dropped, and queued control records to it are discarded.
// Idempotent; all iteration orders are sorted so replays and partition
// counts cannot reorder the teardown.
func (k *Kernel) HandlePeerDown(pd *fault.PeerDown) {
	d := packet.NodeID(pd.Node)
	if d == k.id || k.down[d] != nil {
		return
	}
	// Record membership first: completion callbacks below may issue new
	// RPCs, and those must fast-fail rather than re-arm the quarantined
	// reliable layer.
	k.down[d] = pd
	k.stats.PeerDowns++

	// 1. Pending RPCs to the dead node will never be acknowledged.
	var ids []uint32
	for id, dst := range k.pendingDst {
		if dst == d {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fut := k.pending[id]
		delete(k.pending, id)
		delete(k.pendingDst, id)
		fut.resolve(k.peerDownErr(d), nil)
	}

	// 2. Outgoing mappings to the dead node: invalidate like a §4.4
	// shootdown. A later store faults, and re-establishment (which
	// fast-fails against a dead destination) degrades the page to
	// local-only writability.
	var pages []phys.PageNum
	for key := range k.exports {
		if key.node == d {
			pages = append(pages, key.page)
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, pg := range pages {
		key := exportKey{node: d, page: pg}
		for _, m := range k.exports[key] {
			k.invalidateOutMapping(m)
			k.stats.PeerMapsTorn++
		}
		delete(k.exports, key)
	}

	// 3. The dead node's claims on local frames: nothing will arrive
	// from it (its NIC bit-buckets), and an unmap-in will never come.
	var frames []phys.PageNum
	for f, imp := range k.imports {
		if _, ok := imp[d]; ok {
			frames = append(frames, f)
		}
	}
	sort.Slice(frames, func(i, j int) bool { return frames[i] < frames[j] })
	for _, f := range frames {
		imp := k.imports[f]
		delete(imp, d)
		k.stats.PeerMapsTorn++
		if len(imp) == 0 {
			delete(k.imports, f)
			k.nic.Table().Entry(f).MappedIn = false
		}
	}

	// 4. Control records queued behind the ring credit window would
	// otherwise sit forever: the dead node returns no more credits.
	if p := k.peers[d]; p != nil {
		p.backlog = nil
	}

	if k.OnPeerDown != nil {
		k.OnPeerDown(pd)
	}
}

// Heartbeat sends one liveness probe to every peer not already declared
// dead. The probe is an ordinary ring record, so it rides the reliable
// layer: a crashed receiver never acknowledges, the flow's retry budget
// exhausts, and the failure detector fires — giving Survivable mode a
// bounded detection time even when no data traffic targets the dead
// node. Peers with backlogged records are skipped; their queued traffic
// already exercises the detector.
func (k *Kernel) Heartbeat() {
	for _, node := range k.peerOrder {
		if k.down[node] != nil {
			continue
		}
		p := k.peers[node]
		if len(p.backlog) > 0 {
			continue
		}
		k.ringSend(p, newWire(mtPing).b, false)
		k.stats.PingsSent++
	}
}

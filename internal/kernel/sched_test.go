package kernel_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/vm"
)

const resultVA = vm.VAddr(0x3000_0000)

// worker returns a compute-bound program that counts 400 increments
// from start and stores the result at the fixed RESULT address.
func worker(start uint32) *isa.Program {
	return isa.MustAssemble("worker", `
main:
	mov	eax, START
	mov	ecx, 400
spin:	add	eax, 1
	dec	ecx
	jnz	spin
	mov	[RESULT], eax
	hlt
`, map[string]int64{"START": int64(start), "RESULT": int64(resultVA)})
}

// stage gives proc a result page at the fixed VA, a stack, and the
// worker program.
func stage(t *testing.T, proc *kernel.Process, start uint32) {
	t.Helper()
	res, err := proc.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := proc.FrameOf(res)
	proc.AS.Map(resultVA.Page(), vm.PTE{Frame: frame, Present: true, Writable: true})
	stack, err := proc.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	proc.SetupRun(worker(start), "main", stack+phys.PageSize)
}

// TestMultiprogrammingWithLiveTraffic is the Figure 3 demonstration:
// two processes on the receiving node share the CPU under round-robin
// scheduling while a remote sender streams into one of them. Both
// programs complete correctly, the stream lands in the right process's
// buffer, and the context switches never touch the NIC.
func TestMultiprogrammingWithLiveTraffic(t *testing.T) {
	m := core.New(core.ConfigFor(2, 1, nic.GenEISAPrototype))
	a, b := m.Node(0), m.Node(1)

	sender := a.K.CreateProcess()
	target := b.K.CreateProcess()
	other := b.K.CreateProcess()

	sendVA, _ := sender.AllocPages(1)
	recvVA, _ := target.AllocPages(1)
	m.MustMap(sender, sendVA, phys.PageSize, b.ID, target.PID, recvVA, nipt.SingleWriteAU)

	stage(t, target, 0)
	stage(t, other, 1_000_000)
	b.K.AddRunnable(target)
	b.K.AddRunnable(other)
	if err := b.K.StartScheduler(10 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}

	// While node B multitasks, node A streams stores into target's page.
	for i := 0; i < 50; i++ {
		if err := a.UserWrite32(sender, sendVA+vm.VAddr(4*i), uint32(7000+i)); err != nil {
			t.Fatal(err)
		}
		m.Eng.RunFor(2 * sim.Microsecond)
	}
	b.K.StopScheduler()
	m.RunUntilIdle(50_000_000)

	if b.K.Stats().ContextSwitches < 3 {
		t.Fatalf("only %d context switches", b.K.Stats().ContextSwitches)
	}
	check := func(proc *kernel.Process, want uint32) {
		t.Helper()
		v, err := b.UserRead32(proc, resultVA)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("result %d, want %d", v, want)
		}
	}
	check(target, 400)
	check(other, 1_000_400)
	for i := 0; i < 50; i++ {
		v, _ := b.UserRead32(target, recvVA+vm.VAddr(4*i))
		if v != uint32(7000+i) {
			t.Fatalf("stream word %d = %d", i, v)
		}
	}
	// Protection: the stream never touched other's pages (its pages are
	// its result, stack, and nothing else; result was checked above and
	// the stack holds only the sentinel frame).
	frame, _ := other.FrameOf(resultVA)
	if got := b.Mem.Read32(frame.Addr(4)); got != 0 {
		t.Fatalf("other's memory perturbed: %d", got)
	}
}

// TestSchedulerRunsAloneProcess checks the degenerate single-process
// case keeps running across slices.
func TestSchedulerRunsAloneProcess(t *testing.T) {
	m := core.New(core.ConfigFor(1, 1, nic.GenXpress))
	n := m.Node(0)
	p := n.K.CreateProcess()
	stage(t, p, 5)
	n.K.AddRunnable(p)
	if err := n.K.StartScheduler(sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	m.Eng.RunFor(100 * sim.Microsecond)
	n.K.StopScheduler()
	m.RunUntilIdle(10_000_000)
	if v, _ := n.UserRead32(p, resultVA); v != 405 {
		t.Fatalf("result %d", v)
	}
}

// TestSchedulerRequiresRunnables covers the error paths.
func TestSchedulerRequiresRunnables(t *testing.T) {
	m := core.New(core.ConfigFor(1, 1, nic.GenXpress))
	if err := m.Node(0).K.StartScheduler(sim.Microsecond); err == nil {
		t.Fatal("empty run queue accepted")
	}
}

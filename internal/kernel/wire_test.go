package kernel

import (
	"testing"
	"testing/quick"
)

func TestWireRoundTrip(t *testing.T) {
	f := func(a uint8, b uint32, c uint64, d uint32) bool {
		w := newWire(mtMapInReq).u8(a).u32(b).u64(c).u32(d)
		r := &reader{b: w.b}
		if msgType(r.u8()) != mtMapInReq {
			return false
		}
		return r.u8() == a && r.u32() == b && r.u64() == c && r.u32() == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatusErrors(t *testing.T) {
	if statusErr(stOK, "x") != nil {
		t.Fatal("stOK must be nil")
	}
	for _, st := range []uint8{stNoProcess, stNotMapped, stNoMemory, 99} {
		if statusErr(st, "x") == nil {
			t.Fatalf("status %d must error", st)
		}
	}
}

func TestRecordBytesAlignment(t *testing.T) {
	for _, crc := range []bool{false, true} {
		k := &Kernel{ringCRC: crc}
		f := func(n uint16) bool {
			payload := make([]byte, int(n)%(maxRecordBytes-int(k.ringHeader())))
			rec := k.recordBytes(payload)
			// 8-aligned and big enough.
			return rec%8 == 0 && rec >= k.ringHeader()+uint32(len(payload))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("crc=%v: %v", crc, err)
		}
	}
}

func TestFutureCallbacks(t *testing.T) {
	f := &Future{}
	fired := 0
	f.OnDone(func(*Future) { fired++ })
	if f.Done() {
		t.Fatal("fresh future done")
	}
	f.resolve(nil, nil)
	if fired != 1 || !f.Done() {
		t.Fatal("callback not fired on resolve")
	}
	// Late registration fires immediately; double resolve is a no-op.
	f.OnDone(func(*Future) { fired++ })
	f.resolve(nil, nil)
	if fired != 2 {
		t.Fatalf("fired=%d", fired)
	}
}

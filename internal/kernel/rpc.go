package kernel

import (
	"encoding/binary"
	"fmt"

	"repro/internal/nipt"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/phys"
	"repro/internal/trace"
	"repro/internal/vm"
)

// RPC messages carried on the kernel rings. The map() system call, its
// teardown, and the §4.4 invalidation protocol are all implemented as
// request/response pairs between kernels.

type msgType uint8

const (
	mtMapInReq msgType = iota + 1
	mtMapInResp
	mtUnmapInReq
	mtUnmapInResp
	mtInvalidateReq
	mtInvalidateAck
	mtCredit
	// mtPing is the Survivable-mode heartbeat probe: no payload beyond
	// the type byte and no reply. Its only job is to exercise the
	// reliable layer toward an otherwise-idle peer so the retry budget
	// detects a crash that no data traffic would trip over.
	mtPing
)

// Status codes carried in responses.
const (
	stOK uint8 = iota
	stNoProcess
	stNotMapped
	stNoMemory
)

func statusErr(st uint8, what string) error {
	switch st {
	case stOK:
		return nil
	case stNoProcess:
		return fmt.Errorf("kernel: %s: no such destination process", what)
	case stNotMapped:
		return fmt.Errorf("kernel: %s: destination range not mapped", what)
	case stNoMemory:
		return fmt.Errorf("kernel: %s: destination out of memory", what)
	}
	return fmt.Errorf("kernel: %s: status %d", what, st)
}

// Future is the completion handle for an asynchronous kernel RPC.
type Future struct {
	done   bool
	err    error
	frames []phys.PageNum
	cbs    []func(*Future)
}

// Done reports whether the RPC has completed.
func (f *Future) Done() bool { return f.done }

// Err returns the RPC error, if any (valid once Done).
func (f *Future) Err() error { return f.err }

// Frames returns the physical frames resolved by a map-in request.
func (f *Future) Frames() []phys.PageNum { return f.frames }

// OnDone registers a completion callback (fires immediately if already
// done).
func (f *Future) OnDone(cb func(*Future)) {
	if f.done {
		cb(f)
		return
	}
	f.cbs = append(f.cbs, cb)
}

func (f *Future) resolve(err error, frames []phys.PageNum) {
	if f.done {
		return
	}
	f.done, f.err, f.frames = true, err, frames
	for _, cb := range f.cbs {
		cb(f)
	}
	f.cbs = nil
}

func (k *Kernel) newRequest(dst packet.NodeID) (uint32, *Future) {
	k.nextReq++
	f := &Future{}
	k.pending[k.nextReq] = f
	k.pendingDst[k.nextReq] = dst
	return k.nextReq, f
}

// deadRequest short-circuits an RPC whose destination this kernel has
// already declared dead: the future resolves immediately (callers see
// fault.ErrPeerDown via errors.Is) without touching the ring.
func (k *Kernel) deadRequest(dst packet.NodeID) *Future {
	f := &Future{}
	f.resolve(k.peerDownErr(dst), nil)
	return f
}

func (k *Kernel) peerOf(node packet.NodeID) *peer {
	p, ok := k.peers[node]
	if !ok {
		panic(fmt.Sprintf("kernel%d: no ring to node %d", k.id, node))
	}
	return p
}

// --- wire helpers ---

type wire struct{ b []byte }

func newWire(t msgType) *wire      { return &wire{b: []byte{byte(t)}} }
func (w *wire) u8(v uint8) *wire   { w.b = append(w.b, v); return w }
func (w *wire) u32(v uint32) *wire { w.b = binary.LittleEndian.AppendUint32(w.b, v); return w }
func (w *wire) u64(v uint64) *wire { w.b = binary.LittleEndian.AppendUint64(w.b, v); return w }

type reader struct {
	b   []byte
	off int
}

func (r *reader) u8() uint8 {
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// --- senders ---

// sendMapInReq asks the peer kernel to resolve count virtual pages of
// process dstPID starting at vpn, mark them mapped in (pinning per its
// policy), and return their physical frames.
func (k *Kernel) sendMapInReq(dst packet.NodeID, dstPID int, vpn vm.VPN, count int) *Future {
	if k.down[dst] != nil {
		return k.deadRequest(dst)
	}
	id, fut := k.newRequest(dst)
	w := newWire(mtMapInReq).u32(id).u32(uint32(k.id)).u32(uint32(dstPID)).u32(uint32(vpn)).u32(uint32(count))
	k.ringSend(k.peerOf(dst), w.b, false)
	return fut
}

// sendUnmapInReq tells the peer kernel this node no longer maps into the
// given frames.
func (k *Kernel) sendUnmapInReq(dst packet.NodeID, frames []phys.PageNum) *Future {
	if k.down[dst] != nil {
		return k.deadRequest(dst)
	}
	id, fut := k.newRequest(dst)
	w := newWire(mtUnmapInReq).u32(id).u32(uint32(k.id)).u32(uint32(len(frames)))
	for _, f := range frames {
		w.u32(uint32(f))
	}
	k.ringSend(k.peerOf(dst), w.b, false)
	return fut
}

// sendInvalidateReq asks the peer kernel to invalidate every outgoing
// mapping it has targeting local frame page (§4.4).
func (k *Kernel) sendInvalidateReq(dst packet.NodeID, page phys.PageNum) *Future {
	if k.down[dst] != nil {
		return k.deadRequest(dst)
	}
	id, fut := k.newRequest(dst)
	w := newWire(mtInvalidateReq).u32(id).u32(uint32(k.id)).u32(uint32(page))
	k.ringSend(k.peerOf(dst), w.b, false)
	k.stats.InvalidatesSent++
	return fut
}

func (k *Kernel) sendCredit(p *peer) {
	w := newWire(mtCredit).u64(p.consumed)
	k.ringSend(p, w.b, true)
}

// --- dispatch ---

func (k *Kernel) dispatch(from *peer, payload []byte) {
	r := &reader{b: payload}
	switch msgType(r.u8()) {
	case mtMapInReq:
		k.handleMapInReq(from, r)
	case mtMapInResp:
		k.handleMapInResp(r)
	case mtUnmapInReq:
		k.handleUnmapInReq(from, r)
	case mtUnmapInResp:
		k.handleSimpleResp(r, "unmap-in")
	case mtInvalidateReq:
		k.handleInvalidateReq(from, r)
	case mtInvalidateAck:
		k.handleSimpleResp(r, "invalidate")
	case mtCredit:
		k.ringAck(from, r.u64())
	case mtPing:
		// Heartbeat probe: delivery itself was the point.
	default:
		panic(fmt.Sprintf("kernel%d: unknown ring message from node %d", k.id, from.node))
	}
}

// handleMapInReq serves the receiver-side half of map(): resolve the
// destination buffer to physical frames, mark them mapped in, and record
// the importer for the §4.4 protocol.
func (k *Kernel) handleMapInReq(from *peer, r *reader) {
	id := r.u32()
	src := packet.NodeID(r.u32())
	pid := int(r.u32())
	vpn := vm.VPN(r.u32())
	count := int(r.u32())
	k.stats.MapInRequests++

	reply := newWire(mtMapInResp).u32(id)
	proc, ok := k.procs[pid]
	if !ok {
		k.ringSend(from, reply.u8(stNoProcess).u32(0).b, false)
		return
	}
	frames := make([]phys.PageNum, 0, count)
	for i := 0; i < count; i++ {
		p := vpn + vm.VPN(i)
		if _, present := proc.AS.FrameOf(p); !present {
			// Paged out (or never mapped): page it back in if we have a
			// swap record; otherwise the request is bad.
			if !k.hasSwap(proc, p) {
				k.ringSend(from, reply.u8(stNotMapped).u32(0).b, false)
				return
			}
			if err := k.pageIn(proc, p); err != nil {
				k.ringSend(from, reply.u8(stNoMemory).u32(0).b, false)
				return
			}
		}
		frame, _ := proc.AS.FrameOf(p)
		frames = append(frames, frame)
	}
	for _, f := range frames {
		k.nic.Table().Entry(f).MappedIn = true
		imp := k.imports[f]
		if imp == nil {
			imp = make(map[packet.NodeID]int)
			k.imports[f] = imp
		}
		imp[src]++
	}
	reply.u8(stOK).u32(uint32(len(frames)))
	for _, f := range frames {
		reply.u32(uint32(f))
	}
	k.ringSend(from, reply.b, false)
}

func (k *Kernel) handleMapInResp(r *reader) {
	id := r.u32()
	fut, ok := k.pending[id]
	if !ok {
		return
	}
	delete(k.pending, id)
	delete(k.pendingDst, id)
	st := r.u8()
	n := int(r.u32())
	frames := make([]phys.PageNum, n)
	for i := range frames {
		frames[i] = phys.PageNum(r.u32())
	}
	fut.resolve(statusErr(st, "map-in"), frames)
}

func (k *Kernel) handleUnmapInReq(from *peer, r *reader) {
	id := r.u32()
	src := packet.NodeID(r.u32())
	n := int(r.u32())
	for i := 0; i < n; i++ {
		f := phys.PageNum(r.u32())
		if imp := k.imports[f]; imp != nil {
			imp[src]--
			if imp[src] <= 0 {
				delete(imp, src)
			}
			if len(imp) == 0 {
				delete(k.imports, f)
				k.nic.Table().Entry(f).MappedIn = false
			}
		}
	}
	k.ringSend(from, newWire(mtUnmapInResp).u32(id).u8(stOK).b, false)
}

// handleInvalidateReq serves the §4.4 shootdown: every local outgoing
// mapping targeting (from.node, page) is torn out of the NIPT and its
// source virtual page marked read-only; the eventual write fault
// re-establishes the mapping.
func (k *Kernel) handleInvalidateReq(from *peer, r *reader) {
	id := r.u32()
	_ = r.u32() // src node, same as ring peer
	page := phys.PageNum(r.u32())
	k.stats.InvalidatesServed++

	key := exportKey{node: from.node, page: page}
	for _, m := range k.exports[key] {
		k.invalidateOutMapping(m)
	}
	delete(k.exports, key)
	k.ringSend(from, newWire(mtInvalidateAck).u32(id).u8(stOK).b, false)
}

func (k *Kernel) handleSimpleResp(r *reader, what string) {
	id := r.u32()
	fut, ok := k.pending[id]
	if !ok {
		return
	}
	delete(k.pending, id)
	delete(k.pendingDst, id)
	fut.resolve(statusErr(r.u8(), what), nil)
}

// invalidateOutMapping clears the NIPT segment of one outgoing mapping
// and write-protects its source page.
func (k *Kernel) invalidateOutMapping(m *OutMapping) {
	if m.Invalidated {
		return
	}
	m.Invalidated = true
	frame, ok := m.Proc.AS.FrameOf(m.VPN)
	if ok {
		k.Obs.Inc(obs.CtrKernelUnmaps)
		k.Tracer.Record(int(k.id), trace.MapTorn, uint64(frame), 0)
		e := k.nic.Table().Entry(frame)
		seg := e.Out(m.SegmentOffset)
		*seg = nipt.OutMapping{}
	}
	m.Proc.AS.SetWritable(m.VPN, false)
}

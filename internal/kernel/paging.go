package kernel

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/nipt"
	"repro/internal/obs"
	"repro/internal/phys"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Mapping consistency under paging (§4.4). Pages with only outgoing
// mappings can be replaced freely because the mapping information lives
// in kernel records (the paper: "provided that the outgoing mapping
// information is stored in the page table"). Pages with incoming
// mappings are either pinned, or replaced via the invalidation protocol:
// every remote NIPT entry referring to the page is invalidated (its
// source page marked read-only) and acknowledged before the page moves;
// writers re-establish lazily through page faults.

func (k *Kernel) hasSwap(p *Process, vpn vm.VPN) bool {
	_, ok := k.swap[swapKey{pid: p.PID, vpn: vpn}]
	return ok
}

// EvictPage replaces the physical page backing p's virtual page vpn,
// saving its contents to (simulated) swap. The future resolves when the
// page has actually been freed — immediately for unshared pages, after
// the invalidation round for mapped-in pages under InvalidateProtocol.
func (k *Kernel) EvictPage(p *Process, vpn vm.VPN) *Future {
	fut := &Future{}
	pte, ok := p.AS.Lookup(vpn)
	if !ok || !pte.Present || pte.Command {
		fut.resolve(fmt.Errorf("kernel: evict: page %#x not resident", uint32(vpn)), nil)
		return fut
	}
	frame := pte.Frame
	importers := k.imports[frame]
	if len(importers) == 0 {
		k.finishEvict(p, vpn, frame)
		fut.resolve(nil, nil)
		return fut
	}
	if k.cfg.Policy == PinPages {
		k.stats.EvictionsRefused++
		fut.resolve(fmt.Errorf("kernel: evict: page %#x is pinned (mapped in by %d node(s))",
			uint32(vpn), len(importers)), nil)
		return fut
	}
	// Invalidation protocol: shoot down every importer, collect acks,
	// then replace.
	remaining := len(importers)
	for node := range importers {
		req := k.sendInvalidateReq(node, frame)
		req.OnDone(func(r *Future) {
			// An importer declared dead mid-shootdown acknowledges
			// implicitly: its NIPT died with it, so the frame is just as
			// safe to reuse as after an explicit ack.
			if err := r.Err(); err != nil && !errors.Is(err, fault.ErrPeerDown) {
				fut.resolve(err, nil)
				return
			}
			remaining--
			if remaining == 0 {
				delete(k.imports, frame)
				k.nic.Table().Entry(frame).MappedIn = false
				k.finishEvict(p, vpn, frame)
				fut.resolve(nil, nil)
			}
		})
	}
	return fut
}

// finishEvict performs the actual replacement once the frame is safe to
// take: write back cache residue, save contents, clear the NIPT entry,
// mark the PTE non-present, and free the frame.
func (k *Kernel) finishEvict(p *Process, vpn vm.VPN, frame phys.PageNum) {
	if k.box != nil {
		k.box.Cache.FlushPage(frame)
	}
	k.swap[swapKey{pid: p.PID, vpn: vpn}] = k.mem.Read(frame.Addr(0), phys.PageSize)
	*k.nic.Table().Entry(frame) = nipt.Entry{}
	pte, _ := p.AS.Lookup(vpn)
	pte.Present = false
	p.AS.Map(vpn, pte)
	k.freeFrame(frame)
	k.stats.Evictions++
	k.Obs.Inc(obs.CtrKernelEvictions)
	k.Tracer.Record(int(k.id), trace.PageEvicted, uint64(frame), 0)
}

// pageIn restores an evicted page into a fresh frame and reinstalls the
// outgoing NIPT segments recorded for it.
func (k *Kernel) pageIn(p *Process, vpn vm.VPN) error {
	key := swapKey{pid: p.PID, vpn: vpn}
	content, ok := k.swap[key]
	if !ok {
		return fmt.Errorf("kernel: page-in: no swap record for page %#x", uint32(vpn))
	}
	frame, err := k.allocFrame()
	if err != nil {
		return err
	}
	k.mem.Write(frame.Addr(0), content)
	delete(k.swap, key)
	pte, _ := p.AS.Lookup(vpn)
	pte.Frame = frame
	pte.Present = true
	p.AS.Map(vpn, pte)
	for _, rec := range p.outMaps[vpn] {
		if rec.Invalidated {
			continue
		}
		k.installSegment(frame, pageSeg{segStart: rec.SegStart, segEnd: rec.SegEnd}, rec.Seg)
	}
	k.stats.PageIns++
	k.Obs.Inc(obs.CtrKernelPageIns)
	k.Tracer.Record(int(k.id), trace.PageIn, uint64(frame), 0)
	return nil
}

// PageInForTest restores an evicted page immediately. Tests and
// experiment harnesses drive paging explicitly; normal operation pages
// in through the fault path.
func (k *Kernel) PageInForTest(p *Process, vpn vm.VPN) error { return k.pageIn(p, vpn) }

// HandleFault is the CPU's page-fault entry point. It repairs two kinds
// of fault: not-present pages with swap records (demand page-in), and
// write-protection faults on invalidated outgoing mappings, which it
// repairs by re-running the map-in handshake with the destination kernel
// ("the kernel can try to re-establish the invalid mapping", §4.4).
func (k *Kernel) HandleFault(c *isa.CPU, f *vm.Fault) isa.FaultAction {
	p := k.sched.current
	if p == nil {
		return isa.FaultAbort
	}
	vpn := f.VA.Page()
	switch f.Reason {
	case vm.NotPresent:
		if !k.hasSwap(p, vpn) {
			return isa.FaultAbort
		}
		c.Freeze()
		k.eng.After(k.cfg.PageInTime, func() {
			if err := k.pageIn(p, vpn); err != nil {
				panic(err) // out of memory mid-repair: surface loudly
			}
			c.Thaw()
		})
		return isa.FaultRetry

	case vm.Protection:
		if !f.Write {
			return isa.FaultAbort
		}
		var invalid []*OutMapping
		for _, rec := range p.outMaps[vpn] {
			if rec.Invalidated {
				invalid = append(invalid, rec)
			}
		}
		if len(invalid) == 0 {
			return isa.FaultAbort
		}
		k.stats.ReestablishFaults++
		c.Freeze()
		remaining := len(invalid)
		for _, rec := range invalid {
			rec := rec
			req := k.sendMapInReq(rec.Dst, rec.DstPID, rec.DstVPN, 1)
			req.OnDone(func(r *Future) {
				if err := r.Err(); err != nil {
					if !errors.Is(err, fault.ErrPeerDown) {
						panic(fmt.Sprintf("kernel%d: re-establish failed: %v", k.id, err))
					}
					// Degraded mode: the destination is dead, so the
					// mapping cannot come back. Drop the record and let
					// the page fall through to plain local writability —
					// stores land in local memory and propagate nowhere.
					k.dropExportRecord(rec)
					list := p.outMaps[vpn]
					for i, pr := range list {
						if pr == rec {
							p.outMaps[vpn] = append(list[:i], list[i+1:]...)
							break
						}
					}
					remaining--
					if remaining == 0 {
						p.AS.SetWritable(vpn, true)
						c.Thaw()
					}
					return
				}
				k.dropExportRecord(rec)
				rec.Seg.DstPage = r.Frames()[0]
				rec.Invalidated = false
				k.exports[exportKey{node: rec.Dst, page: rec.Seg.DstPage}] =
					append(k.exports[exportKey{node: rec.Dst, page: rec.Seg.DstPage}], rec)
				if frame, ok := p.AS.FrameOf(rec.VPN); ok {
					k.installSegment(frame, pageSeg{segStart: rec.SegStart, segEnd: rec.SegEnd}, rec.Seg)
				}
				remaining--
				if remaining == 0 {
					p.AS.SetWritable(vpn, true)
					c.Thaw()
				}
			})
		}
		return isa.FaultRetry
	}
	return isa.FaultAbort
}

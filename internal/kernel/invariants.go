package kernel

import (
	"fmt"

	"repro/internal/nipt"
	"repro/internal/phys"
)

// CheckInvariants audits the kernel's bookkeeping against the hardware
// state it is supposed to mirror. Tests call it after churn; it returns
// the first violation found.
//
// Invariants:
//
//  1. Every live (non-invalidated) export record's NIPT segment is
//     installed on the frame currently backing its source page.
//  2. Every mapped-out NIPT segment is owned by exactly one live export
//     record, or is a boot kernel-ring outbox.
//  3. Every frame marked MappedIn has importer bookkeeping, or is a
//     boot kernel-ring inbox.
//  4. No free-list frame has NIPT state or backs any process page.
func (k *Kernel) CheckInvariants() error {
	table := k.nic.Table()

	// Ring pages are exempt from the record accounting.
	ringOut := make(map[phys.PageNum]bool)
	ringIn := make(map[phys.PageNum]bool)
	for _, p := range k.peers {
		ringOut[p.outFrame] = true
		ringIn[p.inFrame] = true
	}

	// Index live export records by frame+segment-start.
	type segKey struct {
		frame phys.PageNum
		start uint32
	}
	owned := make(map[segKey]*OutMapping)
	for key, recs := range k.exports {
		for _, rec := range recs {
			if rec.Invalidated {
				continue
			}
			frame, ok := rec.Proc.AS.FrameOf(rec.VPN)
			if !ok {
				// Paged out: no hardware state expected.
				continue
			}
			sk := segKey{frame, rec.SegStart}
			if prev, dup := owned[sk]; dup {
				return fmt.Errorf("kernel%d: two live records own frame %d seg %d (%p, %p)",
					k.id, frame, rec.SegStart, prev, rec)
			}
			owned[sk] = rec
			// Invariant 1: the segment really is installed.
			e := table.Entry(frame)
			seg := e.Out(rec.SegmentOffset)
			if seg.Mode != rec.Seg.Mode || seg.DstPage != rec.Seg.DstPage ||
				seg.DstNode != rec.Seg.DstNode {
				return fmt.Errorf("kernel%d: record for frame %d seg %d not installed (have %v->%d, want %v->%d)",
					k.id, frame, rec.SegStart, seg.Mode, seg.DstPage, rec.Seg.Mode, rec.Seg.DstPage)
			}
			if key.node != rec.Dst || key.page != rec.Seg.DstPage {
				return fmt.Errorf("kernel%d: export index key %v disagrees with record (%d,%d)",
					k.id, key, rec.Dst, rec.Seg.DstPage)
			}
		}
	}

	// Invariant 2: walk the whole NIPT.
	for f := phys.PageNum(0); int(f) < table.Pages(); f++ {
		e := table.Entry(f)
		if ringOut[f] {
			continue
		}
		check := func(m *nipt.OutMapping, start uint32) error {
			if m.Mode == nipt.Unmapped {
				return nil
			}
			if _, ok := owned[segKey{f, start}]; !ok {
				return fmt.Errorf("kernel%d: orphan NIPT segment on frame %d at %d (%v -> node %d page %d)",
					k.id, f, start, m.Mode, m.DstNode, m.DstPage)
			}
			return nil
		}
		if err := check(&e.Lo, 0); err != nil {
			return err
		}
		if e.Split != 0 {
			if err := check(&e.Hi, e.Split); err != nil {
				return err
			}
		}
		// Invariant 3.
		if e.MappedIn && !ringIn[f] && len(k.imports[f]) == 0 {
			return fmt.Errorf("kernel%d: frame %d mapped in with no importer bookkeeping", k.id, f)
		}
		if !e.MappedIn && len(k.imports[f]) > 0 {
			return fmt.Errorf("kernel%d: frame %d has importers but is not mapped in", k.id, f)
		}
	}

	// Invariant 4: the free list is really free.
	used := make(map[phys.PageNum]int)
	for pid, proc := range k.procs {
		for _, vpn := range proc.AS.Pages() {
			if frame, ok := proc.AS.FrameOf(vpn); ok {
				used[frame] = pid
			}
		}
	}
	for _, f := range k.free {
		if pid, inUse := used[f]; inUse {
			return fmt.Errorf("kernel%d: free frame %d backs a page of pid %d", k.id, f, pid)
		}
		e := table.Entry(f)
		if e.MappedOut() || e.MappedIn {
			return fmt.Errorf("kernel%d: free frame %d has NIPT state", k.id, f)
		}
	}
	return nil
}

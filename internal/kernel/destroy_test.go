package kernel_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/phys"
)

func TestDestroyProcessReleasesEverything(t *testing.T) {
	cfg := core.ConfigFor(2, 1, nic.GenEISAPrototype)
	cfg.Kernel.Policy = kernel.InvalidateProtocol
	m := core.New(cfg)
	a, b := m.Node(0), m.Node(1)
	victim := a.K.CreateProcess()
	peer := b.K.CreateProcess()

	freeBefore := a.K.FreePageCount()

	// The victim both sends and receives.
	outVA, _ := victim.AllocPages(1)
	inVA, _ := victim.AllocPages(1)
	peerRecv, _ := peer.AllocPages(1)
	peerSend, _ := peer.AllocPages(1)
	m.MustMap(victim, outVA, phys.PageSize, b.ID, peer.PID, peerRecv, nipt.SingleWriteAU)
	m.MustMap(peer, peerSend, phys.PageSize, a.ID, victim.PID, inVA, nipt.SingleWriteAU)
	// Grant it command pages too.
	if err := a.K.GrantCommandPages(victim, outVA, outVA+0x4000_0000, 1); err != nil {
		t.Fatal(err)
	}
	m.RunUntilIdle(20_000_000)

	inFrame, _ := victim.FrameOf(inVA)
	if !a.NIC.Table().Entry(inFrame).MappedIn {
		t.Fatal("setup: victim page not mapped in")
	}

	if err := m.Await(a.K.DestroyProcess(victim)); err != nil {
		t.Fatalf("destroy: %v", err)
	}
	m.RunUntilIdle(20_000_000)

	// All frames returned.
	if got := a.K.FreePageCount(); got != freeBefore {
		t.Fatalf("free pages %d, want %d", got, freeBefore)
	}
	// The process is gone.
	if _, ok := a.K.Process(victim.PID); ok {
		t.Fatal("process still registered")
	}
	// The peer's mapped-in state for the victim's sends was released.
	peerFrame, _ := peer.FrameOf(peerRecv)
	if b.NIC.Table().Entry(peerFrame).MappedIn {
		t.Fatal("peer receive page still mapped in")
	}
	// The peer's outgoing mapping toward the victim was invalidated
	// (its page is read-only now).
	if pte, _ := peer.AS.Lookup(peerSend.Page()); pte.Writable {
		t.Fatal("peer's mapping into the dead process still writable")
	}
	// The victim's old in-frame no longer accepts traffic.
	if a.NIC.Table().Entry(inFrame).MappedIn {
		t.Fatal("victim frame still mapped in after destroy")
	}
	// Kernel bookkeeping is coherent on both nodes.
	if err := a.K.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := b.K.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDestroyIdleProcess(t *testing.T) {
	m := core.New(core.ConfigFor(1, 1, nic.GenXpress))
	k := m.Node(0).K
	p := k.CreateProcess()
	if _, err := p.AllocPages(3); err != nil {
		t.Fatal(err)
	}
	before := k.FreePageCount()
	if err := m.Await(k.DestroyProcess(p)); err != nil {
		t.Fatal(err)
	}
	if k.FreePageCount() != before+3 {
		t.Fatal("frames not reclaimed")
	}
	// Destroying twice fails cleanly.
	if err := m.Await(k.DestroyProcess(p)); err == nil {
		t.Fatal("double destroy succeeded")
	}
}

func TestDestroySchedulableProcess(t *testing.T) {
	m := core.New(core.ConfigFor(1, 1, nic.GenXpress))
	k := m.Node(0).K
	p := k.CreateProcess()
	if _, err := p.AllocPages(1); err != nil {
		t.Fatal(err)
	}
	k.AddRunnable(p)
	k.BindProcess(p)
	if err := m.Await(k.DestroyProcess(p)); err != nil {
		t.Fatal(err)
	}
	if k.Current() == p {
		t.Fatal("dead process still current")
	}
	if k.RunnableCount() != 0 {
		t.Fatal("dead process still runnable")
	}
}

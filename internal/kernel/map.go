package kernel

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/nipt"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/phys"
	"repro/internal/trace"
	"repro/internal/vm"
)

// The map() system call (§2): "a kernel call that performs protection
// checking and stores memory mapping information on the network
// interface". Once established, sends proceed entirely at user level.

// OutMapping is the kernel's record of one outgoing mapping segment: the
// unit the §4.4 invalidation protocol tears down and a write fault
// re-establishes.
type OutMapping struct {
	Proc          *Process
	VPN           vm.VPN
	SegmentOffset uint32 // any offset inside the segment (selects Lo/Hi)
	Seg           nipt.OutMapping
	SegStart      uint32 // local start offset of the segment in its page
	SegEnd        uint32 // local end offset (exclusive)
	Dst           packet.NodeID
	DstPID        int
	DstVPN        vm.VPN // remote virtual page, for re-establishment
	Invalidated   bool
}

// Mapping is the handle returned by Map, used for Unmap.
type Mapping struct {
	Proc         *Process
	SendVA       vm.VAddr
	Bytes        int
	Dst          packet.NodeID
	DstPID       int
	RecvVA       vm.VAddr
	Mode         nipt.Mode
	records      []*OutMapping
	remoteFrames []phys.PageNum
	kernel       *Kernel
	unmapped     bool
}

// pageSeg is one planned NIPT segment for one local page.
type pageSeg struct {
	vpn       vm.VPN
	segStart  uint32 // within the local page
	segEnd    uint32 // exclusive
	remoteIdx int    // index into the remote page range
	dstShift  int32
}

// planSegments computes the per-page NIPT segments realizing a mapping
// of bytes from sendVA onto recvVA, honoring the hardware's constraint
// that a page can be split between at most two mappings at one offset
// (§3.2). It returns an error for shapes the hardware cannot express —
// which is exactly the paper's rule that mapped data structures must
// have granularity exceeding the page size.
func planSegments(sendVA, recvVA vm.VAddr, bytes int) ([]pageSeg, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("kernel: mapping must cover at least one byte")
	}
	delta := int64(recvVA) - int64(sendVA)
	firstRemote := recvVA.Page()
	var segs []pageSeg
	for addr := int64(sendVA); addr < int64(sendVA)+int64(bytes); {
		pageBase := addr &^ (phys.PageSize - 1)
		pageEnd := pageBase + phys.PageSize
		end := int64(sendVA) + int64(bytes)
		if end > pageEnd {
			end = pageEnd
		}
		s, e := uint32(addr-pageBase), uint32(end-pageBase)
		vpn := vm.VAddr(addr).Page()

		// Split the covered portion where the remote page changes.
		for s < e {
			raddr := addr + delta
			rpage := raddr &^ (phys.PageSize - 1)
			segEndAddr := pageBase + int64(e)
			if crossing := addr + (rpage + phys.PageSize - raddr); crossing < segEndAddr {
				segEndAddr = crossing
			}
			segE := uint32(segEndAddr - pageBase)
			segs = append(segs, pageSeg{
				vpn:       vpn,
				segStart:  s,
				segEnd:    segE,
				remoteIdx: int((rpage - int64(firstRemote)*phys.PageSize) / phys.PageSize),
				dstShift:  int32(raddr - rpage - int64(s)),
			})
			addr = pageBase + int64(segE)
			s = segE
		}
	}
	// Enforce the two-segments-per-page, one-split-point hardware shape.
	byPage := make(map[vm.VPN][]pageSeg)
	for _, sg := range segs {
		byPage[sg.vpn] = append(byPage[sg.vpn], sg)
	}
	for vpn, list := range byPage {
		switch len(list) {
		case 1:
			sg := list[0]
			if sg.segStart != 0 && sg.segEnd != phys.PageSize {
				return nil, fmt.Errorf("kernel: mapping leaves both ends of page %#x unmapped; "+
					"mapped data structures must exceed the page size (§3.2)", uint32(vpn))
			}
		case 2:
			if list[0].segStart != 0 || list[1].segEnd != phys.PageSize ||
				list[0].segEnd != list[1].segStart {
				return nil, fmt.Errorf("kernel: page %#x needs more than one split point", uint32(vpn))
			}
		default:
			return nil, fmt.Errorf("kernel: page %#x needs %d mappings; hardware supports two",
				uint32(vpn), len(list))
		}
	}
	return segs, nil
}

// remotePageCount returns how many remote pages a mapping touches.
func remotePageCount(recvVA vm.VAddr, bytes int) int {
	first := uint32(recvVA) >> phys.PageShift
	last := (uint32(recvVA) + uint32(bytes) - 1) >> phys.PageShift
	return int(last-first) + 1
}

// Map establishes an outgoing mapping: bytes starting at sendVA in p's
// address space will propagate to recvVA in process dstPID on node dst,
// with the given update mode. The returned Mapping resolves through the
// future once the destination kernel has replied.
func (k *Kernel) Map(p *Process, sendVA vm.VAddr, bytes int, dst packet.NodeID, dstPID int,
	recvVA vm.VAddr, mode nipt.Mode) (*Mapping, *Future) {
	// Tag everything this syscall schedules with the node's domain: Map
	// is routinely entered from harness (Go) context, where the engine's
	// inherited domain would be whichever event fired last.
	prev := k.enter()
	defer k.eng.EnterDomain(prev)
	fut := &Future{}
	m := &Mapping{
		Proc: p, SendVA: sendVA, Bytes: bytes, Dst: dst, DstPID: dstPID,
		RecvVA: recvVA, Mode: mode, kernel: k,
	}
	if mode == nipt.Unmapped {
		fut.resolve(fmt.Errorf("kernel: cannot map with mode unmapped"), nil)
		return m, fut
	}
	if dst == k.id {
		fut.resolve(fmt.Errorf("kernel: self-mappings are not supported"), nil)
		return m, fut
	}
	if k.down[dst] != nil {
		fut.resolve(k.peerDownErr(dst), nil)
		return m, fut
	}
	segs, err := planSegments(sendVA, recvVA, bytes)
	if err != nil {
		fut.resolve(err, nil)
		return m, fut
	}
	// Protection checks: the process must own every local page, writable
	// and not a command page, and the NIPT segments must be free.
	for _, sg := range segs {
		e, ok := p.AS.Lookup(sg.vpn)
		if !ok || !e.Present || e.Command {
			fut.resolve(fmt.Errorf("kernel: send buffer page %#x not mapped", uint32(sg.vpn)), nil)
			return m, fut
		}
		if !e.Writable {
			fut.resolve(fmt.Errorf("kernel: send buffer page %#x not writable", uint32(sg.vpn)), nil)
			return m, fut
		}
		if err := k.checkSegmentFree(e.Frame, sg); err != nil {
			fut.resolve(err, nil)
			return m, fut
		}
	}
	// The kernel-side setup cost, then the cross-kernel round trip.
	k.eng.After(k.cfg.MapSetupTime, func() {
		req := k.sendMapInReq(dst, dstPID, recvVA.Page(), remotePageCount(recvVA, bytes))
		req.OnDone(func(r *Future) {
			if r.Err() != nil {
				fut.resolve(r.Err(), nil)
				return
			}
			m.remoteFrames = r.Frames()
			k.installMapping(m, segs)
			k.stats.Maps++
			fut.resolve(nil, r.Frames())
		})
	})
	return m, fut
}

// checkSegmentFree verifies the NIPT can hold the planned segment.
func (k *Kernel) checkSegmentFree(frame phys.PageNum, sg pageSeg) error {
	e := k.nic.Table().Entry(frame)
	// Any overlap with an existing mapped segment is a conflict.
	for off := sg.segStart; off < sg.segEnd; off += 4 {
		if e.Out(off).Mode != nipt.Unmapped {
			return fmt.Errorf("kernel: page %#x offset %d already mapped out", uint32(frame), off)
		}
	}
	return nil
}

// installMapping writes the planned segments into the NIPT and the
// process page table.
func (k *Kernel) installMapping(m *Mapping, segs []pageSeg) {
	coord := k.peerOf(m.Dst).coord
	for _, sg := range segs {
		frame, _ := m.Proc.AS.FrameOf(sg.vpn)
		out := nipt.OutMapping{
			Mode:     m.Mode,
			Dst:      coord,
			DstNode:  m.Dst,
			DstPage:  m.remoteFrames[sg.remoteIdx],
			DstShift: sg.dstShift,
		}
		k.installSegment(frame, sg, out)
		k.Obs.Inc(obs.CtrKernelMaps)
		k.Tracer.Record(int(k.id), trace.MapEstablished, uint64(frame), uint64(out.DstPage))
		rec := &OutMapping{
			Proc:          m.Proc,
			VPN:           sg.vpn,
			SegmentOffset: sg.segStart,
			Seg:           out,
			SegStart:      sg.segStart,
			SegEnd:        sg.segEnd,
			Dst:           m.Dst,
			DstPID:        m.DstPID,
			DstVPN:        m.RecvVA.Page() + vm.VPN(sg.remoteIdx),
		}
		m.records = append(m.records, rec)
		m.Proc.outMaps[sg.vpn] = append(m.Proc.outMaps[sg.vpn], rec)
		key := exportKey{node: m.Dst, page: out.DstPage}
		k.exports[key] = append(k.exports[key], rec)

		// Mapped-out pages are configured for write-through caching
		// (§3.1) — automatic-update pages so the NIC snoops every store,
		// deliberate-update pages so main memory is current when the
		// DMA engine reads it. Flush any write-back residue.
		if pte, ok := m.Proc.AS.Lookup(sg.vpn); ok && !pte.WriteThrough {
			pte.WriteThrough = true
			m.Proc.AS.Map(sg.vpn, pte)
			if k.box != nil {
				k.box.Cache.FlushPage(frame)
			}
		}
	}
}

// installSegment writes one planned segment into a NIPT entry,
// preserving any existing other-half mapping.
func (k *Kernel) installSegment(frame phys.PageNum, sg pageSeg, out nipt.OutMapping) {
	e := k.nic.Table().Entry(frame)
	switch {
	case sg.segStart == 0 && sg.segEnd == phys.PageSize:
		e.Lo, e.Split = out, 0
	case sg.segStart == 0:
		// Keep an existing high half if there is one.
		if e.Split == 0 || e.Split == sg.segEnd {
			e.Split = sg.segEnd
		} else if e.Hi.Mode != nipt.Unmapped || e.Split != sg.segEnd {
			panic("kernel: conflicting split points (checkSegmentFree missed)")
		}
		e.Lo = out
	default:
		if e.Split != 0 && e.Split != sg.segStart {
			panic("kernel: conflicting split points (checkSegmentFree missed)")
		}
		e.Split = sg.segStart
		e.Hi = out
	}
}

// removeSegment clears one installed segment from a NIPT entry.
func (k *Kernel) removeSegment(frame phys.PageNum, rec *OutMapping) {
	e := k.nic.Table().Entry(frame)
	seg := e.Out(rec.SegmentOffset)
	*seg = nipt.OutMapping{}
	if e.Lo.Mode == nipt.Unmapped && (e.Split == 0 || e.Hi.Mode == nipt.Unmapped) {
		e.Split = 0
	}
}

// Unmap tears down a mapping: NIPT segments cleared locally, then the
// destination kernel releases its mapped-in state.
func (k *Kernel) Unmap(m *Mapping) *Future {
	prev := k.enter()
	defer k.eng.EnterDomain(prev)
	fut := &Future{}
	if m.unmapped {
		fut.resolve(fmt.Errorf("kernel: mapping already unmapped"), nil)
		return fut
	}
	m.unmapped = true
	for _, rec := range m.records {
		if frame, ok := rec.Proc.AS.FrameOf(rec.VPN); ok && !rec.Invalidated {
			k.removeSegment(frame, rec)
			k.Obs.Inc(obs.CtrKernelUnmaps)
			k.Tracer.Record(int(k.id), trace.MapTorn, uint64(frame), 0)
		}
		k.dropExportRecord(rec)
		// Remove from the process's per-page list.
		list := rec.Proc.outMaps[rec.VPN]
		for i, r := range list {
			if r == rec {
				rec.Proc.outMaps[rec.VPN] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if rec.Invalidated {
			// Writable again: nothing maps out of this page anymore.
			rec.Proc.AS.SetWritable(rec.VPN, len(rec.Proc.outMaps[rec.VPN]) == 0 || !anyInvalidated(rec.Proc.outMaps[rec.VPN]))
		}
	}
	k.stats.Unmaps++
	req := k.sendUnmapInReq(m.Dst, m.remoteFrames)
	req.OnDone(func(r *Future) {
		err := r.Err()
		if errors.Is(err, fault.ErrPeerDown) {
			// The local teardown above is complete, and the remote
			// mapped-in state died with the peer: unmap succeeded.
			err = nil
		}
		fut.resolve(err, nil)
	})
	return fut
}

func anyInvalidated(recs []*OutMapping) bool {
	for _, r := range recs {
		if r.Invalidated {
			return true
		}
	}
	return false
}

func (k *Kernel) dropExportRecord(rec *OutMapping) {
	key := exportKey{node: rec.Dst, page: rec.Seg.DstPage}
	list := k.exports[key]
	for i, r := range list {
		if r == rec {
			k.exports[key] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(k.exports[key]) == 0 {
		delete(k.exports, key)
	}
}

// GrantCommandPages maps the command pages controlling the physical
// pages behind [dataVA, dataVA+pages·4096) into p's address space at
// cmdVA (§4.2): "the kernel gives a user-level process access to a
// command page by mapping that command page into the process's virtual
// memory space."
func (k *Kernel) GrantCommandPages(p *Process, dataVA, cmdVA vm.VAddr, pages int) error {
	if dataVA.Offset() != 0 || cmdVA.Offset() != 0 {
		return fmt.Errorf("kernel: command page grant must be page aligned")
	}
	prev := k.enter()
	defer k.eng.EnterDomain(prev)
	for i := 0; i < pages; i++ {
		frame, ok := p.AS.FrameOf(dataVA.Page() + vm.VPN(i))
		if !ok {
			return fmt.Errorf("kernel: data page %#x not mapped", uint32(dataVA.Page())+uint32(i))
		}
		p.AS.Map(cmdVA.Page()+vm.VPN(i), vm.PTE{
			Frame: frame, Present: true, Writable: true, Command: true,
		})
	}
	return nil
}

// RevokeCommandPages removes command page mappings (e.g. before the
// kernel reallocates the underlying physical page to another process).
func (k *Kernel) RevokeCommandPages(p *Process, cmdVA vm.VAddr, pages int) {
	for i := 0; i < pages; i++ {
		p.AS.Unmap(cmdVA.Page() + vm.VPN(i))
	}
}

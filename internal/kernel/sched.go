package kernel

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Multiprogramming support. The SHRIMP design point is that user-level
// communication stays protected under *any* scheduling policy: mappings
// are between physical pages, so a context switch "does not require any
// action on the part of the network interface" (Figure 3). The
// round-robin scheduler here exists to demonstrate exactly that.

type scheduler struct {
	runq    []*Process
	current *Process
	slice   sim.Time
	active  bool
}

// Current returns the process whose address space is loaded.
func (k *Kernel) Current() *Process { return k.sched.current }

// BindProcess makes p the current process without scheduling: the
// harness uses it to run a single program directly.
func (k *Kernel) BindProcess(p *Process) {
	k.sched.current = p
	if k.box != nil {
		k.box.CurrentAS = p.AS
	}
}

// SetupRun stages a program for a process: it will start at entry with
// the stack top at stackTop when first scheduled.
func (p *Process) SetupRun(prog *isa.Program, entry string, stackTop vm.VAddr) {
	p.prog = prog
	p.entry = entry
	p.regs[isa.ESP] = uint32(stackTop)
	p.started = false
}

// AddRunnable queues p for the scheduler.
func (k *Kernel) AddRunnable(p *Process) {
	k.sched.runq = append(k.sched.runq, p)
}

// StartScheduler begins round-robin scheduling with the given timeslice.
func (k *Kernel) StartScheduler(slice sim.Time) error {
	if k.cpu == nil {
		return fmt.Errorf("kernel%d: no CPU to schedule", k.id)
	}
	if len(k.sched.runq) == 0 {
		return fmt.Errorf("kernel%d: empty run queue", k.id)
	}
	k.sched.slice = slice
	k.sched.active = true
	prev := k.enter()
	k.Preempt()
	k.eng.After(slice, k.tick)
	k.eng.EnterDomain(prev)
	return nil
}

// StopScheduler halts preemption (the current process keeps running).
func (k *Kernel) StopScheduler() { k.sched.active = false }

func (k *Kernel) tick() {
	if !k.sched.active {
		return
	}
	k.Preempt()
	k.eng.After(k.sched.slice, k.tick)
}

// Preempt performs one context switch to the next runnable process.
// Note what is absent: no NIC state is touched.
func (k *Kernel) Preempt() {
	if len(k.sched.runq) == 0 {
		return
	}
	cur := k.sched.current
	if cur != nil && cur.started {
		// Always preserve the context (a halted process's final
		// registers stay readable); only a live process re-queues.
		cur.state = k.cpu.Save()
		if !k.cpu.Halted() {
			k.sched.runq = append(k.sched.runq, cur)
		}
	}
	next := k.sched.runq[0]
	k.sched.runq = k.sched.runq[1:]
	k.switchTo(next)
	k.stats.ContextSwitches++
}

func (k *Kernel) switchTo(p *Process) {
	k.sched.current = p
	if k.box != nil {
		k.box.CurrentAS = p.AS
	}
	if !p.started {
		p.started = true
		k.cpu.Load(p.prog)
		k.cpu.R = p.regs
		if err := k.cpu.Start(p.entry); err != nil {
			panic(fmt.Sprintf("kernel%d: start pid %d: %v", k.id, p.PID, err))
		}
		return
	}
	k.cpu.Restore(p.state)
	k.cpu.Resume()
}

// RunnableCount returns the number of queued processes (excluding the
// current one).
func (k *Kernel) RunnableCount() int { return len(k.sched.runq) }

// SavedReg returns a register from the process's saved context (valid
// while the process is switched out).
func (p *Process) SavedReg(r isa.Reg) uint32 { return p.state.R[r] }

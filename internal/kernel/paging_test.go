package kernel_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/phys"
)

func pinConfig() core.Config {
	cfg := core.ConfigFor(2, 1, nic.GenEISAPrototype)
	cfg.Kernel.Policy = kernel.PinPages
	return cfg
}

func invalidateConfig() core.Config {
	cfg := core.ConfigFor(2, 1, nic.GenEISAPrototype)
	cfg.Kernel.Policy = kernel.InvalidateProtocol
	return cfg
}

func TestPinPolicyRefusesEviction(t *testing.T) {
	m := core.New(pinConfig())
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	sendVA, _ := pa.AllocPages(1)
	recvVA, _ := pb.AllocPages(1)
	m.MustMap(pa, sendVA, phys.PageSize, b.ID, pb.PID, recvVA, nipt.SingleWriteAU)

	// The mapped-in page on B is pinned: eviction must be refused.
	if err := m.Await(b.K.EvictPage(pb, recvVA.Page())); err == nil {
		t.Fatal("eviction of a pinned mapped-in page succeeded")
	}
	// An unshared page evicts fine.
	extra, _ := pb.AllocPages(1)
	if err := m.Await(b.K.EvictPage(pb, extra.Page())); err != nil {
		t.Fatalf("eviction of unshared page: %v", err)
	}
	if b.K.Stats().Evictions != 1 || b.K.Stats().EvictionsRefused != 1 {
		t.Fatalf("stats: %+v", b.K.Stats())
	}
}

func TestEvictionOfOutgoingMappedPage(t *testing.T) {
	// Pages with only outgoing mappings can be replaced freely; the
	// mapping information is restored on page-in (§4.4).
	m := core.New(pinConfig())
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	sendVA, _ := pa.AllocPages(1)
	recvVA, _ := pb.AllocPages(1)
	m.MustMap(pa, sendVA, phys.PageSize, b.ID, pb.PID, recvVA, nipt.SingleWriteAU)

	if err := a.UserWrite32(pa, sendVA, 7); err != nil {
		t.Fatal(err)
	}
	m.RunUntilIdle(5_000_000)
	if err := m.Await(a.K.EvictPage(pa, sendVA.Page())); err != nil {
		t.Fatalf("evicting outgoing-mapped page: %v", err)
	}
	// The page is gone; bring it back in and verify both content and
	// mapping survive.
	if err := a.K.PageInForTest(pa, sendVA.Page()); err != nil {
		t.Fatalf("page-in: %v", err)
	}
	if v, _ := a.UserRead32(pa, sendVA); v != 7 {
		t.Fatalf("page content lost across eviction: %d", v)
	}
	if err := a.UserWrite32(pa, sendVA+4, 9); err != nil {
		t.Fatal(err)
	}
	m.RunUntilIdle(5_000_000)
	if v, _ := b.UserRead32(pb, recvVA+4); v != 9 {
		t.Fatalf("mapping not restored after page-in: %d", v)
	}
}

func TestInvalidateProtocolEndToEnd(t *testing.T) {
	// Evict a mapped-in page under the invalidation protocol; the
	// sender's mapping goes read-only, a subsequent ISA store faults,
	// the kernel re-establishes the mapping against the new frame, and
	// the store lands.
	m := core.New(invalidateConfig())
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	sendVA, _ := pa.AllocPages(1)
	recvVA, _ := pb.AllocPages(1)
	stack, _ := pa.AllocPages(1)
	m.MustMap(pa, sendVA, phys.PageSize, b.ID, pb.PID, recvVA, nipt.SingleWriteAU)

	if err := a.UserWrite32(pa, sendVA, 1); err != nil {
		t.Fatal(err)
	}
	m.RunUntilIdle(5_000_000)
	oldFrame, _ := pb.FrameOf(recvVA)

	// Replace the receive page. All importer acks must arrive first.
	if err := m.Await(b.K.EvictPage(pb, recvVA.Page())); err != nil {
		t.Fatalf("evict: %v", err)
	}
	// Claim the freed frame for something else, so the eventual page-in
	// demonstrably lands in a different frame (as real replacement
	// would).
	if _, err := pb.AllocPages(1); err != nil {
		t.Fatal(err)
	}
	if got := a.K.Stats().InvalidatesServed; got != 1 {
		t.Fatalf("sender served %d invalidations", got)
	}
	// Sender's page is now read-only.
	if pte, ok := pa.AS.Lookup(sendVA.Page()); !ok || pte.Writable {
		t.Fatal("sender page still writable after invalidation")
	}
	// The old NIPT entry is gone, so a (hypothetical) stray packet to
	// the old frame would be dropped.
	if b.NIC.Table().Entry(oldFrame).MappedIn {
		t.Fatal("old frame still marked mapped-in")
	}

	// Now the sender stores through the ISA — the write faults, the
	// kernel re-establishes the mapping (paging the destination back
	// in), and the instruction retries.
	prog := isa.MustAssemble("poke", `
poke:
	mov	dword [SBUF], 42
	hlt
`, map[string]int64{"SBUF": int64(sendVA)})
	a.K.BindProcess(pa)
	a.CPU.Load(prog)
	a.CPU.R = [8]uint32{}
	a.CPU.R[isa.ESP] = uint32(stack) + phys.PageSize
	if err := a.CPU.Start("poke"); err != nil {
		t.Fatal(err)
	}
	m.RunUntilIdle(20_000_000)
	if err := a.CPU.Err(); err != nil {
		t.Fatalf("cpu aborted: %v", err)
	}
	if !a.CPU.Halted() {
		t.Fatal("cpu did not halt")
	}
	if a.K.Stats().ReestablishFaults != 1 {
		t.Fatalf("expected 1 re-establish fault, got %d", a.K.Stats().ReestablishFaults)
	}
	// The store landed in the NEW frame of the receiver's page.
	newFrame, ok := pb.FrameOf(recvVA)
	if !ok {
		t.Fatal("receiver page not resident after re-establish")
	}
	if newFrame == oldFrame {
		t.Fatal("page-in reused the same frame; test is vacuous")
	}
	if v, _ := b.UserRead32(pb, recvVA); v != 42 {
		t.Fatalf("store after re-establish = %d, want 42", v)
	}
	// And the sender page is writable again.
	if pte, _ := pa.AS.Lookup(sendVA.Page()); !pte.Writable {
		t.Fatal("sender page still read-only after re-establish")
	}
}

func TestDemandPageInOnFault(t *testing.T) {
	// A not-present fault on an evicted private page triggers demand
	// page-in and instruction retry.
	m := core.New(pinConfig())
	a := m.Node(0)
	pa := a.K.CreateProcess()
	data, _ := pa.AllocPages(1)
	stack, _ := pa.AllocPages(1)

	if err := a.UserWrite32(pa, data, 1234); err != nil {
		t.Fatal(err)
	}
	if err := m.Await(a.K.EvictPage(pa, data.Page())); err != nil {
		t.Fatal(err)
	}
	prog := isa.MustAssemble("reader", `
read:
	mov	eax, [DATA]
	mov	dword [DATA+4], 5
	hlt
`, map[string]int64{"DATA": int64(data)})
	a.K.BindProcess(pa)
	a.CPU.Load(prog)
	a.CPU.R = [8]uint32{}
	a.CPU.R[isa.ESP] = uint32(stack) + phys.PageSize
	if err := a.CPU.Start("read"); err != nil {
		t.Fatal(err)
	}
	m.RunUntilIdle(20_000_000)
	if err := a.CPU.Err(); err != nil {
		t.Fatalf("cpu aborted: %v", err)
	}
	if a.CPU.R[isa.EAX] != 1234 {
		t.Fatalf("eax = %d, want 1234 (content restored)", a.CPU.R[isa.EAX])
	}
	if a.K.Stats().PageIns != 1 {
		t.Fatalf("page-ins = %d", a.K.Stats().PageIns)
	}
	if v, _ := a.UserRead32(pa, data+4); v != 5 {
		t.Fatalf("store after page-in = %d", v)
	}
}

package kernel_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/vm"
)

// TestRandomChurnPreservesInvariants drives hundreds of random
// map/unmap/traffic/evict/page-in operations across a 2x2 machine and
// audits every kernel's bookkeeping against the NIPT hardware state
// after each batch.
func TestRandomChurnPreservesInvariants(t *testing.T) {
	cfg := core.ConfigFor(2, 2, nic.GenEISAPrototype)
	cfg.Kernel.Policy = kernel.InvalidateProtocol
	m := core.New(cfg)
	rng := rand.New(rand.NewSource(20260705))

	type buffer struct {
		node *core.Node
		proc *kernel.Process
		va   vm.VAddr
	}
	type live struct {
		mapping *kernel.Mapping
		src     buffer
		dst     buffer
		seq     uint32
	}

	// A pool of processes, one per node, each with several buffers.
	var bufs []buffer
	for i := 0; i < 4; i++ {
		n := m.Node(i)
		p := n.K.CreateProcess()
		for j := 0; j < 4; j++ {
			va, err := p.AllocPages(1)
			if err != nil {
				t.Fatal(err)
			}
			bufs = append(bufs, buffer{n, p, va})
		}
	}
	// Track which buffers are in use as src or dst of a live mapping.
	inUse := make(map[vm.VAddr]bool)
	var mappings []*live

	checkAll := func(step int) {
		t.Helper()
		for i := 0; i < 4; i++ {
			if err := m.Node(i).K.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}

	modes := []nipt.Mode{nipt.SingleWriteAU, nipt.BlockedWriteAU}
	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // map a fresh pair
			src := bufs[rng.Intn(len(bufs))]
			dst := bufs[rng.Intn(len(bufs))]
			if src.node.ID == dst.node.ID || inUse[src.va] || inUse[dst.va] {
				continue
			}
			mode := modes[rng.Intn(len(modes))]
			mp, fut := src.node.K.Map(src.proc, src.va, phys.PageSize,
				dst.node.ID, dst.proc.PID, dst.va, mode)
			if err := m.Await(fut); err != nil {
				t.Fatalf("step %d map: %v", step, err)
			}
			inUse[src.va], inUse[dst.va] = true, true
			mappings = append(mappings, &live{mapping: mp, src: src, dst: dst})

		case op < 6: // unmap a random live mapping
			if len(mappings) == 0 {
				continue
			}
			i := rng.Intn(len(mappings))
			l := mappings[i]
			if err := m.Await(l.src.node.K.Unmap(l.mapping)); err != nil {
				t.Fatalf("step %d unmap: %v", step, err)
			}
			inUse[l.src.va], inUse[l.dst.va] = false, false
			mappings = append(mappings[:i], mappings[i+1:]...)

		case op < 9: // traffic through a random live mapping
			if len(mappings) == 0 {
				continue
			}
			l := mappings[rng.Intn(len(mappings))]
			l.seq++
			if err := l.src.node.UserWrite32(l.src.proc, l.src.va, l.seq); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			m.RunUntilIdle(20_000_000)
			if v, _ := l.dst.node.UserRead32(l.dst.proc, l.dst.va); v != l.seq {
				t.Fatalf("step %d: delivered %d want %d", step, v, l.seq)
			}

		default: // evict the destination page of a live mapping
			if len(mappings) == 0 {
				continue
			}
			l := mappings[rng.Intn(len(mappings))]
			if err := m.Await(l.dst.node.K.EvictPage(l.dst.proc, l.dst.va.Page())); err != nil {
				t.Fatalf("step %d evict: %v", step, err)
			}
			// The next write faults and re-establishes; drive it via the
			// kernel-page-in path by writing through the ISA-equivalent
			// Go path after restoring residency.
			if err := l.dst.node.K.PageInForTest(l.dst.proc, l.dst.va.Page()); err != nil {
				t.Fatalf("step %d page-in: %v", step, err)
			}
			// The source mapping is invalidated; tear it down (the
			// fault-driven path is covered elsewhere — here we unmap to
			// keep the churn moving).
			if err := m.Await(l.src.node.K.Unmap(l.mapping)); err != nil {
				t.Fatalf("step %d unmap-after-evict: %v", step, err)
			}
			inUse[l.src.va], inUse[l.dst.va] = false, false
			for i, x := range mappings {
				if x == l {
					mappings = append(mappings[:i], mappings[i+1:]...)
					break
				}
			}
		}
		m.RunUntilIdle(50_000_000)
		if step%25 == 0 {
			checkAll(step)
		}
	}
	checkAll(400)

	// Tear everything down; the machine must end clean.
	for _, l := range mappings {
		if err := m.Await(l.src.node.K.Unmap(l.mapping)); err != nil {
			t.Fatalf("final unmap: %v", err)
		}
	}
	m.RunUntilIdle(50_000_000)
	checkAll(401)
	for i := 0; i < 4; i++ {
		s := m.Node(i).NIC.Stats()
		if s.DropNotMappedIn+s.DropWrongDest+s.DropCRC != 0 {
			t.Fatalf("node %d dropped packets during churn: %+v", i, s)
		}
	}
}

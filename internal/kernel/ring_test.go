package kernel_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/vm"
)

// TestRingWrapsUnderManyRPCs drives enough map/unmap round trips that
// every kernel ring wraps several times, exercising wrap records,
// sequence tracking and the credit protocol.
func TestRingWrapsUnderManyRPCs(t *testing.T) {
	m := core.New(core.ConfigFor(2, 1, nic.GenEISAPrototype))
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	sendVA, _ := pa.AllocPages(1)
	recvVA, _ := pb.AllocPages(1)

	for i := 0; i < 300; i++ {
		mp := m.MustMap(pa, sendVA, phys.PageSize, b.ID, pb.PID, recvVA, nipt.SingleWriteAU)
		// Traffic through the fresh mapping each round.
		if err := a.UserWrite32(pa, sendVA, uint32(i+1)); err != nil {
			t.Fatal(err)
		}
		m.RunUntilIdle(5_000_000)
		if v, _ := b.UserRead32(pb, recvVA); v != uint32(i+1) {
			t.Fatalf("round %d: %d", i, v)
		}
		if err := m.Await(a.K.Unmap(mp)); err != nil {
			t.Fatalf("round %d unmap: %v", i, err)
		}
	}
	// 300 maps + 300 unmaps, each two records, far beyond one 4 KB ring.
	sa := a.K.Stats()
	if sa.RingRecordsSent < 600 {
		t.Fatalf("sent only %d ring records", sa.RingRecordsSent)
	}
	if sa.Maps != 300 || sa.Unmaps != 300 {
		t.Fatalf("map/unmap counts %+v", sa)
	}
}

// TestRingsAcrossAllPairs makes every node pair talk, verifying the
// boot wiring of N*(N-1) rings on a 3x3 machine.
func TestRingsAcrossAllPairs(t *testing.T) {
	m := core.New(core.ConfigFor(3, 3, nic.GenEISAPrototype))
	n := len(m.Nodes)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			ps := m.Node(s).K.CreateProcess()
			pd := m.Node(d).K.CreateProcess()
			sv, err := ps.AllocPages(1)
			if err != nil {
				t.Fatal(err)
			}
			dv, err := pd.AllocPages(1)
			if err != nil {
				t.Fatal(err)
			}
			m.MustMap(ps, sv, phys.PageSize, m.Node(d).ID, pd.PID, dv, nipt.SingleWriteAU)
			want := uint32(1000*s + d)
			if err := m.Node(s).UserWrite32(ps, sv, want); err != nil {
				t.Fatal(err)
			}
			m.RunUntilIdle(10_000_000)
			if v, _ := m.Node(d).UserRead32(pd, dv); v != want {
				t.Fatalf("pair %d->%d: %d", s, d, v)
			}
		}
	}
}

// TestConcurrentBidirectionalMaps issues map() calls in both directions
// at once; the kernels serve each other's requests while waiting for
// their own responses (no control-plane deadlock).
func TestConcurrentBidirectionalMaps(t *testing.T) {
	m := core.New(core.ConfigFor(2, 1, nic.GenEISAPrototype))
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	aBuf, _ := pa.AllocPages(1)
	bBuf, _ := pb.AllocPages(1)
	aIn, _ := pa.AllocPages(1)
	bIn, _ := pb.AllocPages(1)

	_, futAB := a.K.Map(pa, aBuf, phys.PageSize, b.ID, pb.PID, bIn, nipt.SingleWriteAU)
	_, futBA := b.K.Map(pb, bBuf, phys.PageSize, a.ID, pa.PID, aIn, nipt.SingleWriteAU)
	m.RunUntilIdle(20_000_000)
	if !futAB.Done() || !futBA.Done() {
		t.Fatal("concurrent maps did not complete")
	}
	if futAB.Err() != nil || futBA.Err() != nil {
		t.Fatalf("errors: %v %v", futAB.Err(), futBA.Err())
	}
	// Both directions carry data.
	if err := a.UserWrite32(pa, aBuf, 11); err != nil {
		t.Fatal(err)
	}
	if err := b.UserWrite32(pb, bBuf, 22); err != nil {
		t.Fatal(err)
	}
	m.RunUntilIdle(10_000_000)
	if v, _ := b.UserRead32(pb, bIn); v != 11 {
		t.Fatalf("a->b: %d", v)
	}
	if v, _ := a.UserRead32(pa, aIn); v != 22 {
		t.Fatalf("b->a: %d", v)
	}
}

// TestSplitPageMappingThroughKernel maps with different page offsets on
// the two sides, forcing §3.2 split NIPT entries, and verifies bytes
// land at the exact linear addresses.
func TestSplitPageMappingThroughKernel(t *testing.T) {
	m := core.New(core.ConfigFor(2, 1, nic.GenEISAPrototype))
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	sendVA, _ := pa.AllocPages(1) // page aligned
	recvVA, _ := pb.AllocPages(2) // target starts at offset 512

	target := recvVA + 512
	m.MustMap(pa, sendVA, phys.PageSize, b.ID, pb.PID, target, nipt.SingleWriteAU)

	// Probe both halves of the local page.
	for _, off := range []vm.VAddr{0, 1024, phys.PageSize - 512, phys.PageSize - 4} {
		want := uint32(0xc0de0000) | uint32(off)
		if err := a.UserWrite32(pa, sendVA+off, want); err != nil {
			t.Fatal(err)
		}
		m.RunUntilIdle(10_000_000)
		if v, _ := b.UserRead32(pb, target+off); v != want {
			t.Fatalf("offset %d: got %#x want %#x", off, v, want)
		}
	}
}

// TestCommandPageGrantAndRevoke covers §4.2's grant/revoke lifecycle.
func TestCommandPageGrantAndRevoke(t *testing.T) {
	m := core.New(core.ConfigFor(2, 1, nic.GenEISAPrototype))
	a, b := m.Node(0), m.Node(1)
	pa := a.K.CreateProcess()
	pb := b.K.CreateProcess()
	sendVA, _ := pa.AllocPages(1)
	recvVA, _ := pb.AllocPages(1)
	m.MustMap(pa, sendVA, phys.PageSize, b.ID, pb.PID, recvVA, nipt.DeliberateUpdate)

	const cmdDelta = 0x4000_0000
	if err := a.K.GrantCommandPages(pa, sendVA, sendVA+cmdDelta, 1); err != nil {
		t.Fatal(err)
	}
	// The command page is usable...
	tr, f := pa.AS.Translate(sendVA+cmdDelta, false)
	if f != nil || !tr.Command {
		t.Fatalf("command translation: %+v %v", tr, f)
	}
	// ...until revoked.
	a.K.RevokeCommandPages(pa, sendVA+cmdDelta, 1)
	if _, f := pa.AS.Translate(sendVA+cmdDelta, false); f == nil {
		t.Fatal("revoked command page still mapped")
	}
	// Misaligned grants are rejected.
	if err := a.K.GrantCommandPages(pa, sendVA+4, sendVA+cmdDelta, 1); err == nil {
		t.Fatal("misaligned grant accepted")
	}
	// Grants for pages the process does not own are rejected.
	if err := a.K.GrantCommandPages(pa, 0x7000_0000, 0x7800_0000, 1); err == nil {
		t.Fatal("grant for foreign page accepted")
	}
}

// TestMapRejectsOverlap: a second mapping over the same local bytes must
// fail (one outgoing mapping per page region).
func TestMapRejectsOverlap(t *testing.T) {
	m := core.New(core.ConfigFor(3, 1, nic.GenEISAPrototype))
	a := m.Node(0)
	pa := a.K.CreateProcess()
	pb := m.Node(1).K.CreateProcess()
	pc := m.Node(2).K.CreateProcess()
	sendVA, _ := pa.AllocPages(1)
	r1, _ := pb.AllocPages(1)
	r2, _ := pc.AllocPages(1)

	m.MustMap(pa, sendVA, phys.PageSize, m.Node(1).ID, pb.PID, r1, nipt.SingleWriteAU)
	_, fut := a.K.Map(pa, sendVA, phys.PageSize, m.Node(2).ID, pc.PID, r2, nipt.SingleWriteAU)
	if err := m.Await(fut); err == nil {
		t.Fatal("overlapping outgoing mapping accepted")
	}
}

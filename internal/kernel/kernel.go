// Package kernel implements the operating system half of the SHRIMP
// design: processes and per-process virtual memory, the map() system
// call that separates protection from data movement (§2), command-page
// grants (§4.2), the paging policies for mapping consistency (§4.4),
// and a multiprogramming scheduler.
//
// Kernels on different nodes communicate only through kernel message
// rings — pages wired up at boot with ordinary SHRIMP automatic-update
// mappings and interrupt-on-arrival, so the OS control plane dogfoods
// the network interface it manages.
package kernel

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Config holds kernel policy and cost parameters.
type Config struct {
	// Policy selects how §4.4 mapping consistency is maintained.
	Policy PagingPolicy
	// PageInTime models the cost of restoring an evicted page (swap is
	// simulated in-memory, so this is the whole charge).
	PageInTime sim.Time
	// MapSetupTime models the local kernel work of one map() call
	// (validation, page-table edits) beyond the message round trip.
	MapSetupTime sim.Time
}

// PagingPolicy is the §4.4 consistency policy for mapped-in pages.
type PagingPolicy uint8

const (
	// PinPages pins every page with incoming mappings; eviction of such
	// a page is refused. "This solution is satisfactory if there are not
	// too many communication mappings."
	PinPages PagingPolicy = iota
	// InvalidateProtocol borrows the TLB-shootdown solution: remote NIPT
	// entries referring to the page are invalidated (their source pages
	// marked read-only) and acknowledged before the page is replaced;
	// writers re-establish lazily via page faults.
	InvalidateProtocol
)

func (p PagingPolicy) String() string {
	if p == PinPages {
		return "pin"
	}
	return "invalidate"
}

// DefaultConfig returns the default kernel parameters.
func DefaultConfig() Config {
	return Config{
		Policy:       PinPages,
		PageInTime:   200 * sim.Microsecond,
		MapSetupTime: 20 * sim.Microsecond,
	}
}

// Stats aggregates kernel activity.
type Stats struct {
	Maps              uint64
	Unmaps            uint64
	MapInRequests     uint64 // served for remote kernels
	Evictions         uint64
	EvictionsRefused  uint64 // pinned pages
	PageIns           uint64
	InvalidatesSent   uint64
	InvalidatesServed uint64
	ReestablishFaults uint64
	RingRecordsSent   uint64
	RingRecordsRcvd   uint64
	ContextSwitches   uint64
	PeerDowns         uint64 // peers this kernel has declared dead
	PeerMapsTorn      uint64 // mapping records quarantined by peer-down teardown
	PingsSent         uint64 // heartbeat probes issued (Survivable mode)
}

// Kernel is one node's operating system.
type Kernel struct {
	eng   *sim.Engine
	dom   sim.Domain // the node's event domain; tags harness-entered syscalls
	sync  func()     // optional: advances eng to the machine clock before harness syscalls
	cfg   Config
	id    packet.NodeID
	coord packet.Coord
	mem   *phys.Memory
	xbus  *bus.Xpress
	nic   *nic.NIC
	cpu   *isa.CPU
	box   *MemBox

	procs   map[int]*Process
	nextPID int
	free    []phys.PageNum
	swap    map[swapKey][]byte

	peers     map[packet.NodeID]*peer
	peerOrder []packet.NodeID                // AddPeer order (ascending at boot): deterministic sweeps
	ringOwner map[phys.PageNum]packet.NodeID // inbox frame -> peer
	pending   map[uint32]*Future
	// pendingDst records each pending RPC's destination so a peer-down
	// declaration can resolve exactly the futures that will never be
	// acknowledged (HandlePeerDown).
	pendingDst map[uint32]packet.NodeID
	nextReq    uint32
	// ringCRC selects the fault-mode record layout (see ring.go); set
	// once at boot, it survives Reset like the rest of the config.
	ringCRC bool
	// survivable mirrors fault.Config.Survivable; down is this kernel's
	// membership view — peers the local failure detector has declared
	// dead (see peerdown.go).
	survivable bool
	down       map[packet.NodeID]*fault.PeerDown

	// imports: which remote nodes map INTO each local frame (so the
	// §4.4 invalidation protocol knows whom to shoot down).
	imports map[phys.PageNum]map[packet.NodeID]int
	// exports: local outgoing mapping records, for invalidation lookup
	// and fault-driven re-establishment.
	exports map[exportKey][]*OutMapping

	// OnUserRecvIRQ, when set, receives §4.2 interrupt-on-arrival events
	// for user pages (message libraries use it to dispatch receive
	// interrupts).
	OnUserRecvIRQ func(page phys.PageNum)
	// OnPeerDown, when set, fires after HandlePeerDown finishes tearing
	// down a dead peer's mappings (core uses it for recorder marks).
	OnPeerDown func(pd *fault.PeerDown)
	// Tracer, when set, records kernel events (nil-safe).
	Tracer *trace.Tracer
	// Obs, when set, is this node's metrics scope for kernel page
	// operations (nil-safe).
	Obs *obs.NodeScope

	sched scheduler
	stats Stats
}

type swapKey struct {
	pid int
	vpn vm.VPN
}

type exportKey struct {
	node packet.NodeID
	page phys.PageNum
}

// New builds a kernel over the node's hardware. cpu may be nil for
// pure-Go harness tests. The kernel claims the NIC's interrupt line and,
// if a CPU is present, its fault handler.
func New(eng *sim.Engine, cfg Config, id packet.NodeID, coord packet.Coord,
	mem *phys.Memory, xbus *bus.Xpress, n *nic.NIC, cpu *isa.CPU, box *MemBox) *Kernel {
	k := &Kernel{
		eng: eng, dom: sim.DomNode(int(id)), cfg: cfg, id: id, coord: coord,
		mem: mem, xbus: xbus, nic: n, cpu: cpu, box: box,
		procs:     make(map[int]*Process),
		nextPID:   1,
		swap:      make(map[swapKey][]byte),
		peers:      make(map[packet.NodeID]*peer),
		ringOwner:  make(map[phys.PageNum]packet.NodeID),
		pending:    make(map[uint32]*Future),
		pendingDst: make(map[uint32]packet.NodeID),
		down:       make(map[packet.NodeID]*fault.PeerDown),
		imports:    make(map[phys.PageNum]map[packet.NodeID]int),
		exports:    make(map[exportKey][]*OutMapping),
	}
	n.OnIRQ = k.handleNICIRQ
	n.OnOutFull = k.handleOutFull
	n.OnOutDrained = k.handleOutDrained
	if cpu != nil {
		cpu.FaultHandler = k.HandleFault
	}
	return k
}

// Reset returns the kernel to its just-constructed state: no processes,
// no peers or rings, no pending RPCs, no mapping records, scheduler
// idle, zeroed statistics. Maps are cleared in place so their buckets
// are reused. The machine constructor's boot steps (AddPeer,
// SetFreePages) must be re-run afterwards, exactly as after New.
func (k *Kernel) Reset() {
	clear(k.procs)
	k.nextPID = 1
	k.free = nil
	clear(k.swap)
	clear(k.peers)
	k.peerOrder = k.peerOrder[:0]
	clear(k.ringOwner)
	clear(k.pending)
	clear(k.pendingDst)
	clear(k.down)
	k.nextReq = 0
	clear(k.imports)
	clear(k.exports)
	k.OnUserRecvIRQ = nil
	k.sched = scheduler{}
	k.stats = Stats{}
	if k.box != nil {
		k.box.CurrentAS = nil
		k.box.InvalidateTLB()
	}
}

// ID returns the node id.
func (k *Kernel) ID() packet.NodeID { return k.id }

// SetClockSync installs a callback run at every harness syscall entry
// (Map, GrantCommandPages, StartScheduler) before the kernel tags its
// domain. A partitioned machine uses it to advance this node's engine
// to the cluster clock: the sequential machine has one clock, so a
// syscall issued between Steps must be timestamped at the globally
// last-fired event, not at this partition's (possibly lagging) one.
func (k *Kernel) SetClockSync(fn func()) { k.sync = fn }

// enter syncs the clock (if configured) and tags the node's domain.
func (k *Kernel) enter() sim.Domain {
	if k.sync != nil {
		k.sync()
	}
	return k.eng.EnterDomain(k.dom)
}

// Coord returns the node's mesh coordinates.
func (k *Kernel) Coord() packet.Coord { return k.coord }

// Stats returns a snapshot of kernel statistics.
func (k *Kernel) Stats() Stats { return k.stats }

// NIC returns the node's network interface.
func (k *Kernel) NIC() *nic.NIC { return k.nic }

// CPU returns the node's processor (may be nil in harness tests).
func (k *Kernel) CPU() *isa.CPU { return k.cpu }

// SetFreePages seeds the physical page allocator; the machine
// constructor calls it after reserving boot pages.
func (k *Kernel) SetFreePages(pages []phys.PageNum) { k.free = pages }

// FreePageCount returns the number of unallocated physical pages.
func (k *Kernel) FreePageCount() int { return len(k.free) }

func (k *Kernel) allocFrame() (phys.PageNum, error) {
	if len(k.free) == 0 {
		return 0, fmt.Errorf("kernel%d: out of physical pages", k.id)
	}
	f := k.free[len(k.free)-1]
	k.free = k.free[:len(k.free)-1]
	k.mem.ZeroPage(f)
	return f, nil
}

func (k *Kernel) freeFrame(f phys.PageNum) { k.free = append(k.free, f) }

// Process is one schedulable address space.
type Process struct {
	PID    int
	AS     *vm.AddressSpace
	kernel *Kernel

	// Staged program and saved context for scheduling.
	regs    [8]uint32
	state   isa.State
	prog    *isa.Program
	entry   string
	started bool
	// outgoing mapping records by local virtual page.
	outMaps map[vm.VPN][]*OutMapping
	nextVA  vm.VAddr
}

// CreateProcess makes a new process with an empty address space.
func (k *Kernel) CreateProcess() *Process {
	p := &Process{
		PID:     k.nextPID,
		AS:      vm.NewAddressSpace(k.mem.CmdBase()),
		kernel:  k,
		outMaps: make(map[vm.VPN][]*OutMapping),
		nextVA:  0x1000_0000,
	}
	k.nextPID++
	k.procs[p.PID] = p
	return p
}

// Process returns the process with the given pid, if it exists.
func (k *Kernel) Process(pid int) (*Process, bool) {
	p, ok := k.procs[pid]
	return p, ok
}

// AllocPages maps n fresh, zeroed, writable write-back pages into the
// process at the next free virtual range and returns the base address.
func (p *Process) AllocPages(n int) (vm.VAddr, error) {
	base := p.nextVA
	for i := 0; i < n; i++ {
		f, err := p.kernel.allocFrame()
		if err != nil {
			return 0, err
		}
		p.AS.Map(base.Page()+vm.VPN(i), vm.PTE{
			Frame: f, Present: true, Writable: true, WriteThrough: false,
		})
	}
	p.nextVA += vm.VAddr(n * phys.PageSize)
	return base, nil
}

// AllocPagesAligned is AllocPages with the base virtual address aligned
// to alignPages pages (a power of two). Routines that toggle between
// buffers by flipping an address bit need aligned bases.
func (p *Process) AllocPagesAligned(n, alignPages int) (vm.VAddr, error) {
	alignBytes := vm.VAddr(alignPages * phys.PageSize)
	if rem := p.nextVA % alignBytes; rem != 0 {
		p.nextVA += alignBytes - rem
	}
	return p.AllocPages(n)
}

// Kernel returns the kernel that owns this process.
func (p *Process) Kernel() *Kernel { return p.kernel }

// FrameOf exposes the physical frame backing a virtual page (testing
// and diagnostics).
func (p *Process) FrameOf(va vm.VAddr) (phys.PageNum, bool) {
	return p.AS.FrameOf(va.Page())
}

// MemBox is the node's MMU+cache port: it implements isa.MemPort by
// translating through the current process's page table and accessing
// memory through the cache. The kernel swaps CurrentAS on a context
// switch; the network interface needs no action (Figure 3).
//
// Translation goes through a small direct-mapped micro-TLB. The TLB is
// purely a host-side accelerator — Translate carries no simulated cost,
// so caching it must never change behavior. Each entry is tagged with
// the owning address space and that table's generation counter
// (vm.AddressSpace.Gen), which advances on every Map, Unmap, and
// SetWritable: a remap or protection change leaves stale entries
// unmatchable by construction, and a context switch misses via the
// address-space tag.
type MemBox struct {
	Cache     *cache.Cache
	CurrentAS *vm.AddressSpace

	tlb [tlbSlots]tlbEntry
}

// tlbSlots is the micro-TLB size (direct-mapped, power of two).
const tlbSlots = 64

type tlbEntry struct {
	as       *vm.AddressSpace
	gen      uint64
	vpn      vm.VPN
	base     phys.PAddr // physical base of the page (command offset folded in)
	wt       bool       // page is write-through (or command)
	writable bool
}

// InvalidateTLB drops every cached translation. Generation tags already
// make mutation-driven invalidation automatic; the kernel calls this on
// Reset so no entry outlives its address space object.
func (b *MemBox) InvalidateTLB() { b.tlb = [tlbSlots]tlbEntry{} }

func (b *MemBox) slot(vpn vm.VPN) *tlbEntry { return &b.tlb[uint32(vpn)&(tlbSlots-1)] }

func (b *MemBox) fill(e *tlbEntry, a vm.VAddr, tr vm.Translation) {
	pte, _ := b.CurrentAS.Lookup(a.Page())
	*e = tlbEntry{
		as:       b.CurrentAS,
		gen:      b.CurrentAS.Gen(),
		vpn:      a.Page(),
		base:     tr.PA - phys.PAddr(a.Offset()),
		wt:       tr.WriteThrough,
		writable: pte.Writable,
	}
}

// Load implements isa.MemPort.
func (b *MemBox) Load(a vm.VAddr, size int) (uint32, sim.Time, *vm.Fault) {
	vpn := a.Page()
	if e := b.slot(vpn); e.as != nil && e.as == b.CurrentAS && e.vpn == vpn && e.gen == b.CurrentAS.Gen() {
		v, t := b.Cache.Load(e.base+phys.PAddr(a.Offset()), size)
		return v, t, nil
	}
	tr, f := b.CurrentAS.Translate(a, false)
	if f != nil {
		return 0, 0, f
	}
	b.fill(b.slot(vpn), a, tr)
	v, t := b.Cache.Load(tr.PA, size)
	return v, t, nil
}

// Store implements isa.MemPort. A TLB hit requires the writable bit:
// entries filled by loads on read-only pages take the slow path so
// protection faults (the §4.4 invalidation protocol depends on them)
// still surface.
func (b *MemBox) Store(a vm.VAddr, v uint32, size int) (sim.Time, *vm.Fault) {
	vpn := a.Page()
	if e := b.slot(vpn); e.as != nil && e.as == b.CurrentAS && e.vpn == vpn && e.writable && e.gen == b.CurrentAS.Gen() {
		return b.Cache.Store(e.base+phys.PAddr(a.Offset()), v, size, e.wt), nil
	}
	tr, f := b.CurrentAS.Translate(a, true)
	if f != nil {
		return 0, f
	}
	b.fill(b.slot(vpn), a, tr)
	return b.Cache.Store(tr.PA, v, size, tr.WriteThrough), nil
}

// SpinProbe implements isa.SpinMemPort by exposing the cache's
// access-purity counters.
func (b *MemBox) SpinProbe() (pure, all uint64) { return b.Cache.SpinProbe() }

// SpinAccount implements isa.SpinMemPort: skipped spin iterations are
// charged to the cache statistics as the load hits they would have been.
func (b *MemBox) SpinAccount(iters, loads uint64) { b.Cache.SpinAccount(iters, loads) }

// CmpxchgLocked implements isa.MemPort (§4.3 command protocol).
func (b *MemBox) CmpxchgLocked(a vm.VAddr, expect, repl uint32) (uint32, bool, sim.Time, *vm.Fault) {
	tr, f := b.CurrentAS.Translate(a, true)
	if f != nil {
		return 0, false, 0, f
	}
	read, swapped, lat := b.Cache.LockedCmpxchg(tr.PA, expect, repl)
	return read, swapped, lat, nil
}

// handleOutFull freezes the CPU while the Outgoing FIFO is above its
// threshold: "the CPU is interrupted and waits until the FIFO drains."
func (k *Kernel) handleOutFull() {
	if k.cpu != nil {
		k.cpu.Freeze()
	}
}

func (k *Kernel) handleOutDrained() {
	if k.cpu != nil {
		k.cpu.Thaw()
	}
}

// busWrite32 issues a CPU-initiated bus write; kernel stores go through
// the bus so the NIC snoops them like any other store.
func (k *Kernel) busWrite32(a phys.PAddr, v uint32) {
	k.xbus.Write32(bus.InitCPU, a, v)
}

package kernel

import (
	"testing"
	"testing/quick"

	"repro/internal/phys"
	"repro/internal/vm"
)

func TestPlanSegmentsAligned(t *testing.T) {
	segs, err := planSegments(0x10000000, 0x20000000, 2*phys.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("%d segments", len(segs))
	}
	for i, sg := range segs {
		if sg.segStart != 0 || sg.segEnd != phys.PageSize {
			t.Fatalf("segment %d not whole-page: [%d,%d)", i, sg.segStart, sg.segEnd)
		}
		if sg.remoteIdx != i || sg.dstShift != 0 {
			t.Fatalf("segment %d remoteIdx=%d shift=%d", i, sg.remoteIdx, sg.dstShift)
		}
	}
}

func TestPlanSegmentsSameOffsetUnaligned(t *testing.T) {
	// A 2-page range starting at offset 1024 on both sides: edge pages
	// are partial but single-segment (one end at a page boundary).
	segs, err := planSegments(0x10000400, 0x20000400, 2*phys.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("%d segments", len(segs))
	}
	if segs[0].segStart != 1024 || segs[0].segEnd != phys.PageSize {
		t.Fatalf("head segment [%d,%d)", segs[0].segStart, segs[0].segEnd)
	}
	if segs[1].segStart != 0 || segs[1].segEnd != phys.PageSize {
		t.Fatal("middle segment not whole page")
	}
	if segs[2].segStart != 0 || segs[2].segEnd != 1024 {
		t.Fatalf("tail segment [%d,%d)", segs[2].segStart, segs[2].segEnd)
	}
	for _, sg := range segs {
		if sg.dstShift != 0 {
			t.Fatal("same-offset mapping should have zero shift")
		}
	}
}

func TestPlanSegmentsDifferentOffsets(t *testing.T) {
	// Local page-aligned, remote at offset 512: every local page spans
	// two remote pages -> split mappings with shifts (§3.2).
	segs, err := planSegments(0x10000000, 0x20000200, phys.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("%d segments", len(segs))
	}
	lo, hi := segs[0], segs[1]
	if lo.segStart != 0 || lo.segEnd != phys.PageSize-512 || lo.dstShift != 512 || lo.remoteIdx != 0 {
		t.Fatalf("lo %+v", lo)
	}
	if hi.segStart != phys.PageSize-512 || hi.segEnd != phys.PageSize || hi.remoteIdx != 1 {
		t.Fatalf("hi %+v", hi)
	}
	// hi covers local [3584,4096) -> remote page 1 offsets [0,512).
	if hi.dstShift != -(phys.PageSize - 512) {
		t.Fatalf("hi shift %d", hi.dstShift)
	}
}

func TestPlanSegmentsRejectsInterior(t *testing.T) {
	// A mapping strictly inside one page leaves both ends unmapped:
	// three regions, not expressible with one split point.
	if _, err := planSegments(0x10000100, 0x20000100, 64); err == nil {
		t.Fatal("interior mapping accepted")
	}
	// Different offsets with partial edge pages need >2 segments.
	if _, err := planSegments(0x10000400, 0x20000200, 2*phys.PageSize); err == nil {
		t.Fatal("impossible shape accepted")
	}
	// Degenerate sizes.
	if _, err := planSegments(0x10000000, 0x20000000, 0); err == nil {
		t.Fatal("zero-byte mapping accepted")
	}
}

func TestPlanSegmentsAddressAlgebra(t *testing.T) {
	// Property: for every accepted plan, each local byte in the range
	// maps to exactly the remote byte the linear relation demands, and
	// segments tile the range without gaps or overlaps.
	f := func(sOff, rOff uint16, pages uint8) bool {
		sendVA := vm.VAddr(0x1000_0000 + uint32(sOff)%phys.PageSize)
		recvVA := vm.VAddr(0x2000_0000 + uint32(rOff)%phys.PageSize)
		bytes := (int(pages)%3 + 1) * phys.PageSize
		segs, err := planSegments(sendVA, recvVA, bytes)
		if err != nil {
			return true // rejected shapes are fine; accepted ones must be exact
		}
		covered := 0
		delta := int64(recvVA) - int64(sendVA)
		for _, sg := range segs {
			covered += int(sg.segEnd - sg.segStart)
			// Check the two ends of the segment.
			for _, off := range []uint32{sg.segStart, sg.segEnd - 1} {
				local := int64(sg.vpn)*phys.PageSize + int64(off)
				wantRemote := local + delta
				gotPage := int64(recvVA.Page())*phys.PageSize + int64(sg.remoteIdx)*phys.PageSize
				gotRemote := gotPage + int64(off) + int64(sg.dstShift)
				if gotRemote != wantRemote {
					return false
				}
			}
		}
		return covered == bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRemotePageCount(t *testing.T) {
	if remotePageCount(0x20000000, phys.PageSize) != 1 {
		t.Fatal("aligned single page")
	}
	if remotePageCount(0x20000800, phys.PageSize) != 2 {
		t.Fatal("offset page spans two")
	}
	if remotePageCount(0x20000000, 3*phys.PageSize) != 3 {
		t.Fatal("three pages")
	}
}

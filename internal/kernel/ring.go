package kernel

import (
	"fmt"
	"hash/crc32"

	"repro/internal/fault"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/phys"
)

// Kernel↔kernel message rings.
//
// Each ordered pair of nodes (A→B) shares one ring: a physical page on B
// ("inbox") that a physical page on A ("outbox") maps onto with a
// blocked-write automatic-update mapping and interrupt-on-arrival. A's
// kernel writes records into its outbox through the memory bus — the NIC
// snoops and propagates them like any other mapped store — and B's
// kernel drains its inbox when the arrival interrupt fires.
//
// Record format (all words little-endian, layout per 4 KB ring page):
//
//	+0  seq     written LAST: per-pair in-order delivery means the
//	            whole record is resident once seq matches
//	+4  len     payload byte count, or wrapMark to restart at offset 0
//	+8  crc     (fault mode only) CRC-32C of the payload
//	+8/+12 payload padded to an 8-byte boundary
//
// Producers stop writing when the unacknowledged window would overflow
// the ring; consumers return cumulative-consumed credits on their own
// reverse ring. Credit records bypass the window check (they are tiny
// and self-limiting), so the protocol cannot deadlock.
//
// In fault mode (SetRingCRC) every record additionally carries a
// payload checksum as an end-to-end integrity check on top of the
// NIC-level reliable delivery; a mismatch is unrecoverable corruption
// of the control plane and raises a machine check.

const (
	ringHeaderBytes = 8
	wrapMark        = 0xffff_ffff
	// maxRecordBytes bounds one RPC record (header + payload).
	maxRecordBytes = 512
	// creditEvery: send a credit once this many bytes have been consumed
	// since the last one.
	creditEvery = 1024
)

var ringCRCTable = crc32.MakeTable(crc32.Castagnoli)

// SetRingCRC toggles the fault-mode record checksum. The machine
// constructor sets it at boot on every node or none: both ends of a
// ring must agree on the record layout.
func (k *Kernel) SetRingCRC(on bool) { k.ringCRC = on }

// ringHeader is the per-record header size under the current layout.
func (k *Kernel) ringHeader() uint32 {
	if k.ringCRC {
		return ringHeaderBytes + 4
	}
	return ringHeaderBytes
}

type peer struct {
	node  packet.NodeID
	coord packet.Coord

	outFrame phys.PageNum
	wcursor  uint32
	wseq     uint32
	written  uint64
	acked    uint64
	backlog  [][]byte

	inFrame    phys.PageNum
	rcursor    uint32
	rseq       uint32
	consumed   uint64
	lastCredit uint64
}

// AddPeer wires up the ring pair with another node. The machine
// constructor calls it at boot after installing the NIPT entries for
// outFrame (mapped out to the peer's inbox) and inFrame (mapped in,
// kernel-ring, interrupt-on-arrival).
func (k *Kernel) AddPeer(node packet.NodeID, coord packet.Coord, outFrame, inFrame phys.PageNum) {
	if _, dup := k.peers[node]; dup {
		panic(fmt.Sprintf("kernel%d: duplicate peer %d", k.id, node))
	}
	p := &peer{node: node, coord: coord, outFrame: outFrame, inFrame: inFrame, wseq: 1, rseq: 1}
	k.peers[node] = p
	k.peerOrder = append(k.peerOrder, node)
	k.ringOwner[inFrame] = node
}

// Peers returns the node ids this kernel has rings with.
func (k *Kernel) Peers() []packet.NodeID {
	out := make([]packet.NodeID, 0, len(k.peers))
	for id := range k.peers {
		out = append(out, id)
	}
	return out
}

// ringSend queues one record for the peer, respecting the credit window
// unless bypass is set (credit records only).
func (k *Kernel) ringSend(p *peer, payload []byte, bypass bool) {
	if len(payload)+int(k.ringHeader()) > maxRecordBytes {
		panic(fmt.Sprintf("kernel%d: ring record too large (%d bytes)", k.id, len(payload)))
	}
	// Records to a declared-dead peer go nowhere: its inbox stopped
	// existing when it crashed, and writing them would only re-arm the
	// reliable layer we just quarantined. Callers that need an answer
	// fast-fail before reaching here (deadRequest).
	if k.down[p.node] != nil {
		return
	}
	if !bypass && len(p.backlog) > 0 {
		p.backlog = append(p.backlog, payload)
		return
	}
	if !bypass && !k.ringFits(p, payload) {
		p.backlog = append(p.backlog, payload)
		return
	}
	k.ringWrite(p, payload)
}

// recordBytes pads records to 8-byte multiples so the write cursor is
// always 8-aligned — an 8-byte wrap record therefore always fits before
// the end of the ring page. The CRC layout's 12-byte header keeps the
// padded total a multiple of 8 too.
func (k *Kernel) recordBytes(payload []byte) uint32 {
	return (k.ringHeader() + uint32(len(payload)) + 7) &^ 7
}

// ringFits reports whether the unacked window leaves room for the record
// (including a possible wrap marker's wasted tail).
func (k *Kernel) ringFits(p *peer, payload []byte) bool {
	need := uint64(k.recordBytes(payload))
	if p.wcursor+k.recordBytes(payload) > phys.PageSize {
		need += uint64(phys.PageSize - p.wcursor) // wrap waste
	}
	return p.written-p.acked+need <= phys.PageSize-maxRecordBytes
}

// ringWrite emits the record through the memory bus, payload first and
// sequence word last, so the consumer sees only complete records.
func (k *Kernel) ringWrite(p *peer, payload []byte) {
	rec := k.recordBytes(payload)
	if p.wcursor+rec > phys.PageSize {
		// Wrap record: len=wrapMark, then seq.
		base := p.outFrame.Addr(p.wcursor)
		k.busWrite32(base+4, wrapMark)
		k.busWrite32(base, p.wseq)
		p.written += uint64(phys.PageSize - p.wcursor)
		p.wseq++
		p.wcursor = 0
	}
	base := p.outFrame.Addr(p.wcursor)
	hdr := k.ringHeader()
	if k.ringCRC {
		k.busWrite32(base+8, crc32.Checksum(payload, ringCRCTable))
	}
	for off := uint32(0); off < uint32(len(payload)); off += 4 {
		var w uint32
		for i := uint32(0); i < 4 && off+i < uint32(len(payload)); i++ {
			w |= uint32(payload[off+i]) << (8 * i)
		}
		k.busWrite32(base+phys.PAddr(hdr+off), w)
	}
	k.busWrite32(base+4, uint32(len(payload)))
	k.busWrite32(base, p.wseq)
	p.wseq++
	p.wcursor += rec
	p.written += uint64(rec)
	k.stats.RingRecordsSent++
}

// ringAck applies a cumulative credit from the peer and drains any
// backlogged records that now fit.
func (k *Kernel) ringAck(p *peer, cumulative uint64) {
	if cumulative > p.acked {
		p.acked = cumulative
	}
	for len(p.backlog) > 0 && k.ringFits(p, p.backlog[0]) {
		rec := p.backlog[0]
		p.backlog = p.backlog[1:]
		k.ringWrite(p, rec)
	}
}

// handleNICIRQ is the NIC interrupt line.
func (k *Kernel) handleNICIRQ(cause nic.IRQCause, page phys.PageNum) {
	switch cause {
	case nic.IRQKernelRing:
		node, ok := k.ringOwner[page]
		if !ok {
			panic(fmt.Sprintf("kernel%d: ring IRQ for unknown page %d", k.id, page))
		}
		k.drainRing(k.peers[node])
	case nic.IRQRecv:
		if k.OnUserRecvIRQ != nil {
			k.OnUserRecvIRQ(page)
		}
	}
}

func (k *Kernel) drainRing(p *peer) {
	for {
		base := p.inFrame.Addr(p.rcursor)
		seq := k.mem.Read32(base)
		if seq != p.rseq {
			break
		}
		length := k.mem.Read32(base + 4)
		if length != wrapMark && (length == 0 || length+k.ringHeader() > maxRecordBytes) {
			// The control plane cannot proceed past a mangled record:
			// raise a machine check and stop draining.
			k.eng.Fail(&fault.MachineCheck{
				Node: int(k.id), Kind: fault.CheckRingCorrupt, At: k.eng.Now(),
				Detail: fmt.Sprintf("ring from node %d: bad length %d at offset %d",
					p.node, length, p.rcursor),
			})
			return
		}
		if length == wrapMark {
			p.consumed += uint64(phys.PageSize - p.rcursor)
			p.rcursor = 0
			p.rseq++
			continue
		}
		payload := k.mem.Read(base+phys.PAddr(k.ringHeader()), int(length))
		if k.ringCRC {
			if got := crc32.Checksum(payload, ringCRCTable); got != k.mem.Read32(base+8) {
				k.eng.Fail(&fault.MachineCheck{
					Node: int(k.id), Kind: fault.CheckRingCorrupt, At: k.eng.Now(),
					Detail: fmt.Sprintf("ring from node %d: payload CRC mismatch at offset %d (seq %d)",
						p.node, p.rcursor, seq),
				})
				return
			}
		}
		rec := k.recordBytes(payload)
		p.rcursor += rec
		p.consumed += uint64(rec)
		p.rseq++
		k.stats.RingRecordsRcvd++
		k.dispatch(p, payload)
	}
	if p.consumed-p.lastCredit >= creditEvery {
		p.lastCredit = p.consumed
		k.sendCredit(p)
	}
}

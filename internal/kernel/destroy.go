package kernel

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/phys"
)

// DestroyProcess tears a process down completely: every outgoing mapping
// is removed (with the destination kernels releasing their mapped-in
// state), every remote mapping INTO the process's pages is invalidated
// §4.4-style, command-page grants vanish with the address space, all
// frames return to the allocator, and swap records are dropped. The
// future resolves when all remote acknowledgements are in.
func (k *Kernel) DestroyProcess(p *Process) *Future {
	fut := &Future{}
	if _, ok := k.procs[p.PID]; !ok {
		fut.resolve(fmt.Errorf("kernel%d: no process %d", k.id, p.PID), nil)
		return fut
	}

	// Outstanding remote round trips to wait for. The count starts at 1
	// (a seal released after every request is issued) so a request that
	// resolves synchronously — its destination already declared dead —
	// cannot drain the count to zero and reap mid-loop.
	outstanding := 1
	var firstErr error
	done := func(err error) {
		// A peer declared dead mid-teardown implicitly acknowledges: its
		// mapped-in state died with it (HandlePeerDown on the survivors,
		// oblivion on the crashed node), so the future must still resolve.
		if err != nil && !errors.Is(err, fault.ErrPeerDown) && firstErr == nil {
			firstErr = err
		}
		outstanding--
		if outstanding == 0 {
			k.reapProcess(p)
			fut.resolve(firstErr, nil)
		}
	}

	// 1. Tear down outgoing mappings: gather live records per
	//    destination node and release the remote mapped-in state.
	remote := make(map[packet.NodeID][]phys.PageNum)
	for _, recs := range p.outMaps {
		for _, rec := range recs {
			if frame, ok := p.AS.FrameOf(rec.VPN); ok && !rec.Invalidated {
				k.removeSegment(frame, rec)
			}
			k.dropExportRecord(rec)
			if !rec.Invalidated {
				remote[rec.Dst] = append(remote[rec.Dst], rec.Seg.DstPage)
			}
		}
	}
	for vpn := range p.outMaps {
		delete(p.outMaps, vpn)
	}
	for node, frames := range remote {
		outstanding++
		req := k.sendUnmapInReq(node, frames)
		req.OnDone(func(r *Future) { done(r.Err()) })
	}

	// 2. Shoot down remote mappings into this process's frames so no
	//    further traffic lands after the frames are reused.
	for _, vpn := range p.AS.Pages() {
		frame, ok := p.AS.FrameOf(vpn)
		if !ok {
			continue
		}
		importers := k.imports[frame]
		if len(importers) == 0 {
			continue
		}
		for node := range importers {
			outstanding++
			req := k.sendInvalidateReq(node, frame)
			req.OnDone(func(r *Future) { done(r.Err()) })
		}
		// The frame stops accepting regardless of ack timing order; the
		// invalidation acks gate only the frame reuse (reapProcess).
		delete(k.imports, frame)
		k.nic.Table().Entry(frame).MappedIn = false
	}

	// Release the seal; if nothing remote was outstanding (or everything
	// resolved synchronously) this reaps and resolves right here.
	done(nil)
	return fut
}

// reapProcess frees every frame and forgets the process.
func (k *Kernel) reapProcess(p *Process) {
	for _, vpn := range p.AS.Pages() {
		if frame, ok := p.AS.FrameOf(vpn); ok {
			if k.box != nil {
				k.box.Cache.FlushPage(frame)
			}
			k.freeFrame(frame)
		}
		// Command-page PTEs (no frame of their own) die with the
		// address space.
		p.AS.Unmap(vpn)
	}
	for key := range k.swap {
		if key.pid == p.PID {
			delete(k.swap, key)
		}
	}
	if k.sched.current == p {
		k.sched.current = nil
	}
	for i, q := range k.sched.runq {
		if q == p {
			k.sched.runq = append(k.sched.runq[:i], k.sched.runq[i+1:]...)
			break
		}
	}
	delete(k.procs, p.PID)
}

// Package vm implements per-process virtual memory: page tables with the
// attributes the SHRIMP design depends on. Two attributes matter beyond
// the usual present/writable/user bits:
//
//   - WriteThrough — the kernel caches mapped-out automatic-update pages
//     write-through so the network interface can snoop every store
//     (paper §2, §3);
//   - Command — the PTE maps a network-interface command page rather
//     than DRAM (paper §4.2); accesses translate into the command
//     address space and are decoded by the NIC, not memory.
package vm

import (
	"fmt"
	"sort"

	"repro/internal/phys"
)

// VAddr is a process virtual address.
type VAddr uint32

// VPN is a virtual page number.
type VPN uint32

// Page returns the virtual page containing a.
func (a VAddr) Page() VPN { return VPN(uint32(a) >> phys.PageShift) }

// Offset returns the byte offset of a within its page.
func (a VAddr) Offset() uint32 { return uint32(a) & (phys.PageSize - 1) }

// Addr returns the virtual address of byte off within page p.
func (p VPN) Addr(off uint32) VAddr { return VAddr(uint32(p)<<phys.PageShift | off&(phys.PageSize-1)) }

// PTE is one page table entry.
type PTE struct {
	Frame        phys.PageNum
	Present      bool
	Writable     bool
	WriteThrough bool
	Command      bool
}

// FaultReason classifies a translation fault.
type FaultReason uint8

const (
	// NotPresent: no mapping, or the page was paged out.
	NotPresent FaultReason = iota
	// Protection: a write hit a read-only PTE. This is also how the
	// §4.4 mapping-invalidation protocol surfaces: invalidated outgoing
	// mappings are marked read-only, and the kernel re-establishes them
	// on the resulting fault.
	Protection
)

func (r FaultReason) String() string {
	if r == NotPresent {
		return "not-present"
	}
	return "protection"
}

// Fault describes a failed translation.
type Fault struct {
	VA     VAddr
	Write  bool
	Reason FaultReason
}

func (f *Fault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("vm: %s fault (%s) at %#x", f.Reason, op, uint32(f.VA))
}

// AddressSpace is one process's page table. cmdBase is the physical base
// of the NIC command space on the owning node. gen counts page-table
// mutations; translation caches (the kernel MemBox micro-TLB) key their
// entries on it so a remap, unmap, or protection change invalidates any
// stale cached translation without a shootdown walk.
type AddressSpace struct {
	pt      map[VPN]PTE
	cmdBase phys.PAddr
	gen     uint64
}

// NewAddressSpace returns an empty address space for a node whose
// command space begins at cmdBase.
func NewAddressSpace(cmdBase phys.PAddr) *AddressSpace {
	return &AddressSpace{pt: make(map[VPN]PTE), cmdBase: cmdBase}
}

// Map installs a PTE for virtual page p.
func (s *AddressSpace) Map(p VPN, e PTE) {
	s.pt[p] = e
	s.gen++
}

// Unmap removes the mapping for virtual page p.
func (s *AddressSpace) Unmap(p VPN) {
	delete(s.pt, p)
	s.gen++
}

// Gen returns the page-table generation: it advances on every Map,
// Unmap, and SetWritable, so a cached translation tagged with an older
// generation is stale by construction.
func (s *AddressSpace) Gen() uint64 { return s.gen }

// Lookup returns the PTE for p, if present in the table (the entry may
// still be non-Present, meaning paged out).
func (s *AddressSpace) Lookup(p VPN) (PTE, bool) {
	e, ok := s.pt[p]
	return e, ok
}

// Pages returns the mapped virtual page numbers in ascending order.
func (s *AddressSpace) Pages() []VPN {
	out := make([]VPN, 0, len(s.pt))
	for p := range s.pt {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetWritable updates the writable bit of an existing mapping. It
// reports whether the mapping existed. The §4.4 invalidation protocol
// uses this to mark invalidated source pages read-only.
func (s *AddressSpace) SetWritable(p VPN, w bool) bool {
	e, ok := s.pt[p]
	if !ok {
		return false
	}
	e.Writable = w
	s.pt[p] = e
	s.gen++
	return true
}

// Translation is a successful lookup.
type Translation struct {
	PA           phys.PAddr
	WriteThrough bool
	Command      bool
}

// Translate resolves a virtual address for a read or write access.
func (s *AddressSpace) Translate(a VAddr, write bool) (Translation, *Fault) {
	e, ok := s.pt[a.Page()]
	if !ok || !e.Present {
		return Translation{}, &Fault{VA: a, Write: write, Reason: NotPresent}
	}
	if write && !e.Writable {
		return Translation{}, &Fault{VA: a, Write: true, Reason: Protection}
	}
	base := phys.PAddr(uint32(e.Frame) << phys.PageShift)
	if e.Command {
		base += s.cmdBase
	}
	return Translation{
		PA:           base + phys.PAddr(a.Offset()),
		WriteThrough: e.WriteThrough || e.Command,
		Command:      e.Command,
	}, nil
}

// FrameOf returns the physical frame backing virtual page p, for
// kernel-side bookkeeping. ok is false for absent or command mappings.
func (s *AddressSpace) FrameOf(p VPN) (phys.PageNum, bool) {
	e, found := s.pt[p]
	if !found || !e.Present || e.Command {
		return 0, false
	}
	return e.Frame, true
}

package vm

import (
	"testing"
	"testing/quick"

	"repro/internal/phys"
)

func space() *AddressSpace {
	return NewAddressSpace(phys.PAddr(1024 * phys.PageSize))
}

func TestAddressHelpers(t *testing.T) {
	a := VAddr(7*phys.PageSize + 99)
	if a.Page() != 7 || a.Offset() != 99 {
		t.Fatal("decompose")
	}
	if VPN(7).Addr(99) != a {
		t.Fatal("compose")
	}
}

func TestTranslateBasics(t *testing.T) {
	s := space()
	s.Map(5, PTE{Frame: 12, Present: true, Writable: true})

	tr, f := s.Translate(VPN(5).Addr(100), false)
	if f != nil || tr.PA != phys.PageNum(12).Addr(100) {
		t.Fatalf("translate: %+v %v", tr, f)
	}
	if tr.WriteThrough || tr.Command {
		t.Fatal("attribute bits leaked")
	}
	// Unmapped page.
	if _, f := s.Translate(VPN(6).Addr(0), false); f == nil || f.Reason != NotPresent {
		t.Fatalf("unmapped fault: %v", f)
	}
	// Non-present (paged out) entry.
	s.Map(7, PTE{Frame: 1, Present: false})
	if _, f := s.Translate(VPN(7).Addr(0), false); f == nil || f.Reason != NotPresent {
		t.Fatal("paged-out fault")
	}
}

func TestWriteProtection(t *testing.T) {
	s := space()
	s.Map(1, PTE{Frame: 3, Present: true, Writable: false})
	if _, f := s.Translate(VPN(1).Addr(0), false); f != nil {
		t.Fatal("read of read-only page faulted")
	}
	_, f := s.Translate(VPN(1).Addr(0), true)
	if f == nil || f.Reason != Protection || !f.Write {
		t.Fatalf("write fault: %v", f)
	}
	if f.Error() == "" {
		t.Fatal("fault message empty")
	}
	if !s.SetWritable(1, true) {
		t.Fatal("SetWritable on existing mapping")
	}
	if _, f := s.Translate(VPN(1).Addr(0), true); f != nil {
		t.Fatal("write after SetWritable faulted")
	}
	if s.SetWritable(99, true) {
		t.Fatal("SetWritable on missing mapping reported success")
	}
}

func TestWriteThroughAttribute(t *testing.T) {
	s := space()
	s.Map(2, PTE{Frame: 4, Present: true, Writable: true, WriteThrough: true})
	tr, _ := s.Translate(VPN(2).Addr(8), true)
	if !tr.WriteThrough {
		t.Fatal("write-through attribute lost")
	}
}

func TestCommandPageTranslation(t *testing.T) {
	s := space()
	s.Map(9, PTE{Frame: 33, Present: true, Writable: true, Command: true})
	tr, f := s.Translate(VPN(9).Addr(40), true)
	if f != nil {
		t.Fatal(f)
	}
	want := phys.PAddr(1024*phys.PageSize) + phys.PageNum(33).Addr(40)
	if tr.PA != want {
		t.Fatalf("command PA %#x want %#x", uint32(tr.PA), uint32(want))
	}
	if !tr.Command || !tr.WriteThrough {
		t.Fatal("command pages must be uncached/write-through")
	}
	// FrameOf hides command mappings (they back no DRAM the process owns
	// through this PTE).
	if _, ok := s.FrameOf(9); ok {
		t.Fatal("FrameOf exposed a command mapping")
	}
}

func TestPagesSortedAndUnmap(t *testing.T) {
	s := space()
	for _, p := range []VPN{9, 1, 5} {
		s.Map(p, PTE{Frame: phys.PageNum(p), Present: true})
	}
	got := s.Pages()
	if len(got) != 3 || got[0] != 1 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("pages %v", got)
	}
	s.Unmap(5)
	if _, ok := s.Lookup(5); ok {
		t.Fatal("unmap left the entry")
	}
}

func TestTranslationOffsetsPreserved(t *testing.T) {
	f := func(page uint8, off uint16, frame uint16) bool {
		s := space()
		o := uint32(off) % phys.PageSize
		s.Map(VPN(page), PTE{Frame: phys.PageNum(frame), Present: true, Writable: true})
		tr, fault := s.Translate(VPN(page).Addr(o), true)
		return fault == nil && tr.PA == phys.PageNum(frame).Addr(o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

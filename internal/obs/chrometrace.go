package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/trace"
)

// Chrome trace-event JSON export (the format Perfetto and
// chrome://tracing load). Each simulated node becomes one process
// track; completed causal spans render as nestable async slices — one
// sequence of snoop → out-fifo → mesh stages under the source node and
// a deposit stage under the destination node, tied together by the span
// ID — and trace.Tracer events render as instants on a per-node thread.
//
// Timestamps are microseconds (the format's unit); durations below 1 us
// survive because ts is fractional and displayTimeUnit is ns.

// chromeEvent is one trace-event object. Field names follow the trace
// event format specification.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// usPerPs converts simulated picoseconds to trace-event microseconds.
const usPerPs = 1e-6

// spanStage is one rendered stage of a span's pipeline.
type spanStage struct {
	name       string
	begin, end int64 // ps
	pid        int
}

// WriteChromeTrace renders spans, tracer events, per-node counter
// totals, and the flight recorder's timeline for a machine of the given
// node count as Chrome trace-event JSON. Any slice and rec may be nil or
// empty (the output stays valid JSON — an empty trace renders an empty
// traceEvents array); counters (one NodeSnapshot per node, e.g.
// Snapshot().Nodes) render as "C" counter tracks — one series per
// counter name — sampled at the end of the timeline, and recorder
// samples render as machine-total counter tracks over time on a
// synthetic "machine" process.
func WriteChromeTrace(w io.Writer, nodes int, spans []Span, events []trace.Event, counters []NodeSnapshot, rec *Recorder) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[` + "\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	for n := 0; n < nodes; n++ {
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: n,
			Args: map[string]any{"name": fmt.Sprintf("node %d", n)},
		}); err != nil {
			return err
		}
		if err := emit(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: n, Tid: 0,
			Args: map[string]any{"name": "trace events"},
		}); err != nil {
			return err
		}
	}

	for i := range spans {
		s := &spans[i]
		id := fmt.Sprintf("0x%x", s.ID)
		depositName := "deposit"
		if s.Dropped {
			depositName = "drop"
		}
		stages := [...]spanStage{
			{"snoop", int64(s.Start), int64(s.Enqueued), s.Src},
			{"out-fifo", int64(s.Enqueued), int64(s.Injected), s.Src},
			{"mesh", int64(s.Injected), int64(s.Delivered), s.Src},
			{depositName, int64(s.Delivered), int64(s.Deposited), s.Dst},
		}
		args := map[string]any{
			"span": s.ID, "src": s.Src, "dst": s.Dst,
			"bytes": s.Bytes, "kind": s.Kind.String(),
		}
		for _, st := range stages {
			if st.end < st.begin {
				continue // span truncated before this stage
			}
			if err := emit(chromeEvent{
				Name: st.name, Cat: "xfer", Ph: "b", Pid: st.pid, Tid: 0,
				Ts: float64(st.begin) * usPerPs, ID: id, Args: args,
			}); err != nil {
				return err
			}
			if err := emit(chromeEvent{
				Name: st.name, Cat: "xfer", Ph: "e", Pid: st.pid, Tid: 0,
				Ts: float64(st.end) * usPerPs, ID: id,
			}); err != nil {
				return err
			}
		}
	}

	for _, e := range events {
		if err := emit(chromeEvent{
			Name: e.Kind.String(), Cat: "trace", Ph: "i", Scope: "t",
			Pid: e.Node, Tid: 0, Ts: float64(e.At) * usPerPs,
			Args: map[string]any{"a": e.A, "b": e.B},
		}); err != nil {
			return err
		}
	}

	// Counter totals, stamped at the last timestamp on the timeline so
	// the tracks span the whole trace (json.Marshal sorts map keys, so
	// the series order is deterministic).
	var last int64
	for i := range spans {
		if d := int64(spans[i].Deposited); d > last {
			last = d
		}
	}
	for _, e := range events {
		if at := int64(e.At); at > last {
			last = at
		}
	}
	for _, ns := range counters {
		if len(ns.Counters) == 0 {
			continue
		}
		args := make(map[string]any, len(ns.Counters))
		for name, v := range ns.Counters {
			args[name] = v
		}
		if err := emit(chromeEvent{
			Name: "counters", Cat: "obs", Ph: "C", Pid: ns.Node, Tid: 0,
			Ts: float64(last) * usPerPs, Args: args,
		}); err != nil {
			return err
		}
	}

	// Flight-recorder timeline: machine-total counter/gauge tracks with a
	// real time axis, on a synthetic process after the node tracks. Only
	// series that ever move are emitted.
	if s := rec.Series(); len(s.Times) > 0 {
		recPid := nodes
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: recPid,
			Args: map[string]any{"name": "machine (flight recorder)"},
		}); err != nil {
			return err
		}
		live := make([]Counter, 0, int(numCounters))
		for c := Counter(0); c < numCounters; c++ {
			for _, v := range s.Counter(c) {
				if v != 0 {
					live = append(live, c)
					break
				}
			}
		}
		liveG := make([]Gauge, 0, int(numGauges))
		for g := Gauge(0); g < numGauges; g++ {
			for _, v := range s.Gauge(g) {
				if v != 0 {
					liveG = append(liveG, g)
					break
				}
			}
		}
		for i, t := range s.Times {
			if len(live) > 0 {
				args := make(map[string]any, len(live))
				for _, c := range live {
					args[c.String()] = s.Counter(c)[i]
				}
				if err := emit(chromeEvent{
					Name: "recorder counters", Cat: "obs", Ph: "C", Pid: recPid, Tid: 0,
					Ts: float64(t) * usPerPs, Args: args,
				}); err != nil {
					return err
				}
			}
			if len(liveG) > 0 {
				args := make(map[string]any, len(liveG))
				for _, g := range liveG {
					args[g.String()] = s.Gauge(g)[i]
				}
				if err := emit(chromeEvent{
					Name: "recorder gauges", Cat: "obs", Ph: "C", Pid: recPid, Tid: 0,
					Ts: float64(t) * usPerPs, Args: args,
				}); err != nil {
					return err
				}
			}
		}
		for _, m := range s.Marks {
			if err := emit(chromeEvent{
				Name: m.Label, Cat: "obs", Ph: "i", Scope: "g",
				Pid: recPid, Tid: 0, Ts: float64(m.At) * usPerPs,
			}); err != nil {
				return err
			}
		}
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

package obs

import (
	"repro/internal/sim"
)

// The flight recorder: a zero-allocation in-simulation sampler that
// snapshots the registry into a preallocated ring at a fixed simulated
// cadence, giving every counter and gauge a time series and every
// histogram a windowed rate — the time axis the end-of-run Snapshot
// lacks.
//
// The recorder is a sim.Pacer (see internal/sim/pacer.go): the engine —
// or, on a partitioned machine, the Cluster coordinator — hands it
// control at each deadline D once every event strictly before D has
// fired and nothing at or after D has. Each sample is therefore a pure
// function of the canonical event order, which partitioned runs
// reproduce by construction, so recorder samples are bit-identical
// across Partitions ∈ {1, N}. Partition-aware aggregation is the sample
// loop itself: the per-node scopes (disjointly owned by the partitions)
// are summed into machine totals in ascending node order at the
// rendezvous cut — a deterministic merge with no locks, because pacing
// only runs while node phases are quiescent.
//
// Recording never schedules events, never advances clocks, and never
// allocates on the sample path; arming a recorder changes no simulated
// result (differential tests in internal/core enforce this).

// DefaultRecorderCapacity is the default sample-ring capacity: with the
// default 10 µs cadence it retains the last ~10 ms of simulated time.
const DefaultRecorderCapacity = 1024

// DefaultRecorderInterval is the sampling cadence CLIs default to.
const DefaultRecorderInterval = 10 * sim.Microsecond

// recorderMarkCapacity bounds the retained recorder marks (watchdog
// trips, harness annotations); later marks are counted but dropped.
const recorderMarkCapacity = 64

// RecorderConfig arms the flight recorder. The zero value disables it.
// The struct is comparable so it can ride core.Config.
type RecorderConfig struct {
	// Interval is the sampling cadence in simulated time; <= 0 disables
	// the recorder.
	Interval sim.Time
	// Capacity is the number of samples retained (a ring holding the
	// most recent Capacity samples); <= 0 selects
	// DefaultRecorderCapacity.
	Capacity int
}

// Mark is one annotation pinned to the recorder timeline (a watchdog
// machine check, a harness phase boundary).
type Mark struct {
	At    sim.Time `json:"at"`
	Label string   `json:"label"`
}

// Recorder samples a Registry into preallocated rings. Build one with
// NewRecorder and install it as the machine's pacer; all methods are
// coordinator-side (never called from partition node phases).
type Recorder struct {
	reg      *Registry
	interval sim.Time
	cap      int

	next  sim.Time // next sample deadline
	taken int      // samples taken since reset; ring cursor = taken % cap

	// Flat sample rings: slot i of times pairs with rows
	// [i*numX : (i+1)*numX] of each value ring. Values are cumulative
	// machine totals; consumers difference adjacent samples for rates.
	times    []sim.Time
	counters []uint64 // cap x numCounters
	gauges   []int64  // cap x numGauges
	histN    []uint64 // cap x numHists: histogram Count totals
	histSum  []uint64 // cap x numHists: histogram Sum totals

	marks        []Mark // len <= recorderMarkCapacity, backing preallocated
	marksDropped uint64

	onSample func(at sim.Time)
}

// NewRecorder builds a recorder over reg. All rings are allocated here;
// the sample path never touches the heap again.
func NewRecorder(reg *Registry, cfg RecorderConfig) *Recorder {
	if cfg.Interval <= 0 {
		panic("obs: recorder interval must be positive")
	}
	n := cfg.Capacity
	if n <= 0 {
		n = DefaultRecorderCapacity
	}
	return &Recorder{
		reg:      reg,
		interval: cfg.Interval,
		cap:      n,
		next:     cfg.Interval,
		times:    make([]sim.Time, n),
		counters: make([]uint64, n*int(numCounters)),
		gauges:   make([]int64, n*int(numGauges)),
		histN:    make([]uint64, n*int(numHists)),
		histSum:  make([]uint64, n*int(numHists)),
		marks:    make([]Mark, 0, recorderMarkCapacity),
	}
}

// NextDeadline implements sim.Pacer.
func (r *Recorder) NextDeadline() sim.Time { return r.next }

// Pace implements sim.Pacer: sample the registry as of deadline, then
// advance the cadence. Quiet stretches produce one (flat) sample per
// interval — a time series keeps its time axis even when nothing moves.
func (r *Recorder) Pace(deadline, head sim.Time) {
	r.sample(deadline)
	r.next = deadline + r.interval
	if r.onSample != nil {
		r.onSample(deadline)
	}
}

// sample records one cut: machine totals summed over the per-node scopes
// in ascending node order. Allocation-free.
func (r *Recorder) sample(at sim.Time) {
	slot := r.taken % r.cap
	r.taken++
	r.times[slot] = at
	crow := r.counters[slot*int(numCounters) : (slot+1)*int(numCounters)]
	grow := r.gauges[slot*int(numGauges) : (slot+1)*int(numGauges)]
	hnrow := r.histN[slot*int(numHists) : (slot+1)*int(numHists)]
	hsrow := r.histSum[slot*int(numHists) : (slot+1)*int(numHists)]
	clear(crow)
	clear(grow)
	clear(hnrow)
	clear(hsrow)
	for n := range r.reg.nodes {
		s := &r.reg.nodes[n]
		for c := range crow {
			crow[c] += s.counters[c]
		}
		for g := range grow {
			grow[g] += s.gauges[g]
		}
		for h := range hnrow {
			hnrow[h] += s.hists[h].Count
			hsrow[h] += s.hists[h].Sum
		}
	}
}

// SetOnSample installs a callback invoked after each sample with the
// sample's deadline (nil removes it). It runs on the coordinator while
// the simulation is quiescent, so it may read the registry and recorder,
// but must not mutate simulation state. Live exporters (shrimp-top) use
// it to publish; the zero-alloc sample contract covers the recorder
// itself, not the callback.
func (r *Recorder) SetOnSample(fn func(at sim.Time)) { r.onSample = fn }

// MarkAt pins a labeled annotation to the recorder timeline. Bounded and
// allocation-free (constant labels): past recorderMarkCapacity, marks
// are counted as dropped instead of retained.
func (r *Recorder) MarkAt(at sim.Time, label string) {
	if r == nil {
		return
	}
	if len(r.marks) < cap(r.marks) {
		r.marks = append(r.marks, Mark{At: at, Label: label})
	} else {
		r.marksDropped++
	}
}

// Len reports the number of retained samples (at most Capacity).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.taken < r.cap {
		return r.taken
	}
	return r.cap
}

// Taken reports the total samples taken since reset, including any the
// ring has since overwritten.
func (r *Recorder) Taken() int {
	if r == nil {
		return 0
	}
	return r.taken
}

// Interval returns the sampling cadence.
func (r *Recorder) Interval() sim.Time { return r.interval }

// Reset returns the recorder to its just-built state in O(used): only
// the slots actually written are cleared, and the ring capacity is kept.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	used := r.taken
	if used > r.cap {
		used = r.cap
	}
	clear(r.times[:used])
	clear(r.counters[:used*int(numCounters)])
	clear(r.gauges[:used*int(numGauges)])
	clear(r.histN[:used*int(numHists)])
	clear(r.histSum[:used*int(numHists)])
	r.taken = 0
	r.next = r.interval
	clear(r.marks) // drop label references before truncating
	r.marks = r.marks[:0]
	r.marksDropped = 0
}

// Series is the recorder's retained timeline, unwrapped oldest-to-newest
// for export. Value slices are indexed by the Counter/Gauge/Hist consts
// and hold cumulative machine totals; difference adjacent entries for
// per-window rates.
type Series struct {
	Interval   sim.Time   `json:"interval"`
	Overwrote  int        `json:"overwrote,omitempty"` // older samples lost to ring wraparound
	Times      []sim.Time `json:"times"`
	Counters   [][]uint64 `json:"counters"`
	Gauges     [][]int64  `json:"gauges"`
	HistCounts [][]uint64 `json:"hist_counts"`
	HistSums   [][]uint64 `json:"hist_sums"`
	Marks      []Mark     `json:"marks,omitempty"`
}

// Counter returns c's time series.
func (s *Series) Counter(c Counter) []uint64 { return s.Counters[c] }

// Gauge returns g's time series.
func (s *Series) Gauge(g Gauge) []int64 { return s.Gauges[g] }

// HistCount returns h's cumulative observation-count series.
func (s *Series) HistCount(h Hist) []uint64 { return s.HistCounts[h] }

// HistSum returns h's cumulative sum series.
func (s *Series) HistSum(h Hist) []uint64 { return s.HistSums[h] }

// Series renders the retained samples (cold path; allocates). Nil-safe:
// a nil recorder yields an empty series.
func (r *Recorder) Series() Series {
	s := Series{
		Counters:   make([][]uint64, numCounters),
		Gauges:     make([][]int64, numGauges),
		HistCounts: make([][]uint64, numHists),
		HistSums:   make([][]uint64, numHists),
	}
	n := r.Len()
	if r != nil {
		s.Interval = r.interval
		s.Overwrote = r.taken - n
		s.Marks = append([]Mark(nil), r.marks...)
	}
	s.Times = make([]sim.Time, n)
	for i := range s.Counters {
		s.Counters[i] = make([]uint64, n)
	}
	for i := range s.Gauges {
		s.Gauges[i] = make([]int64, n)
	}
	for i := range s.HistCounts {
		s.HistCounts[i] = make([]uint64, n)
		s.HistSums[i] = make([]uint64, n)
	}
	for i := 0; i < n; i++ {
		slot := i
		if r.taken > r.cap {
			slot = (r.taken + i) % r.cap
		}
		s.Times[i] = r.times[slot]
		for c := 0; c < int(numCounters); c++ {
			s.Counters[c][i] = r.counters[slot*int(numCounters)+c]
		}
		for g := 0; g < int(numGauges); g++ {
			s.Gauges[g][i] = r.gauges[slot*int(numGauges)+g]
		}
		for h := 0; h < int(numHists); h++ {
			s.HistCounts[h][i] = r.histN[slot*int(numHists)+h]
			s.HistSums[h][i] = r.histSum[slot*int(numHists)+h]
		}
	}
	return s
}

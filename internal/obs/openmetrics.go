package obs

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// OpenMetrics/Prometheus text exposition for the registry and the flight
// recorder. Output is deterministic by construction: families iterate in
// const ID order, nodes in ascending order, links in registration order,
// and every value is a pure function of the simulated run — so two runs
// of the same workload diff byte-identical, which ci.sh gates.

// OpenMetricsOptions tunes the exposition writers.
type OpenMetricsOptions struct {
	// OmitEngineArtifacts drops simulator-bookkeeping series (CPU batch
	// break counters, trace-cache and spin fast-forward counters, and
	// their histograms). Those legitimately differ across Partitions
	// settings — rendezvous windows break CPU batches at different
	// points — so diffs across partition counts must exclude them; all
	// simulated results remain. The list matches the partition
	// differential tests' scrub set.
	OmitEngineArtifacts bool
}

// engineArtifacts names the metrics that reflect how the simulator ran
// rather than what the simulated machine did.
var engineArtifacts = map[string]bool{
	"batch-break-event": true, "batch-break-quantum": true,
	"batch-break-fault": true, "batch-break-halt": true,
	"batch-break-freeze": true,
	"trace-hits":         true, "trace-misses": true, "trace-flushes": true,
	"spin-fast-forwards": true, "spin-skipped-ps": true,
	"batch-len": true, "spin-skipped": true,
}

// IsEngineArtifact reports whether the named metric is simulator
// bookkeeping (see OpenMetricsOptions.OmitEngineArtifacts).
func IsEngineArtifact(name string) bool { return engineArtifacts[name] }

// metricName converts a registry name to an OpenMetrics family name:
// shrimp_ prefix, dashes to underscores.
func metricName(name string) string {
	return "shrimp_" + strings.ReplaceAll(name, "-", "_")
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WriteOpenMetrics writes the snapshot in OpenMetrics text exposition
// format, ending with the # EOF terminator. now stamps the simulated
// time the snapshot was cut at (exposed as shrimp_sim_time_seconds).
func WriteOpenMetrics(w io.Writer, s Snapshot, now sim.Time) error {
	return WriteOpenMetricsOpts(w, s, now, OpenMetricsOptions{})
}

// WriteOpenMetricsOpts is WriteOpenMetrics with options.
func WriteOpenMetricsOpts(w io.Writer, s Snapshot, now sim.Time, opt OpenMetricsOptions) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("# TYPE shrimp_sim_time_seconds gauge\n")
	pf("# HELP shrimp_sim_time_seconds simulated time of this scrape\n")
	pf("shrimp_sim_time_seconds %g\n", now.Seconds())

	for c := Counter(0); c < numCounters; c++ {
		name := c.String()
		if opt.OmitEngineArtifacts && engineArtifacts[name] {
			continue
		}
		family := metricName(name)
		wrote := false
		for _, n := range s.Nodes {
			v, ok := n.Counters[name]
			if !ok {
				continue
			}
			if !wrote {
				pf("# TYPE %s counter\n", family)
				wrote = true
			}
			pf("%s_total{node=\"%d\"} %d\n", family, n.Node, v)
		}
	}
	for g := Gauge(0); g < numGauges; g++ {
		name := g.String()
		family := metricName(name)
		wrote := false
		for _, n := range s.Nodes {
			v, ok := n.Gauges[name]
			if !ok {
				continue
			}
			if !wrote {
				pf("# TYPE %s gauge\n", family)
				wrote = true
			}
			pf("%s{node=\"%d\"} %d\n", family, n.Node, v)
		}
	}
	for h := Hist(0); h < numHists; h++ {
		name := h.String()
		if opt.OmitEngineArtifacts && engineArtifacts[name] {
			continue
		}
		family := metricName(name)
		wrote := false
		for _, n := range s.Nodes {
			hs, ok := n.Hists[name]
			if !ok {
				continue
			}
			if !wrote {
				pf("# TYPE %s summary\n", family)
				wrote = true
			}
			pf("%s{node=\"%d\",quantile=\"0.5\"} %d\n", family, n.Node, hs.P50)
			pf("%s{node=\"%d\",quantile=\"0.9\"} %d\n", family, n.Node, hs.P90)
			pf("%s{node=\"%d\",quantile=\"0.99\"} %d\n", family, n.Node, hs.P99)
			pf("%s{node=\"%d\",quantile=\"0.999\"} %d\n", family, n.Node, hs.P999)
			pf("%s_count{node=\"%d\"} %d\n", family, n.Node, hs.Count)
			pf("%s_sum{node=\"%d\"} %.0f\n", family, n.Node, hs.Mean*float64(hs.Count))
		}
	}
	if len(s.Links) > 0 {
		pf("# TYPE shrimp_link_traversals counter\n")
		for _, l := range s.Links {
			pf("shrimp_link_traversals_total{link=\"%s\"} %d\n", escapeLabel(l.Name), l.Traversals)
		}
		pf("# TYPE shrimp_link_flit_hops counter\n")
		for _, l := range s.Links {
			pf("shrimp_link_flit_hops_total{link=\"%s\"} %d\n", escapeLabel(l.Name), l.FlitHops)
		}
		pf("# TYPE shrimp_link_waits counter\n")
		for _, l := range s.Links {
			pf("shrimp_link_waits_total{link=\"%s\"} %d\n", escapeLabel(l.Name), l.Waits)
		}
		pf("# TYPE shrimp_link_max_queue gauge\n")
		for _, l := range s.Links {
			pf("shrimp_link_max_queue{link=\"%s\"} %d\n", escapeLabel(l.Name), l.MaxQueue)
		}
	}
	pf("# TYPE shrimp_spans_finished counter\n")
	pf("shrimp_spans_finished_total %d\n", s.SpansFinished)
	pf("# TYPE shrimp_spans_dropped counter\n")
	pf("shrimp_spans_dropped_total %d\n", s.SpansDropped)
	pf("# TYPE shrimp_spans_untracked counter\n")
	pf("shrimp_spans_untracked_total %d\n", s.SpansTruncated)
	pf("# EOF\n")
	return err
}

// WriteOpenMetrics writes the recorder's retained timeline in exposition
// format with explicit per-sample timestamps (simulated seconds), one
// line per sample per series, machine totals under a shrimp_rec_ prefix.
// All-zero series are elided. Nil-safe: a nil recorder writes only the
// terminator.
func (r *Recorder) WriteOpenMetrics(w io.Writer, opt OpenMetricsOptions) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	if r == nil {
		pf("# EOF\n")
		return err
	}
	s := r.Series()
	ts := make([]string, len(s.Times))
	for i, t := range s.Times {
		ts[i] = fmt.Sprintf("%.9f", t.Seconds())
	}
	pf("# TYPE shrimp_rec_samples counter\n")
	pf("shrimp_rec_samples_total %d\n", r.Taken())
	anyNonZero := func(vs []uint64) bool {
		for _, v := range vs {
			if v != 0 {
				return true
			}
		}
		return false
	}
	for c := Counter(0); c < numCounters; c++ {
		name := c.String()
		if opt.OmitEngineArtifacts && engineArtifacts[name] {
			continue
		}
		vs := s.Counter(c)
		if !anyNonZero(vs) {
			continue
		}
		family := "shrimp_rec_" + strings.ReplaceAll(name, "-", "_")
		pf("# TYPE %s counter\n", family)
		for i, v := range vs {
			pf("%s_total %d %s\n", family, v, ts[i])
		}
	}
	for g := Gauge(0); g < numGauges; g++ {
		vs := s.Gauge(g)
		nz := false
		for _, v := range vs {
			if v != 0 {
				nz = true
				break
			}
		}
		if !nz {
			continue
		}
		family := "shrimp_rec_" + strings.ReplaceAll(g.String(), "-", "_")
		pf("# TYPE %s gauge\n", family)
		for i, v := range vs {
			pf("%s %d %s\n", family, v, ts[i])
		}
	}
	for h := Hist(0); h < numHists; h++ {
		name := h.String()
		if opt.OmitEngineArtifacts && engineArtifacts[name] {
			continue
		}
		counts, sums := s.HistCount(h), s.HistSum(h)
		if !anyNonZero(counts) {
			continue
		}
		family := "shrimp_rec_" + strings.ReplaceAll(name, "-", "_")
		pf("# TYPE %s summary\n", family)
		for i := range counts {
			pf("%s_count %d %s\n", family, counts[i], ts[i])
			pf("%s_sum %d %s\n", family, sums[i], ts[i])
		}
	}
	if len(s.Marks) > 0 {
		pf("# TYPE shrimp_rec_mark gauge\n")
		for _, m := range s.Marks {
			pf("shrimp_rec_mark{label=\"%s\"} 1 %.9f\n", escapeLabel(m.Label), m.At.Seconds())
		}
	}
	pf("# EOF\n")
	return err
}

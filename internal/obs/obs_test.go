package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	var s *NodeScope
	var l *LinkStat
	s.Inc(CtrPacketsOut)
	s.Add(CtrBytesOut, 7)
	s.Set(GaugeOutFIFOBytes, 9)
	s.Observe(HistPayload, 3)
	s.ObserveTime(HistStageMesh, sim.Microsecond)
	l.Take(4)
	l.Wait(1)
	if s.Counter(CtrPacketsOut) != 0 || s.Gauge(GaugeOutFIFOBytes) != 0 || s.Hist(HistPayload).Count != 0 {
		t.Fatal("nil scope recorded something")
	}
	if r.Node(3) != nil || r.Link("x") != nil || r.NodeCount() != 0 {
		t.Fatal("nil registry handed out scopes")
	}
	if ref := r.BeginSpan(0, 1, 4, SpanSingleWrite, 0); ref != 0 {
		t.Fatal("nil registry minted a span")
	}
	r.SpanEnqueued(0, 0)
	r.SpanDeposited(0, 0)
	r.Reset()
	if snap := r.Snapshot(); len(snap.Nodes) != 0 {
		t.Fatal("nil snapshot non-empty")
	}
	var b strings.Builder
	if err := r.WriteTable(&b); err != nil || !strings.Contains(b.String(), "disabled") {
		t.Fatalf("nil WriteTable: %v %q", err, b.String())
	}
}

func TestNamesInSync(t *testing.T) {
	for c := Counter(0); c < numCounters; c++ {
		if c.String() == "" || c.String() == "counter(?)" {
			t.Fatalf("counter %d unnamed", c)
		}
	}
	for g := Gauge(0); g < numGauges; g++ {
		if g.String() == "" || g.String() == "gauge(?)" {
			t.Fatalf("gauge %d unnamed", g)
		}
	}
	for h := Hist(0); h < numHists; h++ {
		if h.String() == "" || h.String() == "hist(?)" {
			t.Fatalf("hist %d unnamed", h)
		}
	}
	for k := SpanKind(0); k < numSpanKinds; k++ {
		if k.String() == "" || k.String() == "span(?)" {
			t.Fatalf("span kind %d unnamed", k)
		}
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count != 1000 || h.Max != 1000 {
		t.Fatalf("count=%d max=%d", h.Count, h.Max)
	}
	if got := h.Mean(); got != 500.5 {
		t.Fatalf("mean %v", got)
	}
	// p50 of 1..1000 is ~500; log2 bucket upper edge containing it is 511.
	if got := h.Quantile(0.5); got != 511 {
		t.Fatalf("p50 %d", got)
	}
	// The top quantile clamps to the observed max, not the bucket edge.
	if got := h.Quantile(1.0); got != 1000 {
		t.Fatalf("p100 %d", got)
	}
	if got := h.Quantile(0.0); got != 1 {
		t.Fatalf("p0 %d", got)
	}
	var zero Histogram
	zero.Observe(0)
	if zero.Buckets[0] != 1 || zero.Quantile(0.9) != 0 {
		t.Fatal("zero-value bucket")
	}
	// Values beyond the last bucket edge clamp instead of indexing out.
	var big Histogram
	big.Observe(1 << 62)
	if big.Buckets[HistBuckets-1] != 1 {
		t.Fatal("overflow bucket")
	}
}

func TestSpanLifecycle(t *testing.T) {
	eng := sim.NewEngine()
	r := New(4, 16)
	ref := r.BeginSpan(1, 3, 64, SpanBlockedWrite, eng.Now())
	if ref == 0 {
		t.Fatal("no ref")
	}
	eng.Advance(100)
	r.SpanEnqueued(ref, eng.Now())
	eng.Advance(200)
	r.SpanInjected(ref, eng.Now())
	eng.Advance(300)
	r.SpanDelivered(ref, eng.Now())
	eng.Advance(400)
	r.SpanDeposited(ref, eng.Now())

	spans := r.CompletedSpans()
	if len(spans) != 1 {
		t.Fatalf("completed %d", len(spans))
	}
	s := spans[0]
	if s.Src != 1 || s.Dst != 3 || s.Bytes != 64 || s.Kind != SpanBlockedWrite || s.Dropped {
		t.Fatalf("span %+v", s)
	}
	if s.Enqueued-s.Start != 100 || s.Injected-s.Enqueued != 200 ||
		s.Delivered-s.Injected != 300 || s.Deposited-s.Delivered != 400 {
		t.Fatalf("stages %+v", s)
	}
	// Stage histograms land on the source node.
	src := r.Node(1)
	for h, want := range map[Hist]uint64{
		HistStageSnoop: 100, HistStageFIFO: 200, HistStageMesh: 300,
		HistStageDeposit: 400, HistStageTotal: 1000,
	} {
		hist := src.Hist(h)
		if hist.Count != 1 || hist.Sum != want {
			t.Fatalf("%v: count=%d sum=%d want sum %d", h, hist.Count, hist.Sum, want)
		}
	}
	if fin, drop, trunc := r.SpanCounts(); fin != 1 || drop != 0 || trunc != 0 {
		t.Fatalf("counts %d %d %d", fin, drop, trunc)
	}
}

func TestSpanDropAndTruncation(t *testing.T) {
	eng := sim.NewEngine()
	r := New(2, 2)
	// Dropped span: total histogram must NOT be fed.
	ref := r.BeginSpan(0, 1, 4, SpanSingleWrite, eng.Now())
	r.SpanEnqueued(ref, eng.Now())
	r.SpanInjected(ref, eng.Now())
	r.SpanDelivered(ref, eng.Now())
	r.SpanDropped(ref, eng.Now())
	if r.Node(0).Hist(HistStageTotal).Count != 0 {
		t.Fatal("dropped span fed total histogram")
	}
	if got := r.CompletedSpans(); len(got) != 1 || !got[0].Dropped {
		t.Fatalf("completed %+v", got)
	}
	// Slab exhaustion: two active spans fill capacity 2; the third is
	// untracked (ref 0) and counted as truncated.
	a := r.BeginSpan(0, 1, 4, SpanSingleWrite, 0)
	b := r.BeginSpan(0, 1, 4, SpanSingleWrite, 0)
	if a == 0 || b == 0 {
		t.Fatal("slab should have room")
	}
	if c := r.BeginSpan(0, 1, 4, SpanSingleWrite, 0); c != 0 {
		t.Fatal("slab overflow not detected")
	}
	if _, _, trunc := r.SpanCounts(); trunc != 1 {
		t.Fatalf("truncated %d", trunc)
	}
	// Freeing one slot makes Begin succeed again.
	r.SpanDeposited(a, eng.Now())
	if c := r.BeginSpan(0, 1, 4, SpanSingleWrite, 0); c == 0 {
		t.Fatal("slot not recycled")
	}
}

func TestCompletedRingWraparound(t *testing.T) {
	eng := sim.NewEngine()
	r := New(1, 4)
	for i := 0; i < 10; i++ {
		ref := r.BeginSpan(0, 0, i, SpanSingleWrite, eng.Now())
		r.SpanDeposited(ref, eng.Now())
	}
	spans := r.CompletedSpans()
	if len(spans) != 4 {
		t.Fatalf("retained %d", len(spans))
	}
	for i, s := range spans {
		if s.Bytes != 6+i {
			t.Fatalf("span %d bytes %d", i, s.Bytes)
		}
	}
}

func TestRegistryReset(t *testing.T) {
	eng := sim.NewEngine()
	r := New(2, 8)
	fresh := r.Snapshot()
	l := r.Link("inj(0,0)")

	r.Node(0).Inc(CtrPacketsOut)
	r.Node(1).Set(GaugeInFIFOBytes, 42)
	r.Node(1).Observe(HistPayload, 64)
	l.Take(3)
	l.Wait(2)
	ref := r.BeginSpan(0, 1, 4, SpanSingleWrite, eng.Now())
	r.SpanDeposited(ref, eng.Now())
	r.BeginSpan(0, 1, 4, SpanSingleWrite, eng.Now()) // left active

	r.Reset()
	got := r.Snapshot()
	if !reflect.DeepEqual(got, fresh) {
		t.Fatalf("reset snapshot differs:\n got %+v\nwant %+v", got, fresh)
	}
	if len(r.CompletedSpans()) != 0 {
		t.Fatal("completed spans survived reset")
	}
	// Span IDs restart, so a reset machine is bit-identical to a fresh one.
	ref = r.BeginSpan(0, 1, 4, SpanSingleWrite, eng.Now())
	r.SpanDeposited(ref, eng.Now())
	if spans := r.CompletedSpans(); spans[0].ID != 1 {
		t.Fatalf("post-reset span ID %d", spans[0].ID)
	}
}

func TestSnapshotOmitsZeros(t *testing.T) {
	r := New(2, 8)
	r.Node(0).Inc(CtrDrops)
	snap := r.Snapshot()
	if len(snap.Nodes) != 2 {
		t.Fatalf("nodes %d", len(snap.Nodes))
	}
	if snap.Nodes[0].Counters["drops"] != 1 || len(snap.Nodes[0].Counters) != 1 {
		t.Fatalf("node0 counters %v", snap.Nodes[0].Counters)
	}
	if snap.Nodes[1].Counters != nil || snap.Nodes[1].Hists != nil {
		t.Fatal("zero node not omitted")
	}
	var b strings.Builder
	if err := snap.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(b.String())) {
		t.Fatal("snapshot JSON invalid")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	eng := sim.NewEngine()
	r := New(2, 8)
	ref := r.BeginSpan(0, 1, 64, SpanDeliberate, eng.Now())
	eng.Advance(150 * sim.Nanosecond)
	r.SpanEnqueued(ref, eng.Now())
	eng.Advance(100 * sim.Nanosecond)
	r.SpanInjected(ref, eng.Now())
	eng.Advance(70 * sim.Nanosecond)
	r.SpanDelivered(ref, eng.Now())
	eng.Advance(500 * sim.Nanosecond)
	r.SpanDeposited(ref, eng.Now())

	r.Node(0).Inc(CtrTraceHits)
	r.Node(0).Add(CtrSpinSkippedPs, 12345)
	events := []trace.Event{{At: 42 * sim.Nanosecond, Node: 1, Kind: trace.IRQ, A: 0, B: 7}}
	var b strings.Builder
	if err := WriteChromeTrace(&b, 2, r.CompletedSpans(), events, r.Snapshot().Nodes, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !json.Valid([]byte(out)) {
		t.Fatalf("invalid JSON:\n%s", out)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ev := range doc.TraceEvents {
		names = append(names, ev["name"].(string))
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"process_name", "snoop", "out-fifo", "mesh", "deposit", "irq", "counters"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q in %s", want, joined)
		}
	}
	// 2 nodes x 2 metadata + 4 stages x b/e + 1 instant + 1 counter track
	// (only node 0 has non-zero counters).
	if len(doc.TraceEvents) != 4+8+1+1 {
		t.Fatalf("event count %d", len(doc.TraceEvents))
	}
	// The counter event carries the trace-cache series by name.
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "counters" {
			args := ev["args"].(map[string]any)
			if args[CtrTraceHits.String()] != 1.0 || args[CtrSpinSkippedPs.String()] != 12345.0 {
				t.Fatalf("counter args wrong: %v", args)
			}
		}
	}
}

// TestInstrumentationZeroAlloc is the CI allocation guard for the hot
// path: counters, gauges, histograms and the complete span lifecycle
// must not allocate. (ci.sh runs it by name.)
func TestInstrumentationZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	r := New(4, 64)
	s := r.Node(0)
	l := r.Link("l")
	allocs := testing.AllocsPerRun(1000, func() {
		s.Inc(CtrSnoopedWrites)
		s.Add(CtrBytesOut, 64)
		s.Set(GaugeOutFIFOBytes, 128)
		s.Observe(HistOutFIFODepth, 128)
		l.Take(8)
		l.Wait(1)
		ref := r.BeginSpan(0, 3, 64, SpanSingleWrite, eng.Now())
		r.SpanEnqueued(ref, eng.Now())
		r.SpanInjected(ref, eng.Now())
		r.SpanDelivered(ref, eng.Now())
		r.SpanDeposited(ref, eng.Now())
	})
	if allocs != 0 {
		t.Fatalf("instrumentation hot path allocates: %.1f allocs/op", allocs)
	}
}

package obs

import "repro/internal/sim"

// Causal packet spans. A span is minted when a transfer is initiated —
// the snooped store for automatic update, the chunk read of an accepted
// LOCK CMPXCHG command for deliberate update — and its reference rides
// the packet (packet.Packet.Span) through the outgoing FIFO, the
// wormhole mesh, and the receiving NIC's deposit pipeline. Completion
// feeds the per-stage histograms on the *source* node's scope and
// retains the span in a bounded ring for timeline export.
//
// Stage boundaries:
//
//	Start     initiating store snooped / DMA chunk read issued /
//	          first write merged into a blocked-write packet
//	Enqueued  packet entered the Outgoing FIFO (snoop+packetize done)
//	Injected  packet's worm entered the routing backplane
//	Delivered worm fully drained into the receiving Incoming FIFO
//	Deposited payload written to destination memory (or the packet
//	          was dropped: Dropped is set and Deposited is the drop
//	          instant)

// SpanKind classifies what initiated a span's transfer.
type SpanKind uint8

const (
	// SpanSingleWrite: one snooped store, single-write automatic update.
	SpanSingleWrite SpanKind = iota
	// SpanBlockedWrite: a merged blocked-write packet; Start is the
	// first merged store.
	SpanBlockedWrite
	// SpanDeliberate: one chunk of a deliberate-update DMA transfer;
	// Start is the chunk's Xpress read.
	SpanDeliberate
	// SpanKernelRing: traffic on the boot-time kernel message rings.
	SpanKernelRing
	// SpanRetransmit: a reliable-delivery retransmission of an earlier
	// data packet (fault mode); Start is the retransmit instant, so the
	// span shows only the re-sent copy's journey.
	SpanRetransmit
	// SpanControl: a reliable-delivery ACK/NACK control packet.
	SpanControl
	numSpanKinds
)

var spanKindNames = [...]string{
	"single-write", "blocked-write", "deliberate", "kernel-ring",
	"retransmit", "control",
}

const _ = uint(int(numSpanKinds) - len(spanKindNames))

var _ = spanKindNames[numSpanKinds-1]

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "span(?)"
}

// Span is one transfer's record. All timestamps are absolute simulated
// time; a zero later-stage timestamp means the span never reached that
// stage (only possible for spans still in flight at export time).
type Span struct {
	ID        uint64   `json:"id"`
	Src       int      `json:"src"`
	Dst       int      `json:"dst"`
	Bytes     int      `json:"bytes"`
	Kind      SpanKind `json:"kind"`
	Dropped   bool     `json:"dropped,omitempty"`
	Start     sim.Time `json:"start"`
	Enqueued  sim.Time `json:"enqueued"`
	Injected  sim.Time `json:"injected"`
	Delivered sim.Time `json:"delivered"`
	Deposited sim.Time `json:"deposited"`
}

// spanTable is the preallocated slab of in-flight spans plus the
// bounded ring of completed ones. References handed to packets are
// slot+1 (0 = no span), so the hot path is two array indexings.
type spanTable struct {
	active    []Span
	freeList  []int32 // slots returned by finished spans
	virgin    int     // next never-used slot; active[virgin:] is all zero
	completed []Span  // ring of the last cap(completed) finished spans
	next      int     // ring write position
	nextID    uint64
	finished  uint64 // completed spans (including dropped)
	dropped   uint64 // completed spans that were packet drops
	truncated uint64 // spans not tracked because the slab was full
}

func (t *spanTable) init(capacity int) {
	t.active = make([]Span, capacity)
	t.freeList = make([]int32, 0, capacity)
	t.completed = make([]Span, 0, capacity)
	t.reset()
}

// reset costs O(slots actually used), not O(capacity): finish() zeroes
// each freed slot, so only the touched prefix needs clearing, and the
// free list empties rather than refilling. Reset state is independent
// of prior traffic, keeping Reset-reused machines bit-identical to
// fresh ones — a sweep pool resets per point and must not pay for the
// whole slab each time.
func (t *spanTable) reset() {
	clear(t.active[:t.virgin])
	t.freeList = t.freeList[:0]
	t.virgin = 0
	t.completed = t.completed[:0]
	t.next = 0
	t.nextID = 0
	t.finished = 0
	t.dropped = 0
	t.truncated = 0
}

// BeginSpan mints a span and returns its reference for the packet (0
// when untracked: nil registry or slab exhausted). start may precede
// the current time (blocked-write packets start at their first merged
// store).
func (r *Registry) BeginSpan(src, dst, bytes int, kind SpanKind, start sim.Time) uint64 {
	if r == nil {
		return 0
	}
	// Freed slots are reused first, then never-used ones — the same
	// ascending order a pre-filled descending free list would hand out.
	t := &r.spans
	var slot int32
	if n := len(t.freeList); n > 0 {
		slot = t.freeList[n-1]
		t.freeList = t.freeList[:n-1]
	} else if t.virgin < len(t.active) {
		slot = int32(t.virgin)
		t.virgin++
	} else {
		t.truncated++
		return 0
	}
	t.nextID++
	t.active[slot] = Span{
		ID: t.nextID, Src: src, Dst: dst, Bytes: bytes, Kind: kind, Start: start,
	}
	return uint64(slot) + 1
}

// span resolves a packet reference to its active slot, or nil.
func (r *Registry) span(ref uint64) *Span {
	if r == nil || ref == 0 {
		return nil
	}
	return &r.spans.active[ref-1]
}

// SpanEnqueued records the packet entering the Outgoing FIFO; nil-safe.
func (r *Registry) SpanEnqueued(ref uint64) {
	if s := r.span(ref); s != nil {
		s.Enqueued = r.eng.Now()
	}
}

// SpanInjected records the packet's worm entering the backplane;
// nil-safe.
func (r *Registry) SpanInjected(ref uint64) {
	if s := r.span(ref); s != nil {
		s.Injected = r.eng.Now()
	}
}

// SpanDelivered records the worm fully drained into the receiving
// Incoming FIFO; nil-safe.
func (r *Registry) SpanDelivered(ref uint64) {
	if s := r.span(ref); s != nil {
		s.Delivered = r.eng.Now()
	}
}

// SpanDeposited completes the span: the payload reached destination
// memory. Stage durations feed the source node's histograms and the
// span is retained for export; nil-safe.
func (r *Registry) SpanDeposited(ref uint64) { r.finish(ref, false) }

// SpanDropped completes the span as a packet drop (wrong destination,
// CRC failure, or not mapped in). Stages reached still feed the
// histograms; the total-stage histogram does not; nil-safe.
func (r *Registry) SpanDropped(ref uint64) { r.finish(ref, true) }

func (r *Registry) finish(ref uint64, dropped bool) {
	s := r.span(ref)
	if s == nil {
		return
	}
	now := r.eng.Now()
	s.Deposited = now
	s.Dropped = dropped
	src := &r.nodes[s.Src]
	src.ObserveTime(HistStageSnoop, s.Enqueued-s.Start)
	src.ObserveTime(HistStageFIFO, s.Injected-s.Enqueued)
	src.ObserveTime(HistStageMesh, s.Delivered-s.Injected)
	src.ObserveTime(HistStageDeposit, now-s.Delivered)
	if !dropped {
		src.ObserveTime(HistStageTotal, now-s.Start)
	}

	t := &r.spans
	t.finished++
	if dropped {
		t.dropped++
	}
	// Retain in the bounded completed ring (last cap spans win).
	if len(t.completed) < cap(t.completed) {
		t.completed = append(t.completed, *s)
	} else {
		t.completed[t.next] = *s
		t.next = (t.next + 1) % cap(t.completed)
	}
	slot := int32(ref - 1)
	t.active[slot] = Span{}
	t.freeList = append(t.freeList, slot)
}

// CompletedSpans returns the retained completed spans in completion
// order; nil-safe.
func (r *Registry) CompletedSpans() []Span {
	if r == nil {
		return nil
	}
	t := &r.spans
	if len(t.completed) < cap(t.completed) {
		return append([]Span(nil), t.completed...)
	}
	out := make([]Span, 0, len(t.completed))
	out = append(out, t.completed[t.next:]...)
	out = append(out, t.completed[:t.next]...)
	return out
}

// SpanCounts reports lifetime span accounting: completed spans
// (including drops), completed spans that were drops, and spans left
// untracked because the slab was full; nil-safe.
func (r *Registry) SpanCounts() (finished, dropped, truncated uint64) {
	if r == nil {
		return 0, 0, 0
	}
	return r.spans.finished, r.spans.dropped, r.spans.truncated
}

package obs

import "repro/internal/sim"

// Causal packet spans. A span is minted when a transfer is initiated —
// the snooped store for automatic update, the chunk read of an accepted
// LOCK CMPXCHG command for deliberate update — and its reference rides
// the packet (packet.Packet.Span) through the outgoing FIFO, the
// wormhole mesh, and the receiving NIC's deposit pipeline. Completion
// feeds the per-stage histograms on the *source* node's scope and
// retains the span in a bounded ring for timeline export.
//
// Stage boundaries:
//
//	Start     initiating store snooped / DMA chunk read issued /
//	          first write merged into a blocked-write packet
//	Enqueued  packet entered the Outgoing FIFO (snoop+packetize done)
//	Injected  packet's worm entered the routing backplane
//	Delivered worm fully drained into the receiving Incoming FIFO
//	Deposited payload written to destination memory (or the packet
//	          was dropped: Dropped is set and Deposited is the drop
//	          instant)
//
// Allocation is sharded per source node: minting and the send-side
// stage stamps happen on the minting node's event stream, so in a
// partitioned machine each partition touches only its own nodes'
// shards. Completion (and the shared completed ring) is a fabric
// action — routed through mesh.Release/DropSpan — and therefore runs
// only while node phases are quiescent. Timestamps are passed in
// explicitly because a partitioned machine has no single engine clock.

// SpanKind classifies what initiated a span's transfer.
type SpanKind uint8

const (
	// SpanSingleWrite: one snooped store, single-write automatic update.
	SpanSingleWrite SpanKind = iota
	// SpanBlockedWrite: a merged blocked-write packet; Start is the
	// first merged store.
	SpanBlockedWrite
	// SpanDeliberate: one chunk of a deliberate-update DMA transfer;
	// Start is the chunk's Xpress read.
	SpanDeliberate
	// SpanKernelRing: traffic on the boot-time kernel message rings.
	SpanKernelRing
	// SpanRetransmit: a reliable-delivery retransmission of an earlier
	// data packet (fault mode); Start is the retransmit instant, so the
	// span shows only the re-sent copy's journey.
	SpanRetransmit
	// SpanControl: a reliable-delivery ACK/NACK control packet.
	SpanControl
	numSpanKinds
)

var spanKindNames = [...]string{
	"single-write", "blocked-write", "deliberate", "kernel-ring",
	"retransmit", "control",
}

const _ = uint(int(numSpanKinds) - len(spanKindNames))

var _ = spanKindNames[numSpanKinds-1]

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "span(?)"
}

// Span is one transfer's record. All timestamps are absolute simulated
// time; a zero later-stage timestamp means the span never reached that
// stage (only possible for spans still in flight at export time).
type Span struct {
	ID        uint64   `json:"id"`
	Src       int      `json:"src"`
	Dst       int      `json:"dst"`
	Bytes     int      `json:"bytes"`
	Kind      SpanKind `json:"kind"`
	Dropped   bool     `json:"dropped,omitempty"`
	Start     sim.Time `json:"start"`
	Enqueued  sim.Time `json:"enqueued"`
	Injected  sim.Time `json:"injected"`
	Delivered sim.Time `json:"delivered"`
	Deposited sim.Time `json:"deposited"`
}

// spanShard is one source node's in-flight span slab. Only that node's
// event stream allocates from it or stamps send-side stages, so shards
// need no locks in a partitioned machine. The slab grows on demand up
// to its capacity (it is not preallocated: a 1,024-node machine would
// otherwise pay capacity × nodes up front).
type spanShard struct {
	active    []Span
	freeList  []int32 // slots returned by finished spans
	nextID    uint64
	truncated uint64 // spans not tracked because the shard was full
	capacity  int
}

// spanTable is the per-node shards plus the bounded ring of completed
// spans. References handed to packets encode (src+1, slot+1), so the
// hot path is two array indexings; 0 = no span.
type spanTable struct {
	shards    []spanShard
	completed []Span // ring of the last cap(completed) finished spans
	next      int    // ring write position
	finished  uint64 // completed spans (including dropped)
	dropped   uint64 // completed spans that were packet drops
}

func (t *spanTable) init(nodes, capacity int) {
	t.shards = make([]spanShard, nodes)
	for i := range t.shards {
		t.shards[i].capacity = capacity
	}
	t.completed = make([]Span, 0, capacity)
	t.reset()
}

// reset costs O(slots actually used): each shard's slab truncates in
// place (capacity retained), so a sweep pool resetting per point never
// pays for untouched capacity. Reset state is independent of prior
// traffic, keeping Reset-reused machines bit-identical to fresh ones.
func (t *spanTable) reset() {
	for i := range t.shards {
		sh := &t.shards[i]
		clear(sh.active)
		sh.active = sh.active[:0]
		sh.freeList = sh.freeList[:0]
		sh.nextID = 0
		sh.truncated = 0
	}
	t.completed = t.completed[:0]
	t.next = 0
	t.finished = 0
	t.dropped = 0
}

// BeginSpan mints a span on src's shard and returns its reference for
// the packet (0 when untracked: nil registry or shard exhausted). start
// may precede the current time (blocked-write packets start at their
// first merged store). Span IDs are (src, per-shard sequence) so they
// are unique and identical at any partition count.
func (r *Registry) BeginSpan(src, dst, bytes int, kind SpanKind, start sim.Time) uint64 {
	if r == nil {
		return 0
	}
	sh := &r.spans.shards[src]
	// Freed slots are reused first, then never-used ones — the same
	// ascending order a pre-filled descending free list would hand out.
	var slot int32
	if n := len(sh.freeList); n > 0 {
		slot = sh.freeList[n-1]
		sh.freeList = sh.freeList[:n-1]
	} else if len(sh.active) < sh.capacity {
		slot = int32(len(sh.active))
		sh.active = append(sh.active, Span{})
	} else {
		sh.truncated++
		return 0
	}
	sh.nextID++
	sh.active[slot] = Span{
		ID: uint64(src)<<40 | sh.nextID, Src: src, Dst: dst, Bytes: bytes,
		Kind: kind, Start: start,
	}
	return uint64(src+1)<<32 | uint64(slot) + 1
}

// span resolves a packet reference to its active slot, or nil.
func (r *Registry) span(ref uint64) *Span {
	if r == nil || ref == 0 {
		return nil
	}
	return &r.spans.shards[int(ref>>32)-1].active[uint32(ref)-1]
}

// SpanEnqueued records the packet entering the Outgoing FIFO at now;
// nil-safe.
func (r *Registry) SpanEnqueued(ref uint64, now sim.Time) {
	if s := r.span(ref); s != nil {
		s.Enqueued = now
	}
}

// SpanInjected records the packet's worm entering the backplane at now;
// nil-safe.
func (r *Registry) SpanInjected(ref uint64, now sim.Time) {
	if s := r.span(ref); s != nil {
		s.Injected = now
	}
}

// SpanDelivered records the worm fully drained into the receiving
// Incoming FIFO at now; nil-safe.
func (r *Registry) SpanDelivered(ref uint64, now sim.Time) {
	if s := r.span(ref); s != nil {
		s.Delivered = now
	}
}

// SpanDeposited completes the span at now: the payload reached
// destination memory. Stage durations feed the source node's histograms
// and the span is retained for export; nil-safe.
func (r *Registry) SpanDeposited(ref uint64, now sim.Time) { r.finish(ref, now, false) }

// SpanDropped completes the span as a packet drop at now (wrong
// destination, CRC failure, or not mapped in). Stages reached still
// feed the histograms; the total-stage histogram does not; nil-safe.
func (r *Registry) SpanDropped(ref uint64, now sim.Time) { r.finish(ref, now, true) }

func (r *Registry) finish(ref uint64, now sim.Time, dropped bool) {
	s := r.span(ref)
	if s == nil {
		return
	}
	s.Deposited = now
	s.Dropped = dropped
	src := &r.nodes[s.Src]
	src.ObserveTime(HistStageSnoop, s.Enqueued-s.Start)
	src.ObserveTime(HistStageFIFO, s.Injected-s.Enqueued)
	src.ObserveTime(HistStageMesh, s.Delivered-s.Injected)
	src.ObserveTime(HistStageDeposit, now-s.Delivered)
	if !dropped {
		src.ObserveTime(HistStageTotal, now-s.Start)
	}

	t := &r.spans
	t.finished++
	if dropped {
		t.dropped++
	}
	// Retain in the bounded completed ring (last cap spans win).
	if len(t.completed) < cap(t.completed) {
		t.completed = append(t.completed, *s)
	} else {
		t.completed[t.next] = *s
		t.next = (t.next + 1) % cap(t.completed)
	}
	sh := &t.shards[s.Src]
	slot := int32(uint32(ref) - 1)
	sh.active[slot] = Span{}
	sh.freeList = append(sh.freeList, slot)
}

// CompletedSpans returns the retained completed spans in completion
// order; nil-safe.
func (r *Registry) CompletedSpans() []Span {
	if r == nil {
		return nil
	}
	t := &r.spans
	if len(t.completed) < cap(t.completed) {
		return append([]Span(nil), t.completed...)
	}
	out := make([]Span, 0, len(t.completed))
	out = append(out, t.completed[t.next:]...)
	out = append(out, t.completed[:t.next]...)
	return out
}

// SpanCounts reports lifetime span accounting: completed spans
// (including drops), completed spans that were drops, and spans left
// untracked because a shard was full; nil-safe.
func (r *Registry) SpanCounts() (finished, dropped, truncated uint64) {
	if r == nil {
		return 0, 0, 0
	}
	for i := range r.spans.shards {
		truncated += r.spans.shards[i].truncated
	}
	return r.spans.finished, r.spans.dropped, truncated
}

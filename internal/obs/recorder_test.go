package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestQuantileInterp(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	// Interpolated quantiles land near the true order statistics, far
	// inside the 2x bucket-edge bound of Quantile.
	checks := []struct {
		q      float64
		lo, hi uint64
	}{
		{0.50, 450, 560},
		{0.90, 820, 980},
		{0.99, 930, 1000},
		{0.999, 960, 1000},
	}
	for _, c := range checks {
		got := h.QuantileInterp(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("QuantileInterp(%g) = %d, want in [%d,%d]", c.q, got, c.lo, c.hi)
		}
	}
	if got := h.QuantileInterp(1); got != 1000 {
		t.Errorf("QuantileInterp(1) = %d, want exact max 1000", got)
	}
	// Monotone in q.
	prev := uint64(0)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		v := h.QuantileInterp(q)
		if v < prev {
			t.Fatalf("QuantileInterp not monotone at q=%g: %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestQuantileInterpEdges(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.QuantileInterp(q); got != 0 {
			t.Errorf("empty QuantileInterp(%g) = %d", q, got)
		}
	}

	var zeroes Histogram
	zeroes.Observe(0)
	zeroes.Observe(0)
	if got := zeroes.QuantileInterp(0.5); got != 0 {
		t.Errorf("all-zero QuantileInterp(0.5) = %d", got)
	}

	// Every observation in one bucket: estimates stay inside the bucket
	// and are clamped to the observed max at the top.
	var one Histogram
	for i := 0; i < 100; i++ {
		one.Observe(100) // bucket [64,127], Max 100
	}
	for _, q := range []float64{0, 0.5, 0.999} {
		got := one.QuantileInterp(q)
		if got < 64 || got > 100 {
			t.Errorf("single-bucket QuantileInterp(%g) = %d, want in [64,100]", q, got)
		}
	}
	if got := one.QuantileInterp(1); got != 100 {
		t.Errorf("single-bucket QuantileInterp(1) = %d, want 100", got)
	}

	// A single observation never estimates above the value itself.
	var single Histogram
	single.Observe(7)
	if got := single.QuantileInterp(0.5); got > 7 {
		t.Errorf("single-value QuantileInterp(0.5) = %d > 7", got)
	}
}

func TestHistogramDelta(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(100)
	prev := h
	h.Observe(1000)
	h.Observe(3)
	d := h.Delta(&prev)
	if d.Count != 2 || d.Sum != 1003 {
		t.Fatalf("delta count/sum = %d/%d, want 2/1003", d.Count, d.Sum)
	}
	if d.Max != 1000 {
		t.Fatalf("delta max = %d, want carried max 1000", d.Max)
	}
	var total uint64
	for _, n := range d.Buckets {
		total += n
	}
	if total != 2 {
		t.Fatalf("delta buckets hold %d observations, want 2", total)
	}
}

// driveRecorder paces r through n samples at its own cadence, bumping a
// counter on each node in between so the series has shape.
func driveRecorder(r *Recorder, reg *Registry, n int) {
	for i := 0; i < n; i++ {
		reg.Node(0).Add(CtrPacketsOut, 3)
		reg.Node(1).Inc(CtrPacketsIn)
		reg.Node(1).Set(GaugeOutFIFOBytes, int64(10*(i+1)))
		reg.Node(0).Observe(HistPayload, uint64(64*(i+1)))
		d := r.NextDeadline()
		r.Pace(d, d)
	}
}

func TestRecorderSeries(t *testing.T) {
	reg := New(2, 0)
	r := NewRecorder(reg, RecorderConfig{Interval: 10 * sim.Microsecond, Capacity: 8})
	driveRecorder(r, reg, 3)
	s := r.Series()
	if len(s.Times) != 3 || r.Len() != 3 || r.Taken() != 3 || s.Overwrote != 0 {
		t.Fatalf("series shape: times=%d len=%d taken=%d overwrote=%d",
			len(s.Times), r.Len(), r.Taken(), s.Overwrote)
	}
	for i, want := range []sim.Time{10 * sim.Microsecond, 20 * sim.Microsecond, 30 * sim.Microsecond} {
		if s.Times[i] != want {
			t.Fatalf("sample %d at %v, want %v", i, s.Times[i], want)
		}
	}
	// Cumulative machine totals at each cut.
	if got := s.Counter(CtrPacketsOut); !reflect.DeepEqual(got, []uint64{3, 6, 9}) {
		t.Fatalf("packets-out series %v", got)
	}
	if got := s.Counter(CtrPacketsIn); !reflect.DeepEqual(got, []uint64{1, 2, 3}) {
		t.Fatalf("packets-in series %v", got)
	}
	if got := s.Gauge(GaugeOutFIFOBytes); !reflect.DeepEqual(got, []int64{10, 20, 30}) {
		t.Fatalf("gauge series %v", got)
	}
	if got := s.HistCount(HistPayload); !reflect.DeepEqual(got, []uint64{1, 2, 3}) {
		t.Fatalf("hist count series %v", got)
	}
	if got := s.HistSum(HistPayload); !reflect.DeepEqual(got, []uint64{64, 192, 384}) {
		t.Fatalf("hist sum series %v", got)
	}
}

func TestRecorderWraparound(t *testing.T) {
	reg := New(2, 0)
	r := NewRecorder(reg, RecorderConfig{Interval: 10 * sim.Microsecond, Capacity: 4})
	driveRecorder(r, reg, 6)
	if r.Len() != 4 || r.Taken() != 6 {
		t.Fatalf("len=%d taken=%d, want 4/6", r.Len(), r.Taken())
	}
	s := r.Series()
	if s.Overwrote != 2 {
		t.Fatalf("overwrote=%d, want 2", s.Overwrote)
	}
	// Oldest two samples fell off; retained window is samples 3..6.
	want := []sim.Time{30 * sim.Microsecond, 40 * sim.Microsecond, 50 * sim.Microsecond, 60 * sim.Microsecond}
	if !reflect.DeepEqual(s.Times, want) {
		t.Fatalf("times %v, want %v", s.Times, want)
	}
	if got := s.Counter(CtrPacketsOut); !reflect.DeepEqual(got, []uint64{9, 12, 15, 18}) {
		t.Fatalf("packets-out series %v", got)
	}
}

func TestRecorderResetReuse(t *testing.T) {
	fresh := func() (*Registry, *Recorder) {
		reg := New(2, 0)
		return reg, NewRecorder(reg, RecorderConfig{Interval: 10 * sim.Microsecond, Capacity: 4})
	}
	regA, ra := fresh()
	driveRecorder(ra, regA, 7) // wrap the ring first
	ra.MarkAt(5*sim.Microsecond, "stale mark")
	ra.Reset()
	regA.Reset()

	regB, rb := fresh()
	driveRecorder(ra, regA, 5)
	driveRecorder(rb, regB, 5)
	if !reflect.DeepEqual(ra.Series(), rb.Series()) {
		t.Fatalf("reset recorder diverged from fresh:\n%+v\nvs\n%+v", ra.Series(), rb.Series())
	}
}

func TestRecorderMarksBounded(t *testing.T) {
	reg := New(1, 0)
	r := NewRecorder(reg, RecorderConfig{Interval: sim.Microsecond})
	for i := 0; i < recorderMarkCapacity+10; i++ {
		r.MarkAt(sim.Time(i), "m")
	}
	if got := len(r.Series().Marks); got != recorderMarkCapacity {
		t.Fatalf("retained %d marks, want %d", got, recorderMarkCapacity)
	}
	var nilRec *Recorder
	nilRec.MarkAt(0, "ignored") // must not panic
	if nilRec.Len() != 0 || nilRec.Taken() != 0 {
		t.Fatal("nil recorder non-empty")
	}
	if s := nilRec.Series(); len(s.Times) != 0 {
		t.Fatal("nil recorder series non-empty")
	}
}

// TestRecorderZeroAlloc is the CI allocation guard for the sample path:
// pacing an armed recorder must never touch the heap.
func TestRecorderZeroAlloc(t *testing.T) {
	reg := New(16, 0)
	r := NewRecorder(reg, RecorderConfig{Interval: 10 * sim.Microsecond, Capacity: 64})
	reg.Node(3).Add(CtrBytesOut, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		d := r.NextDeadline()
		r.Pace(d, d)
	})
	if allocs != 0 {
		t.Fatalf("recorder sample path allocates %v per op, want 0", allocs)
	}
}

func BenchmarkRecorderSample(b *testing.B) {
	reg := New(16, 0)
	r := NewRecorder(reg, RecorderConfig{Interval: 10 * sim.Microsecond, Capacity: 1024})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := r.NextDeadline()
		r.Pace(d, d)
	}
}

func TestWriteOpenMetricsDeterministic(t *testing.T) {
	reg := New(2, 8)
	reg.Node(0).Add(CtrPacketsOut, 12)
	reg.Node(1).Add(CtrPacketsIn, 12)
	reg.Node(1).Set(GaugeInFIFOBytes, 96)
	reg.Node(0).Observe(HistPayload, 256)
	reg.Link("link-0").Take(2)

	render := func() string {
		var b strings.Builder
		if err := WriteOpenMetrics(&b, reg.Snapshot(), 42*sim.Microsecond); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("two renders of the same snapshot differ")
	}
	if !strings.HasSuffix(a, "# EOF\n") {
		t.Fatalf("missing # EOF terminator:\n%s", a)
	}
	for _, want := range []string{
		"shrimp_sim_time_seconds 4.2e-05",
		`shrimp_packets_out_total{node="0"} 12`,
		`shrimp_in_fifo_bytes{node="1"} 96`,
		`shrimp_link_traversals_total{link="link-0"} 1`,
		"# EOF\n",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("output missing %q:\n%s", want, a)
		}
	}
}

func TestWriteOpenMetricsOmitsArtifacts(t *testing.T) {
	reg := New(1, 0)
	reg.Node(0).Inc(CtrTraceHits)
	reg.Node(0).Inc(CtrPacketsOut)
	var b strings.Builder
	if err := WriteOpenMetricsOpts(&b, reg.Snapshot(), 0, OpenMetricsOptions{OmitEngineArtifacts: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "trace_hits") {
		t.Fatal("engine artifact series not omitted")
	}
	if !strings.Contains(out, "shrimp_packets_out_total") {
		t.Fatal("simulated-result series missing")
	}
	if !IsEngineArtifact("trace-hits") || IsEngineArtifact("packets-out") {
		t.Fatal("IsEngineArtifact misclassifies")
	}
}

func TestRecorderWriteOpenMetrics(t *testing.T) {
	reg := New(2, 0)
	r := NewRecorder(reg, RecorderConfig{Interval: 10 * sim.Microsecond, Capacity: 8})
	driveRecorder(r, reg, 2)
	r.MarkAt(15*sim.Microsecond, `watchdog: "quoted"`)
	var b strings.Builder
	if err := r.WriteOpenMetrics(&b, OpenMetricsOptions{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"shrimp_rec_samples_total 2",
		"shrimp_rec_packets_out_total 3 0.000010000",
		"shrimp_rec_packets_out_total 6 0.000020000",
		`shrimp_rec_mark{label="watchdog: \"quoted\""} 1 0.000015000`,
		"# EOF\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("recorder exposition missing %q:\n%s", want, out)
		}
	}
	// All-zero series stay out of the exposition.
	if strings.Contains(out, "shrimp_rec_drops") {
		t.Error("all-zero series emitted")
	}
	var nilRec *Recorder
	b.Reset()
	if err := nilRec.WriteOpenMetrics(&b, OpenMetricsOptions{}); err != nil {
		t.Fatal(err)
	}
	if b.String() != "# EOF\n" {
		t.Fatalf("nil recorder exposition %q", b.String())
	}
}

// TestWriteChromeTraceEmpty pins the exact bytes of an empty trace: every
// input nil or zero must still be a loadable JSON document.
func TestWriteChromeTraceEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteChromeTrace(&b, 0, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	const golden = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n\n]}\n"
	if b.String() != golden {
		t.Fatalf("empty trace drifted:\n got %q\nwant %q", b.String(), golden)
	}
	if !json.Valid([]byte(b.String())) {
		t.Fatal("empty trace is not valid JSON")
	}
}

func TestWriteChromeTraceRecorderTracks(t *testing.T) {
	reg := New(2, 0)
	r := NewRecorder(reg, RecorderConfig{Interval: 10 * sim.Microsecond, Capacity: 8})
	driveRecorder(r, reg, 3)
	r.MarkAt(25*sim.Microsecond, "watchdog: retry-storm")
	var b strings.Builder
	if err := WriteChromeTrace(&b, 2, nil, nil, nil, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !json.Valid([]byte(out)) {
		t.Fatalf("invalid JSON:\n%s", out)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	var counterTracks, marks int
	var procName string
	for _, ev := range doc.TraceEvents {
		switch ev["name"] {
		case "recorder counters":
			counterTracks++
			args := ev["args"].(map[string]any)
			if _, ok := args[CtrPacketsOut.String()]; !ok {
				t.Fatalf("live counter series missing from args %v", args)
			}
			if _, dead := args[CtrDrops.String()]; dead {
				t.Fatalf("all-zero series emitted in args %v", args)
			}
		case "watchdog: retry-storm":
			marks++
		case "process_name":
			if n, _ := ev["args"].(map[string]any)["name"].(string); strings.Contains(n, "flight recorder") {
				procName = n
			}
		}
	}
	if counterTracks != 3 {
		t.Fatalf("%d recorder counter samples, want 3", counterTracks)
	}
	if marks != 1 {
		t.Fatalf("%d mark instants, want 1", marks)
	}
	if procName == "" {
		t.Fatal("no flight-recorder process metadata")
	}
}

package obs

import (
	"testing"

	"repro/internal/sim"
)

// instrumentedHandler reschedules itself like sim's tickHandler but
// records the full metrics complement each firing — the worst-case
// per-event instrumentation load of a real component.
type instrumentedHandler struct {
	e    *sim.Engine
	r    *Registry
	s    *NodeScope
	l    *LinkStat
	left int
}

func (h *instrumentedHandler) Fire() {
	if h.left == 0 {
		return
	}
	h.left--
	h.s.Inc(CtrSnoopedWrites)
	h.s.Add(CtrBytesOut, 64)
	h.s.Set(GaugeOutFIFOBytes, int64(h.left&1023))
	h.s.Observe(HistOutFIFODepth, uint64(h.left&1023))
	h.l.Take(8)
	ref := h.r.BeginSpan(0, 1, 64, SpanSingleWrite, h.e.Now())
	h.r.SpanEnqueued(ref, h.e.Now())
	h.r.SpanInjected(ref, h.e.Now())
	h.r.SpanDelivered(ref, h.e.Now())
	h.r.SpanDeposited(ref, h.e.Now())
	h.e.ScheduleAfter(10, h)
}

// BenchmarkEngineMetrics is BenchmarkEngine's shape (64 self-
// rescheduling handlers) with metrics enabled and a full span lifecycle
// per event. The acceptance bar — enforced by ci.sh — is 0 allocs/op:
// instrumentation must never allocate on the hot path.
func BenchmarkEngineMetrics(b *testing.B) {
	e := sim.NewEngine()
	r := New(4, 256)
	handlers := make([]*instrumentedHandler, 64)
	for i := range handlers {
		handlers[i] = &instrumentedHandler{
			e: e, r: r, s: r.Node(i % 4), l: r.Link("bench"), left: b.N,
		}
		e.Schedule(sim.Time(i), handlers[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.StopTimer()
	for i := range handlers {
		handlers[i].left = 0
	}
	e.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Snapshot is a point-in-time export of a registry, built for human
// tables, JSON dumps and test equality (maps keyed by metric name, so
// reflect.DeepEqual compares semantically, not by array layout). Zero
// counters, gauges and histograms are omitted.
type Snapshot struct {
	Nodes          []NodeSnapshot `json:"nodes"`
	Links          []LinkStat     `json:"links,omitempty"`
	SpansFinished  uint64         `json:"spans_finished"`
	SpansDropped   uint64         `json:"spans_dropped,omitempty"`
	SpansTruncated uint64         `json:"spans_truncated,omitempty"`
}

// NodeSnapshot is one node's non-zero metrics.
type NodeSnapshot struct {
	Node     int                     `json:"node"`
	Counters map[string]uint64       `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"histograms,omitempty"`
}

// HistSnapshot summarizes one histogram: count, mean and interpolated
// log2-bucket quantiles (see Histogram.QuantileInterp).
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
	Max   uint64  `json:"max"`
}

func histSnapshot(h *Histogram) HistSnapshot {
	return HistSnapshot{
		Count: h.Count,
		Mean:  h.Mean(),
		P50:   h.QuantileInterp(0.50),
		P90:   h.QuantileInterp(0.90),
		P99:   h.QuantileInterp(0.99),
		P999:  h.QuantileInterp(0.999),
		Max:   h.Max,
	}
}

// Snapshot exports the registry's current state; nil-safe (zero-value
// snapshot).
func (r *Registry) Snapshot() Snapshot {
	var out Snapshot
	if r == nil {
		return out
	}
	out.Nodes = make([]NodeSnapshot, len(r.nodes))
	for i := range r.nodes {
		s := &r.nodes[i]
		ns := NodeSnapshot{Node: i}
		for c := Counter(0); c < numCounters; c++ {
			if v := s.counters[c]; v != 0 {
				if ns.Counters == nil {
					ns.Counters = make(map[string]uint64)
				}
				ns.Counters[c.String()] = v
			}
		}
		for g := Gauge(0); g < numGauges; g++ {
			if v := s.gauges[g]; v != 0 {
				if ns.Gauges == nil {
					ns.Gauges = make(map[string]int64)
				}
				ns.Gauges[g.String()] = v
			}
		}
		for h := Hist(0); h < numHists; h++ {
			if hist := &s.hists[h]; hist.Count != 0 {
				if ns.Hists == nil {
					ns.Hists = make(map[string]HistSnapshot)
				}
				ns.Hists[h.String()] = histSnapshot(hist)
			}
		}
		out.Nodes[i] = ns
	}
	for _, l := range r.links {
		if l.Traversals != 0 || l.Waits != 0 {
			out.Links = append(out.Links, *l)
		}
	}
	out.SpansFinished, out.SpansDropped, out.SpansTruncated = r.SpanCounts()
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// stageHists are the per-stage latency histograms in pipeline order.
var stageHists = [...]Hist{
	HistStageSnoop, HistStageFIFO, HistStageMesh, HistStageDeposit, HistStageTotal,
}

// WriteStageTable renders the machine-wide per-stage latency breakdown
// (derived from completed causal spans) as a markdown table; nil-safe
// (writes a disabled notice).
func (r *Registry) WriteStageTable(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "metrics disabled (Config.Metrics = false)")
		return err
	}
	if _, err := fmt.Fprintln(w, "| stage | spans | mean | p50 | p90 | p99 | p999 | max |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|"); err != nil {
		return err
	}
	for _, h := range stageHists {
		agg := r.StageHist(h)
		if _, err := fmt.Fprintf(w, "| %s | %d | %v | %v | %v | %v | %v | %v |\n",
			h, agg.Count,
			sim.Time(agg.Mean()), sim.Time(agg.QuantileInterp(0.50)),
			sim.Time(agg.QuantileInterp(0.90)), sim.Time(agg.QuantileInterp(0.99)),
			sim.Time(agg.QuantileInterp(0.999)), sim.Time(agg.Max)); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders a machine-wide summary — aggregate counters, span
// accounting, the stage table, and the busiest links — as plain text;
// nil-safe.
func (r *Registry) WriteTable(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "metrics disabled (Config.Metrics = false)")
		return err
	}
	if _, err := fmt.Fprintf(w, "counters (machine totals, %d nodes):\n", len(r.nodes)); err != nil {
		return err
	}
	for c := Counter(0); c < numCounters; c++ {
		if v := r.Total(c); v != 0 {
			if _, err := fmt.Fprintf(w, "  %-18s %12d\n", c, v); err != nil {
				return err
			}
		}
	}
	fin, drop, trunc := r.SpanCounts()
	if _, err := fmt.Fprintf(w, "spans: %d finished, %d dropped, %d untracked\n",
		fin, drop, trunc); err != nil {
		return err
	}
	if err := r.WriteStageTable(w); err != nil {
		return err
	}
	// Busiest links: any with contention, else top traversals only.
	var contended int
	for _, l := range r.links {
		if l.Waits > 0 {
			contended++
		}
	}
	if contended > 0 {
		if _, err := fmt.Fprintf(w, "contended links (%d):\n", contended); err != nil {
			return err
		}
		for _, l := range r.links {
			if l.Waits > 0 {
				if _, err := fmt.Fprintf(w, "  %-14s traversals=%d flit-hops=%d waits=%d max-queue=%d\n",
					l.Name, l.Traversals, l.FlitHops, l.Waits, l.MaxQueue); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Package obs is the machine-wide observability layer: a metrics
// registry of typed counters, gauges and fixed-bucket histograms, plus
// causal packet spans that reconstruct a single transfer's full
// simulated-time breakdown (snoop → outgoing FIFO → mesh → deposit).
//
// The paper's evaluation (Table 1, §4–5) hinges on knowing where cycles
// go; this package is the simulator's answer. Design contract:
//
//   - Allocation-free on hot paths. Counters, gauges and histograms are
//     preallocated arrays indexed by const IDs; spans come from a
//     preallocated slab with a free list. Recording never allocates.
//   - Nil-safe everywhere. A nil *Registry, *NodeScope or *LinkStat
//     records nothing, so components carry optional instrumentation
//     without checks at every call site. Metrics are compiled in but
//     off by default (core.Config.Metrics).
//   - Observation only. Recording takes timestamps from its callers and
//     never schedules events or advances time, so enabling metrics
//     cannot change any simulated result — the differential tests in
//     internal/core enforce bit-identical outputs with metrics on and
//     off.
//   - Reset support. Registry.Reset returns every counter, histogram,
//     link stat and span table to its just-built state in place, so the
//     sweep harnesses' machine-reuse pools stay bit-identical.
package obs

import (
	"math/bits"

	"repro/internal/sim"
)

// Counter identifies one per-node monotonic counter.
type Counter uint8

// Per-node counters, one block per instrumented component.
const (
	// NIC outgoing path.
	CtrSnoopedWrites Counter = iota
	CtrPacketsOut
	CtrBytesOut
	CtrMergedWrites
	CtrMergedPackets
	CtrOutStalls
	// NIC incoming path.
	CtrPacketsIn
	CtrBytesIn
	CtrDrops
	CtrIRQs
	// Deliberate-update engine.
	CtrDMACommands
	CtrDMAChunks
	CtrDMARejected
	// NIPT.
	CtrNIPTLookups
	CtrNIPTMisses
	// Xpress memory bus.
	CtrBusTxns
	CtrBusWaitPs
	// Kernel page operations.
	CtrKernelMaps
	CtrKernelUnmaps
	CtrKernelEvictions
	CtrKernelPageIns
	// Snoop filter: CPU writes that skipped the snooper fan-out because
	// the target page has no out-mapping.
	CtrSnoopsFiltered
	// Batched CPU interpretation: why each batch ended (see isa.CPU).
	CtrBatchBreakEvent   // a pending engine event inside the run-ahead window
	CtrBatchBreakQuantum // the configured max-batch quantum was reached
	CtrBatchBreakFault   // a translation fault (retry reschedules)
	CtrBatchBreakHalt    // HLT, sentinel RET, or abort
	CtrBatchBreakFreeze  // the kernel froze the CPU mid-batch
	// Superblock trace cache (isa/tracecache.go): dispatches served from
	// a built superblock, dispatches that had to build one, and whole-
	// cache invalidations (CPU reset / program churn).
	CtrTraceHits
	CtrTraceMisses
	CtrTraceFlushes
	// Spin fast-forward: verified wait-state skips and the simulated
	// picoseconds they covered (iterations skipped are in
	// HistSpinSkipped).
	CtrSpinFastForwards
	CtrSpinSkippedPs
	// Fault injection (internal/fault): events the injector fired,
	// charged to the node that injected the packet (or whose FIFO
	// stalled).
	CtrFaultDrops     // packets lost in flight
	CtrFaultCorrupts  // packets damaged in flight
	CtrFaultDups      // packets delivered twice
	CtrFaultLinkDrops // packets lost to a downed link
	CtrFaultStalls    // outgoing-FIFO drain stalls
	// Reliable-delivery layer (internal/nic/reliable.go).
	CtrRelRetransmits // data packets re-sent (timeout or NACK)
	CtrRelAcks        // cumulative ACKs sent by the receiver
	CtrRelNacks       // gap NACKs sent by the receiver
	CtrRelDups        // duplicate data packets discarded by the receiver
	CtrRelBackoffs    // retransmit-timeout escalations at the sender
	CtrAUSeqGaps      // automatic-update per-page sequence gaps (lost stores)

	// Survivable-mode failure detector (crash survival).
	CtrPeerDowns     // peers this node's failure detector declared dead
	CtrPeerDownDrops // outbound packets suppressed against a declared-dead peer
	numCounters
)

var counterNames = [...]string{
	"snooped-writes", "packets-out", "bytes-out", "merged-writes",
	"merged-packets", "out-stalls",
	"packets-in", "bytes-in", "drops", "irqs",
	"dma-commands", "dma-chunks", "dma-rejected",
	"nipt-lookups", "nipt-misses",
	"bus-txns", "bus-wait-ps",
	"kernel-maps", "kernel-unmaps", "kernel-evictions", "kernel-pageins",
	"snoops-filtered",
	"batch-break-event", "batch-break-quantum", "batch-break-fault",
	"batch-break-halt", "batch-break-freeze",
	"trace-hits", "trace-misses", "trace-flushes",
	"spin-fast-forwards", "spin-skipped-ps",
	"fault-drops", "fault-corrupts", "fault-dups", "fault-link-drops",
	"fault-stalls",
	"rel-retransmits", "rel-acks", "rel-nacks", "rel-dups", "rel-backoffs",
	"au-seq-gaps",
	"peer-downs", "peer-down-drops",
}

// Compile-time guards: counterNames must list exactly numCounters names.
const _ = uint(int(numCounters) - len(counterNames)) // more names than counters
var _ = counterNames[numCounters-1]                  // more counters than names

func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "counter(?)"
}

// Gauge identifies one per-node instantaneous value.
type Gauge uint8

const (
	// GaugeOutFIFOBytes is the Outgoing FIFO's current occupancy.
	GaugeOutFIFOBytes Gauge = iota
	// GaugeInFIFOBytes is the Incoming FIFO's current occupancy.
	GaugeInFIFOBytes
	numGauges
)

var gaugeNames = [...]string{"out-fifo-bytes", "in-fifo-bytes"}

const _ = uint(int(numGauges) - len(gaugeNames))

var _ = gaugeNames[numGauges-1]

func (g Gauge) String() string {
	if int(g) < len(gaugeNames) {
		return gaugeNames[g]
	}
	return "gauge(?)"
}

// Hist identifies one per-node fixed-bucket histogram. The stage
// histograms are fed from completed causal spans (see span.go); the
// occupancy histograms are fed at FIFO enqueue/accept time.
type Hist uint8

const (
	// HistOutFIFODepth observes Outgoing FIFO occupancy (bytes) after
	// each enqueue.
	HistOutFIFODepth Hist = iota
	// HistInFIFODepth observes Incoming FIFO occupancy (bytes) after
	// each accepted worm.
	HistInFIFODepth
	// HistPayload observes delivered packet payload sizes (bytes).
	HistPayload
	// HistStageSnoop: initiating store/DMA read → Outgoing FIFO entry
	// (snoop, NIPT lookup, merge wait, packetize), in picoseconds.
	HistStageSnoop
	// HistStageFIFO: Outgoing FIFO entry → backplane injection.
	HistStageFIFO
	// HistStageMesh: injection → worm fully drained into the receiving
	// Incoming FIFO (includes parks and link contention).
	HistStageMesh
	// HistStageDeposit: Incoming FIFO entry → payload in destination
	// memory (FIFO traversal plus EISA/Xpress DMA).
	HistStageDeposit
	// HistStageTotal: initiating store → deposited (end to end).
	HistStageTotal
	// HistBatchLen observes the number of instructions the CPU retired
	// per engine event (batched interpretation; see isa.CPU).
	HistBatchLen
	// HistSpinSkipped observes the number of spin-loop instructions each
	// verified fast-forward skipped (computed wait-states; see
	// isa/tracecache.go).
	HistSpinSkipped
	numHists
)

var histNames = [...]string{
	"out-fifo-depth", "in-fifo-depth", "payload-bytes",
	"stage-snoop", "stage-fifo", "stage-mesh", "stage-deposit", "stage-total",
	"batch-len", "spin-skipped",
}

const _ = uint(int(numHists) - len(histNames))

var _ = histNames[numHists-1]

func (h Hist) String() string {
	if int(h) < len(histNames) {
		return histNames[h]
	}
	return "hist(?)"
}

// HistBuckets is the fixed bucket count of every histogram: bucket i
// holds values v with bits.Len64(v) == i, i.e. log2-spaced buckets
// [2^(i-1), 2^i). 48 buckets cover picosecond timestamps past 2^47 ps
// (~140 s of simulated time) and any byte count the simulator produces.
const HistBuckets = 48

// Histogram is a fixed-bucket log2 histogram. Observe is allocation-free.
type Histogram struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [HistBuckets]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.Buckets[b]++
}

// Mean returns the arithmetic mean of observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// upper edge of the bucket containing it. Exact to within the log2
// bucket width.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if seen > target {
			if i == 0 {
				return 0
			}
			edge := uint64(1) << uint(i)
			if edge-1 > h.Max {
				return h.Max
			}
			return edge - 1
		}
	}
	return h.Max
}

// QuantileInterp estimates the q-quantile (0 <= q <= 1) by linear
// interpolation of the rank within the log2 bucket containing it,
// assuming observations are uniform inside a bucket. Against Quantile's
// bucket-upper-edge bound this trades a worst-case 2x overestimate for a
// typical error of a few percent — the p99/p999 numbers the reports
// surface. The top bucket is clamped to Max, so q=1 returns the exact
// maximum.
func (h *Histogram) QuantileInterp(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max
	}
	if q < 0 {
		q = 0
	}
	pos := q * float64(h.Count-1) // continuous rank in [0, Count-1]
	var seen uint64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if pos < float64(seen+n) {
			if i == 0 {
				return 0 // bucket 0 holds only the value 0
			}
			lo := uint64(1) << uint(i-1)
			hi := uint64(1)<<uint(i) - 1
			if hi > h.Max {
				hi = h.Max
			}
			if lo > hi {
				lo = hi
			}
			frac := (pos - float64(seen)) / float64(n)
			return lo + uint64(frac*float64(hi-lo)+0.5)
		}
		seen += n
	}
	return h.Max
}

// Delta returns the observations h has accumulated since prev (an
// earlier copy of the same histogram): Count, Sum and Buckets subtract;
// Max carries over from h, since a maximum cannot be windowed. The
// flight recorder derives per-window rates and quantiles this way.
func (h *Histogram) Delta(prev *Histogram) Histogram {
	d := Histogram{Count: h.Count - prev.Count, Sum: h.Sum - prev.Sum, Max: h.Max}
	for i := range d.Buckets {
		d.Buckets[i] = h.Buckets[i] - prev.Buckets[i]
	}
	return d
}

// Merge adds o's observations into h (snapshot aggregation; Max is the
// pairwise max, quantiles stay exact to bucket width).
func (h *Histogram) Merge(o *Histogram) {
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// NodeScope is one node's metrics: a counter/gauge/histogram block.
// Components hold a *NodeScope (nil when metrics are disabled) and
// record through it unconditionally.
type NodeScope struct {
	counters [numCounters]uint64
	gauges   [numGauges]int64
	hists    [numHists]Histogram
}

// Inc adds 1 to a counter; nil-safe.
func (s *NodeScope) Inc(c Counter) {
	if s != nil {
		s.counters[c]++
	}
}

// Add adds n to a counter; nil-safe.
func (s *NodeScope) Add(c Counter, n uint64) {
	if s != nil {
		s.counters[c] += n
	}
}

// Set sets a gauge; nil-safe.
func (s *NodeScope) Set(g Gauge, v int64) {
	if s != nil {
		s.gauges[g] = v
	}
}

// Observe records a value into a histogram; nil-safe.
func (s *NodeScope) Observe(h Hist, v uint64) {
	if s != nil {
		s.hists[h].Observe(v)
	}
}

// ObserveTime records a duration (in picoseconds) into a histogram;
// nil-safe. Negative durations (impossible for well-formed spans) are
// clamped to zero rather than wrapping.
func (s *NodeScope) ObserveTime(h Hist, d sim.Time) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s.hists[h].Observe(uint64(d))
}

// Counter reads a counter; nil-safe (0).
func (s *NodeScope) Counter(c Counter) uint64 {
	if s == nil {
		return 0
	}
	return s.counters[c]
}

// Gauge reads a gauge; nil-safe (0).
func (s *NodeScope) Gauge(g Gauge) int64 {
	if s == nil {
		return 0
	}
	return s.gauges[g]
}

// Hist returns a copy of a histogram; nil-safe (zero histogram).
func (s *NodeScope) Hist(h Hist) Histogram {
	if s == nil {
		return Histogram{}
	}
	return s.hists[h]
}

func (s *NodeScope) reset() { *s = NodeScope{} }

// LinkStat is one mesh channel's counters (a link, injection port or
// ejection port). The mesh stores a *LinkStat per channel; a nil
// *LinkStat records nothing.
type LinkStat struct {
	Name       string `json:"name"`
	Traversals uint64 `json:"traversals"` // worms that acquired the channel
	FlitHops   uint64 `json:"flit_hops"`  // flits carried
	Waits      uint64 `json:"waits"`      // worms that queued behind an owner
	MaxQueue   int    `json:"max_queue"`  // deepest waiter queue seen
}

// Take records a worm acquiring the channel with the given flit count;
// nil-safe.
func (l *LinkStat) Take(flits int) {
	if l == nil {
		return
	}
	l.Traversals++
	l.FlitHops += uint64(flits)
}

// Wait records a worm queuing behind the channel's owner, with the
// resulting waiter-queue depth; nil-safe.
func (l *LinkStat) Wait(queue int) {
	if l == nil {
		return
	}
	l.Waits++
	if queue > l.MaxQueue {
		l.MaxQueue = queue
	}
}

// DefaultSpanCapacity is the default bound on concurrently-active and
// retained-completed causal spans (see Registry).
const DefaultSpanCapacity = 8192

// Registry is the machine-wide metrics registry: one NodeScope per
// node, one LinkStat per registered mesh channel, and the causal span
// table. A nil *Registry is valid and records nothing.
type Registry struct {
	nodes []NodeScope
	links []*LinkStat
	spans spanTable
}

// New builds a registry for a machine of the given node count. spanCap
// bounds each node's in-flight spans and the retained-completed ring
// (<= 0 selects DefaultSpanCapacity). The registry holds no engine
// reference: span stages take explicit timestamps, so one registry
// serves every partition of a partitioned machine.
func New(nodes, spanCap int) *Registry {
	if spanCap <= 0 {
		spanCap = DefaultSpanCapacity
	}
	r := &Registry{nodes: make([]NodeScope, nodes)}
	r.spans.init(nodes, spanCap)
	return r
}

// NodeCount returns the number of node scopes; nil-safe (0).
func (r *Registry) NodeCount() int {
	if r == nil {
		return 0
	}
	return len(r.nodes)
}

// Node returns node i's scope; nil-safe (nil scope).
func (r *Registry) Node(i int) *NodeScope {
	if r == nil {
		return nil
	}
	return &r.nodes[i]
}

// Link registers (or re-registers) a named link counter block and
// returns it; nil-safe (nil stat). Names are expected to be unique; the
// mesh registers each channel once at attach time.
func (r *Registry) Link(name string) *LinkStat {
	if r == nil {
		return nil
	}
	l := &LinkStat{Name: name}
	r.links = append(r.links, l)
	return l
}

// Links returns the registered link stats in registration order;
// nil-safe.
func (r *Registry) Links() []*LinkStat {
	if r == nil {
		return nil
	}
	return r.links
}

// Reset zeroes every counter, gauge, histogram, link stat and span —
// back to the just-built state, in place. Link registrations persist
// (wiring, not state); nil-safe.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for i := range r.nodes {
		r.nodes[i].reset()
	}
	for _, l := range r.links {
		name := l.Name
		*l = LinkStat{Name: name}
	}
	r.spans.reset()
}

// StageHist aggregates one stage histogram across all nodes; nil-safe
// (zero histogram).
func (r *Registry) StageHist(h Hist) Histogram {
	var out Histogram
	if r == nil {
		return out
	}
	for i := range r.nodes {
		hist := r.nodes[i].hists[h]
		out.Merge(&hist)
	}
	return out
}

// Total sums a counter across all nodes; nil-safe (0).
func (r *Registry) Total(c Counter) uint64 {
	if r == nil {
		return 0
	}
	var t uint64
	for i := range r.nodes {
		t += r.nodes[i].counters[c]
	}
	return t
}

// Package fault is the machine-wide deterministic fault-injection
// subsystem. A Config (carried on core.Config.Faults) describes which
// faults a run should experience — packet drop/corrupt/duplicate rates
// on the mesh, NIC outgoing-FIFO stalls, a link outage window, node
// crash/freeze schedules — and an Injector turns it into per-event
// decisions that are a pure function of (seed, node, stream, per-stream
// count, decision-time clock). No wall-clock time and no global math/rand
// state is ever consulted, so a given seed reproduces the exact same
// fault pattern on every run, after Machine.Reset, and across parallel
// sweep workers.
//
// The companion reliable-delivery layer (internal/nic/reliable.go) and
// the structured MachineCheck error (machinecheck.go) are what let a
// simulation survive — or deterministically refuse to survive — the
// injected faults.
package fault

import (
	"repro/internal/sim"
)

// NodeFaultKind selects what happens to a scheduled node.
type NodeFaultKind uint8

const (
	// NodeOK is the zero value: no fault scheduled.
	NodeOK NodeFaultKind = iota
	// NodeCrash permanently kills the node at At: its CPU freezes and
	// its NIC becomes a bit bucket (arriving packets are discarded, no
	// ACKs are generated). Peers talking to it exhaust their retry
	// budgets and raise a MachineCheck naming the dead destination.
	NodeCrash
	// NodeFreeze freezes the node's CPU at At and thaws it at Until
	// (Until == 0 freezes permanently). The NIC keeps running: arriving
	// data still deposits, so a freeze models a stalled processor, not
	// a dead node.
	NodeFreeze
)

func (k NodeFaultKind) String() string {
	switch k {
	case NodeCrash:
		return "crash"
	case NodeFreeze:
		return "freeze"
	}
	return "ok"
}

// NodeFault schedules one node-level fault.
type NodeFault struct {
	Node  int
	Kind  NodeFaultKind
	At    sim.Time
	Until sim.Time // NodeFreeze thaw instant; 0 = permanent
}

// Config describes the faults of one run. The zero value means "no
// fault subsystem at all" — the machine is bit-identical to one built
// before this package existed. It is a plain comparable struct (no
// slices or maps) so core.Config stays ==-comparable for the sweep
// harnesses' machine-reuse pools.
type Config struct {
	// Seed keys the split-mix decision hash. Two runs with equal
	// Config are bit-identical; changing only Seed reshuffles which
	// packets are hit while keeping the rates.
	Seed uint64

	// Per-million packet fault rates, rolled at mesh injection time.
	DropPPM    uint32 // packet vanishes in flight (wire traffic still paid)
	CorruptPPM uint32 // packet arrives damaged; the receiver's CRC check drops it
	DupPPM     uint32 // packet is delivered twice back to back

	// StallPPM is the per-million rate at which an outgoing-FIFO drain
	// pauses for StallTime before injecting (a flaky NIC).
	StallPPM  uint32
	StallTime sim.Time // 0 selects DefaultStallTime

	// Reliable enables the NIC-level reliable-delivery layer:
	// deliberate-update and kernel-ring packets gain sequence numbers,
	// receiver ACK/NACK, sender retransmit with capped exponential
	// backoff, and kernel ring records gain a CRC word; automatic-update
	// packets gain per-page sequence tags for drop detection. Turning it
	// on changes the wire format (+RelHeaderBytes per packet), so it is
	// not bit-identical to the zero config even with all rates zero.
	Reliable bool
	// RetryBudget is the number of consecutive no-progress retransmits
	// before the sender raises a MachineCheck (0 selects
	// DefaultRetryBudget).
	RetryBudget int
	// AckTimeout is the base retransmit timeout; backoff doubles it per
	// consecutive retry, capped at MaxBackoff× the base (0 selects
	// DefaultAckTimeout).
	AckTimeout sim.Time

	// Survivable converts reliable-delivery retry-budget exhaustion
	// from a terminal MachineCheck into a structured PeerDown event:
	// the sender's NIC quarantines the flow (retained payloads freed,
	// RTO timers disarmed), the kernel tears down every mapping to and
	// from the declared-dead peer, and the survivors keep running. Off
	// (the default) preserves the fail-stop semantics bit-identically.
	// Requires Reliable.
	Survivable bool
	// Heartbeat, when positive, is the period of the kernels' liveness
	// sweep in Survivable mode: each node periodically sends a tiny
	// ping record to every peer it still believes alive, so a crashed
	// node is detected within one retry budget even by nodes whose
	// workload never targets it. The sweep runs only while the fault
	// plan schedules node crashes that are not yet detected, so an
	// otherwise-idle machine still quiesces. Requires Survivable.
	Heartbeat sim.Time

	// Link outage: the mesh channel from node LinkFrom toward the
	// XY-adjacent node LinkTo goes down at LinkDownAt. LinkRepairAt == 0
	// leaves it down forever. Worms routed across the dead window are
	// lost in flight. Active only when LinkDownAt > 0.
	LinkFrom, LinkTo         int
	LinkDownAt, LinkRepairAt sim.Time

	// Nodes schedules up to two node-level faults (a fixed-size array
	// keeps Config comparable).
	Nodes [2]NodeFault
}

// Defaults for the tunables left zero in Config.
const (
	DefaultRetryBudget = 16
	DefaultStallTime   = 2 * sim.Microsecond
	DefaultAckTimeout  = 50 * sim.Microsecond
	// MaxBackoff caps the exponential backoff multiplier.
	MaxBackoff = 16
	// AckEvery is the receiver's cumulative-ACK batching: one ACK per
	// this many in-order data packets (a delayed ACK covers stragglers).
	AckEvery = 4
	// AckDelay is the receiver's delayed-ACK timer.
	AckDelay = 2 * sim.Microsecond
)

// Enabled reports whether any part of the fault subsystem is active.
// With a zero Config no injector is built and every hook stays nil, so
// the simulation is bit-identical to one without this package.
func (c Config) Enabled() bool { return c != Config{} }

// RetryBudgetOrDefault resolves the retry budget.
func (c Config) RetryBudgetOrDefault() int {
	if c.RetryBudget > 0 {
		return c.RetryBudget
	}
	return DefaultRetryBudget
}

// AckTimeoutOrDefault resolves the base retransmit timeout.
func (c Config) AckTimeoutOrDefault() sim.Time {
	if c.AckTimeout > 0 {
		return c.AckTimeout
	}
	return DefaultAckTimeout
}

// StallTimeOrDefault resolves the NIC stall duration.
func (c Config) StallTimeOrDefault() sim.Time {
	if c.StallTime > 0 {
		return c.StallTime
	}
	return DefaultStallTime
}

// Decision streams. Each (node, stream) pair owns an independent
// counter, so adding a new fault type never perturbs the decision
// sequence of existing ones.
const (
	streamDrop = iota
	streamCorrupt
	streamDup
	streamStall
	numStreams
)

// Injector turns a Config into per-event decisions. The zero-rate
// streams never fire, and a nil *Injector is valid everywhere (all
// methods are nil-safe and report "no fault"), so components hold an
// *Injector unconditionally and pay one nil/zero check on hot paths.
type Injector struct {
	cfg    Config
	counts [][numStreams]uint64 // per-node decision counters
}

// NewInjector builds an injector for a machine of nodes nodes.
func NewInjector(cfg Config, nodes int) *Injector {
	return &Injector{cfg: cfg, counts: make([][numStreams]uint64, nodes)}
}

// Config returns the injector's configuration; nil-safe (zero Config).
func (i *Injector) Config() Config {
	if i == nil {
		return Config{}
	}
	return i.cfg
}

// Reliable reports whether the reliable-delivery layer is on; nil-safe.
func (i *Injector) Reliable() bool { return i != nil && i.cfg.Reliable }

// Reset clears every decision counter, returning the injector to its
// just-built state so a Reset machine replays the identical fault
// pattern; nil-safe.
func (i *Injector) Reset() {
	if i == nil {
		return
	}
	clear(i.counts)
}

// splitmix is the split-mix-64 finalizer: a bijective avalanche over
// the packed decision key.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll draws one decision for (node, stream) at simulated time now:
// true with probability ppm/1e6. The hash key mixes the seed, node,
// stream, that stream's per-node counter, and the caller's clock —
// deterministic state only. Callers pass their own engine's Now so a
// partitioned machine (where the mesh and each node run on different
// engines) draws the same decisions as a sequential one.
func (i *Injector) roll(node, stream int, ppm uint32, now sim.Time) bool {
	if i == nil || ppm == 0 {
		return false
	}
	c := &i.counts[node][stream]
	*c++
	h := splitmix(i.cfg.Seed ^ uint64(node)<<48 ^ uint64(stream)<<40 ^ *c)
	h = splitmix(h ^ uint64(now))
	return h%1_000_000 < uint64(ppm)
}

// DropPacket decides whether a packet injected by node at time now is
// lost in flight; nil-safe.
func (i *Injector) DropPacket(node int, now sim.Time) bool {
	return i.roll(node, streamDrop, i.configDrop(), now)
}

// CorruptPacket decides whether a packet injected by node at time now
// arrives damaged; nil-safe.
func (i *Injector) CorruptPacket(node int, now sim.Time) bool {
	return i.roll(node, streamCorrupt, i.configCorrupt(), now)
}

// DupPacket decides whether a packet injected by node at time now is
// delivered twice; nil-safe.
func (i *Injector) DupPacket(node int, now sim.Time) bool {
	return i.roll(node, streamDup, i.configDup(), now)
}

// StallOut decides whether node's outgoing-FIFO drain stalls at time
// now; nil-safe.
func (i *Injector) StallOut(node int, now sim.Time) bool {
	return i.roll(node, streamStall, i.configStall(), now)
}

// The config accessors below keep roll's nil check the only one on the
// hot path.
func (i *Injector) configDrop() uint32 {
	if i == nil {
		return 0
	}
	return i.cfg.DropPPM
}

func (i *Injector) configCorrupt() uint32 {
	if i == nil {
		return 0
	}
	return i.cfg.CorruptPPM
}

func (i *Injector) configDup() uint32 {
	if i == nil {
		return 0
	}
	return i.cfg.DupPPM
}

func (i *Injector) configStall() uint32 {
	if i == nil {
		return 0
	}
	return i.cfg.StallPPM
}

// StallTime returns the resolved stall duration; nil-safe.
func (i *Injector) StallTime() sim.Time {
	if i == nil {
		return 0
	}
	return i.cfg.StallTimeOrDefault()
}

package fault

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrPeerDown is the sentinel every *PeerDown matches through
// errors.Is. Kernel RPC futures and per-connection send paths resolve
// with an error wrapping it when the failure detector has declared the
// destination dead (Config.Survivable mode).
var ErrPeerDown = errors.New("peer down")

// PeerDown is the structured membership event raised when a node's
// failure detector declares a peer dead: the Survivable-mode analogue
// of the CheckRetryBudget machine check. It is local knowledge — each
// surviving node declares independently, driven by its own reliable
// flow to the peer exhausting its retry budget (workload traffic or
// the heartbeat sweep). It implements error so RPC futures can carry
// it directly.
type PeerDown struct {
	Node  int      // the peer declared dead
	At    sim.Time // when the local failure detector declared it
	Cause string
}

func (e *PeerDown) Error() string {
	return fmt.Sprintf("peer down: node %d at %v (%s)", e.Node, e.At, e.Cause)
}

// Is makes errors.Is(err, ErrPeerDown) match any *PeerDown.
func (e *PeerDown) Is(target error) bool { return target == ErrPeerDown }

package fault

import (
	"fmt"

	"repro/internal/sim"
)

// CheckKind classifies a MachineCheck.
type CheckKind uint8

const (
	// CheckOutFIFOOverflow: a packet arrived at a full Outgoing FIFO.
	// The §4 threshold interrupt normally makes this impossible; it
	// means the configured headroom cannot absorb in-flight traffic.
	CheckOutFIFOOverflow CheckKind = iota
	// CheckInFIFOHeadroom: an accepted worm overran the Incoming FIFO.
	CheckInFIFOHeadroom
	// CheckRetryBudget: a reliable-delivery sender exhausted its retry
	// budget without an acknowledgement — the destination is dead or
	// the path is unusable.
	CheckRetryBudget
	// CheckRingCorrupt: a kernel message-ring record failed its length
	// sanity or (in fault mode) CRC check. The control plane requires
	// reliable delivery.
	CheckRingCorrupt
	// CheckNoEndpoint: a worm arrived at a mesh coordinate with no
	// attached endpoint (a wiring error, surfaced instead of panicking).
	CheckNoEndpoint
	// CheckRetryStorm: the progress watchdog saw reliable-delivery
	// retransmissions advance for several consecutive check intervals
	// while no packet was delivered anywhere — a retry storm that would
	// otherwise spin until the event budget, diagnosed early.
	CheckRetryStorm
	// CheckFIFOStall: the progress watchdog saw a node's Outgoing FIFO
	// hold at or above the stall threshold for several consecutive check
	// intervals without that node sending a single packet — a wedged
	// drain path.
	CheckFIFOStall
	// CheckDeadline: the progress watchdog's wall deadline passed with
	// the simulation still running — the workload was expected to
	// quiesce by then.
	CheckDeadline
	numCheckKinds
)

var checkKindNames = [...]string{
	"outgoing-fifo-overflow",
	"incoming-fifo-headroom",
	"retry-budget-exhausted",
	"kernel-ring-corrupt",
	"no-endpoint",
	"retry-storm",
	"fifo-stall",
	"deadline-exceeded",
}

// Compile-time guards: checkKindNames lists exactly numCheckKinds names.
const _ = uint(int(numCheckKinds) - len(checkKindNames))

var _ = checkKindNames[numCheckKinds-1]

func (k CheckKind) String() string {
	if int(k) < len(checkKindNames) {
		return checkKindNames[k]
	}
	return "check(?)"
}

// MachineCheck is a structured, fatal hardware error. Components raise
// it through sim.Engine.Fail instead of panicking; it surfaces to the
// harness from Machine.RunUntilIdle / Settle / Await, carrying enough
// context to report which node failed, how, and when.
type MachineCheck struct {
	Node   int
	Kind   CheckKind
	At     sim.Time
	Detail string
}

func (e *MachineCheck) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("machine check: node %d: %v at %v", e.Node, e.Kind, e.At)
	}
	return fmt.Sprintf("machine check: node %d: %v at %v: %s", e.Node, e.Kind, e.At, e.Detail)
}

package fault

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config enabled")
	}
	for _, c := range []Config{
		{Seed: 1}, {DropPPM: 1}, {Reliable: true},
		{Nodes: [2]NodeFault{{Node: 1, Kind: NodeCrash, At: 1}}},
	} {
		if !c.Enabled() {
			t.Fatalf("config %+v not enabled", c)
		}
	}
}

func TestDefaults(t *testing.T) {
	var c Config
	if c.RetryBudgetOrDefault() != DefaultRetryBudget ||
		c.AckTimeoutOrDefault() != DefaultAckTimeout ||
		c.StallTimeOrDefault() != DefaultStallTime {
		t.Fatal("zero config did not resolve defaults")
	}
	c = Config{RetryBudget: 3, AckTimeout: sim.Microsecond, StallTime: 2 * sim.Microsecond}
	if c.RetryBudgetOrDefault() != 3 || c.AckTimeoutOrDefault() != sim.Microsecond ||
		c.StallTimeOrDefault() != 2*sim.Microsecond {
		t.Fatal("explicit tunables not honored")
	}
}

// TestRollDeterminism: decisions are a pure function of (seed, node,
// stream, count, clock) — two injectors over the same schedule agree
// decision for decision, and Reset replays the identical sequence.
func TestRollDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, DropPPM: 250_000, CorruptPPM: 100_000, DupPPM: 50_000}
	draw := func(i *Injector) []bool {
		var out []bool
		for n := 0; n < 4; n++ {
			for k := 0; k < 64; k++ {
				out = append(out, i.DropPacket(n, 0), i.CorruptPacket(n, 0), i.DupPacket(n, 0))
			}
		}
		return out
	}
	a := draw(NewInjector(cfg, 4))
	b := draw(NewInjector(cfg, 4))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged", i)
		}
	}
	inj := NewInjector(cfg, 4)
	c := draw(inj)
	inj.Reset()
	d := draw(inj)
	for i := range c {
		if c[i] != d[i] {
			t.Fatalf("Reset changed decision %d", i)
		}
	}
	// A nonzero rate actually fires somewhere in 256 draws at 25%.
	fired := false
	for _, v := range a {
		fired = fired || v
	}
	if !fired {
		t.Fatal("25% rate never fired in 768 decisions")
	}
}

func TestRollRespectsRates(t *testing.T) {
	never := NewInjector(Config{Seed: 9}, 1)
	always := NewInjector(Config{Seed: 9, DropPPM: 1_000_000}, 1)
	for i := 0; i < 100; i++ {
		if never.DropPacket(0, 0) {
			t.Fatal("zero rate fired")
		}
		if !always.DropPacket(0, 0) {
			t.Fatal("1e6 ppm rate missed")
		}
	}
	var nilInj *Injector
	if nilInj.DropPacket(0, 0) || nilInj.StallOut(0, 0) || nilInj.Reliable() {
		t.Fatal("nil injector not inert")
	}
	nilInj.Reset() // must not panic
}

func TestMachineCheck(t *testing.T) {
	mc := &MachineCheck{Node: 3, Kind: CheckRetryBudget, At: 5 * sim.Microsecond, Detail: "flow stuck"}
	var err error = mc
	var got *MachineCheck
	if !errors.As(err, &got) || got.Kind != CheckRetryBudget {
		t.Fatal("errors.As failed")
	}
	s := err.Error()
	for _, want := range []string{"node 3", CheckRetryBudget.String(), "flow stuck"} {
		if !containsStr(s, want) {
			t.Fatalf("error %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

package nipt

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/phys"
)

func TestModeStrings(t *testing.T) {
	cases := map[Mode]string{
		Unmapped:         "unmapped",
		SingleWriteAU:    "single-write",
		BlockedWriteAU:   "blocked-write",
		DeliberateUpdate: "deliberate",
	}
	for m, s := range cases {
		if m.String() != s {
			t.Fatalf("%d -> %q", m, m.String())
		}
	}
	if !SingleWriteAU.Automatic() || !BlockedWriteAU.Automatic() {
		t.Fatal("AU modes must report Automatic")
	}
	if DeliberateUpdate.Automatic() || Unmapped.Automatic() {
		t.Fatal("non-AU modes must not report Automatic")
	}
}

func TestWholePageMapping(t *testing.T) {
	tb := New(8)
	if tb.Pages() != 8 {
		t.Fatal("pages")
	}
	out := OutMapping{Mode: SingleWriteAU, Dst: packet.Coord{X: 1, Y: 0}, DstNode: 1, DstPage: 42}
	tb.MapOut(3, out)

	for _, off := range []uint32{0, 100, phys.PageSize - 4} {
		m, remote, ok := tb.Resolve(phys.PageNum(3).Addr(off))
		if !ok || m.Mode != SingleWriteAU {
			t.Fatalf("resolve off %d failed", off)
		}
		if remote != phys.PageNum(42).Addr(off) {
			t.Fatalf("remote %#x for off %d", uint32(remote), off)
		}
	}
	// Other pages unaffected.
	if _, _, ok := tb.Resolve(phys.PageNum(2).Addr(0)); ok {
		t.Fatal("unmapped page resolved")
	}
	if !tb.Entry(3).MappedOut() || tb.Entry(2).MappedOut() {
		t.Fatal("MappedOut flags wrong")
	}
	tb.UnmapOut(3)
	if _, _, ok := tb.Resolve(phys.PageNum(3).Addr(0)); ok {
		t.Fatal("resolve after unmap")
	}
}

func TestSplitPageMapping(t *testing.T) {
	// §3.2: a page split between two mappings at a configurable offset.
	tb := New(4)
	lo := OutMapping{Mode: SingleWriteAU, DstNode: 1, DstPage: 10, DstShift: 256}
	hi := OutMapping{Mode: DeliberateUpdate, DstNode: 2, DstPage: 20, DstShift: -1024}
	tb.MapOutSplit(1, 1024, lo, hi)

	m, remote, ok := tb.Resolve(phys.PageNum(1).Addr(100))
	if !ok || m.Mode != SingleWriteAU || remote != phys.PageNum(10).Addr(356) {
		t.Fatalf("lo half: %v %#x %v", m, uint32(remote), ok)
	}
	m, remote, ok = tb.Resolve(phys.PageNum(1).Addr(2048))
	if !ok || m.Mode != DeliberateUpdate || remote != phys.PageNum(20).Addr(1024) {
		t.Fatalf("hi half: %v %#x %v", m, uint32(remote), ok)
	}
	// Exactly at the split: hi half.
	if m, _, _ := tb.Resolve(phys.PageNum(1).Addr(1024)); m.Mode != DeliberateUpdate {
		t.Fatal("split boundary belongs to the hi half")
	}
	// Just below: lo half.
	if m, _, _ := tb.Resolve(phys.PageNum(1).Addr(1020)); m.Mode != SingleWriteAU {
		t.Fatal("below split belongs to the lo half")
	}
}

func TestSplitWithUnmappedHalf(t *testing.T) {
	tb := New(2)
	hi := OutMapping{Mode: SingleWriteAU, DstNode: 1, DstPage: 5, DstShift: -2048}
	tb.MapOutSplit(0, 2048, OutMapping{}, hi)
	if _, _, ok := tb.Resolve(phys.PageNum(0).Addr(100)); ok {
		t.Fatal("unmapped lo half resolved")
	}
	if _, remote, ok := tb.Resolve(phys.PageNum(0).Addr(2052)); !ok || remote != phys.PageNum(5).Addr(4) {
		t.Fatal("hi half resolution")
	}
	if !tb.Entry(0).MappedOut() {
		t.Fatal("half-mapped page should report MappedOut")
	}
}

func TestShiftOutsideRemotePageDrops(t *testing.T) {
	tb := New(2)
	// A shift that pushes high offsets past the end of the remote page.
	tb.MapOut(0, OutMapping{Mode: SingleWriteAU, DstNode: 1, DstPage: 3, DstShift: 2048})
	if _, _, ok := tb.Resolve(phys.PageNum(0).Addr(100)); !ok {
		t.Fatal("low offset should resolve")
	}
	if _, _, ok := tb.Resolve(phys.PageNum(0).Addr(3000)); ok {
		t.Fatal("offset shifted past the remote page must not resolve")
	}
}

func TestBadSplitPanics(t *testing.T) {
	tb := New(1)
	for _, split := range []uint32{0, phys.PageSize, phys.PageSize + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("split %d accepted", split)
				}
			}()
			tb.MapOutSplit(0, split, OutMapping{}, OutMapping{})
		}()
	}
}

func TestResolveConsistentWithOut(t *testing.T) {
	// Property: Resolve agrees with Entry().Out() on which half governs
	// any offset, for arbitrary split points.
	f := func(split uint16, off uint16) bool {
		s := uint32(split)%(phys.PageSize-1) + 1
		o := uint32(off) % phys.PageSize
		tb := New(1)
		lo := OutMapping{Mode: SingleWriteAU, DstPage: 1}
		hi := OutMapping{Mode: BlockedWriteAU, DstPage: 2}
		tb.MapOutSplit(0, s, lo, hi)
		m, _, ok := tb.Resolve(phys.PageNum(0).Addr(o))
		if !ok {
			return false
		}
		wantHi := o >= s
		return (m.Mode == BlockedWriteAU) == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package nipt implements the Network Interface Page Table, the key
// component of the SHRIMP network interface (paper §4).
//
// The NIPT has one entry per page of the node's physical memory. Each
// entry records whether (and how) that page is mapped out to a physical
// page on another node, and whether the page is mapped in as a receive
// destination. Per §3.2, a page may be split between two outgoing
// mappings at a configurable offset, so an entry holds up to two
// outgoing halves.
package nipt

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/phys"
)

// Mode is an outgoing mapping's update strategy (§2, §4.1, §4.3).
type Mode uint8

const (
	// Unmapped means the page (or page half) has no outgoing mapping.
	Unmapped Mode = iota
	// SingleWriteAU: every snooped store becomes one packet immediately.
	SingleWriteAU
	// BlockedWriteAU: consecutive same-page stores within the merge
	// window coalesce into one packet before transmission.
	BlockedWriteAU
	// DeliberateUpdate: stores update only local memory; data moves when
	// the process issues an explicit user-level DMA send command.
	DeliberateUpdate
)

func (m Mode) String() string {
	switch m {
	case Unmapped:
		return "unmapped"
	case SingleWriteAU:
		return "single-write"
	case BlockedWriteAU:
		return "blocked-write"
	case DeliberateUpdate:
		return "deliberate"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Automatic reports whether stores to the mapping propagate on their own.
func (m Mode) Automatic() bool { return m == SingleWriteAU || m == BlockedWriteAU }

// OutMapping is one outgoing mapping half: local offsets covered by this
// half send to DstPage on the node at DstCoord, preserving the offset
// (shifted for non-page-aligned split mappings by DstShift).
type OutMapping struct {
	Mode     Mode
	Dst      packet.Coord
	DstNode  packet.NodeID
	DstPage  phys.PageNum
	DstShift int32 // added to the local offset to form the remote offset
}

// Entry is one NIPT entry: the state of one local physical page.
//
// Split is the byte offset at which the page divides between the Lo and
// Hi outgoing halves; Split == 0 means the Lo half covers the whole page
// (the common, unsplit case) and Hi must be Unmapped.
type Entry struct {
	Lo    OutMapping
	Hi    OutMapping
	Split uint32

	// MappedIn marks the page as a receive destination referenced by a
	// remote NIPT. The kernel consults it for the paging policy (§4.4).
	MappedIn bool
	// RecvInterrupt requests a CPU interrupt when data arrives for this
	// page (set through a VM-mapped command, §4.2).
	RecvInterrupt bool
	// KernelRing marks the page as a boot-time kernel message ring.
	KernelRing bool
}

// Out returns the outgoing mapping governing the given page offset.
func (e *Entry) Out(off uint32) *OutMapping {
	if e.Split != 0 && off >= e.Split {
		return &e.Hi
	}
	return &e.Lo
}

// MappedOut reports whether any part of the page has an outgoing mapping.
func (e *Entry) MappedOut() bool {
	return e.Lo.Mode != Unmapped || (e.Split != 0 && e.Hi.Mode != Unmapped)
}

// Table is the page table of one network interface.
type Table struct {
	entries []Entry
	scope   *obs.NodeScope // nil when metrics are disabled
}

// New returns a table covering the given number of physical pages.
func New(pages int) *Table { return &Table{entries: make([]Entry, pages)} }

// Pages returns the number of entries.
func (t *Table) Pages() int { return len(t.entries) }

// SetObs attaches the node's metrics scope (nil detaches). Resolve
// counts lookups and misses through it.
func (t *Table) SetObs(s *obs.NodeScope) { t.scope = s }

// Entry returns the entry for page p. The pointer stays valid for the
// table's lifetime; callers mutate entries through it (the hardware
// analogue is the kernel writing NIPT entries through the NIC's
// configuration port).
func (t *Table) Entry(p phys.PageNum) *Entry {
	return &t.entries[p]
}

// Reset clears every entry, returning the table to its just-built
// state. The entry array is reused in place.
func (t *Table) Reset() {
	clear(t.entries)
}

// MapOut installs an outgoing mapping covering the whole page.
func (t *Table) MapOut(p phys.PageNum, m OutMapping) {
	e := t.Entry(p)
	e.Lo = m
	e.Hi = OutMapping{}
	e.Split = 0
}

// MapOutSplit installs a split mapping: offsets < split use lo and
// offsets >= split use hi. split must lie inside the page.
func (t *Table) MapOutSplit(p phys.PageNum, split uint32, lo, hi OutMapping) {
	if split == 0 || split >= phys.PageSize {
		panic(fmt.Sprintf("nipt: split offset %d outside page", split))
	}
	e := t.Entry(p)
	e.Lo, e.Hi, e.Split = lo, hi, split
}

// UnmapOut removes all outgoing mappings from page p.
func (t *Table) UnmapOut(p phys.PageNum) {
	e := t.Entry(p)
	e.Lo, e.Hi, e.Split = OutMapping{}, OutMapping{}, 0
}

// Resolve translates a local physical address through the table. It
// reports the mapping governing the address and the remote physical
// address the data should be delivered to, or ok=false when the address
// is not mapped out.
func (t *Table) Resolve(a phys.PAddr) (m *OutMapping, remote phys.PAddr, ok bool) {
	t.scope.Inc(obs.CtrNIPTLookups)
	e := t.Entry(a.Page())
	m = e.Out(a.Offset())
	if m.Mode == Unmapped {
		t.scope.Inc(obs.CtrNIPTMisses)
		return nil, 0, false
	}
	off := int64(a.Offset()) + int64(m.DstShift)
	if off < 0 || off >= phys.PageSize {
		// A shifted split mapping can push an offset outside the remote
		// page; the kernel must set up splits so this cannot happen, and
		// the hardware would drop such a write.
		t.scope.Inc(obs.CtrNIPTMisses)
		return nil, 0, false
	}
	return m, m.DstPage.Addr(uint32(off)), true
}

// Package perf measures simulator throughput: discrete events dispatched
// per wall-clock second, heap allocations per operation, and the ratio of
// simulated time to wall time. cmd/shrimp-bench drives it to produce the
// BENCH_*.json evidence files referenced by DESIGN.md.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/sim"
)

// Sample is what one measured operation reports back: how many DES
// events it dispatched and how much simulated time it covered, plus any
// experiment-specific metrics (latency, bandwidth, ...). Metrics from
// the last iteration win; they are expected to be deterministic.
type Sample struct {
	Events  uint64
	SimTime sim.Time
	Metrics map[string]float64
}

// Result aggregates one benchmark's measurements.
type Result struct {
	Name            string             `json:"name"`
	Iterations      int                `json:"iterations"`
	WallNSPerOp     float64            `json:"wall_ns_per_op"`
	EventsPerOp     float64            `json:"events_per_op"`
	EventsPerSec    float64            `json:"events_per_sec"`
	SimUSPerOp      float64            `json:"sim_us_per_op"`
	SimWallRatio    float64            `json:"sim_wall_ratio"`
	AllocsPerOp     float64            `json:"allocs_per_op"`
	AllocBytesPerOp float64            `json:"alloc_bytes_per_op"`
	Metrics         map[string]float64 `json:"metrics,omitempty"`
}

// Measure runs fn iters times (after one untimed warm-up) and aggregates
// wall time, event throughput, simulated/wall ratio and allocation
// counts. fn must perform one complete, self-contained operation.
func Measure(name string, iters int, fn func() Sample) Result {
	if iters <= 0 {
		iters = 1
	}
	fn() // warm-up: one-time initialization costs stay out of the timing
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var events uint64
	var simTime sim.Time
	var metrics map[string]float64
	for i := 0; i < iters; i++ {
		s := fn()
		events += s.Events
		simTime += s.SimTime
		if s.Metrics != nil {
			metrics = s.Metrics
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	wallNS := float64(wall.Nanoseconds())
	if wallNS <= 0 {
		wallNS = 1
	}
	n := float64(iters)
	return Result{
		Name:            name,
		Iterations:      iters,
		WallNSPerOp:     wallNS / n,
		EventsPerOp:     float64(events) / n,
		EventsPerSec:    float64(events) / (wallNS / 1e9),
		SimUSPerOp:      simTime.Microseconds() / n,
		SimWallRatio:    float64(simTime) / (wallNS * 1000), // both in ps
		AllocsPerOp:     float64(after.Mallocs-before.Mallocs) / n,
		AllocBytesPerOp: float64(after.TotalAlloc-before.TotalAlloc) / n,
		Metrics:         metrics,
	}
}

// Report is the top-level JSON document shrimp-bench emits.
type Report struct {
	Paper     string `json:"paper"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// GOMAXPROCS is the scheduler's parallelism limit at report time —
	// the number of goroutines (sweep workers × partition engines) that
	// can actually run at once; 0 for reports that predate the field.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// Workers is the sweep worker-pool size the parallel benchmarks ran
	// with (the -parallel flag); 0 for reports that predate the pool.
	Workers int `json:"workers,omitempty"`
	// Partitions lists the intra-machine partition counts the mesh/par
	// benchmarks ran with (the -partitions flag); empty for reports that
	// predate the partitioned engine.
	Partitions []int    `json:"partitions,omitempty"`
	Results    []Result `json:"results"`
}

// NewReport builds a report shell with the runtime environment filled in.
func NewReport(paper string) *Report {
	return &Report{
		Paper:      paper,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report previously written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("perf: parsing report: %w", err)
	}
	return &rep, nil
}

// Regression is one benchmark that got worse than its baseline beyond
// tolerance.
type Regression struct {
	Name   string
	Metric string  // "events_per_sec" or "allocs_per_op"
	Old    float64
	New    float64
	Change float64 // fractional change, positive = worse
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.0f -> %.0f (%.1f%% worse)",
		r.Name, r.Metric, r.Old, r.New, 100*r.Change)
}

// Compare flags benchmarks of cur that regressed against base by more
// than tol (0.10 = 10%): events/sec lower, or allocs/op higher.
// Benchmarks present in only one report are ignored — new benchmarks
// are not regressions, and retired ones are not failures. A zero-alloc
// baseline allows one alloc/op of runtime noise before flagging.
func Compare(base, cur *Report, tol float64) []Regression {
	old := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		old[r.Name] = r
	}
	var regs []Regression
	for _, n := range cur.Results {
		b, ok := old[n.Name]
		if !ok {
			continue
		}
		if b.EventsPerSec > 0 {
			if drop := 1 - n.EventsPerSec/b.EventsPerSec; drop > tol {
				regs = append(regs, Regression{n.Name, "events_per_sec", b.EventsPerSec, n.EventsPerSec, drop})
			}
		}
		if b.AllocsPerOp > 0 {
			if rise := n.AllocsPerOp/b.AllocsPerOp - 1; rise > tol {
				regs = append(regs, Regression{n.Name, "allocs_per_op", b.AllocsPerOp, n.AllocsPerOp, rise})
			}
		} else if n.AllocsPerOp > 1 {
			regs = append(regs, Regression{n.Name, "allocs_per_op", b.AllocsPerOp, n.AllocsPerOp, n.AllocsPerOp})
		}
	}
	return regs
}

package perf

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

func TestMeasureAggregates(t *testing.T) {
	calls := 0
	r := Measure("toy", 4, func() Sample {
		calls++
		eng := sim.NewEngine()
		for i := 0; i < 100; i++ {
			eng.At(sim.Time(i)*sim.Nanosecond, func() {})
		}
		eng.Run()
		return Sample{
			Events:  eng.Fired(),
			SimTime: eng.Now(),
			Metrics: map[string]float64{"answer": 42},
		}
	})
	if calls != 5 { // 4 measured + 1 warm-up
		t.Fatalf("fn called %d times, want 5", calls)
	}
	if r.Iterations != 4 || r.EventsPerOp != 100 {
		t.Fatalf("got iterations=%d events/op=%v", r.Iterations, r.EventsPerOp)
	}
	if r.EventsPerSec <= 0 || r.WallNSPerOp <= 0 {
		t.Fatalf("non-positive throughput: %+v", r)
	}
	if r.SimUSPerOp != 0.099 { // events at 0..99 ns
		t.Fatalf("sim-us/op = %v, want 0.099", r.SimUSPerOp)
	}
	if r.Metrics["answer"] != 42 {
		t.Fatalf("metrics not carried: %v", r.Metrics)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := NewReport("test-paper")
	rep.Results = append(rep.Results, Result{Name: "x", Iterations: 1, EventsPerSec: 1e6})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Paper != "test-paper" || len(back.Results) != 1 || back.Results[0].Name != "x" {
		t.Fatalf("round trip mangled report: %+v", back)
	}
	if back.GoVersion == "" || back.CPUs <= 0 {
		t.Fatalf("environment not recorded: %+v", back)
	}
	// ReadReport parses what WriteJSON wrote.
	read, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if read.Paper != rep.Paper || len(read.Results) != 1 {
		t.Fatalf("ReadReport mangled report: %+v", read)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := &Report{Results: []Result{
		{Name: "a", EventsPerSec: 1000, AllocsPerOp: 100},
		{Name: "b", EventsPerSec: 1000, AllocsPerOp: 0},
		{Name: "gone", EventsPerSec: 1000},
	}}
	cur := &Report{Results: []Result{
		{Name: "a", EventsPerSec: 800, AllocsPerOp: 150}, // both worse
		{Name: "b", EventsPerSec: 990, AllocsPerOp: 0.5}, // within tolerance
		{Name: "new", EventsPerSec: 1},                   // no baseline: ignored
	}}
	regs := Compare(base, cur, 0.10)
	if len(regs) != 2 {
		t.Fatalf("regressions %v, want 2 on %q", regs, "a")
	}
	for _, r := range regs {
		if r.Name != "a" {
			t.Fatalf("unexpected regression %v", r)
		}
		if r.String() == "" {
			t.Fatal("empty regression description")
		}
	}
	// Improvements are never flagged.
	better := &Report{Results: []Result{{Name: "a", EventsPerSec: 5000, AllocsPerOp: 1}}}
	if regs := Compare(base, better, 0.10); len(regs) != 0 {
		t.Fatalf("flagged improvements: %v", regs)
	}
	// A zero-alloc baseline tolerates sub-1 noise, not real allocations.
	leak := &Report{Results: []Result{{Name: "b", EventsPerSec: 1000, AllocsPerOp: 40}}}
	if regs := Compare(base, leak, 0.10); len(regs) != 1 || regs[0].Metric != "allocs_per_op" {
		t.Fatalf("zero-alloc baseline leak not flagged: %v", regs)
	}
}

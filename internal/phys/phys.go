// Package phys models a node's physical memory: a flat array of page
// frames addressed by physical byte address, plus the command address
// space "above" it that belongs to the network interface (see §4.2 of the
// paper). Memory itself is passive; timing belongs to the bus models.
package phys

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the page size used throughout the system, matching the
// i486/Pentium 4 KB page.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PAddr is a physical byte address on one node. Addresses below the
// memory size address DRAM; addresses in [CmdBase, CmdBase+size) address
// the NIC command space and never touch RAM.
type PAddr uint32

// PageNum is a physical page frame number.
type PageNum uint32

// Page returns the page frame containing a.
func (a PAddr) Page() PageNum { return PageNum(a >> PageShift) }

// Offset returns the byte offset of a within its page.
func (a PAddr) Offset() uint32 { return uint32(a) & (PageSize - 1) }

// Addr returns the physical address of byte off within page p.
func (p PageNum) Addr(off uint32) PAddr { return PAddr(uint32(p)<<PageShift | off&(PageSize-1)) }

// Memory is the DRAM of a single node.
type Memory struct {
	data  []byte
	pages int
}

// NewMemory allocates DRAM with the given number of page frames.
func NewMemory(pages int) *Memory {
	if pages <= 0 {
		panic("phys: memory must have at least one page")
	}
	return &Memory{data: make([]byte, pages*PageSize), pages: pages}
}

// Pages returns the number of page frames.
func (m *Memory) Pages() int { return m.pages }

// Size returns the DRAM size in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.data)) }

// CmdBase returns the base physical address of the NIC command space:
// the paper assigns one command page per physical page, at a fixed
// distance equal to the memory size.
func (m *Memory) CmdBase() PAddr { return PAddr(m.Size()) }

// IsCmd reports whether a falls in the command address space.
func (m *Memory) IsCmd(a PAddr) bool { return uint32(a) >= m.Size() && uint32(a) < 2*m.Size() }

// CmdPageFor returns the physical address of the command page controlling
// DRAM page p.
func (m *Memory) CmdPageFor(p PageNum) PAddr { return m.CmdBase() + PAddr(uint32(p)<<PageShift) }

// PageForCmd returns the DRAM page controlled by command address a.
func (m *Memory) PageForCmd(a PAddr) PageNum {
	if !m.IsCmd(a) {
		panic(fmt.Sprintf("phys: %#x is not a command address", uint32(a)))
	}
	return PAddr(uint32(a) - m.Size()).Page()
}

func (m *Memory) check(a PAddr, n int) {
	if int(a)+n > len(m.data) {
		panic(fmt.Sprintf("phys: access [%#x,%#x) beyond %#x", uint32(a), int(a)+n, len(m.data)))
	}
}

// Read copies n bytes starting at a into a fresh slice.
func (m *Memory) Read(a PAddr, n int) []byte {
	m.check(a, n)
	out := make([]byte, n)
	copy(out, m.data[a:])
	return out
}

// ReadInto copies len(dst) bytes starting at a into dst.
func (m *Memory) ReadInto(a PAddr, dst []byte) {
	m.check(a, len(dst))
	copy(dst, m.data[a:])
}

// Write copies b into memory at a.
func (m *Memory) Write(a PAddr, b []byte) {
	m.check(a, len(b))
	copy(m.data[a:], b)
}

// Read32 reads a little-endian 32-bit word at a.
func (m *Memory) Read32(a PAddr) uint32 {
	m.check(a, 4)
	return binary.LittleEndian.Uint32(m.data[a:])
}

// Write32 writes a little-endian 32-bit word at a.
func (m *Memory) Write32(a PAddr, v uint32) {
	m.check(a, 4)
	binary.LittleEndian.PutUint32(m.data[a:], v)
}

// Read8 reads the byte at a.
func (m *Memory) Read8(a PAddr) byte {
	m.check(a, 1)
	return m.data[a]
}

// Write8 writes the byte at a.
func (m *Memory) Write8(a PAddr, v byte) {
	m.check(a, 1)
	m.data[a] = v
}

// ZeroPage clears page p.
func (m *Memory) ZeroPage(p PageNum) {
	a := p.Addr(0)
	m.check(a, PageSize)
	clear(m.data[a : a+PageSize])
}

// Package phys models a node's physical memory: a flat array of page
// frames addressed by physical byte address, plus the command address
// space "above" it that belongs to the network interface (see §4.2 of the
// paper). Memory itself is passive; timing belongs to the bus models.
package phys

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the page size used throughout the system, matching the
// i486/Pentium 4 KB page.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PAddr is a physical byte address on one node. Addresses below the
// memory size address DRAM; addresses in [CmdBase, CmdBase+size) address
// the NIC command space and never touch RAM.
type PAddr uint32

// PageNum is a physical page frame number.
type PageNum uint32

// Page returns the page frame containing a.
func (a PAddr) Page() PageNum { return PageNum(a >> PageShift) }

// Offset returns the byte offset of a within its page.
func (a PAddr) Offset() uint32 { return uint32(a) & (PageSize - 1) }

// Addr returns the physical address of byte off within page p.
func (p PageNum) Addr(off uint32) PAddr { return PAddr(uint32(p)<<PageShift | off&(PageSize-1)) }

// Memory is the DRAM of a single node. Page frames are materialized
// lazily: a nil frame reads as zeros and is allocated on first write, so
// building a machine with many nodes does not pay for zeroing DRAM that
// the workload never touches.
type Memory struct {
	frames [][]byte
	size   uint32
}

// NewMemory allocates DRAM with the given number of page frames.
func NewMemory(pages int) *Memory {
	if pages <= 0 {
		panic("phys: memory must have at least one page")
	}
	return &Memory{frames: make([][]byte, pages), size: uint32(pages) * PageSize}
}

// Pages returns the number of page frames.
func (m *Memory) Pages() int { return len(m.frames) }

// Size returns the DRAM size in bytes.
func (m *Memory) Size() uint32 { return m.size }

// CmdBase returns the base physical address of the NIC command space:
// the paper assigns one command page per physical page, at a fixed
// distance equal to the memory size.
func (m *Memory) CmdBase() PAddr { return PAddr(m.Size()) }

// IsCmd reports whether a falls in the command address space.
func (m *Memory) IsCmd(a PAddr) bool { return uint32(a) >= m.Size() && uint32(a) < 2*m.Size() }

// CmdPageFor returns the physical address of the command page controlling
// DRAM page p.
func (m *Memory) CmdPageFor(p PageNum) PAddr { return m.CmdBase() + PAddr(uint32(p)<<PageShift) }

// PageForCmd returns the DRAM page controlled by command address a.
func (m *Memory) PageForCmd(a PAddr) PageNum {
	if !m.IsCmd(a) {
		panic(fmt.Sprintf("phys: %#x is not a command address", uint32(a)))
	}
	return PAddr(uint32(a) - m.Size()).Page()
}

func (m *Memory) check(a PAddr, n int) {
	if uint64(a)+uint64(n) > uint64(m.size) {
		panic(fmt.Sprintf("phys: access [%#x,%#x) beyond %#x", uint32(a), uint64(a)+uint64(n), m.size))
	}
}

// frame returns the backing store for page p, allocating it on first use.
func (m *Memory) frame(p int) []byte {
	f := m.frames[p]
	if f == nil {
		f = make([]byte, PageSize)
		m.frames[p] = f
	}
	return f
}

// Read copies n bytes starting at a into a fresh slice.
func (m *Memory) Read(a PAddr, n int) []byte {
	out := make([]byte, n)
	m.ReadInto(a, out)
	return out
}

// ReadInto copies len(dst) bytes starting at a into dst.
func (m *Memory) ReadInto(a PAddr, dst []byte) {
	m.check(a, len(dst))
	for len(dst) > 0 {
		off := int(a.Offset())
		n := PageSize - off
		if n > len(dst) {
			n = len(dst)
		}
		if f := m.frames[a>>PageShift]; f != nil {
			copy(dst[:n], f[off:])
		} else {
			clear(dst[:n])
		}
		dst = dst[n:]
		a += PAddr(n)
	}
}

// Write copies b into memory at a.
func (m *Memory) Write(a PAddr, b []byte) {
	m.check(a, len(b))
	for len(b) > 0 {
		off := int(a.Offset())
		n := PageSize - off
		if n > len(b) {
			n = len(b)
		}
		copy(m.frame(int(a >> PageShift))[off:], b[:n])
		b = b[n:]
		a += PAddr(n)
	}
}

// Read32 reads a little-endian 32-bit word at a.
func (m *Memory) Read32(a PAddr) uint32 {
	m.check(a, 4)
	if off := a.Offset(); off <= PageSize-4 {
		f := m.frames[a>>PageShift]
		if f == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(f[off:])
	}
	var b [4]byte
	m.ReadInto(a, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// Write32 writes a little-endian 32-bit word at a.
func (m *Memory) Write32(a PAddr, v uint32) {
	m.check(a, 4)
	if off := a.Offset(); off <= PageSize-4 {
		binary.LittleEndian.PutUint32(m.frame(int(a >> PageShift))[off:], v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.Write(a, b[:])
}

// Read8 reads the byte at a.
func (m *Memory) Read8(a PAddr) byte {
	m.check(a, 1)
	f := m.frames[a>>PageShift]
	if f == nil {
		return 0
	}
	return f[a.Offset()]
}

// Write8 writes the byte at a.
func (m *Memory) Write8(a PAddr, v byte) {
	m.check(a, 1)
	m.frame(int(a >> PageShift))[a.Offset()] = v
}

// Reset zeroes all of memory, returning it to its just-built state.
// Frames that were materialized are cleared in place rather than
// dropped: a reset machine is about to run another workload that will
// likely touch the same pages, so reusing the backing arrays avoids
// re-paying the allocation. A cleared frame is observationally identical
// to a nil one (both read as zeros).
func (m *Memory) Reset() {
	for _, f := range m.frames {
		if f != nil {
			clear(f)
		}
	}
}

// ZeroPage clears page p. A frame that was never materialized stays
// nil (reads as zeros), so boot remains lazy; a materialized frame is
// cleared in place so that the common caller — the kernel recycling a
// frame — reuses the backing array instead of re-allocating it on the
// next write.
func (m *Memory) ZeroPage(p PageNum) {
	a := p.Addr(0)
	m.check(a, PageSize)
	if f := m.frames[p]; f != nil {
		clear(f)
	}
}

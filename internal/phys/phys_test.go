package phys

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddressArithmetic(t *testing.T) {
	a := PAddr(5*PageSize + 123)
	if a.Page() != 5 || a.Offset() != 123 {
		t.Fatalf("decompose: page=%d off=%d", a.Page(), a.Offset())
	}
	if PageNum(5).Addr(123) != a {
		t.Fatal("compose mismatch")
	}
	// Offset masking.
	if PageNum(2).Addr(PageSize+7) != PageNum(2).Addr(7) {
		t.Fatal("offset not masked to page")
	}
}

func TestAddressRoundTrip(t *testing.T) {
	f := func(page uint16, off uint16) bool {
		o := uint32(off) % PageSize
		a := PageNum(page).Addr(o)
		return a.Page() == PageNum(page) && a.Offset() == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory(4)
	if m.Pages() != 4 || m.Size() != 4*PageSize {
		t.Fatal("geometry")
	}
	m.Write32(100, 0xdeadbeef)
	if m.Read32(100) != 0xdeadbeef {
		t.Fatal("word round trip")
	}
	m.Write8(104, 0x7f)
	if m.Read8(104) != 0x7f {
		t.Fatal("byte round trip")
	}
	blob := []byte{1, 2, 3, 4, 5, 6, 7}
	m.Write(200, blob)
	if !bytes.Equal(m.Read(200, 7), blob) {
		t.Fatal("slice round trip")
	}
	dst := make([]byte, 7)
	m.ReadInto(200, dst)
	if !bytes.Equal(dst, blob) {
		t.Fatal("ReadInto")
	}
}

func TestReadIsACopy(t *testing.T) {
	m := NewMemory(1)
	m.Write32(0, 42)
	b := m.Read(0, 4)
	b[0] = 99
	if m.Read32(0) != 42 {
		t.Fatal("Read aliases memory")
	}
}

func TestZeroPage(t *testing.T) {
	m := NewMemory(2)
	m.Write32(PageSize+8, 7)
	m.ZeroPage(1)
	if m.Read32(PageSize+8) != 0 {
		t.Fatal("ZeroPage left data")
	}
	// Neighboring page untouched.
	m.Write32(8, 9)
	m.ZeroPage(1)
	if m.Read32(8) != 9 {
		t.Fatal("ZeroPage crossed page boundary")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := NewMemory(1)
	for _, fn := range []func(){
		func() { m.Read32(PageSize - 2) },
		func() { m.Write(PAddr(PageSize-1), []byte{1, 2}) },
		func() { m.Read(PageSize, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic for out-of-range access")
				}
			}()
			fn()
		}()
	}
}

func TestCommandSpace(t *testing.T) {
	m := NewMemory(8)
	if m.CmdBase() != PAddr(8*PageSize) {
		t.Fatal("CmdBase")
	}
	if m.IsCmd(100) || !m.IsCmd(m.CmdBase()+100) {
		t.Fatal("IsCmd classification")
	}
	if m.IsCmd(PAddr(16 * PageSize)) {
		t.Fatal("beyond command space should not classify as command")
	}
	// One command page per memory page at a constant distance (§4.2).
	for p := PageNum(0); p < 8; p++ {
		c := m.CmdPageFor(p)
		if !m.IsCmd(c) {
			t.Fatalf("command page for %d not in command space", p)
		}
		if m.PageForCmd(c) != p {
			t.Fatalf("round trip page %d", p)
		}
		if m.PageForCmd(c+123) != p {
			t.Fatal("in-page command offsets must map to the same page")
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("PageForCmd on a DRAM address must panic")
			}
		}()
		m.PageForCmd(50)
	}()
}

// Package exp is a deterministic parallel sweep runner for experiment
// harnesses. Independent sweep points (hop distances, transfer sizes,
// merge windows, generations, paging policies) fan out across a pool of
// worker goroutines, each owning private state — in this repository, its
// own Machine and sim.Engine — and results are collected in input order,
// so the output is bit-identical to running the points sequentially.
//
// The determinism contract, which DESIGN.md §6 documents and the
// differential tests in internal/core enforce:
//
//   - each worker owns all mutable state it touches (one engine per
//     worker; nothing simulated is shared between workers);
//   - each point's result is a pure function of its index and the
//     worker-private state, which the point function must leave (or
//     reset) in a fresh-equivalent condition;
//   - results land at out[i], never appended in completion order.
//
// Under that contract, which points run on which worker — and in which
// wall-clock order — cannot be observed in the results.
package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: GOMAXPROCS, the number of goroutines the runtime will
// actually execute in parallel.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// CapWorkers composes outer sweep parallelism with inner per-point
// parallelism: when every sweep point runs a machine split into
// partitions engines (each backed by its own goroutine during node
// phases), the effective concurrency is workers × partitions, so the
// outer worker count is capped to keep that product within the host's
// CPU count. workers <= 0 resolves to DefaultWorkers() first; the
// result is always at least 1, and partitions <= 1 (a sequential inner
// machine) leaves the worker count unchanged.
func CapWorkers(workers, partitions int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if partitions <= 1 {
		return workers
	}
	if limit := runtime.NumCPU() / partitions; workers > limit {
		workers = limit
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// Map runs fn over the indices 0..n-1 on a pool of workers goroutines
// and returns the n results in index order. Each worker calls newState
// once and passes that private state to every fn call it executes, so
// expensive per-worker resources (a Machine) amortize across the points
// the worker happens to claim. workers <= 0 selects DefaultWorkers();
// workers == 1 (or n <= 1) runs inline on the calling goroutine — the
// sequential path the parallel output must be bit-identical to.
//
// Points are claimed dynamically (an atomic counter), which balances
// uneven point costs; the contract above makes the claim order
// unobservable in the results.
func Map[S, R any](workers, n int, newState func() S, fn func(s S, i int) R) []R {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	out := make([]R, n)
	if workers == 1 {
		s := newState()
		for i := 0; i < n; i++ {
			out[i] = fn(s, i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := newState()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(s, i)
			}
		}()
	}
	wg.Wait()
	return out
}

package exp

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// Results must land in input order regardless of worker count or claim
// order, with every index computed exactly once.
func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		got := Map(workers, 100, func() int { return 0 }, func(_ int, i int) int {
			return i * i
		})
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// Driving the pool with far more points than workers (the shape the
// -race CI smoke exercises) must create exactly `workers` states and
// hand every point a state created by the pool.
func TestMapOversubscribed(t *testing.T) {
	const workers, points = 4, 97
	var states atomic.Int32
	type state struct{ calls int }
	var total atomic.Int32
	Map(workers, points, func() *state {
		states.Add(1)
		return &state{}
	}, func(s *state, i int) int {
		s.calls++ // worker-private: never racy
		total.Add(1)
		return i
	})
	if got := states.Load(); got != workers {
		t.Fatalf("created %d states, want %d", got, workers)
	}
	if got := total.Load(); got != points {
		t.Fatalf("fn ran %d times, want %d", got, points)
	}
}

func TestMapEdgeCases(t *testing.T) {
	if got := Map(4, 0, func() int { return 0 }, func(int, int) int { return 1 }); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
	// workers > n must clamp, not spin up idle goroutines that race on
	// an empty range.
	got := Map(16, 2, func() int { return 0 }, func(_ int, i int) int { return i })
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("workers>n: got %v", got)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) || got < 1 {
		t.Fatalf("DefaultWorkers() = %d", got)
	}
}

func TestCapWorkers(t *testing.T) {
	ncpu := runtime.NumCPU()
	cases := []struct {
		workers, partitions, want int
	}{
		{4, 1, 4},                     // sequential inner machine: unchanged
		{4, 0, 4},                     // partitions <= 1 treated alike
		{3, ncpu + 1, 1},              // product can never fit: floor of one worker
		{1, ncpu, 1},                  // never below one
		{0, 1, DefaultWorkers()},      // workers <= 0 resolves to the default first
		{ncpu * 2, 2, max(ncpu/2, 1)}, // oversubscribed product clamps to NumCPU
	}
	for _, c := range cases {
		if got := CapWorkers(c.workers, c.partitions); got != c.want {
			t.Errorf("CapWorkers(%d, %d) = %d, want %d", c.workers, c.partitions, got, c.want)
		}
	}
	// The invariant itself: workers × partitions never exceeds NumCPU
	// once an inner machine is partitioned.
	for w := 0; w <= ncpu*2; w++ {
		for p := 2; p <= ncpu*2; p++ {
			got := CapWorkers(w, p)
			if got < 1 {
				t.Fatalf("CapWorkers(%d, %d) = %d < 1", w, p, got)
			}
			if got > 1 && got*p > ncpu {
				t.Fatalf("CapWorkers(%d, %d) = %d oversubscribes: %d×%d > %d", w, p, got, got, p, ncpu)
			}
		}
	}
}

package nic

import (
	"repro/internal/bus"
	"repro/internal/nipt"
	"repro/internal/obs"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file implements VM-mapped commands (§4.2) and the deliberate-
// update DMA engine with its LOCK CMPXCHG initiation protocol (§4.3).
//
// The command address space shadows physical memory one page for one
// page. A read of a command address returns the DMA engine status:
//
//	0                          engine free (a transfer just initiated
//	                           from this address, or any other, is done)
//	remaining<<1 | match       engine busy; match is set iff the read
//	                           address corresponds to the engine's
//	                           current transfer base address
//
// A write of 1..1024 to a command address is a transfer command: "send
// that many words starting at the corresponding data address". It is
// accepted only when the engine is free and the address is mapped for
// deliberate update — which is exactly when the preceding locked read
// cycle returned zero, so a LOCK CMPXCHG with EAX=0 atomically tests
// and starts the engine.
//
// Writes with bit 31 set are control commands (always accepted):
//
//	0x80000000  clear interrupt-on-arrival for the page
//	0x80000001  set interrupt-on-arrival for the page
//	0x80000002  switch the page's outgoing mapping to single-write
//	0x80000003  switch the page's outgoing mapping to blocked-write
const (
	CmdClearRecvInterrupt = 0x8000_0000
	CmdSetRecvInterrupt   = 0x8000_0001
	CmdModeSingleWrite    = 0x8000_0002
	CmdModeBlockedWrite   = 0x8000_0003
)

// MaxDMAWords is the largest deliberate-update transfer: one page
// (protection and mapping are per page, §4.3).
const MaxDMAWords = phys.PageSize / 4

type dmaState struct {
	busy      bool
	base      phys.PAddr // base address of the current transfer
	cur       phys.PAddr // next source address to read
	remaining uint32     // words left
	chunking  bool       // a chunk event is already scheduled

	// In-flight chunk state, valid while chunking: the scratch read
	// buffer is reused across chunks, and the pending fields carry the
	// mapping resolution from the bus read to the packetize event.
	chunkBuf        []byte
	pendingMap      *nipt.OutMapping
	pendingRemote   phys.PAddr
	pendingLen      int
	pendingSrcPage  phys.PageNum
	pendingStart    sim.Time // instant the chunk's bus read was issued
	pendingFinished bool
}

// dmaChunkEvent fires when the chunk's Xpress read completes: the data is
// packetized and the engine moves to the next chunk. At most one is in
// flight per NIC (dma.chunking).
type dmaChunkEvent struct{ n *NIC }

func (ev *dmaChunkEvent) Fire() {
	n := ev.n
	d := &n.dma
	n.flushMerge()
	// Packetize the window MaxPayload bytes at a time. With DMAWindow=1
	// this is exactly one packet per bus read, as before; larger windows
	// carry several packets' worth of data per read, framed identically.
	buf := d.chunkBuf[:d.pendingLen]
	for off := 0; off < len(buf); off += n.cfg.MaxPayload {
		end := off + n.cfg.MaxPayload
		if end > len(buf) {
			end = len(buf)
		}
		n.emit(d.pendingMap, d.pendingRemote+phys.PAddr(off), buf[off:end], d.pendingSrcPage,
			d.pendingStart, obs.SpanDeliberate)
	}
	d.chunking = false
	if d.pendingFinished {
		d.busy = false
		n.stats.DMATransfers++
		n.Tracer.Record(int(n.node), trace.DMADone, 0, 0)
		return
	}
	d.kick(n)
}

// dataAddr converts a command address to the data address it controls.
func (n *NIC) dataAddr(a phys.PAddr) phys.PAddr {
	return a - n.xbus.Memory().CmdBase()
}

// CmdRead implements bus.CommandTarget.
func (n *NIC) CmdRead(a phys.PAddr) uint32 {
	if !n.dma.busy {
		return 0
	}
	v := n.dma.remaining << 1
	if n.dataAddr(a) == n.dma.base {
		v |= 1
	}
	return v
}

// CmdWrite implements bus.CommandTarget. It reports whether the command
// was accepted; the locked CMPXCHG protocol surfaces rejection to user
// code as a cleared ZF.
func (n *NIC) CmdWrite(a phys.PAddr, v uint32) bool {
	da := n.dataAddr(a)
	page := da.Page()
	entry := n.table.Entry(page)
	switch v {
	case CmdClearRecvInterrupt:
		entry.RecvInterrupt = false
		return true
	case CmdSetRecvInterrupt:
		entry.RecvInterrupt = true
		return true
	case CmdModeSingleWrite, CmdModeBlockedWrite:
		m := entry.Out(da.Offset())
		if !m.Mode.Automatic() {
			return false
		}
		if v == CmdModeSingleWrite {
			n.flushMerge()
			m.Mode = nipt.SingleWriteAU
		} else {
			m.Mode = nipt.BlockedWriteAU
		}
		return true
	}
	// Transfer command: v is a word count.
	if n.dma.busy {
		n.stats.DMARejected++
		n.scope.Inc(obs.CtrDMARejected)
		return false
	}
	if v == 0 || v > MaxDMAWords {
		return false
	}
	if int(da.Offset())+int(v)*4 > phys.PageSize {
		// Each command can transfer at most one page; transfers that
		// span a page boundary must be broken up by software (§4.3).
		return false
	}
	if m := entry.Out(da.Offset()); m.Mode != nipt.DeliberateUpdate {
		return false
	}
	n.dma.busy = true
	n.dma.base = da
	n.dma.cur = da
	n.dma.remaining = v
	n.scope.Inc(obs.CtrDMACommands)
	n.Tracer.Record(int(n.node), trace.DMAStart, uint64(v), uint64(da))
	n.dma.kick(n)
	return true
}

// kick advances the DMA engine: read the next chunk from main memory
// over the Xpress bus (the outgoing datapath captures it "in a manner
// equivalent to automatic-update writes", §4.3) and packetize it. The
// engine pauses while the Outgoing FIFO is above threshold and is
// re-kicked as the FIFO drains.
func (d *dmaState) kick(n *NIC) {
	if !d.busy || d.chunking {
		return
	}
	if n.out.bytes > n.cfg.OutThreshold {
		return // injectorFree will re-kick
	}
	m, remote, ok := n.table.Resolve(d.cur)
	if !ok || m.Mode != nipt.DeliberateUpdate {
		// The mapping disappeared mid-transfer (e.g. the §4.4
		// invalidation protocol tore it down); abandon the rest.
		d.busy = false
		return
	}
	window := n.cfg.MaxPayload
	if n.cfg.DMAWindow > 1 {
		// Batched mode: one scatter read covers a window of chunks. A
		// transfer never crosses a page (CmdWrite enforces it), so one
		// Resolve covers the whole window.
		window *= n.cfg.DMAWindow
	}
	chunk := int(d.remaining) * 4
	if chunk > window {
		chunk = window
	}
	d.chunking = true
	if cap(d.chunkBuf) < chunk {
		d.chunkBuf = make([]byte, chunk)
	}
	n.scope.Inc(obs.CtrDMAChunks)
	d.pendingStart = n.eng.Now()
	done := n.xbus.ReadInto(bus.InitNIC, d.cur, d.chunkBuf[:chunk])
	d.pendingMap = m
	d.pendingRemote = remote
	d.pendingLen = chunk
	d.pendingSrcPage = d.cur.Page()
	d.cur += phys.PAddr(chunk)
	d.remaining -= uint32(chunk) / 4
	d.pendingFinished = d.remaining == 0
	n.eng.ScheduleDom(n.dom, done, &n.chunkEv)
}

package nic

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/nipt"
	"repro/internal/packet"
	"repro/internal/phys"
	"repro/internal/sim"
)

// TestOutFIFOOverflowMachineCheck overflows the Outgoing FIFO on
// purpose (enqueueing without ever running the engine, so nothing
// drains) and checks the NIC raises a structured machine check through
// the engine's failure surface instead of panicking the process.
func TestOutFIFOOverflowMachineCheck(t *testing.T) {
	r := newRig(t, DefaultConfig())
	n := r.nics[0]
	for i := 0; i < 200 && r.eng.Failed() == nil; i++ {
		p := packet.Get()
		p.Src = n.Coord()
		p.Dst = packet.Coord{X: 1, Y: 0}
		p.Payload = append(p.Payload, make([]byte, 512)...)
		n.enqueueOut(p, p.WireSize())
	}
	err := r.eng.Failed()
	var mc *fault.MachineCheck
	if !errors.As(err, &mc) {
		t.Fatalf("overflow did not raise a machine check: %v", err)
	}
	if mc.Kind != fault.CheckOutFIFOOverflow || mc.Node != 0 {
		t.Fatalf("wrong machine check: %+v", mc)
	}
	if n.OutFIFOBytes() > n.Config().OutFIFOBytes {
		t.Fatalf("FIFO accounting exceeded capacity: %d", n.OutFIFOBytes())
	}
}

// TestInFIFOHeadroomMachineCheck shrinks the incoming FIFO headroom
// below one packet and checks the endpoint refuses the worm with a
// machine check rather than panicking.
func TestInFIFOHeadroomMachineCheck(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InFIFOBytes = 600
	cfg.InThreshold = 590 // headroom of 10 bytes cannot hold a full packet
	r := newRig(t, cfg)
	r.mapOut(4, 8, nipt.SingleWriteAU)
	p := packet.Get()
	p.Src = packet.Coord{X: 0, Y: 0}
	p.Dst = packet.Coord{X: 1, Y: 0}
	p.DstAddr = phys.PageNum(8).Addr(0)
	p.Payload = append(p.Payload, make([]byte, 600)...) // wire 615 > capacity 600
	r.net.Inject(p.Src, p, p.WireSize())
	r.eng.DrainBudget(1_000_000)
	var mc *fault.MachineCheck
	if !errors.As(r.eng.Failed(), &mc) || mc.Kind != fault.CheckInFIFOHeadroom {
		t.Fatalf("want headroom machine check, got %v", r.eng.Failed())
	}
}

// TestInjectedStallDelaysDrain runs the same transfer with and without
// a certain (StallPPM = 1e6) injected outgoing-FIFO stall and checks
// the stall shows up both in the delivery time and the stats.
func TestInjectedStallDelaysDrain(t *testing.T) {
	deliverAt := func(stallPPM uint32) (sim.Time, Stats) {
		r := newRig(t, DefaultConfig())
		if stallPPM > 0 {
			inj := fault.NewInjector(fault.Config{Seed: 7, StallPPM: stallPPM}, 2)
			r.nics[0].SetFaults(inj)
			r.net.SetFaults(inj)
		}
		r.mapOut(4, 8, nipt.SingleWriteAU)
		r.cpuWrite32(0, phys.PageNum(4).Addr(0), 0xabcd)
		r.drain()
		return r.eng.Now(), r.nics[0].Stats()
	}
	cleanEnd, cleanStats := deliverAt(0)
	stallEnd, stallStats := deliverAt(1_000_000)
	if stallStats.FaultStalls == 0 || cleanStats.FaultStalls != 0 {
		t.Fatalf("stall accounting: clean=%d stalled=%d",
			cleanStats.FaultStalls, stallStats.FaultStalls)
	}
	if stallEnd <= cleanEnd {
		t.Fatalf("stall did not delay delivery: clean %v, stalled %v", cleanEnd, stallEnd)
	}
}

// TestDeadNodeBitBuckets crashes node 1 and checks arriving packets are
// discarded without FIFO accounting — the worm still drains (the mesh
// cannot deadlock) but nothing is deposited.
func TestDeadNodeBitBuckets(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.mapOut(4, 8, nipt.SingleWriteAU)
	r.nics[1].SetDead()
	r.cpuWrite32(0, phys.PageNum(4).Addr(12), 0xfeedface)
	r.drain()
	if got := r.mem[1].Read32(phys.PageNum(8).Addr(12)); got != 0 {
		t.Fatalf("dead node deposited data: %#x", got)
	}
	s := r.nics[1].Stats()
	if s.DropDead != 1 || s.PacketsIn != 0 {
		t.Fatalf("dead-node stats %+v", s)
	}
	if r.nics[1].InFIFOBytes() != 0 {
		t.Fatalf("dead node accounted FIFO bytes: %d", r.nics[1].InFIFOBytes())
	}
	if !r.nics[1].Quiesced() {
		t.Fatal("dead node not quiesced")
	}
}

// Package nic implements the SHRIMP virtual memory-mapped network
// interface — the paper's primary contribution (§4, Figure 4).
//
// The datapath follows Figure 4: the NIC snoops write transactions on
// the Xpress memory bus; the Network Interface Page Table (NIPT) decides
// whether (and how) each snooped write is mapped out; outgoing data is
// packetized and queued in the Outgoing FIFO, which drains into the
// routing backplane through the Network Interface Chip. Arriving packets
// queue in the Incoming FIFO and are DMA-deposited into main memory —
// over the EISA expansion bus on the prototype, or directly over the
// Xpress bus on the next generation — without CPU involvement.
//
// Flow control is the paper's §4 scheme: when the Incoming FIFO exceeds
// its threshold the NIC stops accepting packets from the network
// (backpressuring the wormhole mesh); when the Outgoing FIFO exceeds its
// threshold the CPU is interrupted and waits until it drains. The NIC
// also implements the user-level deliberate-update DMA engine and its
// LOCK CMPXCHG command protocol (§4.3), and the VM-mapped command pages
// (§4.2).
package nic

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/nipt"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Generation selects the incoming deposit path (paper §3, §5.1).
type Generation uint8

const (
	// GenEISAPrototype deposits incoming data over the EISA expansion
	// bus (33 MB/s burst peak — the bandwidth bottleneck).
	GenEISAPrototype Generation = iota
	// GenXpress is the "next implementation": the NIC masters the Xpress
	// memory bus directly (~70 MB/s, much smaller setup cost).
	GenXpress
)

func (g Generation) String() string {
	if g == GenEISAPrototype {
		return "eisa-prototype"
	}
	return "xpress"
}

// Config holds the network interface parameters.
type Config struct {
	Generation Generation

	// Datapath latencies.
	SnoopPacketize sim.Time // snoop + NIPT lookup + packet build
	OutFIFOLatency sim.Time // traversal of the Outgoing FIFO
	InjectSetup    sim.Time // NIC injection overhead per packet
	InFIFOLatency  sim.Time // traversal of the Incoming FIFO

	// FIFO sizing; thresholds are the §4 programmable marks.
	OutFIFOBytes int
	OutThreshold int
	InFIFOBytes  int
	InThreshold  int

	// MaxPayload bounds a packet's payload; blocked-write merging and
	// the deliberate-update DMA engine emit packets up to this size.
	MaxPayload int
	// DMAWindow is how many MaxPayload-sized chunks one deliberate-
	// update bus read covers. 1 (and 0) reproduces per-chunk bus
	// arbitration exactly; larger windows issue one scatter read per
	// window and packetize it into MaxPayload packets at completion,
	// trading fine-grained arbitration interleaving with concurrent CPU
	// stores for fewer bus tenures and engine events (see dma.go).
	// Delivered data and packet framing are identical at any setting.
	DMAWindow int
	// MergeWindow is the blocked-write programmable time limit: writes
	// farther apart than this close the open packet (§4.1).
	MergeWindow sim.Time

	// Xpress-generation deposit path parameters.
	XpressDepositSetup sim.Time
	XpressDepositRate  int64 // bytes/second
}

// DefaultConfig returns parameters calibrated to the paper's prototype
// (see DESIGN.md §4 and EXPERIMENTS.md for the calibration).
func DefaultConfig() Config {
	return Config{
		Generation:         GenEISAPrototype,
		SnoopPacketize:     150 * sim.Nanosecond,
		OutFIFOLatency:     100 * sim.Nanosecond,
		InjectSetup:        50 * sim.Nanosecond,
		InFIFOLatency:      100 * sim.Nanosecond,
		OutFIFOBytes:       32 * 1024,
		OutThreshold:       24 * 1024,
		InFIFOBytes:        32 * 1024,
		InThreshold:        24 * 1024,
		MaxPayload:         512,
		DMAWindow:          1,
		MergeWindow:        500 * sim.Nanosecond,
		XpressDepositSetup: 80 * sim.Nanosecond,
		XpressDepositRate:  70_000_000,
	}
}

// Stats aggregates NIC activity.
type Stats struct {
	SnoopedWrites    uint64
	PacketsOut       uint64
	KernelPacketsOut uint64 // subset of PacketsOut on kernel ring pages
	PacketsIn        uint64
	BytesOut         uint64
	BytesIn          uint64
	MergedWrites     uint64 // stores absorbed into an open blocked-write packet
	MergedPackets    uint64 // blocked-write packets emitted
	DMATransfers     uint64 // deliberate-update commands completed
	DMARejected      uint64 // CMPXCHG attempts that found the engine busy
	DropNotMappedIn  uint64
	DropWrongDest    uint64
	DropCRC          uint64
	DropDead         uint64 // packets discarded because this node crashed
	OutFullEvents    uint64
	OutStallTime     sim.Time
	RecvIRQs         uint64
	MaxOutFIFOBytes  int
	MaxInFIFOBytes   int

	// Fault-mode accounting (all zero outside fault mode).
	FaultStalls    uint64 // injected Outgoing-FIFO drain stalls
	RelRetransmits uint64 // reliable-delivery data retransmissions
	RelAcksSent    uint64 // cumulative ACK control packets sent
	RelNacksSent   uint64 // gap-report NACK control packets sent
	RelDupDrops    uint64 // duplicate reliable data packets discarded
	AUSeqGaps      uint64 // automatic-update sequence gaps observed
	PeerDowns      uint64 // peers this node's failure detector declared dead
	PeerDownDrops  uint64 // outbound packets suppressed against a dead peer
}

// Network is the routing backplane as the NIC sees it. *mesh.Network
// implements it directly (the sequential machine); a partitioned
// machine installs a per-node proxy whose mutating entries post to the
// fabric coordinator instead, so node events never touch fabric state.
// Attach and OnInjectorFree are build-time wiring; the rest are
// runtime fabric actions.
type Network interface {
	Attach(c packet.Coord, ep mesh.Endpoint)
	OnInjectorFree(c packet.Coord, fn func())
	// Inject starts a worm carrying p from src into the backplane.
	Inject(src packet.Coord, p *packet.Packet, wire int)
	// Release returns wire bytes of Incoming-FIFO occupancy (via
	// Endpoint.Credit), completes the packet's span, and retries the
	// parked worm, as one fabric action.
	Release(c packet.Coord, wire int, span uint64, dropped bool)
	// DropSpan completes a span as a drop for a packet discarded before
	// it reached the fabric.
	DropSpan(span uint64)
	// SetDead bit-buckets future worms arriving for c.
	SetDead(c packet.Coord)
}

// IRQCause identifies why the NIC interrupted the CPU.
type IRQCause uint8

const (
	// IRQRecv: data arrived for a page with interrupt-on-arrival set.
	IRQRecv IRQCause = iota
	// IRQKernelRing: data arrived on a kernel message ring page.
	IRQKernelRing
)

// NIC is one node's network interface.
type NIC struct {
	eng   *sim.Engine
	cfg   Config
	node  packet.NodeID
	coord packet.Coord
	table *nipt.Table
	xbus  *bus.Xpress
	eisa  *bus.EISA
	net   Network
	// fab is the engine whose event stream runs the fabric (and hence
	// the mesh-facing endpoint methods). It is eng itself in a
	// sequential machine; a partitioned machine points it at the
	// coordinator's hub engine.
	fab *sim.Engine
	// dom is this node's event domain. Every event the NIC schedules is
	// tagged with it explicitly: NIC pipelines can be kicked from event
	// chains carrying another node's domain (e.g. a deposit chain that
	// triggers an IRQ reply), and inheriting that foreign domain would
	// let two same-instant FIFO enqueues fire out of schedule order.
	dom sim.Domain

	// OnIRQ is the interrupt line to the CPU/kernel: cause plus the
	// physical page the interrupt concerns.
	OnIRQ func(cause IRQCause, page phys.PageNum)
	// OnOutFull fires when the Outgoing FIFO crosses its threshold; the
	// node glue freezes the CPU ("the CPU is interrupted and waits").
	OnOutFull func()
	// OnOutDrained fires when the Outgoing FIFO falls back below the
	// threshold.
	OnOutDrained func()
	// Tracer, when set, records datapath events (nil-safe).
	Tracer *trace.Tracer

	// obs is the machine-wide metrics registry (spans) and scope this
	// node's counters land in; both nil when metrics are disabled.
	obs   *obs.Registry
	scope *obs.NodeScope

	// inj is the machine-wide fault injector (nil outside fault mode);
	// rel is the reliable-delivery layer state (nil unless the fault
	// config enables it). dead marks a crashed node: the NIC bit-buckets
	// arriving worms so the wormhole mesh cannot deadlock on it.
	inj  *fault.Injector
	rel  *relState
	dead bool

	// Survivable-mode failure detector (nil/zero outside that mode):
	// peers this node has declared dead after reliable-delivery retry-
	// budget exhaustion. downCount != 0 is the only check the emit hot
	// path pays. OnPeerDown is the kernel's membership hook, fired once
	// per declared peer from the declaring node's own event stream.
	downPeers  map[packet.Coord]*fault.PeerDown
	downCount  int
	OnPeerDown func(pd *fault.PeerDown)

	out   outState
	in    inState
	dma   dmaState
	merge mergeState
	stats Stats

	// Pre-allocated event handlers for the datapath pipelines. Each
	// pipeline has at most one event in flight (guarded by its state
	// flag), so a single embedded handler per stage suffices; the
	// packetize stage can overlap and draws from a free list.
	injectEv  injectEvent
	depositEv depositEvent
	finishEv  finishEvent
	chunkEv   dmaChunkEvent
	mergeEv   mergeTimerEvent
	freeEnq   *enqueueEvent
	// depositQP is the Incoming FIFO head currently in the deposit
	// pipeline (valid while in.depositing).
	depositQP queuedPacket
}

// enqueueEvent carries a packetized store through the SnoopPacketize
// latency into the Outgoing FIFO. Several can be in flight (back-to-back
// snooped stores), so they are free-listed per NIC.
type enqueueEvent struct {
	n    *NIC
	p    *packet.Packet
	wire int
	next *enqueueEvent
}

func (ev *enqueueEvent) Fire() {
	n, p, wire := ev.n, ev.p, ev.wire
	ev.p = nil
	ev.next = n.freeEnq
	n.freeEnq = ev
	n.enqueueOut(p, wire)
}

// injectEvent fires when the Outgoing FIFO head has traversed the FIFO
// and the injection setup: the packet enters the backplane.
type injectEvent struct{ n *NIC }

func (ev *injectEvent) Fire() {
	n := ev.n
	head := n.out.q.peek()
	n.out.injectFired = true
	n.obs.SpanInjected(head.pkt.Span, n.eng.Now())
	n.net.Inject(n.coord, head.pkt, head.wire)
}

type queuedPacket struct {
	pkt  *packet.Packet
	wire int
}

// pktQueue is a FIFO of queued packets that recycles its backing array:
// popped slots are compacted away instead of sliding the slice header, so
// a steady-state FIFO allocates nothing.
type pktQueue struct {
	buf  []queuedPacket
	head int
}

func (q *pktQueue) push(qp queuedPacket) { q.buf = append(q.buf, qp) }

func (q *pktQueue) pop() queuedPacket {
	qp := q.buf[q.head]
	q.buf[q.head] = queuedPacket{}
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head >= 32 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		clear(q.buf[n:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return qp
}

func (q *pktQueue) len() int           { return len(q.buf) - q.head }
func (q *pktQueue) peek() queuedPacket { return q.buf[q.head] }

type outState struct {
	q         pktQueue
	bytes     int
	injecting bool
	stalled   bool
	stallFrom sim.Time
	// injectAt/injectFired track the pending injectEvent for the
	// partition-lookahead probe (EarliestPost): the exact scheduled
	// injection instant, and whether it has already fired (worm in
	// flight, next injection gated on the injector-free callback).
	injectAt    sim.Time
	injectFired bool
}

type inState struct {
	q          pktQueue
	bytes      int
	depositing bool
	// nextAt is the scheduled time of the deposit pipeline's next event
	// (depositEv or finishEv) while depositing — the earliest instant
	// the pipeline can call Network.Release.
	nextAt sim.Time
}

// New builds a network interface and attaches it to the backplane and
// memory bus.
func New(eng *sim.Engine, cfg Config, node packet.NodeID, coord packet.Coord,
	table *nipt.Table, xbus *bus.Xpress, eisa *bus.EISA, net Network) *NIC {
	n := &NIC{
		eng: eng, fab: eng, cfg: cfg, node: node, coord: coord,
		dom: sim.DomNode(int(node)),
		table: table, xbus: xbus, eisa: eisa, net: net,
	}
	n.injectEv.n = n
	n.depositEv.n = n
	n.finishEv.n = n
	n.chunkEv.n = n
	n.mergeEv.n = n
	if cfg.Generation == GenEISAPrototype && eisa == nil {
		panic("nic: EISA prototype generation requires an EISA bus")
	}
	xbus.AddSnooper(n)
	xbus.SetCommandTarget(n)
	xbus.SetSnoopFilter(n.snoopNeeded)
	net.Attach(coord, (*endpoint)(n))
	net.OnInjectorFree(coord, n.injectorFree)
	return n
}

// SetObs attaches the machine-wide metrics registry; the NIC records
// into its own node's scope and mints causal spans from the registry.
// A nil registry (metrics disabled) detaches.
func (n *NIC) SetObs(reg *obs.Registry) {
	n.obs = reg
	n.scope = reg.Node(int(n.node))
}

// SetFaults attaches the machine-wide fault injector. When the fault
// configuration enables reliable delivery, the NIC also builds its
// retransmission state. A nil injector (fault mode off) detaches both.
func (n *NIC) SetFaults(inj *fault.Injector) {
	n.inj = inj
	n.rel = nil
	if inj.Reliable() {
		n.rel = newRelState(n)
	}
}

// SetFabricEngine points the NIC at the engine that runs the fabric's
// event stream. The mesh-facing endpoint methods (Accept, Credit)
// execute there, so their clock reads and failure reports must use it;
// New defaults it to the NIC's own engine (the sequential machine).
func (n *NIC) SetFabricEngine(e *sim.Engine) { n.fab = e }

// SetDead marks the node as crashed: the NIC stops delivering arriving
// packets (the fabric bit-buckets its worms so the mesh cannot
// deadlock) and sends nothing further. Its own reliable-delivery state
// is quarantined — retained payloads freed, every pending RTO and
// delayed-ACK timer disarmed — so the dead node stops churning the
// event queue. Senders with reliable delivery exhaust their retry
// budget against the dead peer and raise a machine check, or, in
// Survivable mode, declare it down and keep running.
func (n *NIC) SetDead() {
	n.dead = true
	n.rel.quarantineAll()
	n.net.SetDead(n.coord)
}

// declarePeerDown is the Survivable-mode failure detector's output: the
// peer's flow is quarantined, further packets to it are suppressed at
// emit, and the kernel (via OnPeerDown) tears down every mapping to and
// from it. Idempotent per peer.
func (n *NIC) declarePeerDown(dstNode int, dst packet.Coord, cause string) {
	if n.downPeers[dst] != nil {
		return
	}
	if n.downPeers == nil {
		n.downPeers = make(map[packet.Coord]*fault.PeerDown)
	}
	pd := &fault.PeerDown{Node: dstNode, At: n.eng.Now(), Cause: cause}
	n.downPeers[dst] = pd
	n.downCount++
	n.stats.PeerDowns++
	n.scope.Inc(obs.CtrPeerDowns)
	n.Tracer.Record(int(n.node), trace.Drop, trace.DropPeerDown, uint64(dstNode))
	n.rel.quarantine(dst)
	if n.OnPeerDown != nil {
		n.OnPeerDown(pd)
	}
}

// PeerDeclaredDown reports whether this node's failure detector has
// declared the peer at coordinate c dead (always false outside
// Survivable mode).
func (n *NIC) PeerDeclaredDown(c packet.Coord) bool {
	return n.downCount != 0 && n.downPeers[c] != nil
}

// EarliestPost lower-bounds the next instant this NIC can invoke a
// fabric action that leads to cross-node traffic (Network.Inject or
// Network.Release) — the per-node half of the partitioned machine's
// conservative lookahead. An armed injection and an active deposit
// pipeline are tracked exactly; any fresh injection needs a node event
// to fire first (>= now) and then the FIFO+setup latency. Only a lower
// bound is required: underestimates shrink the window, overestimates
// would break it.
func (n *NIC) EarliestPost() sim.Time {
	t := n.EarliestInject()
	if r := n.EarliestRelease(); r < t {
		t = r
	}
	return t
}

// EarliestInject lower-bounds the next instant this NIC can invoke
// Network.Inject: the armed injection instant when a worm is scheduled
// and unfired, else a fresh injection's floor (a node event >= now plus
// the FIFO+setup latency). The partitioned machine pairs this floor
// with the mesh hop distance between partitions (mesh.Config's
// InjectLookahead) to widen windows between distant partitions.
func (n *NIC) EarliestInject() sim.Time {
	t := n.eng.Now() + n.cfg.OutFIFOLatency + n.cfg.InjectSetup
	if n.out.injecting && !n.out.injectFired && n.out.injectAt < t {
		t = n.out.injectAt
	}
	return t
}

// EarliestRelease lower-bounds the next instant this NIC can invoke
// Network.Release. Releases happen only from the deposit pipeline
// (finishDeposit/finishControl), whose next event is in.nextAt while
// depositing; an idle pipeline cannot release until a packet delivery —
// a hub→node message, which dirties the partition's cached floor —
// restarts it, so Forever is sound when idle.
func (n *NIC) EarliestRelease() sim.Time {
	if n.in.depositing {
		return n.in.nextAt
	}
	return sim.Forever
}

// Dead reports whether the node has been crashed by fault injection.
func (n *NIC) Dead() bool { return n.dead }

// Table returns the NIPT (the kernel configures mappings through it).
func (n *NIC) Table() *nipt.Table { return n.table }

// Coord returns the NIC's mesh coordinates.
func (n *NIC) Coord() packet.Coord { return n.coord }

// Stats returns a snapshot of NIC statistics.
func (n *NIC) Stats() Stats { return n.stats }

// Config returns the NIC configuration.
func (n *NIC) Config() Config { return n.cfg }

// OutFIFOBytes returns the current Outgoing FIFO occupancy.
func (n *NIC) OutFIFOBytes() int { return n.out.bytes }

// InFIFOBytes returns the current Incoming FIFO occupancy.
func (n *NIC) InFIFOBytes() int { return n.in.bytes }

// OutStalled reports whether the Outgoing FIFO is above its threshold.
func (n *NIC) OutStalled() bool { return n.out.stalled }

// DMABusy reports whether the deliberate-update engine is running.
func (n *NIC) DMABusy() bool { return n.dma.busy }

// Quiesced reports whether the NIC has no buffered or in-flight work.
// A dead node is quiesced regardless of retained reliable-delivery
// state: it will never make progress, and the machine check raised by
// its peers is the signal harnesses act on.
func (n *NIC) Quiesced() bool {
	if n.dead {
		return true
	}
	return n.out.q.len() == 0 && n.in.q.len() == 0 && !n.out.injecting &&
		!n.in.depositing && !n.dma.busy && n.merge.open == nil &&
		n.rel.idle()
}

// Reset returns the NIC to its just-built state: empty FIFOs, idle DMA
// engine, no open blocked-write packet, zeroed statistics. Queued
// packets return to the packet pool. Callbacks (OnIRQ, OnOutFull,
// OnOutDrained), the NIPT, and the pooled pipeline events persist. The
// caller must also reset the engine (or have drained it): any in-flight
// pipeline events reference state cleared here.
func (n *NIC) Reset() {
	for n.out.q.len() > 0 {
		packet.Put(n.out.q.pop().pkt)
	}
	for n.in.q.len() > 0 {
		packet.Put(n.in.q.pop().pkt)
	}
	if n.in.depositing && n.depositQP.pkt != nil {
		packet.Put(n.depositQP.pkt)
	}
	n.depositQP = queuedPacket{}
	n.out.bytes = 0
	n.out.injecting = false
	n.out.stalled = false
	n.out.stallFrom = 0
	n.out.injectAt = 0
	n.out.injectFired = false
	n.in.bytes = 0
	n.in.depositing = false
	n.in.nextAt = 0
	chunkBuf := n.dma.chunkBuf
	n.dma = dmaState{chunkBuf: chunkBuf}
	if o := n.merge.open; o != nil {
		// Recycle the open packet's buffer as the spare, as flushMerge does.
		o.m = nil
		n.merge.spare = o
	}
	n.merge.open = nil
	n.merge.timerArmed = false
	n.rel.reset()
	n.dead = false
	clear(n.downPeers)
	n.downCount = 0
	n.stats = Stats{}
}

// snoopNeeded is the page-granular CPU-write snoop filter the NIC
// installs on the Xpress bus. The NIC is the only snooper interested in
// CPU-mastered writes (the cache's invalidation port ignores them), and
// it only acts on pages the NIPT maps out — kernel ring pages included,
// since the boot firmware installs them as out-mappings. The NIPT entry
// is consulted live on every write, so direct entry mutations (MapOut,
// UnmapOut, eviction) need no filter maintenance.
func (n *NIC) snoopNeeded(a phys.PAddr) bool {
	return n.table.Entry(a.Page()).MappedOut()
}

// SnoopWrite implements bus.Snooper: the outgoing half of Figure 4.
// Only CPU-mastered writes are candidates for forwarding; DMA deposits
// from the network must not be re-forwarded. With the snoop filter
// installed, only writes to mapped-out pages arrive here, so
// Stats.SnoopedWrites counts forward-candidate writes; filtered writes
// land in XpressStats.SnoopsFiltered instead.
func (n *NIC) SnoopWrite(init bus.Initiator, a phys.PAddr, data []byte) {
	if init != bus.InitCPU {
		return
	}
	n.stats.SnoopedWrites++
	n.scope.Inc(obs.CtrSnoopedWrites)
	m, remote, ok := n.table.Resolve(a)
	if !ok || m.Mode == nipt.DeliberateUpdate {
		return
	}
	switch m.Mode {
	case nipt.SingleWriteAU:
		n.flushMerge() // preserve store order across modes
		n.emit(m, remote, data, a.Page(), n.eng.Now(), obs.SpanSingleWrite)
	case nipt.BlockedWriteAU:
		n.mergeWrite(m, remote, data, a.Page())
	}
}

// emit packetizes payload destined for the given remote address and
// queues it on the Outgoing FIFO after the packetize latency. The
// payload bytes are copied into a pooled packet, so the caller's buffer
// is free for reuse on return. start and kind seed the packet's causal
// span: start is the initiating instant (first merged store for
// blocked-write, the chunk read for deliberate update), which may
// precede now.
func (n *NIC) emit(m *nipt.OutMapping, remote phys.PAddr, payload []byte, srcPage phys.PageNum,
	start sim.Time, kind obs.SpanKind) {
	if n.dead {
		return // a crashed node sends nothing further
	}
	if n.downCount != 0 && n.downPeers[m.Dst] != nil {
		// The destination was declared dead: suppress the packet before
		// it costs a pool allocation or FIFO space. Reached only by
		// traffic whose mapping record predates the teardown (a DMA
		// command already in flight); post-teardown stores fault at the
		// write-protected page instead. The downCount guard keeps the
		// no-peers-down path to one integer compare.
		n.stats.PeerDownDrops++
		n.scope.Inc(obs.CtrPeerDownDrops)
		n.Tracer.Record(int(n.node), trace.Drop, trace.DropPeerDown, uint64(srcPage))
		return
	}
	e := n.table.Entry(srcPage)
	p := packet.Get()
	p.Src = n.coord
	p.Dst = m.Dst
	p.DstAddr = remote
	p.Payload = append(p.Payload, payload...)
	if e.KernelRing {
		p.Kind = packet.KernelRing
		kind = obs.SpanKernelRing
	}
	n.rel.tagOut(p, kind, int(m.DstNode))
	p.Span = n.obs.BeginSpan(int(n.node), int(m.DstNode), len(payload), kind, start)
	ev := n.freeEnq
	if ev == nil {
		ev = &enqueueEvent{n: n}
	} else {
		n.freeEnq = ev.next
	}
	ev.p = p
	ev.wire = p.WireSize()
	n.eng.ScheduleAfterDom(n.dom, n.cfg.SnoopPacketize, ev)
}

func (n *NIC) enqueueOut(p *packet.Packet, wire int) {
	if n.out.bytes+wire > n.cfg.OutFIFOBytes {
		// The threshold interrupt should make this unreachable: the CPU
		// froze before the FIFO could overflow. Reaching here means the
		// model's headroom (capacity - threshold) is too small. Raise a
		// structured machine check instead of tearing down the process so
		// harnesses and sweeps observe it as a run failure.
		n.eng.Fail(&fault.MachineCheck{
			Node: int(n.node), Kind: fault.CheckOutFIFOOverflow, At: n.eng.Now(),
			Detail: fmt.Sprintf("%d+%d > %d bytes", n.out.bytes, wire, n.cfg.OutFIFOBytes),
		})
		n.net.DropSpan(p.Span)
		packet.Put(p)
		return
	}
	n.out.q.push(queuedPacket{p, wire})
	n.out.bytes += wire
	n.obs.SpanEnqueued(p.Span, n.eng.Now())
	n.scope.Set(obs.GaugeOutFIFOBytes, int64(n.out.bytes))
	n.scope.Observe(obs.HistOutFIFODepth, uint64(n.out.bytes))
	if n.out.bytes > n.stats.MaxOutFIFOBytes {
		n.stats.MaxOutFIFOBytes = n.out.bytes
	}
	if !n.out.stalled && n.out.bytes > n.cfg.OutThreshold {
		n.out.stalled = true
		n.out.stallFrom = n.eng.Now()
		n.stats.OutFullEvents++
		n.scope.Inc(obs.CtrOutStalls)
		n.Tracer.Record(int(n.node), trace.OutStall, uint64(n.out.bytes), 0)
		if n.OnOutFull != nil {
			n.OnOutFull()
		}
	}
	n.drainOut()
}

// drainOut pushes the FIFO head into the backplane, one packet at a time
// (the injection port is released when the worm's tail leaves the node).
// Fault mode may stall the drain, modeling a transiently wedged injector.
func (n *NIC) drainOut() {
	if n.out.injecting || n.out.q.len() == 0 {
		return
	}
	n.out.injecting = true
	delay := n.cfg.OutFIFOLatency + n.cfg.InjectSetup
	if n.inj != nil && n.inj.StallOut(int(n.node), n.eng.Now()) {
		delay += n.inj.StallTime()
		n.stats.FaultStalls++
		n.scope.Inc(obs.CtrFaultStalls)
	}
	n.out.injectAt = n.eng.Now() + delay
	n.out.injectFired = false
	n.eng.ScheduleAfterDom(n.dom, delay, &n.injectEv)
}

// injectorFree fires when the injected worm's tail has left this node:
// the packet's bytes have drained from the Outgoing FIFO.
func (n *NIC) injectorFree() {
	if !n.out.injecting {
		return
	}
	head := n.out.q.pop()
	n.out.bytes -= head.wire
	n.out.injecting = false
	n.stats.PacketsOut++
	if head.pkt.Kind == packet.KernelRing {
		n.stats.KernelPacketsOut++
	}
	n.stats.BytesOut += uint64(len(head.pkt.Payload))
	n.scope.Inc(obs.CtrPacketsOut)
	n.scope.Add(obs.CtrBytesOut, uint64(len(head.pkt.Payload)))
	n.scope.Set(obs.GaugeOutFIFOBytes, int64(n.out.bytes))
	n.Tracer.Record(int(n.node), trace.PacketOut, uint64(len(head.pkt.Payload)),
		uint64(head.pkt.Dst.X)<<8|uint64(head.pkt.Dst.Y)&0xff)
	if n.out.stalled && n.out.bytes <= n.cfg.OutThreshold {
		n.out.stalled = false
		n.stats.OutStallTime += n.eng.Now() - n.out.stallFrom
		n.Tracer.Record(int(n.node), trace.OutResume, uint64(n.out.bytes), 0)
		if n.OnOutDrained != nil {
			n.OnOutDrained()
		}
	}
	n.dma.kick(n)
	n.drainOut()
}

package nic

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// endpoint adapts the NIC to the backplane's processor port. It is a
// separate named type so the mesh-facing methods don't pollute the NIC's
// own method set.
type endpoint NIC

// Accept implements mesh.Endpoint: the incoming flow-control decision.
// Once the Incoming FIFO exceeds its programmable threshold the NIC
// ceases to accept packets from the network; the parked worm holds its
// channels and backpressures the mesh (§4).
// Accept, like Credit below, executes on the fabric's event stream
// (n.fab): Incoming-FIFO occupancy is fabric-owned state, claimed here
// and returned by Credit, so a partitioned machine never has a node
// worker and the coordinator touching it at once. (Crashed nodes never
// reach Accept — the fabric bit-buckets their worms; see
// Network.SetDead.)
func (e *endpoint) Accept(p *packet.Packet, wire int) bool {
	n := (*NIC)(e)
	if n.in.bytes >= n.cfg.InThreshold {
		return false
	}
	if n.in.bytes+wire > n.cfg.InFIFOBytes {
		// Threshold headroom must cover a maximum-size packet; raise a
		// machine check (a mis-sized model, not a recoverable fault) and
		// refuse the worm, which parks until the failure surfaces.
		n.fab.Fail(&fault.MachineCheck{
			Node: int(n.node), Kind: fault.CheckInFIFOHeadroom, At: n.fab.Now(),
			Detail: fmt.Sprintf("%d+%d > %d bytes", n.in.bytes, wire, n.cfg.InFIFOBytes),
		})
		return false
	}
	n.in.bytes += wire
	n.scope.Set(obs.GaugeInFIFOBytes, int64(n.in.bytes))
	n.scope.Observe(obs.HistInFIFODepth, uint64(n.in.bytes))
	if n.in.bytes > n.stats.MaxInFIFOBytes {
		n.stats.MaxInFIFOBytes = n.in.bytes
	}
	return true
}

// Credit implements mesh.Endpoint: Network.Release returns the wire
// bytes of Incoming-FIFO occupancy that Accept claimed. Fabric event
// stream, like Accept.
func (e *endpoint) Credit(wire int) {
	n := (*NIC)(e)
	n.in.bytes -= wire
	n.scope.Set(obs.GaugeInFIFOBytes, int64(n.in.bytes))
}

// Deliver implements mesh.Endpoint: the worm has fully streamed into the
// Incoming FIFO.
func (e *endpoint) Deliver(p *packet.Packet, wire int) {
	n := (*NIC)(e)
	if n.dead {
		// The fabric bit-bucketed this worm without claiming FIFO space
		// (see Network.SetDead), so there is nothing to Credit back.
		n.stats.DropDead++
		n.Tracer.Record(int(n.node), trace.Drop, trace.DropNodeDead, uint64(p.DstAddr.Page()))
		n.net.DropSpan(p.Span)
		n.scope.Inc(obs.CtrDrops)
		packet.Put(p)
		return
	}
	n.obs.SpanDelivered(p.Span, n.eng.Now())
	n.in.q.push(queuedPacket{p, wire})
	n.deposit()
}

// depositEvent fires when the Incoming FIFO head (held in depositQP) has
// traversed the FIFO and is ready for the DMA deposit decision. At most
// one is in flight per NIC (in.depositing).
type depositEvent struct{ n *NIC }

func (ev *depositEvent) Fire() {
	n := ev.n
	n.depositPacket(n.depositQP)
}

// finishEvent fires when the deposit DMA completes. On the Xpress path
// the deposit itself is the NIC mastering the memory bus, performed here;
// on the EISA path the bridge's Xpress write was scheduled by the EISA
// model and has already fired at this timestamp.
type finishEvent struct {
	n      *NIC
	xpress bool
}

func (ev *finishEvent) Fire() {
	n := ev.n
	if ev.xpress {
		p := n.depositQP.pkt
		n.xbus.Write(bus.InitNIC, p.DstAddr, p.Payload)
	}
	n.finishDeposit(n.depositQP, true)
}

// deposit drains the Incoming FIFO head into main memory, one packet at
// a time, using the generation's DMA path.
func (n *NIC) deposit() {
	if n.in.depositing || n.in.q.len() == 0 {
		return
	}
	n.in.depositing = true
	n.depositQP = n.in.q.pop()
	n.in.nextAt = n.eng.Now() + n.cfg.InFIFOLatency
	n.eng.ScheduleAfterDom(n.dom, n.cfg.InFIFOLatency, &n.depositEv)
}

func (n *NIC) depositPacket(q queuedPacket) {
	p := q.pkt
	// The receiving NIC verifies the absolute mesh coordinates and the
	// CRC before using the packet (§3.1).
	switch {
	case p.Dst != n.coord:
		n.stats.DropWrongDest++
		n.Tracer.Record(int(n.node), trace.Drop, trace.DropWrongDest, uint64(p.DstAddr.Page()))
		n.finishDeposit(q, false)
		return
	case p.Corrupt:
		n.stats.DropCRC++
		n.Tracer.Record(int(n.node), trace.Drop, trace.DropCRC, uint64(p.DstAddr.Page()))
		n.finishDeposit(q, false)
		return
	}
	// Fault mode: ACK/NACK control packets are consumed here, and data
	// packets must pass the sequence discipline before depositing.
	if n.rel != nil && p.Rel != packet.RelNone {
		if !n.rel.onRecv(q) {
			return
		}
	}
	// The page number indexes the NIPT to determine whether the page has
	// been mapped in; unsolicited data is dropped, which is what keeps
	// user-level communication protected.
	entry := n.table.Entry(p.DstAddr.Page())
	if !entry.MappedIn {
		n.stats.DropNotMappedIn++
		n.Tracer.Record(int(n.node), trace.Drop, trace.DropNotMappedIn, uint64(p.DstAddr.Page()))
		n.finishDeposit(q, false)
		return
	}
	var done sim.Time
	if n.cfg.Generation == GenEISAPrototype {
		done = n.eisa.DMAWrite(p.DstAddr, p.Payload)
		n.finishEv.xpress = false
		n.in.nextAt = done
		n.eng.ScheduleDom(n.dom, done, &n.finishEv)
		return
	}
	// Next generation: the NIC masters the Xpress bus directly.
	done = n.eng.Now() + n.cfg.XpressDepositSetup + sim.PerByte(n.cfg.XpressDepositRate, len(p.Payload))
	n.finishEv.xpress = true
	n.in.nextAt = done
	n.eng.ScheduleDom(n.dom, done, &n.finishEv)
}

// finishDeposit raises any arrival interrupt, recycles the packet,
// returns the packet's FIFO space through the fabric (Network.Release,
// which also completes the span and retries the parked worm), and
// resumes the deposit pipeline.
func (n *NIC) finishDeposit(q queuedPacket, delivered bool) {
	n.in.depositing = false
	if delivered {
		n.stats.PacketsIn++
		n.stats.BytesIn += uint64(len(q.pkt.Payload))
		n.scope.Inc(obs.CtrPacketsIn)
		n.scope.Add(obs.CtrBytesIn, uint64(len(q.pkt.Payload)))
		n.scope.Observe(obs.HistPayload, uint64(len(q.pkt.Payload)))
		page := q.pkt.DstAddr.Page()
		n.Tracer.Record(int(n.node), trace.PacketIn, uint64(len(q.pkt.Payload)), uint64(page))
		entry := n.table.Entry(page)
		switch {
		case entry.KernelRing:
			n.stats.RecvIRQs++
			n.scope.Inc(obs.CtrIRQs)
			n.Tracer.Record(int(n.node), trace.IRQ, uint64(IRQKernelRing), uint64(page))
			if n.OnIRQ != nil {
				n.OnIRQ(IRQKernelRing, page)
			}
		case entry.RecvInterrupt || q.pkt.Interrupt:
			n.stats.RecvIRQs++
			n.scope.Inc(obs.CtrIRQs)
			n.Tracer.Record(int(n.node), trace.IRQ, uint64(IRQRecv), uint64(page))
			if n.OnIRQ != nil {
				n.OnIRQ(IRQRecv, page)
			}
		}
	} else {
		n.scope.Inc(obs.CtrDrops)
	}
	span := q.pkt.Span
	// The payload has been deposited (or dropped); this NIC holds the
	// last reference, so the packet returns to the pool for the next
	// snooped store anywhere in the machine.
	packet.Put(q.pkt)
	// FIFO space freed and span complete: one fabric action, which also
	// lets a parked worm in.
	n.net.Release(n.coord, q.wire, span, !delivered)
	n.deposit()
}

// finishControl consumes a reliable-delivery ACK/NACK: it releases the
// control packet's FIFO space and resumes the pipeline without any of
// the data-path accounting (control traffic is neither delivered data
// nor a drop).
func (n *NIC) finishControl(q queuedPacket) {
	n.in.depositing = false
	span := q.pkt.Span
	packet.Put(q.pkt)
	n.net.Release(n.coord, q.wire, span, false)
	n.deposit()
}

package nic

// Reliable delivery (fault mode only). When the fault configuration
// enables it, the NIC layers a lightweight ARQ protocol over the two
// traffic classes that carry protocol state and therefore cannot
// tolerate loss:
//
//   - Deliberate-update DMA chunks and kernel ring writes travel as
//     RelData with a per-(src,dst) sequence number. The receiver
//     delivers strictly in order, acknowledges cumulatively (an ACK's
//     Seq is the next expected number), and reports gaps with a NACK
//     carrying the same value (go-back-N). The sender retains unacked
//     payload copies and retransmits on NACK or on a retransmission
//     timeout with capped exponential backoff; exhausting the retry
//     budget raises a structured machine check — the model's analogue
//     of a fatal, unrecoverable network error.
//
//   - Automatic-update packets carry a detection-only RelTagged header:
//     a per-(flow, destination page) counter that lets the receiver
//     observe drops as sequence gaps (obs.CtrAUSeqGaps) without
//     retransmission, since AU semantics are "last store wins" and the
//     paper's user-level protocols tolerate loss end-to-end.
//
// ACK and NACK control packets are themselves unreliable: a lost ACK is
// recovered by the next ACK or by a (harmless) duplicate retransmission
// that the receiver discards and re-acknowledges.
//
// None of this state exists outside fault mode (rel == nil): the
// zero-fault datapath is bit-identical to the base protocol, and every
// method on relState is nil-safe.

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
)

// pageKey identifies a per-page automatic-update tag stream: the peer
// coordinate (destination when sending, source when receiving) and the
// destination page.
type pageKey struct {
	peer packet.Coord
	page phys.PageNum
}

// retained is an unacknowledged RelData packet's sender-side copy,
// sufficient to rebuild a retransmission.
type retained struct {
	seq       uint32
	dstAddr   phys.PAddr
	kind      packet.Kind
	interrupt bool
	payload   []byte
}

// relState is one NIC's reliable-delivery state: sender flows keyed by
// destination, receiver state keyed by source, and the detection-only
// per-page AU tag counters.
type relState struct {
	n          *NIC
	flows      map[packet.Coord]*relFlow
	rcv        map[packet.Coord]*relRecv
	pageSeq    map[pageKey]uint32 // sender: last AU tag assigned
	pageExpect map[pageKey]uint32 // receiver: last AU tag seen in order
	freeRTO    *rtoEvent
	freeAck    *ackEvent
	freeBuf    [][]byte // recycled retained-payload buffers
}

func newRelState(n *NIC) *relState {
	return &relState{
		n:          n,
		flows:      make(map[packet.Coord]*relFlow),
		rcv:        make(map[packet.Coord]*relRecv),
		pageSeq:    make(map[pageKey]uint32),
		pageExpect: make(map[pageKey]uint32),
	}
}

// reset clears all protocol state; nil-safe. The caller resets the
// engine too, which drops pending timer events; disarming every flow
// additionally makes any straggler fire a guarded no-op.
func (rs *relState) reset() {
	if rs == nil {
		return
	}
	for _, f := range rs.flows {
		f.armed = false
	}
	for _, rc := range rs.rcv {
		rc.ackArmed = false
	}
	clear(rs.flows)
	clear(rs.rcv)
	clear(rs.pageSeq)
	clear(rs.pageExpect)
	rs.freeBuf = rs.freeBuf[:0]
}

// quarantine fast-fails the flow to one declared-dead peer: retained
// payloads return to the buffer pool, the pending RTO timer is
// disarmed (the generation bump makes an already-scheduled fire a
// no-op), and any delayed ACK toward the peer is cancelled. The flow
// object stays in the map so a straggling ACK from before the
// declaration is still absorbed harmlessly. Nil-safe.
func (rs *relState) quarantine(dst packet.Coord) {
	if rs == nil {
		return
	}
	if f := rs.flows[dst]; f != nil {
		f.release()
	}
	if rc := rs.rcv[dst]; rc != nil {
		rc.ackArmed = false
		rc.gen++
	}
}

// quarantineAll is SetDead's half of the same cleanup: a crashed node
// frees every retained payload and disarms every pending RTO and
// delayed-ACK timer, so nothing keeps firing into the bit-bucket.
// Nil-safe.
func (rs *relState) quarantineAll() {
	if rs == nil {
		return
	}
	for _, f := range rs.flows {
		f.release()
	}
	for _, rc := range rs.rcv {
		rc.ackArmed = false
		rc.gen++
	}
}

// release frees a flow's retained payloads and disarms its timer.
func (f *relFlow) release() {
	for i := range f.unacked {
		f.n.rel.putBuf(f.unacked[i].payload)
		f.unacked[i] = retained{}
	}
	f.unacked = f.unacked[:0]
	f.armed = false
	f.gen++
	f.retries = 0
}

// idle reports whether no flow is awaiting an acknowledgement;
// nil-safe (no reliable layer is trivially idle).
func (rs *relState) idle() bool {
	if rs == nil {
		return true
	}
	for _, f := range rs.flows {
		if len(f.unacked) > 0 {
			return false
		}
	}
	return true
}

func (rs *relState) getBuf() []byte {
	if n := len(rs.freeBuf); n > 0 {
		b := rs.freeBuf[n-1]
		rs.freeBuf = rs.freeBuf[:n-1]
		return b[:0]
	}
	return nil
}

func (rs *relState) putBuf(b []byte) { rs.freeBuf = append(rs.freeBuf, b) }

// tagOut assigns the reliability header to an outgoing packet; nil-safe
// (zero-fault packets stay RelNone). Data-bearing protocol traffic
// (deliberate update, kernel rings) becomes RelData and is retained for
// retransmission; automatic update gets a detection-only RelTagged tag.
func (rs *relState) tagOut(p *packet.Packet, kind obs.SpanKind, dstNode int) {
	if rs == nil {
		return
	}
	if kind == obs.SpanDeliberate || kind == obs.SpanKernelRing {
		f := rs.flow(p.Dst, dstNode)
		p.Rel = packet.RelData
		p.Seq = f.nextSeq
		f.nextSeq++
		buf := append(rs.getBuf(), p.Payload...)
		f.unacked = append(f.unacked, retained{
			seq: p.Seq, dstAddr: p.DstAddr, kind: p.Kind,
			interrupt: p.Interrupt, payload: buf,
		})
		if !f.armed {
			f.arm()
		}
		return
	}
	key := pageKey{p.Dst, p.DstAddr.Page()}
	seq := rs.pageSeq[key] + 1
	rs.pageSeq[key] = seq
	p.Rel = packet.RelTagged
	p.Seq = seq
}

func (rs *relState) flow(dst packet.Coord, dstNode int) *relFlow {
	f := rs.flows[dst]
	if f == nil {
		f = &relFlow{
			n: rs.n, dst: dst, dstNode: dstNode, nextSeq: 1,
			rto: rs.n.inj.Config().AckTimeoutOrDefault(),
		}
		rs.flows[dst] = f
	}
	return f
}

func (rs *relState) recvFor(src packet.Coord) *relRecv {
	rc := rs.rcv[src]
	if rc == nil {
		rc = &relRecv{n: rs.n, src: src, expect: 1}
		rs.rcv[src] = rc
	}
	return rc
}

// onRecv applies the reliability discipline to an arriving packet that
// has already passed the destination and CRC checks. It returns true
// when the packet should continue to the normal deposit path; control
// packets and out-of-discipline data packets are consumed here (FIFO
// space released, pipeline resumed).
func (rs *relState) onRecv(q queuedPacket) bool {
	n := rs.n
	p := q.pkt
	switch p.Rel {
	case packet.RelAck:
		rs.onAck(p.Src, p.Seq)
		n.finishControl(q)
		return false
	case packet.RelNack:
		rs.onNack(p.Src, p.Seq)
		n.finishControl(q)
		return false
	case packet.RelData:
		rc := rs.recvFor(p.Src)
		switch {
		case p.Seq < rc.expect:
			// Duplicate (a retransmission raced the ACK). Discard and
			// re-acknowledge so the sender makes progress.
			n.stats.RelDupDrops++
			n.scope.Inc(obs.CtrRelDups)
			n.Tracer.Record(int(n.node), trace.Drop, trace.DropRelDup, uint64(p.DstAddr.Page()))
			rc.bumpAck()
			n.finishDeposit(q, false)
			return false
		case p.Seq > rc.expect:
			// Gap: something before this packet was lost. Report it once
			// per expected value and discard (go-back-N redelivers).
			n.Tracer.Record(int(n.node), trace.Drop, trace.DropRelGap, uint64(p.DstAddr.Page()))
			rc.nack()
			n.finishDeposit(q, false)
			return false
		}
		rc.expect++
		rc.lastNack = 0
		rc.sinceAck++
		rc.bumpAck()
		return true
	case packet.RelTagged:
		key := pageKey{p.Src, p.DstAddr.Page()}
		last := rs.pageExpect[key]
		if p.Seq > last+1 {
			gaps := uint64(p.Seq - last - 1)
			n.stats.AUSeqGaps += gaps
			n.scope.Add(obs.CtrAUSeqGaps, gaps)
		}
		if p.Seq > last {
			rs.pageExpect[key] = p.Seq
		}
		return true
	}
	return true
}

// onAck advances the flow to the peer that sent the cumulative ACK.
func (rs *relState) onAck(from packet.Coord, seq uint32) {
	f := rs.flows[from]
	if f == nil {
		return
	}
	if f.popAcked(seq) {
		// Progress: the path is alive; reset the backoff schedule.
		f.retries = 0
		f.rto = rs.n.inj.Config().AckTimeoutOrDefault()
	}
	if len(f.unacked) == 0 {
		f.armed = false
		return
	}
	f.arm() // re-arm from now for the new oldest outstanding packet
}

// onNack processes a gap report: everything below seq is implicitly
// acknowledged, everything from seq on is retransmitted (go-back-N),
// bounded by Outgoing-FIFO headroom — the RTO covers whatever is left.
func (rs *relState) onNack(from packet.Coord, seq uint32) {
	f := rs.flows[from]
	if f == nil {
		return
	}
	n := rs.n
	f.popAcked(seq)
	for i := range f.unacked {
		r := &f.unacked[i]
		wire := packet.HeaderBytes + len(r.payload) + packet.CRCBytes + packet.RelHeaderBytes
		if n.out.bytes+wire > n.cfg.OutThreshold {
			break
		}
		f.retransmit(r)
	}
	if len(f.unacked) > 0 {
		f.arm()
	} else {
		f.armed = false
	}
}

// relFlow is the sender half of one (src,dst) reliable flow.
type relFlow struct {
	n       *NIC
	dst     packet.Coord
	dstNode int
	nextSeq uint32 // next sequence number to assign (first packet is 1)
	unacked []retained
	retries int      // RTO fires since last forward progress
	rto     sim.Time // current retransmission timeout (doubles, capped)
	armed   bool
	gen     uint64 // bumped on every (re)arm; stale timer fires no-op
}

// popAcked releases every retained packet with seq < upTo, returning
// whether anything was released.
func (f *relFlow) popAcked(upTo uint32) bool {
	k := 0
	for k < len(f.unacked) && f.unacked[k].seq < upTo {
		f.n.rel.putBuf(f.unacked[k].payload)
		f.unacked[k] = retained{}
		k++
	}
	if k == 0 {
		return false
	}
	f.unacked = append(f.unacked[:0], f.unacked[k:]...)
	return true
}

func (f *relFlow) arm() {
	rs := f.n.rel
	f.gen++
	f.armed = true
	ev := rs.freeRTO
	if ev == nil {
		ev = &rtoEvent{}
	} else {
		rs.freeRTO = ev.next
	}
	ev.f = f
	ev.gen = f.gen
	f.n.eng.ScheduleAfterDom(f.n.dom, f.rto, ev)
}

// fire is the retransmission timeout: no ACK progress within rto.
func (f *relFlow) fire() {
	n := f.n
	if len(f.unacked) == 0 || n.dead {
		return
	}
	f.retries++
	if f.retries > n.inj.Config().RetryBudgetOrDefault() {
		detail := fmt.Sprintf("flow to node %d %v: %d retransmit timeouts without progress, seq %d unacknowledged",
			f.dstNode, f.dst, f.retries-1, f.unacked[0].seq)
		if n.inj.Config().Survivable {
			// Survivable mode: the peer is declared dead instead of the
			// run. The declaration quarantines this flow (freeing the
			// retained payloads whose ACKs will never come) and hands the
			// kernel its membership event.
			n.declarePeerDown(f.dstNode, f.dst, detail)
			return
		}
		n.eng.Fail(&fault.MachineCheck{
			Node: int(n.node), Kind: fault.CheckRetryBudget, At: n.eng.Now(),
			Detail: detail,
		})
		return
	}
	// Retransmit the oldest outstanding packet if the FIFO has headroom
	// (if not, the queue is draining and a later fire retries).
	r := &f.unacked[0]
	wire := packet.HeaderBytes + len(r.payload) + packet.CRCBytes + packet.RelHeaderBytes
	if n.out.bytes+wire <= n.cfg.OutThreshold {
		f.retransmit(r)
	}
	// Exponential backoff, capped.
	cap := n.inj.Config().AckTimeoutOrDefault() * fault.MaxBackoff
	if f.rto < cap {
		f.rto *= 2
		if f.rto > cap {
			f.rto = cap
		}
		n.scope.Inc(obs.CtrRelBackoffs)
	}
	f.arm()
}

// retransmit rebuilds and re-enqueues one retained packet.
func (f *relFlow) retransmit(r *retained) {
	n := f.n
	p := packet.Get()
	p.Src = n.coord
	p.Dst = f.dst
	p.DstAddr = r.dstAddr
	p.Kind = r.kind
	p.Interrupt = r.interrupt
	p.Rel = packet.RelData
	p.Seq = r.seq
	p.Payload = append(p.Payload, r.payload...)
	p.Span = n.obs.BeginSpan(int(n.node), f.dstNode, len(r.payload),
		obs.SpanRetransmit, n.eng.Now())
	n.stats.RelRetransmits++
	n.scope.Inc(obs.CtrRelRetransmits)
	n.enqueueOut(p, p.WireSize())
}

// rtoEvent delivers a retransmission timeout; free-listed per NIC, with
// a generation guard so a superseded arm is a no-op.
type rtoEvent struct {
	f    *relFlow
	gen  uint64
	next *rtoEvent
}

func (ev *rtoEvent) Fire() {
	f, gen := ev.f, ev.gen
	rs := f.n.rel
	ev.f = nil
	if rs != nil {
		ev.next = rs.freeRTO
		rs.freeRTO = ev
	}
	if f.armed && gen == f.gen {
		f.armed = false
		f.fire()
	}
}

// relRecv is the receiver half of one (src,dst) reliable flow.
type relRecv struct {
	n        *NIC
	src      packet.Coord
	expect   uint32 // next expected sequence number
	sinceAck uint32 // in-order packets since the last ACK
	lastNack uint32 // expect value of the last NACK sent (0 = none)
	ackArmed bool
	gen      uint64
}

// bumpAck schedules acknowledgement: immediately after AckEvery
// in-order packets, otherwise after a short delay so a burst is covered
// by one cumulative ACK.
func (rc *relRecv) bumpAck() {
	if rc.sinceAck >= fault.AckEvery {
		rc.sendAck()
		return
	}
	if rc.ackArmed {
		return
	}
	rs := rc.n.rel
	rc.ackArmed = true
	rc.gen++
	ev := rs.freeAck
	if ev == nil {
		ev = &ackEvent{}
	} else {
		rs.freeAck = ev.next
	}
	ev.r = rc
	ev.gen = rc.gen
	rc.n.eng.ScheduleAfterDom(rc.n.dom, fault.AckDelay, ev)
}

func (rc *relRecv) sendAck() {
	n := rc.n
	rc.sinceAck = 0
	rc.ackArmed = false
	rc.gen++ // invalidate any pending delayed-ack event
	if n.dead {
		return
	}
	p := packet.Get()
	p.Src = n.coord
	p.Dst = rc.src
	p.Rel = packet.RelAck
	p.Seq = rc.expect
	n.stats.RelAcksSent++
	n.scope.Inc(obs.CtrRelAcks)
	n.enqueueOut(p, p.WireSize())
}

// nack reports a sequence gap, at most once per expected value: every
// further out-of-order arrival for the same hole is dropped silently
// until the hole fills (go-back-N redelivers everything after it).
func (rc *relRecv) nack() {
	n := rc.n
	if rc.lastNack == rc.expect || n.dead {
		return
	}
	rc.lastNack = rc.expect
	p := packet.Get()
	p.Src = n.coord
	p.Dst = rc.src
	p.Rel = packet.RelNack
	p.Seq = rc.expect
	n.stats.RelNacksSent++
	n.scope.Inc(obs.CtrRelNacks)
	n.enqueueOut(p, p.WireSize())
}

// ackEvent delivers a delayed cumulative ACK; free-listed per NIC.
type ackEvent struct {
	r    *relRecv
	gen  uint64
	next *ackEvent
}

func (ev *ackEvent) Fire() {
	rc, gen := ev.r, ev.gen
	rs := rc.n.rel
	ev.r = nil
	if rs != nil {
		ev.next = rs.freeAck
		rs.freeAck = ev
	}
	if rc.ackArmed && gen == rc.gen {
		rc.sendAck()
	}
}

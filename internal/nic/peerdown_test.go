package nic

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/nipt"
	"repro/internal/packet"
	"repro/internal/phys"
	"repro/internal/sim"
)

// peerDownRig arms the two-node rig with a reliable-delivery injector
// and a kernel-ring page so node 0's sends are retained (AU traffic is
// detection-tagged only; only retained traffic drives the RTO machinery
// and the failure detector).
func peerDownRig(t testing.TB, fc fault.Config) *rig {
	r := newRig(t, DefaultConfig())
	inj := fault.NewInjector(fc, 2)
	r.nics[0].SetFaults(inj)
	r.nics[1].SetFaults(inj)
	r.net.SetFaults(inj)
	r.nics[0].Table().Entry(4).KernelRing = true
	r.mapOut(4, 8, nipt.SingleWriteAU)
	return r
}

// TestSetDeadReleasesReliableState pins the SetDead half of the §4.4
// teardown: a sender mid-retry against a silent peer holds retained
// payloads and a pending RTO event; when the sender itself crashes,
// quarantineAll must free the retained state and disarm the timer so
// the already-scheduled event fires as a no-op and the engine drains to
// a zero pending count instead of churning a backoff chain into the
// bit-bucket.
func TestSetDeadReleasesReliableState(t *testing.T) {
	// A huge retry budget keeps the partial drain below from ever
	// exhausting it (exhaustion would raise a machine check).
	r := peerDownRig(t, fault.Config{
		Seed: 11, Reliable: true,
		RetryBudget: 1 << 20, AckTimeout: 10 * sim.Microsecond,
	})
	r.nics[1].SetDead() // peer silent from the start: no ACK ever comes
	r.cpuWrite32(0, phys.PageNum(4).Addr(0), 0xdeadbeef)
	// Run into the retry chain, but nowhere near the budget: the
	// bounded drain stops mid-backoff with the RTO event still pending.
	if err := r.eng.DrainBudget(500); !errors.Is(err, sim.ErrBudget) {
		t.Fatalf("expected a truncated drain mid-retry, got %v", err)
	}

	flow := r.nics[0].rel.flows[packet.Coord{X: 1, Y: 0}]
	if flow == nil || len(flow.unacked) == 0 || !flow.armed {
		t.Fatalf("sender flow not mid-retry before crash: %+v", flow)
	}
	if r.nics[0].Stats().RelRetransmits == 0 {
		t.Fatal("RTO chain never fired before crash")
	}
	if r.eng.Pending() == 0 {
		t.Fatal("no pending RTO event before crash")
	}

	r.nics[0].SetDead()
	if len(flow.unacked) != 0 || flow.armed {
		t.Fatalf("SetDead left retained state: %d unacked, armed=%v",
			len(flow.unacked), flow.armed)
	}
	r.drain()
	if got := r.eng.Pending(); got != 0 {
		t.Fatalf("engine still holds %d pending events after both nodes dead", got)
	}
	if err := r.eng.Failed(); err != nil {
		t.Fatalf("machine check after crash: %v", err)
	}
}

// TestDeclarePeerDownSuppressesEmit drives the Survivable failure
// detector end to end at the NIC level: the retry budget exhausts
// against a dead peer, the declaration fires the membership hook once,
// quarantines the flow, and every later packet toward the peer is
// suppressed at emit with the drop accounted.
func TestDeclarePeerDownSuppressesEmit(t *testing.T) {
	r := peerDownRig(t, fault.Config{
		Seed: 3, Reliable: true, Survivable: true,
		RetryBudget: 4, AckTimeout: 10 * sim.Microsecond,
	})
	var hooks []*fault.PeerDown
	r.nics[0].OnPeerDown = func(pd *fault.PeerDown) { hooks = append(hooks, pd) }
	r.nics[1].SetDead()
	r.cpuWrite32(0, phys.PageNum(4).Addr(0), 0xcafe0001)
	r.drain()

	if err := r.eng.Failed(); err != nil {
		t.Fatalf("Survivable exhaustion raised a machine check: %v", err)
	}
	dst := packet.Coord{X: 1, Y: 0}
	if !r.nics[0].PeerDeclaredDown(dst) {
		t.Fatal("peer never declared down")
	}
	if len(hooks) != 1 || hooks[0].Node != 1 || hooks[0].Cause == "" {
		t.Fatalf("membership hook fired %d times, last %+v", len(hooks), hooks)
	}
	s := r.nics[0].Stats()
	if s.PeerDowns != 1 || s.RelRetransmits == 0 {
		t.Fatalf("detector stats: %d peer-downs, %d retransmits", s.PeerDowns, s.RelRetransmits)
	}
	if flow := r.nics[0].rel.flows[dst]; flow != nil && (len(flow.unacked) != 0 || flow.armed) {
		t.Fatalf("declaration left retained state: %+v", flow)
	}

	// Re-declaring is idempotent; the hook must not fire again.
	r.nics[0].declarePeerDown(1, dst, "again")
	if got := r.nics[0].Stats().PeerDowns; got != 1 || len(hooks) != 1 {
		t.Fatalf("re-declaration not idempotent: %d peer-downs, %d hooks", got, len(hooks))
	}

	// A store through the surviving (rig-level) mapping now dies at
	// emit: no packet out, one accounted suppression.
	outBefore := r.nics[0].Stats().PacketsOut
	r.cpuWrite32(0, phys.PageNum(4).Addr(8), 0xcafe0002)
	r.drain()
	s = r.nics[0].Stats()
	if s.PeerDownDrops == 0 {
		t.Fatal("post-declaration store was not suppressed")
	}
	if s.PacketsOut != outBefore {
		t.Fatalf("suppressed store still emitted a packet: %d -> %d", outBefore, s.PacketsOut)
	}
	if got := r.eng.Pending(); got != 0 {
		t.Fatalf("engine holds %d pending events after suppression", got)
	}
}

// BenchmarkStorePeerDown is the ci.sh zero-allocation guard for the
// degraded-mode hot path: once a peer is declared dead, a snooped store
// toward it must be suppressed at emit without touching the heap (one
// map probe, counters, a trace record — no pooled packet, no FIFO
// entry).
func BenchmarkStorePeerDown(b *testing.B) {
	r := peerDownRig(b, fault.Config{
		Seed: 42, Reliable: true, Survivable: true,
		RetryBudget: 4, AckTimeout: 10 * sim.Microsecond,
	})
	r.nics[0].declarePeerDown(1, packet.Coord{X: 1, Y: 0}, "bench")
	// Warm the snoop path and the span table before measuring.
	r.cpuWrite32(0, phys.PageNum(4).Addr(0), 1)
	r.drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.cpuWrite32(0, phys.PageNum(4).Addr(0), uint32(i))
		r.drain()
	}
	if r.nics[0].Stats().PeerDownDrops == 0 {
		b.Fatal("benchmark never hit the suppression path")
	}
}

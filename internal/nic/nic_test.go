package nic

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/mesh"
	"repro/internal/nipt"
	"repro/internal/packet"
	"repro/internal/phys"
	"repro/internal/sim"
)

// rig is a two-node NIC test bench built straight from the hardware
// models (no kernel): node 0 at (0,0), node 1 at (1,0).
type rig struct {
	eng  *sim.Engine
	net  *mesh.Network
	mem  [2]*phys.Memory
	xbus [2]*bus.Xpress
	eisa [2]*bus.EISA
	nics [2]*NIC
}

func newRig(t testing.TB, cfg Config) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine()}
	r.net = mesh.New(r.eng, mesh.DefaultConfig(2, 1))
	for i := 0; i < 2; i++ {
		r.mem[i] = phys.NewMemory(16)
		r.xbus[i] = bus.NewXpress(r.eng, bus.DefaultXpressConfig(), r.mem[i])
		if cfg.Generation == GenEISAPrototype {
			r.eisa[i] = bus.NewEISA(r.eng, bus.DefaultEISAConfig(), r.xbus[i])
		}
		r.nics[i] = New(r.eng, cfg, packet.NodeID(i), packet.Coord{X: i, Y: 0},
			nipt.New(16), r.xbus[i], r.eisa[i], r.net)
	}
	return r
}

// mapOut installs a whole-page single-direction mapping 0 -> 1.
func (r *rig) mapOut(srcPage, dstPage phys.PageNum, mode nipt.Mode) {
	r.nics[0].Table().MapOut(srcPage, nipt.OutMapping{
		Mode: mode, Dst: packet.Coord{X: 1, Y: 0}, DstNode: 1, DstPage: dstPage,
	})
	r.nics[1].Table().Entry(dstPage).MappedIn = true
}

func (r *rig) cpuWrite32(node int, a phys.PAddr, v uint32) {
	r.xbus[node].Write32(bus.InitCPU, a, v)
}

func (r *rig) drain() { r.eng.Drain(10_000_000) }

func TestSingleWriteForwarding(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.mapOut(4, 8, nipt.SingleWriteAU)
	r.cpuWrite32(0, phys.PageNum(4).Addr(12), 0xfeedface)
	r.drain()
	if got := r.mem[1].Read32(phys.PageNum(8).Addr(12)); got != 0xfeedface {
		t.Fatalf("remote word %#x", got)
	}
	s0, s1 := r.nics[0].Stats(), r.nics[1].Stats()
	if s0.PacketsOut != 1 || s1.PacketsIn != 1 || s1.BytesIn != 4 {
		t.Fatalf("stats %+v %+v", s0, s1)
	}
	if !r.nics[0].Quiesced() || !r.nics[1].Quiesced() {
		t.Fatal("NICs not quiescent")
	}
}

func TestUnmappedWritesIgnored(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.cpuWrite32(0, phys.PageNum(4).Addr(0), 1)
	r.drain()
	if r.nics[0].Stats().PacketsOut != 0 {
		t.Fatal("unmapped write forwarded")
	}
	// The page-granular snoop filter short-circuits writes to pages with
	// no out-mapping before the snooper fan-out: the NIC never sees them.
	if r.nics[0].Stats().SnoopedWrites != 0 {
		t.Fatal("unmapped write reached the NIC snooper")
	}
	if r.xbus[0].Stats().SnoopsFiltered != 1 {
		t.Fatalf("snoop filter stats %+v", r.xbus[0].Stats())
	}
	// A write to a mapped page must still pass the filter.
	r.mapOut(4, 8, nipt.SingleWriteAU)
	r.cpuWrite32(0, phys.PageNum(4).Addr(0), 2)
	r.drain()
	if r.nics[0].Stats().SnoopedWrites != 1 {
		t.Fatal("mapped write filtered out")
	}
}

func TestDMAWritesNotForwarded(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.mapOut(4, 8, nipt.SingleWriteAU)
	r.xbus[0].Write32(bus.InitBridge, phys.PageNum(4).Addr(0), 7)
	r.xbus[0].Write32(bus.InitNIC, phys.PageNum(4).Addr(4), 8)
	r.drain()
	if r.nics[0].Stats().PacketsOut != 0 {
		t.Fatal("non-CPU write forwarded (forwarding loop hazard)")
	}
}

func TestBlockedWriteMerging(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.mapOut(4, 8, nipt.BlockedWriteAU)
	// Consecutive stores merge into one packet.
	for i := 0; i < 16; i++ {
		r.cpuWrite32(0, phys.PageNum(4).Addr(uint32(4*i)), uint32(i+1))
		r.eng.RunFor(50 * sim.Nanosecond) // within the merge window
	}
	r.drain()
	s0 := r.nics[0].Stats()
	if s0.PacketsOut != 1 {
		t.Fatalf("%d packets for 16 consecutive stores", s0.PacketsOut)
	}
	if s0.MergedWrites != 15 {
		t.Fatalf("merged %d", s0.MergedWrites)
	}
	for i := 0; i < 16; i++ {
		if got := r.mem[1].Read32(phys.PageNum(8).Addr(uint32(4 * i))); got != uint32(i+1) {
			t.Fatalf("word %d = %d", i, got)
		}
	}
}

func TestBlockedWriteWindowCloses(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	r.mapOut(4, 8, nipt.BlockedWriteAU)
	r.cpuWrite32(0, phys.PageNum(4).Addr(0), 1)
	// Let more than the merge window pass.
	r.eng.RunFor(cfg.MergeWindow * 3)
	r.cpuWrite32(0, phys.PageNum(4).Addr(4), 2)
	r.drain()
	if r.nics[0].Stats().PacketsOut != 2 {
		t.Fatalf("window expiry should split packets, got %d", r.nics[0].Stats().PacketsOut)
	}
}

func TestNonContiguousWritesSplitPackets(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.mapOut(4, 8, nipt.BlockedWriteAU)
	r.cpuWrite32(0, phys.PageNum(4).Addr(0), 1)
	r.cpuWrite32(0, phys.PageNum(4).Addr(100), 2) // gap
	r.drain()
	if r.nics[0].Stats().PacketsOut != 2 {
		t.Fatalf("non-contiguous stores merged: %d packets", r.nics[0].Stats().PacketsOut)
	}
	if r.mem[1].Read32(phys.PageNum(8).Addr(0)) != 1 ||
		r.mem[1].Read32(phys.PageNum(8).Addr(100)) != 2 {
		t.Fatal("data lost")
	}
}

func TestMaxPayloadBoundsMergedPacket(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPayload = 64
	r := newRig(t, cfg)
	r.mapOut(4, 8, nipt.BlockedWriteAU)
	for i := 0; i < 32; i++ { // 128 contiguous bytes
		r.cpuWrite32(0, phys.PageNum(4).Addr(uint32(4*i)), uint32(i))
	}
	r.drain()
	if got := r.nics[0].Stats().PacketsOut; got != 2 {
		t.Fatalf("%d packets for 128B with 64B max payload", got)
	}
}

func TestSingleWriteFlushesOpenMergeInOrder(t *testing.T) {
	// A store through a single-write mapping must not overtake an open
	// blocked-write packet: store order is delivery order.
	r := newRig(t, DefaultConfig())
	r.mapOut(4, 8, nipt.BlockedWriteAU)
	r.nics[0].Table().MapOut(5, nipt.OutMapping{
		Mode: nipt.SingleWriteAU, Dst: packet.Coord{X: 1, Y: 0}, DstNode: 1, DstPage: 9,
	})
	r.nics[1].Table().Entry(9).MappedIn = true

	r.cpuWrite32(0, phys.PageNum(4).Addr(0), 1) // opens a merge
	r.cpuWrite32(0, phys.PageNum(5).Addr(0), 2) // must flush then send
	r.drain()
	if r.nics[0].Stats().PacketsOut != 2 {
		t.Fatalf("packets %d", r.nics[0].Stats().PacketsOut)
	}
	if r.mem[1].Read32(phys.PageNum(8).Addr(0)) != 1 || r.mem[1].Read32(phys.PageNum(9).Addr(0)) != 2 {
		t.Fatal("data lost")
	}
}

func TestNotMappedInDropped(t *testing.T) {
	r := newRig(t, DefaultConfig())
	// Outgoing mapping but the receiver NEVER marked the page mapped in:
	// protection drops the packet.
	r.nics[0].Table().MapOut(4, nipt.OutMapping{
		Mode: nipt.SingleWriteAU, Dst: packet.Coord{X: 1, Y: 0}, DstNode: 1, DstPage: 8,
	})
	r.cpuWrite32(0, phys.PageNum(4).Addr(0), 0xbad)
	r.drain()
	if r.nics[1].Stats().DropNotMappedIn != 1 {
		t.Fatal("unsolicited packet not dropped")
	}
	if r.mem[1].Read32(phys.PageNum(8).Addr(0)) != 0 {
		t.Fatal("unsolicited data written to memory")
	}
}

func TestCorruptPacketDropped(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.mapOut(4, 8, nipt.SingleWriteAU)
	p := &packet.Packet{
		Src: packet.Coord{X: 0, Y: 0}, Dst: packet.Coord{X: 1, Y: 0},
		DstAddr: phys.PageNum(8).Addr(0), Payload: []byte{1, 2, 3, 4},
		Corrupt: true,
	}
	r.net.Inject(packet.Coord{X: 0, Y: 0}, p, p.WireSize())
	r.drain()
	if r.nics[1].Stats().DropCRC != 1 {
		t.Fatal("corrupt packet accepted")
	}
	if r.mem[1].Read32(phys.PageNum(8).Addr(0)) != 0 {
		t.Fatal("corrupt data deposited")
	}
}

func TestWrongDestinationDropped(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.mapOut(4, 8, nipt.SingleWriteAU)
	// A misrouted packet: Dst coords say (0,0) but it is delivered into
	// node 1's endpoint by injecting directly at its port.
	p := &packet.Packet{
		Src: packet.Coord{X: 0, Y: 0}, Dst: packet.Coord{X: 1, Y: 0},
		DstAddr: phys.PageNum(8).Addr(0), Payload: []byte{1, 2, 3, 4},
	}
	p.Dst = packet.Coord{X: 0, Y: 0} // lie about the destination
	// Hand it to node 1's endpoint directly, as a routing fault would.
	ep := anyEndpoint(r.nics[1])
	if !ep.Accept(p, p.WireSize()) {
		t.Fatal("accept")
	}
	ep.Deliver(p, p.WireSize())
	r.drain()
	if r.nics[1].Stats().DropWrongDest != 1 {
		t.Fatal("misrouted packet accepted")
	}
}

func anyEndpoint(n *NIC) mesh.Endpoint { return (*endpoint)(n) }

func TestSplitPageThroughFullPath(t *testing.T) {
	// §3.2: one local page split between two destinations at offset 2048.
	r := newRig(t, DefaultConfig())
	lo := nipt.OutMapping{Mode: nipt.SingleWriteAU, Dst: packet.Coord{X: 1, Y: 0}, DstNode: 1, DstPage: 8}
	hi := nipt.OutMapping{Mode: nipt.SingleWriteAU, Dst: packet.Coord{X: 1, Y: 0}, DstNode: 1, DstPage: 9, DstShift: -2048}
	r.nics[0].Table().MapOutSplit(4, 2048, lo, hi)
	r.nics[1].Table().Entry(8).MappedIn = true
	r.nics[1].Table().Entry(9).MappedIn = true

	r.cpuWrite32(0, phys.PageNum(4).Addr(100), 11)
	r.cpuWrite32(0, phys.PageNum(4).Addr(2100), 22)
	r.drain()
	if r.mem[1].Read32(phys.PageNum(8).Addr(100)) != 11 {
		t.Fatal("lo half misdelivered")
	}
	if r.mem[1].Read32(phys.PageNum(9).Addr(52)) != 22 {
		t.Fatal("hi half misdelivered (shift not applied)")
	}
}

func TestRecvInterruptCommand(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.mapOut(4, 8, nipt.SingleWriteAU)
	var irqs []phys.PageNum
	r.nics[1].OnIRQ = func(cause IRQCause, page phys.PageNum) {
		if cause == IRQRecv {
			irqs = append(irqs, page)
		}
	}
	// Arm interrupt-on-arrival for page 8 via its command page (§4.2),
	// as the receiving node's CPU would.
	cmdAddr := r.mem[1].CmdPageFor(8)
	r.xbus[1].Write32(bus.InitCPU, cmdAddr, CmdSetRecvInterrupt)

	r.cpuWrite32(0, phys.PageNum(4).Addr(0), 1)
	r.drain()
	if len(irqs) != 1 || irqs[0] != 8 {
		t.Fatalf("irqs %v", irqs)
	}
	// Disarm and send again: no interrupt.
	r.xbus[1].Write32(bus.InitCPU, cmdAddr, CmdClearRecvInterrupt)
	r.cpuWrite32(0, phys.PageNum(4).Addr(4), 2)
	r.drain()
	if len(irqs) != 1 {
		t.Fatal("interrupt after disarm")
	}
}

func TestModeSwitchCommand(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.mapOut(4, 8, nipt.SingleWriteAU)
	cmdAddr := r.mem[0].CmdPageFor(4)
	// Switch to blocked-write via the command page.
	r.xbus[0].Write32(bus.InitCPU, cmdAddr, CmdModeBlockedWrite)
	for i := 0; i < 8; i++ {
		r.cpuWrite32(0, phys.PageNum(4).Addr(uint32(4*i)), uint32(i))
	}
	r.drain()
	if got := r.nics[0].Stats().PacketsOut; got != 1 {
		t.Fatalf("after switch to blocked-write: %d packets", got)
	}
	// And back to single-write.
	r.xbus[0].Write32(bus.InitCPU, cmdAddr, CmdModeSingleWrite)
	r.cpuWrite32(0, phys.PageNum(4).Addr(64), 9)
	r.cpuWrite32(0, phys.PageNum(4).Addr(68), 10)
	r.drain()
	if got := r.nics[0].Stats().PacketsOut; got != 3 {
		t.Fatalf("after switch back: %d packets", got)
	}
	// Mode switch on a deliberate-update page is refused.
	r.nics[0].Table().MapOut(5, nipt.OutMapping{
		Mode: nipt.DeliberateUpdate, Dst: packet.Coord{X: 1, Y: 0}, DstNode: 1, DstPage: 9,
	})
	if r.nics[0].CmdWrite(r.mem[0].CmdPageFor(5), CmdModeBlockedWrite) {
		t.Fatal("mode switch on deliberate page accepted")
	}
}

func TestDeliberateUpdateProtocol(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.mapOut(4, 8, nipt.DeliberateUpdate)
	for i := 0; i < 32; i++ {
		r.mem[0].Write32(phys.PageNum(4).Addr(uint32(4*i)), uint32(1000+i))
	}
	cmdAddr := r.mem[0].CmdPageFor(4)

	// Status read while idle: zero.
	if v, _ := r.xbus[0].Read32(bus.InitCPU, cmdAddr); v != 0 {
		t.Fatalf("idle status %d", v)
	}
	// The locked CMPXCHG protocol.
	read, swapped, _ := r.xbus[0].LockedCmpxchg(bus.InitCPU, cmdAddr, 0, 32)
	if !swapped || read != 0 {
		t.Fatal("start rejected")
	}
	// While busy: status is remaining<<1|match and a second start fails.
	if v := r.nics[0].CmdRead(cmdAddr); v == 0 || v&1 != 1 {
		t.Fatalf("busy status %#x", v)
	}
	if v := r.nics[0].CmdRead(cmdAddr + 8); v&1 != 0 {
		t.Fatal("address-match flag set for a different address")
	}
	if _, swapped, _ := r.xbus[0].LockedCmpxchg(bus.InitCPU, cmdAddr, 0, 16); swapped {
		t.Fatal("second start accepted while busy")
	}
	// A raw (non-CMPXCHG) command write while busy is rejected outright.
	if r.nics[0].CmdWrite(cmdAddr, 16) {
		t.Fatal("raw start accepted while busy")
	}
	if r.nics[0].Stats().DMARejected != 1 {
		t.Fatal("rejection not counted")
	}
	r.drain()
	for i := 0; i < 32; i++ {
		if got := r.mem[1].Read32(phys.PageNum(8).Addr(uint32(4 * i))); got != uint32(1000+i) {
			t.Fatalf("word %d = %d", i, got)
		}
	}
	if v := r.nics[0].CmdRead(cmdAddr); v != 0 {
		t.Fatal("status nonzero after completion")
	}
	if r.nics[0].Stats().DMATransfers != 1 {
		t.Fatal("transfer not counted")
	}
}

func TestDeliberateUpdateRejectsBadCommands(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.mapOut(4, 8, nipt.DeliberateUpdate)
	cmd := r.mem[0].CmdPageFor(4)
	// Zero words.
	if r.nics[0].CmdWrite(cmd, 0) {
		t.Fatal("zero-word transfer accepted")
	}
	// More than a page.
	if r.nics[0].CmdWrite(cmd, MaxDMAWords+1) {
		t.Fatal("over-page transfer accepted")
	}
	// Crossing the page end.
	if r.nics[0].CmdWrite(cmd+4000, 100) {
		t.Fatal("page-crossing transfer accepted")
	}
	// Page not mapped deliberate.
	r.mapOut(5, 9, nipt.SingleWriteAU)
	if r.nics[0].CmdWrite(r.mem[0].CmdPageFor(5), 4) {
		t.Fatal("transfer on AU page accepted")
	}
}

func TestOutgoingFIFOThresholdFreezesAndResumes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OutFIFOBytes = 2048
	cfg.OutThreshold = 1024
	r := newRig(t, cfg)
	r.mapOut(4, 8, nipt.SingleWriteAU)

	full, drained := 0, 0
	r.nics[0].OnOutFull = func() { full++ }
	r.nics[0].OnOutDrained = func() { drained++ }

	// Issue stores until the NIC reports full, respecting the freeze the
	// way a CPU would: stop storing while stalled, and pay at least one
	// CPU cycle per store.
	issued := 0
	for i := 0; i < 500; i++ {
		for r.nics[0].OutStalled() {
			if !r.eng.Step() {
				t.Fatal("engine dry while stalled")
			}
		}
		r.cpuWrite32(0, phys.PageNum(4).Addr(uint32(4*(i%1024))), uint32(i))
		issued++
		r.eng.RunFor(20 * sim.Nanosecond)
	}
	r.drain()
	if full == 0 || drained != full {
		t.Fatalf("full=%d drained=%d", full, drained)
	}
	s := r.nics[0].Stats()
	if s.MaxOutFIFOBytes > cfg.OutFIFOBytes {
		t.Fatalf("outgoing FIFO exceeded capacity: %d", s.MaxOutFIFOBytes)
	}
	if s.OutStallTime == 0 {
		t.Fatal("stall time not accounted")
	}
	if s.PacketsOut != uint64(issued) {
		t.Fatalf("lost packets: %d out for %d stores", s.PacketsOut, issued)
	}
}

func TestIncomingFIFOBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InFIFOBytes = 8 * 1024
	cfg.InThreshold = 2048
	r := newRig(t, cfg)
	r.mapOut(4, 8, nipt.DeliberateUpdate)
	for i := uint32(0); i < phys.PageSize/4; i++ {
		r.mem[0].Write32(phys.PageNum(4).Addr(i*4), i)
	}
	cmd := r.mem[0].CmdPageFor(4)
	// Stream several page transfers back to back; the EISA deposit is
	// slow, so the incoming FIFO throttles the mesh.
	for k := 0; k < 6; k++ {
		for {
			_, swapped, _ := r.xbus[0].LockedCmpxchg(bus.InitCPU, cmd, 0, MaxDMAWords)
			if swapped {
				break
			}
			if !r.eng.Step() {
				t.Fatal("engine dry")
			}
		}
	}
	r.drain()
	s1 := r.nics[1].Stats()
	if s1.MaxInFIFOBytes > cfg.InFIFOBytes {
		t.Fatalf("incoming FIFO exceeded capacity: %d", s1.MaxInFIFOBytes)
	}
	if r.net.Stats().Parked == 0 {
		t.Fatal("no backpressure parks under saturation")
	}
	if s1.BytesIn != 6*phys.PageSize {
		t.Fatalf("delivered %d bytes", s1.BytesIn)
	}
	// Every word of the final state is the page content.
	for i := uint32(0); i < phys.PageSize/4; i++ {
		if r.mem[1].Read32(phys.PageNum(8).Addr(i*4)) != i {
			t.Fatalf("word %d corrupted", i)
		}
	}
}

func TestKernelRingPacketsRaiseRingIRQ(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.mapOut(4, 8, nipt.BlockedWriteAU)
	r.nics[0].Table().Entry(4).KernelRing = true
	r.nics[1].Table().Entry(8).KernelRing = true
	var rings []phys.PageNum
	r.nics[1].OnIRQ = func(cause IRQCause, page phys.PageNum) {
		if cause == IRQKernelRing {
			rings = append(rings, page)
		}
	}
	r.cpuWrite32(0, phys.PageNum(4).Addr(0), 1)
	r.drain()
	if len(rings) != 1 || rings[0] != 8 {
		t.Fatalf("ring irqs %v", rings)
	}
	if r.nics[0].Stats().KernelPacketsOut != 1 {
		t.Fatal("kernel packet not classified")
	}
}

func xpressCfg() Config {
	cfg := DefaultConfig()
	cfg.Generation = GenXpress
	return cfg
}

func TestXpressGenerationForwarding(t *testing.T) {
	// The next-generation deposit path (NIC masters the memory bus; no
	// EISA) delivers the same bytes, faster.
	r := newRig(t, xpressCfg())
	r.mapOut(4, 8, nipt.SingleWriteAU)
	r.cpuWrite32(0, phys.PageNum(4).Addr(16), 0xabad1dea)
	start := r.eng.Now()
	r.drain()
	if got := r.mem[1].Read32(phys.PageNum(8).Addr(16)); got != 0xabad1dea {
		t.Fatalf("xpress deposit %#x", got)
	}
	xpressTime := r.eng.Now() - start

	r2 := newRig(t, DefaultConfig())
	r2.mapOut(4, 8, nipt.SingleWriteAU)
	r2.cpuWrite32(0, phys.PageNum(4).Addr(16), 0xabad1dea)
	start = r2.eng.Now()
	r2.drain()
	eisaTime := r2.eng.Now() - start
	if xpressTime >= eisaTime {
		t.Fatalf("xpress (%v) not faster than EISA (%v)", xpressTime, eisaTime)
	}
}

func TestXpressDeliberateUpdate(t *testing.T) {
	r := newRig(t, xpressCfg())
	r.mapOut(4, 8, nipt.DeliberateUpdate)
	for i := 0; i < 128; i++ {
		r.mem[0].Write32(phys.PageNum(4).Addr(uint32(4*i)), uint32(i*3))
	}
	cmd := r.mem[0].CmdPageFor(4)
	if _, swapped, _ := r.xbus[0].LockedCmpxchg(bus.InitCPU, cmd, 0, 128); !swapped {
		t.Fatal("start rejected")
	}
	r.drain()
	for i := 0; i < 128; i++ {
		if got := r.mem[1].Read32(phys.PageNum(8).Addr(uint32(4 * i))); got != uint32(i*3) {
			t.Fatalf("word %d = %d", i, got)
		}
	}
	// The Xpress deposit is a bridge-visible bus write: caches snooped it.
	if r.xbus[1].Stats().Writes == 0 {
		t.Fatal("no memory-bus deposits recorded")
	}
}

func TestSnoopStatsAndQuiesce(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.mapOut(4, 8, nipt.BlockedWriteAU)
	for i := 0; i < 10; i++ {
		r.cpuWrite32(0, phys.PageNum(4).Addr(uint32(4*i)), 1)
	}
	if r.nics[0].Quiesced() {
		t.Fatal("NIC quiescent with an open merge")
	}
	r.drain()
	if !r.nics[0].Quiesced() || !r.nics[1].Quiesced() {
		t.Fatal("NICs not quiescent after drain")
	}
	if r.nics[0].Stats().SnoopedWrites != 10 {
		t.Fatalf("snooped %d", r.nics[0].Stats().SnoopedWrites)
	}
}

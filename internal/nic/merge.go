package nic

import (
	"repro/internal/nipt"
	"repro/internal/phys"
	"repro/internal/sim"
)

// mergeState implements blocked-write automatic update (§4.1): the NIC
// buffers a snooped write instead of sending it immediately, and merges
// subsequent writes into the same packet if they are consecutive, stay
// within the same page, and occur within a programmable time limit of
// one another. Otherwise the packet is terminated and sent.
type mergeState struct {
	open     *openPacket
	timerGen uint64
}

type openPacket struct {
	m           *nipt.OutMapping
	srcPage     phys.PageNum
	startRemote phys.PAddr
	buf         []byte
	lastWrite   sim.Time
}

func (n *NIC) mergeWrite(m *nipt.OutMapping, remote phys.PAddr, data []byte, srcPage phys.PageNum) {
	o := n.merge.open
	now := n.eng.Now()
	if o != nil {
		mergeable := o.m == m &&
			o.startRemote+phys.PAddr(len(o.buf)) == remote &&
			len(o.buf)+len(data) <= n.cfg.MaxPayload &&
			now-o.lastWrite <= n.cfg.MergeWindow
		if mergeable {
			o.buf = append(o.buf, data...)
			o.lastWrite = now
			n.stats.MergedWrites++
			n.armMergeTimer()
			return
		}
		n.flushMerge()
	}
	n.merge.open = &openPacket{
		m:           m,
		srcPage:     srcPage,
		startRemote: remote,
		buf:         append([]byte(nil), data...),
		lastWrite:   now,
	}
	n.armMergeTimer()
}

// armMergeTimer schedules the §4.1 time-limit check. A generation counter
// cancels timers that a newer write has superseded.
func (n *NIC) armMergeTimer() {
	n.merge.timerGen++
	gen := n.merge.timerGen
	n.eng.After(n.cfg.MergeWindow+sim.Picosecond, func() {
		if n.merge.timerGen != gen || n.merge.open == nil {
			return
		}
		if n.eng.Now()-n.merge.open.lastWrite >= n.cfg.MergeWindow {
			n.flushMerge()
		}
	})
}

// flushMerge terminates and sends the open blocked-write packet, if any.
// The single-write and DMA paths call it first so that packets enter the
// Outgoing FIFO in store order.
func (n *NIC) flushMerge() {
	o := n.merge.open
	if o == nil {
		return
	}
	n.merge.open = nil
	n.stats.MergedPackets++
	n.emit(o.m, o.startRemote, o.buf, o.srcPage)
}

package nic

import (
	"repro/internal/nipt"
	"repro/internal/obs"
	"repro/internal/phys"
	"repro/internal/sim"
)

// mergeState implements blocked-write automatic update (§4.1): the NIC
// buffers a snooped write instead of sending it immediately, and merges
// subsequent writes into the same packet if they are consecutive, stay
// within the same page, and occur within a programmable time limit of
// one another. Otherwise the packet is terminated and sent.
type mergeState struct {
	open *openPacket
	// spare recycles the (at most one) open packet's buffer between
	// merge runs.
	spare *openPacket
	// timerArmed tracks the single in-flight expiry event; rather than
	// scheduling one timer per write, the one timer re-arms itself at
	// open.lastWrite+MergeWindow+1ps until it finds the window expired,
	// which fires the flush at exactly the instant the per-write scheme
	// would have.
	timerArmed bool
}

type openPacket struct {
	m           *nipt.OutMapping
	srcPage     phys.PageNum
	startRemote phys.PAddr
	buf         []byte
	started     sim.Time // first merged store: the causal span's origin
	lastWrite   sim.Time
}

func (n *NIC) mergeWrite(m *nipt.OutMapping, remote phys.PAddr, data []byte, srcPage phys.PageNum) {
	o := n.merge.open
	now := n.eng.Now()
	if o != nil {
		mergeable := o.m == m &&
			o.startRemote+phys.PAddr(len(o.buf)) == remote &&
			len(o.buf)+len(data) <= n.cfg.MaxPayload &&
			now-o.lastWrite <= n.cfg.MergeWindow
		if mergeable {
			o.buf = append(o.buf, data...)
			o.lastWrite = now
			n.stats.MergedWrites++
			n.scope.Inc(obs.CtrMergedWrites)
			n.armMergeTimer()
			return
		}
		n.flushMerge()
	}
	o = n.merge.spare
	if o == nil {
		o = &openPacket{}
	} else {
		n.merge.spare = nil
	}
	o.m = m
	o.srcPage = srcPage
	o.startRemote = remote
	o.buf = append(o.buf[:0], data...)
	o.started = now
	o.lastWrite = now
	n.merge.open = o
	n.armMergeTimer()
}

// mergeTimerEvent is the single §4.1 time-limit check event per NIC.
type mergeTimerEvent struct{ n *NIC }

func (ev *mergeTimerEvent) Fire() {
	n := ev.n
	n.merge.timerArmed = false
	o := n.merge.open
	if o == nil {
		return
	}
	if n.eng.Now()-o.lastWrite >= n.cfg.MergeWindow {
		n.flushMerge()
		return
	}
	// A newer write moved the deadline; chase it.
	n.merge.timerArmed = true
	n.eng.ScheduleDom(n.dom, o.lastWrite+n.cfg.MergeWindow+sim.Picosecond, &n.mergeEv)
}

// armMergeTimer schedules the §4.1 time-limit check. The in-flight timer
// re-arms itself past newer writes, so arming is a no-op while one is
// pending.
func (n *NIC) armMergeTimer() {
	if n.merge.timerArmed {
		return
	}
	n.merge.timerArmed = true
	n.eng.ScheduleAfterDom(n.dom, n.cfg.MergeWindow+sim.Picosecond, &n.mergeEv)
}

// flushMerge terminates and sends the open blocked-write packet, if any.
// The single-write and DMA paths call it first so that packets enter the
// Outgoing FIFO in store order.
func (n *NIC) flushMerge() {
	o := n.merge.open
	if o == nil {
		return
	}
	n.merge.open = nil
	n.stats.MergedPackets++
	n.scope.Inc(obs.CtrMergedPackets)
	n.emit(o.m, o.startRemote, o.buf, o.srcPage, o.started, obs.SpanBlockedWrite)
	o.m = nil
	n.merge.spare = o
}

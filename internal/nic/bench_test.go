package nic

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/nipt"
	"repro/internal/phys"
)

// storeBench measures one snooped store delivered end to end (snoop →
// packetize → mesh → deposit) per op on the two-node rig, with the
// fault hooks absent or armed at zero rates.
func storeBench(b *testing.B, armed bool) {
	r := newRig(b, DefaultConfig())
	if armed {
		inj := fault.NewInjector(fault.Config{Seed: 42}, 2)
		r.nics[0].SetFaults(inj)
		r.nics[1].SetFaults(inj)
		r.net.SetFaults(inj)
	}
	r.mapOut(4, 8, nipt.SingleWriteAU)
	// Warm the packet pool, the span table and (in fault mode) the
	// per-page sequence map before measuring.
	r.cpuWrite32(0, phys.PageNum(4).Addr(0), 1)
	r.drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.cpuWrite32(0, phys.PageNum(4).Addr(0), uint32(i))
		r.drain()
	}
}

// BenchmarkStoreNoFaults is the ci.sh zero-allocation guard for the
// fault hooks: with no injector installed the steady-state datapath
// must not touch the heap — the hooks are nil checks, nothing more.
func BenchmarkStoreNoFaults(b *testing.B) { storeBench(b, false) }

// BenchmarkStoreFaultsArmed is the same path with a zero-rate injector
// armed: the decision rolls are stateless integer hashing, so the armed
// steady state must stay allocation-free too.
func BenchmarkStoreFaultsArmed(b *testing.B) { storeBench(b, true) }

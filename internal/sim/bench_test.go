package sim

import "testing"

// tickHandler reschedules itself a fixed distance ahead: the steady-state
// shape of every hardware model's fast path (schedule one, fire one).
type tickHandler struct {
	e    *Engine
	left int
}

func (h *tickHandler) Fire() {
	if h.left == 0 {
		return
	}
	h.left--
	h.e.ScheduleAfter(10, h)
}

// BenchmarkEngine measures raw schedule/fire throughput on the Handler
// fast path. The acceptance bar for the zero-allocation event queue is 0
// allocs/op here.
func BenchmarkEngine(b *testing.B) {
	b.Run("ScheduleFire", func(b *testing.B) {
		e := NewEngine()
		// Keep a standing population of 64 self-rescheduling handlers so
		// the heap works at a realistic depth.
		handlers := make([]*tickHandler, 64)
		for i := range handlers {
			handlers[i] = &tickHandler{e: e, left: b.N}
			e.Schedule(Time(i), handlers[i])
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
		b.StopTimer()
		for i := range handlers {
			handlers[i].left = 0
		}
		e.Run()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	})

	b.Run("ClosureAtFire", func(b *testing.B) {
		// The closure path: the fn is preallocated, so the queue itself
		// must still not allocate.
		e := NewEngine()
		n := 0
		var fn func()
		fn = func() {
			if n < b.N {
				n++
				e.After(10, fn)
			}
		}
		e.After(0, fn)
		b.ReportAllocs()
		b.ResetTimer()
		for e.Step() {
		}
	})
}

// BenchmarkEngineCold measures push throughput into a deep heap: b.N
// events scheduled at descending times, then drained.
func BenchmarkEngineCold(b *testing.B) {
	e := NewEngine()
	h := &tickHandler{e: e}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(b.N-i), h)
	}
	for e.Step() {
	}
}

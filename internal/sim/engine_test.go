package sim

import (
	"math"
	"math/big"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Microsecond != 1000*Nanosecond || Second != 1000*Millisecond {
		t.Fatal("unit ladder broken")
	}
	if got := (1500 * Nanosecond).Microseconds(); got != 1.5 {
		t.Fatalf("Microseconds = %v", got)
	}
	if got := (2 * Microsecond).String(); got != "2.000us" {
		t.Fatalf("String = %q", got)
	}
	if got := (3 * Second).String(); got != "3.000s" {
		t.Fatalf("String = %q", got)
	}
	if got := Time(500).String(); got != "500ps" {
		t.Fatalf("String = %q", got)
	}
}

func TestPerByteRoundsUp(t *testing.T) {
	// 33 MB/s: one byte takes ceil(1e12/33e6) = 30304 ps... exactly
	// 1e12/33e6 = 30303.03; rounded up 30304.
	if got := PerByte(33_000_000, 1); got != 30304 {
		t.Fatalf("PerByte(33MB/s,1) = %d", got)
	}
	// A rate that divides evenly must not round.
	if got := PerByte(1_000_000_000, 2); got != 2000 {
		t.Fatalf("PerByte(1GB/s,2) = %d", got)
	}
	if PerByte(0, 10) != 0 || PerByte(100, 0) != 0 {
		t.Fatal("degenerate inputs should cost zero")
	}
}

func TestPerByteNeverBeatsRate(t *testing.T) {
	f := func(rate int64, n int) bool {
		if rate <= 0 {
			rate = -rate + 1
		}
		rate = rate%1_000_000_000 + 1
		if n < 0 {
			n = -n
		}
		n = n % 100_000
		d := PerByte(rate, n)
		// d seconds * rate >= n bytes (channel never exceeds its rating).
		return int64(d)*rate >= int64(n)*int64(Second) || n == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPerByteWideTransfersDoNotOverflow(t *testing.T) {
	// n*Second overflows int64 past ~9.2 MB; the 128-bit widening must
	// keep large transfers exact. 16 MiB at 33 MB/s:
	// ceil(16777216e12 / 33e6) = 508400484849 ps (~0.508 s).
	if got := PerByte(33_000_000, 16<<20); got != 508400484849 {
		t.Fatalf("PerByte(33MB/s, 16MiB) = %d", got)
	}
	// 1 GiB at 70 MB/s: ceil(1073741824e12 / 7e7) = 15339168914286 ps.
	if got := PerByte(70_000_000, 1<<30); got != 15339168914286 {
		t.Fatalf("PerByte(70MB/s, 1GiB) = %d", got)
	}
	// Verify against big.Int across a sweep of sizes straddling the old
	// overflow threshold.
	for _, n := range []int{9_000_000, 9_223_373, 10_000_000, 100_000_000, 1 << 31} {
		for _, rate := range []int64{1, 33_000_000, 70_000_000, 1_000_000_000} {
			want := new(big.Int).Mul(big.NewInt(int64(n)), big.NewInt(int64(Second)))
			q, r := new(big.Int).QuoRem(want, big.NewInt(rate), new(big.Int))
			if r.Sign() != 0 {
				q.Add(q, big.NewInt(1))
			}
			if !q.IsInt64() || q.Int64() > int64(Forever) {
				continue
			}
			if got := PerByte(rate, n); int64(got) != q.Int64() {
				t.Fatalf("PerByte(%d, %d) = %d, want %v", rate, n, got, q)
			}
		}
	}
	// Results past the representable range clamp to Forever instead of
	// going negative.
	if got := PerByte(1, 1<<40); got != Forever {
		t.Fatalf("PerByte(1, 2^40) = %d, want Forever", got)
	}
	if got := PerByte(1, math.MaxInt32); got < 0 || got > Forever {
		t.Fatalf("PerByte produced out-of-range duration %d", got)
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	// Same-time events fire in scheduling order.
	e.At(20, func() { got = append(got, 4) })
	e.Run()
	want := []int{1, 2, 4, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v", e.Now())
	}
	if e.Fired() != 4 {
		t.Fatalf("fired = %d", e.Fired())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for past event")
		}
	}()
	e.At(50, func() {})
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.At(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired %d, want 2 (boundary inclusive)", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v", e.Now())
	}
	e.Run()
	if fired != 3 {
		t.Fatal("remaining event lost")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 5 {
			e.After(10, schedule)
		}
	}
	e.After(0, schedule)
	e.Run()
	if depth != 5 {
		t.Fatalf("depth = %d", depth)
	}
	if e.Now() != 40 {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestAdvanceGuardsPendingEvents(t *testing.T) {
	e := NewEngine()
	e.At(50, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("Advance skipped an event without panicking")
		}
	}()
	e.Advance(100)
}

func TestAdvanceToIsIdempotentBackward(t *testing.T) {
	e := NewEngine()
	e.Advance(100)
	e.AdvanceTo(40) // in the past: no-op
	if e.Now() != 100 {
		t.Fatalf("clock = %v", e.Now())
	}
	e.AdvanceTo(120)
	if e.Now() != 120 {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestDrainLimit(t *testing.T) {
	e := NewEngine()
	var loop func()
	loop = func() { e.After(1, loop) }
	e.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("Drain did not catch the livelock")
		}
	}()
	e.Drain(100)
}

func TestRunWhile(t *testing.T) {
	e := NewEngine()
	x := 0
	for i := 1; i <= 10; i++ {
		i := i
		e.At(Time(i), func() { x = i })
	}
	ok := e.RunWhile(func() bool { return x < 5 })
	if !ok || x != 5 {
		t.Fatalf("RunWhile stopped at x=%d ok=%v", x, ok)
	}
	// Condition never satisfied: runs dry, reports false.
	if e.RunWhile(func() bool { return x < 100 }) {
		t.Fatal("RunWhile should report false when events run out")
	}
}

func TestRandomizedOrderingMatchesSort(t *testing.T) {
	// Property: events fire in nondecreasing time order regardless of
	// insertion order.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		n := 200
		times := make([]Time, n)
		var fired []Time
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(10_000))
			times[i] = at
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for i := range times {
			if fired[i] != times[i] {
				t.Fatalf("trial %d: fired[%d]=%v want %v", trial, i, fired[i], times[i])
			}
		}
	}
}

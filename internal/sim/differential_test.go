package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEngine is the pre-optimization event queue — the boxed
// container/heap implementation the Engine replaced — retained verbatim
// as a reference model. The differential test below drives random event
// workloads through both queues and requires identical (time, seq)
// firing orders, which is exactly the determinism contract every
// component model in this repository leans on.
type refEngine struct {
	now    Time
	seq    uint64
	events refEventHeap
	fired  uint64
}

type refEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type refEventHeap []refEvent

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refEventHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refEventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

func (e *refEngine) At(t Time, fn func()) {
	e.seq++
	heap.Push(&e.events, refEvent{at: t, seq: e.seq, fn: fn})
}

func (e *refEngine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(refEvent)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

func (e *refEngine) Run() {
	for e.Step() {
	}
}

// firing is one observed event execution: which logical event fired, at
// what simulated time, as the k-th firing overall.
type firing struct {
	id int
	at Time
}

// scheduler abstracts the two engines for the differential driver.
type scheduler interface {
	At(t Time, fn func())
	Run()
}

type newEngineAdapter struct{ *Engine }

// driveRandomWorkload schedules a randomized workload on s and returns
// the firing order. Fired events reschedule children pseudo-randomly —
// from an rng sequence derived only from the event id, so both engines
// see the identical schedule requests in the identical causal order.
func driveRandomWorkload(s scheduler, seed int64) []firing {
	rng := rand.New(rand.NewSource(seed))
	var log []firing
	nextID := 0
	var schedule func(at Time, depth int)
	schedule = func(at Time, depth int) {
		id := nextID
		nextID++
		// Draw this event's behavior up front so the draw order depends
		// only on scheduling order, which the test asserts is identical.
		children := 0
		if depth < 3 && rng.Intn(4) == 0 {
			children = 1 + rng.Intn(3)
		}
		delays := make([]Time, children)
		for i := range delays {
			delays[i] = Time(rng.Intn(50)) // deliberately collides timestamps
		}
		s.At(at, func() {
			log = append(log, firing{id: id, at: at})
			for _, d := range delays {
				schedule(at+d, depth+1)
			}
		})
	}
	for i := 0; i < 500; i++ {
		schedule(Time(rng.Intn(1000)), 0)
	}
	s.Run()
	return log
}

// TestDifferentialOrderingAgainstContainerHeap fires random workloads —
// heavy same-timestamp collisions, rescheduling from inside handlers —
// through the 4-ary heap and the retired container/heap implementation
// and requires bit-identical firing orders.
func TestDifferentialOrderingAgainstContainerHeap(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		got := driveRandomWorkload(newEngineAdapter{NewEngine()}, seed)
		want := driveRandomWorkload(&refEngine{}, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing %d diverged: %+v vs reference %+v",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestDifferentialHandlerMatchesClosure checks that Schedule (the
// Handler fast path) interleaves with At exactly by scheduling order.
type recordingHandler struct {
	log *[]int
	id  int
}

func (r *recordingHandler) Fire() { *r.log = append(*r.log, r.id) }

func TestDifferentialHandlerMatchesClosure(t *testing.T) {
	e := NewEngine()
	var log []int
	e.At(10, func() { log = append(log, 0) })
	e.Schedule(10, &recordingHandler{&log, 1})
	e.At(10, func() { log = append(log, 2) })
	e.Schedule(5, &recordingHandler{&log, 3})
	e.Run()
	want := []int{3, 0, 1, 2}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("order %v, want %v", log, want)
		}
	}
}

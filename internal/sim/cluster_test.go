package sim

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"
)

// orderDispatcher records the order typed posts and messages are
// applied in (by their A argument).
type orderDispatcher struct {
	posts []int64
	msgs  []int64
}

func (d *orderDispatcher) ApplyPost(p Post) { d.posts = append(d.posts, p.A) }
func (d *orderDispatcher) ApplyMsg(m Msg)   { d.msgs = append(d.msgs, m.A) }

// TestKWayMergeMatchesStableSort property-tests the allocation-free
// k-way replay merge against the reference it replaced: a stable sort
// by (time, domain) over the concatenated per-partition buffers. The
// streams deliberately include equal-time and equal-(time, domain)
// cross-partition ties — a real machine never produces the latter (a
// domain lives on one partition), but the merge must still break them
// like the stable sort did: lowest partition index first.
func TestKWayMergeMatchesStableSort(t *testing.T) {
	type rec struct {
		at  Time
		dom Domain
		id  int64
	}
	for _, P := range []int{2, 3, 5, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed*100 + int64(P)))
			parts := make([]*Engine, P)
			for i := range parts {
				parts[i] = NewEngine()
			}
			hub := NewEngine()
			c := NewCluster(parts, hub, 10)
			d := &orderDispatcher{}
			c.SetDispatch(d)

			var id int64
			streams := make([][]rec, P)
			for p := range streams {
				// Every stream opens with the same (time, domain) record,
				// forcing exact cross-partition ties.
				streams[p] = append(streams[p], rec{at: 5, dom: 2})
				at := Time(rng.Intn(4))
				for k := 0; k < 20+rng.Intn(60); k++ {
					at += Time(rng.Intn(3)) // frequent equal-time collisions
					streams[p] = append(streams[p], rec{at: at, dom: Domain(1 + rng.Intn(4))})
				}
				// A partition buffer arrives in its engine's firing order:
				// nondecreasing (at, dom), creation order within a key.
				sort.SliceStable(streams[p], func(a, b int) bool {
					if streams[p][a].at != streams[p][b].at {
						return streams[p][a].at < streams[p][b].at
					}
					return streams[p][a].dom < streams[p][b].dom
				})
				for k := range streams[p] {
					streams[p][k].id = id
					id++
				}
			}

			// Reference: stable sort of the concatenated buffers.
			var all []rec
			for p := range streams {
				all = append(all, streams[p]...)
			}
			sort.SliceStable(all, func(a, b int) bool {
				if all[a].at != all[b].at {
					return all[a].at < all[b].at
				}
				return all[a].dom < all[b].dom
			})

			for p := range streams {
				for _, r := range streams[p] {
					c.PostTo(p, Post{At: r.at, Dom: r.dom, Kind: 99, A: r.id})
				}
			}
			c.flushPosts()
			for hub.Step() {
			}

			if len(d.posts) != len(all) {
				t.Fatalf("P=%d seed=%d: replayed %d posts, want %d", P, seed, len(d.posts), len(all))
			}
			for i := range all {
				if d.posts[i] != all[i].id {
					t.Fatalf("P=%d seed=%d: replay[%d] = id %d, want %d (at=%v dom=%v)",
						P, seed, i, d.posts[i], all[i].id, all[i].at, all[i].dom)
				}
			}
		}
	}
}

// waitGoroutines polls until the process goroutine count returns to (or
// under) base, failing the test after a generous deadline.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("goroutine count %d never returned to baseline %d", runtime.NumGoroutine(), base)
}

// gangCluster builds a P-partition cluster with per-partition counters
// and a schedule func that loads rounds of node events onto each
// partition (starting strictly after the engines' current clocks).
func gangCluster(p int) (c *Cluster, counts []int, schedule func(rounds int)) {
	parts := make([]*Engine, p)
	for i := range parts {
		parts[i] = NewEngine()
		parts[i].EnterDomain(DomNode(i))
	}
	hub := NewEngine()
	hub.EnterDomain(DomHub)
	c = NewCluster(parts, hub, 10)
	counts = make([]int, p)
	schedule = func(rounds int) {
		for i := range parts {
			i := i
			base := parts[i].Now()
			for k := 1; k <= rounds; k++ {
				parts[i].At(base+Time(k*100+i), func() { counts[i]++ })
			}
		}
	}
	return c, counts, schedule
}

// TestGangCleanShutdown: Close terminates every worker (goleak-style
// count check) and the cluster keeps working afterwards — the next
// parallel round starts a fresh gang.
func TestGangCleanShutdown(t *testing.T) {
	base := runtime.NumGoroutine()
	c, counts, schedule := gangCluster(4)
	schedule(5)
	if err := c.DrainBudget(1000); err != nil {
		t.Fatal(err)
	}
	if c.gang == nil {
		t.Fatal("parallel drain did not start the worker gang")
	}
	c.Close()
	if c.gang != nil {
		t.Fatal("Close left the gang installed")
	}
	waitGoroutines(t, base)

	schedule(3)
	if err := c.DrainBudget(1000); err != nil {
		t.Fatal(err)
	}
	for i, n := range counts {
		if n != 8 {
			t.Fatalf("partition %d fired %d events, want 8", i, n)
		}
	}
	c.Close()
	waitGoroutines(t, base)
}

// TestGangIdleSelfReap: without Close, parked workers reap themselves
// after the idle timeout, and the next round transparently respawns
// them.
func TestGangIdleSelfReap(t *testing.T) {
	base := runtime.NumGoroutine()
	c, counts, schedule := gangCluster(4)
	c.gangIdle = 5 * time.Millisecond
	schedule(5)
	if err := c.DrainBudget(1000); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base) // self-reap, no Close

	schedule(5) // respawn on demand
	if err := c.DrainBudget(1000); err != nil {
		t.Fatal(err)
	}
	for i, n := range counts {
		if n != 10 {
			t.Fatalf("partition %d fired %d events, want 10", i, n)
		}
	}
	c.Close()
	waitGoroutines(t, base)
}

// TestGangSurvivesReset: Machine.Reset reuses the cluster; the gang is
// wiring, not simulated state, so it must survive and the reset cluster
// must replay the identical workload.
func TestGangSurvivesReset(t *testing.T) {
	c, counts, schedule := gangCluster(3)
	schedule(4)
	if err := c.DrainBudget(1000); err != nil {
		t.Fatal(err)
	}
	g := c.gang
	if g == nil {
		t.Fatal("gang not started")
	}
	c.Reset()
	if c.gang != g {
		t.Fatal("Reset replaced the gang")
	}
	schedule(4)
	if err := c.DrainBudget(1000); err != nil {
		t.Fatal(err)
	}
	for i, n := range counts {
		if n != 8 {
			t.Fatalf("partition %d fired %d events across reuse, want 8", i, n)
		}
	}
	c.Close()
}

// TestGangPacerDeadlineWindowEdge: with the gang engaged, a pacer
// deadline that lands exactly on a window edge caps the round there —
// workers park and wake across the cut and the pacer observes the same
// canonical cuts the sequential step path produces.
func TestGangPacerDeadlineWindowEdge(t *testing.T) {
	parts := []*Engine{NewEngine(), NewEngine(), NewEngine()}
	for i, e := range parts {
		e.EnterDomain(DomNode(i))
	}
	hub := NewEngine()
	hub.EnterDomain(DomHub)
	c := NewCluster(parts, hub, 10)

	fired := make([]int, 3)
	for i := range parts {
		i := i
		for _, at := range []Time{3 + Time(i), 13 + Time(i), 23 + Time(i), 33 + Time(i)} {
			parts[i].At(at, func() { fired[i]++ })
		}
	}
	total := func() uint64 { return uint64(fired[0] + fired[1] + fired[2]) }
	p := newRecordingPacer(10, total)
	c.SetPacer(p)
	if err := c.DrainBudget(1000); err != nil {
		t.Fatal(err)
	}
	if c.gang == nil {
		t.Fatal("gang not started")
	}
	// Twelve events at 3..5, 13..15, 23..25, 33..35; deadlines 10, 20,
	// 30 land on the window edges and cut after 3, 6, 9 events.
	want := []cut{{10, 0, 3}, {20, 0, 6}, {30, 0, 9}}
	if len(p.cuts) != len(want) {
		t.Fatalf("cuts %+v", p.cuts)
	}
	for i := range want {
		got := p.cuts[i]
		if got.deadline != want[i].deadline || got.state != want[i].state {
			t.Fatalf("cut %d = %+v, want deadline %v state %d", i, got, want[i].deadline, want[i].state)
		}
		if got.head < got.deadline {
			t.Fatalf("cut %d head %v precedes deadline %v", i, got.head, got.deadline)
		}
	}
	if total() != 12 {
		t.Fatalf("fired %d events, want 12", total())
	}
	c.Close()
}

// countDispatcher is the zero-alloc benchmark's decoder: preallocated,
// counts applications.
type countDispatcher struct {
	posts, msgs int
}

func (d *countDispatcher) ApplyPost(p Post) { d.posts++ }
func (d *countDispatcher) ApplyMsg(m Msg)   { d.msgs++ }

// BenchmarkClusterPost drives the full typed rendezvous data path —
// per-partition PostTo, k-way merge replay through the pooled hub
// events, hub drain, and a typed deferred message — and must allocate
// nothing in steady state (ci.sh greps for 0 allocs/op).
func BenchmarkClusterPost(b *testing.B) {
	parts := make([]*Engine, 4)
	for i := range parts {
		parts[i] = NewEngine()
		parts[i].EnterDomain(DomNode(i))
	}
	hub := NewEngine()
	hub.EnterDomain(DomHub)
	c := NewCluster(parts, hub, 10)
	d := &countDispatcher{}
	c.SetDispatch(d)

	b.ReportAllocs()
	b.ResetTimer()
	at := Time(1)
	for n := 0; n < b.N; n++ {
		for p := range parts {
			c.PostTo(p, Post{At: at, Dom: DomNode(p), Kind: 99, A: int64(p)})
			c.PostTo(p, Post{At: at + 1, Dom: DomNode(p), Kind: 99, A: int64(p)})
		}
		c.flushPosts()
		for hub.Step() {
		}
		c.DeferMsg(0, Msg{Kind: 99, A: 1})
		c.flushMsgs()
		at += 2
	}
	b.StopTimer()
	if d.posts != 8*b.N || d.msgs != b.N {
		b.Fatalf("dispatched %d posts / %d msgs, want %d / %d", d.posts, d.msgs, 8*b.N, b.N)
	}
}
